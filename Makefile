# Developer / CI entry points. `make verify` is the pre-merge gate: it
# builds, vets, runs the full suite, and re-runs the concurrency-heavy
# packages under the race detector (the rollout worker pool and the
# estimator cache live there).

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full suite under -race is slow on small machines; the rl, estimator,
# meta and bench packages exercise every goroutine this repo spawns. The
# bench integration tests alone run ~8 min under -race on one core, so
# give the run headroom beyond go test's 10 min default.
race:
	$(GO) test -race -timeout 30m ./internal/rl/ ./internal/estimator/ ./internal/meta/ ./internal/bench/ .

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/nn/ ./internal/rl/ .
