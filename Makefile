# Developer / CI entry points. `make verify` is the pre-merge gate: it
# builds, vets, lints, enforces the panic allowlist, runs the full suite,
# and re-runs the concurrency-heavy packages under the race detector (the
# rollout worker pool and the estimator cache live there).

GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1s
# Benchmark packages: agent step kernels, rollout engine, estimator
# feedback path, and the full-figure slices in the root package. CI's
# bench-smoke job narrows this to the fast packages.
BENCHPKGS ?= ./internal/nn/ ./internal/rl/ ./internal/estimator/ .

.PHONY: build test vet staticcheck panic-gate race verify bench experiments fuzz chaos engine-conformance fleet-conformance serve-conformance serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (CI installs it); skip with a note when
# the binary is absent rather than failing developer machines.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Panic audit: internal packages return typed errors for anything a user
# can trigger; panic( is reserved for the audited invariant sites listed
# in panic_allowlist.txt. New panics anywhere else fail the gate.
panic-gate:
	@bad=$$(grep -rl 'panic(' internal/ --include='*.go' \
		| grep -v '_test\.go$$' \
		| grep -vFx -f panic_allowlist.txt || true); \
	if [ -n "$$bad" ]; then \
		echo "panic( found outside panic_allowlist.txt:"; \
		echo "$$bad"; \
		echo "Convert user-reachable failures to typed errors, or audit the"; \
		echo "site, comment the invariant, and add the file to the allowlist."; \
		exit 1; \
	fi

# The full suite under -race is slow on small machines; the rl, estimator,
# meta, bench and service packages exercise every goroutine this repo
# spawns (the service adds the session/registry/drain concurrency). The
# bench integration tests alone run ~8 min under -race on one core, so
# give the run headroom beyond go test's 10 min default.
race:
	$(GO) test -race -timeout 30m ./internal/rl/ ./internal/estimator/ ./internal/meta/ ./internal/bench/ ./internal/engine/ ./internal/service/ ./internal/wire/ ./internal/netchaos/ .

verify: build vet staticcheck panic-gate test race

# bench prints the go-test benchmark slices, then appends stamped
# snapshots to the committed perf trajectory (BENCH_nn.json /
# BENCH_rl.json / BENCH_engine.json / BENCH_serve.json) via the
# internal/bench perf suites.
# All runs share one -benchtime so the numbers are comparable:
#   make bench BENCHTIME=100ms BENCHPKGS="./internal/nn/ ./internal/rl/ ./internal/estimator/"
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run=^$$ $(BENCHPKGS)
	$(GO) run ./cmd/benchfig -bench all -benchtime $(BENCHTIME)

# experiments regenerates the measured perf tables of EXPERIMENTS.md from
# the committed BENCH_*.json snapshots (see the BENCH markers there).
experiments:
	$(GO) run ./cmd/benchfig -md -write EXPERIMENTS.md BENCH_nn.json BENCH_rl.json BENCH_engine.json BENCH_serve.json BENCH_fleet.json

# Serve gate: the admission-control and tenancy surface under the race
# detector — the chaos harness units, the tenant-isolation acceptance
# test (stalled + reset tenants vs healthy byte-identical tenants), the
# auth/quota/deadline/drain-race suites, client retry replay — then a
# statement-coverage floor on internal/service.
SERVICE_COVER_FLOOR ?= 75
serve-conformance:
	$(GO) test -race -timeout 20m ./internal/netchaos/
	$(GO) test -race -timeout 20m -run 'Chaos|Auth|Quota|Tenant|Sheds|Deadline|Idle|DrainRaces|V1|Resolve|Timeout' ./internal/service/
	$(GO) test -race -timeout 20m ./client/ ./internal/wire/
	$(GO) test -coverprofile=cover_service.out -covermode=atomic -timeout 30m ./internal/service/
	@total=$$($(GO) tool cover -func=cover_service.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal/service coverage: $$total% (floor $(SERVICE_COVER_FLOOR)%)"; \
	awk -v have=$$total -v floor=$(SERVICE_COVER_FLOOR) 'BEGIN { exit !(have+0 >= floor+0) }' || \
		{ echo "internal/service coverage $$total% fell below the $(SERVICE_COVER_FLOOR)% floor"; exit 1; }

# serve-smoke proves the generation service end to end with the real
# binary: build sqlgen, start `sqlgen serve`, stream queries through the
# Go client under a 100ms-per-row budget, then SIGTERM and require a
# clean drain. The env-gated binary test in cmd/sqlgen drives it.
serve-smoke:
	$(GO) build -o /tmp/sqlgen-smoke ./cmd/sqlgen
	SQLGEN_BIN=/tmp/sqlgen-smoke $(GO) test -v -timeout 5m -run 'TestServeBinarySmoke|TestServeBinaryAuthQuota' ./cmd/sqlgen/

# Engine conformance gate: the driver/dialect unit suite plus a bounded
# cross-engine oracle sweep — every producer's statements rendered per
# dialect, executed and estimated on both in-tree drivers over shared
# data, with zero tolerated violations.
engine-conformance:
	$(GO) test -timeout 10m ./internal/engine/
	$(GO) test -timeout 15m -run 'CrossEngine|TestSelfTestCross|TestCrossCheckFacade' ./internal/oracle/ .

# Fleet gate: the sharded-trainer conformance matrix under the race
# detector — shards=1 byte-identity, sharded replay identity, the meta
# pretrain equivalents, shard-failure chaos refills — plus the wire /
# session / client demux regressions, then a statement-coverage floor on
# internal/rl (the profile is left in cover_rl.out for CI to upload).
RL_COVER_FLOOR ?= 85
fleet-conformance:
	$(GO) test -race -timeout 20m -run 'Shard|Fleet|SplitEpisodes' ./internal/rl/ ./internal/meta/
	$(GO) test -race -timeout 20m -run 'Pipe|Handshake|Malformed|CancelRacesDone' ./internal/wire/ ./internal/service/
	$(GO) test -race -timeout 20m ./client/
	$(GO) test -coverprofile=cover_rl.out -covermode=atomic -timeout 30m ./internal/rl/
	@total=$$($(GO) tool cover -func=cover_rl.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "internal/rl coverage: $$total% (floor $(RL_COVER_FLOOR)%)"; \
	awk -v have=$$total -v floor=$(RL_COVER_FLOOR) 'BEGIN { exit !(have+0 >= floor+0) }' || \
		{ echo "internal/rl coverage $$total% fell below the $(RL_COVER_FLOOR)% floor"; exit 1; }

# Chaos gate: the fault-tolerance suites under the race detector — the
# fault injector and retry/breaker units, durable-write crash safety,
# checkpoint corruption matrices, the rollout quarantine and divergence
# watchdog, and a full conformance sweep with 5% injected backend faults.
chaos:
	$(GO) test -race -timeout 20m ./internal/faultinject/ ./internal/resilience/ ./internal/durable/
	$(GO) test -race -timeout 20m -run 'Chaos|Store|Quarantine|Corruption|Legacy|V2|Health' ./internal/rl/ ./internal/nn/
	$(GO) test -race -timeout 20m -run 'FaultInjection' ./internal/oracle/

# Short-budget fuzzing of the conformance surfaces (parser round-trip, FSM
# walk validity, oracle sweeps), continuing from the checked-in corpora
# under testdata/fuzz/. Go allows one -fuzz target per invocation, so the
# targets run sequentially; FUZZTIME=2m make fuzz digs deeper locally.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/parser/
	$(GO) test -run=^$$ -fuzz=FuzzFSMWalk -fuzztime=$(FUZZTIME) ./internal/fsm/
	$(GO) test -run=^$$ -fuzz=FuzzOracle -fuzztime=$(FUZZTIME) ./internal/oracle/
