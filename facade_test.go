package learnedsqlgen

import (
	"strings"
	"testing"
)

func openTPCH(t testing.TB) *DB {
	t.Helper()
	db, err := OpenBenchmark("tpch", 0.05, &Options{SampleValues: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenBenchmark(t *testing.T) {
	db := openTPCH(t)
	if db.Name() != "tpch" {
		t.Errorf("Name = %q", db.Name())
	}
	tables := db.Tables()
	if len(tables) != 8 {
		t.Errorf("tables = %d, want 8", len(tables))
	}
	if tables["lineitem"] == 0 {
		t.Error("lineitem empty")
	}
	if _, err := OpenBenchmark("nope", 1, nil); err == nil {
		t.Error("unknown benchmark must fail")
	}
	if _, err := OpenBenchmark("tpch", -1, nil); err == nil {
		t.Error("negative scale must fail")
	}
}

func TestNilOptionsDefaults(t *testing.T) {
	var opt *Options
	if opt.sampleValues() != 100 {
		t.Error("default k must be 100 (paper setting)")
	}
	if opt.seed() != 1 {
		t.Error("default seed must be 1")
	}
	cfg := opt.fsmConfig()
	if !cfg.AllowAggregates || cfg.AllowInsert {
		t.Error("default grammar must allow aggregates, not DML")
	}
}

func TestGrammarOptionsApplied(t *testing.T) {
	opt := &Options{Grammar: &GrammarOptions{
		MaxJoins: 1, MaxSelectItems: 2, MaxPredicates: 2,
		AllowInsert: true,
	}}
	cfg := opt.fsmConfig()
	if cfg.MaxJoins != 1 || cfg.MaxSelectItems != 2 || cfg.MaxPredicates != 2 {
		t.Errorf("limits not applied: %+v", cfg)
	}
	if !cfg.AllowInsert || cfg.AllowUpdate || cfg.AllowAggregates {
		t.Errorf("booleans not applied: %+v", cfg)
	}
}

func TestExecuteAndEstimate(t *testing.T) {
	db := openTPCH(t)
	res, err := db.Execute("SELECT region.r_name FROM region WHERE region.r_regionkey < 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality != 3 || len(res.Rows) != 3 {
		t.Errorf("cardinality = %d", res.Cardinality)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "region.r_name" {
		t.Errorf("columns = %v", res.Columns)
	}

	card, cost, err := db.Estimate("SELECT region.r_name FROM region")
	if err != nil {
		t.Fatal(err)
	}
	if card != 5 || cost <= 0 {
		t.Errorf("estimate = %v, %v", card, cost)
	}

	if _, err := db.Execute("not sql"); err == nil {
		t.Error("bad SQL must fail Execute")
	}
	if _, _, err := db.Estimate("not sql"); err == nil {
		t.Error("bad SQL must fail Estimate")
	}
}

func TestExecuteDMLDoesNotMutate(t *testing.T) {
	db := openTPCH(t)
	before := db.Tables()["region"]
	res, err := db.Execute("DELETE FROM region")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality != before {
		t.Errorf("delete affected %d, want %d", res.Cardinality, before)
	}
	if db.Tables()["region"] != before {
		t.Error("Execute(DELETE) must not mutate the opened database")
	}
}

func TestGeneratorEndToEnd(t *testing.T) {
	db := openTPCH(t)
	c := RangeConstraint(Cardinality, 1, 500)
	gen := db.NewGenerator(c)
	if gen.Constraint() != c {
		t.Error("constraint not stored")
	}
	trace := gen.TrainAdaptive(10, 10)
	if len(trace) == 0 || len(trace) > 10 {
		t.Errorf("trace length = %d", len(trace))
	}
	out := gen.Generate(8)
	if len(out) != 8 {
		t.Fatalf("Generate = %d", len(out))
	}
	for _, q := range out {
		if !strings.HasPrefix(q.SQL, "SELECT") {
			t.Errorf("unexpected statement: %s", q.SQL)
		}
		// Everything generated must execute.
		if _, err := db.Execute(q.SQL); err != nil {
			t.Fatalf("generated SQL fails: %q: %v", q.SQL, err)
		}
	}
	sat, attempts := gen.GenerateSatisfied(3, 200)
	if attempts > 200 {
		t.Error("attempt cap ignored")
	}
	for _, q := range sat {
		if !q.Satisfied {
			t.Error("unsatisfied result")
		}
	}
}

func TestMustGenerateSatisfiedPanicsWhenImpossible(t *testing.T) {
	db := openTPCH(t)
	gen := db.NewGenerator(RangeConstraint(Cardinality, 1e17, 1e18))
	defer func() {
		if recover() == nil {
			t.Error("MustGenerateSatisfied must panic on impossible constraints")
		}
	}()
	gen.MustGenerateSatisfied(1, 5)
}

func TestBaselineFacades(t *testing.T) {
	db := openTPCH(t)
	c := RangeConstraint(Cardinality, 1, 1e6)
	rnd := db.RandomGenerator(c)
	if got := rnd.Generate(5); len(got) != 5 {
		t.Error("random baseline broken")
	}
	tpl, err := db.TemplateGenerator(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl.Templates) == 0 {
		t.Error("template baseline has no templates")
	}
	custom, err := db.TemplateGenerator(c, []string{
		"SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > 1000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(custom.Templates) != 1 {
		t.Error("custom template list ignored")
	}
}

func TestMetaGeneratorFacade(t *testing.T) {
	db := openTPCH(t)
	m := db.NewMetaGenerator(MetaDomain{Metric: Cardinality, Lo: 0, Hi: 600, K: 3})
	if tr := m.Pretrain(2, 6); len(tr) != 2 {
		t.Error("pretrain trace size")
	}
	a := m.Adapt(RangeConstraint(Cardinality, 100, 200))
	a.Train(2, 6)
	if out := a.Generate(3); len(out) != 3 {
		t.Error("adapted generate broken")
	}
	if _, attempts := a.GenerateSatisfied(1, 10); attempts > 10 {
		t.Error("attempt cap ignored")
	}
}

func TestOpenCustom(t *testing.T) {
	def := SchemaDef{
		Name: "mini",
		Tables: []TableDef{
			{Name: "a", Columns: []ColumnDef{
				{Name: "id", Type: Int, PrimaryKey: true},
				{Name: "v", Type: Float},
				{Name: "tag", Type: String, Categorical: true},
			}},
			{Name: "b", Columns: []ColumnDef{
				{Name: "id", Type: Int, PrimaryKey: true},
				{Name: "aid", Type: Int},
			}},
		},
		ForeignKeys: []ForeignKeyDef{{FromTable: "b", FromColumn: "aid", ToTable: "a", ToColumn: "id"}},
	}
	rows := map[string][][]any{
		"a": {{1, 1.5, "x"}, {2, 2.5, "y"}, {int64(3), 3.5, "x"}},
		"b": {{1, 1}, {2, 2}, {3, 3}, {4, 1}},
	}
	db, err := OpenCustom(def, rows, &Options{SampleValues: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if db.Name() != "mini" {
		t.Errorf("name = %q", db.Name())
	}
	res, err := db.Execute("SELECT b.id FROM b JOIN a ON b.aid = a.id WHERE a.tag = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality != 3 { // aids 1 and 3 are 'x'; b rows 1, 3, 4
		t.Errorf("cardinality = %d, want 3", res.Cardinality)
	}

	// Generation works on custom schemas too.
	gen := db.NewGenerator(RangeConstraint(Cardinality, 1, 10))
	gen.TrainAdaptive(5, 10)
	for _, q := range gen.Generate(5) {
		if _, err := db.Execute(q.SQL); err != nil {
			t.Fatalf("generated SQL fails on custom schema: %q: %v", q.SQL, err)
		}
	}
}

func TestOpenCustomErrors(t *testing.T) {
	good := SchemaDef{Name: "g", Tables: []TableDef{
		{Name: "t", Columns: []ColumnDef{{Name: "x", Type: Int}}},
	}}
	if _, err := OpenCustom(good, map[string][][]any{"nope": {{1}}}, nil); err == nil {
		t.Error("rows for unknown table must fail")
	}
	if _, err := OpenCustom(good, map[string][][]any{"t": {{"wrong"}}}, nil); err == nil {
		t.Error("type mismatch must fail")
	}
	if _, err := OpenCustom(good, map[string][][]any{"t": {{struct{}{}}}}, nil); err == nil {
		t.Error("unsupported cell type must fail")
	}
	bad := SchemaDef{Name: "b", Tables: []TableDef{
		{Name: "t", Columns: []ColumnDef{{Name: "x", Type: Int}, {Name: "x", Type: Int}}},
	}}
	if _, err := OpenCustom(bad, nil, nil); err == nil {
		t.Error("duplicate column must fail")
	}
}

func TestDefaultDataIsDeterministic(t *testing.T) {
	a := openTPCH(t)
	b := openTPCH(t)
	ra, err := a.Execute("SELECT nation.n_name FROM nation ORDER BY nation.n_name")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Execute("SELECT nation.n_name FROM nation ORDER BY nation.n_name")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra.Rows {
		if ra.Rows[i][0] != rb.Rows[i][0] {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestGeneratorSaveLoad(t *testing.T) {
	db := openTPCH(t)
	c := RangeConstraint(Cardinality, 1, 500)
	gen := db.NewGenerator(c)
	gen.Train(3, 10)
	path := t.TempDir() + "/gen.model"
	if err := gen.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := db.LoadGenerator(c, path)
	if err != nil {
		t.Fatal(err)
	}
	if out := loaded.Generate(5); len(out) != 5 {
		t.Fatal("loaded generator cannot generate")
	}
	// Loading into a mismatched vocabulary must fail loudly.
	other, err := OpenBenchmark("tpch", 0.05, &Options{SampleValues: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadGenerator(c, path); err == nil {
		t.Error("vocabulary mismatch must fail")
	}
	if _, err := db.LoadGenerator(c, path+".missing"); err == nil {
		t.Error("missing file must fail")
	}
}

func TestWorkloadFacade(t *testing.T) {
	db := openTPCH(t)
	gen := db.NewGenerator(RangeConstraint(Cardinality, 1, 1e6))
	gen.Train(2, 10)
	queries := gen.Generate(12)

	profile := AnalyzeWorkload(queries)
	if profile.Total != 12 {
		t.Fatalf("profile total = %d", profile.Total)
	}
	if profile.DistinctSkeletons < 1 {
		t.Error("no skeletons")
	}

	path := t.TempDir() + "/workload.sql"
	if err := WriteWorkloadFile(path, queries, Cardinality); err != nil {
		t.Fatal(err)
	}
	back, err := db.ReadWorkloadFile(path, Cardinality)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(queries) {
		t.Fatalf("read %d, want %d", len(back), len(queries))
	}
	for i := range back {
		if back[i].SQL != queries[i].SQL {
			t.Errorf("statement %d mismatch", i)
		}
		if back[i].Measured != queries[i].Measured {
			t.Errorf("re-measured value %d: %v vs %v", i, back[i].Measured, queries[i].Measured)
		}
	}
	if _, err := db.ReadWorkloadFile(path+".missing", Cardinality); err == nil {
		t.Error("missing file must fail")
	}
}

func TestTrueExecutionOption(t *testing.T) {
	db, err := OpenBenchmark("tpch", 0.05, &Options{
		SampleValues: 10, Seed: 1, TrueExecutionRewards: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	card, _, err := db.Estimate("SELECT region.r_name FROM region")
	if err != nil {
		t.Fatal(err)
	}
	// Estimate always uses the estimator; generation uses true execution.
	_ = card
	gen := db.NewGenerator(RangeConstraint(Cardinality, 1, 100))
	gen.Train(1, 5)
	out := gen.Generate(3)
	for _, g := range out {
		if g.Measured != float64(int(g.Measured)) {
			t.Errorf("true-execution cardinality must be integral: %v", g.Measured)
		}
	}
}

func TestDisableSelectOption(t *testing.T) {
	db, err := OpenBenchmark("tpch", 0.05, &Options{
		SampleValues: 10, Seed: 1,
		Grammar: &GrammarOptions{MaxPredicates: 2, AllowDelete: true, DisableSelect: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := db.NewGenerator(RangeConstraint(Cardinality, 0, 1e9))
	for _, q := range gen.Generate(10) {
		if strings.HasPrefix(q.SQL, "SELECT") {
			t.Fatalf("SELECT generated with DisableSelect: %s", q.SQL)
		}
	}
}

func TestExplainFacade(t *testing.T) {
	db := openTPCH(t)
	plan, err := db.Explain("SELECT orders.o_orderkey FROM orders JOIN customer ON orders.o_custkey = customer.c_custkey WHERE customer.c_acctbal > 0 ORDER BY orders.o_orderkey")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"output", "sort", "filter", "hash-join", "scan orders", "scan customer"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
	if _, err := db.Explain("not sql"); err == nil {
		t.Error("bad SQL must fail")
	}
}
