package learnedsqlgen_test

import (
	"fmt"
	"log"

	"learnedsqlgen"
)

// Example_quantizedInference trains a small policy and generates on the
// int8 quantized inference path. Training always runs in float64;
// Options.QuantizedInference only switches the generation-time sampling
// kernels, so the printed count — not the sampled SQL text, which is
// tolerance-equivalent rather than byte-identical to the float64 path —
// is the stable observable across architectures.
func Example_quantizedInference() {
	db, err := learnedsqlgen.OpenBenchmark("tpch", 0.05, &learnedsqlgen.Options{
		SampleValues:       10,
		Seed:               1,
		QuantizedInference: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := db.NewGenerator(learnedsqlgen.RangeConstraint(learnedsqlgen.Cardinality, 10, 500))
	gen.Train(2, 16)

	queries := gen.Generate(5)
	complete := 0
	for _, q := range queries {
		if q.SQL != "" {
			complete++
		}
	}
	fmt.Printf("generated %d/%d complete queries on the quantized path\n", complete, len(queries))
	// Output:
	// generated 5/5 complete queries on the quantized path
}
