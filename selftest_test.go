package learnedsqlgen

import (
	"context"
	"testing"
)

func TestSelfTestCleanSweep(t *testing.T) {
	db, err := OpenBenchmark("xuetang", 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := RangeConstraint(Cardinality, 1, 1000)
	rep, err := db.SelfTest(context.Background(), c, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("conformance violations:\n%s", rep)
	}
	if len(rep.Producers) != 4 {
		t.Fatalf("want 4 producers, got %d", len(rep.Producers))
	}
	for _, pr := range rep.Producers {
		if pr.Queries != 40 {
			t.Errorf("%s: %d queries, want 40", pr.Name, pr.Queries)
		}
	}
}

func TestSelfTestCancelled(t *testing.T) {
	db, err := OpenBenchmark("xuetang", 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.SelfTest(ctx, RangeConstraint(Cardinality, 1, 1000), 10); err == nil {
		t.Fatal("cancelled SelfTest returned nil error")
	}
}
