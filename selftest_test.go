package learnedsqlgen

import (
	"context"
	"testing"
)

func TestSelfTestCleanSweep(t *testing.T) {
	db, err := OpenBenchmark("xuetang", 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := RangeConstraint(Cardinality, 1, 1000)
	rep, err := db.SelfTest(context.Background(), c, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("conformance violations:\n%s", rep)
	}
	if len(rep.Producers) != 4 {
		t.Fatalf("want 4 producers, got %d", len(rep.Producers))
	}
	for _, pr := range rep.Producers {
		if pr.Queries != 40 {
			t.Errorf("%s: %d queries, want 40", pr.Name, pr.Queries)
		}
	}
}

// TestSelfTestQuantizedSweep runs the full conformance oracle with the
// int8 inference path selected: the RL producer (and its cache-disabled
// determinism twin) generate through quantized kernels, and the sweep
// must stay violation-free — parse round-trips, FSM replay, differential
// cardinality and metamorphic checks all hold on quantized output, and
// byte-identity within the quantized path is certified by the twin.
func TestSelfTestQuantizedSweep(t *testing.T) {
	db, err := OpenBenchmark("xuetang", 0.05, &Options{QuantizedInference: true})
	if err != nil {
		t.Fatal(err)
	}
	c := RangeConstraint(Cardinality, 1, 1000)
	rep, err := db.SelfTest(context.Background(), c, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("conformance violations on the quantized path:\n%s", rep)
	}
}

func TestSelfTestCancelled(t *testing.T) {
	db, err := OpenBenchmark("xuetang", 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.SelfTest(ctx, RangeConstraint(Cardinality, 1, 1000), 10); err == nil {
		t.Fatal("cancelled SelfTest returned nil error")
	}
}
