package learnedsqlgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/engine"
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/faultinject"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/resilience"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/storage"
	"learnedsqlgen/internal/token"
)

// Metric selects the constrained quantity.
type Metric = rl.Metric

// Supported metrics.
const (
	Cardinality = rl.Cardinality
	Cost        = rl.Cost
)

// Constraint is a point or range target on a metric.
type Constraint = rl.Constraint

// PointConstraint targets Metric = c with the paper's 10% accuracy bound.
func PointConstraint(m Metric, c float64) Constraint { return rl.PointConstraint(m, c) }

// RangeConstraint targets Metric ∈ [lo, hi].
func RangeConstraint(m Metric, lo, hi float64) Constraint { return rl.RangeConstraint(m, lo, hi) }

// Generated is one produced SQL statement with its measured metric value.
type Generated = rl.Generated

// Options tunes database opening. The zero value (or nil) uses the paper's
// defaults.
type Options struct {
	// SampleValues is k, the number of cell values sampled per
	// non-categorical column for the token vocabulary (§4.1; paper: 100).
	SampleValues int
	// Seed drives dataset generation, sampling and training.
	Seed int64
	// Grammar bounds the generated query shapes; zero value means
	// fsm.DefaultConfig-equivalent (SELECT queries with joins,
	// aggregation, nesting and ordering; DML off).
	Grammar *GrammarOptions
	// TrueExecutionRewards makes the RL environment execute each
	// (partial) query against a snapshot instead of estimating it — exact
	// feedback at a large cost in training speed (the paper uses
	// estimates "for the efficiency issue").
	TrueExecutionRewards bool
	// Workers is the number of concurrent episode-rollout goroutines used
	// during training and generation. 0 or 1 rolls out serially;
	// runtime.GOMAXPROCS(0) saturates the machine. Generated queries and
	// training traces are byte-identical for every value — each episode
	// draws from its own RNG stream fanned out deterministically from
	// Seed — so raising Workers only changes wall-clock time.
	Workers int
	// Shards is the number of data-parallel trainer shards generators
	// opened from this DB train with. 0 or 1 uses the single-process
	// trainer. With N > 1 every generator runs an rl.ShardedTrainer: N
	// replicas of the environment train concurrently (each with its own
	// Workers-sized rollout pool) and exchange weights per epoch by
	// all-reduce parameter averaging. shards=1 is byte-identical to the
	// plain trainer, and a sharded run replays byte-identically per Seed
	// (shard episode streams fan out of Seed exactly like per-episode
	// streams do). Per-epoch episode budgets should grow with the fleet
	// (weak scaling) — see the "Fleet training" section of
	// ARCHITECTURE.md.
	Shards int
	// EstimatorCacheSize bounds the memoizing estimator cache (entries)
	// that absorbs repeated partial-query estimations across episodes.
	// 0 selects the default (65536); negative disables memoization.
	EstimatorCacheSize int
	// PrefixCacheSize bounds the actor prefix-state cache used during
	// generation: the policy network's recurrent state for a token prefix
	// is memoized per batch, so episodes sharing a prefix skip its
	// recomputation. 0 selects the default (4096 entries); negative
	// disables it. Generated queries are identical either way.
	PrefixCacheSize int
	// QuantizedInference generates with int8 fused inference kernels:
	// each generation batch snapshots the policy network's weights into a
	// quantized form and rolls episodes through it, leaving training in
	// float64. The committed BENCH_nn.json / BENCH_rl.json snapshots
	// record what it buys: ~1.3× on a bare policy step, less end-to-end
	// (the per-batch snapshot rebuild and the environment's FSM/estimator
	// work dilute it, so the batch-level gain grows with generation batch
	// size and model size). The cost is exact byte-identity with the
	// float64 path: quantized logits track float64 logits within
	// a small documented tolerance, so individual sampled queries can
	// occasionally differ where the policy was near-indifferent anyway.
	// The quantized path itself stays deterministic and independent of
	// Workers and PrefixCacheSize.
	QuantizedInference bool
	// TrainBudget bounds the wall-clock time of any training call on
	// generators opened from this DB. When the budget expires, training
	// stops at the next episode boundary and returns the trace so far
	// with an error wrapping ErrBudgetExceeded. 0 means no budget.
	TrainBudget time.Duration
	// OnEpoch, when non-nil, is invoked after every completed training
	// epoch (pre-training round for MetaGenerator) with its stats —
	// progress bars, early logging, adaptive stopping. Returning a
	// non-nil error aborts training; the error is reported wrapped in
	// *EpochAbortError.
	OnEpoch func(EpochStats) error
	// Resilience, when non-nil, wraps the estimator (and, under
	// TrueExecutionRewards, the executor) with retry-with-backoff and a
	// circuit breaker: transient backend faults are retried with jittered
	// exponential backoff, repeated failures trip the breaker, and the
	// counters surface in TrainStats. Estimation refusals ("this prefix is
	// not executable") are definitive answers, never retried. The zero
	// value selects sensible defaults; nil disables the layer entirely —
	// and a fault-free run behaves byte-identically with it on or off.
	Resilience *ResilienceOptions
	// FaultInjection, when non-nil, injects deterministic, seedable faults
	// (transient errors, latency spikes, panics, NaN feedback) into the
	// backend stack beneath the resilience layer. It exists for chaos
	// testing the training runtime; production runs leave it nil.
	FaultInjection *FaultInjectionOptions
	// Engine routes reward measurement (estimates and, under
	// TrueExecutionRewards, execution) through a registered engine driver
	// instead of wiring the in-tree estimator/executor directly. In-tree
	// drivers: "reference" (the estimator/executor behind the driver
	// interface), "inprocess" (the same engine reached through a real
	// database/sql driver — SQL text out, plan text and rows back), and
	// "sql" (a generic database/sql adapter for external engines; see
	// DSN). Empty keeps the default direct wiring. The resilience and
	// fault-injection layers wrap the driver exactly as they wrap the
	// default backends, and SelfTest cross-checks the driver against the
	// in-tree executor when one is configured.
	Engine string
	// DSN configures the Options.Engine driver. Empty shares the opened
	// dataset with a "reference" or "inprocess" engine; otherwise it is
	// driver-specific — "dataset=tpch scale=0.05 seed=1" opens a generated
	// dataset, "handle=<name>" a registered in-memory database, and the
	// "sql" driver takes "driver=<sql driver> dialect=<name> dsn=<dsn>".
	DSN string
	// MaxGradNorm tunes the divergence watchdog guarding every gradient
	// update: batches with non-finite or exploding gradients are discarded
	// and a diverged step is rolled back to the last healthy weights, so
	// training survives poisoned feedback. 0 selects the default ceiling;
	// negative disables the watchdog.
	MaxGradNorm float64
}

// ResilienceOptions tunes the retry/breaker layer (Options.Resilience).
// Zero fields select the defaults documented on each.
type ResilienceOptions struct {
	// MaxAttempts is the total tries per backend call (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms);
	// MaxDelay caps its exponential growth (default 100ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// retry-exhausted calls (default 16; negative disables the breaker);
	// BreakerCooldown is how long it stays open (default 250ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// FaultInjectionOptions configures deterministic backend fault injection
// (Options.FaultInjection). Rates are probabilities in [0, 1].
type FaultInjectionOptions struct {
	// Seed keys the fault stream; the same seed injects the same faults
	// at the same backend call numbers.
	Seed int64
	// ErrorRate injects transient errors; LatencyRate injects Latency
	// delays (default 200µs); PanicRate injects panics (recovered and
	// quarantined by the rollout engine); NaNRate poisons estimator
	// feedback with NaN (absorbed by the divergence watchdog).
	ErrorRate   float64
	LatencyRate float64
	Latency     time.Duration
	PanicRate   float64
	NaNRate     float64
}

// GrammarOptions mirrors the FSM limits a user may adjust.
type GrammarOptions struct {
	MaxJoins        int
	MaxSelectItems  int
	MaxPredicates   int
	MaxNestDepth    int
	AllowAggregates bool
	AllowOrderBy    bool
	// AllowLike enables LIKE predicates (the paper's future-work item,
	// implemented here).
	AllowLike   bool
	AllowInsert bool
	AllowUpdate bool
	AllowDelete bool
	// DisableSelect removes top-level SELECT statements, for per-family
	// DML workload generation.
	DisableSelect bool
}

func (o *Options) sampleValues() int {
	if o == nil || o.SampleValues <= 0 {
		return 100
	}
	return o.SampleValues
}

func (o *Options) seed() int64 {
	if o == nil {
		return 1
	}
	return o.Seed
}

func (o *Options) workers() int {
	if o == nil {
		return 1
	}
	return o.Workers
}

func (o *Options) shards() int {
	if o == nil || o.Shards < 1 {
		return 1
	}
	return o.Shards
}

func (o *Options) prefixCacheSize() int {
	if o == nil {
		return 0
	}
	return o.PrefixCacheSize
}

func (o *Options) quantizedInference() bool {
	if o == nil {
		return false
	}
	return o.QuantizedInference
}

func (o *Options) trainBudget() time.Duration {
	if o == nil {
		return 0
	}
	return o.TrainBudget
}

func (o *Options) onEpoch() func(EpochStats) error {
	if o == nil {
		return nil
	}
	return o.OnEpoch
}

func (o *Options) maxGradNorm() float64 {
	if o == nil {
		return 0
	}
	return o.MaxGradNorm
}

func (o *Options) engineName() string {
	if o == nil {
		return ""
	}
	return o.Engine
}

func (o *Options) engineDSN() string {
	if o == nil {
		return ""
	}
	return o.DSN
}

func (o *Options) fsmConfig() fsm.Config {
	cfg := fsm.DefaultConfig()
	if o == nil || o.Grammar == nil {
		return cfg
	}
	g := o.Grammar
	if g.MaxJoins > 0 {
		cfg.MaxJoins = g.MaxJoins
	}
	if g.MaxSelectItems > 0 {
		cfg.MaxSelectItems = g.MaxSelectItems
	}
	if g.MaxPredicates > 0 {
		cfg.MaxPredicates = g.MaxPredicates
	}
	cfg.MaxNestDepth = g.MaxNestDepth
	cfg.AllowAggregates = g.AllowAggregates
	cfg.AllowOrderBy = g.AllowOrderBy
	cfg.AllowLike = g.AllowLike
	cfg.AllowInsert = g.AllowInsert
	cfg.AllowUpdate = g.AllowUpdate
	cfg.AllowDelete = g.AllowDelete
	cfg.DisableSelect = g.DisableSelect
	return cfg
}

// DB is an opened database ready for constraint-aware generation.
type DB struct {
	name            string
	seed            int64
	workers         int
	shards          int
	prefixCacheSize int
	quantized       bool
	trainBudget     time.Duration
	onEpoch         func(EpochStats) error
	maxGradNorm     float64
	env             *rl.Env
	raw             *storage.Database
	// driver is the Options.Engine driver reward measurement routes
	// through; nil with the default direct wiring. driverShared records
	// that the driver provably wraps this DB's own storage (empty DSN),
	// which lets SelfTest demand exact cardinality agreement.
	driver       engine.Driver
	driverShared bool

	// Operation lifecycle: every training/generation call on generators
	// opened from this DB registers itself here, so Close can cancel
	// in-flight streams and drain them before the engine driver goes
	// away — a stream never races a closing connection pool.
	lifeMu   sync.Mutex
	closed   bool
	opSeq    uint64
	ops      map[uint64]context.CancelFunc
	inflight sync.WaitGroup
}

// ErrDBClosed is returned by operations started after Close (in-flight
// operations instead end with a cancellation whose cause is ErrDBClosed).
var ErrDBClosed = errors.New("learnedsqlgen: database is closed")

// beginOp registers one training/generation operation: it derives the
// operation context Close will cancel, and returns the completion func
// the caller must defer. Begun after Close, it fails with ErrDBClosed.
func (db *DB) beginOp(ctx context.Context) (context.Context, func(), error) {
	db.lifeMu.Lock()
	defer db.lifeMu.Unlock()
	if db.closed {
		return nil, nil, ErrDBClosed
	}
	octx, cancel := context.WithCancelCause(ctx)
	db.opSeq++
	id := db.opSeq
	if db.ops == nil {
		db.ops = map[uint64]context.CancelFunc{}
	}
	db.ops[id] = func() { cancel(ErrDBClosed) }
	// Add under lifeMu: Close flips closed before it Waits, so no Add can
	// race the Wait.
	db.inflight.Add(1)
	end := func() {
		cancel(nil)
		db.lifeMu.Lock()
		delete(db.ops, id)
		db.lifeMu.Unlock()
		db.inflight.Done()
	}
	return octx, end, nil
}

// OpenBenchmark opens one of the paper's three evaluation datasets
// ("tpch", "job", "xuetang") generated synthetically at the given scale
// (1.0 ≈ tens of thousands of rows; see internal/datagen).
func OpenBenchmark(name string, scale float64, opt *Options) (*DB, error) {
	raw, err := datagen.Generate(name, scale, opt.seed())
	if err != nil {
		return nil, err
	}
	return openStorage(name, raw, opt)
}

func openStorage(name string, raw *storage.Database, opt *Options) (*DB, error) {
	vocab := token.Build(raw, opt.sampleValues(), opt.seed())
	env := rl.NewEnv(raw, vocab, opt.fsmConfig())
	if opt != nil && opt.TrueExecutionRewards {
		env.TrueExecution = true
	}
	drv, shared, err := wireBackends(env, raw, opt)
	if err != nil {
		return nil, err
	}
	if opt != nil {
		if opt.EstimatorCacheSize < 0 {
			env.DisableCache()
		} else if opt.EstimatorCacheSize > 0 {
			env.SetCacheSize(opt.EstimatorCacheSize)
		}
	}
	return &DB{
		name:            name,
		seed:            opt.seed(),
		workers:         opt.workers(),
		shards:          opt.shards(),
		prefixCacheSize: opt.prefixCacheSize(),
		quantized:       opt.quantizedInference(),
		trainBudget:     opt.trainBudget(),
		onEpoch:         opt.onEpoch(),
		maxGradNorm:     opt.maxGradNorm(),
		env:             env,
		raw:             raw,
		driver:          drv,
		driverShared:    shared,
	}, nil
}

// openEngine resolves Options.Engine to a driver. An empty DSN with one
// of the in-tree engines shares the opened dataset — "reference" wraps
// it directly, "inprocess" registers it under a handle and reaches it
// through the database/sql layer; shared reports that case.
func openEngine(raw *storage.Database, opt *Options) (drv engine.Driver, shared bool, err error) {
	name := opt.engineName()
	if name == "" {
		return nil, false, nil
	}
	if opt.engineDSN() == "" {
		switch name {
		case "reference":
			return engine.NewReference(raw), true, nil
		case "inprocess":
			handle := fmt.Sprintf("facade-%p", raw)
			engine.RegisterTestDatabase(handle, raw)
			drv, err = engine.Open(name, "handle="+handle)
			return drv, true, err
		}
	}
	drv, err = engine.Open(name, opt.engineDSN())
	if err != nil {
		return nil, false, err
	}
	if err := pingEngine(drv, name); err != nil {
		drv.Close()
		return nil, false, err
	}
	return drv, false, nil
}

// pingEngine probes a freshly opened driver's reachability when it
// supports the probe, so `-engine sql` with a dead DSN is one clean
// open-time error instead of a stalled training loop.
func pingEngine(drv engine.Driver, name string) error {
	p, ok := drv.(engine.Pinger)
	if !ok {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Ping(ctx); err != nil {
		return fmt.Errorf("learnedsqlgen: engine %q unreachable: %w", name, err)
	}
	return nil
}

// wireBackends layers the environment's backend stacks according to opt:
// cache (kept outermost by Env.SetBackend) → resilience → fault
// injection → raw backend, where the raw backend is the Options.Engine
// driver when one is configured and the in-tree estimator (or a fresh
// executor-per-snapshot for true execution) otherwise. With no engine
// and both decorator options nil the environment keeps its raw backends
// and behaves exactly as before.
func wireBackends(env *rl.Env, raw *storage.Database, opt *Options) (engine.Driver, bool, error) {
	drv, shared, err := openEngine(raw, opt)
	if err != nil {
		return nil, false, err
	}
	if drv == nil && (opt == nil || (opt.Resilience == nil && opt.FaultInjection == nil)) {
		return nil, false, nil
	}
	var estB estimator.Backend = env.Est
	var execB executor.Backend = rl.CloneExec{DB: raw}
	if drv != nil {
		estB = drv
		execB = drv
	}
	if fi := opt.FaultInjection; fi != nil {
		inj := faultinject.New(faultinject.Config{
			Seed:        fi.Seed,
			ErrorRate:   fi.ErrorRate,
			LatencyRate: fi.LatencyRate,
			Latency:     fi.Latency,
			PanicRate:   fi.PanicRate,
			NaNRate:     fi.NaNRate,
		})
		estB = faultinject.NewEstimator(estB, inj)
		execB = faultinject.NewExecutor(execB, inj)
	}
	if r := opt.Resilience; r != nil {
		pol := resilience.Policy{
			MaxAttempts:      r.MaxAttempts,
			BaseDelay:        r.BaseDelay,
			MaxDelay:         r.MaxDelay,
			BreakerThreshold: r.BreakerThreshold,
			BreakerCooldown:  r.BreakerCooldown,
			Seed:             opt.seed(),
		}
		met := &resilience.Metrics{}
		env.Res = met
		estB = resilience.NewEstimator(estB, pol, met)
		execB = resilience.NewExecutor(execB, pol, met)
	}
	env.SetBackend(estB)
	env.SetExecBackend(execB)
	return drv, shared, nil
}

// EngineStats reports the configured engine driver's identity and call
// counters; ok is false when the DB uses the default direct wiring (or
// the driver does not count calls). Nonzero counters prove rewards were
// driver-sourced.
type EngineStats struct {
	// Engine and Dialect echo the driver's capabilities.
	Engine  string
	Dialect string
	// Estimates and Executes count backend calls that reached the driver
	// (cache hits and injected faults never do).
	Estimates uint64
	Executes  uint64
}

// EngineStats snapshots the Options.Engine driver's call counters.
func (db *DB) EngineStats() (EngineStats, bool) {
	if db.driver == nil {
		return EngineStats{}, false
	}
	caps := db.driver.Capabilities()
	st := EngineStats{Engine: caps.Engine, Dialect: caps.Dialect}
	c, ok := db.driver.(engine.Counting)
	if !ok {
		return st, false
	}
	n := c.Counters()
	st.Estimates, st.Executes = n.Estimates, n.Executes
	return st, true
}

// Close shuts the DB down in order: new operations are refused with
// ErrDBClosed, every in-flight training/generation stream is cancelled
// (it observes cancellation at its next episode boundary and returns
// with cause ErrDBClosed), the last stream drains, and only then is the
// Options.Engine driver released (connection pools for
// database/sql-backed engines). Safe to call multiple times.
func (db *DB) Close() error {
	db.lifeMu.Lock()
	if db.closed {
		db.lifeMu.Unlock()
		return nil
	}
	db.closed = true
	cancels := make([]context.CancelFunc, 0, len(db.ops))
	for _, c := range db.ops {
		cancels = append(cancels, c)
	}
	db.lifeMu.Unlock()
	for _, c := range cancels {
		c()
	}
	db.inflight.Wait()
	if db.driver == nil {
		return nil
	}
	return db.driver.Close()
}

// Name returns the dataset name this DB was opened as.
func (db *DB) Name() string { return db.name }

// Tables lists table names with their row counts.
func (db *DB) Tables() map[string]int {
	out := map[string]int{}
	for _, t := range db.raw.Tables() {
		out[t.Meta.Name] = t.NumRows()
	}
	return out
}

// Result is the output of executing SQL against the database.
type Result struct {
	Columns     []string
	Rows        [][]string
	Cardinality int
}

// Execute parses and runs a SQL statement against a snapshot of the
// database (INSERT/UPDATE/DELETE never mutate the opened data).
func (db *DB) Execute(sql string) (*Result, error) {
	return db.ExecuteContext(context.Background(), sql)
}

// ExecuteContext is Execute with cancellation: the executor re-checks ctx
// at every pipeline stage boundary, so a runaway join can be abandoned
// mid-plan.
func (db *DB) ExecuteContext(ctx context.Context, sql string) (*Result, error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	res, err := executor.New(db.raw.Clone()).ExecuteContext(ctx, st)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: res.Columns, Cardinality: res.Cardinality}
	for _, r := range res.Rows {
		row := make([]string, len(r))
		for i, v := range r {
			row[i] = v.String()
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Estimate returns the optimizer-style estimated cardinality and cost of a
// SQL statement — the same feedback signal the RL environment uses.
func (db *DB) Estimate(sql string) (card, cost float64, err error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return 0, 0, err
	}
	est, err := db.env.Est.Estimate(st)
	if err != nil {
		return 0, 0, err
	}
	return est.Card, est.Cost, nil
}

// Explain renders an EXPLAIN-style operator breakdown of a statement's
// estimated cardinality and cost — the same numbers the RL environment
// scores queries with.
func (db *DB) Explain(sql string) (string, error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	plan, err := db.env.Est.Explain(st)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}
