package main

import (
	"fmt"
	"os"
	"time"

	"learnedsqlgen/internal/bench"
)

// runPerfBench measures one perf suite (or all of them) and appends the
// stamped snapshot to its BENCH_<area>.json history — the `make bench`
// emission step.
func runPerfBench(area, out string, benchtime time.Duration) int {
	areas := []string{area}
	if area == "all" {
		if out != "" {
			fmt.Fprintln(os.Stderr, "-out needs a single -bench area")
			return 2
		}
		areas = bench.PerfAreas()
	}
	for _, a := range areas {
		path := out
		if path == "" {
			path = "BENCH_" + a + ".json"
		}
		fmt.Printf("# perf suite %s (benchtime %s) -> %s\n", a, benchtime, path)
		snap, err := bench.RunPerfSuite(a, benchtime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		for _, r := range snap.Results {
			fmt.Printf("%-32s %12.0f ns/op %10.0f B/op %8.0f allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
			for k, v := range r.Extra {
				fmt.Printf("  %s=%.4g", k, v)
			}
			fmt.Println()
		}
		h, err := bench.LoadOrCreatePerfHistory(path, a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		h.Append(snap)
		if err := h.Save(path); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
		fmt.Printf("# appended run %d to %s\n", len(h.Runs), path)
	}
	return 0
}

// runPerfCompare diffs two snapshot files (latest run of each), or the
// last two runs of a single file, and exits 1 when any metric regressed
// beyond the threshold — the CI regression gate.
func runPerfCompare(args []string, threshold float64) int {
	var old, new *bench.PerfSnapshot
	var label string
	switch len(args) {
	case 1:
		h, err := bench.LoadPerfHistory(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			return 1
		}
		if len(h.Runs) < 2 {
			fmt.Fprintf(os.Stderr, "compare: %s has %d run(s), need 2\n", args[0], len(h.Runs))
			return 1
		}
		old, new = &h.Runs[len(h.Runs)-2], &h.Runs[len(h.Runs)-1]
		label = fmt.Sprintf("%s: run %d vs run %d", args[0], len(h.Runs)-1, len(h.Runs))
	case 2:
		ho, err := bench.LoadPerfHistory(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			return 1
		}
		hn, err := bench.LoadPerfHistory(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			return 1
		}
		// Cross-area files share no benchmark names, so a diff would pass
		// vacuously; reject the mix-up instead.
		if ho.Area != hn.Area {
			fmt.Fprintf(os.Stderr, "compare: area mismatch: %s is %q, %s is %q\n",
				args[0], ho.Area, args[1], hn.Area)
			return 2
		}
		old, new = ho.Latest(), hn.Latest()
		label = fmt.Sprintf("%s (latest) vs %s (latest)", args[0], args[1])
	default:
		fmt.Fprintln(os.Stderr, "compare: pass one BENCH file (last two runs) or two (latest of each)")
		return 2
	}
	fmt.Printf("# compare %s, threshold %.0f%%\n", label, 100*threshold)
	regs := bench.ComparePerf(old, new, threshold)
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Println("REGRESSION:", r)
	}
	return 1
}

// runPerfMD renders BENCH files as markdown; with -write it replaces the
// generated section of the named document in place (`make experiments`).
func runPerfMD(args []string, writeDoc string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "md: pass BENCH_*.json files")
		return 2
	}
	var hs []*bench.PerfHistory
	for _, path := range args {
		h, err := bench.LoadPerfHistory(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "md:", err)
			return 1
		}
		hs = append(hs, h)
	}
	rendered := bench.RenderPerfMarkdown(hs)
	if writeDoc == "" {
		fmt.Print(rendered)
		return 0
	}
	doc, err := os.ReadFile(writeDoc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "md:", err)
		return 1
	}
	updated, err := bench.UpdatePerfSection(doc, rendered)
	if err != nil {
		fmt.Fprintf(os.Stderr, "md: %s: %v\n", writeDoc, err)
		return 1
	}
	if err := os.WriteFile(writeDoc, updated, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "md:", err)
		return 1
	}
	fmt.Printf("# rewrote perf section of %s from %d snapshot file(s)\n", writeDoc, len(hs))
	return 0
}

// runPerfValidate schema-checks BENCH files — the CI bench-smoke gate.
func runPerfValidate(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "validate: pass BENCH_*.json files")
		return 2
	}
	for _, path := range args {
		h, err := bench.LoadPerfHistory(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "validate:", err)
			return 1
		}
		fmt.Printf("%s: ok (area %s, %d runs, %d benchmarks in latest)\n",
			path, h.Area, len(h.Runs), len(h.Latest().Results))
	}
	return 0
}
