// Command benchfig regenerates the paper's evaluation figures (§7) on the
// micro-scale reproduction datasets and prints the rows/series each figure
// plots. It is also the perf-trajectory tool behind `make bench` and
// `make experiments`: it runs the internal/bench perf suites, appends
// stamped snapshots to the committed BENCH_<area>.json histories, diffs
// snapshots for regressions, and regenerates the EXPERIMENTS.md tables.
//
// Usage:
//
//	benchfig -fig 4 -dataset tpch            # accuracy, cardinality
//	benchfig -fig 9 -dataset xuetang -quick  # meta-critic comparison
//	benchfig -fig calibrate -dataset tpch    # metric distribution helper
//
//	benchfig -bench all -benchtime 1s        # append BENCH_nn/rl.json runs
//	benchfig -compare BENCH_nn.json          # last two runs; exit 1 on regression
//	benchfig -compare old.json new.json -threshold 0.2
//	benchfig -md BENCH_nn.json BENCH_rl.json # print generated tables
//	benchfig -md -write EXPERIMENTS.md BENCH_nn.json BENCH_rl.json
//	benchfig -validate BENCH_nn.json         # schema check (CI bench-smoke)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"
	"time"

	"learnedsqlgen/internal/baselines"
	"learnedsqlgen/internal/bench"
	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/rl"
)

// main delegates to run so deferred profile writers flush before exit.
func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "", "figure to regenerate: 4, 5, 6, 7, 8, 9, 10, 11, 12, 'ablation', 'throughput', or 'calibrate'")
	dataset := flag.String("dataset", "tpch", "dataset: tpch, job, xuetang")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	sampleK := flag.Int("k", 50, "sampled values per column (η knob)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "parallel rollout workers (0 = all CPUs); results are identical for any value")
	quick := flag.Bool("quick", false, "use the reduced smoke-test budget")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	benchArea := flag.String("bench", "", "run a perf suite ('nn', 'rl' or 'all') and append a snapshot to BENCH_<area>.json")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark time budget for -bench")
	benchOut := flag.String("out", "", "with -bench: snapshot file path (single area only; default BENCH_<area>.json)")
	compare := flag.Bool("compare", false, "diff BENCH snapshots (one file: last two runs; two files: latest of each); exit 1 on regression")
	threshold := flag.Float64("threshold", 0.20, "relative regression threshold for -compare (0.20 = 20%)")
	md := flag.Bool("md", false, "render BENCH_*.json files (trailing args) as markdown tables")
	writeDoc := flag.String("write", "", "with -md: rewrite the generated perf section of this document in place")
	validate := flag.Bool("validate", false, "schema-check BENCH_*.json files (trailing args)")
	flag.Parse()

	// Perf-trajectory modes run without an experiment setup.
	switch {
	case *benchArea != "":
		return runPerfBench(*benchArea, *benchOut, *benchtime)
	case *compare:
		return runPerfCompare(flag.Args(), *threshold)
	case *md:
		return runPerfMD(flag.Args(), *writeDoc)
	case *validate:
		return runPerfValidate(flag.Args())
	}

	if *fig == "" {
		flag.Usage()
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	// First ^C cancels the run context: the in-flight figure stops at the
	// next episode boundary and the rows finished so far are still
	// printed. stop() unregisters the handler, so a second ^C kills the
	// process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	budget := bench.DefaultBudget()
	if *quick {
		budget = bench.QuickBudget()
	}
	setup, err := bench.NewSetup(*dataset, *scale, *sampleK, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		return 1
	}
	setup.Workers = *workers
	fmt.Printf("# dataset=%s scale=%g k=%d seed=%d workers=%d quick=%v\n",
		*dataset, *scale, *sampleK, *seed, *workers, *quick)

	switch *fig {
	case "4":
		rows, err := bench.RunAccuracy(ctx, setup, rl.Cardinality, bench.CardinalityGrid(), budget)
		printAccuracy("Figure 4: accuracy, cardinality constraint", rows)
		warnStopped(err)
	case "5":
		rows, err := bench.RunAccuracy(ctx, setup, rl.Cost, bench.CostGrid(), budget)
		printAccuracy("Figure 5: accuracy, cost constraint", rows)
		warnStopped(err)
	case "6":
		rows, err := bench.RunEfficiency(ctx, setup, rl.Cardinality, bench.CardinalityGrid(), budget)
		printTimes("Figure 6: time to N satisfied, cardinality constraint", rows,
			[]string{bench.MethodSQLSmith, bench.MethodTemplate, bench.MethodLearned})
		warnStopped(err)
	case "7":
		rows, err := bench.RunEfficiency(ctx, setup, rl.Cost, bench.CostGrid(), budget)
		printTimes("Figure 7: time to N satisfied, cost constraint", rows,
			[]string{bench.MethodSQLSmith, bench.MethodTemplate, bench.MethodLearned})
		warnStopped(err)
	case "8":
		// Fixed-epoch comparison (the paper's Fig 8(c) x-axis is epochs).
		if budget.TrainEpochs > 150 {
			budget.TrainEpochs = 150
		}
		res, err := bench.RunRLCompare(ctx, setup, bench.CardinalityGrid(), budget)
		warnStopped(err)
		printAccuracy("Figure 8(a): accuracy, AC vs REINFORCE", res.Rows)
		printTimes("Figure 8(b): time, AC vs REINFORCE", res.Times,
			[]string{"LearnedSQLGen", "REINFORCE"})
		fmt.Println("\nFigure 8(c): average reward per epoch")
		fmt.Println("epoch\tLearnedSQLGen\tREINFORCE")
		for i := range res.TraceAC {
			fmt.Printf("%d\t%.3f\t%.3f\n", i, res.TraceAC[i].AvgReward, res.TraceREINFORCE[i].AvgReward)
		}
	case "9":
		if budget.TrainEpochs > 90 {
			budget.TrainEpochs = 90
		}
		domain := meta.Domain{Metric: rl.Cardinality, Lo: 0, Hi: 1000, K: 5}
		newTasks := []rl.Constraint{
			rl.RangeConstraint(rl.Cardinality, 150, 250),
			rl.RangeConstraint(rl.Cardinality, 350, 450),
			rl.RangeConstraint(rl.Cardinality, 550, 650),
			rl.RangeConstraint(rl.Cardinality, 750, 850),
		}
		res, err := bench.RunMetaCompare(ctx, setup, domain, newTasks, budget)
		warnStopped(err)
		printAccuracy("Figure 9(a): accuracy on new constraints", res.Rows)
		printTimes("Figure 9(b): adaptation time", res.Times,
			[]string{"Scratch", "AC-extend", "MetaCritic"})
		fmt.Println("\nFigure 9(c): average reward per adaptation epoch")
		fmt.Println("epoch\tScratch\tAC-extend\tMetaCritic")
		for i := range res.TraceScratch {
			fmt.Printf("%d\t%.3f\t%.3f\t%.3f\n", i,
				res.TraceScratch[i].AvgReward, res.TraceACExtend[i].AvgReward, res.TraceMeta[i].AvgReward)
		}
	case "10":
		if budget.TrainEpochs > 150 {
			budget.TrainEpochs = 150
		}
		// Cost = 10⁵ sits at the same relative position in the micro cost
		// range as the paper's 10⁶ does in its 10²–10⁸ range, and like the
		// paper's pick it is only reachable through joins.
		c := rl.PointConstraint(rl.Cost, 100000)
		dist, err := bench.RunDistribution(ctx, setup, c, budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("Figure 10: distribution of %d generated queries (%s)\n", dist.Total, c)
		fmt.Println("(a) tables per SELECT:")
		printIntHist(dist.JoinTables)
		fmt.Printf("(b) nested queries: %.1f%%\n", 100*dist.NestedFraction)
		fmt.Printf("(c) aggregate SELECTs: %.1f%%\n", 100*dist.AggregateFraction)
		fmt.Println("(d) predicates per query:")
		printIntHist(dist.Predicates)
		fmt.Println("(e) query types:")
		for _, k := range []string{"select", "insert", "update", "delete"} {
			fmt.Printf("  %s\t%d\n", k, dist.ByType[k])
		}
		fmt.Println("(f) token-length histogram:")
		printIntHist(dist.TokenLength)
		fmt.Printf("diversity: %d distinct statements, %d distinct skeletons, entropy %.2f nats\n",
			dist.DistinctSQL, dist.DistinctSkeletons, dist.SkeletonEntropy)
	case "11":
		if budget.TrainEpochs > 120 {
			budget.TrainEpochs = 120
		}
		// A band wide enough that nested SELECTs (outer + subquery scans)
		// fit; the paper's [1k,4k] band sits proportionally higher in its
		// cost range.
		c := rl.RangeConstraint(rl.Cost, 5000, 15000)
		ms := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		if *quick {
			ms = []int{5, 10, 15}
		}
		rows, err := bench.RunComplex(ctx, setup, c, ms, budget)
		warnStopped(err)
		fmt.Printf("Figure 11: time to generate M complex queries (%s)\n", c)
		fmt.Println("kind\tM\tseconds\tfound")
		for _, r := range rows {
			fmt.Printf("%s\t%d\t%.2f\t%d\n", r.Kind, r.M, r.Seconds, r.Found)
		}
	case "12":
		if budget.TrainEpochs > 200 {
			budget.TrainEpochs = 200
		}
		ks := []int{5, 10, 25, 50, 100, 200}
		if *quick {
			ks = []int{5, 25, 100}
		}
		c := rl.RangeConstraint(rl.Cardinality, 100, 400)
		rows, err := bench.RunSampleSize(ctx, *dataset, *scale, *seed, ks, c, budget)
		if err != nil && len(rows) == 0 {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		warnStopped(err)
		fmt.Printf("Figure 12: sensitivity to value-sample size k (%s)\n", c)
		fmt.Println("k\taccuracy\tseconds")
		for _, r := range rows {
			fmt.Printf("%d\t%.3f\t%.2f\n", r.SampleK, r.Accuracy, r.Seconds)
		}
	case "ablation":
		c := rl.PointConstraint(rl.Cardinality, 1000)
		budget.TrainEpochs = 300 // fixed-epoch comparison
		if *quick {
			budget.TrainEpochs = 30
		}
		rows, err := bench.RunRewardAblation(ctx, setup, c, budget)
		warnStopped(err)
		fmt.Printf("Reward-design ablation (%s, %d epochs)\n", c, budget.TrainEpochs)
		fmt.Println("variant\taccuracy\ttail-avg-reward\tseconds")
		for _, r := range rows {
			fmt.Printf("%s\t%.3f\t%.3f\t%.1f\n", r.Variant, r.Accuracy, r.AvgRewardTail, r.Seconds)
		}
	case "throughput":
		// Rollout-engine measurement: episodes/sec for a workers sweep,
		// with the estimator cache and the actor prefix cache off and on.
		budget.TrainEpochs = 40
		if *quick {
			budget.TrainEpochs = 8
		}
		sweep := []int{1, 2, 4}
		if max := runtime.GOMAXPROCS(0); max > 4 {
			sweep = append(sweep, max)
		}
		c := rl.RangeConstraint(rl.Cardinality, 100, 400)
		rows, err := bench.RunThroughput(ctx, setup, c, budget, sweep)
		warnStopped(err)
		fmt.Printf("Rollout throughput (%s, %d train + %d generate episodes per row, GOMAXPROCS=%d)\n",
			c, budget.TrainEpochs*budget.EpisodesPerEpoch, budget.NQueries, runtime.GOMAXPROCS(0))
		fmt.Println("cache\tprefix\tworkers\tep/s\tspeedup\thit-rate\testimator-calls\tprefix-hit-rate")
		for _, r := range rows {
			onOff := func(b bool) string {
				if b {
					return "on"
				}
				return "off"
			}
			fmt.Printf("%s\t%s\t%d\t%.1f\t%.2fx\t%.1f%%\t%d\t%.1f%%\n",
				onOff(r.CacheEnabled), onOff(r.PrefixEnabled), r.Workers,
				r.EpisodesPerSec, r.Speedup, 100*r.CacheHitRate,
				r.EstimatorCalls, 100*r.PrefixHitRate)
		}
	case "calibrate":
		calibrate(setup)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		return 2
	}
	return 0
}

// warnStopped reports an interrupted figure run on stderr; the partial
// rows gathered before the interrupt are still printed by the caller.
func warnStopped(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "\nbenchfig: interrupted, results are partial: %v\n", err)
	}
}

func printAccuracy(title string, rows []bench.AccuracyRow) {
	fmt.Println("\n" + title)
	if len(rows) == 0 {
		return
	}
	methods := make([]string, 0, len(rows[0].Acc))
	for m := range rows[0].Acc {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Print("constraint")
	for _, m := range methods {
		fmt.Printf("\t%s", m)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Print(r.Constraint)
		for _, m := range methods {
			fmt.Printf("\t%.2f%%", 100*r.Acc[m])
		}
		fmt.Println()
	}
}

func printTimes(title string, rows []bench.TimeRow, methods []string) {
	fmt.Println("\n" + title)
	fmt.Print("constraint")
	for _, m := range methods {
		fmt.Printf("\t%s(s)\tfound", m)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Print(r.Constraint)
		for _, m := range methods {
			fmt.Printf("\t%.2f\t%d", r.Seconds[m], r.Found[m])
		}
		fmt.Println()
	}
}

func printIntHist(h map[int]int) {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  %d\t%d\n", k, h[k])
	}
}

// calibrate prints the metric distribution of random walks — used to size
// the constraint grids relative to the paper's.
func calibrate(setup *bench.Setup) {
	c := rl.RangeConstraint(rl.Cardinality, 0, 1) // metric placeholder
	rnd := baselines.NewRandom(setup.Env, c, setup.Seed)
	gen := rnd.Generate(500)
	cards := make([]float64, 0, len(gen))
	for _, g := range gen {
		cards = append(cards, g.Measured)
	}
	costRnd := baselines.NewRandom(setup.Env, rl.RangeConstraint(rl.Cost, 0, 1), setup.Seed)
	costs := make([]float64, 0, 500)
	for _, g := range costRnd.Generate(500) {
		costs = append(costs, g.Measured)
	}
	sort.Float64s(cards)
	sort.Float64s(costs)
	q := func(v []float64, p float64) float64 { return v[int(p*float64(len(v)-1))] }
	fmt.Println("percentile\tcardinality\tcost")
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		fmt.Printf("p%02.0f\t%.1f\t%.1f\n", p*100, q(cards, p), q(costs, p))
	}
}
