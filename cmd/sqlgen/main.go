// Command sqlgen trains a LearnedSQLGen generator for a user-specified
// constraint and prints satisfied SQL queries.
//
// Usage:
//
//	sqlgen -dataset tpch -metric cardinality -range 100:400 -n 10
//	sqlgen -dataset xuetang -metric cost -point 10000 -n 5 -show-measure
//	sqlgen -dataset xuetang -scale 0.1 -selftest
//	sqlgen -dataset tpch -range 1:500 -n 5 -engine inprocess
//	sqlgen -dataset xuetang -scale 0.1 -cross-check
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"learnedsqlgen"
)

// main delegates to run so deferred profile writers flush before exit.
// The `serve` subcommand starts the long-running generation service
// instead of a one-shot train/generate run.
func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}
	os.Exit(run())
}

func run() int {
	dataset := flag.String("dataset", "tpch", "dataset: tpch, job, xuetang")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	metricName := flag.String("metric", "cardinality", "constraint metric: cardinality or cost")
	point := flag.Float64("point", 0, "point constraint target (exclusive with -range)")
	rangeSpec := flag.String("range", "", "range constraint lo:hi (exclusive with -point)")
	n := flag.Int("n", 10, "number of satisfied queries to emit")
	epochs := flag.Int("epochs", 0, "max training epochs (0 = adaptive)")
	sampleK := flag.Int("k", 100, "sampled values per column")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel rollout workers (0 = all CPUs); output is identical for any value")
	shards := flag.Int("shards", 1, "data-parallel trainer shards (fleet training with per-epoch all-reduce parameter averaging); 1 = the plain single-process trainer, byte-identical output")
	showMeasure := flag.Bool("show-measure", false, "print the estimated metric next to each query")
	maxAttempts := flag.Int("max-attempts", 10000, "generation attempt cap")
	out := flag.String("out", "", "write the satisfied queries to a SQL workload file")
	saveModel := flag.String("save-model", "", "save the trained model to this path")
	loadModel := flag.String("load-model", "", "load a trained model instead of training")
	profile := flag.Bool("profile", false, "print a structural/diversity profile of the output")
	prefixCache := flag.Int("prefix-cache", 0, "actor prefix-state cache entries (0 = default, negative = off); output is identical either way")
	quantize := flag.Bool("quantize", false, "generate with int8 fused inference kernels (training stays float64); faster, with logits tolerance-bounded against the float64 path")
	trainBudget := flag.Duration("train-budget", 0, "wall-clock training budget (e.g. 90s, 5m); 0 = unlimited. On expiry the partially trained policy is used as-is")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a rotated, crash-safe checkpoint every N training epochs (0 = off)")
	ckptDir := flag.String("checkpoint-dir", "sqlgen-checkpoints", "directory for -checkpoint-every checkpoints (rotated, with a last-good manifest)")
	faultRate := flag.Float64("fault-rate", 0, "inject transient estimator/executor faults at this rate (chaos demo; enables the retry/breaker resilience layer)")
	engineName := flag.String("engine", "", "route reward measurement through an engine driver: reference, inprocess, or sql (see -dsn); empty uses the in-tree backends directly")
	dsn := flag.String("dsn", "", "engine DSN; empty shares the opened dataset with -engine reference/inprocess. Examples: 'dataset=tpch scale=0.05 seed=1', 'driver=<sql driver> dialect=postgres dsn=<url>'")
	selftest := flag.Bool("selftest", false, "run a bounded conformance sweep (parse/FSM/differential/metamorphic oracles over four producers) instead of training; -point/-range optional")
	selftestN := flag.Int("selftest-n", 250, "queries per producer for -selftest")
	crossCheck := flag.Bool("cross-check", false, "run the conformance sweep with the cross-engine differential oracle: per-dialect render round trips, plus execution/estimation on the reference and in-process database/sql engines (and the -engine driver); implies -selftest")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	var metric learnedsqlgen.Metric
	switch strings.ToLower(*metricName) {
	case "cardinality", "card":
		metric = learnedsqlgen.Cardinality
	case "cost":
		metric = learnedsqlgen.Cost
	default:
		fmt.Fprintf(os.Stderr, "unknown metric %q\n", *metricName)
		return 2
	}

	var constraint learnedsqlgen.Constraint
	switch {
	case *rangeSpec != "":
		parts := strings.SplitN(*rangeSpec, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "-range must be lo:hi")
			return 2
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || hi < lo {
			fmt.Fprintln(os.Stderr, "bad -range bounds")
			return 2
		}
		constraint = learnedsqlgen.RangeConstraint(metric, lo, hi)
	case *point > 0:
		constraint = learnedsqlgen.PointConstraint(metric, *point)
	case *selftest || *crossCheck:
		// The sweep only needs some constraint to check measurement sanity
		// against; a broad cardinality range covers every producer.
		constraint = learnedsqlgen.RangeConstraint(metric, 1, 1000)
	default:
		fmt.Fprintln(os.Stderr, "one of -point or -range is required")
		return 2
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	// First ^C cancels ctx: training stops at the next episode boundary
	// with the weights of the last completed update, the partial stats are
	// printed and (with -save-model) the checkpoint is written. The
	// goroutine below unregisters the handler as soon as ctx is done, so a
	// second ^C terminates the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opts := &learnedsqlgen.Options{
		SampleValues:       *sampleK,
		Seed:               *seed,
		Workers:            *workers,
		Shards:             *shards,
		PrefixCacheSize:    *prefixCache,
		QuantizedInference: *quantize,
		TrainBudget:        *trainBudget,
		Engine:             *engineName,
		DSN:                *dsn,
	}
	if *faultRate > 0 {
		// Chaos demo: inject transient faults beneath a retry/breaker layer
		// and let the training loop ride them out.
		opts.FaultInjection = &learnedsqlgen.FaultInjectionOptions{
			Seed:        *seed,
			ErrorRate:   *faultRate,
			LatencyRate: *faultRate,
		}
		opts.Resilience = &learnedsqlgen.ResilienceOptions{}
	}

	// Periodic crash-safe checkpointing: every N completed epochs the
	// current weights go into a rotated store with a last-good manifest, so
	// a killed run (kill -9 included) resumes from the newest loadable
	// checkpoint instead of epoch zero.
	var gen *learnedsqlgen.Generator
	var ckptStore *learnedsqlgen.CheckpointStore
	if *ckptEvery > 0 {
		var err error
		ckptStore, err = learnedsqlgen.OpenCheckpointStore(*ckptDir, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint store:", err)
			return 1
		}
		epochN := 0
		opts.OnEpoch = func(learnedsqlgen.EpochStats) error {
			epochN++
			if gen == nil || epochN%*ckptEvery != 0 {
				return nil
			}
			if path, err := ckptStore.Save(gen); err != nil {
				fmt.Fprintln(os.Stderr, "checkpoint:", err)
			} else {
				fmt.Fprintf(os.Stderr, "checkpoint written: %s\n", path)
			}
			return nil
		}
	}

	db, err := learnedsqlgen.OpenBenchmark(*dataset, *scale, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer db.Close()

	if *selftest || *crossCheck {
		mode, sweep := "conformance", db.SelfTest
		if *crossCheck {
			mode, sweep = "cross-engine conformance", db.CrossCheck
		}
		fmt.Fprintf(os.Stderr, "%s sweep on %s: %d queries per producer, constraint %s\n",
			mode, *dataset, *selftestN, constraint)
		rep, err := sweep(ctx, constraint, *selftestN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selftest:", err)
			return 1
		}
		fmt.Print(rep.String())
		if !rep.Ok() {
			return 1
		}
		return 0
	}

	if *loadModel != "" {
		var err error
		gen, err = db.LoadGenerator(constraint, *loadModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load model:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "loaded model %s\n", *loadModel)
	} else {
		fmt.Fprintf(os.Stderr, "training generator for %s on %s...\n", constraint, *dataset)
		gen = db.NewGenerator(constraint)
		if ckptStore != nil {
			// Resume from the newest loadable checkpoint of a previous
			// (possibly killed) run; a corrupt newest entry falls back to an
			// older good one.
			if path, err := ckptStore.Load(gen); err == nil {
				fmt.Fprintf(os.Stderr, "resumed from checkpoint %s\n", path)
			} else if !errors.Is(err, learnedsqlgen.ErrNoCheckpoint) {
				fmt.Fprintln(os.Stderr, "checkpoint load:", err)
				return 1
			}
		}
		maxEpochs := *epochs
		if maxEpochs <= 0 {
			maxEpochs = 800
		}
		// Weak scaling for fleet training: each shard rolls out a full
		// 25-episode slice per epoch, so the per-epoch episode budget grows
		// with -shards and the all-reduce average converges in fewer epochs.
		episodesPerEpoch := 25 * *shards
		if *shards <= 1 {
			episodesPerEpoch = 25
		}
		trace, trainErr := gen.TrainAdaptiveContext(ctx, maxEpochs, episodesPerEpoch)
		rate := 0.0
		if len(trace) > 0 {
			rate = trace[len(trace)-1].SatisfiedRate
		}
		switch {
		case trainErr == nil:
			fmt.Fprintf(os.Stderr, "trained %d epochs (final satisfied rate %.0f%%)\n",
				len(trace), 100*rate)
		case errors.Is(trainErr, learnedsqlgen.ErrBudgetExceeded):
			// A spent budget is expected; generate with the policy as-is.
			fmt.Fprintf(os.Stderr, "train budget %s spent after %d epochs (satisfied rate %.0f%%); using policy as-is\n",
				*trainBudget, len(trace), 100*rate)
		default:
			// Interrupted: checkpoint what was learned and stop — ctx is
			// cancelled, so generation below could not run anyway.
			fmt.Fprintf(os.Stderr, "training interrupted after %d epochs (satisfied rate %.0f%%): %v\n",
				len(trace), 100*rate, trainErr)
			if *saveModel != "" {
				if err := gen.Save(*saveModel); err != nil {
					fmt.Fprintln(os.Stderr, "save model:", err)
					return 1
				}
				fmt.Fprintf(os.Stderr, "partial model checkpointed to %s (resume with -load-model)\n", *saveModel)
			}
			return 1
		}
	}
	if *saveModel != "" {
		if err := gen.Save(*saveModel); err != nil {
			fmt.Fprintln(os.Stderr, "save model:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *saveModel)
	}

	queries, attempts, genErr := gen.GenerateSatisfiedContext(ctx, *n, *maxAttempts)
	if genErr != nil {
		fmt.Fprintf(os.Stderr, "generation interrupted: %v\n", genErr)
	}
	fmt.Fprintf(os.Stderr, "%d satisfied queries in %d attempts\n", len(queries), attempts)
	if *faultRate > 0 {
		st := gen.Stats()
		fmt.Fprintf(os.Stderr,
			"resilience: %d retries, %d exhausted, %d breaker opens, %d episodes quarantined, %d watchdog trips\n",
			st.Retries, st.Exhausted, st.BreakerOpens, st.Quarantined, st.WatchdogTrips)
	}
	if es, ok := db.EngineStats(); ok {
		fmt.Fprintf(os.Stderr, "engine %s (%s dialect): %d estimates, %d executes\n",
			es.Engine, es.Dialect, es.Estimates, es.Executes)
	}
	for _, q := range queries {
		if *showMeasure {
			fmt.Printf("-- %s = %.1f\n", metric, q.Measured)
		}
		fmt.Println(q.SQL + ";")
	}
	if *out != "" {
		if err := learnedsqlgen.WriteWorkloadFile(*out, queries, metric); err != nil {
			fmt.Fprintln(os.Stderr, "write workload:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "workload written to %s\n", *out)
	}
	if *profile {
		p := learnedsqlgen.AnalyzeWorkload(queries)
		fmt.Fprintf(os.Stderr,
			"profile: %d queries, %d distinct skeletons (entropy %.2f), %.0f%% nested, %.0f%% aggregated\n",
			p.Total, p.DistinctSkeletons, p.SkeletonEntropy,
			100*p.NestedFraction, 100*p.AggregateFraction)
	}
	if len(queries) < *n {
		return 1
	}
	return 0
}
