package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"learnedsqlgen/client"
	"learnedsqlgen/internal/wire"
)

// TestServeBinarySmoke drives the real `sqlgen serve` binary end to end:
// start the server, stream satisfied queries through the Go client with
// a 100ms-per-row liveness budget, send SIGTERM, and require a clean
// drain (exit 0, checkpointed registry). It runs only when SQLGEN_BIN
// points at a built binary — `make serve-smoke` is the entry point.
func TestServeBinarySmoke(t *testing.T) {
	bin := os.Getenv("SQLGEN_BIN")
	if bin == "" {
		t.Skip("SQLGEN_BIN not set; run via `make serve-smoke`")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the binary re-binds the free port

	ckptDir := t.TempDir()
	cmd := exec.Command(bin, "serve",
		"-addr", addr,
		"-datasets", "xuetang:0.05",
		"-k", "10",
		"-tasks", "2",
		"-warm-rounds", "1",
		"-warm-episodes", "4",
		"-checkpoint-dir", ckptDir,
		"-drain-timeout", "5s",
	)
	var logBuf strings.Builder
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// exited is closed after the exit error is delivered, so the deferred
	// cleanup's receive never blocks when the test body already reaped the
	// process.
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	}()

	// Wait for the listener, then stream queries. The registry pre-trains
	// on the first request, so give the dial loop and the stream generous
	// outer deadlines while holding each row to the 100ms budget.
	var conn *client.Conn
	deadline := time.Now().Add(60 * time.Second)
	for {
		conn, err = client.Dial(addr, &client.Config{Seed: 7, DialTimeout: time.Second})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v\nserver log:\n%s", err, logBuf.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer conn.Close()

	const wantRows = 5
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000,
		N: wantRows, MaxAttempts: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	rowBudget := time.AfterFunc(45*time.Second, func() { conn.Close() }) // registry pretrain happens before row 1
	for st.Next() {
		rows++
		if st.Row().SQL == "" {
			t.Fatal("empty SQL row")
		}
		// After the first row the model is warm: each further row must
		// arrive within the 100ms liveness budget.
		rowBudget.Stop()
		rowBudget = time.AfterFunc(100*time.Millisecond, func() { conn.Close() })
	}
	rowBudget.Stop()
	if err := st.Err(); err != nil {
		t.Fatalf("stream after %d rows: %v", rows, err)
	}
	if rows != wantRows {
		t.Fatalf("streamed %d rows, want %d", rows, wantRows)
	}

	// Graceful drain: SIGTERM must exit 0 after checkpointing the registry.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v\nserver log:\n%s", err, logBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not drain after SIGTERM\nserver log:\n%s", logBuf.String())
	}
	if _, err := os.Stat(fmt.Sprintf("%s/registry.json", ckptDir)); err != nil {
		t.Fatalf("drain did not checkpoint the registry: %v\nserver log:\n%s", err, logBuf.String())
	}
}

// TestServeBinaryAuthQuota drives the admission layer through the real
// binary: `-tokens` turns on auth (tokenless dials refused with the
// stable unauthenticated code), an authenticated session streams
// normally, a rate-limited tenant's back-to-back request is refused
// with quota_exceeded, and the drain log carries the per-tenant stats
// line. Gated on SQLGEN_BIN like the smoke test above.
func TestServeBinaryAuthQuota(t *testing.T) {
	bin := os.Getenv("SQLGEN_BIN")
	if bin == "" {
		t.Skip("SQLGEN_BIN not set; run via `make serve-smoke`")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "serve",
		"-addr", addr,
		"-datasets", "xuetang:0.05",
		"-k", "10",
		"-tasks", "2",
		"-warm-rounds", "1",
		"-warm-episodes", "4",
		"-checkpoint-dir", t.TempDir(),
		"-drain-timeout", "5s",
		"-tokens", "smoke=smoke-token",
		"-tenant-rate", "0.01", // bucket refills one admission per 100s: burst 1, then refusals
	)
	var logBuf strings.Builder
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
	}()

	// An unauthenticated dial must be refused with the stable code once
	// the server is up (connection-refused errors mean it isn't yet).
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, err := client.Dial(addr, &client.Config{Seed: 7, DialTimeout: time.Second})
		var se *client.ServerError
		if errors.As(err, &se) {
			if se.Code != wire.CodeUnauthenticated {
				t.Fatalf("tokenless dial: code %q, want unauthenticated", se.Code)
			}
			break
		}
		if err == nil {
			t.Fatal("tokenless dial succeeded against an authed server")
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v\nserver log:\n%s", err, logBuf.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	conn, err := client.Dial(addr, &client.Config{Seed: 7, Token: "smoke-token"})
	if err != nil {
		t.Fatalf("authenticated dial: %v\nserver log:\n%s", err, logBuf.String())
	}
	defer conn.Close()

	// First request: the burst token admits it; it must stream its row.
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for st.Next() {
		rows++
	}
	if err := st.Err(); err != nil || rows != 1 {
		t.Fatalf("authenticated stream: %d rows, err %v\nserver log:\n%s", rows, err, logBuf.String())
	}

	// Second request: the bucket is empty for the next 100 seconds.
	st2, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for st2.Next() {
		t.Fatal("rate-limited request streamed a row")
	}
	var se *client.ServerError
	if err := st2.Err(); !errors.As(err, &se) || se.Code != wire.CodeQuotaExceeded {
		t.Fatalf("rate-limited request ended with %v, want quota_exceeded", err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("serve exited non-zero after SIGTERM: %v\nserver log:\n%s", err, logBuf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not drain after SIGTERM\nserver log:\n%s", logBuf.String())
	}
	// The drain log line carries the tenant's accounting.
	log := logBuf.String()
	if !strings.Contains(log, "service: stats:") || !strings.Contains(log, "smoke:") {
		t.Fatalf("drain log missing per-tenant stats line:\n%s", log)
	}
}
