package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"learnedsqlgen/internal/service"
)

// runServe is the `sqlgen serve` subcommand: a long-running generation
// service. It opens the requested datasets, warm-starts the model
// registry from its checkpoint directory, and streams satisfied queries
// to clients over the wire protocol until SIGTERM/SIGINT, which drains
// in-flight sessions and checkpoints the registry before exit.
func runServe(args []string) int {
	fs := flag.NewFlagSet("sqlgen serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7878", "listen address")
	datasets := fs.String("datasets", "tpch:0.1", "comma-separated dataset:scale list to serve (e.g. tpch:0.1,xuetang:0.05)")
	seed := fs.Int64("seed", 1, "server seed: keys dataset generation and registry pretraining")
	sampleK := fs.Int("k", 100, "sampled values per column")
	workers := fs.Int("workers", 0, "parallel rollout workers per pretraining run (0 = all CPUs)")
	tasks := fs.Int("tasks", 4, "meta-training tasks per registry entry (constraint sub-ranges)")
	warmRounds := fs.Int("warm-rounds", 3, "meta-training rounds when pretraining a registry entry")
	warmEpisodes := fs.Int("warm-episodes", 24, "episodes per task per warm round")
	shards := fs.Int("shards", 1, "data-parallel replica shards for registry pretraining (per-round all-reduce averaging); 1 = single-process")
	memBudget := fs.Int64("mem-budget", 256<<20, "registry memory budget in bytes; LRU-evicts idle entries above it")
	ckptDir := fs.String("checkpoint-dir", "sqlgen-serve-checkpoints", "registry checkpoint directory (entries persist and warm-start the next run); empty disables")
	ckptKeep := fs.Int("checkpoint-keep", 0, "rotated checkpoints kept per entry (0 = store default)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget: in-flight requests finish within it, then are cancelled")
	quantize := fs.Bool("quantize", false, "serve with int8 fused inference kernels")
	prefixCache := fs.Int("prefix-cache", 0, "actor prefix-state cache entries per request (0 = default, negative = off)")
	maxAttempts := fs.Int("max-attempts", 1000, "default per-request generation attempt cap")
	tokens := fs.String("tokens", "", "comma-separated name=token tenant list; non-empty turns on per-session auth (Hello must carry a matching token)")
	maxSessions := fs.Int("max-sessions", 0, "server-wide concurrent session cap; excess handshakes are shed with a retryable 'overloaded' error (0 = unlimited)")
	maxStreams := fs.Int("max-streams", 0, "server-wide in-flight stream cap; excess requests are shed with 'overloaded' (0 = unlimited)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant Generate admissions per second (token bucket; 0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 0, "per-tenant admission burst (bucket capacity; 0 = 1 when rated)")
	tenantStreams := fs.Int("tenant-streams", 0, "per-tenant concurrent stream cap (0 = unlimited)")
	tenantAttempts := fs.Int("tenant-attempts", 0, "per-tenant generation-attempt budget per window; exhausted streams end with 'quota_exceeded' (0 = unlimited)")
	tenantWindow := fs.Duration("tenant-window", 0, "attempt-budget window (0 = 1m)")
	idleTimeout := fs.Duration("idle-timeout", 0, "reap sessions idle this long with nothing in flight (0 = 2m, negative = never)")
	requestTimeout := fs.Duration("request-timeout", 0, "server-side cap on any request's wall clock; client deadlines are clamped to it (0 = uncapped)")
	fs.Parse(args)

	specs, err := parseDatasetSpecs(*datasets)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	tenants, err := parseTenantSpecs(*tokens)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	srv, err := service.New(service.Config{
		Datasets:           specs,
		Seed:               *seed,
		SampleValues:       *sampleK,
		Workers:            *workers,
		PrefixCacheSize:    *prefixCache,
		QuantizedInference: *quantize,
		K:                  *tasks,
		WarmRounds:         *warmRounds,
		WarmEpisodes:       *warmEpisodes,
		Shards:             *shards,
		MemoryBudget:       *memBudget,
		CheckpointDir:      *ckptDir,
		CheckpointKeep:     *ckptKeep,
		DrainTimeout:       *drainTimeout,
		DefaultMaxAttempts: *maxAttempts,
		Tenants:            tenants,
		DefaultLimits: service.TenantLimits{
			RatePerSec:    *tenantRate,
			Burst:         *tenantBurst,
			MaxStreams:    *tenantStreams,
			AttemptBudget: *tenantAttempts,
			AttemptWindow: *tenantWindow,
		},
		MaxSessions:       *maxSessions,
		MaxStreams:        *maxStreams,
		IdleTimeout:       *idleTimeout,
		MaxRequestTimeout: *requestTimeout,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "%s: draining (budget %s)...\n", sig, *drainTimeout)
		if err := srv.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
			return 1
		}
		<-errc // ListenAndServe returns once the drain stops the accept loop
		fmt.Fprintln(os.Stderr, "drained; registry checkpointed")
		return 0
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "serve:", err)
		return 1
	}
}

// parseTenantSpecs parses "-tokens name=token,name=token" into tenant
// configs. Empty input means no auth (every session shares the default
// tenant). Per-tenant limits come from the -tenant-* default flags.
func parseTenantSpecs(s string) ([]service.TenantConfig, error) {
	var tenants []service.TenantConfig
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, token, ok := strings.Cut(field, "=")
		if !ok || name == "" || token == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want name=token)", field)
		}
		tenants = append(tenants, service.TenantConfig{Name: name, Token: token})
	}
	return tenants, nil
}

// parseDatasetSpecs parses "name:scale,name:scale"; a bare name gets
// scale 1.0.
func parseDatasetSpecs(s string) ([]service.DatasetSpec, error) {
	var specs []service.DatasetSpec
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, scaleStr, ok := strings.Cut(field, ":")
		spec := service.DatasetSpec{Name: name, Scale: 1.0}
		if ok {
			sc, err := strconv.ParseFloat(scaleStr, 64)
			if err != nil || sc <= 0 {
				return nil, fmt.Errorf("bad dataset spec %q (want name:scale)", field)
			}
			spec.Scale = sc
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-datasets: at least one dataset required")
	}
	return specs, nil
}
