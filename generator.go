package learnedsqlgen

import (
	"context"
	"fmt"

	"learnedsqlgen/internal/baselines"
	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/rl"
)

// EpochStats summarizes one training epoch (reward and satisfaction
// trace).
type EpochStats = rl.EpochStats

// TrainStats reports a generator's lifetime rollout throughput
// (episodes/sec) plus the estimator cache's and the actor prefix-state
// cache's hit/miss counters.
type TrainStats = rl.TrainStats

// ErrBudgetExceeded is the cause reported when Options.TrainBudget
// expires mid-training: errors.Is(err, ErrBudgetExceeded) distinguishes a
// spent budget from a caller cancellation (context.Canceled).
var ErrBudgetExceeded = rl.ErrBudgetExceeded

// EpochAbortError reports that an Options.OnEpoch callback returned an
// error and aborted training; Epoch is the number of completed epochs and
// Unwrap yields the callback's error.
type EpochAbortError = rl.EpochAbortError

// trainerBackend is the training engine behind a Generator: the
// single-process rl.Trainer by default, or the sharded data-parallel
// fleet (rl.ShardedTrainer) when the DB was opened with Options.Shards
// greater than one. Both satisfy the same training, generation and
// checkpoint contract, so the Generator API is fleet-size-agnostic.
type trainerBackend interface {
	rl.Checkpointable // stream Save/Load, used by CheckpointStore
	TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]rl.EpochStats, error)
	TrainUntilContext(ctx context.Context, target float64, patience, maxEpochs, episodesPerEpoch int) ([]rl.EpochStats, error)
	GenerateContext(ctx context.Context, n int) ([]rl.Generated, error)
	GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]rl.Generated, int, error)
	Stats() rl.TrainStats
	SaveFile(path string) error
	LoadFile(path string) error
}

// Generator is a trained (or trainable) constraint-aware SQL generator —
// the LearnedSQLGen agent of the paper.
type Generator struct {
	db         *DB
	constraint Constraint
	trainer    trainerBackend
}

// NewGenerator builds an untrained generator for the constraint. Training
// hyper-parameters follow §7.1, with learning rates scaled for micro data
// (rl.FastConfig).
func (db *DB) NewGenerator(c Constraint) *Generator {
	cfg := rl.FastConfig()
	cfg.Seed = db.seed
	cfg.Workers = db.workers
	cfg.PrefixCacheSize = db.prefixCacheSize
	cfg.QuantizedInference = db.quantized
	cfg.TrainBudget = db.trainBudget
	cfg.OnEpoch = db.onEpoch
	cfg.MaxGradNorm = db.maxGradNorm
	var tr trainerBackend
	if db.shards > 1 {
		tr = rl.NewShardedTrainer(db.env, c, cfg, db.shards)
	} else {
		tr = rl.NewTrainer(db.env, c, cfg)
	}
	return &Generator{db: db, constraint: c, trainer: tr}
}

// Train runs epochs × episodesPerEpoch training episodes and returns the
// per-epoch reward/satisfaction trace. 250 × 25 converges on the bundled
// benchmarks.
func (g *Generator) Train(epochs, episodesPerEpoch int) []EpochStats {
	out, _ := g.TrainContext(context.Background(), epochs, episodesPerEpoch)
	return out
}

// TrainContext is Train with lifecycle control: ctx cancellation (or an
// expired Options.TrainBudget) stops training at the next episode
// boundary and returns the trace of completed epochs together with an
// error wrapping the cause. A generator stopped this way holds the
// weights of its last completed batch update — Save, Generate and further
// Train calls all remain valid, so interrupted training resumes rather
// than restarts.
func (g *Generator) TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]EpochStats, error) {
	octx, end, err := g.db.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	return g.trainer.TrainContext(octx, epochs, episodesPerEpoch)
}

// TrainAdaptive trains with early stopping: it stops once three quarters
// of an epoch's episodes satisfy the constraint on two consecutive
// epochs, or after maxEpochs. Easy constraints converge in seconds; hard
// point constraints use the full budget.
func (g *Generator) TrainAdaptive(maxEpochs, episodesPerEpoch int) []EpochStats {
	out, _ := g.TrainAdaptiveContext(context.Background(), maxEpochs, episodesPerEpoch)
	return out
}

// TrainAdaptiveContext is TrainAdaptive with the lifecycle semantics of
// TrainContext.
func (g *Generator) TrainAdaptiveContext(ctx context.Context, maxEpochs, episodesPerEpoch int) ([]EpochStats, error) {
	octx, end, err := g.db.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	return g.trainer.TrainUntilContext(octx, 0.75, 2, maxEpochs, episodesPerEpoch)
}

// Generate samples n statements from the current policy (Algorithm 2);
// unsatisfied statements are included so callers can compute accuracy.
func (g *Generator) Generate(n int) []Generated {
	out, _ := g.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation; on early stop it returns
// nil and ctx's cause.
func (g *Generator) GenerateContext(ctx context.Context, n int) ([]Generated, error) {
	octx, end, err := g.db.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	return g.trainer.GenerateContext(octx, n)
}

// GenerateSatisfied samples until n satisfied statements are produced or
// maxAttempts episodes have run.
func (g *Generator) GenerateSatisfied(n, maxAttempts int) ([]Generated, int) {
	out, attempts, _ := g.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation: it
// returns the satisfied statements found before ctx was done, the
// attempts consumed, and a non-nil error iff the search was cut short.
func (g *Generator) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]Generated, int, error) {
	octx, end, err := g.db.beginOp(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer end()
	return g.trainer.GenerateSatisfiedContext(octx, n, maxAttempts)
}

// MustGenerateSatisfied is GenerateSatisfied but panics if fewer than n
// satisfied statements were found within maxAttempts — convenient in
// examples and scripts.
func (g *Generator) MustGenerateSatisfied(n, maxAttempts int) []Generated {
	out, attempts := g.GenerateSatisfied(n, maxAttempts)
	if len(out) < n {
		panic(fmt.Sprintf("learnedsqlgen: found only %d/%d satisfied queries in %d attempts (constraint %s)",
			len(out), n, attempts, g.constraint))
	}
	return out
}

// Constraint returns the generator's target.
func (g *Generator) Constraint() Constraint { return g.constraint }

// Stats snapshots the generator's rollout throughput and the estimator
// cache's hit/miss counters (cache counters are shared across all
// generators opened on the same DB).
func (g *Generator) Stats() TrainStats { return g.trainer.Stats() }

// RandomGenerator is the SQLSmith-style baseline over the same grammar.
func (db *DB) RandomGenerator(c Constraint) *baselines.Random {
	return baselines.NewRandom(db.env, c, db.seed)
}

// TemplateGenerator is the Bruno-style template baseline. With nil sqls it
// uses the dataset's bundled benchmark templates when available, otherwise
// synthesized skeletons.
func (db *DB) TemplateGenerator(c Constraint, sqls []string) (*baselines.TemplateGen, error) {
	if sqls == nil {
		sqls = baselines.DatasetTemplates(db.name)
	}
	if len(sqls) > 0 {
		return baselines.NewTemplateGenFromSQL(db.env, c, sqls, db.seed)
	}
	return baselines.NewTemplateGen(db.env, c, 12, db.seed), nil
}

// MetaDomain describes the constraint domain a meta-critic is pre-trained
// on (§6).
type MetaDomain = meta.Domain

// MetaGenerator wraps the §6 meta-critic: pre-train once over a domain,
// then adapt quickly to any constraint inside it.
type MetaGenerator struct {
	db      *DB
	trainer *meta.MetaTrainer
}

// NewMetaGenerator builds the multi-task meta-critic setup.
func (db *DB) NewMetaGenerator(domain MetaDomain) *MetaGenerator {
	cfg := rl.FastConfig()
	cfg.Seed = db.seed
	cfg.Workers = db.workers
	cfg.PrefixCacheSize = db.prefixCacheSize
	cfg.QuantizedInference = db.quantized
	cfg.TrainBudget = db.trainBudget
	cfg.OnEpoch = db.onEpoch
	cfg.MaxGradNorm = db.maxGradNorm
	return &MetaGenerator{db: db, trainer: meta.NewMetaTrainer(db.env, domain, cfg)}
}

// Pretrain cycles the domain's tasks for the given rounds.
func (m *MetaGenerator) Pretrain(rounds, episodesPerTask int) []EpochStats {
	out, _ := m.PretrainContext(context.Background(), rounds, episodesPerTask)
	return out
}

// PretrainContext is Pretrain with the lifecycle semantics of
// Generator.TrainContext: cancellation or Options.TrainBudget expiry
// stops between rounds, returning the completed rounds' stats and the
// cause; the meta-critic and per-task actors keep their last completed
// updates and adapt or pre-train further from there. With Options.Shards
// > 1 pre-training runs on a fleet of data-parallel replicas whose
// weights are averaged at every round barrier (each replica trains
// episodesPerTask per task per round — the fleet consumes Shards× the
// episodes).
func (m *MetaGenerator) PretrainContext(ctx context.Context, rounds, episodesPerTask int) ([]EpochStats, error) {
	octx, end, err := m.db.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	return m.trainer.PretrainShardedContext(octx, m.db.shards, rounds, episodesPerTask)
}

// Stats snapshots the pre-training rollout throughput and cache counters.
func (m *MetaGenerator) Stats() TrainStats { return m.trainer.Stats() }

// Adapt prepares a generator for a new constraint, warm-started from the
// nearest pre-trained task and guided by the shared meta-critic.
func (m *MetaGenerator) Adapt(c Constraint) *AdaptedGenerator {
	return &AdaptedGenerator{db: m.db, adapted: m.trainer.Adapt(c)}
}

// AdaptedGenerator is a meta-critic-backed generator for one new
// constraint.
type AdaptedGenerator struct {
	db      *DB
	adapted *meta.Adapted
}

// Train fine-tunes the adapted policy.
func (a *AdaptedGenerator) Train(epochs, episodesPerEpoch int) []EpochStats {
	out, _ := a.TrainContext(context.Background(), epochs, episodesPerEpoch)
	return out
}

// TrainContext is Train with the lifecycle semantics of
// Generator.TrainContext.
func (a *AdaptedGenerator) TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]EpochStats, error) {
	octx, end, err := a.db.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	return a.adapted.TrainContext(octx, epochs, episodesPerEpoch)
}

// Generate samples n statements.
func (a *AdaptedGenerator) Generate(n int) []Generated {
	out, _ := a.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation.
func (a *AdaptedGenerator) GenerateContext(ctx context.Context, n int) ([]Generated, error) {
	octx, end, err := a.db.beginOp(ctx)
	if err != nil {
		return nil, err
	}
	defer end()
	return a.adapted.GenerateContext(octx, n)
}

// GenerateSatisfied samples until n satisfied statements or maxAttempts.
func (a *AdaptedGenerator) GenerateSatisfied(n, maxAttempts int) ([]Generated, int) {
	out, attempts, _ := a.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation,
// mirroring Generator.GenerateSatisfiedContext.
func (a *AdaptedGenerator) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]Generated, int, error) {
	octx, end, err := a.db.beginOp(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer end()
	return a.adapted.GenerateSatisfiedContext(octx, n, maxAttempts)
}

// Stats snapshots the adapted generator's rollout throughput and cache
// counters.
func (a *AdaptedGenerator) Stats() TrainStats { return a.adapted.Stats() }

// Save writes the generator's trained weights to path; LoadGenerator
// restores them. This implements §3.3's promise that a trained model can
// be reused at any time without retraining.
func (g *Generator) Save(path string) error { return g.trainer.SaveFile(path) }

// LoadGenerator builds a generator for c and restores weights saved by
// Generator.Save. The database must be opened with the same options
// (vocabulary) the model was trained under.
func (db *DB) LoadGenerator(c Constraint, path string) (*Generator, error) {
	gen := db.NewGenerator(c)
	if err := gen.trainer.LoadFile(path); err != nil {
		return nil, err
	}
	return gen, nil
}
