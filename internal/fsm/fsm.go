// Package fsm implements the dynamically-constructed finite-state machine
// of §5: given the current partial query, it computes the set of unmasked
// actions (tokens) whose selection keeps the query syntactically and
// semantically valid, and it assembles the sqlast statement incrementally
// as tokens are applied. Every walk of the FSM — no matter which unmasked
// token is chosen at each step — terminates in a statement the executor
// accepts (property-tested in fsm_test.go).
//
// Generation order follows the paper's Example 2 (From-first): the agent
// first fixes the table scope, so column/value/type masking is always
// local. Nested queries open with the FROM reserved word after an
// operator / IN / EXISTS and close with EOF, mirroring the "nest" branch
// of Figure 2; the FSM is "built on the fly" exactly as §5 describes —
// only the edges leaving the current node are materialized.
//
// Semantic rules enforced (§5 "Syntactic and Semantic Checking" and
// "Meaningful Checking"):
//   - joins only along declared PK–FK edges, join keys auto-added;
//   - operators and literals type-checked against the column;
//   - string columns use only {=, <, >};
//   - SUM/AVG/MAX/MIN only on numeric columns;
//   - non-aggregated select items must be covered by GROUP BY;
//   - scalar subqueries produce a single aggregate; IN subqueries a single
//     same-kind column.
package fsm

import (
	"fmt"
	"strings"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/token"
)

// Config bounds the shape of generated statements.
type Config struct {
	// MaxJoins caps JOINs in a top-level SELECT (tables-1).
	MaxJoins int
	// MaxSubJoins caps JOINs inside a subquery.
	MaxSubJoins int
	// MaxSelectItems caps projection width.
	MaxSelectItems int
	// MaxPredicates caps WHERE atoms per predicate scope.
	MaxPredicates int
	// MaxGroupCols caps free GROUP BY columns for all-aggregate
	// projections.
	MaxGroupCols int
	// MaxNestDepth is the number of subquery levels (0 disables nesting).
	MaxNestDepth int
	// AllowAggregates enables aggregate select items, GROUP BY and HAVING.
	AllowAggregates bool
	// AllowOrderBy enables ORDER BY.
	AllowOrderBy bool
	// AllowLike enables LIKE predicates on string columns — the §5
	// future-work extension. Off by default for paper fidelity.
	AllowLike bool
	// AllowInsert/AllowUpdate/AllowDelete enable DML statements
	// (Cases 4–6 of the grammar).
	AllowInsert bool
	AllowUpdate bool
	AllowDelete bool
	// DisableSelect removes top-level SELECT statements from the grammar
	// (subqueries inside DML are unaffected). Used to train per-family
	// DML generators; at least one statement kind must remain enabled.
	DisableSelect bool
	// SoftSteps is the step count after which the FSM steers towards
	// termination by dropping optional continuations. Every statement
	// completes within a bounded number of steps past it.
	SoftSteps int
}

// DefaultConfig matches the query shapes in the paper's case study
// (Figure 10): up to 4-way joins, a few predicates, one nesting level,
// aggregation, ordering; DML off by default (enabled for Figure 11 runs).
func DefaultConfig() Config {
	return Config{
		MaxJoins:        3,
		MaxSubJoins:     1,
		MaxSelectItems:  3,
		MaxPredicates:   4,
		MaxGroupCols:    2,
		MaxNestDepth:    1,
		AllowAggregates: true,
		AllowOrderBy:    true,
		SoftSteps:       40,
	}
}

// frame is one level of statement construction (the top-level statement or
// an open subquery).
type frame interface {
	// valid returns the currently unmasked token ids, excluding EOF (the
	// Builder appends EOF when canClose allows it). closing asks the frame
	// to drop optional continuations.
	valid(b *Builder, closing bool) []int
	// apply consumes one non-EOF token.
	apply(b *Builder, tok token.Token) error
	// canClose reports whether EOF may be applied now.
	canClose() bool
	// finish assembles the completed statement; called when EOF is applied.
	finish() (sqlast.Statement, error)
	// childDone delivers a closed subquery to the frame that opened it.
	childDone(b *Builder, sub *sqlast.Select) error
	// snapshot returns an executable prefix of the statement, or nil.
	snapshot() sqlast.Statement
}

// Builder is the FSM instance for one statement generation episode.
type Builder struct {
	sch     *schema.Schema
	vocab   *token.Vocab
	cfg     Config
	stack   []frame
	emitted []int
	done    bool
	final   sqlast.Statement

	// validMemo memoizes Valid() between state transitions: the rollout
	// loop reads the action set and Apply re-reads it for the membership
	// check, so without the memo every step computes it twice. Apply
	// invalidates it before mutating. The memoized slice is freshly
	// allocated per state, so callers may retain it across steps.
	validMemo []int
	validOK   bool
}

// NewBuilder starts an empty statement.
func NewBuilder(sch *schema.Schema, vocab *token.Vocab, cfg Config) *Builder {
	return &Builder{sch: sch, vocab: vocab, cfg: cfg}
}

// Reset restarts the builder for a new episode.
func (b *Builder) Reset() {
	b.stack = b.stack[:0]
	b.emitted = b.emitted[:0]
	b.done = false
	b.final = nil
	b.validMemo, b.validOK = nil, false
}

// Done reports whether the statement is complete.
func (b *Builder) Done() bool { return b.done }

// Steps returns the number of tokens applied so far.
func (b *Builder) Steps() int { return len(b.emitted) }

// Tokens returns the emitted token ids. Callers must not mutate.
func (b *Builder) Tokens() []int { return b.emitted }

// Statement returns the completed statement (only after Done).
func (b *Builder) Statement() (sqlast.Statement, error) {
	if !b.done {
		return nil, fmt.Errorf("fsm: statement not complete")
	}
	return b.final, nil
}

// Describe renders the emitted token stream for debugging.
func (b *Builder) Describe() string {
	parts := make([]string, len(b.emitted))
	for i, id := range b.emitted {
		parts[i] = b.vocab.Token(id).String()
	}
	return strings.Join(parts, " ")
}

func (b *Builder) top() frame { return b.stack[len(b.stack)-1] }

// depth is the current subquery nesting level (0 = top statement).
func (b *Builder) depth() int { return len(b.stack) - 1 }

// nestingAllowed reports whether a new subquery may open here.
func (b *Builder) nestingAllowed() bool {
	return len(b.stack) > 0 && b.depth() < b.cfg.MaxNestDepth
}

// Valid returns the unmasked action set for the current state. It is never
// empty before Done: every reachable state either offers a token or allows
// EOF. The result is memoized until the next Apply (the rollout loop and
// Apply's membership check would otherwise compute it twice per step); the
// memoized slice is freshly allocated per state, so callers may retain it.
func (b *Builder) Valid() []int {
	if b.done {
		return nil
	}
	if !b.validOK {
		b.validMemo = b.computeValid()
		b.validOK = true
	}
	return b.validMemo
}

func (b *Builder) computeValid() []int {
	closing := len(b.emitted) >= b.cfg.SoftSteps
	if len(b.stack) == 0 {
		var ids []int
		if !b.cfg.DisableSelect {
			ids = append(ids, b.vocab.Reserved(token.RFrom))
		}
		if b.cfg.AllowInsert && b.anyInsertableTable() {
			ids = append(ids, b.vocab.Reserved(token.RInsert))
		}
		if b.cfg.AllowUpdate && b.anySettableTable() {
			ids = append(ids, b.vocab.Reserved(token.RUpdate))
		}
		if b.cfg.AllowDelete {
			ids = append(ids, b.vocab.Reserved(token.RDelete))
		}
		return ids
	}
	f := b.top()
	ids := f.valid(b, closing)
	if f.canClose() {
		ids = append(ids, b.vocab.EOF())
	}
	return ids
}

// Apply consumes one token id. The id must be a member of Valid().
func (b *Builder) Apply(id int) error {
	if b.done {
		return fmt.Errorf("fsm: statement already complete")
	}
	member := false
	for _, v := range b.Valid() {
		if v == id {
			member = true
			break
		}
	}
	if !member {
		return fmt.Errorf("fsm: token %d (%s) is masked in the current state",
			id, b.vocab.Token(id))
	}
	b.validOK = false // state is about to change
	tok := b.vocab.Token(id)

	if len(b.stack) == 0 {
		switch tok.Reserved {
		case token.RFrom:
			b.stack = append(b.stack, newSelectFrame(modeTop))
		case token.RInsert:
			b.stack = append(b.stack, &insertFrame{})
		case token.RUpdate:
			b.stack = append(b.stack, &updateFrame{})
		case token.RDelete:
			b.stack = append(b.stack, &deleteFrame{})
		default:
			return fmt.Errorf("fsm: unexpected start token %s", tok)
		}
		b.emitted = append(b.emitted, id)
		return nil
	}

	if tok.Type == token.TypeEOF {
		f := b.top()
		st, err := f.finish()
		if err != nil {
			return err
		}
		b.stack = b.stack[:len(b.stack)-1]
		if len(b.stack) == 0 {
			b.done = true
			b.final = st
		} else {
			sub, ok := st.(*sqlast.Select)
			if !ok {
				return fmt.Errorf("fsm: subquery closed with non-SELECT %T", st)
			}
			if err := b.top().childDone(b, sub); err != nil {
				return err
			}
		}
		b.emitted = append(b.emitted, id)
		return nil
	}

	if err := b.top().apply(b, tok); err != nil {
		return err
	}
	b.emitted = append(b.emitted, id)
	return nil
}

// Snapshot returns an executable prefix of the statement under
// construction, if one exists at the current step (§3.2: partial queries
// that are executable are sent to the environment for intermediate
// rewards). The returned AST must be consumed before the next Apply.
func (b *Builder) Snapshot() (sqlast.Statement, bool) {
	if b.done {
		return b.final, true
	}
	if len(b.stack) != 1 {
		return nil, false // inside an open subquery: outer atom incomplete
	}
	st := b.stack[0].snapshot()
	if st == nil {
		return nil, false
	}
	return st, true
}

// --- shared scope helpers ---

// hasValues reports whether the vocabulary sampled any literal for qc.
func (b *Builder) hasValues(qc schema.QualifiedColumn) bool {
	return len(b.vocab.ValueTokens(qc)) > 0
}

// scopeColumns returns column token ids over the given tables, filtered.
func (b *Builder) scopeColumns(tables []string, keep func(t *schema.Table, c *schema.Column) bool) []int {
	var ids []int
	for _, tn := range tables {
		t := b.sch.TableByName(tn)
		if t == nil {
			continue
		}
		for i := range t.Columns {
			c := &t.Columns[i]
			if keep != nil && !keep(t, c) {
				continue
			}
			if id := b.vocab.ColumnToken(schema.QualifiedColumn{Table: tn, Column: c.Name}); id >= 0 {
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// operatorTokens returns operator ids legal for a column kind: the paper
// supports all of {<,>,<=,>=,=,<>} for numeric data but only {=,>,<} for
// strings.
func (b *Builder) operatorTokens(kind sqltypes.Kind) []int {
	var ops []sqlast.CmpOp
	if kind.Numeric() {
		ops = token.Operators()
	} else {
		ops = []sqlast.CmpOp{sqlast.OpEq, sqlast.OpGt, sqlast.OpLt}
	}
	ids := make([]int, 0, len(ops))
	for _, op := range ops {
		if id := b.vocab.OperatorToken(op); id >= 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// columnKind resolves the kind of a qualified column (KindInvalid if
// unknown).
func (b *Builder) columnKind(qc schema.QualifiedColumn) sqltypes.Kind {
	c, err := b.sch.ResolveColumn(qc)
	if err != nil {
		return sqltypes.KindInvalid
	}
	return c.Kind
}

// anyInsertableTable reports whether some table can complete an INSERT
// VALUES form (every column has sampled literals).
func (b *Builder) anyInsertableTable() bool {
	for _, t := range b.sch.Tables {
		if insertableTable(b, t) {
			return true
		}
	}
	return false
}

// anySettableTable reports whether some table has a column with sampled
// literals, so an UPDATE SET clause can complete.
func (b *Builder) anySettableTable() bool {
	for _, t := range b.sch.Tables {
		for i := range t.Columns {
			if b.hasValues(schema.QualifiedColumn{Table: t.Name, Column: t.Columns[i].Name}) {
				return true
			}
		}
	}
	return false
}

// predicableColumns filters scope columns usable as predicate left sides:
// the column needs sampled literals, or (for numeric columns) an open
// nesting budget so a scalar subquery can supply the right side.
func (b *Builder) predicableColumns(tables []string) []int {
	nestOK := b.nestingAllowed()
	return b.scopeColumns(tables, func(t *schema.Table, c *schema.Column) bool {
		qc := schema.QualifiedColumn{Table: t.Name, Column: c.Name}
		if b.hasValues(qc) {
			return true
		}
		return nestOK && c.Kind.Numeric()
	})
}
