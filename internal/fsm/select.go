package fsm

import (
	"fmt"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/token"
)

// selMode distinguishes the contexts a SELECT can be generated in; each
// mode constrains the projection so the result shape fits the context.
type selMode uint8

const (
	modeTop       selMode = iota // a full query
	modeScalar                   // subquery after an operator: one aggregate
	modeIn                       // IN subquery: one column of the outer kind
	modeExists                   // EXISTS subquery: one column, any kind
	modeInsertSrc                // INSERT source: items match target columns
)

// selState is the position inside the SELECT grammar.
type selState uint8

const (
	sFrom        selState = iota // expect anchor table
	sAfterTable                  // expect JOIN | SELECT
	sJoinTable                   // expect joinable table
	sItemStart                   // expect first / next required select item
	sAggCol                      // expect column for a pending aggregate
	sItems                       // items so far complete: extend or move on
	sWhere                       // inside WHERE (see predBuilder)
	sGroupCol                    // expect a GROUP BY column
	sGroupMore                   // grouping cover complete
	sHavingAgg                   // expect aggregate word
	sHavingCol                   // expect aggregated column
	sHavingOp                    // expect operator
	sHavingVal                   // expect literal | FROM (scalar subquery)
	sAfterHaving                 // HAVING complete
	sOrderCol                    // expect ORDER BY column
	sAfterOrder                  // ORDER BY complete
)

type selectFrame struct {
	mode        selMode
	outerKind   sqltypes.Kind   // modeIn: kind the projection must match
	targetKinds []sqltypes.Kind // modeInsertSrc: required item kinds

	sel   sqlast.Select
	state selState

	pendingAgg sqlast.AggFunc
	pred       *predBuilder

	havingAgg  sqlast.AggFunc
	havingCol  schema.QualifiedColumn
	havingOp   sqlast.CmpOp
	havingWait bool // a scalar subquery for HAVING is open

	groupAny bool // all-aggregate projection: free choice of group columns
}

func newSelectFrame(mode selMode) *selectFrame {
	return &selectFrame{mode: mode, state: sFrom}
}

func (f *selectFrame) maxJoins(b *Builder) int {
	if f.mode == modeTop {
		return b.cfg.MaxJoins
	}
	return b.cfg.MaxSubJoins
}

func (f *selectFrame) hasPlain() bool {
	for _, it := range f.sel.Items {
		if it.Agg == sqlast.AggNone {
			return true
		}
	}
	return false
}

func (f *selectFrame) hasAgg() bool { return f.sel.HasAggregate() }

// mixed reports a projection combining plain and aggregate items, which
// requires GROUP BY cover before the query is executable.
func (f *selectFrame) mixed() bool { return f.hasPlain() && f.hasAgg() }

// groupNeeded lists plain projected columns not yet covered by GROUP BY.
func (f *selectFrame) groupNeeded() []schema.QualifiedColumn {
	if !f.hasAgg() {
		return nil
	}
	covered := map[schema.QualifiedColumn]bool{}
	for _, g := range f.sel.GroupBy {
		covered[g] = true
	}
	var need []schema.QualifiedColumn
	for _, it := range f.sel.Items {
		if it.Agg == sqlast.AggNone && !covered[it.Col] {
			need = append(need, it.Col)
		}
	}
	return need
}

// scopeHasNumeric reports a numeric column anywhere in the FROM scope.
func (f *selectFrame) scopeHasNumeric(b *Builder) bool {
	return len(b.scopeColumns(f.sel.Tables, func(_ *schema.Table, c *schema.Column) bool {
		return c.Kind.Numeric()
	})) > 0
}

// havingPossible reports whether a HAVING clause can complete: it needs a
// numeric column with sampled literals (or an open nesting budget).
func (f *selectFrame) havingPossible(b *Builder) bool {
	nestOK := b.nestingAllowed()
	return len(b.scopeColumns(f.sel.Tables, func(t *schema.Table, c *schema.Column) bool {
		if !c.Kind.Numeric() {
			return false
		}
		qc := schema.QualifiedColumn{Table: t.Name, Column: c.Name}
		return b.hasValues(qc) || nestOK
	})) > 0
}

// aggWords returns the aggregate reserved words applicable to the scope.
func (f *selectFrame) aggWords(b *Builder) []int {
	ids := []int{b.vocab.Reserved(token.RCount)}
	if f.scopeHasNumeric(b) {
		ids = append(ids,
			b.vocab.Reserved(token.RMax), b.vocab.Reserved(token.RMin),
			b.vocab.Reserved(token.RSum), b.vocab.Reserved(token.RAvg))
	}
	return ids
}

// insertCompatible reports whether table t can source every required kind.
func insertCompatible(t *schema.Table, kinds []sqltypes.Kind) bool {
	have := map[sqltypes.Kind]bool{}
	for i := range t.Columns {
		have[t.Columns[i].Kind] = true
	}
	for _, k := range kinds {
		if !have[k] {
			return false
		}
	}
	return true
}

func (f *selectFrame) valid(b *Builder, closing bool) []int {
	switch f.state {
	case sFrom:
		var ids []int
		for _, t := range b.sch.Tables {
			switch f.mode {
			case modeIn:
				ok := false
				for i := range t.Columns {
					if t.Columns[i].Kind == f.outerKind {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			case modeInsertSrc:
				if !insertCompatible(t, f.targetKinds) {
					continue
				}
			}
			if id := b.vocab.TableToken(t.Name); id >= 0 {
				ids = append(ids, id)
			}
		}
		return ids

	case sAfterTable:
		ids := []int{b.vocab.Reserved(token.RSelect)}
		if !closing && len(f.sel.Tables)-1 < f.maxJoins(b) && f.mode != modeInsertSrc {
			if len(b.joinableTables(f)) > 0 {
				ids = append(ids, b.vocab.Reserved(token.RJoin))
			}
		}
		return ids

	case sJoinTable:
		return b.joinableTables(f)

	case sItemStart:
		switch f.mode {
		case modeScalar:
			return f.aggWords(b)
		case modeIn:
			return b.scopeColumns(f.sel.Tables, func(_ *schema.Table, c *schema.Column) bool {
				return c.Kind == f.outerKind
			})
		case modeExists:
			return b.scopeColumns(f.sel.Tables, nil)
		case modeInsertSrc:
			need := f.targetKinds[len(f.sel.Items)]
			return b.scopeColumns(f.sel.Tables, func(_ *schema.Table, c *schema.Column) bool {
				return c.Kind == need
			})
		default: // modeTop
			ids := b.scopeColumns(f.sel.Tables, nil)
			if b.cfg.AllowAggregates {
				ids = append(ids, f.aggWords(b)...)
			}
			return ids
		}

	case sAggCol:
		if f.pendingAgg == sqlast.AggCount {
			return b.scopeColumns(f.sel.Tables, nil)
		}
		return b.scopeColumns(f.sel.Tables, func(_ *schema.Table, c *schema.Column) bool {
			return c.Kind.Numeric()
		})

	case sItems:
		var ids []int
		if f.mode == modeTop {
			if !closing && len(f.sel.Items) < b.cfg.MaxSelectItems {
				ids = append(ids, b.scopeColumns(f.sel.Tables, nil)...)
				if b.cfg.AllowAggregates {
					ids = append(ids, f.aggWords(b)...)
				}
			}
			if f.hasAgg() && (f.mixed() || !closing) {
				ids = append(ids, b.vocab.Reserved(token.RGroupBy))
			}
			if b.cfg.AllowOrderBy && !closing && f.hasPlain() && !f.hasAgg() {
				ids = append(ids, b.vocab.Reserved(token.ROrderBy))
			}
		}
		if !closing && len(b.predicableColumns(f.sel.Tables)) > 0 {
			ids = append(ids, b.vocab.Reserved(token.RWhere))
		}
		return ids

	case sWhere:
		ids := f.pred.valid(b, closing)
		if f.pred.complete() && f.mode == modeTop {
			if f.hasAgg() && (f.mixed() || !closing) {
				ids = append(ids, b.vocab.Reserved(token.RGroupBy))
			}
			if b.cfg.AllowOrderBy && !closing && f.hasPlain() && !f.hasAgg() {
				ids = append(ids, b.vocab.Reserved(token.ROrderBy))
			}
		}
		return ids

	case sGroupCol:
		if need := f.groupNeeded(); len(need) > 0 {
			ids := make([]int, 0, len(need))
			for _, qc := range need {
				if id := b.vocab.ColumnToken(qc); id >= 0 {
					ids = append(ids, id)
				}
			}
			return ids
		}
		// groupAny: any scope column not yet grouped.
		grouped := map[schema.QualifiedColumn]bool{}
		for _, g := range f.sel.GroupBy {
			grouped[g] = true
		}
		return b.scopeColumns(f.sel.Tables, func(t *schema.Table, c *schema.Column) bool {
			return !grouped[schema.QualifiedColumn{Table: t.Name, Column: c.Name}]
		})

	case sGroupMore:
		var ids []int
		if f.groupAny && !closing && len(f.sel.GroupBy) < b.cfg.MaxGroupCols {
			grouped := map[schema.QualifiedColumn]bool{}
			for _, g := range f.sel.GroupBy {
				grouped[g] = true
			}
			more := b.scopeColumns(f.sel.Tables, func(t *schema.Table, c *schema.Column) bool {
				return !grouped[schema.QualifiedColumn{Table: t.Name, Column: c.Name}]
			})
			ids = append(ids, more...)
		}
		if !closing && f.havingPossible(b) {
			ids = append(ids, b.vocab.Reserved(token.RHaving))
		}
		if b.cfg.AllowOrderBy && !closing && f.hasPlain() {
			ids = append(ids, b.vocab.Reserved(token.ROrderBy))
		}
		return ids

	case sHavingAgg:
		return f.aggWords(b)

	case sHavingCol:
		nestOK := b.nestingAllowed()
		return b.scopeColumns(f.sel.Tables, func(t *schema.Table, c *schema.Column) bool {
			if !c.Kind.Numeric() {
				return false
			}
			qc := schema.QualifiedColumn{Table: t.Name, Column: c.Name}
			return b.hasValues(qc) || nestOK
		})

	case sHavingOp:
		return b.operatorTokens(sqltypes.KindFloat)

	case sHavingVal:
		var ids []int
		ids = append(ids, b.vocab.ValueTokens(f.havingCol)...)
		if b.nestingAllowed() && !(closing && len(ids) > 0) {
			ids = append(ids, b.vocab.Reserved(token.RFrom))
		}
		return ids

	case sAfterHaving:
		if b.cfg.AllowOrderBy && !closing && f.hasPlain() {
			return []int{b.vocab.Reserved(token.ROrderBy)}
		}
		return nil

	case sOrderCol:
		seen := map[schema.QualifiedColumn]bool{}
		for _, o := range f.sel.OrderBy {
			seen[o] = true
		}
		var ids []int
		for _, it := range f.sel.Items {
			if it.Agg == sqlast.AggNone && !seen[it.Col] {
				if id := b.vocab.ColumnToken(it.Col); id >= 0 {
					ids = append(ids, id)
				}
			}
		}
		return ids

	case sAfterOrder:
		return nil

	default:
		return nil
	}
}

// joinableTables lists table tokens joinable to the current scope.
func (b *Builder) joinableTables(f *selectFrame) []int {
	in := map[string]bool{}
	for _, t := range f.sel.Tables {
		in[t] = true
	}
	var ids []int
	for _, name := range b.sch.JoinableFrom(in) {
		if id := b.vocab.TableToken(name); id >= 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

func (f *selectFrame) apply(b *Builder, tok token.Token) error {
	switch f.state {
	case sFrom:
		if tok.Type != token.TypeTable {
			return fmt.Errorf("fsm: expected table after FROM, got %s", tok)
		}
		f.sel.Tables = append(f.sel.Tables, tok.Table)
		f.state = sAfterTable
		return nil

	case sAfterTable:
		switch tok.Reserved {
		case token.RJoin:
			f.state = sJoinTable
			return nil
		case token.RSelect:
			f.state = sItemStart
			return nil
		}
		return fmt.Errorf("fsm: expected JOIN or SELECT, got %s", tok)

	case sJoinTable:
		if tok.Type != token.TypeTable {
			return fmt.Errorf("fsm: expected table after JOIN, got %s", tok)
		}
		// Auto-add the join keys (§5): connect the new table to the first
		// in-scope table sharing a declared join edge.
		for _, existing := range f.sel.Tables {
			if e, ok := b.sch.JoinEdgeBetween(existing, tok.Table); ok {
				f.sel.Tables = append(f.sel.Tables, tok.Table)
				f.sel.Joins = append(f.sel.Joins, sqlast.JoinCond{
					Left:  schema.QualifiedColumn{Table: e.LeftTable, Column: e.LeftColumn},
					Right: schema.QualifiedColumn{Table: e.RightTable, Column: e.RightColumn},
				})
				f.state = sAfterTable
				return nil
			}
		}
		return fmt.Errorf("fsm: table %s not joinable with current scope", tok.Table)

	case sItemStart, sItems:
		switch {
		case tok.Type == token.TypeColumn:
			f.sel.Items = append(f.sel.Items, sqlast.SelectItem{Col: tok.QC()})
			f.advanceAfterItem()
			return nil
		case tok.Type == token.TypeReserved && tok.Reserved.Agg() != sqlast.AggNone:
			f.pendingAgg = tok.Reserved.Agg()
			f.state = sAggCol
			return nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RWhere && f.state == sItems:
			f.pred = newPredBuilder(f.sel.Tables)
			f.state = sWhere
			return nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RGroupBy && f.state == sItems:
			f.enterGroupBy()
			return nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.ROrderBy && f.state == sItems:
			f.state = sOrderCol
			return nil
		}
		return fmt.Errorf("fsm: unexpected %s in select list", tok)

	case sAggCol:
		if tok.Type != token.TypeColumn {
			return fmt.Errorf("fsm: expected column for %v, got %s", f.pendingAgg, tok)
		}
		f.sel.Items = append(f.sel.Items, sqlast.SelectItem{Agg: f.pendingAgg, Col: tok.QC()})
		f.pendingAgg = sqlast.AggNone
		f.advanceAfterItem()
		return nil

	case sWhere:
		handled, err := f.pred.apply(b, tok)
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
		switch tok.Reserved {
		case token.RGroupBy:
			f.enterGroupBy()
			return nil
		case token.ROrderBy:
			f.state = sOrderCol
			return nil
		}
		return fmt.Errorf("fsm: unexpected %s after predicate", tok)

	case sGroupCol:
		if tok.Type != token.TypeColumn {
			return fmt.Errorf("fsm: expected GROUP BY column, got %s", tok)
		}
		f.sel.GroupBy = append(f.sel.GroupBy, tok.QC())
		if len(f.groupNeeded()) == 0 {
			f.state = sGroupMore
		}
		return nil

	case sGroupMore:
		switch {
		case tok.Type == token.TypeColumn: // extra free grouping column
			f.sel.GroupBy = append(f.sel.GroupBy, tok.QC())
			return nil
		case tok.Reserved == token.RHaving:
			f.state = sHavingAgg
			return nil
		case tok.Reserved == token.ROrderBy:
			f.state = sOrderCol
			return nil
		}
		return fmt.Errorf("fsm: unexpected %s after GROUP BY", tok)

	case sHavingAgg:
		agg := tok.Reserved.Agg()
		if agg == sqlast.AggNone {
			return fmt.Errorf("fsm: expected aggregate in HAVING, got %s", tok)
		}
		f.havingAgg = agg
		f.state = sHavingCol
		return nil

	case sHavingCol:
		if tok.Type != token.TypeColumn {
			return fmt.Errorf("fsm: expected HAVING column, got %s", tok)
		}
		f.havingCol = tok.QC()
		f.state = sHavingOp
		return nil

	case sHavingOp:
		if tok.Type != token.TypeOperator {
			return fmt.Errorf("fsm: expected operator in HAVING, got %s", tok)
		}
		f.havingOp = tok.Op
		f.state = sHavingVal
		return nil

	case sHavingVal:
		switch {
		case tok.Type == token.TypeValue:
			if tok.QC() != f.havingCol {
				return fmt.Errorf("fsm: HAVING literal of %s for column %s", tok.QC(), f.havingCol)
			}
			f.sel.Having = &sqlast.Having{
				Agg: f.havingAgg, Col: f.havingCol, Op: f.havingOp, Value: tok.Value,
			}
			f.state = sAfterHaving
			return nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RFrom:
			f.havingWait = true
			b.stack = append(b.stack, newSelectFrame(modeScalar))
			return nil
		}
		return fmt.Errorf("fsm: expected HAVING literal, got %s", tok)

	case sAfterHaving:
		if tok.Reserved == token.ROrderBy {
			f.state = sOrderCol
			return nil
		}
		return fmt.Errorf("fsm: unexpected %s after HAVING", tok)

	case sOrderCol:
		if tok.Type != token.TypeColumn {
			return fmt.Errorf("fsm: expected ORDER BY column, got %s", tok)
		}
		f.sel.OrderBy = append(f.sel.OrderBy, tok.QC())
		f.state = sAfterOrder
		return nil

	default:
		return fmt.Errorf("fsm: select frame cannot consume %s in state %d", tok, f.state)
	}
}

// advanceAfterItem moves past a completed select item according to mode.
func (f *selectFrame) advanceAfterItem() {
	switch f.mode {
	case modeInsertSrc:
		if len(f.sel.Items) < len(f.targetKinds) {
			f.state = sItemStart
		} else {
			f.state = sItems
		}
	default:
		f.state = sItems
	}
}

// enterGroupBy starts the GROUP BY clause; groupAny marks all-aggregate
// projections where the agent may group by arbitrary scope columns.
func (f *selectFrame) enterGroupBy() {
	f.groupAny = !f.hasPlain()
	f.state = sGroupCol
}

func (f *selectFrame) canClose() bool {
	switch f.state {
	case sItems:
		return !f.mixed()
	case sWhere:
		return f.pred.complete() && !f.mixed()
	case sGroupMore, sAfterHaving, sAfterOrder:
		return true
	default:
		return false
	}
}

func (f *selectFrame) finish() (sqlast.Statement, error) {
	if !f.canClose() {
		return nil, fmt.Errorf("fsm: SELECT incomplete in state %d", f.state)
	}
	if f.pred != nil {
		f.sel.Where = f.pred.where
	}
	return &f.sel, nil
}

func (f *selectFrame) childDone(b *Builder, sub *sqlast.Select) error {
	if f.havingWait {
		f.havingWait = false
		f.sel.Having = &sqlast.Having{
			Agg: f.havingAgg, Col: f.havingCol, Op: f.havingOp, Sub: sub,
		}
		f.state = sAfterHaving
		return nil
	}
	if f.state == sWhere && f.pred != nil {
		return f.pred.childDone(sub)
	}
	return fmt.Errorf("fsm: select frame received unexpected subquery")
}

// snapshot returns the executable prefix of a top-level SELECT, or nil.
func (f *selectFrame) snapshot() sqlast.Statement {
	if f.mode != modeTop || len(f.sel.Items) == 0 || !f.canClose() {
		return nil
	}
	cp := f.sel
	cp.Tables = append([]string(nil), f.sel.Tables...)
	cp.Joins = append([]sqlast.JoinCond(nil), f.sel.Joins...)
	cp.Items = append([]sqlast.SelectItem(nil), f.sel.Items...)
	cp.GroupBy = append([]schema.QualifiedColumn(nil), f.sel.GroupBy...)
	cp.OrderBy = append([]schema.QualifiedColumn(nil), f.sel.OrderBy...)
	if f.pred != nil && f.pred.complete() {
		cp.Where = f.pred.where
	} else {
		cp.Where = nil
	}
	return &cp
}
