package fsm

import "learnedsqlgen/internal/parser"

// reparse round-trips SQL text through the parser, verifying the rendering
// of FSM-generated statements stays within the supported grammar.
func reparse(sql string) error {
	st, err := parser.Parse(sql)
	if err != nil {
		return err
	}
	_, err = parser.Parse(st.SQL())
	return err
}
