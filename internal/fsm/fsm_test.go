package fsm

import (
	"math/rand"
	"strings"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
	"learnedsqlgen/internal/token"
)

type env struct {
	db    *storage.Database
	vocab *token.Vocab
	est   *estimator.Estimator
}

func newEnv(t testing.TB, dataset string) *env {
	t.Helper()
	db, err := datagen.Generate(dataset, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &env{
		db:    db,
		vocab: token.Build(db, 20, 7),
		est:   estimator.New(db.Schema, stats.Collect(db)),
	}
}

// walk runs one uniform random episode and returns the statement.
func walk(t testing.TB, b *Builder, rng *rand.Rand) sqlast.Statement {
	t.Helper()
	for !b.Done() {
		valid := b.Valid()
		if len(valid) == 0 {
			t.Fatalf("dead end after %d steps: %s", b.Steps(), b.Describe())
		}
		id := valid[rng.Intn(len(valid))]
		if err := b.Apply(id); err != nil {
			t.Fatalf("apply %s after %q: %v", b.vocab.Token(id), b.Describe(), err)
		}
		if b.Steps() > 200 {
			t.Fatalf("runaway episode: %s", b.Describe())
		}
	}
	st, err := b.Statement()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRandomWalksAlwaysValid is the core §5 guarantee: every FSM walk over
// every dataset yields a statement the executor runs and the estimator
// estimates without error, and every snapshot along the way is executable.
func TestRandomWalksAlwaysValid(t *testing.T) {
	for _, dataset := range []string{datagen.NameTPCH, datagen.NameJOB, datagen.NameXueTang} {
		t.Run(dataset, func(t *testing.T) {
			e := newEnv(t, dataset)
			cfg := DefaultConfig()
			cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
			rng := rand.New(rand.NewSource(99))
			b := NewBuilder(e.db.Schema, e.vocab, cfg)
			for trial := 0; trial < 300; trial++ {
				b.Reset()
				var snapshots []sqlast.Statement
				for !b.Done() {
					valid := b.Valid()
					if len(valid) == 0 {
						t.Fatalf("trial %d: dead end: %s", trial, b.Describe())
					}
					if err := b.Apply(valid[rng.Intn(len(valid))]); err != nil {
						t.Fatalf("trial %d: %v", trial, err)
					}
					if st, ok := b.Snapshot(); ok {
						// Snapshots must be estimable immediately.
						if _, err := e.est.Estimate(st); err != nil {
							t.Fatalf("trial %d: snapshot %q not estimable: %v",
								trial, st.SQL(), err)
						}
						snapshots = append(snapshots, st)
					}
					if b.Steps() > 200 {
						t.Fatalf("trial %d: runaway: %s", trial, b.Describe())
					}
				}
				st, err := b.Statement()
				if err != nil {
					t.Fatal(err)
				}
				if len(snapshots) == 0 {
					t.Errorf("trial %d: no executable prefix for %q", trial, st.SQL())
				}
				if _, err := executor.New(e.db.Clone()).Execute(st); err != nil {
					t.Fatalf("trial %d: executor rejected %q: %v", trial, st.SQL(), err)
				}
				if _, err := e.est.Estimate(st); err != nil {
					t.Fatalf("trial %d: estimator rejected %q: %v", trial, st.SQL(), err)
				}
			}
		})
	}
}

func TestSelectOnlyConfigNeverEmitsDML(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	for trial := 0; trial < 100; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		if _, ok := st.(*sqlast.Select); !ok {
			t.Fatalf("got %T with DML disabled", st)
		}
	}
}

func TestEpisodesTerminateUnderSoftSteps(t *testing.T) {
	e := newEnv(t, datagen.NameJOB)
	cfg := DefaultConfig()
	cfg.SoftSteps = 15
	rng := rand.New(rand.NewSource(12))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	for trial := 0; trial < 100; trial++ {
		b.Reset()
		walk(t, b, rng)
		if b.Steps() > cfg.SoftSteps+25 {
			t.Fatalf("episode ran %d steps past soft limit: %s", b.Steps(), b.Describe())
		}
	}
}

func TestMixedProjectionForcesGroupBy(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(21))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	sawMixed := 0
	for trial := 0; trial < 400 && sawMixed < 20; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		sel, ok := st.(*sqlast.Select)
		if !ok {
			continue
		}
		plain, agg := 0, 0
		for _, it := range sel.Items {
			if it.Agg == sqlast.AggNone {
				plain++
			} else {
				agg++
			}
		}
		if plain > 0 && agg > 0 {
			sawMixed++
			covered := map[string]bool{}
			for _, g := range sel.GroupBy {
				covered[g.String()] = true
			}
			for _, it := range sel.Items {
				if it.Agg == sqlast.AggNone && !covered[it.Col.String()] {
					t.Fatalf("mixed projection not grouped: %s", sel.SQL())
				}
			}
		}
	}
	if sawMixed == 0 {
		t.Error("no mixed projections generated in 400 trials")
	}
}

func TestStringColumnsOnlyGetEqLtGt(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(31))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	checked := 0
	for trial := 0; trial < 500 && checked < 30; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		sel, ok := st.(*sqlast.Select)
		if !ok || sel.Where == nil {
			continue
		}
		sqlast.WalkPredicates(sel.Where, func(p sqlast.Predicate) {
			cmp, ok := p.(*sqlast.Compare)
			if !ok {
				return
			}
			col, err := e.db.Schema.ResolveColumn(cmp.Col)
			if err != nil {
				t.Fatal(err)
			}
			if !col.Kind.Numeric() {
				checked++
				switch cmp.Op {
				case sqlast.OpEq, sqlast.OpLt, sqlast.OpGt:
				default:
					t.Fatalf("string column %s got operator %s", cmp.Col, cmp.Op)
				}
			}
		})
	}
	if checked == 0 {
		t.Skip("no string predicates generated")
	}
}

func TestJoinsFollowForeignKeys(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(41))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	sawJoin := false
	for trial := 0; trial < 300; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		sel, ok := st.(*sqlast.Select)
		if !ok || len(sel.Joins) == 0 {
			continue
		}
		sawJoin = true
		for _, j := range sel.Joins {
			if _, ok := e.db.Schema.JoinEdgeBetween(j.Left.Table, j.Right.Table); !ok {
				t.Fatalf("join %v not on a declared edge in %s", j, sel.SQL())
			}
		}
		if len(sel.Joins) > DefaultConfig().MaxJoins {
			t.Fatalf("too many joins: %s", sel.SQL())
		}
	}
	if !sawJoin {
		t.Error("no joins generated in 300 trials")
	}
}

func TestNestedQueriesAppearAndClose(t *testing.T) {
	e := newEnv(t, datagen.NameXueTang)
	rng := rand.New(rand.NewSource(51))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	nested := 0
	for trial := 0; trial < 400; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		nested += len(sqlast.Subqueries(st))
	}
	if nested == 0 {
		t.Error("no nested queries generated in 400 trials")
	}
}

func TestNestingDisabled(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	cfg := DefaultConfig()
	cfg.MaxNestDepth = 0
	rng := rand.New(rand.NewSource(61))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	for trial := 0; trial < 200; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		if len(sqlast.Subqueries(st)) != 0 {
			t.Fatalf("nesting disabled but got subquery: %s", st.SQL())
		}
	}
}

func TestDMLGeneration(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	cfg := DefaultConfig()
	cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
	rng := rand.New(rand.NewSource(71))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	kinds := map[string]int{}
	for trial := 0; trial < 600; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		switch s := st.(type) {
		case *sqlast.Insert:
			kinds["insert"]++
			if s.Sub == nil && len(s.Values) == 0 {
				t.Fatalf("empty insert: %s", s.SQL())
			}
		case *sqlast.Update:
			kinds["update"]++
			if len(s.Sets) == 0 {
				t.Fatalf("update without SET: %s", s.SQL())
			}
		case *sqlast.Delete:
			kinds["delete"]++
		case *sqlast.Select:
			kinds["select"]++
		}
	}
	for _, k := range []string{"insert", "update", "delete", "select"} {
		if kinds[k] == 0 {
			t.Errorf("no %s statements in 600 trials (%v)", k, kinds)
		}
	}
}

func TestApplyRejectsMaskedToken(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	// EOF at the very start is masked.
	if err := b.Apply(e.vocab.EOF()); err == nil {
		t.Error("EOF at start must be rejected")
	}
	// WHERE at the very start is masked.
	if err := b.Apply(e.vocab.Reserved(token.RWhere)); err == nil {
		t.Error("WHERE at start must be rejected")
	}
	// Valid FROM works, then a value token is masked.
	if err := b.Apply(e.vocab.Reserved(token.RFrom)); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(e.vocab.Reserved(token.RSelect)); err == nil {
		t.Error("SELECT before table must be rejected")
	}
}

func TestStatementBeforeDoneErrors(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	if _, err := b.Statement(); err == nil {
		t.Error("Statement before Done must error")
	}
	if _, ok := b.Snapshot(); ok {
		t.Error("Snapshot at start must be unavailable")
	}
}

func TestApplyAfterDoneErrors(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(81))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	walk(t, b, rng)
	if err := b.Apply(e.vocab.EOF()); err == nil {
		t.Error("Apply after Done must error")
	}
	if b.Valid() != nil {
		t.Error("Valid after Done must be nil")
	}
	if st, ok := b.Snapshot(); !ok || st == nil {
		t.Error("Snapshot after Done must return the final statement")
	}
}

func TestDescribeMatchesTokens(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(91))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	walk(t, b, rng)
	desc := b.Describe()
	if !strings.HasPrefix(desc, "FROM ") {
		t.Errorf("token stream must start with FROM: %q", desc)
	}
	if !strings.HasSuffix(desc, " EOF") {
		t.Errorf("token stream must end with EOF: %q", desc)
	}
	if len(b.Tokens()) < 4 {
		t.Errorf("suspiciously short episode: %q", desc)
	}
}

// TestSnapshotMatchesExecutor verifies that every snapshot the FSM reports
// as executable actually executes.
func TestSnapshotMatchesExecutor(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	cfg := DefaultConfig()
	cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
	rng := rand.New(rand.NewSource(101))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	checked := 0
	for trial := 0; trial < 60; trial++ {
		b.Reset()
		for !b.Done() {
			valid := b.Valid()
			if err := b.Apply(valid[rng.Intn(len(valid))]); err != nil {
				t.Fatal(err)
			}
			if st, ok := b.Snapshot(); ok && !b.Done() {
				if _, err := executor.New(e.db.Clone()).Execute(st); err != nil {
					t.Fatalf("snapshot %q failed: %v", st.SQL(), err)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Error("no snapshots produced")
	}
}

func TestGeneratedSQLReparses(t *testing.T) {
	// Rendered SQL of generated statements must round-trip through the
	// parser (ties the FSM, AST and parser layers together).
	e := newEnv(t, datagen.NameTPCH)
	cfg := DefaultConfig()
	cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
	rng := rand.New(rand.NewSource(111))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	for trial := 0; trial < 150; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		if err := reparse(st.SQL()); err != nil {
			t.Fatalf("generated SQL does not reparse: %q: %v", st.SQL(), err)
		}
	}
}

func TestLikeGeneration(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	cfg := DefaultConfig()
	cfg.AllowLike = true
	rng := rand.New(rand.NewSource(121))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	likes := 0
	for trial := 0; trial < 300; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		sqlast.WalkPredicates(st.(*sqlast.Select).Where, func(p sqlast.Predicate) {
			if _, ok := p.(*sqlast.Like); ok {
				likes++
			}
		})
		// Everything must still execute and estimate.
		if _, err := executor.New(e.db.Clone()).Execute(st); err != nil {
			t.Fatalf("LIKE statement rejected: %q: %v", st.SQL(), err)
		}
		if _, err := e.est.Estimate(st); err != nil {
			t.Fatalf("LIKE statement not estimable: %q: %v", st.SQL(), err)
		}
	}
	if likes == 0 {
		t.Error("no LIKE predicates generated in 300 trials with AllowLike")
	}
}

func TestLikeDisabledByDefault(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	rng := rand.New(rand.NewSource(131))
	b := NewBuilder(e.db.Schema, e.vocab, DefaultConfig())
	for trial := 0; trial < 150; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		sqlast.WalkPredicates(st.(*sqlast.Select).Where, func(p sqlast.Predicate) {
			if _, ok := p.(*sqlast.Like); ok {
				t.Fatalf("LIKE generated with AllowLike=false: %s", st.SQL())
			}
		})
	}
}

func TestDisableSelect(t *testing.T) {
	e := newEnv(t, datagen.NameTPCH)
	cfg := DefaultConfig()
	cfg.DisableSelect = true
	cfg.AllowInsert, cfg.AllowDelete = true, true
	rng := rand.New(rand.NewSource(141))
	b := NewBuilder(e.db.Schema, e.vocab, cfg)
	for trial := 0; trial < 100; trial++ {
		b.Reset()
		st := walk(t, b, rng)
		if _, ok := st.(*sqlast.Select); ok {
			t.Fatalf("top-level SELECT generated with DisableSelect: %s", st.SQL())
		}
	}
}
