package fsm

import (
	"fmt"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/token"
)

// --- INSERT (grammar Case 4) ---

type insState uint8

const (
	iTable insState = iota // expect target table
	iKind                  // expect VALUES | FROM (select source)
	iVal                   // expect literal for column valIdx
	iDone                  // statement complete
)

type insertFrame struct {
	st     sqlast.Insert
	state  insState
	valIdx int
}

// insertableTable reports whether every column of t has sampled literals,
// so the VALUES branch can always complete.
func insertableTable(b *Builder, t *schema.Table) bool {
	for i := range t.Columns {
		if !b.hasValues(schema.QualifiedColumn{Table: t.Name, Column: t.Columns[i].Name}) {
			return false
		}
	}
	return true
}

func (f *insertFrame) targetKinds(b *Builder) []sqltypes.Kind {
	t := b.sch.TableByName(f.st.Table)
	kinds := make([]sqltypes.Kind, len(t.Columns))
	for i := range t.Columns {
		kinds[i] = t.Columns[i].Kind
	}
	return kinds
}

func (f *insertFrame) valid(b *Builder, closing bool) []int {
	switch f.state {
	case iTable:
		var ids []int
		for _, t := range b.sch.Tables {
			if insertableTable(b, t) {
				if id := b.vocab.TableToken(t.Name); id >= 0 {
					ids = append(ids, id)
				}
			}
		}
		return ids
	case iKind:
		ids := []int{b.vocab.Reserved(token.RValues)}
		if !closing {
			ids = append(ids, b.vocab.Reserved(token.RFrom))
		}
		return ids
	case iVal:
		t := b.sch.TableByName(f.st.Table)
		qc := schema.QualifiedColumn{Table: f.st.Table, Column: t.Columns[f.valIdx].Name}
		return b.vocab.ValueTokens(qc)
	default:
		return nil
	}
}

func (f *insertFrame) apply(b *Builder, tok token.Token) error {
	switch f.state {
	case iTable:
		if tok.Type != token.TypeTable {
			return fmt.Errorf("fsm: expected table after INSERT INTO, got %s", tok)
		}
		f.st.Table = tok.Table
		f.state = iKind
		return nil
	case iKind:
		switch tok.Reserved {
		case token.RValues:
			f.state = iVal
			return nil
		case token.RFrom:
			sub := newSelectFrame(modeInsertSrc)
			sub.targetKinds = f.targetKinds(b)
			b.stack = append(b.stack, sub)
			return nil
		}
		return fmt.Errorf("fsm: expected VALUES or FROM, got %s", tok)
	case iVal:
		if tok.Type != token.TypeValue || tok.Table != f.st.Table {
			return fmt.Errorf("fsm: expected literal for %s, got %s", f.st.Table, tok)
		}
		t := b.sch.TableByName(f.st.Table)
		want := t.Columns[f.valIdx].Name
		if tok.Column != want {
			return fmt.Errorf("fsm: expected literal of column %s, got %s", want, tok.Column)
		}
		f.st.Values = append(f.st.Values, tok.Value)
		f.valIdx++
		if f.valIdx == len(t.Columns) {
			f.state = iDone
		}
		return nil
	default:
		return fmt.Errorf("fsm: insert frame cannot consume %s", tok)
	}
}

func (f *insertFrame) canClose() bool { return f.state == iDone }

func (f *insertFrame) finish() (sqlast.Statement, error) {
	if !f.canClose() {
		return nil, fmt.Errorf("fsm: INSERT incomplete")
	}
	return &f.st, nil
}

func (f *insertFrame) childDone(_ *Builder, sub *sqlast.Select) error {
	if f.state != iKind {
		return fmt.Errorf("fsm: insert frame received unexpected subquery")
	}
	f.st.Sub = sub
	f.state = iDone
	return nil
}

func (f *insertFrame) snapshot() sqlast.Statement {
	if !f.canClose() {
		return nil
	}
	cp := f.st
	cp.Values = append([]sqltypes.Value(nil), f.st.Values...)
	return &cp
}

// --- UPDATE (grammar Case 5) ---

type upState uint8

const (
	uTable    upState = iota // expect target table
	uSet                     // expect SET
	uSetCol                  // expect column to assign
	uSetEq                   // expect '='
	uSetVal                  // expect literal
	uAfterSet                // expect more columns | WHERE | EOF
	uWhere                   // inside WHERE
)

type updateFrame struct {
	st         sqlast.Update
	state      upState
	pendingCol string
	pred       *predBuilder
}

// settableColumns lists unassigned columns of the target table that have
// sampled literals.
func (f *updateFrame) settableColumns(b *Builder) []int {
	assigned := map[string]bool{}
	for _, s := range f.st.Sets {
		assigned[s.Col] = true
	}
	return b.scopeColumns([]string{f.st.Table}, func(t *schema.Table, c *schema.Column) bool {
		if assigned[c.Name] {
			return false
		}
		return b.hasValues(schema.QualifiedColumn{Table: t.Name, Column: c.Name})
	})
}

func (f *updateFrame) valid(b *Builder, closing bool) []int {
	switch f.state {
	case uTable:
		var ids []int
		for _, t := range b.sch.Tables {
			// At least one settable column is needed to complete SET.
			ok := false
			for i := range t.Columns {
				if b.hasValues(schema.QualifiedColumn{Table: t.Name, Column: t.Columns[i].Name}) {
					ok = true
					break
				}
			}
			if ok {
				if id := b.vocab.TableToken(t.Name); id >= 0 {
					ids = append(ids, id)
				}
			}
		}
		return ids
	case uSet:
		return []int{b.vocab.Reserved(token.RSet)}
	case uSetCol:
		return f.settableColumns(b)
	case uSetEq:
		return []int{b.vocab.OperatorToken(sqlast.OpEq)}
	case uSetVal:
		qc := schema.QualifiedColumn{Table: f.st.Table, Column: f.pendingCol}
		return b.vocab.ValueTokens(qc)
	case uAfterSet:
		var ids []int
		if !closing {
			ids = append(ids, f.settableColumns(b)...)
			if len(b.predicableColumns([]string{f.st.Table})) > 0 {
				ids = append(ids, b.vocab.Reserved(token.RWhere))
			}
		}
		return ids
	case uWhere:
		return f.pred.valid(b, closing)
	default:
		return nil
	}
}

func (f *updateFrame) apply(b *Builder, tok token.Token) error {
	switch f.state {
	case uTable:
		if tok.Type != token.TypeTable {
			return fmt.Errorf("fsm: expected table after UPDATE, got %s", tok)
		}
		f.st.Table = tok.Table
		f.state = uSet
		return nil
	case uSet:
		if tok.Reserved != token.RSet {
			return fmt.Errorf("fsm: expected SET, got %s", tok)
		}
		f.state = uSetCol
		return nil
	case uSetCol, uAfterSet:
		switch {
		case tok.Type == token.TypeColumn:
			if tok.Table != f.st.Table {
				return fmt.Errorf("fsm: SET column %s outside table %s", tok.QC(), f.st.Table)
			}
			f.pendingCol = tok.Column
			f.state = uSetEq
			return nil
		case tok.Reserved == token.RWhere && f.state == uAfterSet:
			f.pred = newPredBuilder([]string{f.st.Table})
			f.state = uWhere
			return nil
		}
		return fmt.Errorf("fsm: expected SET column, got %s", tok)
	case uSetEq:
		if tok.Type != token.TypeOperator || tok.Op != sqlast.OpEq {
			return fmt.Errorf("fsm: expected '=', got %s", tok)
		}
		f.state = uSetVal
		return nil
	case uSetVal:
		if tok.Type != token.TypeValue ||
			tok.Table != f.st.Table || tok.Column != f.pendingCol {
			return fmt.Errorf("fsm: expected literal of %s.%s, got %s",
				f.st.Table, f.pendingCol, tok)
		}
		f.st.Sets = append(f.st.Sets, sqlast.SetClause{Col: f.pendingCol, Value: tok.Value})
		f.pendingCol = ""
		f.state = uAfterSet
		return nil
	case uWhere:
		handled, err := f.pred.apply(b, tok)
		if err != nil {
			return err
		}
		if !handled {
			return fmt.Errorf("fsm: unexpected %s after UPDATE predicate", tok)
		}
		return nil
	default:
		return fmt.Errorf("fsm: update frame cannot consume %s", tok)
	}
}

func (f *updateFrame) canClose() bool {
	switch f.state {
	case uAfterSet:
		return true
	case uWhere:
		return f.pred.complete()
	default:
		return false
	}
}

func (f *updateFrame) finish() (sqlast.Statement, error) {
	if !f.canClose() {
		return nil, fmt.Errorf("fsm: UPDATE incomplete")
	}
	if f.pred != nil {
		f.st.Where = f.pred.where
	}
	return &f.st, nil
}

func (f *updateFrame) childDone(_ *Builder, sub *sqlast.Select) error {
	if f.state == uWhere && f.pred != nil {
		return f.pred.childDone(sub)
	}
	return fmt.Errorf("fsm: update frame received unexpected subquery")
}

func (f *updateFrame) snapshot() sqlast.Statement {
	if !f.canClose() {
		return nil
	}
	cp := f.st
	cp.Sets = append([]sqlast.SetClause(nil), f.st.Sets...)
	if f.pred != nil && f.pred.complete() {
		cp.Where = f.pred.where
	} else {
		cp.Where = nil
	}
	return &cp
}

// --- DELETE (grammar Case 6) ---

type delState uint8

const (
	dTable delState = iota // expect target table
	dAfter                 // expect WHERE | EOF
	dWhere                 // inside WHERE
)

type deleteFrame struct {
	st    sqlast.Delete
	state delState
	pred  *predBuilder
}

func (f *deleteFrame) valid(b *Builder, closing bool) []int {
	switch f.state {
	case dTable:
		ids := make([]int, 0, len(b.sch.Tables))
		for _, t := range b.sch.Tables {
			if id := b.vocab.TableToken(t.Name); id >= 0 {
				ids = append(ids, id)
			}
		}
		return ids
	case dAfter:
		if !closing && len(b.predicableColumns([]string{f.st.Table})) > 0 {
			return []int{b.vocab.Reserved(token.RWhere)}
		}
		return nil
	case dWhere:
		return f.pred.valid(b, closing)
	default:
		return nil
	}
}

func (f *deleteFrame) apply(b *Builder, tok token.Token) error {
	switch f.state {
	case dTable:
		if tok.Type != token.TypeTable {
			return fmt.Errorf("fsm: expected table after DELETE FROM, got %s", tok)
		}
		f.st.Table = tok.Table
		f.state = dAfter
		return nil
	case dAfter:
		if tok.Reserved == token.RWhere {
			f.pred = newPredBuilder([]string{f.st.Table})
			f.state = dWhere
			return nil
		}
		return fmt.Errorf("fsm: expected WHERE, got %s", tok)
	case dWhere:
		handled, err := f.pred.apply(b, tok)
		if err != nil {
			return err
		}
		if !handled {
			return fmt.Errorf("fsm: unexpected %s after DELETE predicate", tok)
		}
		return nil
	default:
		return fmt.Errorf("fsm: delete frame cannot consume %s", tok)
	}
}

func (f *deleteFrame) canClose() bool {
	switch f.state {
	case dAfter:
		return true
	case dWhere:
		return f.pred.complete()
	default:
		return false
	}
}

func (f *deleteFrame) finish() (sqlast.Statement, error) {
	if !f.canClose() {
		return nil, fmt.Errorf("fsm: DELETE incomplete")
	}
	if f.pred != nil {
		f.st.Where = f.pred.where
	}
	return &f.st, nil
}

func (f *deleteFrame) childDone(_ *Builder, sub *sqlast.Select) error {
	if f.state == dWhere && f.pred != nil {
		return f.pred.childDone(sub)
	}
	return fmt.Errorf("fsm: delete frame received unexpected subquery")
}

func (f *deleteFrame) snapshot() sqlast.Statement {
	if !f.canClose() {
		return nil
	}
	cp := f.st
	if f.pred != nil && f.pred.complete() {
		cp.Where = f.pred.where
	} else {
		cp.Where = nil
	}
	return &cp
}
