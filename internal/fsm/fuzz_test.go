package fsm

import (
	"math/rand"
	"sync"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
	"learnedsqlgen/internal/token"
)

// fuzzWorld is the shared walk environment: built once, read-only across
// fuzz iterations (the executor clones before DML).
var fuzzWorld struct {
	once  sync.Once
	db    *storage.Database
	vocab *token.Vocab
	est   *estimator.Estimator
	err   error
}

func fuzzEnv(t *testing.T) (*storage.Database, *token.Vocab, *estimator.Estimator) {
	fuzzWorld.once.Do(func() {
		db, err := datagen.Generate(datagen.NameXueTang, 0.05, 1)
		if err != nil {
			fuzzWorld.err = err
			return
		}
		fuzzWorld.db = db
		fuzzWorld.vocab = token.Build(db, 20, 7)
		fuzzWorld.est = estimator.New(db.Schema, stats.Collect(db))
	})
	if fuzzWorld.err != nil {
		t.Fatal(fuzzWorld.err)
	}
	return fuzzWorld.db, fuzzWorld.vocab, fuzzWorld.est
}

// FuzzFSMWalk drives a masked walk with fuzzer-chosen branch indices
// (falling back to a seeded rng once the choices run out) and asserts the
// §5 guarantee end to end: the walk completes, the statement parses and
// round-trips, the estimator prices it, and the executor runs it.
func FuzzFSMWalk(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(int64(3), []byte{255, 254, 253, 252, 251, 250})
	f.Add(int64(4), []byte{7, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3})
	f.Add(int64(-9000), []byte{1, 128, 3, 64, 5, 32, 7, 16})
	f.Fuzz(func(t *testing.T, seed int64, choices []byte) {
		db, vocab, est := fuzzEnv(t)
		cfg := DefaultConfig()
		cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
		b := NewBuilder(db.Schema, vocab, cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; !b.Done(); i++ {
			valid := b.Valid()
			if len(valid) == 0 {
				t.Fatalf("dead end after %d steps: %s", b.Steps(), b.Describe())
			}
			var pick int
			if i < len(choices) {
				pick = int(choices[i]) % len(valid)
			} else {
				pick = rng.Intn(len(valid))
			}
			if err := b.Apply(valid[pick]); err != nil {
				t.Fatalf("FSM rejected its own unmasked action %s at step %d: %v",
					vocab.Token(valid[pick]), i, err)
			}
			if b.Steps() > 400 {
				t.Fatalf("runaway episode: %s", b.Describe())
			}
		}
		st, err := b.Statement()
		if err != nil {
			t.Fatalf("completed walk has no statement: %v", err)
		}
		sql := st.SQL()
		parsed, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %q: %v", sql, err)
		}
		if got := parsed.SQL(); got != sql {
			t.Fatalf("parse/render round trip drifted: %q -> %q", sql, got)
		}
		if _, err := est.Estimate(st); err != nil {
			t.Fatalf("estimator refused a generated statement: %q: %v", sql, err)
		}
		target := db
		if _, ok := st.(*sqlast.Select); !ok {
			target = db.Clone()
		}
		if _, err := executor.New(target).Execute(st); err != nil {
			t.Fatalf("executor rejected a generated statement: %q: %v", sql, err)
		}
	})
}
