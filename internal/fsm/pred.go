package fsm

import (
	"fmt"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/token"
)

// predState tracks progress through one predicate atom.
type predState uint8

const (
	psCol        predState = iota // expect column | NOT | EXISTS
	psExistsFrom                  // after EXISTS: expect FROM (subquery opens)
	psOp                          // after column: expect operator | IN | LIKE
	psInFrom                      // after IN: expect FROM (subquery opens)
	psVal                         // after operator: expect literal | FROM
	psPat                         // after LIKE: expect a pattern token
	psSub                         // subquery frame is on the stack
	psAfter                       // atom complete: expect AND | OR | clause
)

// predBuilder assembles a WHERE predicate over one table scope, one atom at
// a time, left-associatively. It is shared by SELECT, UPDATE and DELETE
// frames.
type predBuilder struct {
	scope []string // tables visible to predicate columns

	where sqlast.Predicate
	atoms int

	state   predState
	conn    token.Reserved // pending RAnd / ROr connector
	negated bool
	col     schema.QualifiedColumn
	op      sqlast.CmpOp
	subKind predState // psExistsFrom / psInFrom / psVal marks which sub form
}

func newPredBuilder(scope []string) *predBuilder {
	return &predBuilder{scope: scope, state: psCol}
}

// complete reports whether the predicate can stop growing here.
func (p *predBuilder) complete() bool { return p.state == psAfter }

// valid returns the predicate-layer tokens. When the state is psAfter, the
// owning frame appends its own clause-transition tokens.
func (p *predBuilder) valid(b *Builder, closing bool) []int {
	switch p.state {
	case psCol:
		ids := b.predicableColumns(p.scope)
		if !p.negated {
			ids = append(ids, b.vocab.Reserved(token.RNot))
		}
		if b.nestingAllowed() && !closing {
			ids = append(ids, b.vocab.Reserved(token.RExists))
		}
		return ids
	case psExistsFrom, psInFrom:
		return []int{b.vocab.Reserved(token.RFrom)}
	case psOp:
		ids := b.operatorTokens(b.columnKind(p.col))
		if b.nestingAllowed() && !closing && p.inCompatible(b) {
			ids = append(ids, b.vocab.Reserved(token.RIn))
		}
		if b.cfg.AllowLike && len(b.vocab.PatternTokens(p.col)) > 0 {
			ids = append(ids, b.vocab.Reserved(token.RLike))
		}
		return ids
	case psPat:
		return b.vocab.PatternTokens(p.col)
	case psVal:
		var ids []int
		ids = append(ids, b.vocab.ValueTokens(p.col)...)
		// A scalar subquery can replace the literal for numeric columns.
		if b.nestingAllowed() && b.columnKind(p.col).Numeric() && !(closing && len(ids) > 0) {
			ids = append(ids, b.vocab.Reserved(token.RFrom))
		}
		return ids
	case psAfter:
		if p.atoms >= 1 && !closing {
			var ids []int
			// Connectors masked once the predicate budget is spent.
			if maxed := p.atoms >= maxPreds(b); !maxed {
				ids = append(ids, b.vocab.Reserved(token.RAnd), b.vocab.Reserved(token.ROr))
			}
			return ids
		}
		return nil
	default: // psSub: the subquery frame on top of the stack owns Valid.
		return nil
	}
}

func maxPreds(b *Builder) int {
	if b.cfg.MaxPredicates < 1 {
		return 1
	}
	return b.cfg.MaxPredicates
}

// inCompatible reports whether some table offers a same-kind column for an
// IN subquery's projection.
func (p *predBuilder) inCompatible(b *Builder) bool {
	kind := b.columnKind(p.col)
	for _, t := range b.sch.Tables {
		for i := range t.Columns {
			if t.Columns[i].Kind == kind {
				return true
			}
		}
	}
	return false
}

// apply consumes one predicate-layer token. It returns (handled=false) for
// tokens that belong to the owning frame (clause transitions at psAfter).
func (p *predBuilder) apply(b *Builder, tok token.Token) (handled bool, err error) {
	switch p.state {
	case psCol:
		switch {
		case tok.Type == token.TypeColumn:
			p.col = tok.QC()
			p.state = psOp
			return true, nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RNot:
			if p.negated {
				return true, fmt.Errorf("fsm: double negation")
			}
			p.negated = true
			return true, nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RExists:
			p.state = psExistsFrom
			return true, nil
		}
		return true, fmt.Errorf("fsm: unexpected %s at predicate start", tok)

	case psExistsFrom:
		if tok.Type == token.TypeReserved && tok.Reserved == token.RFrom {
			p.subKind = psExistsFrom
			p.state = psSub
			b.stack = append(b.stack, newSelectFrame(modeExists))
			return true, nil
		}
		return true, fmt.Errorf("fsm: expected FROM after EXISTS, got %s", tok)

	case psOp:
		switch {
		case tok.Type == token.TypeOperator:
			p.op = tok.Op
			p.state = psVal
			return true, nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RIn:
			p.state = psInFrom
			return true, nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RLike:
			p.state = psPat
			return true, nil
		}
		return true, fmt.Errorf("fsm: expected operator after %s, got %s", p.col, tok)

	case psPat:
		if tok.Type == token.TypePattern && tok.QC() == p.col {
			p.attach(&sqlast.Like{Col: p.col, Pattern: tok.Pattern})
			return true, nil
		}
		return true, fmt.Errorf("fsm: expected LIKE pattern for %s, got %s", p.col, tok)

	case psInFrom:
		if tok.Type == token.TypeReserved && tok.Reserved == token.RFrom {
			p.subKind = psInFrom
			p.state = psSub
			f := newSelectFrame(modeIn)
			f.outerKind = b.columnKind(p.col)
			b.stack = append(b.stack, f)
			return true, nil
		}
		return true, fmt.Errorf("fsm: expected FROM after IN, got %s", tok)

	case psVal:
		switch {
		case tok.Type == token.TypeValue:
			if tok.QC() != p.col {
				return true, fmt.Errorf("fsm: literal of %s used for column %s", tok.QC(), p.col)
			}
			p.attach(&sqlast.Compare{Col: p.col, Op: p.op, Value: tok.Value})
			return true, nil
		case tok.Type == token.TypeReserved && tok.Reserved == token.RFrom:
			p.subKind = psVal
			p.state = psSub
			b.stack = append(b.stack, newSelectFrame(modeScalar))
			return true, nil
		}
		return true, fmt.Errorf("fsm: expected literal for %s, got %s", p.col, tok)

	case psAfter:
		if tok.Type == token.TypeReserved && (tok.Reserved == token.RAnd || tok.Reserved == token.ROr) {
			if p.atoms >= maxPreds(b) {
				return true, fmt.Errorf("fsm: predicate budget exhausted")
			}
			p.conn = tok.Reserved
			p.state = psCol
			return true, nil
		}
		return false, nil // clause transition: the frame handles it

	default:
		return true, fmt.Errorf("fsm: predicate in subquery state cannot consume %s", tok)
	}
}

// childDone attaches a closed subquery as the pending atom's right side.
func (p *predBuilder) childDone(sub *sqlast.Select) error {
	if p.state != psSub {
		return fmt.Errorf("fsm: unexpected subquery completion")
	}
	switch p.subKind {
	case psExistsFrom:
		p.attach(&sqlast.Exists{Sub: sub})
	case psInFrom:
		p.attach(&sqlast.In{Col: p.col, Sub: sub})
	case psVal:
		p.attach(&sqlast.CompareSub{Col: p.col, Op: p.op, Sub: sub})
	default:
		return fmt.Errorf("fsm: unknown subquery kind")
	}
	return nil
}

// attach finishes the current atom and folds it into the predicate.
func (p *predBuilder) attach(atom sqlast.Predicate) {
	if p.negated {
		atom = &sqlast.Not{Inner: atom}
		p.negated = false
	}
	switch {
	case p.where == nil:
		p.where = atom
	case p.conn == token.ROr:
		p.where = &sqlast.Or{Left: p.where, Right: atom}
	default:
		p.where = &sqlast.And{Left: p.where, Right: atom}
	}
	p.conn = 0
	p.col = schema.QualifiedColumn{}
	p.op = sqlast.OpInvalid
	p.atoms++
	p.state = psAfter
}
