// Package netchaos injects hostile-network behavior — latency spikes,
// torn writes, byte-level truncation, mid-stream resets, and stalled
// peers — into real net.Conn traffic, deterministically from a seed.
//
// Two entry points:
//
//   - Wrap decorates a single net.Conn. Every fault the wrapper injects
//     is decided by its own seeded RNG, so a failing test replays
//     exactly with the same seed.
//   - Proxy is a TCP man-in-the-middle: dial the proxy instead of the
//     real server and every accepted connection is piped through a
//     wrapped conn with a per-connection fan-out of the base seed.
//
// The faults model the distinct ways a network hurts a framed protocol:
// latency stretches frames across time without corrupting them; partial
// writes deliver a frame in arbitrary chunks (any correct reader must
// reassemble); a reset after N bytes tears the stream mid-frame, which a
// server must treat as fatal for that one session; and a stall holds the
// connection open while moving nothing — the peer that never drains and
// only a write deadline can unmask.
package netchaos

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config selects which faults a wrapped connection injects. The zero
// value injects nothing (a transparent wrapper).
type Config struct {
	// Seed drives every fault decision. Same seed, same traffic, same
	// faults.
	Seed int64
	// LatencyProb is the per-operation chance (0..1) of sleeping a
	// uniform duration in [LatencyMin, LatencyMax] before the op.
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// PartialWriteProb is the per-Write chance of delivering the payload
	// in several smaller writes (with latency eligible between chunks)
	// instead of one — frames arrive torn across packets.
	PartialWriteProb float64
	// ResetAfterBytes abruptly closes the connection once this many
	// bytes have moved through it (reads + writes), truncating whatever
	// frame is in flight at an arbitrary byte. 0 disables.
	ResetAfterBytes int64
	// StallAfterBytes stops moving bytes once this many have passed:
	// reads and writes block until the connection is closed, while the
	// connection itself stays open — a live-but-dead peer. 0 disables.
	StallAfterBytes int64
}

// ErrReset is returned by operations on a connection the chaos layer
// reset mid-stream.
var ErrReset = errors.New("netchaos: connection reset by chaos")

// ErrStalled is returned once a stalled connection is finally closed.
var ErrStalled = errors.New("netchaos: connection stalled by chaos")

// Conn is a net.Conn with faults injected per Config. Read and Write
// may each be used by one goroutine at a time (the usual net.Conn
// discipline); fault bookkeeping is internally locked.
type Conn struct {
	net.Conn
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	moved  int64 // total bytes through the conn, both directions
	reset  bool
	closed chan struct{} // closed by Close; unblocks stalled ops
	once   sync.Once
}

// Wrap decorates c with the faults cfg selects.
func Wrap(c net.Conn, cfg Config) *Conn {
	return &Conn{
		Conn:   c,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		closed: make(chan struct{}),
	}
}

// maybeLatency sleeps a seeded-random duration with probability
// LatencyProb, abandoning the sleep if the conn closes first.
func (c *Conn) maybeLatency() {
	c.mu.Lock()
	hit := c.cfg.LatencyProb > 0 && c.rng.Float64() < c.cfg.LatencyProb
	var d time.Duration
	if hit {
		d = c.cfg.LatencyMin
		if span := c.cfg.LatencyMax - c.cfg.LatencyMin; span > 0 {
			d += time.Duration(c.rng.Int63n(int64(span)))
		}
	}
	c.mu.Unlock()
	if !hit || d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// budget reports how many of n bytes may still move, and what to do
// when the allowance runs out: ok false with reset true means tear the
// connection down, ok false with reset false means stall forever.
func (c *Conn) budget(n int) (allowed int, reset, stall bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, true, false
	}
	allowed = n
	if r := c.cfg.ResetAfterBytes; r > 0 {
		if left := r - c.moved; left <= int64(n) {
			allowed, reset = int(max64(left, 0)), true
			c.reset = true
		}
	}
	if s := c.cfg.StallAfterBytes; s > 0 && !reset {
		if left := s - c.moved; left <= int64(n) {
			allowed, stall = int(max64(left, 0)), true
		}
	}
	c.moved += int64(allowed)
	return allowed, reset, stall
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// stallUntilClosed blocks until Close, then reports the stall.
func (c *Conn) stallUntilClosed() error {
	<-c.closed
	return ErrStalled
}

func (c *Conn) Read(p []byte) (int, error) {
	c.maybeLatency()
	allowed, reset, stall := c.budget(len(p))
	if allowed > 0 {
		n, err := c.Conn.Read(p[:allowed])
		c.refund(allowed - n)
		if n > 0 || err != nil {
			if reset && err == nil {
				c.Conn.Close()
			}
			return n, err
		}
	}
	if reset {
		c.Conn.Close()
		return 0, ErrReset
	}
	if stall {
		return 0, c.stallUntilClosed()
	}
	return c.Conn.Read(p[:0]) // len(p)==0 passthrough
}

// refund returns unconsumed budget (a short Read) to the meter.
func (c *Conn) refund(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.moved -= int64(n)
	c.mu.Unlock()
}

func (c *Conn) Write(p []byte) (int, error) {
	c.maybeLatency()
	c.mu.Lock()
	torn := c.cfg.PartialWriteProb > 0 && len(p) > 1 && c.rng.Float64() < c.cfg.PartialWriteProb
	c.mu.Unlock()
	if !torn {
		return c.writeChunk(p, 0)
	}
	// Deliver the payload in 2..4 random chunks with latency eligible
	// between them: a whole-frame Write on the other side of the wrapper
	// arrives as several TCP segments.
	written := 0
	for written < len(p) {
		rest := p[written:]
		c.mu.Lock()
		n := 1 + c.rng.Intn(len(rest))
		c.mu.Unlock()
		wn, err := c.writeChunk(rest[:n], written)
		written += wn
		if err != nil {
			return written, err
		}
		if written < len(p) {
			c.maybeLatency()
		}
	}
	return written, nil
}

// writeChunk moves one chunk through the byte meter, honoring reset and
// stall. base is how many bytes of the caller's payload already went
// out (for error accounting only).
func (c *Conn) writeChunk(p []byte, base int) (int, error) {
	allowed, reset, stall := c.budget(len(p))
	var n int
	var err error
	if allowed > 0 {
		n, err = c.Conn.Write(p[:allowed])
		c.refund(allowed - n)
	}
	if err != nil {
		return n, err
	}
	if reset {
		c.Conn.Close()
		return n, ErrReset
	}
	if stall && n < len(p) {
		if err := c.stallUntilClosed(); err != nil {
			return n, err
		}
	}
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// Close closes the wrapped connection and releases stalled operations.
func (c *Conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Proxy is a chaos man-in-the-middle listener: connections accepted on
// Addr are piped to the target through a chaos-wrapped conn. Each
// accepted connection gets its own fault stream seeded by
// Config.Seed + its accept index, so multi-connection tests are still
// deterministic per connection.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	mu    sync.Mutex
	conns []net.Conn
	next  int64
	done  bool
}

// NewProxy listens on 127.0.0.1:0 and forwards to target with faults.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, target: target, ln: ln}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's dial address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.done {
			p.mu.Unlock()
			conn.Close()
			return
		}
		cfg := p.cfg
		cfg.Seed += p.next
		p.next++
		p.mu.Unlock()
		go p.pipe(conn, cfg)
	}
}

// pipe connects one accepted conn to the target through the chaos
// wrapper. The wrapper sits on the client side, so both directions of
// the client's traffic cross the fault layer and share one byte meter —
// ResetAfterBytes counts request and response bytes together, exactly
// like a real connection dying at an arbitrary point in the dialogue.
func (p *Proxy) pipe(client net.Conn, cfg Config) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	chaotic := Wrap(client, cfg)
	p.track(chaotic, upstream)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(upstream, chaotic) //nolint:errcheck // chaos errors are the point
		upstream.Close()
		chaotic.Close()
	}()
	go func() {
		defer wg.Done()
		io.Copy(chaotic, upstream) //nolint:errcheck
		upstream.Close()
		chaotic.Close()
	}()
	wg.Wait()
}

func (p *Proxy) track(cs ...net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, cs...)
	p.mu.Unlock()
}

// Close stops accepting and closes every live piped connection,
// releasing any operation the chaos layer stalled.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.done = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}
