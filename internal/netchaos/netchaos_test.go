package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		dial.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { dial.Close(); r.c.Close() })
	return dial, r.c
}

// TestTransparentWhenZero: the zero Config must not alter traffic.
func TestTransparentWhenZero(t *testing.T) {
	a, b := tcpPair(t)
	c := Wrap(a, Config{})
	msg := bytes.Repeat([]byte("abc"), 1000)
	go func() {
		c.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload altered by transparent wrapper")
	}
}

// TestPartialWritesPreserveBytes: torn writes may fragment the stream
// but must deliver every byte in order.
func TestPartialWritesPreserveBytes(t *testing.T) {
	a, b := tcpPair(t)
	c := Wrap(a, Config{Seed: 7, PartialWriteProb: 1})
	msg := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 512)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 0; off < len(msg); off += 256 {
			if _, err := c.Write(msg[off : off+256]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, msg) {
		t.Fatal("torn writes corrupted the byte stream")
	}
}

// TestResetTruncatesMidStream: the connection must die at exactly the
// configured byte, truncating the in-flight payload.
func TestResetTruncatesMidStream(t *testing.T) {
	a, b := tcpPair(t)
	c := Wrap(a, Config{Seed: 1, ResetAfterBytes: 100})
	msg := make([]byte, 400)
	n, err := c.Write(msg)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got n=%d err=%v", n, err)
	}
	if n != 100 {
		t.Fatalf("want exactly 100 bytes through before reset, got %d", n)
	}
	// The peer sees the truncated prefix then EOF.
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("peer read %d bytes, want 100", len(got))
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Fatalf("writes after reset: want ErrReset, got %v", err)
	}
}

// TestStallBlocksUntilClose: a stalled connection holds Write hostage
// until Close releases it with ErrStalled.
func TestStallBlocksUntilClose(t *testing.T) {
	a, _ := tcpPair(t)
	c := Wrap(a, Config{Seed: 1, StallAfterBytes: 10})
	if _, err := c.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(make([]byte, 10))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("want ErrStalled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stalled write not released by Close")
	}
}

// TestLatencyDeterministic: the same seed injects the same delays —
// two runs over identical traffic take comparably long, and a fault-free
// config stays fast.
func TestLatencyDeterministic(t *testing.T) {
	run := func(seed int64) time.Duration {
		a, b := tcpPair(t)
		c := Wrap(a, Config{Seed: seed, LatencyProb: 1, LatencyMin: 5 * time.Millisecond, LatencyMax: 6 * time.Millisecond})
		start := time.Now()
		go c.Write(make([]byte, 64))
		io.ReadFull(b, make([]byte, 64))
		return time.Since(start)
	}
	if d := run(3); d < 5*time.Millisecond {
		t.Fatalf("latency config injected no delay (%v)", d)
	}
}

// TestProxyForwards: a zero-fault proxy is a transparent TCP relay.
func TestProxyForwards(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()
	p, err := NewProxy(ln.Addr().String(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the middle")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("proxy corrupted the echo")
	}
}

// TestProxyReset: the proxy kills a connection mid-dialogue at the
// configured byte budget; a second connection is unaffected (fresh
// fan-out seed, fresh meter).
func TestProxyReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	p, err := NewProxy(ln.Addr().String(), Config{ResetAfterBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 64 bytes out + echo back crosses the shared meter at 64: the echo
	// truncates and the conn dies instead of completing.
	conn.Write(make([]byte, 64))
	n, _ := io.ReadAll(conn)
	if len(n) >= 64 {
		t.Fatalf("reset proxy delivered full echo (%d bytes)", len(n))
	}
}
