package estimator

import (
	"fmt"
	"math"
	"strings"

	"learnedsqlgen/internal/sqlast"
)

// PlanNode is one operator of an EXPLAIN-style estimate breakdown. Costs
// are cumulative (a node includes its children), matching how EXPLAIN
// output reads.
type PlanNode struct {
	Op       string  // scan, hash-join, filter, group, having, sort, output, dml
	Detail   string  // table / condition summary
	Rows     float64 // estimated output rows
	Cost     float64 // cumulative estimated cost
	Children []*PlanNode
}

// String renders the plan as an indented tree, root last-applied operator
// first (like EXPLAIN).
func (n *PlanNode) String() string {
	var b strings.Builder
	n.write(&b, 0)
	return b.String()
}

func (n *PlanNode) write(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s", strings.Repeat("  ", depth), n.Op)
	if n.Detail != "" {
		fmt.Fprintf(b, " %s", n.Detail)
	}
	fmt.Fprintf(b, "  (rows=%.1f cost=%.1f)\n", n.Rows, n.Cost)
	for _, c := range n.Children {
		c.write(b, depth+1)
	}
}

// Explain produces the operator-level breakdown of a statement's estimate.
// The root node's Rows/Cost equal Estimate's output for the same
// statement.
func (e *Estimator) Explain(st sqlast.Statement) (*PlanNode, error) {
	switch t := st.(type) {
	case *sqlast.Select:
		return e.explainSelect(t)
	case *sqlast.Insert, *sqlast.Update, *sqlast.Delete:
		est, err := e.Estimate(st)
		if err != nil {
			return nil, err
		}
		op := "dml"
		detail := ""
		switch d := st.(type) {
		case *sqlast.Insert:
			detail = "insert into " + d.Table
		case *sqlast.Update:
			detail = "update " + d.Table
		case *sqlast.Delete:
			detail = "delete from " + d.Table
		}
		return &PlanNode{Op: op, Detail: detail, Rows: est.Card, Cost: est.Cost}, nil
	default:
		return nil, fmt.Errorf("%w: unsupported statement %T", ErrUnestimable, st)
	}
}

func (e *Estimator) explainSelect(q *sqlast.Select) (*PlanNode, error) {
	if len(q.Tables) == 0 || len(q.Items) == 0 {
		return nil, fmt.Errorf("%w: incomplete SELECT", ErrUnestimable)
	}
	if len(q.Joins) != len(q.Tables)-1 {
		return nil, fmt.Errorf("%w: malformed join list", ErrUnestimable)
	}

	t0 := e.Stats.Table(q.Tables[0])
	if t0 == nil {
		return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, q.Tables[0])
	}
	card := float64(t0.RowCount)
	cost := card * e.Cost.CPUTuple
	cur := &PlanNode{Op: "scan", Detail: q.Tables[0], Rows: card, Cost: cost}

	for i := 1; i < len(q.Tables); i++ {
		ti := e.Stats.Table(q.Tables[i])
		if ti == nil {
			return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, q.Tables[i])
		}
		j := q.Joins[i-1]
		lNDV, err := e.columnNDV(j.Left)
		if err != nil {
			return nil, err
		}
		rNDV, err := e.columnNDV(j.Right)
		if err != nil {
			return nil, err
		}
		rightRows := float64(ti.RowCount)
		rightScan := &PlanNode{Op: "scan", Detail: q.Tables[i],
			Rows: rightRows, Cost: rightRows * e.Cost.CPUTuple}
		maxNDV := math.Max(math.Max(lNDV, rNDV), 1)
		joined := card * rightRows / maxNDV
		cost += rightRows*(e.Cost.CPUTuple+e.Cost.HashBuild) + card*e.Cost.HashProbe
		cur = &PlanNode{
			Op:       "hash-join",
			Detail:   fmt.Sprintf("%s = %s", j.Left, j.Right),
			Rows:     joined,
			Cost:     cost,
			Children: []*PlanNode{cur, rightScan},
		}
		card = joined
	}

	if q.Where != nil {
		sel, subCost, err := e.predicateSelectivity(q.Where)
		if err != nil {
			return nil, err
		}
		cost += subCost + card*float64(countLeaves(q.Where))*e.Cost.CPUOperator
		card *= sel
		cur = &PlanNode{Op: "filter",
			Detail: fmt.Sprintf("%d predicates, selectivity %.4f", countLeaves(q.Where), sel),
			Rows:   card, Cost: cost, Children: []*PlanNode{cur}}
	}

	hasAgg := q.HasAggregate() || q.Having != nil
	if len(q.GroupBy) > 0 {
		groupNDV := 1.0
		for _, g := range q.GroupBy {
			ndv, err := e.columnNDV(g)
			if err != nil {
				return nil, err
			}
			groupNDV *= math.Max(ndv, 1)
		}
		groups := math.Min(card, groupNDV)
		cost += card*e.Cost.GroupRow + groups*e.Cost.OutputRow
		card = groups
		cur = &PlanNode{Op: "group", Detail: fmt.Sprintf("%d keys", len(q.GroupBy)),
			Rows: card, Cost: cost, Children: []*PlanNode{cur}}
		if q.Having != nil {
			sel, subCost, err := e.havingSelectivity(q.Having)
			if err != nil {
				return nil, err
			}
			cost += subCost
			card *= sel
			cur = &PlanNode{Op: "having", Detail: q.Having.SQL(),
				Rows: card, Cost: cost, Children: []*PlanNode{cur}}
		}
	} else if hasAgg {
		cost += card * e.Cost.GroupRow
		card = math.Min(card, 1)
		cur = &PlanNode{Op: "group", Detail: "global aggregate",
			Rows: card, Cost: cost, Children: []*PlanNode{cur}}
		if q.Having != nil {
			sel, subCost, err := e.havingSelectivity(q.Having)
			if err != nil {
				return nil, err
			}
			cost += subCost
			card *= sel
			cur = &PlanNode{Op: "having", Detail: q.Having.SQL(),
				Rows: card, Cost: cost, Children: []*PlanNode{cur}}
		}
	}

	if len(q.OrderBy) > 0 {
		cost += card * math.Log2(card+2) * e.Cost.SortRow
		cur = &PlanNode{Op: "sort", Detail: fmt.Sprintf("%d keys", len(q.OrderBy)),
			Rows: card, Cost: cost, Children: []*PlanNode{cur}}
	}
	cost += card * e.Cost.OutputRow
	return &PlanNode{Op: "output", Rows: card, Cost: cost,
		Children: []*PlanNode{cur}}, nil
}
