// Package estimator implements the database cost estimator that provides
// the RL environment feedback: given a statement, it estimates the result
// cardinality and the execution cost from per-column statistics alone,
// exactly like a real optimizer's estimator (the paper uses the DBMS
// estimate "for the efficiency issue" rather than running every query).
//
// Cardinality estimation uses the textbook formulas: histogram/MCV
// selectivity for comparisons, the independence assumption for AND, the
// inclusion–exclusion rule for OR, and NDV containment for PK–FK joins.
// The cost model is Postgres-flavoured: per-tuple CPU cost, hash-join
// build/probe costs, per-predicate operator cost, grouping and output
// costs.
package estimator

import (
	"fmt"
	"math"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/stats"
)

// CostParams weights the operator costs of the cost model.
type CostParams struct {
	CPUTuple    float64 // per row scanned
	CPUOperator float64 // per predicate evaluation
	HashBuild   float64 // per row inserted into a join hash table
	HashProbe   float64 // per probe of a join hash table
	GroupRow    float64 // per row grouped
	SortRow     float64 // per row×log(rows) sorted
	OutputRow   float64 // per row emitted
	DMLRow      float64 // per row inserted/updated/deleted
}

// DefaultCost mirrors the relative magnitudes of PostgreSQL's defaults.
var DefaultCost = CostParams{
	CPUTuple:    1.0,
	CPUOperator: 0.25,
	HashBuild:   1.5,
	HashProbe:   1.0,
	GroupRow:    0.5,
	SortRow:     0.25,
	OutputRow:   1.0,
	DMLRow:      2.0,
}

// Estimate is the estimator's output for one statement.
type Estimate struct {
	Card float64 // estimated result cardinality (or affected rows for DML)
	Cost float64 // estimated execution cost (abstract units)
}

// Estimator estimates cardinality and cost from statistics.
type Estimator struct {
	Schema *schema.Schema
	Stats  *stats.Database
	Cost   CostParams
}

// New builds an estimator with default cost parameters.
func New(sch *schema.Schema, st *stats.Database) *Estimator {
	return &Estimator{Schema: sch, Stats: st, Cost: DefaultCost}
}

// Estimate dispatches on statement kind.
func (e *Estimator) Estimate(st sqlast.Statement) (Estimate, error) {
	switch t := st.(type) {
	case *sqlast.Select:
		return e.EstimateSelect(t)
	case *sqlast.Insert:
		return e.estimateInsert(t)
	case *sqlast.Update:
		return e.estimateUpdateDelete(t.Table, t.Where, len(t.Sets))
	case *sqlast.Delete:
		return e.estimateUpdateDelete(t.Table, t.Where, 0)
	default:
		return Estimate{}, fmt.Errorf("%w: unsupported statement %T", ErrUnestimable, st)
	}
}

// EstimateSelect estimates a SELECT query.
func (e *Estimator) EstimateSelect(q *sqlast.Select) (Estimate, error) {
	if len(q.Tables) == 0 || len(q.Items) == 0 {
		return Estimate{}, fmt.Errorf("%w: incomplete SELECT", ErrUnestimable)
	}
	if len(q.Joins) != len(q.Tables)-1 {
		return Estimate{}, fmt.Errorf("%w: malformed join list", ErrUnestimable)
	}

	var cost float64

	// Join cardinality: |T0| then NDV containment per join edge.
	t0 := e.Stats.Table(q.Tables[0])
	if t0 == nil {
		return Estimate{}, fmt.Errorf("%w: table %q", ErrUnknownObject, q.Tables[0])
	}
	card := float64(t0.RowCount)
	cost += float64(t0.RowCount) * e.Cost.CPUTuple

	for i := 1; i < len(q.Tables); i++ {
		ti := e.Stats.Table(q.Tables[i])
		if ti == nil {
			return Estimate{}, fmt.Errorf("%w: table %q", ErrUnknownObject, q.Tables[i])
		}
		j := q.Joins[i-1]
		lNDV, err := e.columnNDV(j.Left)
		if err != nil {
			return Estimate{}, err
		}
		rNDV, err := e.columnNDV(j.Right)
		if err != nil {
			return Estimate{}, err
		}
		maxNDV := math.Max(math.Max(lNDV, rNDV), 1)
		joined := card * float64(ti.RowCount) / maxNDV
		cost += float64(ti.RowCount)*(e.Cost.CPUTuple+e.Cost.HashBuild) +
			card*e.Cost.HashProbe
		card = joined
	}

	// WHERE selectivity.
	if q.Where != nil {
		sel, subCost, err := e.predicateSelectivity(q.Where)
		if err != nil {
			return Estimate{}, err
		}
		cost += subCost
		cost += card * float64(countLeaves(q.Where)) * e.Cost.CPUOperator
		card *= sel
	}

	// Grouping / aggregation.
	hasAgg := q.HasAggregate() || q.Having != nil
	if len(q.GroupBy) > 0 {
		groupNDV := 1.0
		for _, g := range q.GroupBy {
			ndv, err := e.columnNDV(g)
			if err != nil {
				return Estimate{}, err
			}
			groupNDV *= math.Max(ndv, 1)
		}
		groups := math.Min(card, groupNDV)
		cost += card*e.Cost.GroupRow + groups*e.Cost.OutputRow
		card = groups
		if q.Having != nil {
			sel, subCost, err := e.havingSelectivity(q.Having)
			if err != nil {
				return Estimate{}, err
			}
			cost += subCost
			card *= sel
		}
	} else if hasAgg {
		// Global aggregate: one output row when any input rows exist.
		cost += card * e.Cost.GroupRow
		card = math.Min(card, 1)
		if q.Having != nil {
			sel, subCost, err := e.havingSelectivity(q.Having)
			if err != nil {
				return Estimate{}, err
			}
			cost += subCost
			card *= sel
		}
	}

	if len(q.OrderBy) > 0 {
		cost += card * math.Log2(card+2) * e.Cost.SortRow
	}
	cost += card * e.Cost.OutputRow

	return Estimate{Card: card, Cost: cost}, nil
}

// columnStats resolves statistics for a qualified column.
func (e *Estimator) columnStats(q schema.QualifiedColumn) (*stats.ColumnStats, error) {
	t := e.Schema.TableByName(q.Table)
	if t == nil {
		return nil, fmt.Errorf("%w: table %q", ErrUnknownObject, q.Table)
	}
	ci := t.ColumnIndex(q.Column)
	if ci < 0 {
		return nil, fmt.Errorf("%w: column %s", ErrUnknownObject, q)
	}
	cs := e.Stats.Column(q.Table, ci)
	if cs == nil {
		return nil, fmt.Errorf("%w: no statistics for %s", ErrUnknownObject, q)
	}
	return cs, nil
}

func (e *Estimator) columnNDV(q schema.QualifiedColumn) (float64, error) {
	cs, err := e.columnStats(q)
	if err != nil {
		return 0, err
	}
	return float64(cs.NDV), nil
}

// statsOp converts the AST operator to the stats-layer operator.
func statsOp(op sqlast.CmpOp) stats.Op {
	switch op {
	case sqlast.OpLt:
		return stats.OpLt
	case sqlast.OpGt:
		return stats.OpGt
	case sqlast.OpLe:
		return stats.OpLe
	case sqlast.OpGe:
		return stats.OpGe
	case sqlast.OpEq:
		return stats.OpEq
	case sqlast.OpNe:
		return stats.OpNe
	default:
		return stats.OpInvalid
	}
}

// predicateSelectivity estimates the fraction of rows satisfying p plus the
// cost of any subqueries it contains.
func (e *Estimator) predicateSelectivity(p sqlast.Predicate) (sel, cost float64, err error) {
	switch t := p.(type) {
	case *sqlast.Compare:
		cs, err := e.columnStats(t.Col)
		if err != nil {
			return 0, 0, err
		}
		return cs.Selectivity(statsOp(t.Op), t.Value), 0, nil

	case *sqlast.CompareSub:
		subEst, err := e.EstimateSelect(t.Sub)
		if err != nil {
			return 0, 0, err
		}
		cs, err := e.columnStats(t.Col)
		if err != nil {
			return 0, 0, err
		}
		if v, ok := e.scalarOf(t.Sub, subEst); ok {
			return cs.Selectivity(statsOp(t.Op), v), subEst.Cost, nil
		}
		// Unknown scalar: textbook defaults.
		if t.Op == sqlast.OpEq {
			return 0.005, subEst.Cost, nil
		}
		return 1.0 / 3.0, subEst.Cost, nil

	case *sqlast.Like:
		cs, err := e.columnStats(t.Col)
		if err != nil {
			return 0, 0, err
		}
		return cs.SelectivityLike(t.Pattern, sqlast.MatchLike), 0, nil

	case *sqlast.In:
		subEst, err := e.EstimateSelect(t.Sub)
		if err != nil {
			return 0, 0, err
		}
		cs, err := e.columnStats(t.Col)
		if err != nil {
			return 0, 0, err
		}
		// The IN-set holds at most min(|sub|, NDV(sub column)) distinct
		// values assumed drawn from the outer column's domain.
		setSize := subEst.Card
		if len(t.Sub.Items) == 1 && t.Sub.Items[0].Agg == sqlast.AggNone {
			if ndv, err2 := e.columnNDV(t.Sub.Items[0].Col); err2 == nil {
				setSize = math.Min(setSize, ndv)
			}
		}
		s := clamp01(setSize / math.Max(float64(cs.NDV), 1))
		if t.Negate {
			s = 1 - s
		}
		return s, subEst.Cost, nil

	case *sqlast.Exists:
		subEst, err := e.EstimateSelect(t.Sub)
		if err != nil {
			return 0, 0, err
		}
		s := clamp01(subEst.Card)
		if t.Negate {
			s = 1 - s
		}
		return s, subEst.Cost, nil

	case *sqlast.And:
		ls, lc, err := e.predicateSelectivity(t.Left)
		if err != nil {
			return 0, 0, err
		}
		rs, rc, err := e.predicateSelectivity(t.Right)
		if err != nil {
			return 0, 0, err
		}
		return ls * rs, lc + rc, nil

	case *sqlast.Or:
		ls, lc, err := e.predicateSelectivity(t.Left)
		if err != nil {
			return 0, 0, err
		}
		rs, rc, err := e.predicateSelectivity(t.Right)
		if err != nil {
			return 0, 0, err
		}
		return ls + rs - ls*rs, lc + rc, nil

	case *sqlast.Not:
		s, c, err := e.predicateSelectivity(t.Inner)
		if err != nil {
			return 0, 0, err
		}
		return 1 - s, c, nil

	default:
		return 0, 0, fmt.Errorf("%w: unsupported predicate %T", ErrUnestimable, p)
	}
}

// scalarOf approximates the scalar value of an aggregate subquery from
// statistics: AVG→mean, MAX→max, MIN→min, COUNT→|sub|, SUM→mean·|sub|.
func (e *Estimator) scalarOf(sub *sqlast.Select, subEst Estimate) (sqltypes.Value, bool) {
	if len(sub.Items) != 1 || len(sub.GroupBy) > 0 {
		return sqltypes.Null, false
	}
	it := sub.Items[0]
	if it.Agg == sqlast.AggNone {
		return sqltypes.Null, false
	}
	cs, err := e.columnStats(it.Col)
	if err != nil {
		return sqltypes.Null, false
	}
	switch it.Agg {
	case sqlast.AggAvg:
		return sqltypes.NewFloat(cs.Mean), true
	case sqlast.AggMax:
		return sqltypes.NewFloat(cs.Max), true
	case sqlast.AggMin:
		return sqltypes.NewFloat(cs.Min), true
	case sqlast.AggCount:
		// The aggregate subquery collapses to one row; its COUNT reflects
		// the pre-aggregation input size, which we re-derive.
		return sqltypes.NewFloat(e.preAggCard(sub)), true
	case sqlast.AggSum:
		return sqltypes.NewFloat(cs.Mean * e.preAggCard(sub)), true
	default:
		return sqltypes.Null, false
	}
}

// preAggCard estimates the input cardinality of an aggregate query before
// aggregation collapses it.
func (e *Estimator) preAggCard(sub *sqlast.Select) float64 {
	plain := &sqlast.Select{
		Tables: sub.Tables,
		Joins:  sub.Joins,
		Items:  []sqlast.SelectItem{{Col: schema.QualifiedColumn{Table: sub.Tables[0], Column: firstColumn(e.Schema, sub.Tables[0])}}},
		Where:  sub.Where,
	}
	est, err := e.EstimateSelect(plain)
	if err != nil {
		return 0
	}
	return est.Card
}

func firstColumn(sch *schema.Schema, table string) string {
	t := sch.TableByName(table)
	if t == nil || len(t.Columns) == 0 {
		return ""
	}
	return t.Columns[0].Name
}

// havingSelectivity estimates the fraction of groups surviving HAVING.
// Group-level aggregate distributions are not tracked in statistics, so the
// textbook defaults apply; an aggregate-vs-scalar-subquery comparison also
// charges the subquery's cost.
func (e *Estimator) havingSelectivity(h *sqlast.Having) (sel, cost float64, err error) {
	if h.Sub != nil {
		subEst, err := e.EstimateSelect(h.Sub)
		if err != nil {
			return 0, 0, err
		}
		cost = subEst.Cost
	}
	if h.Op == sqlast.OpEq {
		return 0.1, cost, nil
	}
	return 1.0 / 3.0, cost, nil
}

func (e *Estimator) estimateInsert(st *sqlast.Insert) (Estimate, error) {
	if e.Stats.Table(st.Table) == nil {
		return Estimate{}, fmt.Errorf("%w: table %q", ErrUnknownObject, st.Table)
	}
	if st.Sub != nil {
		sub, err := e.EstimateSelect(st.Sub)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Card: sub.Card, Cost: sub.Cost + sub.Card*e.Cost.DMLRow}, nil
	}
	return Estimate{Card: 1, Cost: e.Cost.DMLRow}, nil
}

func (e *Estimator) estimateUpdateDelete(table string, where sqlast.Predicate, nSets int) (Estimate, error) {
	ts := e.Stats.Table(table)
	if ts == nil {
		return Estimate{}, fmt.Errorf("%w: table %q", ErrUnknownObject, table)
	}
	rows := float64(ts.RowCount)
	cost := rows * e.Cost.CPUTuple
	card := rows
	if where != nil {
		sel, subCost, err := e.predicateSelectivity(where)
		if err != nil {
			return Estimate{}, err
		}
		cost += subCost + rows*float64(countLeaves(where))*e.Cost.CPUOperator
		card = rows * sel
	}
	cost += card * e.Cost.DMLRow * float64(1+nSets)
	return Estimate{Card: card, Cost: cost}, nil
}

// countLeaves counts leaf predicates for per-row evaluation cost.
func countLeaves(p sqlast.Predicate) int {
	n := 0
	sqlast.WalkPredicates(p, func(q sqlast.Predicate) {
		switch q.(type) {
		case *sqlast.Compare, *sqlast.CompareSub, *sqlast.In, *sqlast.Exists, *sqlast.Like:
			n++
		}
	})
	return n
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
