package estimator

import (
	"context"
	"errors"

	"learnedsqlgen/internal/sqlast"
)

// Backend is the seam the RL environment estimates through. *Estimator is
// the raw implementation; decorators compose around it — resilience
// (retry + circuit breaker), fault injection in chaos tests, and the
// memoizing Cached wrapper, which is always outermost so that retries
// happen only on real misses.
type Backend interface {
	EstimateContext(ctx context.Context, st sqlast.Statement) (Estimate, error)
}

// uncacheable reports whether err describes this particular call rather
// than the statement: cancellations and transient infrastructure faults
// (anything carrying Transient() == true, e.g. injected or retried-out
// backend errors). Caching one would poison every future lookup of the
// key with a failure the next call might not see.
func uncacheable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
