package estimator

import (
	"testing"

	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// The estimator is the RL environment's feedback signal: every rollout
// step estimates a partial query, so these three shapes — a filtered
// scan, a PK–FK join, and the memoized repeat — bound the reward cost a
// single episode step pays. `make bench` runs them alongside the nn/rl
// suites so estimator regressions surface in the same sweep.

// BenchmarkEstimateScan measures a single-table range predicate — the
// most common partial-query estimate during a rollout.
func BenchmarkEstimateScan(b *testing.B) {
	_, est := ordersDB(b)
	q := amountQuery(250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateJoin measures a PK–FK join with a categorical filter.
func BenchmarkEstimateJoin(b *testing.B) {
	_, est := ordersDB(b)
	q := &sqlast.Select{
		Tables: []string{"Orders", "Customer"},
		Joins:  []sqlast.JoinCond{{Left: col("Orders", "cust"), Right: col("Customer", "id")}},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where: &sqlast.Compare{Col: col("Customer", "region"), Op: sqlast.OpEq,
			Value: sqltypes.NewString("north")},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateCachedHit measures the memoized path — what a repeated
// partial query costs once the estimator cache has absorbed it.
func BenchmarkEstimateCachedHit(b *testing.B) {
	_, est := ordersDB(b)
	c := NewCached(est, 64)
	q := amountQuery(250)
	if _, err := c.Estimate(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Estimate(q); err != nil {
			b.Fatal(err)
		}
	}
}
