package estimator

import (
	"container/list"
	"context"
	"sync"

	"learnedsqlgen/internal/sqlast"
)

// DefaultCacheSize bounds the memoizing estimator cache. RL training
// re-estimates the same executable prefixes thousands of times across
// episodes (every episode passes through the same popular FROM/WHERE
// stems), so even a modest cache absorbs most estimator work.
const DefaultCacheSize = 1 << 16

// CacheStats is a snapshot of a Cached wrapper's counters.
type CacheStats struct {
	Hits      uint64 // lookups answered from the cache
	Misses    uint64 // lookups that ran the underlying estimator
	Evictions uint64 // entries dropped by the LRU bound
	Size      int    // current entry count
	Capacity  int    // maximum entry count
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cached memoizes a Backend behind a bounded, concurrency-safe LRU keyed
// on the canonical SQL text of the statement. Estimation is a pure
// function of the statement (statistics are immutable once collected), so
// both successful estimates and estimation refusals are cached; transient
// infrastructure errors and cancellations are not (see uncacheable).
//
// Concurrent lookups of a missing key may each run the underlying
// estimator; the first result wins the cache slot and the duplicates are
// discarded. That wasted work is bounded by the worker count and avoids
// holding the lock across estimation.
type Cached struct {
	inner Backend

	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	est Estimate
	err error
}

// NewCached wraps inner with an LRU of the given capacity (entries);
// capacity <= 0 selects DefaultCacheSize.
func NewCached(inner Backend, capacity int) *Cached {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cached{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// Inner returns the wrapped backend.
func (c *Cached) Inner() Backend { return c.inner }

// Estimate returns the memoized estimate for st, running the underlying
// estimator on a miss.
func (c *Cached) Estimate(st sqlast.Statement) (Estimate, error) {
	return c.EstimateContext(context.Background(), st)
}

// Stats snapshots the counters.
func (c *Cached) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.order.Len(),
		Capacity:  c.capacity,
	}
}

// Reset drops all entries and zeroes the counters.
func (c *Cached) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element, c.capacity)
	c.order = list.New()
	c.hits, c.misses, c.evictions = 0, 0, 0
}
