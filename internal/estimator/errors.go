package estimator

import (
	"context"
	"errors"
	"math"

	"learnedsqlgen/internal/sqlast"
)

// Sentinel errors classifying why an estimate was refused. Every error
// returned by Estimate wraps exactly one of them, so callers can branch
// with errors.Is instead of string matching. During RL training these are
// not failures: an unestimable prefix is the environment's normal negative
// feedback, and the memoizing cache stores them like any other result.
var (
	// ErrUnestimable marks statements the estimator cannot price:
	// structurally incomplete queries (no tables, dangling joins) and
	// statement or predicate forms outside the supported grammar.
	ErrUnestimable = errors.New("estimator: statement not estimable")
	// ErrUnknownObject marks references to tables or columns absent from
	// the schema or statistics — the statement is well-formed but names
	// objects the estimator has never seen.
	ErrUnknownObject = errors.New("estimator: unknown object")
)

// EstimateContext is Estimate with cancellation: a done ctx short-circuits
// before any statistics work and returns its error unwrapped (callers
// distinguish cancellation from estimation refusals with errors.Is against
// context.Canceled / context.DeadlineExceeded). Estimation itself is pure
// in-memory arithmetic, so one entry check bounds the latency added after
// cancel to a single statement's estimate.
func (e *Estimator) EstimateContext(ctx context.Context, st sqlast.Statement) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	return e.Estimate(st)
}

// EstimateContext is Cached.Estimate with cancellation. Hits are served
// regardless of ctx (the lookup is a mutex-guarded map read). On a miss a
// done ctx returns its error without running the estimator — and, unlike
// estimation refusals, cancellations and transient backend faults are
// never inserted into the cache: they describe this call, not the
// statement, and caching one would poison every future lookup of the key.
func (c *Cached) EstimateContext(ctx context.Context, st sqlast.Statement) (Estimate, error) {
	key := st.SQL()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		return e.est, e.err
	}
	c.misses++
	c.mu.Unlock()

	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	est, err := c.inner.EstimateContext(ctx, st)
	if err != nil && uncacheable(err) {
		return est, err
	}
	if err == nil && (math.IsNaN(est.Card) || math.IsNaN(est.Cost)) {
		// A NaN output describes a corrupted backend call, not the
		// statement — estimation arithmetic never produces NaN from the
		// immutable statistics. Memoizing it would poison the key forever.
		return est, err
	}

	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		el := c.order.PushFront(&cacheEntry{key: key, est: est, err: err})
		c.entries[key] = el
		if c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return est, err
}
