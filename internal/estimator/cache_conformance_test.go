package estimator

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/token"
)

// walkStatements generates n distinct statements via uniform FSM walks —
// the same query population the training loop sends through the cache.
func walkStatements(t *testing.T, n int) ([]sqlast.Statement, *Estimator) {
	t.Helper()
	db, err := datagen.Generate(datagen.NameXueTang, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	vocab := token.Build(db, 20, 7)
	est := New(db.Schema, stats.Collect(db))
	cfg := fsm.DefaultConfig()
	cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
	rng := rand.New(rand.NewSource(17))
	seen := map[string]bool{}
	var out []sqlast.Statement
	for len(out) < n {
		b := fsm.NewBuilder(db.Schema, vocab, cfg)
		for !b.Done() {
			valid := b.Valid()
			if err := b.Apply(valid[rng.Intn(len(valid))]); err != nil {
				t.Fatal(err)
			}
		}
		st, err := b.Statement()
		if err != nil {
			t.Fatal(err)
		}
		if sql := st.SQL(); !seen[sql] {
			seen[sql] = true
			out = append(out, st)
		}
	}
	return out, est
}

// errText normalizes an error for equality comparison.
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestCachedAgreesWithUncachedOverGeneratedQueries is the stale-key
// conformance check: over a realistic generated workload, and with a
// capacity small enough to force constant eviction and recomputation, the
// cached estimator must be observationally identical to the bare one —
// same estimates, same errors, query by query.
func TestCachedAgreesWithUncachedOverGeneratedQueries(t *testing.T) {
	stmts, est := walkStatements(t, 300)
	c := NewCached(est, 32) // ~10× smaller than the workload: evictions guaranteed
	for round := 0; round < 3; round++ {
		for i, st := range stmts {
			got, gotErr := c.Estimate(st)
			want, wantErr := est.Estimate(st)
			if got != want || errText(gotErr) != errText(wantErr) {
				t.Fatalf("round %d, query %d (%s):\ncached:   %+v, %v\nuncached: %+v, %v",
					round, i, st.SQL(), got, gotErr, want, wantErr)
			}
		}
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Fatalf("capacity 32 over %d queries evicted nothing: %+v", len(stmts), s)
	}
}

// TestCachedAgreesWithUncachedConcurrently hammers one shared cache from
// every core, each goroutine walking its own permutation of the workload
// and comparing against the bare estimator on every call. Run under
// -race (the Makefile race target covers this package) it doubles as the
// cache's data-race check against the oracle-style access pattern.
func TestCachedAgreesWithUncachedConcurrently(t *testing.T) {
	stmts, est := walkStatements(t, 120)
	c := NewCached(est, 48)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for round := 0; round < 4; round++ {
				for _, i := range rng.Perm(len(stmts)) {
					st := stmts[i]
					got, gotErr := c.Estimate(st)
					want, wantErr := est.Estimate(st)
					if got != want || errText(gotErr) != errText(wantErr) {
						select {
						case errs <- st.SQL():
						default:
						}
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case sql := <-errs:
		t.Fatalf("cached and uncached estimates diverged under concurrency for %q", sql)
	default:
	}
}
