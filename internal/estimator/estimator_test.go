package estimator

import (
	"math"
	"math/rand"
	"testing"

	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
)

func col(t, c string) schema.QualifiedColumn { return schema.QualifiedColumn{Table: t, Column: c} }

// ordersDB builds Customer(1..200) ← Orders(2000 rows, Zipf-ish customer
// skew, amount uniform in [0,1000), status in {new,paid,shipped}).
func ordersDB(t testing.TB) (*storage.Database, *Estimator) {
	t.Helper()
	s, err := schema.NewBuilder("shop").
		Table("Customer", "C",
			schema.Column{Name: "id", Kind: sqltypes.KindInt, PrimaryKey: true},
			schema.Column{Name: "region", Kind: sqltypes.KindString, Categorical: true},
		).
		Table("Orders", "O",
			schema.Column{Name: "id", Kind: sqltypes.KindInt, PrimaryKey: true},
			schema.Column{Name: "cust", Kind: sqltypes.KindInt},
			schema.Column{Name: "amount", Kind: sqltypes.KindFloat},
			schema.Column{Name: "status", Kind: sqltypes.KindString, Categorical: true},
		).
		ForeignKey("Orders", "cust", "Customer", "id").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	rng := rand.New(rand.NewSource(11))
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 200; i++ {
		if err := db.Table("Customer").Append(storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(regions[rng.Intn(len(regions))]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	statuses := []string{"new", "paid", "shipped"}
	for i := 0; i < 2000; i++ {
		cust := int64(rng.Intn(200))
		if rng.Intn(4) == 0 {
			cust = int64(rng.Intn(10)) // skew towards the first customers
		}
		if err := db.Table("Orders").Append(storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(cust),
			sqltypes.NewFloat(float64(rng.Intn(100000)) / 100),
			sqltypes.NewString(statuses[rng.Intn(len(statuses))]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db, New(s, stats.Collect(db))
}

// qError returns max(est/true, true/est) with a +1 smoothing for zeros.
func qError(est, truth float64) float64 {
	a, b := est+1, truth+1
	if a > b {
		return a / b
	}
	return b / a
}

func checkCard(t *testing.T, db *storage.Database, e *Estimator, q *sqlast.Select, maxQErr float64) {
	t.Helper()
	est, err := e.EstimateSelect(q)
	if err != nil {
		t.Fatalf("estimate(%s): %v", q.SQL(), err)
	}
	res, err := executor.New(db).Select(q)
	if err != nil {
		t.Fatalf("execute(%s): %v", q.SQL(), err)
	}
	if qe := qError(est.Card, float64(res.Cardinality)); qe > maxQErr {
		t.Errorf("%s:\n  est %.1f vs true %d (q-error %.2f > %.2f)",
			q.SQL(), est.Card, res.Cardinality, qe, maxQErr)
	}
	if est.Cost <= 0 {
		t.Errorf("%s: cost %v must be positive", q.SQL(), est.Cost)
	}
}

func TestBaseScanCardinalityExact(t *testing.T) {
	db, e := ordersDB(t)
	q := &sqlast.Select{Tables: []string{"Orders"},
		Items: []sqlast.SelectItem{{Col: col("Orders", "id")}}}
	checkCard(t, db, e, q, 1.01)
}

func TestRangePredicateCardinality(t *testing.T) {
	db, e := ordersDB(t)
	for _, v := range []float64{10, 100, 500, 900} {
		q := &sqlast.Select{
			Tables: []string{"Orders"},
			Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
			Where: &sqlast.Compare{Col: col("Orders", "amount"), Op: sqlast.OpLt,
				Value: sqltypes.NewFloat(v)},
		}
		checkCard(t, db, e, q, 1.5)
	}
}

func TestEqualityOnCategorical(t *testing.T) {
	db, e := ordersDB(t)
	q := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where: &sqlast.Compare{Col: col("Orders", "status"), Op: sqlast.OpEq,
			Value: sqltypes.NewString("paid")},
	}
	checkCard(t, db, e, q, 1.2)
}

func TestConjunctionDisjunctionNegation(t *testing.T) {
	db, e := ordersDB(t)
	amount := func(op sqlast.CmpOp, v float64) sqlast.Predicate {
		return &sqlast.Compare{Col: col("Orders", "amount"), Op: op, Value: sqltypes.NewFloat(v)}
	}
	status := &sqlast.Compare{Col: col("Orders", "status"), Op: sqlast.OpEq,
		Value: sqltypes.NewString("new")}
	q := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where:  &sqlast.And{Left: amount(sqlast.OpGt, 250), Right: status},
	}
	checkCard(t, db, e, q, 1.6)

	q.Where = &sqlast.Or{Left: amount(sqlast.OpLt, 100), Right: status}
	checkCard(t, db, e, q, 1.6)

	q.Where = &sqlast.Not{Inner: status}
	checkCard(t, db, e, q, 1.3)
}

func TestJoinCardinality(t *testing.T) {
	db, e := ordersDB(t)
	q := &sqlast.Select{
		Tables: []string{"Orders", "Customer"},
		Joins:  []sqlast.JoinCond{{Left: col("Orders", "cust"), Right: col("Customer", "id")}},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
	}
	// PK–FK join preserves the fact-table cardinality exactly.
	checkCard(t, db, e, q, 1.1)

	q.Where = &sqlast.Compare{Col: col("Customer", "region"), Op: sqlast.OpEq,
		Value: sqltypes.NewString("north")}
	checkCard(t, db, e, q, 2.0)
}

func TestGroupByEstimate(t *testing.T) {
	db, e := ordersDB(t)
	q := &sqlast.Select{
		Tables:  []string{"Orders"},
		Items:   []sqlast.SelectItem{{Col: col("Orders", "status")}, {Agg: sqlast.AggCount, Col: col("Orders", "id")}},
		GroupBy: []schema.QualifiedColumn{col("Orders", "status")},
	}
	checkCard(t, db, e, q, 1.5)
}

func TestGlobalAggregateEstimatesOneRow(t *testing.T) {
	_, e := ordersDB(t)
	q := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Agg: sqlast.AggAvg, Col: col("Orders", "amount")}},
	}
	est, err := e.EstimateSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Card-1) > 0.01 {
		t.Errorf("global aggregate card = %v, want 1", est.Card)
	}
}

func TestScalarSubqueryUsesStatsMean(t *testing.T) {
	db, e := ordersDB(t)
	avg := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Agg: sqlast.AggAvg, Col: col("Orders", "amount")}},
	}
	q := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where:  &sqlast.CompareSub{Col: col("Orders", "amount"), Op: sqlast.OpGt, Sub: avg},
	}
	// ≈ half the rows exceed the mean of a uniform distribution.
	checkCard(t, db, e, q, 1.4)
}

func TestInSubquerySelectivity(t *testing.T) {
	db, e := ordersDB(t)
	inner := &sqlast.Select{
		Tables: []string{"Customer"},
		Items:  []sqlast.SelectItem{{Col: col("Customer", "id")}},
		Where: &sqlast.Compare{Col: col("Customer", "region"), Op: sqlast.OpEq,
			Value: sqltypes.NewString("east")},
	}
	q := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where:  &sqlast.In{Col: col("Orders", "cust"), Sub: inner},
	}
	checkCard(t, db, e, q, 2.0)
	q.Where = &sqlast.In{Col: col("Orders", "cust"), Sub: inner, Negate: true}
	checkCard(t, db, e, q, 2.0)
}

func TestExistsSelectivity(t *testing.T) {
	db, e := ordersDB(t)
	never := &sqlast.Select{
		Tables: []string{"Customer"},
		Items:  []sqlast.SelectItem{{Col: col("Customer", "id")}},
		Where: &sqlast.Compare{Col: col("Customer", "id"), Op: sqlast.OpLt,
			Value: sqltypes.NewInt(-5)},
	}
	q := &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where:  &sqlast.Exists{Sub: never},
	}
	checkCard(t, db, e, q, 1.2)
	q.Where = &sqlast.Exists{Sub: never, Negate: true}
	checkCard(t, db, e, q, 1.2)
}

func TestDMLEstimates(t *testing.T) {
	db, e := ordersDB(t)
	// DELETE with predicate.
	del := &sqlast.Delete{
		Table: "Orders",
		Where: &sqlast.Compare{Col: col("Orders", "amount"), Op: sqlast.OpLt,
			Value: sqltypes.NewFloat(100)},
	}
	est, err := e.Estimate(del)
	if err != nil {
		t.Fatal(err)
	}
	res, err := executor.New(db.Clone()).Delete(del)
	if err != nil {
		t.Fatal(err)
	}
	if qe := qError(est.Card, float64(res.Cardinality)); qe > 1.5 {
		t.Errorf("delete card est %.1f vs true %d", est.Card, res.Cardinality)
	}

	// UPDATE without predicate affects everything.
	up := &sqlast.Update{Table: "Orders",
		Sets: []sqlast.SetClause{{Col: "status", Value: sqltypes.NewString("x")}}}
	est, err = e.Estimate(up)
	if err != nil {
		t.Fatal(err)
	}
	if est.Card != 2000 {
		t.Errorf("update-all card = %v, want 2000", est.Card)
	}

	// Single-row INSERT.
	ins := &sqlast.Insert{Table: "Customer",
		Values: []sqltypes.Value{sqltypes.NewInt(999), sqltypes.NewString("north")}}
	est, err = e.Estimate(ins)
	if err != nil || est.Card != 1 {
		t.Errorf("insert est = %+v, %v", est, err)
	}

	// INSERT ... SELECT.
	insSel := &sqlast.Insert{Table: "Customer", Sub: &sqlast.Select{
		Tables: []string{"Customer"},
		Items: []sqlast.SelectItem{
			{Col: col("Customer", "id")}, {Col: col("Customer", "region")}},
	}}
	est, err = e.Estimate(insSel)
	if err != nil || math.Abs(est.Card-200) > 1 {
		t.Errorf("insert-select est = %+v, %v", est, err)
	}
}

func TestCostGrowsWithJoins(t *testing.T) {
	_, e := ordersDB(t)
	single := &sqlast.Select{Tables: []string{"Orders"},
		Items: []sqlast.SelectItem{{Col: col("Orders", "id")}}}
	joined := &sqlast.Select{
		Tables: []string{"Orders", "Customer"},
		Joins:  []sqlast.JoinCond{{Left: col("Orders", "cust"), Right: col("Customer", "id")}},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
	}
	e1, err := e.EstimateSelect(single)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := e.EstimateSelect(joined)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Cost <= e1.Cost {
		t.Errorf("join cost %v must exceed scan cost %v", e2.Cost, e1.Cost)
	}
}

func TestEstimatorErrors(t *testing.T) {
	_, e := ordersDB(t)
	bad := []sqlast.Statement{
		&sqlast.Select{},
		&sqlast.Select{Tables: []string{"Nope"}, Items: []sqlast.SelectItem{{Col: col("Nope", "x")}}},
		&sqlast.Select{Tables: []string{"Orders", "Customer"},
			Items: []sqlast.SelectItem{{Col: col("Orders", "id")}}},
		&sqlast.Select{Tables: []string{"Orders"},
			Items: []sqlast.SelectItem{{Col: col("Orders", "id")}},
			Where: &sqlast.Compare{Col: col("Orders", "nope"), Op: sqlast.OpEq, Value: sqltypes.NewInt(1)}},
		&sqlast.Insert{Table: "Nope"},
		&sqlast.Delete{Table: "Nope"},
		&sqlast.Update{Table: "Nope"},
	}
	for _, st := range bad {
		if _, err := e.Estimate(st); err == nil {
			t.Errorf("Estimate(%s) must fail", st.SQL())
		}
	}
}

// TestRandomPredicateQErrors sweeps many random single-predicate queries
// and requires the median q-error to stay small — the estimator is the RL
// reward signal, so systematic bias would distort training.
func TestRandomPredicateQErrors(t *testing.T) {
	db, e := ordersDB(t)
	rng := rand.New(rand.NewSource(3))
	var errs []float64
	ops := []sqlast.CmpOp{sqlast.OpLt, sqlast.OpGt, sqlast.OpLe, sqlast.OpGe}
	for i := 0; i < 100; i++ {
		q := &sqlast.Select{
			Tables: []string{"Orders"},
			Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
			Where: &sqlast.Compare{
				Col:   col("Orders", "amount"),
				Op:    ops[rng.Intn(len(ops))],
				Value: sqltypes.NewFloat(float64(rng.Intn(100000)) / 100),
			},
		}
		est, err := e.EstimateSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := executor.New(db).Select(q)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, qError(est.Card, float64(res.Cardinality)))
	}
	worst, sum := 0.0, 0.0
	for _, qe := range errs {
		sum += qe
		if qe > worst {
			worst = qe
		}
	}
	if mean := sum / float64(len(errs)); mean > 1.25 {
		t.Errorf("mean q-error %.3f too high", mean)
	}
	if worst > 3 {
		t.Errorf("worst q-error %.3f too high", worst)
	}
}

func TestLikeSelectivityVsExecutor(t *testing.T) {
	db, e := ordersDB(t)
	for _, pat := range []string{"%cust%", "%ba%", "%nosuchsubstring%"} {
		q := &sqlast.Select{
			Tables: []string{"Customer"},
			Items:  []sqlast.SelectItem{{Col: col("Customer", "id")}},
			Where:  &sqlast.Like{Col: col("Customer", "region"), Pattern: pat},
		}
		// region is categorical with 4 values; also try the name-like
		// column on Orders' status.
		checkCard(t, db, e, q, 2.5)
	}
}

// TestExplainMatchesEstimate verifies the plan root agrees with Estimate
// on many generated statements.
func TestExplainMatchesEstimate(t *testing.T) {
	db, e := ordersDB(t)
	_ = db
	queries := []*sqlast.Select{
		{Tables: []string{"Orders"}, Items: []sqlast.SelectItem{{Col: col("Orders", "id")}}},
		{Tables: []string{"Orders"},
			Items: []sqlast.SelectItem{{Col: col("Orders", "id")}},
			Where: &sqlast.Compare{Col: col("Orders", "amount"), Op: sqlast.OpLt, Value: sqltypes.NewFloat(300)}},
		{Tables: []string{"Orders", "Customer"},
			Joins:   []sqlast.JoinCond{{Left: col("Orders", "cust"), Right: col("Customer", "id")}},
			Items:   []sqlast.SelectItem{{Col: col("Orders", "id")}},
			Where:   &sqlast.Compare{Col: col("Customer", "region"), Op: sqlast.OpEq, Value: sqltypes.NewString("west")},
			OrderBy: []schema.QualifiedColumn{col("Orders", "id")}},
		{Tables: []string{"Orders"},
			Items:   []sqlast.SelectItem{{Col: col("Orders", "status")}, {Agg: sqlast.AggCount, Col: col("Orders", "id")}},
			GroupBy: []schema.QualifiedColumn{col("Orders", "status")},
			Having:  &sqlast.Having{Agg: sqlast.AggCount, Col: col("Orders", "id"), Op: sqlast.OpGt, Value: sqltypes.NewInt(10)}},
		{Tables: []string{"Orders"},
			Items: []sqlast.SelectItem{{Agg: sqlast.AggAvg, Col: col("Orders", "amount")}}},
	}
	for _, q := range queries {
		plan, err := e.Explain(q)
		if err != nil {
			t.Fatalf("Explain(%s): %v", q.SQL(), err)
		}
		est, err := e.EstimateSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plan.Rows-est.Card) > 1e-9*(1+est.Card) {
			t.Errorf("%s: plan rows %.3f != estimate %.3f", q.SQL(), plan.Rows, est.Card)
		}
		if math.Abs(plan.Cost-est.Cost) > 1e-9*(1+est.Cost) {
			t.Errorf("%s: plan cost %.3f != estimate %.3f", q.SQL(), plan.Cost, est.Cost)
		}
		if plan.String() == "" {
			t.Error("empty plan rendering")
		}
	}
}

func TestExplainDMLAndErrors(t *testing.T) {
	_, e := ordersDB(t)
	for _, st := range []sqlast.Statement{
		&sqlast.Insert{Table: "Customer", Values: []sqltypes.Value{sqltypes.NewInt(999), sqltypes.NewString("x")}},
		&sqlast.Update{Table: "Orders", Sets: []sqlast.SetClause{{Col: "status", Value: sqltypes.NewString("x")}}},
		&sqlast.Delete{Table: "Orders"},
	} {
		plan, err := e.Explain(st)
		if err != nil || plan.Op != "dml" {
			t.Errorf("Explain(%T) = %v, %v", st, plan, err)
		}
		est, _ := e.Estimate(st)
		if plan.Cost != est.Cost || plan.Rows != est.Card {
			t.Errorf("%T: plan does not match estimate", st)
		}
	}
	if _, err := e.Explain(&sqlast.Select{}); err == nil {
		t.Error("incomplete select must fail")
	}
	if _, err := e.Explain(&sqlast.Select{Tables: []string{"Nope"},
		Items: []sqlast.SelectItem{{Col: col("Nope", "x")}}}); err == nil {
		t.Error("unknown table must fail")
	}
}
