package estimator

import (
	"fmt"
	"sync"
	"testing"

	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// amountQuery builds `SELECT O.id FROM Orders WHERE O.amount < v` against
// the ordersDB schema; distinct v gives distinct cache keys.
func amountQuery(v float64) *sqlast.Select {
	return &sqlast.Select{
		Tables: []string{"Orders"},
		Items:  []sqlast.SelectItem{{Col: col("Orders", "id")}},
		Where: &sqlast.Compare{
			Col: col("Orders", "amount"), Op: sqlast.OpLt, Value: sqltypes.NewFloat(v),
		},
	}
}

func TestCachedHitMissCounters(t *testing.T) {
	_, est := ordersDB(t)
	c := NewCached(est, 8)

	q := amountQuery(100)
	want, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cached estimate %+v != direct %+v", got, want)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/1", s.Hits, s.Misses)
	}
	if s.Size != 1 || s.Capacity != 8 {
		t.Errorf("size/capacity = %d/%d, want 1/8", s.Size, s.Capacity)
	}
	if hr := s.HitRate(); hr != 2.0/3.0 {
		t.Errorf("hit rate = %v, want 2/3", hr)
	}
}

func TestCachedEviction(t *testing.T) {
	_, est := ordersDB(t)
	c := NewCached(est, 2)

	a, b, d := amountQuery(1), amountQuery(2), amountQuery(3)
	for _, q := range []*sqlast.Select{a, b, d} { // d evicts a (LRU)
		if _, err := c.Estimate(q); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("evictions/size = %d/%d, want 1/2", s.Evictions, s.Size)
	}
	// b and d are resident; a must re-run the estimator.
	c.Estimate(b)
	c.Estimate(d)
	if s = c.Stats(); s.Hits != 2 {
		t.Errorf("resident entries missed: %+v", s)
	}
	c.Estimate(a)
	if s = c.Stats(); s.Misses != 4 {
		t.Errorf("evicted entry hit: %+v", s)
	}

	// Recency, not insertion order: touch b, insert a new key, then b
	// must still be resident while d (now least recent) is gone.
	c.Estimate(b)
	c.Estimate(amountQuery(4))
	before := c.Stats().Hits
	c.Estimate(b)
	if c.Stats().Hits != before+1 {
		t.Error("recently used entry was evicted")
	}
}

func TestCachedErrorsAreCached(t *testing.T) {
	_, est := ordersDB(t)
	c := NewCached(est, 4)
	bad := &sqlast.Select{Tables: []string{"Orders"}} // no items: estimation error
	if _, err := c.Estimate(bad); err == nil {
		t.Fatal("expected estimation error")
	}
	if _, err := c.Estimate(bad); err == nil {
		t.Fatal("cached error lost")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("error caching counters: %+v", s)
	}
}

func TestCachedReset(t *testing.T) {
	_, est := ordersDB(t)
	c := NewCached(est, 4)
	c.Estimate(amountQuery(1))
	c.Estimate(amountQuery(1))
	c.Reset()
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Size != 0 {
		t.Errorf("reset left state: %+v", s)
	}
}

// TestCachedConcurrentAccess hammers one small cache from many goroutines
// (run under -race); every returned estimate must equal the direct one.
func TestCachedConcurrentAccess(t *testing.T) {
	_, est := ordersDB(t)
	c := NewCached(est, 16) // smaller than the key space: eviction under contention

	want := make([]Estimate, 32)
	for i := range want {
		e, err := est.Estimate(amountQuery(float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = e
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % len(want)
				got, err := c.Estimate(amountQuery(float64(k)))
				if err != nil {
					errCh <- err
					return
				}
				if got != want[k] {
					errCh <- fmt.Errorf("key %d: got %+v want %+v", k, got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	s := c.Stats()
	if s.Hits+s.Misses != 8*200 {
		t.Errorf("lookup count %d, want %d", s.Hits+s.Misses, 8*200)
	}
	if s.Size > 16 {
		t.Errorf("cache overflowed its bound: %+v", s)
	}
}
