package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/sqlast"
)

// flaky is a transient-marked test error.
type flaky struct{}

func (flaky) Error() string   { return "flaky backend" }
func (flaky) Transient() bool { return true }

// fakeBackend scripts estimator responses by call number (1-based).
type fakeBackend struct {
	calls int
	fn    func(call int) (estimator.Estimate, error)
}

func (f *fakeBackend) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	f.calls++
	return f.fn(f.calls)
}

// fastPolicy keeps test wall-clock negligible.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts:     4,
		BaseDelay:       time.Microsecond,
		MaxDelay:        10 * time.Microsecond,
		BreakerCooldown: 20 * time.Millisecond,
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{context.Canceled, ClassAbort},
		{context.DeadlineExceeded, ClassAbort},
		{fmt.Errorf("measure: %w", context.Canceled), ClassAbort},
		{flaky{}, ClassTransient},
		{fmt.Errorf("wrapped: %w", flaky{}), ClassTransient},
		{ErrOpen, ClassTransient},
		{estimator.ErrUnestimable, ClassPermanent},
		{estimator.ErrUnknownObject, ClassPermanent},
		{executor.ErrUnsupported, ClassPermanent},
		{errors.New("some logic error"), ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryHealsTransientFaults(t *testing.T) {
	want := estimator.Estimate{Card: 42}
	fb := &fakeBackend{fn: func(call int) (estimator.Estimate, error) {
		if call <= 2 {
			return estimator.Estimate{}, flaky{}
		}
		return want, nil
	}}
	met := &Metrics{}
	est := NewEstimator(fb, fastPolicy(), met)
	got, err := est.EstimateContext(context.Background(), nil)
	if err != nil || got != want {
		t.Fatalf("EstimateContext = %+v, %v; want %+v, nil", got, err, want)
	}
	if fb.calls != 3 {
		t.Fatalf("backend called %d times, want 3", fb.calls)
	}
	if r := met.Retries.Load(); r != 2 {
		t.Fatalf("Retries = %d, want 2", r)
	}
	if x := met.Exhausted.Load(); x != 0 {
		t.Fatalf("Exhausted = %d, want 0", x)
	}
}

func TestPermanentRefusalFailsFast(t *testing.T) {
	fb := &fakeBackend{fn: func(int) (estimator.Estimate, error) {
		return estimator.Estimate{}, fmt.Errorf("prefix: %w", estimator.ErrUnestimable)
	}}
	met := &Metrics{}
	est := NewEstimator(fb, fastPolicy(), met)
	_, err := est.EstimateContext(context.Background(), nil)
	if !errors.Is(err, estimator.ErrUnestimable) {
		t.Fatalf("err = %v, want ErrUnestimable", err)
	}
	if fb.calls != 1 {
		t.Fatalf("permanent error retried: %d calls", fb.calls)
	}
	if r := met.Retries.Load(); r != 0 {
		t.Fatalf("Retries = %d, want 0", r)
	}
}

func TestExhaustionReturnsLastError(t *testing.T) {
	fb := &fakeBackend{fn: func(int) (estimator.Estimate, error) {
		return estimator.Estimate{}, flaky{}
	}}
	met := &Metrics{}
	pol := fastPolicy()
	est := NewEstimator(fb, pol, met)
	_, err := est.EstimateContext(context.Background(), nil)
	if !errors.As(err, &flaky{}) {
		t.Fatalf("err = %v, want flaky", err)
	}
	if fb.calls != pol.MaxAttempts {
		t.Fatalf("backend called %d times, want %d", fb.calls, pol.MaxAttempts)
	}
	if x := met.Exhausted.Load(); x != 1 {
		t.Fatalf("Exhausted = %d, want 1", x)
	}
	if r := met.Retries.Load(); r != uint64(pol.MaxAttempts-1) {
		t.Fatalf("Retries = %d, want %d", r, pol.MaxAttempts-1)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	healed := false
	fb := &fakeBackend{fn: func(int) (estimator.Estimate, error) {
		if healed {
			return estimator.Estimate{Card: 1}, nil
		}
		return estimator.Estimate{}, flaky{}
	}}
	met := &Metrics{}
	pol := fastPolicy()
	pol.BreakerThreshold = 2
	est := NewEstimator(fb, pol, met)

	for i := 0; i < pol.BreakerThreshold; i++ {
		if _, err := est.EstimateContext(context.Background(), nil); err == nil {
			t.Fatal("expected failure while backend is down")
		}
	}
	if o := met.BreakerOpens.Load(); o != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", o)
	}

	callsBefore := fb.calls
	if _, err := est.EstimateContext(context.Background(), nil); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker returned %v, want ErrOpen", err)
	}
	if fb.calls != callsBefore {
		t.Fatal("open breaker still reached the backend")
	}
	if rj := met.Rejected.Load(); rj != 1 {
		t.Fatalf("Rejected = %d, want 1", rj)
	}

	healed = true
	time.Sleep(pol.BreakerCooldown + 5*time.Millisecond)
	if _, err := est.EstimateContext(context.Background(), nil); err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	if _, err := est.EstimateContext(context.Background(), nil); err != nil {
		t.Fatalf("call after successful probe failed: %v", err)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	fb := &fakeBackend{fn: func(int) (estimator.Estimate, error) {
		return estimator.Estimate{}, flaky{}
	}}
	met := &Metrics{}
	pol := fastPolicy()
	pol.BreakerThreshold = 1
	pol.MaxAttempts = 1
	est := NewEstimator(fb, pol, met)

	if _, err := est.EstimateContext(context.Background(), nil); err == nil {
		t.Fatal("expected failure")
	}
	time.Sleep(pol.BreakerCooldown + 5*time.Millisecond)
	// Probe fails → breaker must re-open immediately.
	if _, err := est.EstimateContext(context.Background(), nil); err == nil {
		t.Fatal("expected probe failure")
	}
	if _, err := est.EstimateContext(context.Background(), nil); !errors.Is(err, ErrOpen) {
		t.Fatalf("after failed probe got %v, want ErrOpen", err)
	}
	if o := met.BreakerOpens.Load(); o != 2 {
		t.Fatalf("BreakerOpens = %d, want 2", o)
	}
}

func TestCancelAbortsRetryLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fb := &fakeBackend{fn: func(int) (estimator.Estimate, error) {
		cancel() // backend "hangs"; caller gives up
		return estimator.Estimate{}, flaky{}
	}}
	est := NewEstimator(fb, fastPolicy(), &Metrics{})
	_, err := est.EstimateContext(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fb.calls != 1 {
		t.Fatalf("backend called %d times after cancel, want 1", fb.calls)
	}
}

// fakeExec scripts executor responses.
type fakeExec struct {
	calls int
	fn    func(call int) (*executor.Result, error)
}

func (f *fakeExec) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	f.calls++
	return f.fn(f.calls)
}

func TestExecutorWrapperRetries(t *testing.T) {
	want := &executor.Result{Cardinality: 7}
	fe := &fakeExec{fn: func(call int) (*executor.Result, error) {
		if call == 1 {
			return nil, flaky{}
		}
		return want, nil
	}}
	met := &Metrics{}
	ex := NewExecutor(fe, fastPolicy(), met)
	got, err := ex.ExecuteContext(context.Background(), nil)
	if err != nil || got != want {
		t.Fatalf("ExecuteContext = %v, %v; want %v, nil", got, err, want)
	}
	if r := met.Retries.Load(); r != 1 {
		t.Fatalf("Retries = %d, want 1", r)
	}
}

// TestNextDelay pins the exported backoff schedule: geometric growth
// from BaseDelay, the MaxDelay cap, and the jitter envelope, so external
// retry loops (the service client) stay in lockstep with do().
func TestNextDelay(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: -1}
	for i, want := range []time.Duration{
		10 * time.Millisecond, // retry 1
		20 * time.Millisecond, // retry 2
		40 * time.Millisecond, // retry 3
		80 * time.Millisecond, // retry 4 hits the cap
		80 * time.Millisecond, // and stays there
	} {
		if got := p.NextDelay(i+1, 0.5); got != want {
			t.Errorf("NextDelay(%d) = %v, want %v", i+1, got, want)
		}
	}
	// n < 1 clamps to the first retry.
	if got := p.NextDelay(0, 0.5); got != 10*time.Millisecond {
		t.Errorf("NextDelay(0) = %v, want BaseDelay", got)
	}

	// Jitter: u sweeps the [1-J, 1+J] envelope; 0.5 is the nominal value.
	j := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	if got := j.NextDelay(1, 0.5); got != 100*time.Millisecond {
		t.Errorf("nominal jitter draw: %v, want 100ms", got)
	}
	if got := j.NextDelay(1, 0); got != 50*time.Millisecond {
		t.Errorf("low jitter draw: %v, want 50ms", got)
	}
	if got := j.NextDelay(1, 0.999); got <= 100*time.Millisecond || got > 150*time.Millisecond {
		t.Errorf("high jitter draw: %v, want (100ms, 150ms]", got)
	}
	// Out-of-range draws clamp instead of exploding the envelope.
	if got := j.NextDelay(1, 2); got > 150*time.Millisecond {
		t.Errorf("clamped high draw: %v, want ≤ 150ms", got)
	}
	if got := j.NextDelay(1, -1); got != 50*time.Millisecond {
		t.Errorf("clamped low draw: %v, want 50ms", got)
	}

	// The zero policy normalizes to the documented defaults.
	var zero Policy
	if got := zero.NextDelay(1, 0.5); got != time.Millisecond {
		t.Errorf("zero-policy NextDelay(1) = %v, want 1ms", got)
	}
}
