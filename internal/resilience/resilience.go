// Package resilience hardens the training loop's backend calls against
// transient infrastructure faults. It wraps estimator.Backend and
// executor.Backend with retry-with-exponential-backoff (plus jitter) and
// a consecutive-failure circuit breaker, and classifies errors so that
// only genuinely transient faults are retried:
//
//   - context cancellation aborts immediately — the caller is shutting
//     down, not the backend failing;
//   - errors carrying Transient() == true (injected faults, overloaded
//     backends) are retried and, when retries exhaust, count against the
//     circuit breaker;
//   - everything else — including the estimator's ErrUnestimable and the
//     executor's ErrUnsupported refusals — is a definitive answer about
//     the statement: returned at once and counted as backend health, not
//     failure.
//
// The classification is structural (an interface probe), so this package
// needs no knowledge of who produces transient errors; any decorator or
// backend can opt in by implementing Transient() bool.
package resilience

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOpen is returned without touching the backend while the circuit
// breaker is open. It is itself transient: callers that memoize results
// (the estimator cache) must not record it, and a later call may succeed.
var ErrOpen = transientSentinel("resilience: circuit breaker open")

// transientSentinel is a comparable error value carrying the Transient
// marker.
type transientSentinel string

func (e transientSentinel) Error() string   { return string(e) }
func (e transientSentinel) Transient() bool { return true }

// Class is the retry-relevance of an error.
type Class int

const (
	// ClassAbort: the caller's context ended — stop immediately, count
	// nothing against the backend.
	ClassAbort Class = iota
	// ClassPermanent: a definitive answer (estimation/execution refusals,
	// logic errors) — never retried, counts as backend health.
	ClassPermanent
	// ClassTransient: infrastructure hiccup — retry with backoff.
	ClassTransient
)

// Classify maps an error to its Class. nil is not a valid input.
func Classify(err error) Class {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassAbort
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) && t.Transient() {
		return ClassTransient
	}
	return ClassPermanent
}

// Policy configures retry, backoff and the circuit breaker. The zero
// value is normalized to the defaults by withDefaults.
type Policy struct {
	// MaxAttempts is the total number of tries per operation, the first
	// included. Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 100ms.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries. Default 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] times
	// its nominal value, de-synchronizing concurrent workers. Default 0.5;
	// negative disables jitter.
	Jitter float64
	// BreakerThreshold opens the circuit after this many consecutive
	// operations whose retries all exhausted. Default 16; negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// probing the backend again. Default 250ms.
	BreakerCooldown time.Duration
	// Seed seeds the jitter RNG. The jitter stream is drawn only when a
	// retry actually sleeps, so fault-free runs consume nothing from it.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 16
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 250 * time.Millisecond
	}
	return p
}

// NextDelay reports the backoff before the n'th retry (n = 1 for the
// first retry) under the policy: BaseDelay grown by Multiplier per
// retry, capped at MaxDelay, then jittered across [1-Jitter, 1+Jitter]
// by u, a uniform [0,1) draw (0.5 yields the nominal, jitter-free
// schedule). It is the schedule do() follows, exported for callers that
// drive their own retry loop — the service client's request re-issue —
// so every retry path in the repo backs off identically.
func (p Policy) NextDelay(n int, u float64) time.Duration {
	p = p.withDefaults()
	if n < 1 {
		n = 1
	}
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d = time.Duration(float64(d) * p.Multiplier)
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if j := p.Jitter; j > 0 {
		if u < 0 {
			u = 0
		} else if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		d = time.Duration(float64(d) * (1 - j + 2*j*u))
	}
	return d
}

// Metrics aggregates resilience counters across every wrapper sharing it.
// All fields are safe for concurrent use; the trainer surfaces them in
// TrainStats.
type Metrics struct {
	// Retries counts re-attempts after a transient failure.
	Retries atomic.Uint64
	// Exhausted counts operations that still failed after the last
	// attempt.
	Exhausted atomic.Uint64
	// BreakerOpens counts closed→open transitions of the circuit breaker.
	BreakerOpens atomic.Uint64
	// Rejected counts calls refused with ErrOpen while the breaker was
	// open.
	Rejected atomic.Uint64
}

// Breaker is a consecutive-failure circuit breaker. A "failure" is an
// operation whose retries all exhausted — single transient blips that a
// retry absorbed never count, and neither do permanent refusals (those
// prove the backend is answering).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	met       *Metrics

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
}

// NewBreaker builds a breaker; threshold < 0 disables it (Allow always
// true).
func NewBreaker(threshold int, cooldown time.Duration, met *Metrics) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, met: met}
}

// Allow reports whether a call may proceed. While open, it returns false
// until the cooldown elapses; the first call after that is the probe that
// either closes the circuit (on success) or re-opens it.
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if time.Now().Before(b.openUntil) {
		if b.met != nil {
			b.met.Rejected.Add(1)
		}
		return false
	}
	// Cooldown over: let one probe through half-open. Further failures
	// re-open via Record.
	b.openUntil = time.Time{}
	b.consecutive = b.threshold - 1
	return true
}

// Record feeds an operation outcome (post-retry) into the breaker.
func (b *Breaker) Record(success bool) {
	if b == nil || b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold && b.openUntil.IsZero() {
		b.openUntil = time.Now().Add(b.cooldown)
		if b.met != nil {
			b.met.BreakerOpens.Add(1)
		}
	}
}

// lockedRand is a mutex-guarded rand.Rand — jitter draws can come from
// many rollout workers at once.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lockedRand) float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// retrier is the shared retry engine behind the typed wrappers.
type retrier struct {
	pol Policy
	br  *Breaker
	met *Metrics
	rng *lockedRand
}

func newRetrier(pol Policy, met *Metrics) *retrier {
	pol = pol.withDefaults()
	if met == nil {
		met = &Metrics{}
	}
	return &retrier{
		pol: pol,
		br:  NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown, met),
		met: met,
		rng: &lockedRand{rng: rand.New(rand.NewSource(pol.Seed))},
	}
}

// do runs op under the policy: retry transient failures with jittered
// exponential backoff, fail fast on permanent errors and cancellation,
// and gate everything behind the circuit breaker.
func do[T any](r *retrier, ctx context.Context, op func(context.Context) (T, error)) (T, error) {
	var zero T
	if !r.br.Allow() {
		return zero, ErrOpen
	}
	delay := r.pol.BaseDelay
	for attempt := 1; ; attempt++ {
		v, err := op(ctx)
		if err == nil {
			r.br.Record(true)
			return v, nil
		}
		switch Classify(err) {
		case ClassAbort:
			// The caller cancelled; says nothing about backend health.
			return zero, err
		case ClassPermanent:
			// A definitive answer — the backend is alive and responding.
			r.br.Record(true)
			return zero, err
		}
		if attempt >= r.pol.MaxAttempts {
			r.met.Exhausted.Add(1)
			r.br.Record(false)
			return zero, err
		}
		r.met.Retries.Add(1)
		if err := r.sleep(ctx, delay); err != nil {
			return zero, err
		}
		delay = time.Duration(float64(delay) * r.pol.Multiplier)
		if delay > r.pol.MaxDelay {
			delay = r.pol.MaxDelay
		}
	}
}

// sleep waits the jittered delay or until ctx is done, whichever first.
func (r *retrier) sleep(ctx context.Context, d time.Duration) error {
	if j := r.pol.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 - j + 2*j*r.rng.float64()))
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
