package resilience

import (
	"context"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/sqlast"
)

// Estimator wraps an estimator.Backend with the retry/breaker policy.
// Layering order in the environment is cache → Estimator → (fault
// injection) → raw estimator, so retries fire only on genuine cache
// misses and a healed call is memoized like any other.
type Estimator struct {
	inner estimator.Backend
	r     *retrier
}

// NewEstimator wraps inner. met may be shared across wrappers (and with
// an Executor) to aggregate counters; nil allocates a private one.
func NewEstimator(inner estimator.Backend, pol Policy, met *Metrics) *Estimator {
	return &Estimator{inner: inner, r: newRetrier(pol, met)}
}

// EstimateContext implements estimator.Backend.
func (e *Estimator) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	return do(e.r, ctx, func(ctx context.Context) (estimator.Estimate, error) {
		return e.inner.EstimateContext(ctx, st)
	})
}

// Executor wraps an executor.Backend with the retry/breaker policy.
type Executor struct {
	inner executor.Backend
	r     *retrier
}

// NewExecutor wraps inner; met as in NewEstimator.
func NewExecutor(inner executor.Backend, pol Policy, met *Metrics) *Executor {
	return &Executor{inner: inner, r: newRetrier(pol, met)}
}

// ExecuteContext implements executor.Backend.
func (e *Executor) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	return do(e.r, ctx, func(ctx context.Context) (*executor.Result, error) {
		return e.inner.ExecuteContext(ctx, st)
	})
}
