// Package workload profiles and persists generated query workloads. It
// backs the Figure 10 diversity case study (join counts, nesting,
// aggregation, predicate counts, statement types, token lengths) and adds
// the diversity measures the paper argues for qualitatively — distinct
// structural skeletons and their Shannon entropy — plus SQL file
// import/export so generated workloads can feed downstream tools (optimizer
// testing, learned-estimator training).
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// Profile summarizes the structure of a workload.
type Profile struct {
	Total int
	// ByType counts select/insert/update/delete statements.
	ByType map[string]int
	// JoinTables histograms tables per SELECT (Fig 10a).
	JoinTables map[int]int
	// NestedFraction is the share of statements containing a subquery
	// (Fig 10b).
	NestedFraction float64
	// AggregateFraction is the share of SELECTs using aggregation
	// (Fig 10c).
	AggregateFraction float64
	// Predicates histograms leaf predicates per statement (Fig 10d).
	Predicates map[int]int
	// TokenLength histograms whitespace tokens per statement (Fig 10f).
	TokenLength map[int]int
	// DistinctSQL counts unique statements verbatim.
	DistinctSQL int
	// DistinctSkeletons counts unique structures after stripping literal
	// values — two queries differing only in constants share a skeleton.
	DistinctSkeletons int
	// SkeletonEntropy is the Shannon entropy (nats) of the skeleton
	// distribution; higher means the generator explores more structures
	// (the paper's diversity claim, quantified).
	SkeletonEntropy float64
}

// Analyze profiles a generated workload.
func Analyze(queries []rl.Generated) *Profile {
	p := &Profile{
		ByType:      map[string]int{},
		JoinTables:  map[int]int{},
		Predicates:  map[int]int{},
		TokenLength: map[int]int{},
	}
	sqlSeen := map[string]bool{}
	skeletons := map[string]int{}
	selects := 0
	for _, g := range queries {
		p.Total++
		sqlSeen[g.SQL] = true
		skeletons[Skeleton(g.Statement)]++
		p.Predicates[sqlast.CountPredicates(g.Statement)]++
		p.TokenLength[tokenLen(g.SQL)]++
		if len(sqlast.Subqueries(g.Statement)) > 0 {
			p.NestedFraction++
		}
		switch st := g.Statement.(type) {
		case *sqlast.Select:
			p.ByType["select"]++
			selects++
			p.JoinTables[len(st.Tables)]++
			if st.HasAggregate() {
				p.AggregateFraction++
			}
		case *sqlast.Insert:
			p.ByType["insert"]++
		case *sqlast.Update:
			p.ByType["update"]++
		case *sqlast.Delete:
			p.ByType["delete"]++
		}
	}
	p.DistinctSQL = len(sqlSeen)
	p.DistinctSkeletons = len(skeletons)
	if p.Total > 0 {
		p.NestedFraction /= float64(p.Total)
		for _, n := range skeletons {
			q := float64(n) / float64(p.Total)
			p.SkeletonEntropy -= q * math.Log(q)
		}
	}
	if selects > 0 {
		p.AggregateFraction /= float64(selects)
	}
	return p
}

// Skeleton renders a statement's structure with every literal value
// blanked, so structurally identical queries collapse to one key.
func Skeleton(st sqlast.Statement) string {
	cp := sqlast.CloneStatement(st)
	blankStatement(cp)
	return cp.SQL()
}

func blankStatement(st sqlast.Statement) {
	switch t := st.(type) {
	case *sqlast.Select:
		blankPredicate(t.Where)
		if t.Having != nil {
			t.Having.Value = sqltypes.Null
			if t.Having.Sub != nil {
				blankStatement(t.Having.Sub)
			}
		}
		for _, sub := range sqlast.Subqueries(t) {
			blankStatement(sub)
		}
	case *sqlast.Insert:
		for i := range t.Values {
			t.Values[i] = sqltypes.Null
		}
		if t.Sub != nil {
			blankStatement(t.Sub)
		}
	case *sqlast.Update:
		for i := range t.Sets {
			t.Sets[i].Value = sqltypes.Null
		}
		blankPredicate(t.Where)
		for _, sub := range sqlast.Subqueries(t) {
			blankStatement(sub)
		}
	case *sqlast.Delete:
		blankPredicate(t.Where)
		for _, sub := range sqlast.Subqueries(t) {
			blankStatement(sub)
		}
	}
}

func blankPredicate(p sqlast.Predicate) {
	sqlast.WalkPredicates(p, func(q sqlast.Predicate) {
		switch t := q.(type) {
		case *sqlast.Compare:
			t.Value = sqltypes.Null
		case *sqlast.Like:
			t.Pattern = "?"
		}
	})
}

// tokenLen counts whitespace-separated tokens.
func tokenLen(sql string) int {
	return len(strings.Fields(sql))
}

// WriteSQL writes the workload as executable SQL, one statement per line,
// each preceded by a comment recording the measured metric value.
func WriteSQL(w io.Writer, queries []rl.Generated, metric rl.Metric) error {
	bw := bufio.NewWriter(w)
	for _, g := range queries {
		if _, err := fmt.Fprintf(bw, "-- %s = %.4g\n%s;\n", metric, g.Measured, g.SQL); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSQL parses a file written by WriteSQL (or any file of
// one-statement-per-line SQL with optional -- comments) back into ASTs.
func ReadSQL(r io.Reader) ([]sqlast.Statement, error) {
	var out []sqlast.Statement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "--") {
			continue
		}
		text = strings.TrimSuffix(text, ";")
		st, err := parser.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		out = append(out, st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
