package workload

import (
	"bytes"
	"strings"
	"testing"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/rl"
)

func gen(t *testing.T, sql string, measured float64) rl.Generated {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return rl.Generated{Statement: st, SQL: st.SQL(), Measured: measured}
}

func TestAnalyzeProfile(t *testing.T) {
	qs := []rl.Generated{
		gen(t, "SELECT a.x FROM a WHERE a.x > 1", 10),
		gen(t, "SELECT a.x FROM a WHERE a.x > 2", 20), // same skeleton as above
		gen(t, "SELECT a.x FROM a JOIN b ON a.id = b.id WHERE a.x > 1 AND b.y < 2", 5),
		gen(t, "SELECT COUNT(a.x) FROM a", 1),
		gen(t, "SELECT a.x FROM a WHERE a.id IN (SELECT b.id FROM b)", 7),
		gen(t, "INSERT INTO a VALUES (1, 2)", 1),
		gen(t, "DELETE FROM a WHERE a.x = 3", 2),
	}
	p := Analyze(qs)
	if p.Total != 7 {
		t.Fatalf("total = %d", p.Total)
	}
	if p.ByType["select"] != 5 || p.ByType["insert"] != 1 || p.ByType["delete"] != 1 {
		t.Errorf("types = %v", p.ByType)
	}
	if p.JoinTables[1] != 4 || p.JoinTables[2] != 1 {
		t.Errorf("join tables = %v", p.JoinTables)
	}
	if p.NestedFraction != 1.0/7 {
		t.Errorf("nested = %v", p.NestedFraction)
	}
	if p.AggregateFraction != 1.0/5 {
		t.Errorf("agg = %v", p.AggregateFraction)
	}
	if p.DistinctSQL != 7 {
		t.Errorf("distinct SQL = %d", p.DistinctSQL)
	}
	// Queries 1 and 2 share a skeleton → 6 skeletons for 7 queries.
	if p.DistinctSkeletons != 6 {
		t.Errorf("skeletons = %d, want 6", p.DistinctSkeletons)
	}
	if p.SkeletonEntropy <= 0 {
		t.Error("entropy must be positive for a diverse workload")
	}
}

func TestSkeletonCollapsesLiterals(t *testing.T) {
	a := gen(t, "SELECT a.x FROM a WHERE a.x > 1 AND a.s LIKE '%ab%'", 0)
	b := gen(t, "SELECT a.x FROM a WHERE a.x > 999 AND a.s LIKE '%zz%'", 0)
	c := gen(t, "SELECT a.x FROM a WHERE a.x < 1", 0)
	if Skeleton(a.Statement) != Skeleton(b.Statement) {
		t.Error("literal-only differences must share a skeleton")
	}
	if Skeleton(a.Statement) == Skeleton(c.Statement) {
		t.Error("operator differences must not share a skeleton")
	}
	// Skeletonization must not mutate the original.
	if !strings.Contains(a.Statement.SQL(), "> 1") {
		t.Error("Skeleton mutated its input")
	}

	// DML skeletons.
	i1 := gen(t, "INSERT INTO a VALUES (1, 'x')", 0)
	i2 := gen(t, "INSERT INTO a VALUES (2, 'y')", 0)
	if Skeleton(i1.Statement) != Skeleton(i2.Statement) {
		t.Error("insert literals must collapse")
	}
	u1 := gen(t, "UPDATE a SET x = 1 WHERE a.y = 2", 0)
	u2 := gen(t, "UPDATE a SET x = 9 WHERE a.y = 8", 0)
	if Skeleton(u1.Statement) != Skeleton(u2.Statement) {
		t.Error("update literals must collapse")
	}
}

func TestSingleSkeletonEntropyZero(t *testing.T) {
	qs := []rl.Generated{
		gen(t, "SELECT a.x FROM a WHERE a.x > 1", 0),
		gen(t, "SELECT a.x FROM a WHERE a.x > 2", 0),
	}
	p := Analyze(qs)
	if p.SkeletonEntropy != 0 {
		t.Errorf("uniform single skeleton entropy = %v, want 0", p.SkeletonEntropy)
	}
}

func TestWriteReadSQLRoundTrip(t *testing.T) {
	qs := []rl.Generated{
		gen(t, "SELECT a.x FROM a WHERE a.x > 1", 42),
		gen(t, "DELETE FROM a WHERE a.x = 3", 7),
		gen(t, "SELECT a.s FROM a WHERE a.s LIKE '%ab%'", 3),
	}
	var buf bytes.Buffer
	if err := WriteSQL(&buf, qs, rl.Cardinality); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "-- Cardinality = 42") {
		t.Errorf("missing metric comment:\n%s", text)
	}
	back, err := ReadSQL(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("read %d statements, want %d", len(back), len(qs))
	}
	for i := range back {
		if back[i].SQL() != qs[i].Statement.SQL() {
			t.Errorf("statement %d: %q != %q", i, back[i].SQL(), qs[i].Statement.SQL())
		}
	}
}

func TestReadSQLErrors(t *testing.T) {
	if _, err := ReadSQL(strings.NewReader("not sql at all;\n")); err == nil {
		t.Error("bad SQL must fail")
	}
	out, err := ReadSQL(strings.NewReader("\n-- only comments\n\n"))
	if err != nil || len(out) != 0 {
		t.Errorf("comments-only input: %v, %v", out, err)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.Total != 0 || p.SkeletonEntropy != 0 {
		t.Errorf("empty profile = %+v", p)
	}
}
