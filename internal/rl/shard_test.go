package rl

import (
	"errors"
	"math"
	"testing"

	"learnedsqlgen/internal/nn"
)

// fleetChecksum fingerprints the whole fleet's weights: every shard's
// actor and critic, in shard order.
func fleetChecksum(s *ShardedTrainer) []uint32 {
	var sums []uint32
	for i := 0; i < s.NumShards(); i++ {
		tr := s.Shard(i)
		sums = append(sums, nn.ChecksumParams(tr.actor.Params()), nn.ChecksumParams(tr.critic.Params()))
	}
	return sums
}

// runFleet trains a fresh fleet on the fixed workload and returns the
// learning trace, generated SQL and the final weight fingerprint.
func runFleet(t *testing.T, shards, workers int, seed int64) ([]EpochStats, []string, []uint32) {
	t.Helper()
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg, shards)
	trace := s.Train(2, 24)
	var sqls []string
	for _, g := range s.Generate(20) {
		sqls = append(sqls, g.SQL)
	}
	return trace, sqls, fleetChecksum(s)
}

// TestShardsOneByteIdentical is the scale-out contract's anchor: a
// one-shard fleet IS the single-process trainer — same learning trace,
// same generated SQL, same final weights, byte for byte.
func TestShardsOneByteIdentical(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 11
	legacy := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	wantTrace := legacy.Train(2, 24)
	var wantSQL []string
	for _, g := range legacy.Generate(20) {
		wantSQL = append(wantSQL, g.SQL)
	}
	wantActor := nn.ChecksumParams(legacy.actor.Params())
	wantCritic := nn.ChecksumParams(legacy.critic.Params())

	trace, sqls, sums := runFleet(t, 1, 1, 11)
	if len(trace) != len(wantTrace) {
		t.Fatalf("trace length %d vs legacy %d", len(trace), len(wantTrace))
	}
	for i := range wantTrace {
		if trace[i] != wantTrace[i] {
			t.Errorf("epoch %d stats diverged from legacy: %+v vs %+v", i, trace[i], wantTrace[i])
		}
	}
	if len(sqls) != len(wantSQL) {
		t.Fatalf("generated %d vs legacy %d queries", len(sqls), len(wantSQL))
	}
	for i := range wantSQL {
		if sqls[i] != wantSQL[i] {
			t.Errorf("query %d differs:\n  legacy: %s\n  fleet:  %s", i, wantSQL[i], sqls[i])
		}
	}
	if sums[0] != wantActor || sums[1] != wantCritic {
		t.Errorf("weights diverged from legacy: %v vs [%d %d]", sums, wantActor, wantCritic)
	}
}

// TestShardReplayIdentity: a sharded run is a pure function of its seed —
// replaying shards∈{2,4} (with worker pools racing inside every shard)
// reproduces the trace, the queries and every shard's weights exactly.
func TestShardReplayIdentity(t *testing.T) {
	for _, shards := range []int{2, 4} {
		trace1, sqls1, sums1 := runFleet(t, shards, 2, 7)
		trace2, sqls2, sums2 := runFleet(t, shards, 3, 7)
		if len(trace1) != len(trace2) {
			t.Fatalf("shards=%d: trace length %d vs %d", shards, len(trace1), len(trace2))
		}
		for i := range trace1 {
			if trace1[i] != trace2[i] {
				t.Errorf("shards=%d: epoch %d stats diverged across replays: %+v vs %+v",
					shards, i, trace1[i], trace2[i])
			}
		}
		if len(sqls1) != len(sqls2) {
			t.Fatalf("shards=%d: generated %d vs %d queries", shards, len(sqls1), len(sqls2))
		}
		for i := range sqls1 {
			if sqls1[i] != sqls2[i] {
				t.Errorf("shards=%d: query %d differs across replays:\n  a: %s\n  b: %s",
					shards, i, sqls1[i], sqls2[i])
			}
		}
		if len(sums1) != len(sums2) {
			t.Fatalf("shards=%d: fingerprint lengths differ", shards)
		}
		for i := range sums1 {
			if sums1[i] != sums2[i] {
				t.Errorf("shards=%d: weight fingerprint %d diverged: %d vs %d",
					shards, i, sums1[i], sums2[i])
			}
		}
		// All-reduce broadcasts after every epoch, so the fleet must end
		// weight-synchronized: every shard carries identical weights.
		for i := 2; i < len(sums1); i += 2 {
			if sums1[i] != sums1[0] || sums1[i+1] != sums1[1] {
				t.Errorf("shards=%d: shard %d not synchronized with shard 0 after training",
					shards, i/2)
			}
		}
	}
}

// TestShardSeedSensitivity guards against a degenerate fan-out (all
// shards training the same episode stream): different seeds must explore
// differently, and within one fleet the shards' episode streams differ.
func TestShardSeedSensitivity(t *testing.T) {
	_, sqlsA, _ := runFleet(t, 2, 1, 7)
	_, sqlsB, _ := runFleet(t, 2, 1, 8)
	same := len(sqlsA) == len(sqlsB)
	if same {
		for i := range sqlsA {
			if sqlsA[i] != sqlsB[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 7 and 8 generated identical query sets")
	}
}

// TestSplitEpisodes pins the deterministic quota split.
func TestSplitEpisodes(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{24, 4, []int{6, 6, 6, 6}},
		{10, 4, []int{3, 3, 2, 2}},
		{3, 4, []int{1, 1, 1, 0}},
		{5, 1, []int{5}},
	}
	for _, c := range cases {
		got := splitEpisodes(c.total, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("splitEpisodes(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitEpisodes(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
				break
			}
		}
	}
}

// TestShardedCheckpointInterchange: fleet checkpoints use the
// single-trainer format, load into every shard, and re-synchronize the
// fleet.
func TestShardedCheckpointInterchange(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 5
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg, 2)
	s.Train(1, 16)
	path := t.TempDir() + "/fleet.ckpt"
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	// A plain trainer reads the fleet checkpoint...
	single := NewTrainer(testEnv(t), RangeConstraint(Cardinality, 10, 500), cfg)
	if err := single.LoadFile(path); err != nil {
		t.Fatalf("single LoadFile: %v", err)
	}
	if got, want := nn.ChecksumParams(single.actor.Params()), nn.ChecksumParams(s.Shard(0).actor.Params()); got != want {
		t.Errorf("single trainer loaded different actor weights: %d vs %d", got, want)
	}

	// ...and a fresh fleet restores it into every shard.
	s2 := NewShardedTrainer(testEnv(t), RangeConstraint(Cardinality, 10, 500), cfg, 3)
	if err := s2.LoadFile(path); err != nil {
		t.Fatalf("fleet LoadFile: %v", err)
	}
	want := fleetChecksum(s)[:2]
	sums := fleetChecksum(s2)
	for i := 0; i < len(sums); i += 2 {
		if sums[i] != want[0] || sums[i+1] != want[1] {
			t.Errorf("shard %d not restored to checkpoint weights", i/2)
		}
	}
}

// TestShardAsyncTrains smoke-tests the parameter-server mode: it must
// train to finite, fleet-synchronized weights and report a full trace,
// even though the blend order is scheduling-dependent.
func TestShardAsyncTrains(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 13
	cfg.Workers = 2
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg, 3)
	s.Mode = ShardAsync
	trace, err := s.TrainContext(t.Context(), 2, 24)
	if err != nil {
		t.Fatalf("async train: %v", err)
	}
	if len(trace) != 2 {
		t.Fatalf("async trace length %d, want 2", len(trace))
	}
	for i, st := range trace {
		if st.Episodes == 0 || math.IsNaN(st.AvgReward) {
			t.Errorf("async round %d stats degenerate: %+v", i, st)
		}
	}
	sums := fleetChecksum(s)
	for i := 2; i < len(sums); i += 2 {
		if sums[i] != sums[0] || sums[i+1] != sums[1] {
			t.Errorf("async shard %d not synchronized after final broadcast", i/2)
		}
	}
	for i := 0; i < s.NumShards(); i++ {
		tr := s.Shard(i)
		if !nn.ParamsFinite(tr.actor.Params()) || !nn.ParamsFinite(tr.critic.Params()) {
			t.Errorf("async shard %d weights not finite", i)
		}
	}
	if len(s.Generate(5)) != 5 {
		t.Error("async fleet failed to generate")
	}
}

// TestShardedBudget: the fleet-level TrainBudget governs the whole run
// and surfaces as ErrBudgetExceeded, exactly like the single trainer.
func TestShardedBudget(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 3
	cfg.TrainBudget = 1 // nanosecond — expires before the first epoch
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg, 2)
	_, err := s.TrainContext(t.Context(), 50, 16)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestShardedOnEpoch: the fleet drives the progress callback once per
// fleet epoch with aggregated stats, and an abort surfaces as
// EpochAbortError.
func TestShardedOnEpoch(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 3
	calls := 0
	boom := errors.New("boom")
	cfg.OnEpoch = func(st EpochStats) error {
		calls++
		if st.Episodes != 16 {
			t.Errorf("callback saw %d episodes, want the full fleet epoch (16)", st.Episodes)
		}
		if calls == 2 {
			return boom
		}
		return nil
	}
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg, 2)
	trace, err := s.TrainContext(t.Context(), 5, 16)
	var abort *EpochAbortError
	if !errors.As(err, &abort) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want EpochAbortError wrapping boom", err)
	}
	if calls != 2 || len(trace) != 2 {
		t.Errorf("calls=%d trace=%d, want 2/2", calls, len(trace))
	}
	// Per-shard callbacks must not fire: the fleet owns progress.
	for i := 0; i < s.NumShards(); i++ {
		if s.Shard(i).Cfg.OnEpoch != nil {
			t.Errorf("shard %d kept a per-shard OnEpoch callback", i)
		}
	}
}
