package rl

import (
	"math"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/token"
)

func TestPointRewardMatchesPaperExamples(t *testing.T) {
	// Example 3: Card = 10,000; ĉ = 100 → 0.01; ĉ = 11,000 → ≈0.9.
	c := PointConstraint(Cardinality, 10000)
	if got := c.Reward(true, 100); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("reward(100) = %v, want 0.01", got)
	}
	if got := c.Reward(true, 11000); math.Abs(got-10000.0/11000) > 1e-9 {
		t.Errorf("reward(11000) = %v, want %v", got, 10000.0/11000)
	}
	if got := c.Reward(false, 5000); got != 0 {
		t.Errorf("non-executable reward = %v, want 0", got)
	}
	if got := c.Reward(true, 0); got != 0 {
		t.Errorf("zero-measure reward = %v, want 0 (δ=0 rule)", got)
	}
}

func TestRangeRewardMatchesPaperExamples(t *testing.T) {
	// Example 4: Card = [1K, 2K]; ĉ = 1.5K → 1; ĉ = 10K → 0.2.
	c := RangeConstraint(Cardinality, 1000, 2000)
	if got := c.Reward(true, 1500); got != 1 {
		t.Errorf("in-range reward = %v, want 1", got)
	}
	if got := c.Reward(true, 10000); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("reward(10k) = %v, want 0.2", got)
	}
	if got := c.Reward(true, 500); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("reward(500) = %v, want 0.5 (δ_l)", got)
	}
	if got := c.Reward(true, 1000); got != 1 {
		t.Errorf("boundary reward = %v, want 1", got)
	}
	if got := c.Reward(false, 1500); got != 0 {
		t.Errorf("non-executable reward = %v", got)
	}
}

func TestRewardMonotoneTowardsTarget(t *testing.T) {
	c := PointConstraint(Cost, 1000)
	prev := -1.0
	for _, m := range []float64{1, 10, 100, 500, 900, 1000} {
		r := c.Reward(true, m)
		if r < prev {
			t.Errorf("reward must grow towards the target: r(%v)=%v < %v", m, r, prev)
		}
		prev = r
	}
	if c.Reward(true, 1000) != 1 {
		t.Error("exact hit must reward 1")
	}
}

func TestSatisfied(t *testing.T) {
	p := PointConstraint(Cardinality, 1000)
	for m, want := range map[float64]bool{
		1000: true, 905: true, 1095: true, 880: false, 1120: false,
	} {
		if got := p.Satisfied(m); got != want {
			t.Errorf("point Satisfied(%v) = %v, want %v", m, got, want)
		}
	}
	r := RangeConstraint(Cost, 10, 20)
	for m, want := range map[float64]bool{10: true, 15: true, 20: true, 9.99: false, 21: false} {
		if got := r.Satisfied(m); got != want {
			t.Errorf("range Satisfied(%v) = %v, want %v", m, got, want)
		}
	}
}

func TestConstraintString(t *testing.T) {
	if got := PointConstraint(Cost, 10).String(); got != "Cost = 10" {
		t.Errorf("point string = %q", got)
	}
	if got := RangeConstraint(Cardinality, 1000, 2000).String(); got != "Cardinality in [1000, 2000]" {
		t.Errorf("range string = %q", got)
	}
}

func testEnv(t testing.TB) *Env {
	t.Helper()
	db, err := datagen.Generate(datagen.NameTPCH, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	vocab := token.Build(db, 8, 7)
	cfg := fsm.DefaultConfig()
	return NewEnv(db, vocab, cfg)
}

func fastConfig() Config {
	cfg := FastConfig()
	cfg.Hidden = 24
	cfg.EmbedDim = 24
	return cfg
}

func TestSampleEpisodeProducesValidStatements(t *testing.T) {
	env := testEnv(t)
	constraint := RangeConstraint(Cardinality, 10, 1000)
	tr := NewTrainer(env, constraint, fastConfig())
	for i := 0; i < 20; i++ {
		traj := tr.SampleEpisode(tr.Actor(), true, true)
		if traj.Final == nil {
			t.Fatal("episode produced no statement")
		}
		if len(traj.Steps) == 0 {
			t.Fatal("episode has no steps")
		}
		if traj.Measured < 0 {
			t.Errorf("negative measurement %v", traj.Measured)
		}
		for _, s := range traj.Steps {
			if s.Reward < -1 || s.Reward > 1 {
				t.Errorf("reward %v out of [-1,1]", s.Reward)
			}
		}
	}
}

func TestDenseRewardsPresent(t *testing.T) {
	// The §4.2 Remark: executable prefixes earn intermediate rewards, so
	// most episodes should have more than one non-zero reward step.
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Mode = RewardDense
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1e9), cfg)
	multi := 0
	for i := 0; i < 30; i++ {
		traj := tr.SampleEpisode(tr.Actor(), false, false)
		nonzero := 0
		for _, s := range traj.Steps {
			if s.Reward > 0 {
				nonzero++
			}
		}
		if nonzero > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no episode earned dense intermediate rewards")
	}
}

func TestTerminalRewardOnlyAblation(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Mode = RewardTerminal
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1e9), cfg)
	for i := 0; i < 10; i++ {
		traj := tr.SampleEpisode(tr.Actor(), false, false)
		for j, s := range traj.Steps {
			if j < len(traj.Steps)-1 && s.Reward != 0 {
				t.Fatal("non-terminal step earned reward in terminal-only mode")
			}
		}
	}
}

func TestTrainingImprovesReward(t *testing.T) {
	env := testEnv(t)
	// Generate queries with small result cardinality: a selective target
	// the untrained policy rarely hits.
	constraint := RangeConstraint(Cardinality, 1, 20)
	cfg := fastConfig()
	cfg.Seed = 3
	tr := NewTrainer(env, constraint, cfg)

	// Accuracy of the untrained policy (structurally a random-but-masked
	// sampler).
	untrainedAcc := accuracyOf(NewTrainer(env, constraint, cfg).Generate(100))

	tr.TrainUntil(0.5, 2, 80, 25)
	trainedAcc := accuracyOf(tr.Generate(100))
	if trainedAcc <= untrainedAcc+0.1 {
		t.Errorf("training did not raise accuracy: untrained %.2f, trained %.2f",
			untrainedAcc, trainedAcc)
	}
}

func accuracyOf(gen []Generated) float64 {
	sat := 0
	for _, g := range gen {
		if g.Satisfied {
			sat++
		}
	}
	return float64(sat) / float64(len(gen))
}

func TestGenerateAndGenerateSatisfied(t *testing.T) {
	env := testEnv(t)
	constraint := RangeConstraint(Cardinality, 1, 1e6)
	tr := NewTrainer(env, constraint, fastConfig())
	tr.Train(2, 10)

	gen := tr.Generate(15)
	if len(gen) != 15 {
		t.Fatalf("Generate returned %d", len(gen))
	}
	for _, g := range gen {
		if g.Statement == nil || g.SQL == "" {
			t.Fatal("missing statement")
		}
	}

	sat, attempts := tr.GenerateSatisfied(5, 200)
	if attempts > 200 {
		t.Error("attempts exceeded cap")
	}
	for _, g := range sat {
		if !g.Satisfied {
			t.Error("GenerateSatisfied returned unsatisfied query")
		}
	}

	// Impossible constraint: cap must bound the attempts.
	impossible := RangeConstraint(Cardinality, 1e17, 1e18)
	tr2 := NewTrainer(env, impossible, fastConfig())
	sat2, attempts2 := tr2.GenerateSatisfied(5, 30)
	if len(sat2) != 0 || attempts2 != 30 {
		t.Errorf("impossible constraint: got %d satisfied in %d attempts", len(sat2), attempts2)
	}
}

func TestReinforceTrainsAndGenerates(t *testing.T) {
	env := testEnv(t)
	constraint := RangeConstraint(Cardinality, 1, 20)
	cfg := fastConfig()
	cfg.Seed = 5
	r := NewReinforce(env, constraint, cfg)
	stats := r.Train(6, 20)
	if len(stats) != 6 {
		t.Fatalf("stats = %d epochs", len(stats))
	}
	gen := r.Generate(10)
	if len(gen) != 10 {
		t.Fatal("Generate size mismatch")
	}
	if _, attempts := r.GenerateSatisfied(3, 50); attempts > 50 {
		t.Error("attempt cap breached")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	env := testEnv(t)
	constraint := RangeConstraint(Cardinality, 10, 500)
	cfg := fastConfig()
	cfg.Seed = 11
	a := NewTrainer(env, constraint, cfg)
	b := NewTrainer(env, constraint, cfg)
	sa := a.Train(2, 10)
	sb := b.Train(2, 10)
	for i := range sa {
		if math.Abs(sa[i].AvgReward-sb[i].AvgReward) > 1e-12 {
			t.Fatalf("epoch %d diverged: %v vs %v", i, sa[i].AvgReward, sb[i].AvgReward)
		}
	}
}

func TestMetricString(t *testing.T) {
	if Cardinality.String() != "Cardinality" || Cost.String() != "Cost" {
		t.Error("metric names wrong")
	}
}

func TestTrainerSaveLoad(t *testing.T) {
	env := testEnv(t)
	constraint := RangeConstraint(Cardinality, 1, 100)
	cfg := fastConfig()
	a := NewTrainer(env, constraint, cfg)
	a.Train(3, 10)

	path := t.TempDir() + "/model.gob"
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b := NewTrainer(env, constraint, cfg)
	if err := b.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	// Same weights + same sampler seed state? Seeds differ in consumed
	// stream position, so compare greedily: the two actors must give
	// identical probabilities on a fresh prefix.
	trajA := a.SampleEpisode(a.Actor(), false, false)
	_ = trajA
	pa := probeProbs(t, env, a)
	pb := probeProbs(t, env, b)
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatal("loaded policy differs from saved policy")
		}
	}
	if err := b.LoadFile(path + ".missing"); err == nil {
		t.Error("missing file must fail")
	}
}

// probeProbs returns the masked policy distribution at the episode start.
func probeProbs(t *testing.T, env *Env, tr *Trainer) []float64 {
	t.Helper()
	b := env.NewBuilder()
	valid := b.Valid()
	ws := nn.NewWorkspace(nil)
	st := tr.Actor().NewState()
	logits := tr.Actor().StepMaskedInto(ws, st, tr.Actor().BOS(), valid, false, nil)
	return nn.MaskedSoftmax(logits, valid)
}

func TestTrueExecutionMeasure(t *testing.T) {
	env := testEnv(t)
	env.TrueExecution = true
	// region has exactly 5 rows; the estimator would agree here, but the
	// executor path must report the exact count and positive work.
	b := env.NewBuilder()
	_ = b
	st := mustParse(t, "SELECT region.r_name FROM region")
	card, err := env.Measure(st, Cardinality)
	if err != nil || card != 5 {
		t.Fatalf("true card = %v, %v", card, err)
	}
	cost, err := env.Measure(st, Cost)
	if err != nil || cost <= 0 {
		t.Fatalf("true cost = %v, %v", cost, err)
	}
	// Training under true execution still works end to end.
	cfg := fastConfig()
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 100), cfg)
	tr.Train(2, 10)
	out := tr.Generate(5)
	if len(out) != 5 {
		t.Fatal("generation under true execution broken")
	}
	for _, g := range out {
		if g.Measured != float64(int(g.Measured)) {
			t.Errorf("true cardinality must be integral, got %v", g.Measured)
		}
	}
}
