package rl

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExceeded reports that a run stopped because its wall-clock
// training budget (Config.TrainBudget) was exhausted. It is installed as
// the cancellation cause of the internal deadline context, so errors
// returned by TrainContext/TrainUntilContext satisfy
// errors.Is(err, ErrBudgetExceeded) when the budget — rather than the
// caller's context — ended the run.
var ErrBudgetExceeded = errors.New("rl: train budget exceeded")

// EpochAbortError reports that training stopped because the Config.OnEpoch
// callback returned an error. Epoch is the number of completed epochs
// (the callback that aborted ran after epoch Epoch); Unwrap exposes the
// callback's error for errors.Is/As.
type EpochAbortError struct {
	Epoch int
	Err   error
}

func (e *EpochAbortError) Error() string {
	return fmt.Sprintf("rl: epoch callback aborted training after %d epochs: %v", e.Epoch, e.Err)
}

func (e *EpochAbortError) Unwrap() error { return e.Err }

// trainCtx derives the training context: with a positive TrainBudget the
// caller's context gains a deadline whose cancellation cause is
// ErrBudgetExceeded, so budget expiry is distinguishable from a caller
// cancel. The returned CancelFunc must always be called.
func (t *Trainer) trainCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	return budgetCtx(ctx, t.Cfg)
}

// budgetCtx is trainCtx's implementation, shared with the sharded fleet
// trainer (whose budget governs the whole fleet, not any one shard).
func budgetCtx(ctx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	if cfg.TrainBudget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, cfg.TrainBudget, ErrBudgetExceeded)
}

// cancelCause resolves a done context to its most informative error:
// context.Cause surfaces ErrBudgetExceeded for budget deadlines and falls
// back to ctx.Err() for plain cancels and deadlines.
func cancelCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return ctx.Err()
}

// trainStopErr wraps the reason a training loop stopped early with the
// number of epochs that completed. The weights reflect every batch update
// applied before the stop, so the trainer remains checkpointable and
// resumable.
func trainStopErr(epochs int, cause error) error {
	return fmt.Errorf("rl: training stopped after %d epochs: %w", epochs, cause)
}

// onEpoch invokes the per-epoch progress callback, translating a non-nil
// return into an EpochAbortError. epochs counts completed epochs.
func (t *Trainer) onEpoch(epochs int, s EpochStats) error {
	if t.Cfg.OnEpoch == nil {
		return nil
	}
	if err := t.Cfg.OnEpoch(s); err != nil {
		return &EpochAbortError{Epoch: epochs, Err: err}
	}
	return nil
}
