//go:build rldebug

package rl

// debugInvariants is true under -tags rldebug: invariant violations panic
// at the point of failure and rollout panic recovery is disabled, so a
// debugger or stack trace lands on the real fault instead of the
// quarantine path.
const debugInvariants = true
