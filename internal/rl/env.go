package rl

import (
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
	"learnedsqlgen/internal/token"
)

// Env is the RL environment of Figure 1: it owns the FSM that masks the
// action space and the database estimator that turns (partial) queries
// into cardinality/cost feedback. The environment is shared by trainers
// and baselines so all methods see identical feedback.
type Env struct {
	DB    *storage.Database
	Vocab *token.Vocab
	Est   *estimator.Estimator
	Cfg   fsm.Config
	// TrueExecution switches Measure from the estimator to real query
	// execution against a snapshot. The paper deliberately uses estimates
	// "for the efficiency issue" (§3.2); this flag quantifies that choice:
	// true-execution rewards are exact but orders of magnitude slower.
	TrueExecution bool
}

// NewEnv collects statistics over db and wires up the estimator.
func NewEnv(db *storage.Database, vocab *token.Vocab, cfg fsm.Config) *Env {
	return &Env{
		DB:    db,
		Vocab: vocab,
		Est:   estimator.New(db.Schema, stats.Collect(db)),
		Cfg:   cfg,
	}
}

// NewBuilder starts a fresh FSM episode.
func (e *Env) NewBuilder() *fsm.Builder {
	return fsm.NewBuilder(e.DB.Schema, e.Vocab, e.Cfg)
}

// Measure returns the metric value of a statement: estimated by default,
// or measured by real execution when TrueExecution is set (cardinality =
// result rows, cost = the executor's operator-work counter).
func (e *Env) Measure(st sqlast.Statement, m Metric) (float64, error) {
	if e.TrueExecution {
		res, err := executor.New(e.DB.Clone()).Execute(st)
		if err != nil {
			return 0, err
		}
		if m == Cost {
			return res.Work, nil
		}
		return float64(res.Cardinality), nil
	}
	est, err := e.Est.Estimate(st)
	if err != nil {
		return 0, err
	}
	if m == Cost {
		return est.Cost, nil
	}
	return est.Card, nil
}

// Generated is one produced statement with its measured metric value.
type Generated struct {
	Statement sqlast.Statement
	SQL       string
	Measured  float64
	Satisfied bool
}
