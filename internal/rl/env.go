package rl

import (
	"context"
	"fmt"
	"sync/atomic"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/resilience"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
	"learnedsqlgen/internal/token"
)

// Env is the RL environment of Figure 1: it owns the FSM that masks the
// action space and the database estimator that turns (partial) queries
// into cardinality/cost feedback. The environment is shared by trainers
// and baselines so all methods see identical feedback. Measure is safe
// for concurrent use — the parallel rollout engine calls it from many
// worker goroutines at once.
type Env struct {
	DB    *storage.Database
	Vocab *token.Vocab
	Est   *estimator.Estimator
	// Cache memoizes Est behind a bounded LRU keyed on canonical SQL —
	// training re-estimates the same executable prefixes across thousands
	// of episodes, so most Measure calls become cache hits. nil disables
	// memoization (see DisableCache). Counters are environment-wide.
	Cache *estimator.Cached
	Cfg   fsm.Config
	// TrueExecution switches Measure from the estimator to real query
	// execution against a snapshot. The paper deliberately uses estimates
	// "for the efficiency issue" (§3.2); this flag quantifies that choice:
	// true-execution rewards are exact but orders of magnitude slower.
	// Execution results are never cached.
	TrueExecution bool

	// Res, when non-nil, is the resilience metrics sink shared by the
	// retry/breaker wrappers installed via SetBackend/SetExecBackend; the
	// trainer surfaces its counters in TrainStats.
	Res *resilience.Metrics

	// backend is the estimation path Measure uses on cache misses (and
	// directly when the cache is disabled). nil means the raw Est —
	// SetBackend installs decorated stacks (resilience, fault injection).
	backend estimator.Backend
	// execBackend is the true-execution path; nil builds a fresh executor
	// over a database snapshot per call.
	execBackend executor.Backend

	measures uint64 // total Measure calls, accessed atomically
}

// NewEnv collects statistics over db and wires up the estimator behind a
// default-sized memoizing cache.
func NewEnv(db *storage.Database, vocab *token.Vocab, cfg fsm.Config) *Env {
	est := estimator.New(db.Schema, stats.Collect(db))
	return &Env{
		DB:    db,
		Vocab: vocab,
		Est:   est,
		Cache: estimator.NewCached(est, estimator.DefaultCacheSize),
		Cfg:   cfg,
	}
}

// estBackend resolves the effective estimation backend (raw estimator
// unless SetBackend installed a decorated stack).
func (e *Env) estBackend() estimator.Backend {
	if e.backend != nil {
		return e.backend
	}
	return e.Est
}

// SetBackend routes estimation through b — typically a resilience wrapper
// (and, in chaos tests, a fault injector) around the raw estimator. The
// memoizing cache, when enabled, is rebuilt over b so it stays outermost:
// hits never touch b, and misses that b heals via retries are memoized
// like any other result.
func (e *Env) SetBackend(b estimator.Backend) {
	e.backend = b
	if e.Cache != nil {
		e.Cache = estimator.NewCached(b, e.Cache.Stats().Capacity)
	}
}

// SetExecBackend routes true-execution measurement through b instead of a
// per-call executor over a snapshot.
func (e *Env) SetExecBackend(b executor.Backend) { e.execBackend = b }

// Clone returns a replica environment for a trainer shard: the same
// read-only dataset, vocabulary, grammar and estimator statistics, and the
// same decorated backend stacks (engine driver, resilience, fault
// injection — whatever SetBackend/SetExecBackend installed), but its own
// memoizing estimator cache of equal capacity, so fleet shards measuring
// concurrently never contend on one LRU mutex. Replica measurements are
// value-identical to the original's: the estimator is a pure function of
// (statement, statistics) and the cache only memoizes it.
func (e *Env) Clone() *Env {
	clone := &Env{
		DB:            e.DB,
		Vocab:         e.Vocab,
		Est:           e.Est,
		Cfg:           e.Cfg,
		TrueExecution: e.TrueExecution,
		Res:           e.Res,
		backend:       e.backend,
		execBackend:   e.execBackend,
	}
	if e.Cache != nil {
		clone.Cache = estimator.NewCached(e.estBackend(), e.Cache.Stats().Capacity)
	}
	return clone
}

// SetCacheSize replaces the estimator cache with a fresh one of the given
// capacity (entries); capacity <= 0 selects the default size.
func (e *Env) SetCacheSize(capacity int) {
	e.Cache = estimator.NewCached(e.estBackend(), capacity)
}

// DisableCache turns estimator memoization off (the cache-ablation arm of
// the throughput benchmark) and resets the call counter.
func (e *Env) DisableCache() {
	e.Cache = nil
	atomic.StoreUint64(&e.measures, 0)
}

// CacheStats snapshots the estimator cache counters (zero when disabled).
func (e *Env) CacheStats() estimator.CacheStats {
	if e.Cache == nil {
		return estimator.CacheStats{}
	}
	return e.Cache.Stats()
}

// Measures returns the total number of Measure calls.
func (e *Env) Measures() uint64 { return atomic.LoadUint64(&e.measures) }

// NewBuilder starts a fresh FSM episode.
func (e *Env) NewBuilder() *fsm.Builder {
	return fsm.NewBuilder(e.DB.Schema, e.Vocab, e.Cfg)
}

// Measure returns the metric value of a statement: estimated by default,
// or measured by real execution when TrueExecution is set (cardinality =
// result rows, cost = the executor's operator-work counter).
func (e *Env) Measure(st sqlast.Statement, m Metric) (float64, error) {
	return e.MeasureContext(context.Background(), st, m)
}

// MeasureContext is Measure with cancellation: a done ctx short-circuits
// before any estimator or executor work and its cause propagates through
// the true-execution path, so a cancelled training run never waits on a
// slow in-flight execution. Estimation errors ("this prefix is not
// executable") are returned unwrapped — they are the environment's normal
// negative feedback, shared and memoized by the estimator cache, not
// failures of this call.
func (e *Env) MeasureContext(ctx context.Context, st sqlast.Statement, m Metric) (float64, error) {
	atomic.AddUint64(&e.measures, 1)
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("rl: measure: %w", cancelCause(ctx))
	}
	if e.TrueExecution {
		exec := e.execBackend
		if exec == nil {
			exec = CloneExec{DB: e.DB}
		}
		res, err := exec.ExecuteContext(ctx, st)
		if err != nil {
			return 0, err
		}
		if m == Cost {
			return res.Work, nil
		}
		return float64(res.Cardinality), nil
	}
	var est estimator.Estimate
	var err error
	if e.Cache != nil {
		est, err = e.Cache.EstimateContext(ctx, st)
	} else {
		est, err = e.estBackend().EstimateContext(ctx, st)
	}
	if err != nil {
		return 0, err
	}
	if m == Cost {
		return est.Cost, nil
	}
	return est.Card, nil
}

// CloneExec is the default true-execution backend: each call builds a
// fresh Executor over a snapshot of the database, which is what makes
// concurrent Measure calls safe. Decorators (resilience, fault injection)
// wrap it via SetExecBackend.
type CloneExec struct{ DB *storage.Database }

// ExecuteContext implements executor.Backend.
func (c CloneExec) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	return executor.New(c.DB.Clone()).ExecuteContext(ctx, st)
}

// Generated is one produced statement with its measured metric value.
type Generated struct {
	Statement sqlast.Statement
	SQL       string
	Measured  float64
	Satisfied bool
}
