package rl

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"learnedsqlgen/internal/faultinject"
	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/resilience"
)

// fastResiliencePolicy keeps retry backoff in the microsecond range so
// chaos tests stay fast while still exercising the full retry machinery.
func fastResiliencePolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Microsecond,
		MaxDelay:    200 * time.Microsecond,
	}
}

// injectFaults installs a fault-injecting estimator stack on env in the
// production layering (cache → resilience → faultinject → raw) and
// returns the injector and the shared metrics sink.
func injectFaults(env *Env, cfg faultinject.Config) (*faultinject.Injector, *resilience.Metrics) {
	inj := faultinject.New(cfg)
	met := &resilience.Metrics{}
	env.Res = met
	env.SetBackend(resilience.NewEstimator(
		faultinject.NewEstimator(env.Est, inj), fastResiliencePolicy(), met))
	return inj, met
}

// waitGoroutines polls until the goroutine count drops back to at most
// base (plus scheduler slack) or the deadline passes.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain: %d now, %d before", runtime.NumGoroutine(), base)
}

// TestChaosTrainingSurvivesFaults is the acceptance run of the
// fault-tolerance layer: a full TrainUntilContext with ~5% injected
// transient estimator faults, a guaranteed worker panic, and NaN-poisoned
// estimates must complete with healthy weights — retries heal the
// transient errors, the quarantine absorbs the panic and refills the
// batch, and the divergence watchdog discards the NaN-poisoned updates.
func TestChaosTrainingSurvivesFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	env := testEnv(t)
	inj, _ := injectFaults(env, faultinject.Config{
		Seed:        7,
		ErrorRate:   0.05,
		LatencyRate: 0.02,
		Latency:     50 * time.Microsecond,
		NaNRate:     0.01,
		PanicOnCall: 50, // one guaranteed mid-episode panic
		NaNOnCall:   90, // one guaranteed poisoned batch
	})

	constraint := RangeConstraint(Cardinality, 1, 1000)
	cfg := fastConfig()
	cfg.Seed = 11
	cfg.Workers = 4
	tr := NewTrainer(env, constraint, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// target > 1 is unreachable, so all epochs run unless something breaks.
	trace, err := tr.TrainUntilContext(ctx, 1.1, 2, 3, 24)
	if err != nil {
		t.Fatalf("training under fault injection failed: %v", err)
	}
	if len(trace) != 3 {
		t.Fatalf("completed %d epochs, want 3", len(trace))
	}
	if inj.Calls() < 90 {
		t.Fatalf("injector refereed only %d calls; one-shot faults never fired", inj.Calls())
	}

	s := tr.Stats()
	if s.Retries == 0 {
		t.Error("no retries recorded despite a 5% transient error rate")
	}
	if s.Quarantined == 0 {
		t.Error("injected panic was not quarantined")
	}
	if s.WatchdogTrips == 0 {
		t.Error("NaN-poisoned batches never tripped the divergence watchdog")
	}
	if !nn.ParamsFinite(tr.Actor().Params()) || !nn.ParamsFinite(tr.Critic().Params()) {
		t.Error("weights are non-finite after chaos training")
	}

	// The quarantine log identifies the injected panic with its trace.
	var sawPanic bool
	for _, qe := range tr.QuarantineLog() {
		var pe *EpisodePanicError
		if errors.As(qe, &pe) && strings.Contains(pe.Error(), "injected panic") {
			sawPanic = true
		}
	}
	if !sawPanic {
		t.Errorf("quarantine log does not record the injected panic: %v", tr.QuarantineLog())
	}

	// The trained policy still generates; faults keep being healed.
	for _, g := range tr.Generate(10) {
		if g.SQL == "" {
			t.Fatal("post-chaos generation produced an empty statement")
		}
	}
	waitGoroutines(t, before)
}

// TestChaosZeroFaultByteIdentity: installing the full resilience stack
// with every fault rate at zero must not change a single byte of training
// — same weights, same generated queries as the bare environment. The
// fault-tolerance layer is free when nothing fails.
func TestChaosZeroFaultByteIdentity(t *testing.T) {
	constraint := RangeConstraint(Cardinality, 1, 500)
	run := func(wrap bool) (uint32, []string) {
		env := testEnv(t)
		var met *resilience.Metrics
		if wrap {
			_, met = injectFaults(env, faultinject.Config{Seed: 5})
		}
		cfg := fastConfig()
		cfg.Seed = 9
		cfg.Workers = 2
		tr := NewTrainer(env, constraint, cfg)
		tr.Train(2, 16)
		if wrap && met.Retries.Load() != 0 {
			t.Fatalf("zero-rate injector caused %d retries", met.Retries.Load())
		}
		var sqls []string
		for _, g := range tr.Generate(20) {
			sqls = append(sqls, g.SQL)
		}
		sum := nn.ChecksumParams(append(tr.Actor().Params(), tr.Critic().Params()...))
		return sum, sqls
	}

	rawSum, rawSQL := run(false)
	wrapSum, wrapSQL := run(true)
	if rawSum != wrapSum {
		t.Errorf("weights diverged under a zero-fault resilience stack: %08x vs %08x", rawSum, wrapSum)
	}
	for i := range rawSQL {
		if rawSQL[i] != wrapSQL[i] {
			t.Fatalf("generated query %d diverged:\n raw:  %s\n wrap: %s", i, rawSQL[i], wrapSQL[i])
		}
	}
}

// TestChaosSystematicFailureSurfaces: when every episode dies (panic rate
// 1), the refill budget must run out and surface a *QuarantineError
// instead of looping forever or returning a short batch.
func TestChaosSystematicFailureSurfaces(t *testing.T) {
	env := testEnv(t)
	inj := faultinject.New(faultinject.Config{Seed: 3, PanicRate: 1})
	env.SetBackend(faultinject.NewEstimator(env.Est, inj))

	cfg := fastConfig()
	cfg.Workers = 2
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg)

	batch, err := tr.SampleBatchContext(context.Background(), tr.Actor(), tr.Actor().BOS(), 8, true, true)
	if batch != nil {
		t.Fatal("systematic failure returned a batch")
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QuarantineError, got %v", err)
	}
	if qe.Want != 8 || qe.Quarantined <= 8 {
		t.Errorf("quarantine error under-reports: %+v", qe)
	}
	if tr.Quarantined() == 0 {
		t.Error("quarantine counter not advanced")
	}
}

// TestChaosWatchdogRecoversFromNaNFlood: with every estimate NaN-poisoned
// the watchdog must discard every update without corrupting the weights,
// and training must resume normally once the backend heals.
func TestChaosWatchdogRecoversFromNaNFlood(t *testing.T) {
	env := testEnv(t)
	inj := faultinject.New(faultinject.Config{Seed: 13, NaNRate: 1})
	env.SetBackend(faultinject.NewEstimator(env.Est, inj))

	cfg := fastConfig()
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg)
	tr.TrainEpoch(16)
	if tr.WatchdogTrips() == 0 {
		t.Fatal("all-NaN feedback never tripped the watchdog")
	}
	if !nn.ParamsFinite(tr.Actor().Params()) || !nn.ParamsFinite(tr.Critic().Params()) {
		t.Fatal("weights went non-finite despite the watchdog")
	}

	// Heal the backend: training proceeds from intact weights. The cache
	// holds no poison — NaN estimates are never memoized.
	env.SetBackend(env.Est)
	trips := tr.WatchdogTrips()
	tr.TrainEpoch(16)
	if got := tr.WatchdogTrips(); got != trips {
		t.Errorf("watchdog tripped %d more times on a healthy backend", got-trips)
	}
	if !nn.ParamsFinite(tr.Actor().Params()) || !nn.ParamsFinite(tr.Critic().Params()) {
		t.Fatal("weights non-finite after recovery")
	}
}

// TestChaosWatchdogDisabled: MaxGradNorm < 0 switches the watchdog off;
// the plain optimizer path must still train.
func TestChaosWatchdogDisabled(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.MaxGradNorm = -1
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg)
	tr.TrainEpoch(8)
	if tr.WatchdogTrips() != 0 {
		t.Errorf("disabled watchdog recorded %d trips", tr.WatchdogTrips())
	}
}

// TestChaosCancellationUnderFaults: cancelling mid-epoch while faults fly
// must still drain the worker pool and return the interruption, not a
// fault error.
func TestChaosCancellationUnderFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	env := testEnv(t)
	injectFaults(env, faultinject.Config{Seed: 21, ErrorRate: 0.1})

	cfg := fastConfig()
	cfg.Workers = 4
	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.TrainContext(ctx, 2, 16); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitGoroutines(t, before)
}

// TestInvariantErrorQuarantine exercises the InvariantError path directly
// through sampleEpisodeSafe's contract: an injected panic mid-rollout is
// converted to a typed, trace-carrying quarantine error, and the rollout
// workspace is replaced rather than reused.
func TestInvariantErrorQuarantine(t *testing.T) {
	env := testEnv(t)
	inj := faultinject.New(faultinject.Config{Seed: 2, PanicOnCall: 1})
	env.SetBackend(faultinject.NewEstimator(env.Est, inj))

	tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), fastConfig())
	tr.compute()
	run := &episodeRun{ws: tr.getRolloutWS()}
	wsBefore := run.ws
	p := episodeParams{ctx: context.Background(), actor: tr.Actor(),
		startIn: tr.Actor().BOS(), withCritic: true, train: true}
	traj, err := tr.sampleEpisodeSafe(p, rand.New(rand.NewSource(1)), run)
	if traj != nil {
		t.Fatal("panicked episode returned a trajectory")
	}
	var pe *EpisodePanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *EpisodePanicError, got %v", err)
	}
	if len(pe.Trace) == 0 {
		t.Error("panic error carries no token trace")
	}
	if run.ws == wsBefore {
		t.Error("poisoned workspace was not replaced after the panic")
	}
}

// TestChaosFleetShardFailureRefills is the fleet-scale acceptance run of
// the refill protocol: a 3-shard fleet trains with ~5% transient
// estimator faults everywhere, one shard whose replica backend panics on
// every episode (systematic failure — its every epoch dies mid-sampling),
// and one shard flooded with NaN estimates. The fleet must complete the
// full run on the survivors, refill the dead shard from the last-good
// rl.Store checkpoint each epoch, keep every weight finite and
// synchronized, and leak no goroutines.
func TestChaosFleetShardFailureRefills(t *testing.T) {
	before := runtime.NumGoroutine()
	env := testEnv(t)
	// Fleet-wide transient faults; each replica shares the stack (Clone
	// copies the decorated backend) so retries heal them on every shard.
	injectFaults(env, faultinject.Config{Seed: 7, ErrorRate: 0.05})

	cfg := fastConfig()
	cfg.Seed = 11
	cfg.Workers = 2
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg, 3)
	store, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetStore(store)

	// Shard 1: systematic mid-episode panics — every epoch it runs fails
	// with a *QuarantineError and the fleet refills it at the barrier.
	bad := s.Shard(1).Env
	bad.SetBackend(faultinject.NewEstimator(bad.Est,
		faultinject.New(faultinject.Config{Seed: 3, PanicRate: 1})))
	// Shard 2: poisoned estimates — the divergence watchdog discards its
	// updates but the shard itself stays in the fleet.
	poisoned := s.Shard(2).Env
	poisoned.SetBackend(faultinject.NewEstimator(poisoned.Est,
		faultinject.New(faultinject.Config{Seed: 5, NaNRate: 1})))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	trace, err := s.TrainContext(ctx, 3, 24)
	if err != nil {
		t.Fatalf("fleet training under fault injection failed: %v", err)
	}
	if len(trace) != 3 {
		t.Fatalf("completed %d fleet epochs, want 3", len(trace))
	}
	// Shard 1 died and was refilled every epoch. Epoch 1's refill drains
	// the then-empty store and falls back to the in-memory snapshot;
	// epochs 2 and 3 restore the checkpoint rotated by the previous
	// all-reduce.
	if got := s.Refills(); got < 3 {
		t.Errorf("refills = %d, want >= 3 (one per epoch for the dead shard)", got)
	}

	st := s.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded despite fleet-wide transient faults")
	}
	if st.Quarantined == 0 {
		t.Error("systematically panicking shard recorded no quarantines")
	}
	if st.WatchdogTrips == 0 {
		t.Error("NaN-flooded shard never tripped the divergence watchdog")
	}
	if st.ShardRefills != s.Refills() {
		t.Errorf("Stats().ShardRefills = %d, Refills() = %d", st.ShardRefills, s.Refills())
	}

	// Every shard ends finite and synchronized on the broadcast consensus.
	want := nn.ChecksumParams(append(s.Shard(0).Actor().Params(), s.Shard(0).Critic().Params()...))
	for i := 0; i < s.NumShards(); i++ {
		tr := s.Shard(i)
		if !nn.ParamsFinite(tr.Actor().Params()) || !nn.ParamsFinite(tr.Critic().Params()) {
			t.Errorf("shard %d weights non-finite after chaos training", i)
		}
		got := nn.ChecksumParams(append(tr.Actor().Params(), tr.Critic().Params()...))
		if got != want {
			t.Errorf("shard %d desynchronized after chaos training: %08x vs %08x", i, got, want)
		}
	}

	// The refill path restores the durable checkpoint directly: scribble
	// over the dead shard's weights and refill — the store's consensus
	// comes back.
	s.Shard(1).Actor().Params()[0].Val.Data[0] = 99
	refillsBefore := s.Refills()
	s.refillShard(1)
	if s.Refills() != refillsBefore+1 {
		t.Error("refillShard did not advance the refill counter")
	}
	if got := nn.ChecksumParams(append(s.Shard(1).Actor().Params(), s.Shard(1).Critic().Params()...)); got != want {
		t.Errorf("store-backed refill restored %08x, want the checkpointed consensus %08x", got, want)
	}

	// The healthy shard still generates; the fleet survived the chaos.
	for _, g := range s.Generate(5) {
		if g.SQL == "" {
			t.Fatal("post-chaos fleet generation produced an empty statement")
		}
	}
	waitGoroutines(t, before)
}

// TestChaosFleetAllShardsFail: when every shard's epoch dies the fleet
// must surface the failure instead of refilling forever.
func TestChaosFleetAllShardsFail(t *testing.T) {
	before := runtime.NumGoroutine()
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Workers = 2
	s := NewShardedTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg, 2)
	for i := 0; i < s.NumShards(); i++ {
		senv := s.Shard(i).Env
		senv.SetBackend(faultinject.NewEstimator(senv.Est,
			faultinject.New(faultinject.Config{Seed: int64(i + 1), PanicRate: 1})))
	}
	_, err := s.TrainContext(context.Background(), 2, 16)
	if err == nil {
		t.Fatal("fleet with every shard dead reported success")
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Errorf("want the shard *QuarantineError as the cause, got %v", err)
	}
	waitGoroutines(t, before)
}
