package rl

import (
	"testing"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqlast"
)

// mustParse parses SQL for test fixtures.
func mustParse(t *testing.T, sql string) sqlast.Statement {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
