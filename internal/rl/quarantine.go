package rl

import (
	"fmt"
	"math/rand"

	"learnedsqlgen/internal/nn"
)

// This file is the rollout quarantine: the machinery that turns a
// poisoned episode — a worker panic (e.g. an injected backend fault) or
// an internal invariant violation — into a counted, logged, recoverable
// event instead of a crashed training run. The batch contract is
// preserved: SampleBatchContext still returns exactly n trajectories,
// refilling quarantined slots with fresh episodes, so callers that index
// batch[i] (the meta pre-trainer, the conformance oracle's producers)
// never observe a hole.

// InvariantError reports an internal contradiction detected during an
// episode: the FSM rejected an action that its own Valid() mask offered.
// Under the default build it is quarantined; under -tags rldebug it
// panics at the point of failure instead.
type InvariantError struct {
	Cause error // the FSM's rejection
	Trace []int // token ids applied before the violation
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("rl: FSM rejected an unmasked action after trace %v: %v", e.Trace, e.Cause)
}

func (e *InvariantError) Unwrap() error { return e.Cause }

// EpisodePanicError wraps a panic recovered during one episode rollout.
// The token trace identifies how far the episode got before dying.
type EpisodePanicError struct {
	Value any   // the recovered panic value
	Trace []int // token ids applied before the panic
}

func (e *EpisodePanicError) Error() string {
	return fmt.Sprintf("rl: episode panicked after trace %v: %v", e.Trace, e.Value)
}

// QuarantineError aborts a batch whose refill budget ran out: more than n
// extra episodes were quarantined while filling an n-episode batch, which
// means the failure is systematic, not sporadic.
type QuarantineError struct {
	Want        int   // requested batch size
	Quarantined int   // episodes quarantined while trying to fill it
	Last        error // the most recent quarantined episode's error
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("rl: quarantined %d episodes while filling a batch of %d (refill budget exhausted): %v",
		e.Quarantined, e.Want, e.Last)
}

func (e *QuarantineError) Unwrap() error { return e.Last }

// quarantineLogCap bounds the in-memory record of recent quarantines.
const quarantineLogCap = 16

// noteQuarantine counts a quarantined episode and records its error in
// the bounded log.
func (t *Trainer) noteQuarantine(err error) {
	t.qMu.Lock()
	t.quarantined++
	if len(t.qLog) == quarantineLogCap {
		copy(t.qLog, t.qLog[1:])
		t.qLog = t.qLog[:quarantineLogCap-1]
	}
	t.qLog = append(t.qLog, err)
	t.qMu.Unlock()
}

// QuarantineLog returns the most recent quarantined-episode errors
// (oldest first, bounded), each an *EpisodePanicError or *InvariantError
// carrying the token trace of the dead episode.
func (t *Trainer) QuarantineLog() []error {
	t.qMu.Lock()
	defer t.qMu.Unlock()
	out := make([]error, len(t.qLog))
	copy(out, t.qLog)
	return out
}

// Quarantined returns how many episodes have been quarantined over the
// trainer's lifetime.
func (t *Trainer) Quarantined() uint64 {
	t.qMu.Lock()
	defer t.qMu.Unlock()
	return t.quarantined
}

// episodeRun carries one guarded rollout attempt's mutable state: the
// worker's workspace (replaced if a panic poisons it) and the token trace
// for quarantine reports.
type episodeRun struct {
	ws    *nn.Workspace
	trace []int
}

// sampleEpisodeSafe runs one episode body behind panic recovery. On
// success err is nil. A panic anywhere in the episode — the compute path,
// the FSM walk, or a fault-injected backend — is recovered into an
// *EpisodePanicError; pooled buffers held by the partial trajectory are
// abandoned to the garbage collector and run.ws is replaced, because a
// workspace interrupted mid-episode may hold inconsistent scratch state.
// Under -tags rldebug recovery is disabled and panics propagate.
func (t *Trainer) sampleEpisodeSafe(p episodeParams, rng *rand.Rand, run *episodeRun) (traj *Trajectory, err error) {
	run.trace = run.trace[:0]
	if !debugInvariants {
		defer func() {
			if r := recover(); r != nil {
				traj = nil
				err = &EpisodePanicError{Value: r, Trace: append([]int(nil), run.trace...)}
				run.ws = nn.NewWorkspace(t.pool)
			}
		}()
	}
	return t.sampleEpisodeRNG(p, rng, run)
}
