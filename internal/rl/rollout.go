package rl

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"learnedsqlgen/internal/nn"
)

// FanSeed derives stream n's RNG seed from a base seed with a splitmix64
// finalizer, giving every stream an independent, deterministic random
// source. The rollout engine fans per-episode streams out of the trainer
// seed this way — an episode's stream depends only on (seed, episode),
// not on which goroutine runs it, so rollouts are byte-identical for
// every Workers setting. The service layer reuses the same fan-out one
// level up: a session's per-request generation seeds derive from
// (session seed, request id), which is what makes a session's streams
// individually reproducible.
func FanSeed(seed int64, n uint64) int64 {
	return fanSeed(seed, n)
}

// fanSeed is FanSeed's implementation (kept unexported-call-cheap on the
// per-episode hot path).
func fanSeed(seed int64, ep uint64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + (ep+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// nextEpisodes reserves n consecutive episode indices and returns the
// first one.
func (t *Trainer) nextEpisodes(n int) uint64 {
	return atomic.AddUint64(&t.episodes, uint64(n)) - uint64(n)
}

// episodeRNG returns the deterministic random stream of episode ep.
func (t *Trainer) episodeRNG(ep uint64) *rand.Rand {
	return rand.New(rand.NewSource(fanSeed(t.Cfg.Seed, ep)))
}

// workers returns the effective rollout concurrency.
func (t *Trainer) workers() int {
	if t.Cfg.Workers < 2 {
		return 1
	}
	return t.Cfg.Workers
}

// SampleBatch rolls out n episodes with the given actor and returns their
// trajectories in episode order. With Cfg.Workers > 1 the episodes run on
// a pool of goroutines, each owning its own FSM builder, RNG stream and
// compute workspace; the actor's (and critic's) weights are only read
// during rollout, so the caller must not apply gradient updates
// concurrently. Results are independent of the worker count.
//
// Inference batches (train and withCritic both false) share a per-batch
// prefix-state trie: the actor's recurrent state and action distribution
// are memoized per token prefix and reused across the batch's episodes.
// The trie dies with the batch, so it can never observe two different
// weight versions. An episode's RNG draws are identical on the hit and
// miss paths, which keeps generated queries byte-identical whether the
// cache is enabled, disabled, or shared among any number of workers.
func (t *Trainer) SampleBatch(actor *nn.SeqNet, startIn, n int, withCritic, train bool) []*Trajectory {
	// context.Background() can never cancel; the only possible error is a
	// *QuarantineError, which requires > n quarantined episodes in one
	// batch — systematic failure, surfaced to ctx-less callers as a nil
	// batch.
	out, _ := t.SampleBatchContext(context.Background(), actor, startIn, n, withCritic, train)
	return out
}

// SampleBatchContext is SampleBatch with cancellation. Workers observe ctx
// at every episode boundary: once ctx is done no new episode starts, the
// pool drains within one in-flight episode per worker, the partial batch's
// pooled resources are recycled, and the call returns nil with ctx's cause
// wrapped. An uncancelled ctx leaves behaviour — including the episode
// counter and every RNG stream — byte-identical to SampleBatch.
func (t *Trainer) SampleBatchContext(ctx context.Context, actor *nn.SeqNet, startIn, n int, withCritic, train bool) ([]*Trajectory, error) {
	t.compute()
	if ctx.Err() != nil {
		return nil, fmt.Errorf("rl: rollout interrupted: %w", cancelCause(ctx))
	}
	start := time.Now()
	base := t.nextEpisodes(n)
	out := make([]*Trajectory, n)
	var trie *prefixTrie
	if !train && !withCritic && t.Cfg.PrefixCacheSize >= 0 {
		trie = newPrefixTrie(t.prefixCap(), actor.Hidden)
	}
	// The int8 snapshot shares the trie's lifetime: both are pure
	// functions of the current weights and are rebuilt per batch, so
	// neither can straddle a gradient update. Only the buffers are
	// recycled across batches (the px table is vocabulary-sized) — safe
	// because the previous batch's workers have all joined, and
	// SampleBatch is single-caller like the rest of the trainer.
	var quant *nn.QuantizedSeqNet
	if !train && !withCritic && t.Cfg.QuantizedInference {
		t.quantSnap = nn.QuantizeSeqNetInto(t.quantSnap, actor)
		quant = t.quantSnap
	}
	p := episodeParams{ctx: ctx, actor: actor, startIn: startIn,
		withCritic: withCritic, train: train, trie: trie, quant: quant}
	var holes uint64 // episodes quarantined this batch, accessed atomically
	w := t.workers()
	if w > n {
		w = n
	}
	if w == 1 {
		run := &episodeRun{ws: t.getRolloutWS()}
		for i := 0; i < n && ctx.Err() == nil; i++ {
			traj, err := t.sampleEpisodeSafe(p, t.episodeRNG(base+uint64(i)), run)
			if err != nil {
				t.noteQuarantine(err)
				holes++
				continue
			}
			out[i] = traj
		}
		t.putRolloutWS(run.ws)
	} else {
		var wg sync.WaitGroup
		next := int64(-1)
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				run := &episodeRun{ws: t.getRolloutWS()}
				defer func() { t.putRolloutWS(run.ws) }()
				for ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1))
					if i >= n {
						return
					}
					traj, err := t.sampleEpisodeSafe(p, t.episodeRNG(base+uint64(i)), run)
					if err != nil {
						t.noteQuarantine(err)
						atomic.AddUint64(&holes, 1)
						continue
					}
					out[i] = traj
				}
			}()
		}
		wg.Wait()
	}
	if trie != nil {
		atomic.AddUint64(&t.prefixHits, atomic.LoadUint64(&trie.hits))
		atomic.AddUint64(&t.prefixMisses, atomic.LoadUint64(&trie.misses))
	}
	if ctx.Err() == nil && holes > 0 {
		if err := t.refill(p, out, int(holes)); err != nil {
			atomic.AddInt64(&t.rolloutNanos, int64(time.Since(start)))
			return nil, err
		}
	}
	atomic.AddInt64(&t.rolloutNanos, int64(time.Since(start)))
	if ctx.Err() != nil {
		// The partial batch is never returned: recycle whatever episodes
		// completed so the pool stays balanced, and surface why we stopped.
		t.ReleaseBatch(out)
		return nil, fmt.Errorf("rl: rollout interrupted: %w", cancelCause(ctx))
	}
	return out, nil
}

// refill replaces quarantined batch slots with fresh episodes so the
// batch contract (exactly n trajectories, in slot order) holds for
// callers that index into it. Replacement episodes draw new episode
// indices — their RNG streams are fresh, never a replay of the dead
// episode's — and run serially: quarantine is the rare path, and a
// deterministic refill order keeps the episode counter's advance
// reproducible for a given fault pattern. The budget caps total extra
// episodes at len(out); systematic failure surfaces as a
// *QuarantineError instead of an unbounded loop.
func (t *Trainer) refill(p episodeParams, out []*Trajectory, quarantined int) error {
	budget := len(out)
	run := &episodeRun{ws: t.getRolloutWS()}
	defer func() { t.putRolloutWS(run.ws) }()
	var lastErr error
	for i := range out {
		for out[i] == nil {
			if p.ctx.Err() != nil {
				return nil // the caller's ctx check reports the interruption
			}
			if budget == 0 {
				t.ReleaseBatch(out)
				if lastErr == nil {
					if log := t.QuarantineLog(); len(log) > 0 {
						lastErr = log[len(log)-1]
					}
				}
				return &QuarantineError{Want: len(out), Quarantined: quarantined, Last: lastErr}
			}
			budget--
			traj, err := t.sampleEpisodeSafe(p, t.episodeRNG(t.nextEpisodes(1)), run)
			if err != nil {
				t.noteQuarantine(err)
				quarantined++
				lastErr = err
				continue
			}
			out[i] = traj
		}
	}
	return nil
}

// TrainStats aggregates a trainer's lifetime rollout-throughput counters:
// how many episodes it sampled, how long rollouts took, how much estimator
// work the environment's memoizing cache absorbed, and how many actor
// steps the inference prefix-state cache skipped. The estimator counters
// come from the shared Env, so trainers sharing one environment (e.g. the
// bench harness) see combined cache traffic. Prefix hit/miss totals are
// timing-dependent across worker counts (workers race to insert shared
// prefixes); the generated queries are identical regardless.
type TrainStats struct {
	Episodes       uint64  // episodes sampled (training + generation)
	RolloutSeconds float64 // wall-clock spent inside SampleBatch
	EpisodesPerSec float64 // Episodes / RolloutSeconds
	EstimatorCalls uint64  // underlying estimator runs (cache misses, or all calls when uncached)
	CacheHits      uint64
	CacheMisses    uint64
	CacheHitRate   float64 // hits / (hits + misses)
	PrefixHits     uint64  // inference actor steps served from the prefix trie
	PrefixMisses   uint64  // inference actor steps computed (trie enabled)
	PrefixHitRate  float64 // hits / (hits + misses)

	// Resilience counters (zero when no resilience wrapper is installed —
	// see Env.Res): backend retries after transient faults, operations
	// that failed every retry, and circuit-breaker open transitions.
	Retries      uint64
	Exhausted    uint64
	BreakerOpens uint64
	// Quarantined counts episodes discarded after a panic or invariant
	// violation; WatchdogTrips counts batches the divergence watchdog
	// discarded or rolled back.
	Quarantined   uint64
	WatchdogTrips uint64
	// ShardRefills counts fleet shards restored from the last-good
	// checkpoint after a crashed or quarantined epoch (always 0 for a
	// single-process Trainer; see ShardedTrainer).
	ShardRefills uint64
}

// Stats snapshots the trainer's throughput counters.
func (t *Trainer) Stats() TrainStats {
	s := TrainStats{
		Episodes:       atomic.LoadUint64(&t.episodes),
		RolloutSeconds: float64(atomic.LoadInt64(&t.rolloutNanos)) / float64(time.Second),
		PrefixHits:     atomic.LoadUint64(&t.prefixHits),
		PrefixMisses:   atomic.LoadUint64(&t.prefixMisses),
	}
	if s.RolloutSeconds > 0 {
		s.EpisodesPerSec = float64(s.Episodes) / s.RolloutSeconds
	}
	if total := s.PrefixHits + s.PrefixMisses; total > 0 {
		s.PrefixHitRate = float64(s.PrefixHits) / float64(total)
	}
	cs := t.Env.CacheStats()
	s.CacheHits, s.CacheMisses = cs.Hits, cs.Misses
	s.CacheHitRate = cs.HitRate()
	if t.Env.Cache != nil {
		s.EstimatorCalls = cs.Misses
	} else {
		s.EstimatorCalls = t.Env.Measures()
	}
	s.Quarantined = t.Quarantined()
	s.WatchdogTrips = t.WatchdogTrips()
	if m := t.Env.Res; m != nil {
		s.Retries = m.Retries.Load()
		s.Exhausted = m.Exhausted.Load()
		s.BreakerOpens = m.BreakerOpens.Load()
	}
	return s
}
