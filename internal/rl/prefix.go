package rl

import (
	"sync"
	"sync/atomic"

	"learnedsqlgen/internal/nn"
)

// DefaultPrefixCacheSize bounds the actor prefix-state trie when
// Config.PrefixCacheSize is 0.
const DefaultPrefixCacheSize = 4096

// prefixNode is one trie node: the actor's recurrent state after consuming
// the input-token path from the root, plus the masked softmax distribution
// the actor emits at that point. Both are pure functions of (weights,
// prefix), so concurrent workers may insert the same node independently —
// the copies are bitwise identical and the first insert wins.
type prefixNode struct {
	children       map[int]*prefixNode
	h1, c1, h2, c2 []float64
	probs          []float64
}

// prefixTrie is the actor prefix-state cache of one SampleBatch call. It
// mirrors the estimator LRU one level up the stack: where that cache
// memoizes Measure(prefix), this one memoizes the actor's LSTM state and
// next-token distribution for a token prefix. Because the memoized value
// depends on the actor weights, the trie lives only between gradient
// updates — SampleBatch builds a fresh one per call, which discards every
// entry at the Adam step on the batch barrier.
//
// The trie is shared by all rollout workers of the batch. Lookups take the
// read lock; inserts take the write lock. Hit/miss totals are accumulated
// with atomics and drained into the trainer's counters at the barrier.
type prefixTrie struct {
	mu     sync.RWMutex
	root   prefixNode
	size   int
	cap    int
	hidden int

	hits   uint64
	misses uint64
}

func newPrefixTrie(capacity, hidden int) *prefixTrie {
	return &prefixTrie{cap: capacity, hidden: hidden}
}

// lookup returns parent's child along input token in, or nil.
func (tr *prefixTrie) lookup(parent *prefixNode, in int) *prefixNode {
	tr.mu.RLock()
	c := parent.children[in]
	tr.mu.RUnlock()
	return c
}

// insert records the post-step state of st and the step's action
// distribution as parent's child along token in. It returns the existing
// child if another worker got there first, or nil when the trie is full
// (the episode then continues without trie tracking).
func (tr *prefixTrie) insert(parent *prefixNode, in int, st *nn.SeqState, probs []float64) *prefixNode {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if c := parent.children[in]; c != nil {
		return c
	}
	if tr.size >= tr.cap {
		return nil
	}
	H := tr.hidden
	n := &prefixNode{
		h1:    make([]float64, H),
		c1:    make([]float64, H),
		h2:    make([]float64, H),
		c2:    make([]float64, H),
		probs: append([]float64(nil), probs...),
	}
	st.CopyRecurrentTo(n.h1, n.c1, n.h2, n.c2)
	if parent.children == nil {
		parent.children = make(map[int]*prefixNode)
	}
	parent.children[in] = n
	tr.size++
	return n
}

// restore loads the node's recurrent-state snapshot into st.
func (n *prefixNode) restore(st *nn.SeqState) {
	st.SetRecurrent(n.h1, n.c1, n.h2, n.c2)
}

// count adds an episode's local hit/miss tallies.
func (tr *prefixTrie) count(hits, misses uint64) {
	if hits > 0 {
		atomic.AddUint64(&tr.hits, hits)
	}
	if misses > 0 {
		atomic.AddUint64(&tr.misses, misses)
	}
}
