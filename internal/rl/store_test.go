package rl

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"learnedsqlgen/internal/nn"
)

// storeTrainer builds a small trainer with distinct weights per seed.
func storeTrainer(env *Env, seed int64) *Trainer {
	cfg := fastConfig()
	cfg.Seed = seed
	return NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg)
}

func trainerChecksum(t *Trainer) uint32 {
	return nn.ChecksumParams(append(t.actor.Params(), t.critic.Params()...))
}

// corruptions for the fallback matrix: each returns the damaged bytes.
func truncateBytes(b []byte) []byte { return b[:len(b)/2] }
func bitflipBytes(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)/2] ^= 0x10
	return out
}
func staleVersionBytes(b []byte) []byte {
	// The version field sits right after the 8-byte magic, little-endian.
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(out[8:12], 99)
	return out
}

func corruptFile(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRotationAndPrune: Save rotates sequence-numbered checkpoints,
// the manifest lists newest first, and files past the keep bound are
// pruned from disk.
func TestStoreRotationAndPrune(t *testing.T) {
	env := testEnv(t)
	tr := storeTrainer(env, 1)
	st, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		p, err := st.Save(tr)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Errorf("rotated-out checkpoint %s still on disk (err=%v)", paths[0], err)
	}
	for _, p := range paths[1:] {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("kept checkpoint %s missing: %v", p, err)
		}
	}
	manifest, err := os.ReadFile(filepath.Join(st.Dir(), "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(string(manifest))
	if len(lines) != 2 || lines[0] != filepath.Base(paths[2]) {
		t.Errorf("manifest wrong: %q", lines)
	}
	// Load restores the newest.
	fresh := storeTrainer(env, 2)
	p, err := st.Load(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if p != paths[2] {
		t.Errorf("loaded %s, want newest %s", p, paths[2])
	}
	if trainerChecksum(fresh) != trainerChecksum(tr) {
		t.Error("restored weights differ from saved weights")
	}
}

// TestStoreCorruptionFallbackMatrix damages the newer checkpoints in
// three distinct ways — truncation, a flipped bit, a stale format
// version — and demands Load degrade to the next older good entry each
// time, then report ErrNoCheckpoint once everything is damaged.
func TestStoreCorruptionFallbackMatrix(t *testing.T) {
	env := testEnv(t)
	st, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Three checkpoints with three distinct weight sets, oldest to newest.
	trainers := []*Trainer{storeTrainer(env, 10), storeTrainer(env, 11), storeTrainer(env, 12)}
	var paths []string
	for _, tr := range trainers {
		p, err := st.Save(tr)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	loadInto := func() (*Trainer, string, error) {
		fresh := storeTrainer(env, 99)
		p, err := st.Load(fresh)
		return fresh, p, err
	}

	// Newest truncated → falls back to the middle one.
	corruptFile(t, paths[2], truncateBytes)
	got, p, err := loadInto()
	if err != nil || p != paths[1] {
		t.Fatalf("after truncation: loaded %q err %v, want %q", p, err, paths[1])
	}
	if trainerChecksum(got) != trainerChecksum(trainers[1]) {
		t.Error("fallback restored the wrong weights")
	}

	// Middle bit-flipped too → falls back to the oldest.
	corruptFile(t, paths[1], bitflipBytes)
	got, p, err = loadInto()
	if err != nil || p != paths[0] {
		t.Fatalf("after bit flip: loaded %q err %v, want %q", p, err, paths[0])
	}
	if trainerChecksum(got) != trainerChecksum(trainers[0]) {
		t.Error("second fallback restored the wrong weights")
	}

	// Oldest stamped with an unsupported version → nothing loadable.
	corruptFile(t, paths[0], staleVersionBytes)
	if _, _, err = loadInto(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt store: want ErrNoCheckpoint, got %v", err)
	}
}

// TestStoreMissingEntryFallback: a manifest entry whose file vanished is
// skipped like a corrupt one.
func TestStoreMissingEntryFallback(t *testing.T) {
	env := testEnv(t)
	st, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	old := storeTrainer(env, 20)
	if _, err := st.Save(old); err != nil {
		t.Fatal(err)
	}
	newest := storeTrainer(env, 21)
	p2, err := st.Save(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(p2); err != nil {
		t.Fatal(err)
	}
	fresh := storeTrainer(env, 99)
	if _, err := st.Load(fresh); err != nil {
		t.Fatal(err)
	}
	if trainerChecksum(fresh) != trainerChecksum(old) {
		t.Error("missing-entry fallback restored the wrong weights")
	}
}

// TestStoreManifestlessScan: a directory of checkpoints without a
// MANIFEST (pre-Store files, or a lost manifest) is still loadable via
// the sequence-ordered directory scan.
func TestStoreManifestlessScan(t *testing.T) {
	env := testEnv(t)
	st, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	a, b := storeTrainer(env, 30), storeTrainer(env, 31)
	if _, err := st.Save(a); err != nil {
		t.Fatal(err)
	}
	p2, err := st.Save(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(st.Dir(), "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	fresh := storeTrainer(env, 99)
	p, err := st.Load(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if p != p2 {
		t.Errorf("scan fallback loaded %q, want newest %q", p, p2)
	}
	if trainerChecksum(fresh) != trainerChecksum(b) {
		t.Error("scan fallback restored the wrong weights")
	}
}

// TestStoreEmpty: loading from an empty store is ErrNoCheckpoint, and a
// reopened store keeps counting sequence numbers upward.
func TestStoreEmpty(t *testing.T) {
	env := testEnv(t)
	dir := t.TempDir()
	st, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(storeTrainer(env, 1)); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: want ErrNoCheckpoint, got %v", err)
	}
	p1, err := st.Save(storeTrainer(env, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Reopen: the next sequence number continues past the existing file.
	st2, err := NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := st2.Save(storeTrainer(env, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Errorf("reopened store reused sequence number: %q", p2)
	}
}

// TestStoreShapeMismatchFailsFast: a checkpoint from a differently shaped
// network is a real error, not a silent fallback — every older
// checkpoint would mismatch identically.
func TestStoreShapeMismatchFailsFast(t *testing.T) {
	env := testEnv(t)
	st, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(storeTrainer(env, 1)); err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Hidden = 16 // different architecture
	other := NewTrainer(env, RangeConstraint(Cardinality, 1, 1000), cfg)
	_, err = st.Load(other)
	if err == nil {
		t.Fatal("shape mismatch loaded successfully")
	}
	if errors.Is(err, ErrNoCheckpoint) || errors.Is(err, nn.ErrCorrupt) {
		t.Fatalf("shape mismatch misclassified as corruption/fallback: %v", err)
	}
}
