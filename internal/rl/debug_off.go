//go:build !rldebug

package rl

// debugInvariants selects the failure mode of internal invariant
// violations during episode rollout. In the default build they become
// typed errors routed through the batch quarantine, so one poisoned
// episode cannot take down a long training run. Build with -tags rldebug
// to make them panic instead (and to disable the rollout panic recovery
// entirely), which is what you want when debugging the FSM or the
// sampler itself.
const debugInvariants = false
