package rl

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"learnedsqlgen/internal/nn"
)

// ShardMode selects how fleet shards exchange weights.
type ShardMode uint8

const (
	// ShardSync (default) runs the shards in lockstep: every fleet epoch
	// splits its episode quota across the shards, each shard trains its
	// slice concurrently, and the epoch barrier all-reduces the weights by
	// parameter averaging and broadcasts the result. The fleet is
	// synchronized after every epoch, and a fixed seed replays the whole
	// run byte-identically regardless of scheduling.
	ShardSync ShardMode = iota
	// ShardAsync removes the epoch barrier: shards train their rounds at
	// their own pace and exchange weights with a parameter-server
	// goroutine that blends each shard's contribution into a running fleet
	// average. Throughput-oriented — stragglers never stall the fleet —
	// but the blend order depends on scheduling, so async runs are not
	// byte-replayable. Training drivers still return a deterministic-shape
	// stats trace (per-round, aggregated over shards after completion).
	ShardAsync
)

// ShardedTrainer scales the single-process Trainer out to a fleet of N
// data-parallel trainer shards. Every shard owns a replica environment
// (Env.Clone: shared dataset, statistics and backend stack, private
// estimator cache) and runs the ordinary worker-pool rollout loop; the
// shards exchange weights per epoch via synchronous all-reduce parameter
// averaging (or the async parameter-server mode, see ShardMode).
//
// Determinism mirrors the per-episode RNG fan-out one level up: shard i's
// episode streams derive from FanSeed(Cfg.Seed, i) — the shard id is the
// stream index — so a fleet run is a pure function of (seed, shards, mode)
// and replays byte-identically under ShardSync. With shards <= 1 every
// method delegates to a single embedded Trainer built verbatim from the
// configuration, so a one-shard fleet is byte-identical to today's
// Trainer by construction.
//
// Fault tolerance composes with the per-shard resilience stack: a shard
// whose epoch dies (systematic quarantine, poisoned backend) is refilled
// from the last-good checkpoint — the rl.Store installed via SetStore
// when available, the in-memory post-all-reduce snapshot otherwise — and
// rejoins the fleet at the next broadcast instead of losing the run. Only
// an epoch in which every shard fails surfaces an error.
type ShardedTrainer struct {
	Constraint Constraint
	Cfg        Config
	// Mode selects the weight-exchange protocol; mutate it only between
	// training calls.
	Mode ShardMode

	shards []*Trainer

	// store, when set, receives a durable fleet checkpoint after every
	// successful all-reduce and seeds shard refills.
	store   *Store
	refills uint64

	// Last-good fleet weights (post-broadcast; the initial weights before
	// the first epoch) — the in-memory refill source and the all-reduce
	// scratch. Single-goroutine at the epoch barrier.
	goodActor, goodCritic [][]float64
}

// NewShardedTrainer builds a fleet of `shards` trainer shards for the
// constraint. Every shard initializes its networks from cfg.Seed — the
// shards start weight-identical, which is what makes parameter averaging
// meaningful — while shard i's episode streams fan out from
// FanSeed(cfg.Seed, i). shards <= 1 builds the plain single-trainer form.
// cfg.Workers applies per shard, so the fleet rolls out up to
// shards × Workers episodes concurrently.
func NewShardedTrainer(env *Env, c Constraint, cfg Config, shards int) *ShardedTrainer {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedTrainer{Constraint: c, Cfg: cfg}
	for i := 0; i < shards; i++ {
		senv := env
		if i > 0 {
			senv = env.Clone()
		}
		tr := NewTrainer(senv, c, cfg)
		if shards > 1 {
			// Episode-stream fan-out only: the networks above were already
			// initialized from the base seed. The fleet drives budget and
			// progress callbacks itself, once per fleet epoch.
			tr.Cfg.Seed = FanSeed(cfg.Seed, uint64(i))
			tr.Cfg.TrainBudget = 0
			tr.Cfg.OnEpoch = nil
			// Large-batch linear LR scaling: averaging N shards' epochs is
			// one update from an N×-sized effective batch, so each shard
			// steps N× as hard for the average to make single-shard
			// progress per epoch. Pairs with weak-scaling episode budgets
			// (grow the per-epoch episode count with the fleet — see
			// TrainEpochContext); that is what buys the fleet its
			// fewer-epochs-to-target convergence.
			tr.actorOpt.LR *= float64(shards)
			tr.criticOpt.LR *= float64(shards)
		}
		s.shards = append(s.shards, tr)
	}
	if shards > 1 {
		s.snapshotGood()
	}
	return s
}

// NumShards reports the fleet size.
func (s *ShardedTrainer) NumShards() int { return len(s.shards) }

// Shard exposes shard i's trainer — read-only inspection (stats, weights)
// and test instrumentation (per-shard fault injection on its replica
// Env). Callers must not train a shard directly.
func (s *ShardedTrainer) Shard(i int) *Trainer { return s.shards[i] }

// SetStore installs the checkpoint store the fleet rotates its last-good
// weights through: every successful all-reduce saves one checkpoint, and
// a crashed or quarantined shard reloads from the newest loadable entry.
// With no store the fleet falls back to an in-memory last-good snapshot
// (refill still works; it just does not survive the process).
func (s *ShardedTrainer) SetStore(st *Store) { s.store = st }

// Refills counts shards restored from the last-good checkpoint after a
// failed epoch, over the fleet's lifetime.
func (s *ShardedTrainer) Refills() uint64 { return atomic.LoadUint64(&s.refills) }

// single reports the delegation case: a one-shard fleet is exactly the
// embedded Trainer.
func (s *ShardedTrainer) single() *Trainer {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return nil
}

// splitEpisodes spreads an epoch's episode quota across n shards as
// evenly as possible (the first total%n shards take one extra episode).
func splitEpisodes(total, n int) []int {
	out := make([]int, n)
	base, extra := total/n, total%n
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// snapshotGood records the current fleet weights (shard 0's; the fleet is
// synchronized whenever this runs) as the in-memory refill source.
func (s *ShardedTrainer) snapshotGood() {
	t := s.shards[0]
	s.goodActor = nn.SnapshotParams(s.goodActor, t.actor.Params())
	s.goodCritic = nn.SnapshotParams(s.goodCritic, t.critic.Params())
}

// noteGood refreshes the last-good checkpoint after a successful epoch:
// the in-memory snapshot always, plus a durable Store rotation when one
// is installed (best-effort: a full disk must not kill a healthy fleet —
// the in-memory snapshot still guards the run).
func (s *ShardedTrainer) noteGood() {
	s.snapshotGood()
	if s.store != nil {
		s.store.Save(s) //nolint:errcheck // best-effort durable rotation
	}
}

// refillShard restores a failed shard from the last-good checkpoint —
// Store first (proving durability), in-memory snapshot otherwise — and
// resets its optimizer moments, which were computed against the lost
// trajectory. The next broadcast re-synchronizes it with the fleet.
func (s *ShardedTrainer) refillShard(i int) {
	tr := s.shards[i]
	restored := false
	if s.store != nil {
		if _, err := s.store.Load(tr); err == nil {
			restored = true
		}
	}
	if !restored {
		nn.RestoreParams(tr.actor.Params(), s.goodActor)
		nn.RestoreParams(tr.critic.Params(), s.goodCritic)
	}
	nn.ResetMoments(tr.actor.Params())
	nn.ResetMoments(tr.critic.Params())
	tr.actorOpt.Reset()
	tr.criticOpt.Reset()
	atomic.AddUint64(&s.refills, 1)
}

// shardResult is one shard's epoch outcome.
type shardResult struct {
	stats EpochStats
	err   error
}

// TrainEpochContext runs one fleet epoch: the episode quota splits across
// the shards, every shard trains its slice concurrently on its replica
// environment, failed shards are refilled from the last-good checkpoint,
// and the barrier all-reduces the survivors' weights by parameter
// averaging and broadcasts the result to the whole fleet. The returned
// stats aggregate the surviving shards' episodes (episode-weighted
// means). The error is non-nil only when ctx ended the epoch or every
// shard failed.
func (s *ShardedTrainer) TrainEpochContext(ctx context.Context, episodes int) (EpochStats, error) {
	if t := s.single(); t != nil {
		return t.TrainEpochContext(ctx, episodes)
	}
	quotas := splitEpisodes(episodes, len(s.shards))
	results := make([]shardResult, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].stats, results[i].err = s.shards[i].TrainEpochContext(ctx, quotas[i])
		}(i)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return EpochStats{}, fmt.Errorf("rl: fleet epoch interrupted: %w", cancelCause(ctx))
	}

	agg := EpochStats{}
	var survivors []*Trainer
	var lastErr error
	for i, r := range results {
		if r.err != nil {
			lastErr = r.err
			s.refillShard(i)
			continue
		}
		survivors = append(survivors, s.shards[i])
		agg.Episodes += r.stats.Episodes
		agg.AvgReward += r.stats.AvgReward * float64(r.stats.Episodes)
		agg.SatisfiedRate += r.stats.SatisfiedRate * float64(r.stats.Episodes)
	}
	if len(survivors) == 0 {
		return EpochStats{}, fmt.Errorf("rl: every fleet shard failed the epoch: %w", lastErr)
	}
	if agg.Episodes > 0 {
		agg.AvgReward /= float64(agg.Episodes)
		agg.SatisfiedRate /= float64(agg.Episodes)
	}
	s.allReduce(survivors)
	s.noteGood()
	return agg, nil
}

// TrainEpoch is TrainEpochContext without cancellation.
func (s *ShardedTrainer) TrainEpoch(episodes int) EpochStats {
	st, _ := s.TrainEpochContext(context.Background(), episodes)
	return st
}

// fleetOnEpoch invokes the fleet-level progress callback.
func (s *ShardedTrainer) fleetOnEpoch(epochs int, st EpochStats) error {
	if s.Cfg.OnEpoch == nil {
		return nil
	}
	if err := s.Cfg.OnEpoch(st); err != nil {
		return &EpochAbortError{Epoch: epochs, Err: err}
	}
	return nil
}

// TrainContext runs fleet epochs under ctx, Config.TrainBudget and
// Config.OnEpoch, with the trace and error semantics of
// Trainer.TrainContext. Under ShardAsync the epochs become per-shard
// rounds against the parameter server (see ShardMode).
func (s *ShardedTrainer) TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]EpochStats, error) {
	if t := s.single(); t != nil {
		return t.TrainContext(ctx, epochs, episodesPerEpoch)
	}
	tctx, cancel := budgetCtx(ctx, s.Cfg)
	defer cancel()
	if s.Mode == ShardAsync {
		return s.trainAsync(tctx, epochs, episodesPerEpoch)
	}
	out := make([]EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		st, err := s.TrainEpochContext(tctx, episodesPerEpoch)
		if err != nil {
			if cause := cancelCause(tctx); cause != nil {
				return out, trainStopErr(len(out), cause)
			}
			return out, trainStopErr(len(out), err)
		}
		out = append(out, st)
		if err := s.fleetOnEpoch(len(out), st); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Train is TrainContext without cancellation.
func (s *ShardedTrainer) Train(epochs, episodesPerEpoch int) []EpochStats {
	out, _ := s.TrainContext(context.Background(), epochs, episodesPerEpoch)
	return out
}

// psExchange is one shard's round trip with the parameter server: the
// shard snapshots its weights into the buffers, the server blends them
// into (for a push) or overwrites them with (for a pull, used by refill)
// the fleet average, and the shard restores the buffers into its
// networks after done closes.
type psExchange struct {
	actor, critic [][]float64
	push          bool
	done          chan struct{}
}

// trainAsync is the ShardAsync training driver: a parameter-server
// goroutine owns the fleet weights and every shard trains its rounds at
// its own pace, blending its weights into the server's after each local
// epoch (θ ← (1−α)θ + α·θ_shard, α = 1/shards) and adopting the blend.
// No barrier means stragglers never stall the fleet, at the cost of
// byte-replayability: the blend order is whatever the scheduler made it.
// A shard whose round fails pulls the server's current blend instead of
// a checkpoint (the server IS the fleet's live consensus) and counts a
// refill. The trace aggregates round r across shards after the fleet
// joins, and the fleet-level OnEpoch callback runs post-hoc over that
// aggregated trace — an abort truncates the trace but cannot stop
// already-finished work.
func (s *ShardedTrainer) trainAsync(ctx context.Context, epochs, episodesPerEpoch int) ([]EpochStats, error) {
	n := len(s.shards)
	quotas := splitEpisodes(episodesPerEpoch, n)
	alpha := 1.0 / float64(n)

	reqs := make(chan *psExchange)
	// The fleet is synchronized on entry, so shard 0 holds the weights.
	// Snapshot before the shards start training — they mutate in place.
	srvActor := nn.SnapshotParams(nil, s.shards[0].actor.Params())
	srvCritic := nn.SnapshotParams(nil, s.shards[0].critic.Params())
	var srv sync.WaitGroup
	srv.Add(1)
	go func() {
		defer srv.Done()
		blend := func(dst, src [][]float64) {
			for i, d := range dst {
				for j := range d {
					d[j] = (1-alpha)*d[j] + alpha*src[i][j]
				}
			}
		}
		copyInto := func(dst, src [][]float64) {
			for i, d := range dst {
				copy(d, src[i])
			}
		}
		for req := range reqs {
			if req.push {
				blend(srvActor, req.actor)
				blend(srvCritic, req.critic)
			}
			copyInto(req.actor, srvActor)
			copyInto(req.critic, srvCritic)
			close(req.done)
		}
		// Park the final blend in the last-good buffers for the post-join
		// broadcast.
		s.goodActor, s.goodCritic = srvActor, srvCritic
	}()

	traces := make([][]EpochStats, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := s.shards[i]
			ex := &psExchange{}
			trace := make([]EpochStats, 0, epochs)
			for r := 0; r < epochs && ctx.Err() == nil; r++ {
				st, err := tr.TrainEpochContext(ctx, quotas[i])
				if ctx.Err() != nil {
					break
				}
				ex.actor = nn.SnapshotParams(ex.actor, tr.actor.Params())
				ex.critic = nn.SnapshotParams(ex.critic, tr.critic.Params())
				if err != nil {
					// Failed round: adopt the server's live consensus and
					// retry the next round from there.
					ex.push = false
					atomic.AddUint64(&s.refills, 1)
				} else {
					ex.push = true
					trace = append(trace, st)
				}
				ex.done = make(chan struct{})
				reqs <- ex
				<-ex.done
				nn.RestoreParams(tr.actor.Params(), ex.actor)
				nn.RestoreParams(tr.critic.Params(), ex.critic)
				if !ex.push {
					nn.ResetMoments(tr.actor.Params())
					nn.ResetMoments(tr.critic.Params())
					tr.actorOpt.Reset()
					tr.criticOpt.Reset()
				}
			}
			traces[i] = trace
		}(i)
	}
	wg.Wait()
	close(reqs)
	srv.Wait()

	// Everyone adopts the final blend; snapshotGood is implicit (the blend
	// already lives in the last-good buffers).
	for _, tr := range s.shards {
		nn.RestoreParams(tr.actor.Params(), s.goodActor)
		nn.RestoreParams(tr.critic.Params(), s.goodCritic)
	}
	if s.store != nil {
		s.store.Save(s) //nolint:errcheck // best-effort durable rotation
	}

	rounds := 0
	for _, tr := range traces {
		if len(tr) > rounds {
			rounds = len(tr)
		}
	}
	out := make([]EpochStats, 0, rounds)
	for r := 0; r < rounds; r++ {
		agg := EpochStats{}
		for _, tr := range traces {
			if r >= len(tr) {
				continue
			}
			agg.Episodes += tr[r].Episodes
			agg.AvgReward += tr[r].AvgReward * float64(tr[r].Episodes)
			agg.SatisfiedRate += tr[r].SatisfiedRate * float64(tr[r].Episodes)
		}
		if agg.Episodes > 0 {
			agg.AvgReward /= float64(agg.Episodes)
			agg.SatisfiedRate /= float64(agg.Episodes)
		}
		out = append(out, agg)
		if err := s.fleetOnEpoch(len(out), agg); err != nil {
			return out, err
		}
	}
	if cause := cancelCause(ctx); cause != nil {
		return out, trainStopErr(len(out), cause)
	}
	return out, nil
}

// TrainUntilContext trains until the fleet's per-epoch satisfied rate
// reaches target on `patience` consecutive epochs, or maxEpochs elapse —
// Trainer.TrainUntilContext at fleet scale.
func (s *ShardedTrainer) TrainUntilContext(ctx context.Context, target float64, patience, maxEpochs, episodesPerEpoch int) ([]EpochStats, error) {
	if t := s.single(); t != nil {
		return t.TrainUntilContext(ctx, target, patience, maxEpochs, episodesPerEpoch)
	}
	if patience < 1 {
		patience = 1
	}
	tctx, cancel := budgetCtx(ctx, s.Cfg)
	defer cancel()
	var out []EpochStats
	streak := 0
	for i := 0; i < maxEpochs; i++ {
		st, err := s.TrainEpochContext(tctx, episodesPerEpoch)
		if err != nil {
			if cause := cancelCause(tctx); cause != nil {
				return out, trainStopErr(len(out), cause)
			}
			return out, trainStopErr(len(out), err)
		}
		out = append(out, st)
		if err := s.fleetOnEpoch(len(out), st); err != nil {
			return out, err
		}
		if st.SatisfiedRate >= target {
			streak++
			if streak >= patience {
				break
			}
		} else {
			streak = 0
		}
	}
	return out, nil
}

// TrainUntil is TrainUntilContext without cancellation.
func (s *ShardedTrainer) TrainUntil(target float64, patience, maxEpochs, episodesPerEpoch int) []EpochStats {
	out, _ := s.TrainUntilContext(context.Background(), target, patience, maxEpochs, episodesPerEpoch)
	return out
}

// GenerateContext samples n statements from the fleet policy. The fleet
// is weight-synchronized after every training call, so inference runs on
// shard 0 — its episode streams make generation a deterministic
// continuation of the shard-0 sequence, exactly like a single trainer.
func (s *ShardedTrainer) GenerateContext(ctx context.Context, n int) ([]Generated, error) {
	return s.shards[0].GenerateContext(ctx, n)
}

// Generate is GenerateContext without cancellation.
func (s *ShardedTrainer) Generate(n int) []Generated {
	out, _ := s.GenerateContext(context.Background(), n)
	return out
}

// GenerateSatisfiedContext samples until n satisfied statements or
// maxAttempts episodes, on shard 0 (see GenerateContext).
func (s *ShardedTrainer) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]Generated, int, error) {
	return s.shards[0].GenerateSatisfiedContext(ctx, n, maxAttempts)
}

// GenerateSatisfied is GenerateSatisfiedContext without cancellation.
func (s *ShardedTrainer) GenerateSatisfied(n, maxAttempts int) ([]Generated, int) {
	out, attempts, _ := s.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// Stats aggregates the fleet's lifetime throughput counters: episode,
// rollout-time, quarantine and watchdog counters sum across shards;
// cache counters sum across the replica environments; the refill counter
// is fleet-level.
func (s *ShardedTrainer) Stats() TrainStats {
	agg := TrainStats{}
	for _, tr := range s.shards {
		st := tr.Stats()
		agg.Episodes += st.Episodes
		agg.RolloutSeconds += st.RolloutSeconds
		agg.EstimatorCalls += st.EstimatorCalls
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.PrefixHits += st.PrefixHits
		agg.PrefixMisses += st.PrefixMisses
		agg.Quarantined += st.Quarantined
		agg.WatchdogTrips += st.WatchdogTrips
	}
	// Resilience counters are fleet-shared (one metrics sink behind every
	// replica): read them once instead of summing duplicates.
	if m := s.shards[0].Env.Res; m != nil {
		agg.Retries = m.Retries.Load()
		agg.Exhausted = m.Exhausted.Load()
		agg.BreakerOpens = m.BreakerOpens.Load()
	}
	if agg.RolloutSeconds > 0 {
		agg.EpisodesPerSec = float64(agg.Episodes) / agg.RolloutSeconds
	}
	if total := agg.CacheHits + agg.CacheMisses; total > 0 {
		agg.CacheHitRate = float64(agg.CacheHits) / float64(total)
	}
	if total := agg.PrefixHits + agg.PrefixMisses; total > 0 {
		agg.PrefixHitRate = float64(agg.PrefixHits) / float64(total)
	}
	agg.ShardRefills = s.Refills()
	return agg
}

// Save writes the fleet's weights (shard 0's — the fleet is synchronized
// between training calls) in the single-trainer checkpoint format, so
// fleet checkpoints and single-trainer checkpoints interchange freely.
func (s *ShardedTrainer) Save(w io.Writer) error { return s.shards[0].Save(w) }

// Load restores weights written by Save (or by a single Trainer) into
// every shard, re-synchronizing the fleet.
func (s *ShardedTrainer) Load(r io.Reader) error {
	if err := s.shards[0].Load(r); err != nil {
		return err
	}
	s.broadcastFrom(s.shards[0])
	if len(s.shards) > 1 {
		s.snapshotGood()
	}
	return nil
}

// SaveFile writes the fleet checkpoint durably (see Trainer.SaveFile).
func (s *ShardedTrainer) SaveFile(path string) error { return s.shards[0].SaveFile(path) }

// LoadFile restores a checkpoint from path into every shard.
func (s *ShardedTrainer) LoadFile(path string) error {
	if err := s.shards[0].LoadFile(path); err != nil {
		return err
	}
	s.broadcastFrom(s.shards[0])
	if len(s.shards) > 1 {
		s.snapshotGood()
	}
	return nil
}
