package rl

import (
	"math/rand"
	"testing"

	"learnedsqlgen/internal/nn"
)

// TestQuantizedTraceEquality asserts that within the quantized inference
// path, generation stays deterministic and independent of the worker
// count and the prefix cache — the same invariants the float64 path
// certifies, just against a quantized reference run.
func TestQuantizedTraceEquality(t *testing.T) {
	env := testEnv(t)
	type run struct {
		prefix  int
		workers int
	}
	runs := []run{
		{prefix: -1, workers: 1}, // reference: cache off, serial
		{prefix: 0, workers: 1},  // default-sized cache, serial
		{prefix: 0, workers: 4},  // cache shared across workers
		{prefix: 8, workers: 4},  // tiny cache that fills mid-batch
	}
	var ref []string
	for _, r := range runs {
		cfg := fastConfig()
		cfg.Seed = 11
		cfg.Workers = r.workers
		cfg.PrefixCacheSize = r.prefix
		cfg.QuantizedInference = true
		tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
		tr.Train(2, 16)
		got := genSQL(tr.Generate(30))
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("prefix=%d workers=%d: query %d = %q, want %q",
					r.prefix, r.workers, i, got[i], ref[i])
			}
		}
	}
}

// TestQuantizedTrainingUnaffected asserts the quantized flag changes only
// inference: training traces are byte-identical with it on or off,
// because training batches never build a snapshot.
func TestQuantizedTrainingUnaffected(t *testing.T) {
	env := testEnv(t)
	var ref []EpochStats
	for _, quantized := range []bool{false, true} {
		cfg := fastConfig()
		cfg.Seed = 7
		cfg.Workers = 2
		cfg.QuantizedInference = quantized
		tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
		stats := tr.Train(3, 16)
		if ref == nil {
			ref = stats
			continue
		}
		if len(stats) != len(ref) {
			t.Fatalf("epoch count differs: %d vs %d", len(stats), len(ref))
		}
		for i := range ref {
			if stats[i] != ref[i] {
				t.Fatalf("epoch %d diverged with QuantizedInference=true: %+v vs %+v",
					i, stats[i], ref[i])
			}
		}
	}
}

// TestQuantizedGenerationTolerance trains a policy, generates through the
// quantized path, and then replays trained-policy episodes in
// teacher-forced lockstep over the real FSM action masks, asserting the
// two compute paths' logits stay within the documented tolerance bound on
// every valid action of every step.
func TestQuantizedGenerationTolerance(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 3
	cfg.Workers = 1
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	tr.Train(2, 16)

	// The quantized path must produce complete queries end to end.
	tr.Cfg.QuantizedInference = true
	for i, g := range tr.Generate(20) {
		if g.SQL == "" {
			t.Fatalf("quantized query %d is empty", i)
		}
	}

	// Teacher-forced lockstep on the trained weights: episodes follow the
	// float64 policy's samples; both paths score every valid action.
	actor := tr.Actor()
	quant := nn.QuantizeSeqNet(actor)
	wsF := nn.NewWorkspace(nil)
	wsQ := nn.NewWorkspace(nil)
	wsQ.SetQuantized(quant)
	rng := rand.New(rand.NewSource(99))
	vocab := actor.OutDim
	probs := make([]float64, vocab)
	maxErr := 0.0
	violations := 0
	for e := 0; e < 20; e++ {
		b := env.NewBuilder()
		stF := wsF.Pool().GetState(actor.Hidden)
		stQ := wsQ.Pool().GetState(actor.Hidden)
		in := actor.BOS()
		for !b.Done() {
			valid := b.Valid()
			lf := actor.StepMaskedInto(wsF, stF, in, valid, false, nil)
			lq := actor.StepMaskedInto(wsQ, stQ, in, valid, false, nil)
			for _, id := range valid {
				d := lf[id] - lq[id]
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
				if d > nn.QuantMaxLogitError {
					violations++
				}
			}
			nn.MaskedSoftmaxInto(lf, valid, probs)
			action := sampleFrom(probs, valid, rng)
			if err := b.Apply(action); err != nil {
				t.Fatalf("episode %d: %v", e, err)
			}
			in = action
		}
		wsF.Recycle(stF)
		wsQ.Recycle(stQ)
	}
	if violations > 0 {
		t.Fatalf("%d logit drift violations beyond nn.QuantMaxLogitError=%.2f (max %.4f)",
			violations, nn.QuantMaxLogitError, maxErr)
	}
	t.Logf("max teacher-forced logit drift on trained policy: %.5f (bound %.2f)",
		maxErr, nn.QuantMaxLogitError)
}
