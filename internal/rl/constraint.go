// Package rl implements the reinforcement-learning core of LearnedSQLGen
// (§4): constraint and reward definitions, the generation environment
// (FSM + estimator feedback), the actor–critic trainer with entropy
// regularization, and the plain REINFORCE trainer used as the §7.3
// ablation baseline.
//
// Episode sampling goes through the rollout engine (Trainer.SampleBatch):
// the batch's episodes run concurrently on Config.Workers goroutines,
// each with its own FSM walker and RNG stream fanned out deterministically
// from Config.Seed, and gradients apply only at the batch barrier — so
// output is byte-identical for every worker count. Environment feedback
// is memoized by an estimator LRU installed in Env; TrainStats surfaces
// episodes/sec and the cache counters.
package rl

import (
	"fmt"
	"math"
)

// Metric selects which estimator output a constraint targets (§2.1: both
// cardinality and cost constraints are supported and treated uniformly).
type Metric uint8

// Supported constraint metrics.
const (
	Cardinality Metric = iota
	Cost
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == Cost {
		return "Cost"
	}
	return "Cardinality"
}

// Constraint is a point or range target on cardinality or cost.
type Constraint struct {
	Metric  Metric
	IsRange bool
	Point   float64 // point target c
	Lo, Hi  float64 // range [c.l, c.r]
	// Tolerance is the accuracy error bound τ for point constraints as a
	// fraction of the target; the paper evaluates with τ = 0.1·c.
	Tolerance float64
}

// PointConstraint builds Metric = c with the paper's τ = 0.1 accuracy
// bound.
func PointConstraint(m Metric, c float64) Constraint {
	return Constraint{Metric: m, Point: c, Tolerance: 0.1}
}

// RangeConstraint builds Metric ∈ [lo, hi].
func RangeConstraint(m Metric, lo, hi float64) Constraint {
	return Constraint{Metric: m, IsRange: true, Lo: lo, Hi: hi}
}

// String renders the constraint like the paper ("Cardinality in [1k,2k]").
func (c Constraint) String() string {
	if c.IsRange {
		return fmt.Sprintf("%s in [%g, %g]", c.Metric, c.Lo, c.Hi)
	}
	return fmt.Sprintf("%s = %g", c.Metric, c.Point)
}

// ratio returns min(a/b, b/a) ∈ [0, 1], the δ of §4.2; zero when either
// side is zero or negative.
func ratio(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	r := a / b
	if r > 1 {
		r = 1 / r
	}
	return r
}

// Reward implements the §4.2 reward functions. executable=false returns 0
// (the e_t = 0 case); otherwise measured is the estimated cardinality/cost
// of the (partial) query.
//
// Point constraint: r = δ = min(ĉ/c, c/ĉ).
// Range constraint: r = 1 inside [lo, hi]; outside, r = max(δ_l, δ_r)
// measures how close ĉ is to the nearer bound.
func (c Constraint) Reward(executable bool, measured float64) float64 {
	if !executable {
		return 0
	}
	if !c.IsRange {
		return ratio(measured, c.Point)
	}
	if measured >= c.Lo && measured <= c.Hi {
		return 1
	}
	return math.Max(ratio(measured, c.Lo), ratio(measured, c.Hi))
}

// Satisfied reports whether a measured value meets the constraint: inside
// the range, or within τ·c of a point target (§7.1's accuracy metric).
func (c Constraint) Satisfied(measured float64) bool {
	if c.IsRange {
		return measured >= c.Lo && measured <= c.Hi
	}
	tol := c.Tolerance
	if tol <= 0 {
		tol = 0.1
	}
	return math.Abs(measured-c.Point) <= tol*c.Point
}
