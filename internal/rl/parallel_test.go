package rl

import (
	"testing"
)

// trainAndGenerate runs the same fixed workload under a given worker
// count and returns the per-epoch traces plus generated SQL.
func trainAndGenerate(t *testing.T, workers int) ([]EpochStats, []string) {
	t.Helper()
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 11
	cfg.Workers = workers
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	trace := tr.Train(2, 20)
	var sqls []string
	for _, g := range tr.Generate(30) {
		sqls = append(sqls, g.SQL)
	}
	return trace, sqls
}

// TestWorkerCountInvariance is the rollout engine's core contract: the
// same seed produces byte-identical queries and learning traces whether
// episodes roll out serially or on a worker pool, because every episode
// draws from its own RNG stream fanned out from the seed.
func TestWorkerCountInvariance(t *testing.T) {
	trace1, sqls1 := trainAndGenerate(t, 1)
	for _, workers := range []int{4, 7} {
		traceN, sqlsN := trainAndGenerate(t, workers)
		if len(trace1) != len(traceN) {
			t.Fatalf("workers=%d: trace length %d vs %d", workers, len(traceN), len(trace1))
		}
		for i := range trace1 {
			if trace1[i] != traceN[i] {
				t.Errorf("workers=%d: epoch %d stats diverged: %+v vs %+v",
					workers, i, traceN[i], trace1[i])
			}
		}
		if len(sqls1) != len(sqlsN) {
			t.Fatalf("workers=%d: generated %d vs %d queries", workers, len(sqlsN), len(sqls1))
		}
		for i := range sqls1 {
			if sqls1[i] != sqlsN[i] {
				t.Errorf("workers=%d: query %d differs:\n  serial:   %s\n  parallel: %s",
					workers, i, sqls1[i], sqlsN[i])
			}
		}
	}
}

// TestGenerateSatisfiedWorkerInvariance checks the chunked attempt
// accounting is also worker-count-independent.
func TestGenerateSatisfiedWorkerInvariance(t *testing.T) {
	run := func(workers int) ([]string, int) {
		env := testEnv(t)
		cfg := fastConfig()
		cfg.Seed = 3
		cfg.Workers = workers
		tr := NewTrainer(env, RangeConstraint(Cardinality, 1, 1e6), cfg)
		gen, attempts := tr.GenerateSatisfied(10, 100)
		var sqls []string
		for _, g := range gen {
			sqls = append(sqls, g.SQL)
		}
		return sqls, attempts
	}
	sqls1, attempts1 := run(1)
	sqls4, attempts4 := run(4)
	if attempts1 != attempts4 {
		t.Errorf("attempts diverged: %d vs %d", attempts1, attempts4)
	}
	if len(sqls1) != len(sqls4) {
		t.Fatalf("satisfied counts diverged: %d vs %d", len(sqls1), len(sqls4))
	}
	for i := range sqls1 {
		if sqls1[i] != sqls4[i] {
			t.Errorf("satisfied query %d differs: %q vs %q", i, sqls1[i], sqls4[i])
		}
	}
}

// TestTrainStatsCounters verifies the throughput counters: training must
// record episodes, wall-clock, and a warm estimator cache (repeated
// prefixes across episodes must hit).
func TestTrainStatsCounters(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Workers = 2
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	tr.Train(2, 20)
	st := tr.Stats()
	if st.Episodes != 40 {
		t.Errorf("Episodes = %d, want 40", st.Episodes)
	}
	if st.RolloutSeconds <= 0 || st.EpisodesPerSec <= 0 {
		t.Errorf("timing counters empty: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Error("estimator cache recorded no hits during training")
	}
	if st.CacheHitRate <= 0 || st.CacheHitRate >= 1 {
		t.Errorf("hit rate %v out of (0,1)", st.CacheHitRate)
	}
	if st.EstimatorCalls != st.CacheMisses {
		t.Errorf("with the cache on, estimator calls (%d) must equal misses (%d)",
			st.EstimatorCalls, st.CacheMisses)
	}

	// With the cache disabled, estimator calls fall back to the Measure
	// counter and cache counters stay zero.
	env2 := testEnv(t)
	env2.DisableCache()
	tr2 := NewTrainer(env2, RangeConstraint(Cardinality, 10, 500), cfg)
	tr2.Train(1, 10)
	st2 := tr2.Stats()
	if st2.CacheHits != 0 || st2.CacheMisses != 0 {
		t.Errorf("disabled cache reported traffic: %+v", st2)
	}
	if st2.EstimatorCalls == 0 {
		t.Error("uncached estimator calls not counted")
	}
}

// TestCachedMeasureAgreesWithUncached: memoization must not change the
// feedback signal.
func TestCachedMeasureAgreesWithUncached(t *testing.T) {
	envA := testEnv(t)
	envB := testEnv(t)
	envB.DisableCache()
	st := mustParse(t, "SELECT region.r_name FROM region")
	for _, m := range []Metric{Cardinality, Cost} {
		// Twice against the cached env: miss then hit.
		a1, err1 := envA.Measure(st, m)
		a2, err2 := envA.Measure(st, m)
		b, err3 := envB.Measure(st, m)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("measure errors: %v %v %v", err1, err2, err3)
		}
		if a1 != a2 || a1 != b {
			t.Errorf("metric %v: cached %v/%v vs uncached %v", m, a1, a2, b)
		}
	}
}
