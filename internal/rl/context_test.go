package rl

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestCancelMidEpoch cancels training mid-epoch with a full worker pool and
// asserts the lifecycle contract: prompt return (within one episode of the
// cancel), no leaked rollout goroutines, and a checkpoint that loads and
// resumes training as if nothing happened.
func TestCancelMidEpoch(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 3
	cfg.Workers = runtime.GOMAXPROCS(0)
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		trace []EpochStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		trace, err := tr.TrainContext(ctx, 10000, 50)
		done <- result{trace, err}
	}()

	// Wait until rollouts are demonstrably in flight, then cancel
	// mid-epoch (an epoch is 50 episodes; we cancel after a handful).
	for atomic.LoadUint64(&tr.episodes) < 5 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	cancel()

	var res result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TrainContext did not return after cancel")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("TrainContext returned %v after cancel, want < 100ms", elapsed)
	}
	if res.err == nil {
		t.Fatal("cancelled training must report an error")
	}
	if !errors.Is(res.err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", res.err)
	}

	// The worker pool must drain: allow the runtime a moment to retire the
	// rollout goroutines, then compare against the pre-training count.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after cancel = %d, want <= %d (worker leak)", got, before)
	}

	// A checkpoint written after the cancel must round-trip and resume.
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatalf("Save after cancel: %v", err)
	}
	resumed := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	if err := resumed.Load(&buf); err != nil {
		t.Fatalf("Load after cancel: %v", err)
	}
	trace, err := resumed.TrainContext(context.Background(), 2, 16)
	if err != nil || len(trace) != 2 {
		t.Fatalf("resumed training: trace=%d err=%v", len(trace), err)
	}
	if gen, err := resumed.GenerateContext(context.Background(), 5); err != nil || len(gen) != 5 {
		t.Fatalf("resumed generation: n=%d err=%v", len(gen), err)
	}
}

// TestContextTraceEquality asserts the ctx plumbing is inert when unused: a
// TrainContext/GenerateContext run with a background context produces
// byte-identical queries and identical EpochStats to the ctx-less API, at
// every worker count.
func TestContextTraceEquality(t *testing.T) {
	env := testEnv(t)
	var refTrace []EpochStats
	var refGen []string
	for _, workers := range []int{1, 4} {
		cfg := fastConfig()
		cfg.Seed = 11
		cfg.Workers = workers

		plain := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
		plainTrace := plain.Train(3, 16)
		plainGen := genSQL(plain.Generate(20))

		withCtx := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
		ctxTrace, err := withCtx.TrainContext(context.Background(), 3, 16)
		if err != nil {
			t.Fatalf("workers=%d: TrainContext: %v", workers, err)
		}
		gen, err := withCtx.GenerateContext(context.Background(), 20)
		if err != nil {
			t.Fatalf("workers=%d: GenerateContext: %v", workers, err)
		}
		ctxGen := genSQL(gen)

		if !reflect.DeepEqual(plainTrace, ctxTrace) {
			t.Errorf("workers=%d: ctx trace differs from ctx-less trace", workers)
		}
		if !reflect.DeepEqual(plainGen, ctxGen) {
			t.Errorf("workers=%d: ctx queries differ from ctx-less queries", workers)
		}
		// Worker counts must also agree with each other (the ctx checks
		// must not perturb the deterministic episode fan-out).
		if refTrace == nil {
			refTrace, refGen = ctxTrace, ctxGen
			continue
		}
		if !reflect.DeepEqual(refTrace, ctxTrace) || !reflect.DeepEqual(refGen, ctxGen) {
			t.Errorf("workers=%d: output differs from workers=1 reference", workers)
		}
	}
}

// TestTrainBudget asserts Config.TrainBudget stops training with cause
// ErrBudgetExceeded and a usable partial trace.
func TestTrainBudget(t *testing.T) {
	env := testEnv(t)
	cfg := fastConfig()
	cfg.Seed = 5
	cfg.TrainBudget = time.Millisecond
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	trace, err := tr.TrainContext(context.Background(), 1000, 25)
	if err == nil {
		t.Fatal("a 1ms budget must interrupt a 1000-epoch run")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("error %v does not wrap ErrBudgetExceeded", err)
	}
	if len(trace) >= 1000 {
		t.Errorf("trace has %d epochs despite the budget", len(trace))
	}
	// The interrupted trainer still generates with whatever it learned.
	if gen, genErr := tr.GenerateContext(context.Background(), 3); genErr != nil || len(gen) != 3 {
		t.Fatalf("generation after budget expiry: n=%d err=%v", len(gen), genErr)
	}
}

// TestOnEpochCallback asserts Config.OnEpoch fires once per completed epoch
// and that a callback error aborts training wrapped in *EpochAbortError.
func TestOnEpochCallback(t *testing.T) {
	env := testEnv(t)
	boom := errors.New("enough")

	cfg := fastConfig()
	cfg.Seed = 7
	calls := 0
	cfg.OnEpoch = func(s EpochStats) error {
		calls++
		if s.Episodes != 8 {
			t.Errorf("callback %d: stats cover %d episodes, want 8", calls, s.Episodes)
		}
		return nil
	}
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	if _, err := tr.TrainContext(context.Background(), 3, 8); err != nil {
		t.Fatalf("TrainContext: %v", err)
	}
	if calls != 3 {
		t.Fatalf("OnEpoch fired %d times, want 3", calls)
	}

	cfg.OnEpoch = func(EpochStats) error {
		calls++
		if calls >= 2 {
			return boom
		}
		return nil
	}
	calls = 0
	tr = NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	trace, err := tr.TrainContext(context.Background(), 5, 8)
	if len(trace) != 2 {
		t.Errorf("aborted trace has %d epochs, want 2", len(trace))
	}
	var abort *EpochAbortError
	if !errors.As(err, &abort) {
		t.Fatalf("error %v is not an *EpochAbortError", err)
	}
	if abort.Epoch != 2 {
		t.Errorf("abort.Epoch = %d, want 2", abort.Epoch)
	}
	if !errors.Is(err, boom) {
		t.Errorf("error %v does not unwrap to the callback's error", err)
	}
}
