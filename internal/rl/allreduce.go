package rl

import "learnedsqlgen/internal/nn"

// All-reduce for the trainer fleet: synchronous parameter averaging at
// the epoch barrier. The reduction runs in shard-index order over a fixed
// survivor list, so the floating-point summation order — and therefore
// the averaged weights — is a pure function of which shards survived the
// epoch, never of goroutine scheduling. That is what lets a sharded run
// replay byte-identically per seed.

// averageInto snapshots the element-wise mean of every trainer's
// parameter list into dst (reusing dst's buffers when shapes match, like
// nn.SnapshotParams). The trainers must share one architecture; the mean
// accumulates in shard-index order.
func averageInto(dst [][]float64, trainers []*Trainer, pick func(*Trainer) []*nn.Param) [][]float64 {
	dst = nn.SnapshotParams(dst, pick(trainers[0]))
	for _, tr := range trainers[1:] {
		for pi, p := range pick(tr) {
			d := dst[pi]
			for j, v := range p.Val.Data {
				d[j] += v
			}
		}
	}
	inv := 1.0 / float64(len(trainers))
	for _, d := range dst {
		for j := range d {
			d[j] *= inv
		}
	}
	return dst
}

func actorParams(tr *Trainer) []*nn.Param  { return tr.actor.Params() }
func criticParams(tr *Trainer) []*nn.Param { return tr.critic.Params() }

// allReduce averages the surviving shards' actor and critic weights and
// broadcasts the means to every shard (survivors and refilled shards
// alike), leaving the whole fleet weight-synchronized. The averages land
// in the last-good scratch buffers, which noteGood then blesses as the
// refill source — by the time allReduce runs, this epoch's refills have
// already consumed the previous snapshot.
func (s *ShardedTrainer) allReduce(survivors []*Trainer) {
	s.goodActor = averageInto(s.goodActor, survivors, actorParams)
	s.goodCritic = averageInto(s.goodCritic, survivors, criticParams)
	for _, tr := range s.shards {
		nn.RestoreParams(tr.actor.Params(), s.goodActor)
		nn.RestoreParams(tr.critic.Params(), s.goodCritic)
	}
}

// broadcastFrom copies src's weights into every other shard — used after
// a checkpoint restore, where one shard holds the loaded weights and the
// rest of the fleet must re-synchronize. Optimizer moments reset fleet-
// wide: they describe the trajectory that was just replaced.
func (s *ShardedTrainer) broadcastFrom(src *Trainer) {
	if len(s.shards) == 1 {
		return
	}
	s.goodActor = nn.SnapshotParams(s.goodActor, src.actor.Params())
	s.goodCritic = nn.SnapshotParams(s.goodCritic, src.critic.Params())
	for _, tr := range s.shards {
		if tr != src {
			nn.RestoreParams(tr.actor.Params(), s.goodActor)
			nn.RestoreParams(tr.critic.Params(), s.goodCritic)
		}
		nn.ResetMoments(tr.actor.Params())
		nn.ResetMoments(tr.critic.Params())
		tr.actorOpt.Reset()
		tr.criticOpt.Reset()
	}
}
