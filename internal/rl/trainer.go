package rl

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/sqlast"
)

// Config carries the hyper-parameters of §7.1: a 2-layer LSTM with 30 cell
// units, dropout 0.3, actor learning rate 0.001, critic learning rate
// 0.003 and entropy weight λ = 0.01.
type Config struct {
	EmbedDim int
	Hidden   int
	ActorLR  float64
	CriticLR float64
	// EntropyWeight is λ in Eq. 4; 0 disables the diversity bonus.
	EntropyWeight float64
	Dropout       float64
	// BatchSize is the number of trajectories per gradient update
	// (Algorithm 3 line 3 samples a batch).
	BatchSize int
	// Gamma is the reward discount; the paper sums undiscounted rewards.
	Gamma float64
	// Epsilon mixes uniform exploration into the training-time behaviour
	// policy: with probability ε the next token is drawn uniformly from
	// the unmasked set instead of from π. This keeps structure-changing
	// tokens (WHERE, JOIN, …) explored even after π has settled on a
	// reward plateau — without it, point constraints whose satisfying
	// queries need a predicate are often never discovered, because adding
	// a predicate with a random literal initially looks worse than the
	// no-predicate plateau. Inference never uses ε.
	Epsilon float64
	// Mode selects how executable-prefix feedback becomes step rewards
	// (see RewardMode).
	Mode RewardMode
	// IntermediateWeight scales prefix rewards in RewardDense mode.
	IntermediateWeight float64
	Seed               int64
	// Workers is the number of concurrent episode-rollout goroutines used
	// by SampleBatch (and therefore by training, generation and the meta
	// pre-trainer). 0 or 1 rolls out serially. Every episode draws from
	// its own RNG stream deterministically fanned out from Seed, so the
	// generated queries and learning traces are byte-identical for every
	// Workers value — concurrency only changes wall-clock time.
	Workers int
	// PrefixCacheSize bounds the actor prefix-state trie used by inference
	// rollouts (Generate, GenerateSatisfied): the LSTM state and action
	// distribution for a token prefix is a pure function of (weights,
	// prefix), so episodes of one batch that share a prefix resume
	// mid-sequence instead of recomputing it. 0 uses
	// DefaultPrefixCacheSize; a negative value disables the cache.
	// Training rollouts never use it (dropout, ε-exploration and the BPTT
	// tape make cached states unusable), and the trie is rebuilt at every
	// gradient update, so generated queries are identical with the cache
	// on or off.
	PrefixCacheSize int
	// QuantizedInference routes inference rollouts (Generate,
	// GenerateSatisfied) through the actor's int8 fused kernels: each
	// inference batch snapshots the current weights with
	// nn.QuantizeSeqNet — the snapshot dies with the batch, like the
	// prefix trie, so it can never observe two weight versions — and
	// workers step through nn.Workspace.SetQuantized. Training batches
	// always run float64. The quantized path trades byte-identity with
	// the float64 path for speed under the documented tolerance contract
	// (nn.QuantMaxLogitError, nn.QuantMinTopKAgreement); within the
	// quantized path itself, rollouts remain deterministic and
	// independent of Workers and of the prefix cache setting.
	QuantizedInference bool
	// TrainBudget bounds the wall-clock time of TrainContext and
	// TrainUntilContext (and their ctx-less wrappers): a positive value
	// installs a deadline whose cancellation cause is ErrBudgetExceeded.
	// Training stops at the next episode boundary after the deadline; the
	// returned trace holds the completed epochs and the weights reflect
	// every completed batch update, so the trainer stays checkpointable.
	// 0 disables the budget.
	TrainBudget time.Duration
	// OnEpoch, when non-nil, is invoked after every completed training
	// epoch with that epoch's stats. Returning an error aborts training;
	// the error surfaces as an EpochAbortError from the Context train
	// drivers. The callback runs on the training goroutine, so it must not
	// call back into the trainer.
	OnEpoch func(EpochStats) error `json:"-"`
	// MaxGradNorm is the divergence watchdog's gradient-norm ceiling: a
	// batch whose global gradient L2 norm is non-finite or exceeds it is
	// discarded before the optimizer step (the gradients are zeroed, the
	// weights untouched), and a non-finite weight appearing after a step
	// rolls the networks back to the last healthy update and resets the
	// optimizer moments. 0 selects DefaultMaxGradNorm; negative disables
	// the watchdog entirely.
	MaxGradNorm float64
}

// DefaultMaxGradNorm is the watchdog ceiling used when Config.MaxGradNorm
// is zero. It is ~3 orders of magnitude above gradient norms observed in
// healthy training, so it only fires on genuine divergence (NaN/Inf loss,
// exploding updates), never on ordinary noisy batches.
const DefaultMaxGradNorm = 1e4

// RewardMode selects the dense-reward scheme built on the §4.2 Remark
// ("we also give the computed reward if partial queries can be executed").
type RewardMode uint8

const (
	// RewardShaped (default) converts the executable-prefix feedback into
	// potential-based shaping: r_t = Φ(s_{t+1}) − Φ(s_t) with Φ the
	// constraint reward of the latest executable prefix. The per-episode
	// sum telescopes to the final query's reward, so the dense signal
	// guides training without biasing the optimal policy towards long
	// queries hovering near the target.
	RewardShaped RewardMode = iota
	// RewardDense is the paper-literal scheme: every executable prefix
	// earns the full §4.2 reward (scaled by IntermediateWeight).
	RewardDense
	// RewardTerminal is the sparse ablation from the §4.2 Remark: only
	// the completed query is rewarded.
	RewardTerminal
)

// DefaultConfig returns the paper's hyper-parameters.
func DefaultConfig() Config {
	return Config{
		EmbedDim:           32,
		Hidden:             30,
		ActorLR:            0.001,
		CriticLR:           0.003,
		EntropyWeight:      0.01,
		Dropout:            0.3,
		BatchSize:          8,
		Gamma:              1.0,
		IntermediateWeight: 0.2,
		Seed:               1,
	}
}

// FastConfig returns hyper-parameters tuned for the micro-scale
// reproduction: with databases and episode budgets ~1000× smaller than the
// paper's, proportionally larger learning rates converge in the available
// steps, and the entropy weight is rescaled because the shaped rewards
// (whose per-episode sum is ≤ 1) are an order of magnitude smaller than
// the paper's summed dense rewards that λ = 0.01 was tuned against. The
// architecture (2-layer LSTM, 30 units, dropout) is unchanged. The
// benchmark harness uses this configuration.
func FastConfig() Config {
	cfg := DefaultConfig()
	cfg.ActorLR = 0.003
	cfg.CriticLR = 0.01
	cfg.EntropyWeight = 0.003
	return cfg
}

// Step is one (state, action, reward) transition of an episode.
type Step struct {
	Valid []int
	// Probs is the masked action distribution, recorded only for training
	// episodes (the policy-gradient update reads it); its vector is pooled
	// and reclaimed by ReleaseBatch. Inference steps leave it nil.
	Probs  []float64
	Action int
	Reward float64
	Value  float64 // critic's V(s_t); 0 when no critic ran
}

// Trajectory is one complete generation episode with its BPTT tapes.
// Training trajectories hold pooled actor/critic states that the update
// paths return to the trainer's pool via ReleaseBatch; inference episodes
// recycle their states eagerly and leave both nil.
type Trajectory struct {
	ActorState  *nn.SeqState
	CriticState *nn.SeqState
	Steps       []Step
	Final       sqlast.Statement
	Measured    float64
	Satisfied   bool
	TotalReward float64
}

// Trainer trains the actor–critic networks of §4.3 for one constraint.
type Trainer struct {
	Env        *Env
	Constraint Constraint
	Cfg        Config

	actor     *nn.SeqNet
	critic    *nn.SeqNet
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand

	// Compute resources, lazily initialized (callers construct bare
	// Trainers as samplers): one shared CachePool, the main-goroutine
	// workspace for backward passes, and a freelist of per-worker rollout
	// workspaces.
	computeOnce sync.Once
	pool        *nn.CachePool
	ws          *nn.Workspace
	wsMu        sync.Mutex
	wsFree      []*nn.Workspace

	// Reusable gradient-list headers for update (single-goroutine at the
	// batch barrier).
	dActorBuf, dCriticBuf [][]float64

	// episodes counts episodes ever reserved; it both fans out per-episode
	// RNG streams (see rollout.go) and feeds TrainStats. rolloutNanos
	// accumulates wall-clock spent inside SampleBatch. prefixHits/Misses
	// count actor prefix-cache traffic. All are accessed atomically.
	episodes     uint64
	rolloutNanos int64
	prefixHits   uint64
	prefixMisses uint64

	// Quarantine state (see quarantine.go): count and bounded error log of
	// episodes that panicked or violated an invariant, guarded by qMu.
	qMu         sync.Mutex
	qLog        []error
	quarantined uint64

	// Divergence watchdog state (single-goroutine at the batch barrier):
	// snapshots of the last healthy post-update weights, and the atomic
	// trip counter.
	wdSnapActor   [][]float64
	wdSnapCritic  [][]float64
	watchdogTrips uint64

	// quantSnap recycles the int8 inference snapshot's buffers across
	// batches (Cfg.QuantizedInference). It is requantized from the live
	// weights at the start of every inference batch — never carried
	// across one — so it cannot go stale however the weights moved in
	// between (rl updates, meta's own optimizers, checkpoint loads).
	quantSnap *nn.QuantizedSeqNet
}

// NewTrainer builds fresh actor and critic networks for the environment.
func NewTrainer(env *Env, constraint Constraint, cfg Config) *Trainer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := env.Vocab.Size()
	return &Trainer{
		Env:        env,
		Constraint: constraint,
		Cfg:        cfg,
		actor:      nn.NewSeqNet("actor", vocab, cfg.EmbedDim, cfg.Hidden, vocab, cfg.Dropout, rng),
		critic:     nn.NewSeqNet("critic", vocab, cfg.EmbedDim, cfg.Hidden, 1, cfg.Dropout, rng),
		actorOpt:   nn.NewAdam(cfg.ActorLR),
		criticOpt:  nn.NewAdam(cfg.CriticLR),
		rng:        rng,
	}
}

// compute lazily initializes the trainer's pooled compute resources.
func (t *Trainer) compute() {
	t.computeOnce.Do(func() {
		t.pool = nn.NewCachePool()
		t.ws = nn.NewWorkspace(t.pool)
	})
}

// Workspace returns the trainer's main-goroutine workspace. External update
// paths (REINFORCE, meta pre-training, AC-extend) run their backward passes
// through it and recycle trajectories with ReleaseBatch. Not safe for use
// concurrently with SampleBatch.
func (t *Trainer) Workspace() *nn.Workspace {
	t.compute()
	return t.ws
}

// getRolloutWS pops a per-worker workspace backed by the shared pool.
func (t *Trainer) getRolloutWS() *nn.Workspace {
	t.wsMu.Lock()
	defer t.wsMu.Unlock()
	if n := len(t.wsFree); n > 0 {
		ws := t.wsFree[n-1]
		t.wsFree = t.wsFree[:n-1]
		return ws
	}
	return nn.NewWorkspace(t.pool)
}

func (t *Trainer) putRolloutWS(ws *nn.Workspace) {
	t.wsMu.Lock()
	t.wsFree = append(t.wsFree, ws)
	t.wsMu.Unlock()
}

// prefixCap resolves Cfg.PrefixCacheSize: 0 means the default bound,
// negative disables the trie.
func (t *Trainer) prefixCap() int {
	if t.Cfg.PrefixCacheSize < 0 {
		return 0
	}
	if t.Cfg.PrefixCacheSize == 0 {
		return DefaultPrefixCacheSize
	}
	return t.Cfg.PrefixCacheSize
}

// Actor exposes the policy network (weight transfer, meta-training).
func (t *Trainer) Actor() *nn.SeqNet { return t.actor }

// Critic exposes the value network.
func (t *Trainer) Critic() *nn.SeqNet { return t.critic }

// Rand exposes the trainer's seeded random source (network
// initialization; episode rollouts use per-episode streams, see
// rollout.go).
func (t *Trainer) Rand() *rand.Rand { return t.rng }

// sampleFrom draws an action from a masked distribution.
func sampleFrom(probs []float64, valid []int, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for _, id := range valid {
		acc += probs[id]
		if u <= acc {
			return id
		}
	}
	return valid[len(valid)-1]
}

// NewSampler returns a Trainer usable only for SampleEpisode with
// externally owned actors (no networks of its own). The meta-learning and
// baseline packages share episode mechanics through it.
func NewSampler(env *Env, constraint Constraint, cfg Config) *Trainer {
	return &Trainer{Env: env, Constraint: constraint, Cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetConstraint retargets the sampler (multi-task training iterates
// constraints over one sampler).
func (t *Trainer) SetConstraint(c Constraint) { t.Constraint = c }

// SampleEpisode generates one statement with the given actor, recording a
// trajectory. withCritic also evaluates V(s_t) with the trainer's critic;
// train enables dropout and tape retention for BPTT.
func (t *Trainer) SampleEpisode(actor *nn.SeqNet, withCritic, train bool) *Trajectory {
	return t.SampleEpisodeFrom(actor, actor.BOS(), withCritic, train)
}

// SampleEpisodeFrom is SampleEpisode with an explicit first input token —
// the AC-extend strategy of §7.4 feeds a constraint-identifying row
// instead of BOS.
func (t *Trainer) SampleEpisodeFrom(actor *nn.SeqNet, startIn int, withCritic, train bool) *Trajectory {
	return t.SampleBatch(actor, startIn, 1, withCritic, train)[0]
}

// episodeParams bundles the per-batch constants of an episode rollout;
// the per-episode variables (RNG stream, workspace, token trace) travel
// separately so the quarantine wrapper can manage them.
type episodeParams struct {
	ctx        context.Context
	actor      *nn.SeqNet
	startIn    int
	withCritic bool
	train      bool
	trie       *prefixTrie
	quant      *nn.QuantizedSeqNet // per-batch int8 snapshot (inference only)
}

// sampleEpisodeRNG is the episode body: it walks the FSM with the actor,
// drawing all randomness (dropout, ε-exploration, action sampling) from
// the episode's own rng so concurrent episodes never share random state.
// All scratch comes from run.ws; p.trie, when non-nil, is the batch's
// shared prefix-state cache (inference only). Callers go through
// sampleEpisodeSafe, which adds panic recovery; the only error returned
// here is an *InvariantError (quarantined, not fatal — except under
// -tags rldebug, where it panics instead).
func (t *Trainer) sampleEpisodeRNG(p episodeParams, rng *rand.Rand, run *episodeRun) (*Trajectory, error) {
	ctx, actor, startIn := p.ctx, p.actor, p.startIn
	withCritic, train, trie := p.withCritic, p.train, p.trie
	ws := run.ws
	// Select (or clear — workspaces are pooled across batches) the int8
	// inference mode for this batch's weight snapshot.
	ws.SetQuantized(p.quant)
	b := t.Env.NewBuilder()
	pool := ws.Pool()
	vocab := actor.OutDim
	traj := &Trajectory{ActorState: pool.GetState(actor.Hidden)}
	if withCritic {
		traj.CriticState = pool.GetState(t.critic.Hidden)
	}
	// Inference steps share one pooled probability buffer; training steps
	// each own a pooled vector (the update needs every step's distribution).
	var inferProbs []float64
	if !train {
		inferProbs = pool.GetVec(vocab)
	}

	// Prefix-cache walk state: node is the trie position matching the
	// inputs consumed so far (nil once the trie is full or disabled);
	// synced says whether traj.ActorState currently holds node's state —
	// hits advance the node without touching the LSTM, and the first miss
	// afterwards restores the snapshot before computing.
	var node *prefixNode
	synced := true
	var hits, misses uint64
	if trie != nil {
		node = &trie.root
	}

	in := startIn
	potential := 0.0 // Φ of the latest executable prefix (RewardShaped)
	for !b.Done() {
		valid := b.Valid()
		var probs []float64
		if node != nil {
			if child := trie.lookup(node, in); child != nil {
				probs = child.probs
				node = child
				synced = false
				hits++
			}
		}
		if probs == nil {
			if !synced {
				node.restore(traj.ActorState)
				synced = true
			}
			logits := actor.StepMaskedInto(ws, traj.ActorState, in, valid, train, rng)
			if train {
				probs = pool.GetVec(vocab)
			} else {
				probs = inferProbs
			}
			nn.MaskedSoftmaxInto(logits, valid, probs)
			if trie != nil {
				misses++
				if node != nil {
					node = trie.insert(node, in, traj.ActorState, probs)
				}
			}
		}
		var action int
		if train && t.Cfg.Epsilon > 0 && rng.Float64() < t.Cfg.Epsilon {
			action = valid[rng.Intn(len(valid))]
		} else {
			action = sampleFrom(probs, valid, rng)
		}

		var v float64
		if withCritic {
			v = t.critic.StepInto(ws, traj.CriticState, in, train, rng)[0]
		}

		// Apply cannot fail: the action came from Valid(). If it does
		// anyway, the FSM and the sampler disagree about the mask — an
		// internal bug, reported as a typed invariant violation and
		// quarantined with the batch machinery (the partial trajectory's
		// pooled buffers are abandoned to the GC, like on a panic). Under
		// -tags rldebug it panics here so the stack points at the fault.
		if err := b.Apply(action); err != nil {
			if debugInvariants {
				panic("rl: FSM rejected an unmasked action: " + err.Error())
			}
			return nil, &InvariantError{Cause: err, Trace: append([]int(nil), run.trace...)}
		}
		run.trace = append(run.trace, action)

		r := 0.0
		feedback, haveFeedback := 0.0, false
		if t.Cfg.Mode != RewardTerminal || b.Done() {
			if st, ok := b.Snapshot(); ok {
				if m, err := t.Env.MeasureContext(ctx, st, t.Constraint.Metric); err == nil {
					feedback = t.Constraint.Reward(true, m)
					haveFeedback = true
				}
			}
		}
		if haveFeedback {
			switch t.Cfg.Mode {
			case RewardShaped:
				r = feedback - potential
				potential = feedback
			case RewardDense:
				r = feedback
				if !b.Done() {
					r *= t.Cfg.IntermediateWeight
				}
			default: // RewardTerminal
				r = feedback
			}
		}
		step := Step{Valid: valid, Action: action, Reward: r, Value: v}
		if train {
			step.Probs = probs
		}
		traj.Steps = append(traj.Steps, step)
		traj.TotalReward += r
		in = action
	}
	st, _ := b.Statement()
	traj.Final = st
	if m, err := t.Env.MeasureContext(ctx, st, t.Constraint.Metric); err == nil {
		traj.Measured = m
		traj.Satisfied = t.Constraint.Satisfied(m)
	}
	if trie != nil {
		trie.count(hits, misses)
	}
	if !train {
		// Inference trajectories carry no tapes: recycle the states (and
		// the shared probability buffer) right away.
		pool.PutVec(inferProbs)
		ws.Recycle(traj.ActorState)
		traj.ActorState = nil
		if traj.CriticState != nil {
			ws.Recycle(traj.CriticState)
			traj.CriticState = nil
		}
	}
	return traj, nil
}

// ReleaseBatch returns a batch's pooled resources — actor/critic states
// with their BPTT tapes and the per-step probability vectors — to the
// trainer's pool. Every update path calls it after backpropagation; the
// trajectories' Steps stay readable afterwards except for Probs.
func (t *Trainer) ReleaseBatch(batch []*Trajectory) {
	t.compute()
	for _, traj := range batch {
		if traj == nil {
			continue
		}
		t.ws.Recycle(traj.ActorState)
		traj.ActorState = nil
		t.ws.Recycle(traj.CriticState)
		traj.CriticState = nil
		for i := range traj.Steps {
			t.pool.PutVec(traj.Steps[i].Probs)
			traj.Steps[i].Probs = nil
		}
	}
}

// EpochStats summarizes one training epoch (the Figure 8(c)/9(c) traces).
type EpochStats struct {
	Episodes      int
	AvgReward     float64 // mean cumulative episode reward
	SatisfiedRate float64 // fraction of episodes meeting the constraint
}

// TrainEpoch samples episodes in batches and applies actor–critic updates
// with TD-error advantages (Eq. 3/4) and the squared-TD critic loss. Each
// batch's trajectories roll out concurrently on Cfg.Workers goroutines
// (Algorithm 3 samples a batch per update, so the batch is the natural
// parallel unit); the gradient step runs at the batch barrier, when no
// rollout is reading the weights.
func (t *Trainer) TrainEpoch(episodes int) EpochStats {
	s, _ := t.TrainEpochContext(context.Background(), episodes)
	return s
}

// TrainEpochContext is TrainEpoch with cancellation: a done ctx stops the
// epoch at the next batch boundary. A partial batch never reaches the
// gradient step — the weights always reflect whole-batch updates only, so
// a checkpoint written after cancellation loads and resumes cleanly. The
// returned stats cover the episodes whose batches completed before the
// stop; the error (wrapping ctx's cause) is non-nil iff the epoch was cut
// short.
func (t *Trainer) TrainEpochContext(ctx context.Context, episodes int) (EpochStats, error) {
	stats := EpochStats{}
	var stopErr error
	for done := 0; done < episodes; {
		n := t.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch, err := t.SampleBatchContext(ctx, t.actor, t.actor.BOS(), n, true, true)
		if err != nil {
			stopErr = err
			break
		}
		for _, traj := range batch {
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		t.update(batch)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats, stopErr
}

// Train runs epochs and returns their stats traces.
func (t *Trainer) Train(epochs, episodesPerEpoch int) []EpochStats {
	out, _ := t.TrainContext(context.Background(), epochs, episodesPerEpoch)
	return out
}

// TrainContext runs epochs under ctx and Config.TrainBudget, invoking
// Config.OnEpoch after each completed epoch. The returned trace holds
// every completed epoch; an interrupted epoch's partial stats are
// discarded (its completed batches did update the weights, which is safe —
// resuming simply re-trains the remainder). The error is nil when all
// epochs ran, ErrBudgetExceeded-wrapping when the budget expired, a
// ctx-cause wrap when the caller cancelled, or an EpochAbortError when the
// callback stopped the run.
func (t *Trainer) TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]EpochStats, error) {
	tctx, cancel := t.trainCtx(ctx)
	defer cancel()
	out := make([]EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		s, err := t.TrainEpochContext(tctx, episodesPerEpoch)
		if err != nil {
			return out, trainStopErr(len(out), cancelCause(tctx))
		}
		out = append(out, s)
		if err := t.onEpoch(len(out), s); err != nil {
			return out, err
		}
	}
	return out, nil
}

// TrainUntil trains until the per-epoch satisfied rate reaches target on
// `patience` consecutive epochs, or maxEpochs elapse. It returns the
// stats trace. Early stopping keeps easy constraints cheap while giving
// hard point constraints the long exploration they need.
func (t *Trainer) TrainUntil(target float64, patience, maxEpochs, episodesPerEpoch int) []EpochStats {
	out, _ := t.TrainUntilContext(context.Background(), target, patience, maxEpochs, episodesPerEpoch)
	return out
}

// TrainUntilContext is TrainUntil under ctx, Config.TrainBudget, and
// Config.OnEpoch, with the same early-stop and error semantics as
// TrainContext.
func (t *Trainer) TrainUntilContext(ctx context.Context, target float64, patience, maxEpochs, episodesPerEpoch int) ([]EpochStats, error) {
	if patience < 1 {
		patience = 1
	}
	tctx, cancel := t.trainCtx(ctx)
	defer cancel()
	var out []EpochStats
	streak := 0
	for i := 0; i < maxEpochs; i++ {
		s, err := t.TrainEpochContext(tctx, episodesPerEpoch)
		if err != nil {
			return out, trainStopErr(len(out), cancelCause(tctx))
		}
		out = append(out, s)
		if err := t.onEpoch(len(out), s); err != nil {
			return out, err
		}
		if s.SatisfiedRate >= target {
			streak++
			if streak >= patience {
				break
			}
		} else {
			streak = 0
		}
	}
	return out, nil
}

// update applies one batched gradient step from the trajectories and
// recycles their pooled resources.
func (t *Trainer) update(batch []*Trajectory) {
	t.compute()
	scale := 1.0 / float64(len(batch))
	vocab := t.Env.Vocab.Size()
	for _, traj := range batch {
		T := len(traj.Steps)
		for len(t.dActorBuf) < T {
			t.dActorBuf = append(t.dActorBuf, nil)
			t.dCriticBuf = append(t.dCriticBuf, nil)
		}
		dActor := t.dActorBuf[:T]
		dCritic := t.dCriticBuf[:T]
		for i, s := range traj.Steps {
			vNext := 0.0
			if i+1 < T {
				vNext = traj.Steps[i+1].Value
			}
			delta := s.Reward + t.Cfg.Gamma*vNext - s.Value
			d := t.pool.GetVec(vocab)
			nn.PolicyGradLogits(s.Probs, s.Valid, s.Action, delta*scale, t.Cfg.EntropyWeight*scale, d)
			dActor[i] = d
			dc := t.pool.GetVec(1)
			dc[0] = -2 * delta * scale
			dCritic[i] = dc
		}
		t.actor.BackwardInto(t.ws, traj.ActorState, dActor)
		t.critic.BackwardInto(t.ws, traj.CriticState, dCritic)
		for i := range dActor {
			t.pool.PutVec(dActor[i])
			t.pool.PutVec(dCritic[i])
			dActor[i], dCritic[i] = nil, nil
		}
	}
	t.ReleaseBatch(batch)
	t.guardedStep()
}

// guardedStep applies the optimizer step behind the divergence watchdog:
// a poisoned batch (non-finite or exploding gradients — e.g. a NaN reward
// leaking out of a faulty backend) is discarded without touching the
// weights, and a non-finite weight after a step rolls both networks back
// to the last healthy update with fresh optimizer moments. Training
// continues either way; trips are counted in TrainStats.WatchdogTrips.
func (t *Trainer) guardedStep() {
	if t.Cfg.MaxGradNorm < 0 {
		t.actorOpt.Step(t.actor.Params())
		t.criticOpt.Step(t.critic.Params())
		return
	}
	maxNorm := t.Cfg.MaxGradNorm
	if maxNorm == 0 {
		maxNorm = DefaultMaxGradNorm
	}
	actorP, criticP := t.actor.Params(), t.critic.Params()

	norm := nn.GradNorm(actorP) + nn.GradNorm(criticP)
	if math.IsNaN(norm) || math.IsInf(norm, 0) || norm > maxNorm {
		nn.ZeroGrads(actorP)
		nn.ZeroGrads(criticP)
		atomic.AddUint64(&t.watchdogTrips, 1)
		return
	}

	// First healthy batch: seed the rollback snapshots before stepping so
	// a rollback target always exists.
	if t.wdSnapActor == nil {
		t.wdSnapActor = nn.SnapshotParams(t.wdSnapActor, actorP)
		t.wdSnapCritic = nn.SnapshotParams(t.wdSnapCritic, criticP)
	}
	t.actorOpt.Step(actorP)
	t.criticOpt.Step(criticP)
	if nn.ParamsFinite(actorP) && nn.ParamsFinite(criticP) {
		t.wdSnapActor = nn.SnapshotParams(t.wdSnapActor, actorP)
		t.wdSnapCritic = nn.SnapshotParams(t.wdSnapCritic, criticP)
		return
	}
	// The step itself diverged: restore the last healthy weights and drop
	// the optimizer moments, which were computed against the poisoned
	// gradients.
	nn.RestoreParams(actorP, t.wdSnapActor)
	nn.RestoreParams(criticP, t.wdSnapCritic)
	nn.ResetMoments(actorP)
	nn.ResetMoments(criticP)
	t.actorOpt.Reset()
	t.criticOpt.Reset()
	atomic.AddUint64(&t.watchdogTrips, 1)
}

// WatchdogTrips returns how many poisoned batches the divergence watchdog
// has discarded or rolled back over the trainer's lifetime.
func (t *Trainer) WatchdogTrips() uint64 {
	return atomic.LoadUint64(&t.watchdogTrips)
}

// Generate runs inference (Algorithm 2): sample n statements from the
// trained policy without updating the networks. The episodes roll out
// concurrently on Cfg.Workers goroutines, sharing a per-batch prefix-state
// cache (see Config.PrefixCacheSize).
func (t *Trainer) Generate(n int) []Generated {
	out, _ := t.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation: a done ctx abandons the
// batch at the next episode boundary and returns nil with ctx's cause
// wrapped.
func (t *Trainer) GenerateContext(ctx context.Context, n int) ([]Generated, error) {
	batch, err := t.SampleBatchContext(ctx, t.actor, t.actor.BOS(), n, false, false)
	if err != nil {
		return nil, err
	}
	out := make([]Generated, 0, n)
	for _, traj := range batch {
		out = append(out, Generated{
			Statement: traj.Final,
			SQL:       traj.Final.SQL(),
			Measured:  traj.Measured,
			Satisfied: traj.Satisfied,
		})
	}
	return out, nil
}

// GenerateSatisfied keeps sampling until n satisfied statements are found
// or maxAttempts episodes have run; it returns the satisfied statements
// and the number of attempts consumed (the §7.2.2 efficiency metric).
// Episodes are sampled in batches of BatchSize and scanned in order, so
// the attempt count is identical for every Workers value.
func (t *Trainer) GenerateSatisfied(n, maxAttempts int) ([]Generated, int) {
	out, attempts, _ := t.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation: a done
// ctx stops sampling at the next batch boundary and returns the satisfied
// statements found so far, the attempts consumed, and ctx's cause wrapped.
func (t *Trainer) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]Generated, int, error) {
	var out []Generated
	_, attempts, err := t.GenerateSatisfiedStreamContext(ctx, n, maxAttempts,
		func(g Generated) error { out = append(out, g); return nil }, nil)
	return out, attempts, err
}

// GenerateSatisfiedStreamContext is the streaming form of
// GenerateSatisfiedContext: onRow is invoked with each satisfied
// statement the moment its batch completes, in deterministic episode
// order, instead of the results accumulating into a slice — the
// generation service sends each one down the wire as it appears. onBatch,
// when non-nil, is invoked after every sampled batch with the cumulative
// attempt and found counts (the service's Progress frames). A non-nil
// error from either callback stops sampling and is returned verbatim;
// the episode accounting, batching and therefore the produced statements
// are byte-identical to GenerateSatisfiedContext for the same trainer
// state and seed.
func (t *Trainer) GenerateSatisfiedStreamContext(ctx context.Context, n, maxAttempts int,
	onRow func(Generated) error, onBatch func(attempts, found int) error) (found, attempts int, err error) {
	return t.StreamSatisfied(ctx, t.actor, n, maxAttempts, onRow, onBatch)
}

// StreamSatisfied is GenerateSatisfiedStreamContext sampling from an
// explicit actor instead of the trainer's own. It is how the generation
// service serves a warm registry policy to many sessions at once: each
// session runs its own NewSampler trainer (own seed, episode counter,
// prefix cache and compute workspaces — no contention) while all of them
// read the one shared, frozen actor. The actor's weights are only read;
// the caller must not train it concurrently.
func (t *Trainer) StreamSatisfied(ctx context.Context, actor *nn.SeqNet, n, maxAttempts int,
	onRow func(Generated) error, onBatch func(attempts, found int) error) (found, attempts int, err error) {
	for attempts < maxAttempts && found < n {
		chunk := t.Cfg.BatchSize
		if rest := maxAttempts - attempts; chunk > rest {
			chunk = rest
		}
		batch, err := t.SampleBatchContext(ctx, actor, actor.BOS(), chunk, false, false)
		if err != nil {
			return found, attempts, err
		}
		for _, traj := range batch {
			if attempts++; traj.Satisfied {
				found++
				if err := onRow(Generated{
					Statement: traj.Final,
					SQL:       traj.Final.SQL(),
					Measured:  traj.Measured,
					Satisfied: true,
				}); err != nil {
					return found, attempts, err
				}
				if found == n {
					break
				}
			}
		}
		if onBatch != nil {
			if err := onBatch(attempts, found); err != nil {
				return found, attempts, err
			}
		}
	}
	return found, attempts, nil
}
