package rl

import (
	"context"
	"math/rand"

	"learnedsqlgen/internal/nn"
)

// Reinforce is the plain policy-gradient baseline of §4.3 (Williams'
// REINFORCE, Eq. 2): it uses the raw cumulative future reward R(τ_{t:T})
// in place of the critic's advantage, which the paper shows converges
// slower and less stably (Figure 8).
type Reinforce struct {
	Env        *Env
	Constraint Constraint
	Cfg        Config

	actor *nn.SeqNet
	opt   *nn.Adam
	rng   *rand.Rand

	// sampler reuses the Trainer episode machinery without a critic.
	sampler *Trainer
}

// NewReinforce builds the baseline trainer.
func NewReinforce(env *Env, constraint Constraint, cfg Config) *Reinforce {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := env.Vocab.Size()
	r := &Reinforce{
		Env:        env,
		Constraint: constraint,
		Cfg:        cfg,
		actor:      nn.NewSeqNet("reinforce", vocab, cfg.EmbedDim, cfg.Hidden, vocab, cfg.Dropout, rng),
		opt:        nn.NewAdam(cfg.ActorLR),
		rng:        rng,
	}
	r.sampler = &Trainer{Env: env, Constraint: constraint, Cfg: cfg, rng: rng}
	return r
}

// Actor exposes the policy network.
func (r *Reinforce) Actor() *nn.SeqNet { return r.actor }

// TrainEpoch samples episodes and applies REINFORCE updates. Like
// Trainer.TrainEpoch, each batch rolls out concurrently on Cfg.Workers
// goroutines with updates at the batch barrier.
func (r *Reinforce) TrainEpoch(episodes int) EpochStats {
	s, _ := r.TrainEpochContext(context.Background(), episodes)
	return s
}

// TrainEpochContext is TrainEpoch with cancellation, sharing
// Trainer.TrainEpochContext's semantics: partial batches never update the
// weights, and the error is non-nil iff the epoch was cut short.
func (r *Reinforce) TrainEpochContext(ctx context.Context, episodes int) (EpochStats, error) {
	stats := EpochStats{}
	var stopErr error
	for done := 0; done < episodes; {
		n := r.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch, err := r.sampler.SampleBatchContext(ctx, r.actor, r.actor.BOS(), n, false, true)
		if err != nil {
			stopErr = err
			break
		}
		for _, traj := range batch {
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		r.update(batch)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats, stopErr
}

// Train runs epochs and returns their stats traces.
func (r *Reinforce) Train(epochs, episodesPerEpoch int) []EpochStats {
	out, _ := r.TrainContext(context.Background(), epochs, episodesPerEpoch)
	return out
}

// TrainContext runs epochs under ctx, Config.TrainBudget and
// Config.OnEpoch, with the same trace and error semantics as
// Trainer.TrainContext.
func (r *Reinforce) TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]EpochStats, error) {
	tctx, cancel := r.sampler.trainCtx(ctx)
	defer cancel()
	out := make([]EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		s, err := r.TrainEpochContext(tctx, episodesPerEpoch)
		if err != nil {
			return out, trainStopErr(len(out), cancelCause(tctx))
		}
		out = append(out, s)
		if err := r.sampler.onEpoch(len(out), s); err != nil {
			return out, err
		}
	}
	return out, nil
}

// update applies the Eq. 2 gradient: ∇θ log π(a_t|s_t) · R(τ_{t:T}).
func (r *Reinforce) update(batch []*Trajectory) {
	scale := 1.0 / float64(len(batch))
	vocab := r.Env.Vocab.Size()
	ws := r.sampler.Workspace()
	pool := ws.Pool()
	for _, traj := range batch {
		T := len(traj.Steps)
		// Cumulative future rewards R_{t:T}.
		ret := make([]float64, T)
		acc := 0.0
		for i := T - 1; i >= 0; i-- {
			acc = traj.Steps[i].Reward + r.Cfg.Gamma*acc
			ret[i] = acc
		}
		dActor := make([][]float64, T)
		for i, s := range traj.Steps {
			d := pool.GetVec(vocab)
			nn.PolicyGradLogits(s.Probs, s.Valid, s.Action, ret[i]*scale, r.Cfg.EntropyWeight*scale, d)
			dActor[i] = d
		}
		r.actor.BackwardInto(ws, traj.ActorState, dActor)
		for _, d := range dActor {
			pool.PutVec(d)
		}
	}
	r.sampler.ReleaseBatch(batch)
	r.opt.Step(r.actor.Params())
}

// Generate samples n statements from the trained policy.
func (r *Reinforce) Generate(n int) []Generated {
	out, _ := r.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation.
func (r *Reinforce) GenerateContext(ctx context.Context, n int) ([]Generated, error) {
	batch, err := r.sampler.SampleBatchContext(ctx, r.actor, r.actor.BOS(), n, false, false)
	if err != nil {
		return nil, err
	}
	out := make([]Generated, 0, n)
	for _, traj := range batch {
		out = append(out, Generated{
			Statement: traj.Final,
			SQL:       traj.Final.SQL(),
			Measured:  traj.Measured,
			Satisfied: traj.Satisfied,
		})
	}
	return out, nil
}

// GenerateSatisfied mirrors Trainer.GenerateSatisfied.
func (r *Reinforce) GenerateSatisfied(n, maxAttempts int) ([]Generated, int) {
	out, attempts, _ := r.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation: it
// returns what was found before ctx was done, the attempts consumed, and
// ctx's cause wrapped.
func (r *Reinforce) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]Generated, int, error) {
	var out []Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		batch, err := r.sampler.SampleBatchContext(ctx, r.actor, r.actor.BOS(), 1, false, false)
		if err != nil {
			return out, attempts, err
		}
		traj := batch[0]
		attempts++
		if traj.Satisfied {
			out = append(out, Generated{
				Statement: traj.Final,
				SQL:       traj.Final.SQL(),
				Measured:  traj.Measured,
				Satisfied: true,
			})
		}
	}
	return out, attempts, nil
}
