package rl

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"learnedsqlgen/internal/durable"
	"learnedsqlgen/internal/nn"
)

// Store manages a directory of rotated, durable checkpoints with a
// last-good manifest. Save writes a new sequence-numbered checkpoint file
// (atomically, fsynced), then rewrites the manifest to list it first, and
// only then prunes files that rotated out — so at every instant the
// manifest names only complete, on-disk checkpoints, and a crash between
// any two steps leaves the previous state loadable. Load walks the
// manifest newest to oldest, skipping entries that are missing or fail
// the checkpoint format's CRC validation, and reports which file it
// restored — corruption of the newest checkpoint (torn disk, bit rot)
// degrades to the previous one instead of failing the run.
type Store struct {
	dir  string
	keep int
}

// DefaultStoreKeep is how many rotated checkpoints a Store retains when
// the caller passes keep <= 0.
const DefaultStoreKeep = 3

// manifestName is the last-good list, newest first, one filename per
// line.
const manifestName = "MANIFEST"

// ErrNoCheckpoint is returned by Load when the store holds no loadable
// checkpoint at all (empty directory, or every entry corrupt).
var ErrNoCheckpoint = errors.New("rl: no loadable checkpoint in store")

// NewStore opens (creating if needed) a checkpoint directory.
func NewStore(dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = DefaultStoreKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rl: checkpoint dir: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// manifest reads the last-good list, newest first. A missing manifest
// (first run, or pre-Store checkpoints) falls back to a directory scan in
// descending sequence order.
func (s *Store) manifest() []string {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err == nil {
		var names []string
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				names = append(names, line)
			}
		}
		if len(names) > 0 {
			return names
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".lsgc") {
			names = append(names, name)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // zero-padded: lexicographic = numeric
	return names
}

// seq extracts a checkpoint filename's sequence number; -1 if malformed.
func seq(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "ckpt-%06d.lsgc", &n); err != nil {
		return -1
	}
	return n
}

// Checkpointable is anything the Store can rotate to disk: a model whose
// weights serialize to a stream and restore from one. *Trainer implements
// it, and so does the meta package's MetaTrainer — the generation
// service's warm model registry checkpoints whole pre-trained domains
// through the same rotated, manifest-guarded store as single trainers.
type Checkpointable interface {
	Save(w io.Writer) error
	Load(r io.Reader) error
}

// Save writes t's weights as the next checkpoint in the rotation and
// returns the path written.
func (s *Store) Save(t Checkpointable) (string, error) {
	names := s.manifest()
	next := 0
	for _, name := range names {
		if n := seq(name); n >= next {
			next = n + 1
		}
	}
	name := fmt.Sprintf("ckpt-%06d.lsgc", next)
	path := filepath.Join(s.dir, name)
	if err := durable.WriteFile(path, t.Save); err != nil {
		return "", err
	}

	kept := append([]string{name}, names...)
	if len(kept) > s.keep {
		kept = kept[:s.keep]
	}
	if err := durable.WriteFileBytes(filepath.Join(s.dir, manifestName),
		[]byte(strings.Join(kept, "\n")+"\n")); err != nil {
		return "", err
	}
	// Prune only after the manifest no longer references the victims; a
	// crash before this point just leaves extra files on disk.
	keptSet := map[string]bool{}
	for _, k := range kept {
		keptSet[k] = true
	}
	for _, old := range names {
		if !keptSet[old] {
			os.Remove(filepath.Join(s.dir, old))
		}
	}
	return path, nil
}

// Load restores the newest loadable checkpoint into t, falling back past
// corrupt or missing entries, and returns the path it loaded. The error
// is ErrNoCheckpoint when nothing was loadable; the last corruption error
// is attached for diagnosis.
func (s *Store) Load(t Checkpointable) (string, error) {
	var lastErr error
	for _, name := range s.manifest() {
		path := filepath.Join(s.dir, name)
		err := loadFile(t, path)
		if err == nil {
			return path, nil
		}
		lastErr = err
		if !errors.Is(err, nn.ErrCorrupt) && !os.IsNotExist(err) {
			// Shape/vocabulary mismatch etc.: an older checkpoint would
			// mismatch identically, so fail now with the real error.
			return "", err
		}
	}
	if lastErr != nil {
		return "", fmt.Errorf("%w (last error: %v)", ErrNoCheckpoint, lastErr)
	}
	return "", ErrNoCheckpoint
}

// loadFile restores one checkpoint file into t.
func loadFile(t Checkpointable, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}
