package rl

import (
	"io"
	"os"

	"learnedsqlgen/internal/durable"
	"learnedsqlgen/internal/nn"
)

// Save writes the trained actor and critic weights to w, so the inference
// step can later "call the trained model to generate queries satisfying
// the constraint at any time, without retraining" (§3.3).
func (t *Trainer) Save(w io.Writer) error {
	params := append(t.actor.Params(), t.critic.Params()...)
	return nn.SaveParams(w, params)
}

// Load restores actor and critic weights written by Save. The trainer must
// have been built over the same vocabulary and configuration.
func (t *Trainer) Load(r io.Reader) error {
	params := append(t.actor.Params(), t.critic.Params()...)
	return nn.LoadParams(r, params)
}

// SaveFile writes the checkpoint durably: the bytes are staged in a
// temporary file and atomically renamed over path, so a crash at any
// point (kill -9 included) leaves either the previous checkpoint or the
// new one — never a truncated hybrid.
func (t *Trainer) SaveFile(path string) error {
	return durable.WriteFile(path, t.Save)
}

// LoadFile restores a checkpoint from path.
func (t *Trainer) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}
