package rl

import (
	"testing"
)

// BenchmarkSampleBatch measures one training batch rollout (actor + critic
// steps, dense feedback) — the inner loop of TrainEpoch. Allocation counts
// here are the regression guard for the workspace-based compute path;
// EXPERIMENTS.md records the before/after numbers.
func BenchmarkSampleBatch(b *testing.B) {
	env := testEnv(b)
	cfg := fastConfig()
	cfg.Workers = 1
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Release like TrainEpoch's update does, so the pooled tapes cycle.
		tr.ReleaseBatch(tr.SampleBatch(tr.Actor(), tr.Actor().BOS(), 8, true, true))
	}
}

// BenchmarkSampleBatchInference measures a generation batch (no critic, no
// BPTT tape) — the Generate/GenerateSatisfied path.
func BenchmarkSampleBatchInference(b *testing.B) {
	env := testEnv(b)
	cfg := fastConfig()
	cfg.Workers = 1
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SampleBatch(tr.Actor(), tr.Actor().BOS(), 8, false, false)
	}
}

// BenchmarkSampleBatchInferenceQuantized is the generation batch on the
// int8 fused kernels (Config.QuantizedInference); the snapshot is rebuilt
// once per batch, so its cost is included.
func BenchmarkSampleBatchInferenceQuantized(b *testing.B) {
	env := testEnv(b)
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QuantizedInference = true
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SampleBatch(tr.Actor(), tr.Actor().BOS(), 8, false, false)
	}
}

// BenchmarkTrainEpoch covers the full train loop including the gradient
// update at the batch barrier.
func BenchmarkTrainEpoch(b *testing.B) {
	env := testEnv(b)
	cfg := fastConfig()
	cfg.Workers = 1
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch(8)
	}
}
