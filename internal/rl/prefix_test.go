package rl

import (
	"testing"
)

// genSQL renders a generation run as one string per query.
func genSQL(gen []Generated) []string {
	out := make([]string, len(gen))
	for i, g := range gen {
		out[i] = g.SQL
	}
	return out
}

// TestPrefixCacheTraceEquality asserts the prefix-state cache is purely a
// throughput optimization: generated queries are byte-identical with the
// cache enabled or disabled, at every worker count.
func TestPrefixCacheTraceEquality(t *testing.T) {
	env := testEnv(t)
	type run struct {
		prefix  int // PrefixCacheSize
		workers int
	}
	runs := []run{
		{prefix: -1, workers: 1}, // reference: cache off, serial
		{prefix: 0, workers: 1},  // default-sized cache, serial
		{prefix: 0, workers: 4},  // cache shared across workers
		{prefix: 8, workers: 4},  // tiny cache that fills mid-batch
	}
	var ref []string
	var refSat []string
	var refAttempts int
	for _, r := range runs {
		cfg := fastConfig()
		cfg.Seed = 11
		cfg.Workers = r.workers
		cfg.PrefixCacheSize = r.prefix
		tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
		tr.Train(2, 16)
		got := genSQL(tr.Generate(30))
		sat, attempts := tr.GenerateSatisfied(5, 40)
		gotSat := genSQL(sat)
		if ref == nil {
			ref, refSat, refAttempts = got, gotSat, attempts
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("prefix=%d workers=%d: query %d = %q, want %q",
					r.prefix, r.workers, i, got[i], ref[i])
			}
		}
		if attempts != refAttempts || len(gotSat) != len(refSat) {
			t.Fatalf("prefix=%d workers=%d: satisfied run (%d in %d attempts) differs from reference (%d in %d)",
				r.prefix, r.workers, len(gotSat), attempts, len(refSat), refAttempts)
		}
		for i := range refSat {
			if gotSat[i] != refSat[i] {
				t.Fatalf("prefix=%d workers=%d: satisfied query %d differs", r.prefix, r.workers, i)
			}
		}
	}
}

// TestPrefixCacheCounters asserts the hit/miss telemetry: inference with
// the cache enabled registers hits (episodes of a batch share at least the
// BOS prefix), training registers nothing, and disabling the cache zeroes
// the counters.
func TestPrefixCacheCounters(t *testing.T) {
	env := testEnv(t)

	cfg := fastConfig()
	cfg.Workers = 1
	tr := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	tr.Train(1, 16) // training must not touch the prefix cache
	if s := tr.Stats(); s.PrefixHits != 0 || s.PrefixMisses != 0 {
		t.Fatalf("training moved prefix counters: %+v", s)
	}
	tr.Generate(30)
	s := tr.Stats()
	if s.PrefixHits == 0 || s.PrefixMisses == 0 {
		t.Fatalf("generation with cache on: hits=%d misses=%d, want both > 0",
			s.PrefixHits, s.PrefixMisses)
	}
	if s.PrefixHitRate <= 0 || s.PrefixHitRate >= 1 {
		t.Fatalf("hit rate = %v, want in (0,1)", s.PrefixHitRate)
	}

	cfg.PrefixCacheSize = -1
	off := NewTrainer(env, RangeConstraint(Cardinality, 10, 500), cfg)
	off.Generate(30)
	if s := off.Stats(); s.PrefixHits != 0 || s.PrefixMisses != 0 {
		t.Fatalf("disabled cache moved counters: %+v", s)
	}
}
