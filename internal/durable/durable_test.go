package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")

	if err := WriteFileBytes(path, []byte("v1")); err != nil {
		t.Fatalf("WriteFileBytes: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}
	if err := WriteFileBytes(path, []byte("v2-longer-content")); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2-longer-content" {
		t.Fatalf("content after replace = %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileFailedWriteLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bin")
	if err := WriteFileBytes(path, []byte("good")); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	err := WriteFile(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrap of %v", err, boom)
	}
	if got, _ := os.ReadFile(path); string(got) != "good" {
		t.Fatalf("target corrupted by failed write: %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestWriteFileMissingDirectory(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no-such-dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("expected an error for a missing directory")
	}
}

// assertNoTempFiles verifies no staging file survived, failed writes
// included — the temp-file cleanup contract.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("staging file left behind: %s", e.Name())
		}
	}
}
