// Package durable implements crash-safe file replacement. Checkpoints,
// manifests and workload files all go through WriteFile, which guarantees
// that a reader never observes a partially written target: the new content
// is staged in a temporary file in the same directory, fsynced, and then
// atomically renamed over the destination. A crash (including kill -9) at
// any point leaves either the old complete file or the new complete file —
// never a truncated hybrid.
package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The sequence is: create `<path>.tmp-*` in the target directory, stream
// the content, fsync the file, close, rename over path, fsync the
// directory so the rename itself is durable. On any error the temporary
// file is removed and the previous content of path is untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: stage %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("durable: fsync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	// The rename reached the directory; fsync the directory entry so the
	// swap survives power loss. Some platforms refuse to fsync directories
	// — the rename is still atomic there, so a failure is not fatal.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileBytes is WriteFile for in-memory content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteJSON atomically replaces path with v marshaled as indented JSON —
// the small durable state files (the service registry's warm-start
// manifest) share the crash-safety contract of every other artifact.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("durable: marshal %s: %w", path, err)
	}
	return WriteFileBytes(path, append(data, '\n'))
}
