package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRoundTrip frames and re-reads one of every message type.
func TestRoundTrip(t *testing.T) {
	msgs := []Message{
		&Hello{Version: Version, Client: "test", Seed: 42},
		&Welcome{Version: Version, Server: "sqlgen", SessionID: 7, Datasets: []string{"tpch", "xuetang"}},
		&Generate{ID: 3, Dataset: "tpch", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 1000, N: 10, MaxAttempts: 500},
		&Generate{ID: 4, Dataset: "job", Metric: "cost", Point: 12000, N: 1},
		&Row{ID: 3, SQL: "SELECT a FROM t", Measured: 41, Satisfied: true},
		&Progress{ID: 3, Attempts: 64, Found: 5},
		&Done{ID: 3, Found: 10, Attempts: 96},
		&Done{ID: 4, Found: 0, Attempts: 8, Canceled: true},
		&Error{ID: 4, Msg: "unknown dataset"},
		&Cancel{ID: 4},
		&Goodbye{},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %T: %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf, 0)
		if err != nil {
			t.Fatalf("read %T: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %T: got %+v want %+v", want, got, want)
		}
	}
	if _, err := ReadMessage(&buf, 0); err != io.EOF {
		t.Errorf("drained stream: err = %v, want io.EOF", err)
	}
}

// TestTruncatedFrame verifies a frame cut mid-payload surfaces as an
// error naming the frame, not a silent short read.
func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Row{ID: 1, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, 5, len(full) - 1} {
		if _, err := ReadMessage(bytes.NewReader(full[:cut]), 0); err == nil {
			t.Errorf("cut at %d bytes: no error", cut)
		}
	}
}

// TestOversizeFrame verifies the max-frame guard fires before the
// payload is read.
func TestOversizeFrame(t *testing.T) {
	hdr := make([]byte, 5)
	hdr[0] = TypeRow
	binary.BigEndian.PutUint32(hdr[1:], 1<<30)
	_, err := ReadMessage(bytes.NewReader(hdr), 0)
	if err == nil || !strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversize frame: err = %v", err)
	}
	// A small custom cap applies too.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Row{ID: 1, SQL: strings.Repeat("x", 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf, 16); err == nil {
		t.Error("frame above custom cap accepted")
	}
}

// TestUnknownType verifies unknown frame types are refused.
func TestUnknownType(t *testing.T) {
	frame := []byte{'Z', 0, 0, 0, 2, '{', '}'}
	if _, err := ReadMessage(bytes.NewReader(frame), 0); err == nil || !strings.Contains(err.Error(), "unknown frame type") {
		t.Errorf("unknown type: err = %v", err)
	}
}

// TestPipeErrorPaths drives the reader over a real net.Pipe — a
// synchronous, deadline-capable net.Conn — instead of an in-memory
// buffer, so the error paths are exercised the way a live session's read
// loop sees them: the writer is a concurrent peer, a truncated frame ends
// with the connection closing mid-payload, and errors must surface
// without hanging either side.
func TestPipeErrorPaths(t *testing.T) {
	row := func() []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Row{ID: 9, SQL: "SELECT 1"}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		// raw bytes the peer writes before closing its end
		raw []byte
		// maxFrame passed to ReadMessage (0 = default)
		maxFrame int
		wantErr  string // "" means any non-nil error (close/EOF-driven)
	}{
		{
			name: "oversized frame",
			raw: func() []byte {
				hdr := make([]byte, 5)
				hdr[0] = TypeRow
				binary.BigEndian.PutUint32(hdr[1:], 1<<30)
				return hdr
			}(),
			wantErr: "exceeds max",
		},
		{
			name:     "frame above custom cap",
			raw:      row,
			maxFrame: 4,
			wantErr:  "exceeds max",
		},
		{
			name:    "truncated header",
			raw:     row[:3],
			wantErr: "", // io.ErrUnexpectedEOF once the peer closes
		},
		{
			name:    "truncated payload",
			raw:     row[:len(row)-2],
			wantErr: "truncated frame",
		},
		{
			name:    "unknown frame type",
			raw:     []byte{'Z', 0, 0, 0, 2, '{', '}'},
			wantErr: "unknown frame type",
		},
		{
			name:    "malformed payload",
			raw:     []byte{TypeRow, 0, 0, 0, 3, 'x', 'y', 'z'},
			wantErr: "decode frame",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cli, srv := net.Pipe()
			defer srv.Close()
			go func() {
				cli.Write(tc.raw)
				cli.Close()
			}()
			srv.SetReadDeadline(time.Now().Add(5 * time.Second))
			msg, err := ReadMessage(srv, tc.maxFrame)
			if err == nil {
				t.Fatalf("ReadMessage = %+v, want error", msg)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestPipeRoundTrip sanity-checks the happy path over the same transport:
// a full WriteMessage/ReadMessage exchange across net.Pipe with the
// writer on its own goroutine (net.Pipe writes block until read).
func TestPipeRoundTrip(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	want := &Generate{ID: 3, Dataset: "tpch", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 1000, N: 10}
	errc := make(chan error, 1)
	go func() { errc <- WriteMessage(cli, want) }()
	srv.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := ReadMessage(srv, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
}
