package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRoundTrip frames and re-reads one of every message type.
func TestRoundTrip(t *testing.T) {
	msgs := []Message{
		&Hello{Version: Version, Client: "test", Seed: 42},
		&Hello{Version: Version, Client: "test", Seed: 42, Token: "tenant-a-token"},
		&Welcome{Version: Version, Server: "sqlgen", SessionID: 7, Datasets: []string{"tpch", "xuetang"}},
		&Generate{ID: 3, Dataset: "tpch", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 1000, N: 10, MaxAttempts: 500},
		&Generate{ID: 4, Dataset: "job", Metric: "cost", Point: 12000, N: 1},
		&Generate{ID: 5, Dataset: "tpch", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 1, DeadlineMillis: 1500},
		&Row{ID: 3, SQL: "SELECT a FROM t", Measured: 41, Satisfied: true},
		&Progress{ID: 3, Attempts: 64, Found: 5},
		&Done{ID: 3, Found: 10, Attempts: 96},
		&Done{ID: 4, Found: 0, Attempts: 8, Canceled: true},
		&Error{ID: 4, Msg: "unknown dataset", Code: CodeUnknownDataset},
		&Error{ID: 5, Msg: "tenant over rate", Code: CodeQuotaExceeded, Retryable: true, RetryAfterMillis: 250},
		&Cancel{ID: 4},
		&Goodbye{},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %T: %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf, 0)
		if err != nil {
			t.Fatalf("read %T: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %T: got %+v want %+v", want, got, want)
		}
	}
	if _, err := ReadMessage(&buf, 0); err != io.EOF {
		t.Errorf("drained stream: err = %v, want io.EOF", err)
	}
}

// TestTruncatedFrame verifies a frame cut mid-payload surfaces as an
// error naming the frame, not a silent short read.
func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Row{ID: 1, SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 3, 5, len(full) - 1} {
		if _, err := ReadMessage(bytes.NewReader(full[:cut]), 0); err == nil {
			t.Errorf("cut at %d bytes: no error", cut)
		}
	}
}

// TestOversizeFrame verifies the max-frame guard fires before the
// payload is read.
func TestOversizeFrame(t *testing.T) {
	hdr := make([]byte, 5)
	hdr[0] = TypeRow
	binary.BigEndian.PutUint32(hdr[1:], 1<<30)
	_, err := ReadMessage(bytes.NewReader(hdr), 0)
	if err == nil || !strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversize frame: err = %v", err)
	}
	// A small custom cap applies too.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Row{ID: 1, SQL: strings.Repeat("x", 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&buf, 16); err == nil {
		t.Error("frame above custom cap accepted")
	}
}

// TestUnknownType verifies unknown frame types are refused.
func TestUnknownType(t *testing.T) {
	frame := []byte{'Z', 0, 0, 0, 2, '{', '}'}
	if _, err := ReadMessage(bytes.NewReader(frame), 0); err == nil || !strings.Contains(err.Error(), "unknown frame type") {
		t.Errorf("unknown type: err = %v", err)
	}
}

// TestPipeErrorPaths drives the reader over a real net.Pipe — a
// synchronous, deadline-capable net.Conn — instead of an in-memory
// buffer, so the error paths are exercised the way a live session's read
// loop sees them: the writer is a concurrent peer, a truncated frame ends
// with the connection closing mid-payload, and errors must surface
// without hanging either side.
func TestPipeErrorPaths(t *testing.T) {
	row := func() []byte {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Row{ID: 9, SQL: "SELECT 1"}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		// raw bytes the peer writes before closing its end
		raw []byte
		// maxFrame passed to ReadMessage (0 = default)
		maxFrame int
		wantErr  string // "" means any non-nil error (close/EOF-driven)
	}{
		{
			name: "oversized frame",
			raw: func() []byte {
				hdr := make([]byte, 5)
				hdr[0] = TypeRow
				binary.BigEndian.PutUint32(hdr[1:], 1<<30)
				return hdr
			}(),
			wantErr: "exceeds max",
		},
		{
			name:     "frame above custom cap",
			raw:      row,
			maxFrame: 4,
			wantErr:  "exceeds max",
		},
		{
			name:    "truncated header",
			raw:     row[:3],
			wantErr: "", // io.ErrUnexpectedEOF once the peer closes
		},
		{
			name:    "truncated payload",
			raw:     row[:len(row)-2],
			wantErr: "truncated frame",
		},
		{
			name:    "unknown frame type",
			raw:     []byte{'Z', 0, 0, 0, 2, '{', '}'},
			wantErr: "unknown frame type",
		},
		{
			name:    "malformed payload",
			raw:     []byte{TypeRow, 0, 0, 0, 3, 'x', 'y', 'z'},
			wantErr: "decode frame",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cli, srv := net.Pipe()
			defer srv.Close()
			go func() {
				cli.Write(tc.raw)
				cli.Close()
			}()
			srv.SetReadDeadline(time.Now().Add(5 * time.Second))
			msg, err := ReadMessage(srv, tc.maxFrame)
			if err == nil {
				t.Fatalf("ReadMessage = %+v, want error", msg)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestRetryableCode pins the default retryability classification.
func TestRetryableCode(t *testing.T) {
	for _, code := range []string{CodeQuotaExceeded, CodeOverloaded, CodeDraining} {
		if !RetryableCode(code) {
			t.Errorf("RetryableCode(%q) = false, want true", code)
		}
	}
	for _, code := range []string{CodeUnauthenticated, CodeDeadlineExceeded, CodeInvalidArgument,
		CodeUnknownDataset, CodeIdleTimeout, CodeUnsupportedVersion, CodeProtocol, CodeInternal, ""} {
		if RetryableCode(code) {
			t.Errorf("RetryableCode(%q) = true, want false", code)
		}
	}
}

// TestV1HelloDecodes proves back-compat at the frame level: a version-1
// Hello (no token field on the wire) decodes on a v2 reader, and a v2
// Hello with a token decodes on a reader that only knows the v1 fields
// (encoding/json ignores unknown keys).
func TestV1HelloDecodes(t *testing.T) {
	raw := []byte(`{"version":1,"client":"old","seed":9}`)
	frame := append([]byte{TypeHello, 0, 0, 0, byte(len(raw))}, raw...)
	m, err := ReadMessage(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatalf("read v1 hello: %v", err)
	}
	h, ok := m.(*Hello)
	if !ok || h.Version != 1 || h.Seed != 9 || h.Token != "" {
		t.Fatalf("v1 hello decoded as %#v", m)
	}
}

// TestReaderReusesBuffer checks the Reader contract: a frame sequence
// round-trips identically to ReadMessage, the payload buffer grows only
// to the high-water mark, and a previously returned message stays valid
// after later reads (no aliasing into the reused buffer).
func TestReaderReusesBuffer(t *testing.T) {
	big := &Row{ID: 1, SQL: strings.Repeat("SELECT a FROM t WHERE x; ", 40)}
	small := &Progress{ID: 1, Attempts: 10, Found: 1}
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		for _, m := range []Message{big, small} {
			if err := WriteMessage(&buf, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	rd := NewReader(&buf, 0)
	first, err := rd.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	firstRow, ok := first.(*Row)
	if !ok || firstRow.SQL != big.SQL {
		t.Fatalf("first frame decoded as %#v", first)
	}
	capAfterBig := cap(rd.buf)
	for i := 0; i < 5; i++ {
		if _, err := rd.ReadMessage(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if cap(rd.buf) != capAfterBig {
		t.Errorf("buffer reallocated under the high-water mark: cap %d → %d", capAfterBig, cap(rd.buf))
	}
	if firstRow.SQL != big.SQL {
		t.Error("earlier message corrupted by buffer reuse")
	}
	if _, err := rd.ReadMessage(); err != io.EOF {
		t.Errorf("drained reader: err = %v, want io.EOF", err)
	}
	if rd.Dirty() {
		t.Error("clean EOF left the reader dirty")
	}
}

// TestReaderDirty distinguishes a clean idle timeout (no bytes consumed —
// the stream is still aligned, the caller may re-arm and retry) from a
// deadline firing mid-frame (torn stream, must close).
func TestReaderDirty(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	rd := NewReader(srv, 0)

	// Clean timeout: nothing on the wire.
	srv.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := rd.ReadMessage(); err == nil {
		t.Fatal("read with nothing on the wire succeeded")
	}
	if rd.Dirty() {
		t.Fatal("clean timeout marked dirty")
	}

	// The stream is still usable: a whole frame now parses.
	go WriteMessage(cli, &Cancel{ID: 4}) //nolint:errcheck
	srv.SetReadDeadline(time.Now().Add(5 * time.Second))
	if m, err := rd.ReadMessage(); err != nil {
		t.Fatalf("read after clean timeout: %v (%T)", err, m)
	}

	// Torn frame: a partial header then silence past the deadline.
	go cli.Write([]byte{TypeCancel, 0, 0})
	time.Sleep(50 * time.Millisecond) // let the partial bytes land
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := rd.ReadMessage(); err == nil {
		t.Fatal("torn frame read succeeded")
	}
	if !rd.Dirty() {
		t.Fatal("mid-frame timeout not marked dirty")
	}
}

// BenchmarkReadMessage / BenchmarkReader quantify the per-frame payload
// allocation the Reader amortizes away (the serve bench area snapshots
// the same comparison end to end).
func benchFrames(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Row{ID: 7, SQL: "SELECT l_orderkey FROM lineitem WHERE l_tax < 0.05", Measured: 1200, Satisfied: true}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkReadMessage(b *testing.B) {
	frame := benchFrames(b)
	r := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, err := ReadMessage(r, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReader(b *testing.B) {
	frame := benchFrames(b)
	r := bytes.NewReader(nil)
	rd := NewReader(r, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, err := rd.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPipeRoundTrip sanity-checks the happy path over the same transport:
// a full WriteMessage/ReadMessage exchange across net.Pipe with the
// writer on its own goroutine (net.Pipe writes block until read).
func TestPipeRoundTrip(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	want := &Generate{ID: 3, Dataset: "tpch", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 1000, N: 10}
	errc := make(chan error, 1)
	go func() { errc <- WriteMessage(cli, want) }()
	srv.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := ReadMessage(srv, 0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
}
