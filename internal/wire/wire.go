// Package wire is the generation service's framed protocol: a small
// pgwire-style binary framing (one type byte, a big-endian uint32 payload
// length, then the payload) carrying typed JSON messages. The framing —
// not the payload encoding — is the contract: readers dispatch on the
// type byte and enforce a maximum frame size before touching the payload,
// so a malformed or hostile peer can never make the server allocate
// unboundedly or misparse a stream.
//
// The conversation is strictly client-initiated:
//
//	client                          server
//	  Hello ————————————————————————→
//	   ←———————————————————————— Welcome
//	  Generate{id, …} ————————————————→
//	   ←——————————————————————— Row{id}   (repeated, as queries are found)
//	   ←————————————————————— Progress{id} (periodic)
//	   ←—————————————————————————— Done{id}  (or Error{id})
//	  Cancel{id} ————————————————————→    (optional, any time)
//	  Goodbye ————————————————————————→
//
// Several Generate requests may be in flight on one connection; every
// server frame carries the request id it belongs to, so clients demux by
// id. Rows stream as they are found — the server never buffers a result
// set.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Version is the protocol version spoken by this package. Hello carries
// the client's version; the server refuses mismatches in Welcome's stead
// with an Error frame, so old clients fail loudly at handshake time.
const Version = 1

// DefaultMaxFrame bounds a frame's payload size (1 MiB). Generated SQL
// statements are a few hundred bytes; anything near the bound is a
// protocol violation, not a workload.
const DefaultMaxFrame = 1 << 20

// Frame type bytes. Values are stable protocol surface; never renumber.
const (
	TypeHello    = byte('H')
	TypeWelcome  = byte('W')
	TypeGenerate = byte('G')
	TypeRow      = byte('R')
	TypeProgress = byte('P')
	TypeDone     = byte('D')
	TypeError    = byte('E')
	TypeCancel   = byte('C')
	TypeGoodbye  = byte('B')
)

// Message is one typed protocol message. Type returns the frame type
// byte the message travels under.
type Message interface {
	Type() byte
}

// Hello opens a session. Seed keys the session's deterministic stream
// fan-out: the same seed and the same request sequence replay the same
// generated queries byte for byte.
type Hello struct {
	Version int    `json:"version"`
	Client  string `json:"client,omitempty"`
	Seed    int64  `json:"seed"`
}

// Welcome acknowledges Hello with the server identity and session id.
type Welcome struct {
	Version   int    `json:"version"`
	Server    string `json:"server,omitempty"`
	SessionID uint64 `json:"session_id"`
	// Datasets lists the dataset names this server is warm for.
	Datasets []string `json:"datasets,omitempty"`
}

// Generate asks for up to N satisfied queries under a constraint against
// a named dataset. ID is chosen by the client and must be unique among
// the connection's in-flight requests; every response frame echoes it.
type Generate struct {
	ID      uint64 `json:"id"`
	Dataset string `json:"dataset"`
	// Metric is "cardinality" or "cost".
	Metric string `json:"metric"`
	// IsRange selects Lo/Hi; otherwise Point (with the paper's 10%
	// tolerance).
	IsRange bool    `json:"is_range"`
	Point   float64 `json:"point,omitempty"`
	Lo      float64 `json:"lo,omitempty"`
	Hi      float64 `json:"hi,omitempty"`
	// N is the number of satisfied queries wanted; MaxAttempts caps the
	// episodes spent finding them (0 selects the server default).
	N           int `json:"n"`
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Row streams one satisfied query the moment it is found.
type Row struct {
	ID        uint64  `json:"id"`
	SQL       string  `json:"sql"`
	Measured  float64 `json:"measured"`
	Satisfied bool    `json:"satisfied"`
}

// Progress reports a request's attempt consumption at batch boundaries,
// so clients can show liveness on hard constraints.
type Progress struct {
	ID       uint64 `json:"id"`
	Attempts int    `json:"attempts"`
	Found    int    `json:"found"`
}

// Done terminates a request's stream: every Row for ID has been sent.
type Done struct {
	ID       uint64 `json:"id"`
	Found    int    `json:"found"`
	Attempts int    `json:"attempts"`
	// Canceled reports the stream was cut short (client Cancel, session
	// close, or server drain) rather than running to completion.
	Canceled bool `json:"canceled,omitempty"`
}

// Error terminates a request's stream (ID != 0) or the session (ID == 0)
// with a reason.
type Error struct {
	ID  uint64 `json:"id,omitempty"`
	Msg string `json:"msg"`
}

// Cancel asks the server to stop a request's stream; the server still
// finishes the frame in flight and answers with Done{Canceled: true}.
type Cancel struct {
	ID uint64 `json:"id"`
}

// Goodbye announces an orderly client departure.
type Goodbye struct{}

// Type implementations pin each message to its frame byte.
func (Hello) Type() byte    { return TypeHello }
func (Welcome) Type() byte  { return TypeWelcome }
func (Generate) Type() byte { return TypeGenerate }
func (Row) Type() byte      { return TypeRow }
func (Progress) Type() byte { return TypeProgress }
func (Done) Type() byte     { return TypeDone }
func (Error) Type() byte    { return TypeError }
func (Cancel) Type() byte   { return TypeCancel }
func (Goodbye) Type() byte  { return TypeGoodbye }

// WriteMessage frames and writes one message: type byte, big-endian
// payload length, JSON payload. It performs exactly one Write call, so
// concurrent writers serialized by a mutex never interleave frames.
func WriteMessage(w io.Writer, m Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal %T: %w", m, err)
	}
	if len(payload) > DefaultMaxFrame {
		return fmt.Errorf("wire: %T payload %d bytes exceeds max frame %d", m, len(payload), DefaultMaxFrame)
	}
	buf := make([]byte, 5+len(payload))
	buf[0] = m.Type()
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads one frame and decodes it into its typed message.
// maxFrame <= 0 selects DefaultMaxFrame. Unknown type bytes and
// oversized frames return an error without consuming the payload — the
// stream is unrecoverable at that point and must be closed.
func ReadMessage(r io.Reader, maxFrame int) (Message, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if int(n) > maxFrame {
		return nil, fmt.Errorf("wire: frame type %q length %d exceeds max %d", hdr[0], n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated frame type %q: %w", hdr[0], err)
	}
	var m Message
	switch hdr[0] {
	case TypeHello:
		m = &Hello{}
	case TypeWelcome:
		m = &Welcome{}
	case TypeGenerate:
		m = &Generate{}
	case TypeRow:
		m = &Row{}
	case TypeProgress:
		m = &Progress{}
	case TypeDone:
		m = &Done{}
	case TypeError:
		m = &Error{}
	case TypeCancel:
		m = &Cancel{}
	case TypeGoodbye:
		m = &Goodbye{}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %q", hdr[0])
	}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("wire: decode frame %q: %w", hdr[0], err)
	}
	return m, nil
}
