// Package wire is the generation service's framed protocol: a small
// pgwire-style binary framing (one type byte, a big-endian uint32 payload
// length, then the payload) carrying typed JSON messages. The framing —
// not the payload encoding — is the contract: readers dispatch on the
// type byte and enforce a maximum frame size before touching the payload,
// so a malformed or hostile peer can never make the server allocate
// unboundedly or misparse a stream.
//
// The conversation is strictly client-initiated:
//
//	client                          server
//	  Hello ————————————————————————→
//	   ←———————————————————————— Welcome
//	  Generate{id, …} ————————————————→
//	   ←——————————————————————— Row{id}   (repeated, as queries are found)
//	   ←————————————————————— Progress{id} (periodic)
//	   ←—————————————————————————— Done{id}  (or Error{id})
//	  Cancel{id} ————————————————————→    (optional, any time)
//	  Goodbye ————————————————————————→
//
// Several Generate requests may be in flight on one connection; every
// server frame carries the request id it belongs to, so clients demux by
// id. Rows stream as they are found — the server never buffers a result
// set.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Version is the newest protocol version spoken by this package. Hello
// carries the client's version; the server accepts anything in
// [MinVersion, Version] and echoes the negotiated version in Welcome, so
// old clients keep working and too-new clients fail loudly at handshake
// time with an Error frame.
//
// Version 2 adds per-session auth (Hello.Token), per-request deadlines
// (Generate.DeadlineMillis), and structured refusals (Error.Code /
// Retryable / RetryAfterMillis). Every addition is an optional JSON
// field, and version-1 decoders ignore unknown fields, so a v1 peer
// interoperates untouched — it simply cannot authenticate or set
// deadlines.
const Version = 2

// MinVersion is the oldest client protocol version the server accepts.
const MinVersion = 1

// DefaultMaxFrame bounds a frame's payload size (1 MiB). Generated SQL
// statements are a few hundred bytes; anything near the bound is a
// protocol violation, not a workload.
const DefaultMaxFrame = 1 << 20

// Frame type bytes. Values are stable protocol surface; never renumber.
const (
	TypeHello    = byte('H')
	TypeWelcome  = byte('W')
	TypeGenerate = byte('G')
	TypeRow      = byte('R')
	TypeProgress = byte('P')
	TypeDone     = byte('D')
	TypeError    = byte('E')
	TypeCancel   = byte('C')
	TypeGoodbye  = byte('B')
)

// Message is one typed protocol message. Type returns the frame type
// byte the message travels under.
type Message interface {
	Type() byte
}

// Hello opens a session. Seed keys the session's deterministic stream
// fan-out: the same seed and the same request sequence replay the same
// generated queries byte for byte.
type Hello struct {
	Version int    `json:"version"`
	Client  string `json:"client,omitempty"`
	Seed    int64  `json:"seed"`
	// Token authenticates the session when the server has tenants
	// configured (v2). Servers without auth ignore it.
	Token string `json:"token,omitempty"`
}

// Welcome acknowledges Hello with the server identity and session id.
type Welcome struct {
	Version   int    `json:"version"`
	Server    string `json:"server,omitempty"`
	SessionID uint64 `json:"session_id"`
	// Datasets lists the dataset names this server is warm for.
	Datasets []string `json:"datasets,omitempty"`
}

// Generate asks for up to N satisfied queries under a constraint against
// a named dataset. ID is chosen by the client and must be unique among
// the connection's in-flight requests; every response frame echoes it.
type Generate struct {
	ID      uint64 `json:"id"`
	Dataset string `json:"dataset"`
	// Metric is "cardinality" or "cost".
	Metric string `json:"metric"`
	// IsRange selects Lo/Hi; otherwise Point (with the paper's 10%
	// tolerance).
	IsRange bool    `json:"is_range"`
	Point   float64 `json:"point,omitempty"`
	Lo      float64 `json:"lo,omitempty"`
	Hi      float64 `json:"hi,omitempty"`
	// N is the number of satisfied queries wanted; MaxAttempts caps the
	// episodes spent finding them (0 selects the server default).
	N           int `json:"n"`
	MaxAttempts int `json:"max_attempts,omitempty"`
	// DeadlineMillis bounds the request's wall clock from server receipt
	// (v2). 0 means no client deadline; the server may still cap every
	// request with its own maximum. Expiry ends the stream with an Error
	// carrying CodeDeadlineExceeded.
	DeadlineMillis int64 `json:"deadline_millis,omitempty"`
}

// Row streams one satisfied query the moment it is found.
type Row struct {
	ID        uint64  `json:"id"`
	SQL       string  `json:"sql"`
	Measured  float64 `json:"measured"`
	Satisfied bool    `json:"satisfied"`
}

// Progress reports a request's attempt consumption at batch boundaries,
// so clients can show liveness on hard constraints.
type Progress struct {
	ID       uint64 `json:"id"`
	Attempts int    `json:"attempts"`
	Found    int    `json:"found"`
}

// Done terminates a request's stream: every Row for ID has been sent.
type Done struct {
	ID       uint64 `json:"id"`
	Found    int    `json:"found"`
	Attempts int    `json:"attempts"`
	// Canceled reports the stream was cut short (client Cancel, session
	// close, or server drain) rather than running to completion.
	Canceled bool `json:"canceled,omitempty"`
}

// Error terminates a request's stream (ID != 0) or the session (ID == 0)
// with a reason. Code (v2) is the stable, machine-readable refusal class;
// Retryable tells the client whether re-issuing the identical request
// later can succeed (the deterministic seed fan-out makes the replay
// byte-identical), and RetryAfterMillis hints how long to wait first.
type Error struct {
	ID               uint64 `json:"id,omitempty"`
	Msg              string `json:"msg"`
	Code             string `json:"code,omitempty"`
	Retryable        bool   `json:"retryable,omitempty"`
	RetryAfterMillis int64  `json:"retry_after_millis,omitempty"`
}

// Stable Error.Code values. Strings are protocol surface; never rename.
const (
	// CodeUnauthenticated: the Hello token is missing or unknown while the
	// server requires auth. Not retryable — fix the credential.
	CodeUnauthenticated = "unauthenticated"
	// CodeQuotaExceeded: a per-tenant limit (request rate, concurrent
	// streams, or attempts budget) refused or cut the request. Retryable
	// after the hinted delay.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeOverloaded: a server-wide admission limit (max sessions or max
	// in-flight streams) shed the work. Retryable.
	CodeOverloaded = "overloaded"
	// CodeDeadlineExceeded: the request's deadline (client-set or the
	// server max) expired before N queries were found. Not retryable.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeDraining: the server is shutting down and refuses new work.
	// Retryable — against this instance's successor.
	CodeDraining = "draining"
	// CodeInvalidArgument: the request is malformed (non-finite bounds,
	// non-positive N, unknown metric). Not retryable.
	CodeInvalidArgument = "invalid_argument"
	// CodeUnknownDataset: the named dataset is not served here.
	CodeUnknownDataset = "unknown_dataset"
	// CodeIdleTimeout: the session sat idle (no frames, nothing in
	// flight) past the server's idle limit and was reaped.
	CodeIdleTimeout = "idle_timeout"
	// CodeUnsupportedVersion: the Hello version is outside
	// [MinVersion, Version].
	CodeUnsupportedVersion = "unsupported_version"
	// CodeProtocol: a frame violated the conversation's state machine.
	CodeProtocol = "protocol"
	// CodeInternal: the server failed while serving a well-formed request.
	CodeInternal = "internal"
)

// RetryableCode is the default retryability classification of a code —
// the fallback when an Error frame (e.g. from a v1 server) does not set
// Retryable explicitly.
func RetryableCode(code string) bool {
	switch code {
	case CodeQuotaExceeded, CodeOverloaded, CodeDraining:
		return true
	}
	return false
}

// Cancel asks the server to stop a request's stream; the server still
// finishes the frame in flight and answers with Done{Canceled: true}.
type Cancel struct {
	ID uint64 `json:"id"`
}

// Goodbye announces an orderly client departure.
type Goodbye struct{}

// Type implementations pin each message to its frame byte.
func (Hello) Type() byte    { return TypeHello }
func (Welcome) Type() byte  { return TypeWelcome }
func (Generate) Type() byte { return TypeGenerate }
func (Row) Type() byte      { return TypeRow }
func (Progress) Type() byte { return TypeProgress }
func (Done) Type() byte     { return TypeDone }
func (Error) Type() byte    { return TypeError }
func (Cancel) Type() byte   { return TypeCancel }
func (Goodbye) Type() byte  { return TypeGoodbye }

// WriteMessage frames and writes one message: type byte, big-endian
// payload length, JSON payload. It performs exactly one Write call, so
// concurrent writers serialized by a mutex never interleave frames.
func WriteMessage(w io.Writer, m Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wire: marshal %T: %w", m, err)
	}
	if len(payload) > DefaultMaxFrame {
		return fmt.Errorf("wire: %T payload %d bytes exceeds max frame %d", m, len(payload), DefaultMaxFrame)
	}
	buf := make([]byte, 5+len(payload))
	buf[0] = m.Type()
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err = w.Write(buf)
	return err
}

// newMessage maps a frame type byte to a fresh zero message of its type.
func newMessage(typ byte) (Message, error) {
	switch typ {
	case TypeHello:
		return &Hello{}, nil
	case TypeWelcome:
		return &Welcome{}, nil
	case TypeGenerate:
		return &Generate{}, nil
	case TypeRow:
		return &Row{}, nil
	case TypeProgress:
		return &Progress{}, nil
	case TypeDone:
		return &Done{}, nil
	case TypeError:
		return &Error{}, nil
	case TypeCancel:
		return &Cancel{}, nil
	case TypeGoodbye:
		return &Goodbye{}, nil
	}
	return nil, fmt.Errorf("wire: unknown frame type %q", typ)
}

// decodeFrame reads one frame into buf (which must hold at least the
// payload; callers size it) and decodes the typed message. It reports
// whether any bytes were consumed before a failure, so deadline-driven
// readers can tell a clean timeout from a torn frame.
func decodeFrame(r io.Reader, maxFrame int, grow func(n int) []byte) (m Message, consumed bool, err error) {
	var hdr [5]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, n > 0, err
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	if int(n) > maxFrame {
		return nil, true, fmt.Errorf("wire: frame type %q length %d exceeds max %d", hdr[0], n, maxFrame)
	}
	payload := grow(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, true, fmt.Errorf("wire: truncated frame type %q: %w", hdr[0], err)
	}
	m, err = newMessage(hdr[0])
	if err != nil {
		return nil, true, err
	}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, true, fmt.Errorf("wire: decode frame %q: %w", hdr[0], err)
	}
	return m, true, nil
}

// ReadMessage reads one frame and decodes it into its typed message.
// maxFrame <= 0 selects DefaultMaxFrame. Unknown type bytes and
// oversized frames return an error without consuming the payload — the
// stream is unrecoverable at that point and must be closed. Each call
// allocates a fresh payload buffer; long-lived single-goroutine readers
// (the server session read loop, the client demux loop) should use a
// Reader instead.
func ReadMessage(r io.Reader, maxFrame int) (Message, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	m, _, err := decodeFrame(r, maxFrame, func(n int) []byte { return make([]byte, n) })
	return m, err
}

// Reader reads frames through a grow-only payload buffer, amortizing the
// per-frame allocation of ReadMessage to zero in steady state. It is NOT
// safe for concurrent use — it exists precisely for the protocol's
// single-goroutine readers. The decoded Message never aliases the buffer
// (encoding/json copies what it keeps), so the previous message stays
// valid across the next ReadMessage.
type Reader struct {
	r        io.Reader
	maxFrame int
	buf      []byte
	dirty    bool
}

// NewReader wraps r; maxFrame <= 0 selects DefaultMaxFrame.
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Reader{r: r, maxFrame: maxFrame}
}

// Dirty reports whether the last failed ReadMessage had already consumed
// bytes of a frame. A clean timeout (Dirty false) leaves the stream
// aligned, so the caller may re-arm its deadline and read again; a dirty
// failure tore a frame and the connection must be closed.
func (rd *Reader) Dirty() bool { return rd.dirty }

// ReadMessage reads and decodes one frame, reusing the internal buffer.
func (rd *Reader) ReadMessage() (Message, error) {
	m, consumed, err := decodeFrame(rd.r, rd.maxFrame, rd.grow)
	rd.dirty = err != nil && consumed
	return m, err
}

// grow returns an n-byte prefix of the reusable buffer, growing it only
// when a frame exceeds every previous one.
func (rd *Reader) grow(n int) []byte {
	if cap(rd.buf) < n {
		rd.buf = make([]byte, n)
	}
	return rd.buf[:n]
}
