// Package service is the generation-as-a-service layer: a long-running
// TCP server speaking the wire package's framed protocol, streaming
// constraint-satisfying queries to many concurrent client sessions from
// a warm model registry.
//
// The layering mirrors the library stack it fronts. A Server owns one or
// more open Datasets (generated data + token vocabulary + RL
// environment) and one Registry of pre-trained domain policies. Each
// accepted connection becomes a session — a per-connection context tree
// whose cancellation fans out to every in-flight request the moment the
// peer disconnects. Each Generate request acquires the registry entry
// covering its constraint's domain (pre-training or checkpoint-loading
// it on first touch), then streams queries from the entry's frozen
// policy through a request-private sampler, so concurrent sessions
// never contend on inference state.
package service

import (
	"fmt"
	"hash/fnv"
	"math"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/token"
)

// Dataset is one open benchmark the server generates against: the
// synthesized storage, its token vocabulary, and the shared RL
// environment every session's sampler measures rewards through (the
// environment's estimator cache is concurrency-safe and shared on
// purpose — sessions absorb each other's repeated partial-query
// estimations).
type Dataset struct {
	Name  string
	Scale float64
	Env   *rl.Env
	// Fingerprint identifies the dataset's generation inputs and the
	// resulting schema + vocabulary. It is half of a registry key: a
	// checkpointed policy is only ever re-served against byte-identical
	// token/vocabulary geometry.
	Fingerprint string
}

// OpenDataset generates the named benchmark at scale and builds its
// vocabulary (k sampled cell values per non-categorical column) and RL
// environment, exactly as the facade's OpenBenchmark does with default
// grammar.
func OpenDataset(name string, scale float64, sampleValues int, seed int64) (*Dataset, error) {
	if sampleValues <= 0 {
		sampleValues = 100
	}
	raw, err := datagen.Generate(name, scale, seed)
	if err != nil {
		return nil, err
	}
	vocab := token.Build(raw, sampleValues, seed)
	env := rl.NewEnv(raw, vocab, fsm.DefaultConfig())
	ds := &Dataset{Name: name, Scale: scale, Env: env}
	ds.Fingerprint = fingerprint(name, scale, seed, sampleValues, ds)
	return ds, nil
}

// fingerprint hashes everything that decides a policy's input geometry:
// the generation parameters plus the realized schema (tables, columns,
// kinds) and vocabulary size. Same fingerprint ⇒ same token ids ⇒ a
// saved policy's weights mean the same thing.
func fingerprint(name string, scale float64, seed int64, sampleValues int, ds *Dataset) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%x|%d|%d", name, math.Float64bits(scale), seed, sampleValues)
	for _, t := range ds.Env.DB.Schema.Tables {
		fmt.Fprintf(h, "|%s", t.Name)
		for _, c := range t.Columns {
			fmt.Fprintf(h, ",%s:%d", c.Name, c.Kind)
		}
	}
	fmt.Fprintf(h, "|v%d", ds.Env.Vocab.Size())
	return fmt.Sprintf("%s@%g#%016x", name, scale, h.Sum64())
}
