package service

import (
	"context"
	"encoding/binary"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"learnedsqlgen/internal/wire"
)

// pipeServer builds a server with no listener and returns a dialer that
// wires raw net.Pipe connections straight into real sessions — the
// protocol error paths get exercised against the live read loop without a
// TCP stack in the way.
func pipeServer(t *testing.T) (*Server, func() net.Conn) {
	t.Helper()
	return pipeServerCfg(t, testConfig())
}

// pipeServerCfg is pipeServer with a caller-chosen config.
func pipeServerCfg(t *testing.T, cfg Config) (*Server, func() net.Conn) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, func() net.Conn {
		cli, side := net.Pipe()
		srv.startSession(side)
		return cli
	}
}

func writeFrame(t *testing.T, c net.Conn, m wire.Message) {
	t.Helper()
	c.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := wire.WriteMessage(c, m); err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
}

func readFrame(t *testing.T, c net.Conn) wire.Message {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(60 * time.Second))
	m, err := wire.ReadMessage(c, 0)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return m
}

// handshake performs the client half of a good handshake.
func handshake(t *testing.T, c net.Conn, seed int64) {
	t.Helper()
	writeFrame(t, c, &wire.Hello{Version: wire.Version, Client: "pipe-test", Seed: seed})
	if w, ok := readFrame(t, c).(*wire.Welcome); !ok || w.Version != wire.Version {
		t.Fatalf("handshake did not return a Welcome (got %#v)", w)
	}
}

// waitSessionsGone polls until the server has reaped every session.
func waitSessionsGone(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		n := len(srv.sessions)
		srv.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("session never terminated after protocol violation")
}

// TestSessionHandshakeRejects is the table of handshakes the server must
// refuse with a descriptive Error frame and a closed connection: a
// version-mismatch Hello and a conversation opened by the wrong frame.
func TestSessionHandshakeRejects(t *testing.T) {
	srv, dial := pipeServer(t)
	cases := []struct {
		name    string
		open    wire.Message
		wantMsg string
	}{
		{
			name:    "version mismatch",
			open:    &wire.Hello{Version: wire.Version + 41, Seed: 1},
			wantMsg: "protocol version",
		},
		{
			name:    "not a hello",
			open:    &wire.Generate{ID: 1, Metric: "cardinality", N: 1},
			wantMsg: "expected Hello",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := dial()
			defer conn.Close()
			writeFrame(t, conn, tc.open)
			e, ok := readFrame(t, conn).(*wire.Error)
			if !ok || !strings.Contains(e.Msg, tc.wantMsg) {
				t.Fatalf("want Error containing %q, got %#v", tc.wantMsg, e)
			}
			// The server hangs up after the refusal.
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if m, err := wire.ReadMessage(conn, 0); err == nil {
				t.Fatalf("read %T after refusal, want closed connection", m)
			}
			waitSessionsGone(t, srv)
		})
	}
}

// TestSessionMalformedFrames is the table of raw-byte protocol
// violations after a good handshake: the session must terminate (closing
// the connection) rather than hang, misparse, or allocate the claimed
// payload.
func TestSessionMalformedFrames(t *testing.T) {
	srv, dial := pipeServer(t)
	oversize := make([]byte, 5)
	oversize[0] = wire.TypeGenerate
	binary.BigEndian.PutUint32(oversize[1:], 1<<30)

	full := frameBytes(t, &wire.Generate{ID: 1, Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 1})
	cases := []struct {
		name string
		raw  []byte
	}{
		{name: "oversized frame", raw: oversize},
		{name: "truncated header", raw: full[:3]},
		{name: "truncated payload", raw: full[:len(full)-2]},
		{name: "unknown frame type", raw: []byte{'Z', 0, 0, 0, 2, '{', '}'}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := dial()
			handshake(t, conn, 1)
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Write(tc.raw); err != nil {
				t.Fatalf("write raw bytes: %v", err)
			}
			conn.Close() // emulate the peer vanishing mid-frame
			waitSessionsGone(t, srv)
		})
	}
}

// frameBytes renders one message to its raw frame bytes.
func frameBytes(t *testing.T, m wire.Message) []byte {
	t.Helper()
	var sb strings.Builder
	if err := wire.WriteMessage(&sb, m); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

// TestCancelRacesDone fires Cancel immediately after a short Generate, so
// the Cancel lands before, during, or after the stream finishes depending
// on scheduling. Whatever the interleaving: exactly one Done for the id,
// never an Error, a Cancel for the now-retired id is ignored, and the id
// becomes reusable.
func TestCancelRacesDone(t *testing.T) {
	_, dial := pipeServer(t)
	conn := dial()
	defer conn.Close()
	handshake(t, conn, 21)

	req := func(id uint64) *wire.Generate {
		return &wire.Generate{
			ID: id, Metric: "cardinality", IsRange: true,
			Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
		}
	}
	drainToDone := func(id uint64) *wire.Done {
		t.Helper()
		for {
			switch m := readFrame(t, conn).(type) {
			case *wire.Row, *wire.Progress:
			case *wire.Done:
				if m.ID != id {
					t.Fatalf("Done for id %d, want %d", m.ID, id)
				}
				return m
			default:
				t.Fatalf("unexpected %#v while draining id %d", m, id)
			}
		}
	}

	for round := uint64(0); round < 3; round++ {
		id := 100 + round
		writeFrame(t, conn, req(id))
		writeFrame(t, conn, &wire.Cancel{ID: id})
		done := drainToDone(id)
		if !done.Canceled && done.Found < 1 {
			t.Fatalf("round %d: uncanceled Done with %d rows", round, done.Found)
		}
		// Cancel crossing an already-sent Done must be a no-op.
		writeFrame(t, conn, &wire.Cancel{ID: id})
		// The id is retired: reusing it streams normally.
		writeFrame(t, conn, req(id))
		if done := drainToDone(id); done.Canceled || done.Found < 1 {
			t.Fatalf("round %d: reused id %d got %+v, want a clean 1-row stream", round, id, done)
		}
	}
	writeFrame(t, conn, &wire.Goodbye{})
}

// TestV1ClientCompat: a protocol-1 Hello (no token field existed in v1)
// still handshakes against the v2 server — the Welcome echoes version 1
// — and generates normally when auth is not configured.
func TestV1ClientCompat(t *testing.T) {
	_, dial := pipeServer(t)
	conn := dial()
	defer conn.Close()
	writeFrame(t, conn, &wire.Hello{Version: 1, Client: "legacy", Seed: 17})
	w, ok := readFrame(t, conn).(*wire.Welcome)
	if !ok {
		t.Fatalf("v1 Hello refused: %#v", w)
	}
	if w.Version != 1 {
		t.Fatalf("Welcome echoed version %d to a v1 client, want 1", w.Version)
	}
	writeFrame(t, conn, &wire.Generate{ID: 1, Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000})
	rows := 0
	for {
		switch m := readFrame(t, conn).(type) {
		case *wire.Row:
			rows++
		case *wire.Progress:
		case *wire.Done:
			if rows < 1 {
				t.Fatalf("v1 stream finished with %d rows: %+v", rows, m)
			}
			writeFrame(t, conn, &wire.Goodbye{})
			return
		default:
			t.Fatalf("unexpected %#v on v1 stream", m)
		}
	}
}

// TestV1ClientUnauthenticated: against a server with tenants configured,
// a v1 client (which cannot carry a token) is refused with the stable
// unauthenticated code rather than a protocol error.
func TestV1ClientUnauthenticated(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{Name: "only", Token: "tok"}}
	_, dial := pipeServerCfg(t, cfg)
	conn := dial()
	defer conn.Close()
	writeFrame(t, conn, &wire.Hello{Version: 1, Client: "legacy", Seed: 17})
	e, ok := readFrame(t, conn).(*wire.Error)
	if !ok || e.Code != wire.CodeUnauthenticated {
		t.Fatalf("v1 tokenless Hello got %#v, want Error{unauthenticated}", e)
	}
}

// TestResolveRejectsNonFiniteBounds: NaN and ±Inf constraint bounds are
// refused as invalid_argument before they can reach the sampler. JSON
// cannot encode non-finite numbers, so today's wire layer can't deliver
// them — this pins the service-boundary invariant directly so a future
// codec or in-process caller can't reintroduce the hole (NaN compares
// false with everything, so it would sail past the Hi < Lo emptiness
// check and poison the reward math).
func TestResolveRejectsNonFiniteBounds(t *testing.T) {
	srv, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	sess := &session{srv: srv}
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		m    *wire.Generate
	}{
		{"nan point", &wire.Generate{Metric: "cardinality", Point: nan, N: 1}},
		{"inf point", &wire.Generate{Metric: "cardinality", Point: inf, N: 1}},
		{"nan lo", &wire.Generate{Metric: "cardinality", IsRange: true, Lo: nan, Hi: 10, N: 1}},
		{"nan hi", &wire.Generate{Metric: "cardinality", IsRange: true, Lo: 1, Hi: nan, N: 1}},
		{"inf hi", &wire.Generate{Metric: "cardinality", IsRange: true, Lo: 1, Hi: inf, N: 1}},
		{"neg inf lo", &wire.Generate{Metric: "cardinality", IsRange: true, Lo: math.Inf(-1), Hi: 10, N: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, code, err := sess.resolve(tc.m)
			if err == nil {
				t.Fatalf("non-finite bounds resolved: %+v", tc.m)
			}
			if code != wire.CodeInvalidArgument {
				t.Fatalf("code %q, want invalid_argument (err: %v)", code, err)
			}
			if !strings.Contains(err.Error(), "finite") {
				t.Fatalf("error %q does not name the finiteness requirement", err)
			}
		})
	}
	// The finite versions of the same shapes resolve fine.
	if _, _, _, err := sess.resolve(&wire.Generate{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 1}); err != nil {
		t.Fatalf("finite range refused: %v", err)
	}
	if _, _, _, err := sess.resolve(&wire.Generate{Metric: "cardinality", Point: 100, N: 1}); err != nil {
		t.Fatalf("finite point refused: %v", err)
	}
}

// TestIdleSessionReaped: a session with nothing in flight that goes
// quiet past IdleTimeout is closed with a CodeIdleTimeout Error.
func TestIdleSessionReaped(t *testing.T) {
	cfg := testConfig()
	cfg.IdleTimeout = 80 * time.Millisecond
	srv, dial := pipeServerCfg(t, cfg)
	conn := dial()
	defer conn.Close()
	handshake(t, conn, 1)
	e, ok := readFrame(t, conn).(*wire.Error)
	if !ok || e.Code != wire.CodeIdleTimeout {
		t.Fatalf("idle session got %#v, want Error{idle_timeout}", e)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if m, err := wire.ReadMessage(conn, 0); err == nil {
		t.Fatalf("read %T after idle reap, want closed connection", m)
	}
	waitSessionsGone(t, srv)
	if st := srv.Stats(); st.IdleReaped != 1 {
		t.Fatalf("stats %s: want 1 idle-reaped", st)
	}
}

// TestDrainRacesNewRequest fires a Generate concurrently with the
// session flipping into drain: whatever the interleaving, the client
// gets a deterministic terminal answer for the id — a coded draining
// Error, a normal stream ending in Done, or a closed connection — and
// never a hung stream. Many rounds shake the schedule around the
// admission window.
func TestDrainRacesNewRequest(t *testing.T) {
	for round := 0; round < 8; round++ {
		cfg := testConfig()
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		cli, side := net.Pipe()
		srv.startSession(side)
		handshake(t, cli, int64(round))

		srv.mu.Lock()
		var sess *session
		for _, s := range srv.sessions {
			sess = s
		}
		srv.mu.Unlock()
		if sess == nil {
			t.Fatal("no session registered after handshake")
		}

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess.drain()
		}()
		cli.SetWriteDeadline(time.Now().Add(5 * time.Second))
		writeErr := wire.WriteMessage(cli, &wire.Generate{
			ID: 1, Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
		})
		wg.Wait()

		// Read until the terminal outcome. A closed connection is legal
		// (drain with nothing in flight closes immediately); so is a
		// draining Error; so is a full stream ending in Done.
		outcome := ""
		if writeErr != nil {
			outcome = "conn closed before write"
		}
		cli.SetReadDeadline(time.Now().Add(30 * time.Second))
		for outcome == "" {
			m, err := wire.ReadMessage(cli, 0)
			if err != nil {
				outcome = "conn closed"
				break
			}
			switch m := m.(type) {
			case *wire.Row, *wire.Progress:
			case *wire.Done:
				outcome = "done"
			case *wire.Error:
				if m.Code != wire.CodeDraining {
					t.Fatalf("round %d: error code %q, want draining", round, m.Code)
				}
				if !m.Retryable {
					t.Fatalf("round %d: draining refusal not marked retryable", round)
				}
				outcome = "refused"
			default:
				t.Fatalf("round %d: unexpected %#v", round, m)
			}
		}
		cli.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("round %d (%s): shutdown: %v", round, outcome, err)
		}
		cancel()
	}
}
