package service

import (
	"context"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"learnedsqlgen/internal/wire"
)

// pipeServer builds a server with no listener and returns a dialer that
// wires raw net.Pipe connections straight into real sessions — the
// protocol error paths get exercised against the live read loop without a
// TCP stack in the way.
func pipeServer(t *testing.T) (*Server, func() net.Conn) {
	t.Helper()
	srv, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return srv, func() net.Conn {
		cli, side := net.Pipe()
		srv.startSession(side)
		return cli
	}
}

func writeFrame(t *testing.T, c net.Conn, m wire.Message) {
	t.Helper()
	c.SetWriteDeadline(time.Now().Add(30 * time.Second))
	if err := wire.WriteMessage(c, m); err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
}

func readFrame(t *testing.T, c net.Conn) wire.Message {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(60 * time.Second))
	m, err := wire.ReadMessage(c, 0)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return m
}

// handshake performs the client half of a good handshake.
func handshake(t *testing.T, c net.Conn, seed int64) {
	t.Helper()
	writeFrame(t, c, &wire.Hello{Version: wire.Version, Client: "pipe-test", Seed: seed})
	if w, ok := readFrame(t, c).(*wire.Welcome); !ok || w.Version != wire.Version {
		t.Fatalf("handshake did not return a Welcome (got %#v)", w)
	}
}

// waitSessionsGone polls until the server has reaped every session.
func waitSessionsGone(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		n := len(srv.sessions)
		srv.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("session never terminated after protocol violation")
}

// TestSessionHandshakeRejects is the table of handshakes the server must
// refuse with a descriptive Error frame and a closed connection: a
// version-mismatch Hello and a conversation opened by the wrong frame.
func TestSessionHandshakeRejects(t *testing.T) {
	srv, dial := pipeServer(t)
	cases := []struct {
		name    string
		open    wire.Message
		wantMsg string
	}{
		{
			name:    "version mismatch",
			open:    &wire.Hello{Version: wire.Version + 41, Seed: 1},
			wantMsg: "protocol version",
		},
		{
			name:    "not a hello",
			open:    &wire.Generate{ID: 1, Metric: "cardinality", N: 1},
			wantMsg: "expected Hello",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := dial()
			defer conn.Close()
			writeFrame(t, conn, tc.open)
			e, ok := readFrame(t, conn).(*wire.Error)
			if !ok || !strings.Contains(e.Msg, tc.wantMsg) {
				t.Fatalf("want Error containing %q, got %#v", tc.wantMsg, e)
			}
			// The server hangs up after the refusal.
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if m, err := wire.ReadMessage(conn, 0); err == nil {
				t.Fatalf("read %T after refusal, want closed connection", m)
			}
			waitSessionsGone(t, srv)
		})
	}
}

// TestSessionMalformedFrames is the table of raw-byte protocol
// violations after a good handshake: the session must terminate (closing
// the connection) rather than hang, misparse, or allocate the claimed
// payload.
func TestSessionMalformedFrames(t *testing.T) {
	srv, dial := pipeServer(t)
	oversize := make([]byte, 5)
	oversize[0] = wire.TypeGenerate
	binary.BigEndian.PutUint32(oversize[1:], 1<<30)

	full := frameBytes(t, &wire.Generate{ID: 1, Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 1})
	cases := []struct {
		name string
		raw  []byte
	}{
		{name: "oversized frame", raw: oversize},
		{name: "truncated header", raw: full[:3]},
		{name: "truncated payload", raw: full[:len(full)-2]},
		{name: "unknown frame type", raw: []byte{'Z', 0, 0, 0, 2, '{', '}'}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := dial()
			handshake(t, conn, 1)
			conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			if _, err := conn.Write(tc.raw); err != nil {
				t.Fatalf("write raw bytes: %v", err)
			}
			conn.Close() // emulate the peer vanishing mid-frame
			waitSessionsGone(t, srv)
		})
	}
}

// frameBytes renders one message to its raw frame bytes.
func frameBytes(t *testing.T, m wire.Message) []byte {
	t.Helper()
	var sb strings.Builder
	if err := wire.WriteMessage(&sb, m); err != nil {
		t.Fatal(err)
	}
	return []byte(sb.String())
}

// TestCancelRacesDone fires Cancel immediately after a short Generate, so
// the Cancel lands before, during, or after the stream finishes depending
// on scheduling. Whatever the interleaving: exactly one Done for the id,
// never an Error, a Cancel for the now-retired id is ignored, and the id
// becomes reusable.
func TestCancelRacesDone(t *testing.T) {
	_, dial := pipeServer(t)
	conn := dial()
	defer conn.Close()
	handshake(t, conn, 21)

	req := func(id uint64) *wire.Generate {
		return &wire.Generate{
			ID: id, Metric: "cardinality", IsRange: true,
			Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
		}
	}
	drainToDone := func(id uint64) *wire.Done {
		t.Helper()
		for {
			switch m := readFrame(t, conn).(type) {
			case *wire.Row, *wire.Progress:
			case *wire.Done:
				if m.ID != id {
					t.Fatalf("Done for id %d, want %d", m.ID, id)
				}
				return m
			default:
				t.Fatalf("unexpected %#v while draining id %d", m, id)
			}
		}
	}

	for round := uint64(0); round < 3; round++ {
		id := 100 + round
		writeFrame(t, conn, req(id))
		writeFrame(t, conn, &wire.Cancel{ID: id})
		done := drainToDone(id)
		if !done.Canceled && done.Found < 1 {
			t.Fatalf("round %d: uncanceled Done with %d rows", round, done.Found)
		}
		// Cancel crossing an already-sent Done must be a no-op.
		writeFrame(t, conn, &wire.Cancel{ID: id})
		// The id is retired: reusing it streams normally.
		writeFrame(t, conn, req(id))
		if done := drainToDone(id); done.Canceled || done.Found < 1 {
			t.Fatalf("round %d: reused id %d got %+v, want a clean 1-row stream", round, id, done)
		}
	}
	writeFrame(t, conn, &wire.Goodbye{})
}
