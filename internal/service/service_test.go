package service

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"learnedsqlgen/client"
	"learnedsqlgen/internal/rl"
)

// testConfig is a micro server configuration: tiny dataset, tiny
// vocabulary, a one-round warm-up per registry entry — seconds, not
// minutes.
func testConfig() Config {
	return Config{
		Datasets:     []DatasetSpec{{Name: "xuetang", Scale: 0.05}},
		Seed:         1,
		SampleValues: 10,
		K:            2,
		WarmRounds:   1,
		WarmEpisodes: 4,
		DrainTimeout: 5 * time.Second,
	}
}

// startServer runs a server on a loopback listener and returns its
// address plus a shutdown func.
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v after drain", err)
		}
	}
	return srv, ln.Addr().String(), shutdown
}

// collect drains a stream into its SQL strings, failing the test on any
// stream error.
func collect(t *testing.T, st *client.Stream) []string {
	t.Helper()
	var out []string
	for st.Next() {
		row := st.Row()
		if !row.Satisfied {
			t.Errorf("unsatisfied row streamed: %s", row.SQL)
		}
		out = append(out, row.SQL)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

// TestTwoConcurrentSessions is the acceptance e2e: two clients with
// different constraints stream concurrently against one server, each
// receiving at least N satisfied queries, and each session's stream
// replays byte-identically from its seed on a fresh connection.
func TestTwoConcurrentSessions(t *testing.T) {
	_, addr, shutdown := startServer(t, testConfig())
	defer shutdown()

	reqs := []client.Request{
		{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 3, MaxAttempts: 2000},
		{Metric: "cost", IsRange: true, Lo: 1, Hi: 1e9, N: 3, MaxAttempts: 2000},
	}
	seeds := []int64{42, 1337}
	results := make([][]string, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := client.Dial(addr, &client.Config{Seed: seeds[i]})
			if err != nil {
				t.Errorf("session %d dial: %v", i, err)
				return
			}
			defer conn.Close()
			st, err := conn.Generate(context.Background(), reqs[i])
			if err != nil {
				t.Errorf("session %d generate: %v", i, err)
				return
			}
			results[i] = collect(t, st)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, rows := range results {
		if len(rows) < reqs[i].N {
			t.Fatalf("session %d streamed %d rows, want ≥ %d", i, len(rows), reqs[i].N)
		}
	}

	// Byte-identical replay: same session seed, same request sequence ⇒
	// same stream, row for row.
	for i := range reqs {
		conn, err := client.Dial(addr, &client.Config{Seed: seeds[i]})
		if err != nil {
			t.Fatalf("replay dial: %v", err)
		}
		st, err := conn.Generate(context.Background(), reqs[i])
		if err != nil {
			t.Fatalf("replay generate: %v", err)
		}
		replay := collect(t, st)
		conn.Close()
		if len(replay) != len(results[i]) {
			t.Fatalf("session %d replay streamed %d rows, first run %d", i, len(replay), len(results[i]))
		}
		for j := range replay {
			if replay[j] != results[i][j] {
				t.Fatalf("session %d row %d diverged:\n first: %s\nreplay: %s", i, j, results[i][j], replay[j])
			}
		}
	}
}

// TestSessionSeedsIndependent checks the fan-out direction: two sessions
// with different seeds running the same request stream different queries
// (FanSeed independence), while both still satisfy the constraint.
func TestSessionSeedsIndependent(t *testing.T) {
	_, addr, shutdown := startServer(t, testConfig())
	defer shutdown()
	req := client.Request{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 4, MaxAttempts: 2000}
	var streams [2][]string
	for i, seed := range []int64{7, 8} {
		conn, err := client.Dial(addr, &client.Config{Seed: seed})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		st, err := conn.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		streams[i] = collect(t, st)
		conn.Close()
	}
	if strings.Join(streams[0], "\n") == strings.Join(streams[1], "\n") {
		t.Fatalf("different session seeds produced identical streams:\n%s", strings.Join(streams[0], "\n"))
	}
}

// TestCancelMidStream cancels a request's context mid-stream and expects
// the cancellation cause back plus a live connection-level drain (the
// server answers Done{Canceled}).
func TestCancelMidStream(t *testing.T) {
	_, addr, shutdown := startServer(t, testConfig())
	defer shutdown()
	conn, err := client.Dial(addr, &client.Config{Seed: 5})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := conn.Generate(ctx, client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1000000, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	rows := 0
	for st.Next() {
		if rows++; rows == 2 {
			cancel()
		}
	}
	if err := st.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", err)
	}
	if _, _, canceled := st.Stats(); !canceled {
		t.Fatalf("Done frame not marked canceled")
	}
}

// TestGracefulDrain is the acceptance drain test: SIGTERM-equivalent
// Shutdown while a stream is in flight finishes (or cancels) the stream
// within the deadline, Serve returns nil, and no goroutines leak.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := testConfig()
	cfg.DrainTimeout = 300 * time.Millisecond
	srv, addr, _ := startServer(t, cfg)

	conn, err := client.Dial(addr, &client.Config{Seed: 11})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// An effectively unbounded stream, so drain must cut it.
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !st.Next() {
		t.Fatalf("no first row before drain: %v", st.Err())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for st.Next() {
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v, deadline was 300ms", elapsed)
	}
	<-done

	// New connections must be refused after drain.
	if c2, err := client.Dial(addr, &client.Config{Seed: 1}); err == nil {
		c2.Close()
		t.Fatalf("dial succeeded after drain")
	}

	// Zero goroutine leaks: the count returns to (at most) the baseline,
	// allowing the runtime a moment to reap.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after drain: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainFinishesShortStream checks the polite half of drain: a stream
// that can finish within the deadline runs to a clean, uncanceled Done.
func TestDrainFinishesShortStream(t *testing.T) {
	srv, addr, _ := startServer(t, testConfig())
	conn, err := client.Dial(addr, &client.Config{Seed: 3})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 2, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !st.Next() { // entry is warm and the stream is live before drain
		t.Fatalf("no first row: %v", st.Err())
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	rows := 1
	for st.Next() {
		rows++
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream error during polite drain: %v", err)
	}
	if _, _, canceled := st.Stats(); canceled {
		t.Fatalf("short stream was canceled; drain should have let it finish")
	}
	if rows < 2 {
		t.Fatalf("streamed %d rows, want 2", rows)
	}
}

// TestRegistrySharingAndEviction drives the registry directly: requests
// in the same decade bucket share one entry, eviction under a tiny
// budget drops it once unreferenced, and the next acquire reloads it
// from its checkpoint byte-identically.
func TestRegistrySharingAndEviction(t *testing.T) {
	ds, err := OpenDataset("xuetang", 0.05, 10, 1)
	if err != nil {
		t.Fatalf("open dataset: %v", err)
	}
	dir := t.TempDir()
	reg := NewRegistry(RegistryConfig{
		Budget: 1, // any settled entry is over budget once unreferenced
		Dir:    dir, Seed: 1, K: 2, WarmRounds: 1, WarmEpisodes: 4,
		Base: rl.FastConfig(),
	})
	ctx := context.Background()
	c1 := rl.RangeConstraint(rl.Cardinality, 2, 800)
	c2 := rl.RangeConstraint(rl.Cardinality, 1, 1000)
	e1, err := reg.Acquire(ctx, ds, c1)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	sum := e1.Checksum()
	e2, err := reg.Acquire(ctx, ds, c2)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if e1 != e2 {
		t.Fatalf("constraints [2,800] and [1,1000] should share the [1,1000] domain entry")
	}
	st := reg.Stats()
	if st.Trains != 1 || st.Hits != 1 {
		t.Fatalf("stats after shared acquire: %+v, want 1 train + 1 hit", st)
	}
	reg.Release(e1)
	if reg.Stats().Entries != 1 {
		t.Fatalf("entry evicted while still referenced")
	}
	reg.Release(e2)
	st = reg.Stats()
	if st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("stats after final release: %+v, want 0 entries / 1 eviction", st)
	}

	// Reacquire: checkpoint reload, not retrain, and the same weights.
	e3, err := reg.Acquire(ctx, ds, c1)
	if err != nil {
		t.Fatalf("reacquire: %v", err)
	}
	defer reg.Release(e3)
	st = reg.Stats()
	if st.Loads != 1 || st.Trains != 1 {
		t.Fatalf("stats after reacquire: %+v, want 1 load and still 1 train", st)
	}
	if got := e3.Checksum(); got != sum {
		t.Fatalf("reloaded entry checksum %08x != original %08x", got, sum)
	}
}

// TestRegistryConcurrentAccess races N acquirers of one shared entry
// against eviction (tiny budget: every full release evicts) and
// checkpoint reloads — the -race regression for the registry's locking.
func TestRegistryConcurrentAccess(t *testing.T) {
	ds, err := OpenDataset("xuetang", 0.05, 10, 1)
	if err != nil {
		t.Fatalf("open dataset: %v", err)
	}
	reg := NewRegistry(RegistryConfig{
		Budget: 1,
		Dir:    t.TempDir(), Seed: 1, K: 2, WarmRounds: 1, WarmEpisodes: 4,
		Base: rl.FastConfig(),
	})
	c := rl.RangeConstraint(rl.Cardinality, 1, 1000)
	// Settle the entry once so the concurrent phase races reloads, not
	// one long pre-train.
	e, err := reg.Acquire(context.Background(), ds, c)
	if err != nil {
		t.Fatalf("warm acquire: %v", err)
	}
	sum := e.Checksum()
	reg.Release(e) // evicts; concurrent phase starts cold

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				e, err := reg.Acquire(context.Background(), ds, c)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d acquire %d: %w", g, i, err)
					return
				}
				if got := e.Checksum(); got != sum {
					errs <- fmt.Errorf("goroutine %d acquire %d: checksum %08x != %08x", g, i, got, sum)
				}
				// Sample a token step's worth of read access.
				_ = e.ActorFor(c)
				reg.Release(e)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := reg.Stats()
	if st.Trains != 1 {
		t.Errorf("entry retrained under race: %+v (checkpoint reload should cover evictions)", st)
	}
	if st.Evictions == 0 || st.Loads == 0 {
		t.Errorf("race exercised no evictions/reloads: %+v", st)
	}
}

// TestWarmRestart drains a server with a checkpoint dir, restarts it on
// the same dir, and expects (a) the registry warm-loaded instead of
// re-training and (b) a session replaying its seed to get byte-identical
// rows across the restart.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CheckpointDir = dir

	srv1, addr1, _ := startServer(t, cfg)
	req := client.Request{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 3, MaxAttempts: 2000}
	conn, err := client.Dial(addr1, &client.Config{Seed: 99})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	st, err := conn.Generate(context.Background(), req)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	first := collect(t, st)
	conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, StateFileName)); err != nil {
		t.Fatalf("glob: %v", err)
	}
	var state registryState
	if err := readJSON(filepath.Join(dir, StateFileName), &state); err != nil {
		t.Fatalf("drain did not checkpoint registry state: %v", err)
	}
	if len(state.Entries) != 1 {
		t.Fatalf("registry state holds %d entries, want 1", len(state.Entries))
	}

	srv2, addr2, shutdown2 := startServer(t, cfg)
	defer shutdown2()
	st2 := srv2.Registry().Stats()
	if st2.Loads == 0 || st2.Trains != 0 {
		t.Fatalf("restart stats %+v: want warm loads, zero re-trains", st2)
	}
	conn2, err := client.Dial(addr2, &client.Config{Seed: 99})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn2.Close()
	s2, err := conn2.Generate(context.Background(), req)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	replay := collect(t, s2)
	if strings.Join(first, "\n") != strings.Join(replay, "\n") {
		t.Fatalf("stream diverged across warm restart:\nbefore: %v\n after: %v", first, replay)
	}
}

// TestWarmStartMissingManifest: a fresh checkpoint dir is not an error.
func TestWarmStartMissingManifest(t *testing.T) {
	ds, err := OpenDataset("xuetang", 0.05, 10, 1)
	if err != nil {
		t.Fatalf("open dataset: %v", err)
	}
	reg := NewRegistry(RegistryConfig{Dir: t.TempDir(), Base: rl.FastConfig()})
	_, err = reg.WarmStart(context.Background(), map[string]*Dataset{"xuetang": ds})
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("WarmStart on empty dir: %v, want fs.ErrNotExist", err)
	}
}

// TestProtocolErrors covers the request-level error paths end to end.
func TestProtocolErrors(t *testing.T) {
	_, addr, shutdown := startServer(t, testConfig())
	defer shutdown()
	conn, err := client.Dial(addr, &client.Config{Seed: 1})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	for _, req := range []client.Request{
		{Dataset: "nope", Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 1},
		{Metric: "latency", IsRange: true, Lo: 1, Hi: 10, N: 1},
		{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 10, N: 0},
	} {
		st, err := conn.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if st.Next() {
			t.Fatalf("invalid request %+v streamed a row", req)
		}
		if st.Err() == nil {
			t.Fatalf("invalid request %+v ended without error", req)
		}
	}
	// The connection survives request errors: a valid request still works.
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate after errors: %v", err)
	}
	if rows := collect(t, st); len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
}

// TestDomainFor pins the decade-bucketing rule.
func TestDomainFor(t *testing.T) {
	for _, tc := range []struct {
		c      rl.Constraint
		lo, hi float64
	}{
		{rl.RangeConstraint(rl.Cardinality, 1, 1000), 1, 1000},
		{rl.RangeConstraint(rl.Cardinality, 2, 800), 1, 1000},
		{rl.RangeConstraint(rl.Cardinality, 0, 10), 1, 10},
		{rl.RangeConstraint(rl.Cardinality, 10, 500), 10, 1000},
		{rl.PointConstraint(rl.Cardinality, 500), 100, 1000},
		{rl.PointConstraint(rl.Cardinality, 100), 100, 1000},
		{rl.PointConstraint(rl.Cardinality, 1), 1, 10},
	} {
		d := DomainFor(tc.c, 2)
		if d.Lo != tc.lo || d.Hi != tc.hi {
			t.Errorf("DomainFor(%v) = [%g, %g], want [%g, %g]", tc.c, d.Lo, d.Hi, tc.lo, tc.hi)
		}
	}
	if k1, k2 := DomainKey(DomainFor(rl.RangeConstraint(rl.Cardinality, 2, 800), 2)),
		DomainKey(DomainFor(rl.RangeConstraint(rl.Cardinality, 1, 1000), 2)); k1 != k2 {
		t.Errorf("bucketed keys differ: %s vs %s", k1, k2)
	}
}
