package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/wire"
)

// session is one accepted connection: a context subtree rooted in the
// server's base context (cancel-on-disconnect fans out to every
// in-flight request), a write mutex serializing response frames, and the
// client's seed from which every request's generation stream derives
// deterministically. After the handshake the session belongs to exactly
// one tenant, whose quotas gate every request it starts.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn
	rd   *wire.Reader // single-goroutine framed reader (grow-only buffer)

	ctx    context.Context
	cancel context.CancelFunc

	seed    int64 // client Hello seed; request streams fan out of it
	version int   // negotiated protocol version
	tenant  *tenant

	wmu sync.Mutex // serializes whole frames onto conn

	mu       sync.Mutex
	active   map[uint64]context.CancelFunc // in-flight request cancels, by id
	draining bool

	reqWG sync.WaitGroup // in-flight request goroutines
}

// handshakeTimeout bounds how long a fresh connection may sit silent
// before Hello.
const handshakeTimeout = 10 * time.Second

// errRequestDeadline is the cancellation cause distinguishing a
// per-request deadline (client DeadlineMillis or the server max) from a
// session-level cancel, so the stream's terminal frame carries
// CodeDeadlineExceeded instead of Done{Canceled}.
var errRequestDeadline = errors.New("service: request deadline exceeded")

// errAttemptBudget is returned from the sampler's progress callback when
// the tenant's per-window attempts budget runs dry mid-stream.
var errAttemptBudget = errors.New("service: tenant attempt budget exhausted")

func newSession(srv *Server, id uint64, conn net.Conn) *session {
	s := &session{id: id, srv: srv, conn: conn, active: map[uint64]context.CancelFunc{}}
	s.rd = wire.NewReader(conn, srv.cfg.MaxFrame)
	s.ctx, s.cancel = context.WithCancel(srv.baseCtx)
	return s
}

// run is the session's read loop: handshake, then dispatch frames until
// the peer leaves, the connection dies, the idle reaper fires, or the
// server drains it. The exit path cancels the request subtree first,
// joins every request goroutine, and only then closes the connection —
// no request ever writes to a closed socket it didn't know about.
func (s *session) run() {
	defer func() {
		s.cancel()
		s.reqWG.Wait()
		s.conn.Close()
	}()
	if !s.handshake() {
		return
	}
	idle := s.srv.cfg.IdleTimeout
	for {
		if idle > 0 {
			s.conn.SetReadDeadline(time.Now().Add(idle))
		}
		msg, err := s.rd.ReadMessage()
		if err != nil {
			if idle > 0 && isTimeout(err) && !s.rd.Dirty() {
				// A clean idle expiry: no frame bytes in flight. Sessions
				// with live streams are just quiet consumers — re-arm and
				// keep reading (dead peers die at the write deadline
				// instead). Truly idle ones are reaped.
				if s.inFlight() > 0 {
					continue
				}
				s.srv.noteIdleReaped()
				s.send(&wire.Error{Code: wire.CodeIdleTimeout,
					Msg: fmt.Sprintf("session idle longer than %s with nothing in flight", idle)})
			}
			return // disconnect, torn frame, drain close, or idle reap
		}
		switch m := msg.(type) {
		case *wire.Generate:
			s.startGenerate(m)
		case *wire.Cancel:
			s.cancelRequest(m.ID)
		case *wire.Goodbye:
			return
		default:
			s.send(&wire.Error{Code: wire.CodeProtocol, Msg: fmt.Sprintf("unexpected %T frame", msg)})
			return
		}
	}
}

// isTimeout reports whether err is a deadline expiry rather than a real
// connection failure.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// inFlight is the session's current request count.
func (s *session) inFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// handshake reads Hello and answers Welcome, or refuses with a coded
// Error: unsupported version, failed auth (when tenants are configured),
// or server-wide session shedding.
func (s *session) handshake() bool {
	s.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	msg, err := s.rd.ReadMessage()
	if err != nil {
		return false
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		s.send(&wire.Error{Code: wire.CodeProtocol, Msg: fmt.Sprintf("expected Hello, got %T", msg)})
		return false
	}
	if hello.Version < wire.MinVersion || hello.Version > wire.Version {
		s.send(&wire.Error{Code: wire.CodeUnsupportedVersion,
			Msg: fmt.Sprintf("protocol version %d unsupported (server speaks %d through %d)", hello.Version, wire.MinVersion, wire.Version)})
		return false
	}
	if mx := s.srv.cfg.MaxSessions; mx > 0 {
		s.srv.mu.Lock()
		over := len(s.srv.sessions) > mx // this session is already registered
		if over {
			s.srv.shedSessions++
		}
		s.srv.mu.Unlock()
		if over {
			s.send(&wire.Error{Code: wire.CodeOverloaded, Retryable: true,
				RetryAfterMillis: s.srv.cfg.RetryAfterHint.Milliseconds(),
				Msg:              fmt.Sprintf("server at max sessions (%d)", mx)})
			return false
		}
	}
	tn, code := s.srv.authenticate(hello.Token)
	if code != "" {
		s.send(&wire.Error{Code: code, Msg: "unknown or missing token"})
		return false
	}
	s.conn.SetReadDeadline(time.Time{})
	s.seed = hello.Seed
	s.version = hello.Version
	s.tenant = tn
	tn.noteSession()
	s.srv.mu.Lock()
	s.srv.acceptedSessions++
	s.srv.mu.Unlock()
	return s.send(&wire.Welcome{
		Version:   hello.Version, // negotiated: the client's version, which we speak
		Server:    "learnedsqlgen",
		SessionID: s.id,
		Datasets:  s.srv.datasetNames(),
	}) == nil
}

// send serializes one frame onto the connection. Frame writes are whole
// (one Write call inside wire.WriteMessage) and mutex-ordered, so
// concurrent request streams never interleave bytes. A failed write —
// including a write-deadline expiry against a peer that stopped draining
// — leaves the stream unframeable, so it kills this session (cancel the
// request subtree, close the socket) and only this session: the write
// mutex and deadline are per-connection, so a stalled tenant never
// blocks another tenant's stream.
func (s *session) send(m wire.Message) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	err := wire.WriteMessage(s.conn, m)
	if err != nil {
		s.cancel()
		s.conn.Close()
	}
	return err
}

// startGenerate validates, admits, and launches one request stream. Runs
// on the read loop goroutine, so reqWG.Add always happens-before run's
// Wait. Admission order: drain state, duplicate id, server-wide stream
// cap, then the tenant's stream cap and rate bucket — each refusal is a
// coded, request-scoped Error and the session lives on.
func (s *session) startGenerate(m *wire.Generate) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.send(&wire.Error{ID: m.ID, Code: wire.CodeDraining, Retryable: true,
			RetryAfterMillis: s.srv.cfg.RetryAfterHint.Milliseconds(), Msg: "server draining"})
		return
	}
	if _, dup := s.active[m.ID]; dup {
		s.mu.Unlock()
		s.send(&wire.Error{ID: m.ID, Code: wire.CodeProtocol, Msg: fmt.Sprintf("request id %d already in flight", m.ID)})
		return
	}
	s.mu.Unlock()

	if mx := int64(s.srv.cfg.MaxStreams); mx > 0 && s.srv.inFlight.Load() >= mx {
		s.srv.mu.Lock()
		s.srv.shedStreams++
		s.srv.mu.Unlock()
		s.send(&wire.Error{ID: m.ID, Code: wire.CodeOverloaded, Retryable: true,
			RetryAfterMillis: s.srv.cfg.RetryAfterHint.Milliseconds(),
			Msg:              fmt.Sprintf("server at max in-flight streams (%d)", mx)})
		return
	}
	if code, after := s.tenant.admitStream(); code != "" {
		s.send(&wire.Error{ID: m.ID, Code: code, Retryable: wire.RetryableCode(code),
			RetryAfterMillis: after.Milliseconds(),
			Msg:              fmt.Sprintf("tenant %s over quota", s.tenant.name)})
		return
	}
	s.srv.inFlight.Add(1)

	rctx, rcancel := s.requestContext(m)
	s.mu.Lock()
	if s.draining {
		// Drain flipped between the first check and admission: refuse
		// deterministically rather than racing the connection close.
		s.mu.Unlock()
		rcancel()
		s.tenant.releaseStream()
		s.srv.inFlight.Add(-1)
		s.send(&wire.Error{ID: m.ID, Code: wire.CodeDraining, Retryable: true,
			RetryAfterMillis: s.srv.cfg.RetryAfterHint.Milliseconds(), Msg: "server draining"})
		return
	}
	s.active[m.ID] = rcancel
	s.mu.Unlock()
	s.reqWG.Add(1)
	go func() {
		defer s.reqWG.Done()
		defer s.finishRequest(m.ID, rcancel)
		s.serveGenerate(rctx, m)
	}()
}

// requestContext derives the request's context: the session subtree,
// bounded by the client's DeadlineMillis clamped to the server's
// MaxRequestTimeout (which also applies alone when the client sent no
// deadline). The deadline's cause is errRequestDeadline so the terminal
// frame can name it.
func (s *session) requestContext(m *wire.Generate) (context.Context, context.CancelFunc) {
	d := time.Duration(m.DeadlineMillis) * time.Millisecond
	if max := s.srv.cfg.MaxRequestTimeout; max > 0 && (d <= 0 || d > max) {
		d = max
	}
	if d <= 0 {
		return context.WithCancel(s.ctx)
	}
	return context.WithTimeoutCause(s.ctx, d, errRequestDeadline)
}

// cancelRequest handles a Cancel frame; unknown ids are ignored (the
// stream may have just finished — Done and Cancel cross on the wire).
func (s *session) cancelRequest(id uint64) {
	s.mu.Lock()
	cancel := s.active[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// finishRequest retires an in-flight request — releasing its tenant and
// server admission slots exactly once — and, when the session is
// draining and nothing remains in flight, closes the connection so the
// read loop exits: the per-session half of graceful drain. Normally
// terminal() has already retired the id; this is the backstop that also
// runs the drain check.
func (s *session) finishRequest(id uint64, cancel context.CancelFunc) {
	cancel()
	s.tenant.releaseStream()
	s.srv.inFlight.Add(-1)
	s.mu.Lock()
	delete(s.active, id)
	closeNow := s.draining && len(s.active) == 0
	s.mu.Unlock()
	if closeNow {
		s.conn.Close()
	}
}

// terminal retires the request id and then writes its terminal frame
// (Done or Error). Retirement must happen-before the terminal write: the
// client may reuse the id the moment it reads the terminal frame, and
// its next Generate would race the read loop against this goroutine's
// deferred finishRequest if the id were still in the active map.
func (s *session) terminal(id uint64, m wire.Message) {
	s.mu.Lock()
	if cancel := s.active[id]; cancel != nil {
		cancel()
		delete(s.active, id)
	}
	s.mu.Unlock()
	s.send(m)
}

// drain flips the session into drain mode: new Generate frames are
// refused, and the connection closes as soon as the in-flight count hits
// zero (immediately for idle sessions).
func (s *session) drain() {
	s.mu.Lock()
	s.draining = true
	closeNow := len(s.active) == 0
	s.mu.Unlock()
	if closeNow {
		s.conn.Close()
	}
}

// serveGenerate runs one admitted request stream: acquire the warm
// registry entry covering the constraint's domain, build a
// request-private sampler seeded by FanSeed(session seed, request id),
// and stream satisfied queries as Row frames with periodic Progress
// until Done. The sampler owns its own compute workspaces and prefix
// cache; the only shared state it touches are the frozen entry weights
// (read-only) and the dataset's concurrency-safe estimator cache. The
// tenant's attempts budget is charged at every batch boundary through
// the progress callback.
func (s *session) serveGenerate(ctx context.Context, m *wire.Generate) {
	ds, c, code, err := s.resolve(m)
	if err != nil {
		s.terminal(m.ID, &wire.Error{ID: m.ID, Code: code, Msg: err.Error()})
		return
	}
	entry, err := s.srv.reg.Acquire(ctx, ds, c)
	if err != nil {
		if ctx.Err() != nil {
			s.terminalCtx(ctx, m, 0, 0)
		} else {
			s.terminal(m.ID, &wire.Error{ID: m.ID, Code: wire.CodeInternal, Msg: fmt.Sprintf("warm model: %v", err)})
		}
		return
	}
	defer s.srv.reg.Release(entry)

	cfg := s.srv.reg.cfg.Base
	cfg.Seed = rl.FanSeed(s.seed, m.ID)
	sampler := rl.NewSampler(ds.Env, c, cfg)
	actor := entry.ActorFor(c)

	maxAttempts := m.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = s.srv.cfg.DefaultMaxAttempts
	}
	every := s.srv.cfg.ProgressEvery
	lastProgress, lastAttempts := 0, 0
	var budgetAfter time.Duration
	found, attempts, err := sampler.StreamSatisfied(ctx, actor, m.N, maxAttempts,
		func(g rl.Generated) error {
			s.tenant.noteRow()
			return s.send(&wire.Row{ID: m.ID, SQL: g.SQL, Measured: g.Measured, Satisfied: true})
		},
		func(attempts, found int) error {
			ok, after := s.tenant.consumeAttempts(attempts - lastAttempts)
			lastAttempts = attempts
			if !ok {
				budgetAfter = after
				return errAttemptBudget
			}
			if attempts-lastProgress < every || found >= m.N {
				return nil
			}
			lastProgress = attempts
			return s.send(&wire.Progress{ID: m.ID, Attempts: attempts, Found: found})
		})
	switch {
	case errors.Is(err, errAttemptBudget):
		s.terminal(m.ID, &wire.Error{ID: m.ID, Code: wire.CodeQuotaExceeded, Retryable: true,
			RetryAfterMillis: budgetAfter.Milliseconds(),
			Msg: fmt.Sprintf("tenant %s attempt budget exhausted after %d attempts (%d/%d found)",
				s.tenant.name, attempts, found, m.N)})
	case err != nil && ctx.Err() == nil:
		// A send failure or sampler error that wasn't a cancellation: the
		// Error frame is best-effort (the connection may already be gone).
		s.terminal(m.ID, &wire.Error{ID: m.ID, Code: wire.CodeInternal, Msg: err.Error()})
	default:
		s.terminalCtx(ctx, m, found, attempts)
	}
}

// terminalCtx writes the stream's end-of-life frame for a (possibly)
// cancelled context: a deadline expiry becomes a coded Error, every
// other cancellation the usual Done{Canceled}, and a live context a
// clean Done.
func (s *session) terminalCtx(ctx context.Context, m *wire.Generate, found, attempts int) {
	if ctx.Err() != nil && errors.Is(context.Cause(ctx), errRequestDeadline) {
		s.terminal(m.ID, &wire.Error{ID: m.ID, Code: wire.CodeDeadlineExceeded,
			Msg: fmt.Sprintf("request deadline exceeded after %d attempts (%d/%d found)", attempts, found, m.N)})
		return
	}
	s.terminal(m.ID, &wire.Done{ID: m.ID, Found: found, Attempts: attempts, Canceled: ctx.Err() != nil})
}

// resolve maps a Generate frame onto an open dataset and a validated
// constraint, with the wire error code for each refusal. An empty
// dataset name selects the server's only dataset when exactly one is
// open. Constraint bounds must be finite: NaN compares false against
// everything, so an unchecked NaN range would slip past the emptiness
// test and poison the sampler's reward math.
func (s *session) resolve(m *wire.Generate) (*Dataset, rl.Constraint, string, error) {
	name := m.Dataset
	if name == "" && len(s.srv.datasets) == 1 {
		for n := range s.srv.datasets {
			name = n
		}
	}
	ds := s.srv.datasets[name]
	if ds == nil {
		return nil, rl.Constraint{}, wire.CodeUnknownDataset,
			fmt.Errorf("unknown dataset %q (serving %v)", m.Dataset, s.srv.datasetNames())
	}
	metric, err := parseMetric(m.Metric)
	if err != nil {
		return nil, rl.Constraint{}, wire.CodeInvalidArgument, err
	}
	if m.N <= 0 {
		return nil, rl.Constraint{}, wire.CodeInvalidArgument, fmt.Errorf("n must be positive, got %d", m.N)
	}
	if m.IsRange {
		if !isFinite(m.Lo) || !isFinite(m.Hi) {
			return nil, rl.Constraint{}, wire.CodeInvalidArgument,
				fmt.Errorf("range bounds must be finite, got [%g, %g]", m.Lo, m.Hi)
		}
		if m.Hi < m.Lo {
			return nil, rl.Constraint{}, wire.CodeInvalidArgument, fmt.Errorf("range [%g, %g] is empty", m.Lo, m.Hi)
		}
		return ds, rl.RangeConstraint(metric, m.Lo, m.Hi), "", nil
	}
	if !isFinite(m.Point) {
		return nil, rl.Constraint{}, wire.CodeInvalidArgument,
			fmt.Errorf("point must be finite, got %g", m.Point)
	}
	return ds, rl.PointConstraint(metric, m.Point), "", nil
}

// isFinite reports a float is neither NaN nor ±Inf.
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// noteIdleReaped counts one idle-timeout session close.
func (s *Server) noteIdleReaped() {
	s.mu.Lock()
	s.idleReaped++
	s.mu.Unlock()
}
