package service

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/wire"
)

// session is one accepted connection: a context subtree rooted in the
// server's base context (cancel-on-disconnect fans out to every
// in-flight request), a write mutex serializing response frames, and the
// client's seed from which every request's generation stream derives
// deterministically.
type session struct {
	id   uint64
	srv  *Server
	conn net.Conn

	ctx    context.Context
	cancel context.CancelFunc

	seed int64 // client Hello seed; request streams fan out of it

	wmu sync.Mutex // serializes whole frames onto conn

	mu       sync.Mutex
	active   map[uint64]context.CancelFunc // in-flight request cancels, by id
	draining bool

	reqWG sync.WaitGroup // in-flight request goroutines
}

// handshakeTimeout bounds how long a fresh connection may sit silent
// before Hello; writeTimeout bounds any single frame write.
const (
	handshakeTimeout = 10 * time.Second
	writeTimeout     = 30 * time.Second
)

func newSession(srv *Server, id uint64, conn net.Conn) *session {
	s := &session{id: id, srv: srv, conn: conn, active: map[uint64]context.CancelFunc{}}
	s.ctx, s.cancel = context.WithCancel(srv.baseCtx)
	return s
}

// run is the session's read loop: handshake, then dispatch frames until
// the peer leaves, the connection dies, or the server drains it. The
// exit path cancels the request subtree first, joins every request
// goroutine, and only then closes the connection — no request ever
// writes to a closed socket it didn't know about.
func (s *session) run() {
	defer func() {
		s.cancel()
		s.reqWG.Wait()
		s.conn.Close()
	}()
	if !s.handshake() {
		return
	}
	maxFrame := s.srv.cfg.MaxFrame
	for {
		msg, err := wire.ReadMessage(s.conn, maxFrame)
		if err != nil {
			return // disconnect, drain close, or protocol violation
		}
		switch m := msg.(type) {
		case *wire.Generate:
			s.startGenerate(m)
		case *wire.Cancel:
			s.cancelRequest(m.ID)
		case *wire.Goodbye:
			return
		default:
			s.send(&wire.Error{Msg: fmt.Sprintf("unexpected %T frame", msg)})
			return
		}
	}
}

// handshake reads Hello and answers Welcome (or a versioning Error).
func (s *session) handshake() bool {
	s.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	msg, err := wire.ReadMessage(s.conn, s.srv.cfg.MaxFrame)
	if err != nil {
		return false
	}
	hello, ok := msg.(*wire.Hello)
	if !ok {
		s.send(&wire.Error{Msg: fmt.Sprintf("expected Hello, got %T", msg)})
		return false
	}
	if hello.Version != wire.Version {
		s.send(&wire.Error{Msg: fmt.Sprintf("protocol version %d unsupported (server speaks %d)", hello.Version, wire.Version)})
		return false
	}
	s.conn.SetReadDeadline(time.Time{})
	s.seed = hello.Seed
	return s.send(&wire.Welcome{
		Version:   wire.Version,
		Server:    "learnedsqlgen",
		SessionID: s.id,
		Datasets:  s.srv.datasetNames(),
	}) == nil
}

// send serializes one frame onto the connection. Frame writes are whole
// (one Write call inside wire.WriteMessage) and mutex-ordered, so
// concurrent request streams never interleave bytes.
func (s *session) send(m wire.Message) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return wire.WriteMessage(s.conn, m)
}

// startGenerate validates and launches one request stream. Runs on the
// read loop goroutine, so reqWG.Add always happens-before run's Wait.
func (s *session) startGenerate(m *wire.Generate) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.send(&wire.Error{ID: m.ID, Msg: "server draining"})
		return
	}
	if _, dup := s.active[m.ID]; dup {
		s.mu.Unlock()
		s.send(&wire.Error{ID: m.ID, Msg: fmt.Sprintf("request id %d already in flight", m.ID)})
		return
	}
	rctx, rcancel := context.WithCancel(s.ctx)
	s.active[m.ID] = rcancel
	s.mu.Unlock()
	s.reqWG.Add(1)
	go func() {
		defer s.reqWG.Done()
		defer s.finishRequest(m.ID, rcancel)
		s.serveGenerate(rctx, m)
	}()
}

// cancelRequest handles a Cancel frame; unknown ids are ignored (the
// stream may have just finished — Done and Cancel cross on the wire).
func (s *session) cancelRequest(id uint64) {
	s.mu.Lock()
	cancel := s.active[id]
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// finishRequest retires an in-flight request and, when the session is
// draining and nothing remains in flight, closes the connection so the
// read loop exits — the per-session half of graceful drain. Normally
// terminal() has already retired the id; this is the backstop that also
// runs the drain check.
func (s *session) finishRequest(id uint64, cancel context.CancelFunc) {
	cancel()
	s.mu.Lock()
	delete(s.active, id)
	closeNow := s.draining && len(s.active) == 0
	s.mu.Unlock()
	if closeNow {
		s.conn.Close()
	}
}

// terminal retires the request id and then writes its terminal frame
// (Done or Error). Retirement must happen-before the terminal write: the
// client may reuse the id the moment it reads the terminal frame, and
// its next Generate would race the read loop against this goroutine's
// deferred finishRequest if the id were still in the active map.
func (s *session) terminal(id uint64, m wire.Message) {
	s.mu.Lock()
	if cancel := s.active[id]; cancel != nil {
		cancel()
		delete(s.active, id)
	}
	s.mu.Unlock()
	s.send(m)
}

// drain flips the session into drain mode: new Generate frames are
// refused, and the connection closes as soon as the in-flight count hits
// zero (immediately for idle sessions).
func (s *session) drain() {
	s.mu.Lock()
	s.draining = true
	closeNow := len(s.active) == 0
	s.mu.Unlock()
	if closeNow {
		s.conn.Close()
	}
}

// serveGenerate runs one request stream: acquire the warm registry entry
// covering the constraint's domain, build a request-private sampler
// seeded by FanSeed(session seed, request id), and stream satisfied
// queries as Row frames with periodic Progress until Done. The sampler
// owns its own compute workspaces and prefix cache; the only shared
// state it touches are the frozen entry weights (read-only) and the
// dataset's concurrency-safe estimator cache.
func (s *session) serveGenerate(ctx context.Context, m *wire.Generate) {
	ds, c, err := s.resolve(m)
	if err != nil {
		s.terminal(m.ID, &wire.Error{ID: m.ID, Msg: err.Error()})
		return
	}
	entry, err := s.srv.reg.Acquire(ctx, ds, c)
	if err != nil {
		if ctx.Err() != nil {
			s.terminal(m.ID, &wire.Done{ID: m.ID, Canceled: true})
		} else {
			s.terminal(m.ID, &wire.Error{ID: m.ID, Msg: fmt.Sprintf("warm model: %v", err)})
		}
		return
	}
	defer s.srv.reg.Release(entry)

	cfg := s.srv.reg.cfg.Base
	cfg.Seed = rl.FanSeed(s.seed, m.ID)
	sampler := rl.NewSampler(ds.Env, c, cfg)
	actor := entry.ActorFor(c)

	maxAttempts := m.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = s.srv.cfg.DefaultMaxAttempts
	}
	every := s.srv.cfg.ProgressEvery
	lastProgress := 0
	found, attempts, err := sampler.StreamSatisfied(ctx, actor, m.N, maxAttempts,
		func(g rl.Generated) error {
			return s.send(&wire.Row{ID: m.ID, SQL: g.SQL, Measured: g.Measured, Satisfied: true})
		},
		func(attempts, found int) error {
			if attempts-lastProgress < every || found >= m.N {
				return nil
			}
			lastProgress = attempts
			return s.send(&wire.Progress{ID: m.ID, Attempts: attempts, Found: found})
		})
	if err != nil && ctx.Err() == nil {
		// A send failure or sampler error that wasn't a cancellation: the
		// Error frame is best-effort (the connection may already be gone).
		s.terminal(m.ID, &wire.Error{ID: m.ID, Msg: err.Error()})
		return
	}
	s.terminal(m.ID, &wire.Done{ID: m.ID, Found: found, Attempts: attempts, Canceled: ctx.Err() != nil})
}

// resolve maps a Generate frame onto an open dataset and a validated
// constraint. An empty dataset name selects the server's only dataset
// when exactly one is open.
func (s *session) resolve(m *wire.Generate) (*Dataset, rl.Constraint, error) {
	name := m.Dataset
	if name == "" && len(s.srv.datasets) == 1 {
		for n := range s.srv.datasets {
			name = n
		}
	}
	ds := s.srv.datasets[name]
	if ds == nil {
		return nil, rl.Constraint{}, fmt.Errorf("unknown dataset %q (serving %v)", m.Dataset, s.srv.datasetNames())
	}
	metric, err := parseMetric(m.Metric)
	if err != nil {
		return nil, rl.Constraint{}, err
	}
	if m.N <= 0 {
		return nil, rl.Constraint{}, fmt.Errorf("n must be positive, got %d", m.N)
	}
	if m.IsRange {
		if m.Hi < m.Lo {
			return nil, rl.Constraint{}, fmt.Errorf("range [%g, %g] is empty", m.Lo, m.Hi)
		}
		return ds, rl.RangeConstraint(metric, m.Lo, m.Hi), nil
	}
	return ds, rl.PointConstraint(metric, m.Point), nil
}
