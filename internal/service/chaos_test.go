package service

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"learnedsqlgen/client"
	"learnedsqlgen/internal/netchaos"
	"learnedsqlgen/internal/wire"
)

// tenantConfig is testConfig plus four authenticated tenants and tight
// write deadlines, the setup for the hostile-network acceptance tests.
func tenantConfig() Config {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{
		{Name: "alpha", Token: "tok-alpha"},
		{Name: "bravo", Token: "tok-bravo"},
		{Name: "charlie", Token: "tok-charlie"},
		{Name: "delta", Token: "tok-delta"},
	}
	cfg.WriteTimeout = 300 * time.Millisecond
	return cfg
}

// waitNoSessions polls until every session is gone from the server.
func waitNoSessions(t *testing.T, srv *Server, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if srv.Stats().ActiveSessions == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sessions still alive after %v: %s", within, srv.Stats())
}

// TestTenantIsolationUnderChaos is the acceptance test for the
// protection layer: four tenants share one server — one stalls mid-read
// and never drains its rows, one arrives through a chaos proxy that
// resets the connection mid-stream, and the two healthy tenants must
// still complete, receiving streams byte-identical to the same requests
// against an unloaded twin server. Afterwards the stalled and reset
// sessions are gone (each killed its own session and nothing else) and
// no goroutines leak.
func TestTenantIsolationUnderChaos(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := tenantConfig()
	srv, addr, shutdown := startServer(t, cfg)

	// The unloaded twin: identical config and seeds, no chaos, no load.
	// Byte-identical streams across the two prove the hostile tenants
	// could not perturb the healthy tenants' generation.
	twin, twinAddr, twinShutdown := startServer(t, cfg)
	_ = twin

	req := client.Request{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 3, MaxAttempts: 2000}

	var want [2][]string
	for i, token := range []string{"tok-charlie", "tok-delta"} {
		conn, err := client.Dial(twinAddr, &client.Config{Seed: int64(100 + i), Token: token})
		if err != nil {
			t.Fatalf("twin dial: %v", err)
		}
		st, err := conn.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("twin generate: %v", err)
		}
		want[i] = collect(t, st)
		conn.Close()
	}
	twinShutdown()

	// Tenant alpha: a stalled reader over a synchronous pipe — it
	// handshakes, requests an unbounded stream, then never reads another
	// byte. The server's first blocked Row write must trip WriteTimeout
	// and kill only this session.
	stalled, side := net.Pipe()
	defer stalled.Close()
	srv.startSession(side)
	writeFrame(t, stalled, &wire.Hello{Version: wire.Version, Client: "stalled", Seed: 7, Token: "tok-alpha"})
	if _, ok := readFrame(t, stalled).(*wire.Welcome); !ok {
		t.Fatal("stalled tenant handshake failed")
	}
	writeFrame(t, stalled, &wire.Generate{ID: 1, Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30})
	// ...and now alpha reads nothing, ever.

	// Tenant bravo: a real TCP client behind a chaos proxy that tears the
	// connection down mid-stream at a byte budget past the handshake.
	proxy, err := netchaos.NewProxy(addr, netchaos.Config{
		Seed:             99,
		ResetAfterBytes:  2200,
		PartialWriteProb: 0.5,
	})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()
	bravoDone := make(chan error, 1)
	go func() {
		conn, err := client.Dial(proxy.Addr(), &client.Config{Seed: 8, Token: "tok-bravo"})
		if err != nil {
			bravoDone <- err // reset during handshake still counts as "died alone"
			return
		}
		defer conn.Close()
		st, err := conn.Generate(context.Background(), client.Request{
			Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
		})
		if err != nil {
			bravoDone <- err
			return
		}
		for st.Next() {
		}
		bravoDone <- st.Err()
	}()

	// Tenants charlie and delta: healthy concurrent clients that must be
	// untouched by the hostility around them.
	var got [2][]string
	var wg sync.WaitGroup
	for i, token := range []string{"tok-charlie", "tok-delta"} {
		wg.Add(1)
		go func(i int, token string) {
			defer wg.Done()
			conn, err := client.Dial(addr, &client.Config{Seed: int64(100 + i), Token: token})
			if err != nil {
				t.Errorf("tenant %s dial: %v", token, err)
				return
			}
			defer conn.Close()
			st, err := conn.Generate(context.Background(), req)
			if err != nil {
				t.Errorf("tenant %s generate: %v", token, err)
				return
			}
			got[i] = collect(t, st)
		}(i, token)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := range got {
		if strings.Join(got[i], "\n") != strings.Join(want[i], "\n") {
			t.Fatalf("healthy tenant %d diverged from unloaded twin under chaos:\n got: %v\nwant: %v", i, got[i], want[i])
		}
	}

	// Bravo's connection must die on its own (the chaos reset), not hang.
	select {
	case err := <-bravoDone:
		if err == nil {
			t.Fatal("reset tenant finished cleanly; the proxy should have torn it down")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("reset tenant still hanging after 30s")
	}

	// Alpha's stalled session dies at the write deadline; bravo's at the
	// reset. Both sessions must be reaped with no one else harmed.
	waitNoSessions(t, srv, 15*time.Second)
	st := srv.Stats()
	for _, tn := range st.Tenants {
		if tn.ActiveStreams != 0 {
			t.Errorf("tenant %s still holds %d admission slots after its sessions died", tn.Name, tn.ActiveStreams)
		}
	}
	shutdown()

	// Zero goroutine leaks across servers, proxy, chaos, and clients.
	proxy.Close()
	stalled.Close()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAuthHandshake: with tenants configured, a missing or wrong token
// is refused with CodeUnauthenticated; the right token is admitted.
func TestAuthHandshake(t *testing.T) {
	_, addr, shutdown := startServer(t, tenantConfig())
	defer shutdown()

	for _, token := range []string{"", "wrong-token"} {
		_, err := client.Dial(addr, &client.Config{Seed: 1, Token: token})
		if err == nil {
			t.Fatalf("dial with token %q succeeded, want unauthenticated refusal", token)
		}
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeUnauthenticated {
			t.Fatalf("dial with token %q: %v, want ServerError{unauthenticated}", token, err)
		}
		if se.Retryable() {
			t.Fatal("unauthenticated must not be retryable")
		}
	}

	conn, err := client.Dial(addr, &client.Config{Seed: 1, Token: "tok-alpha"})
	if err != nil {
		t.Fatalf("authenticated dial: %v", err)
	}
	defer conn.Close()
	if conn.Version() != wire.Version {
		t.Fatalf("negotiated version %d, want %d", conn.Version(), wire.Version)
	}
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if rows := collect(t, st); len(rows) != 1 {
		t.Fatalf("authenticated stream returned %d rows, want 1", len(rows))
	}
}

// TestQuotaRetryReplaysIdentically: a rate-limited tenant's second
// request is refused with quota_exceeded; the client's retry layer
// re-issues it transparently after the backoff, and because the retry
// reuses the request id, the rows are byte-identical to a fresh
// connection replaying the same seed and request sequence.
func TestQuotaRetryReplaysIdentically(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{
		Name: "metered", Token: "tok-metered",
		Limits: TenantLimits{RatePerSec: 2, Burst: 1},
	}}
	srv, addr, shutdown := startServer(t, cfg)
	defer shutdown()

	// Both Generate frames go out back-to-back before either stream is
	// consumed, so the two admission decisions are microseconds apart:
	// burst 1 admits the first and must refuse the second (the bucket
	// cannot refill a 500ms token in between), whatever the machine load.
	run := func() (rows [2][]string, retries int) {
		conn, err := client.Dial(addr, &client.Config{
			Seed: 42, Token: "tok-metered",
			Retry: &client.RetryConfig{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 400 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		req := client.Request{Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 2, MaxAttempts: 2000}
		var sts [2]*client.Stream
		for i := range sts {
			if sts[i], err = conn.Generate(context.Background(), req); err != nil {
				t.Fatalf("generate %d: %v", i, err)
			}
		}
		for i, st := range sts {
			rows[i] = collect(t, st)
			retries += st.Retries()
		}
		return rows, retries
	}

	first, retries1 := run()
	if retries1 == 0 {
		t.Fatal("rate limit never triggered a retry; quota path untested")
	}
	second, _ := run()
	for i := range first {
		if strings.Join(first[i], "\n") != strings.Join(second[i], "\n") {
			t.Fatalf("request %d rows diverged across retried replays:\n first: %v\nsecond: %v", i, first[i], second[i])
		}
	}
	if st := srv.Stats(); st.Tenants[0].RateRefusals == 0 {
		t.Fatalf("server metered no rate refusals: %s", st)
	}
}

// TestTenantStreamCap: a tenant at its concurrent-stream cap gets
// quota_exceeded for the excess stream while the in-flight one lives.
func TestTenantStreamCap(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{
		Name: "narrow", Token: "tok-narrow",
		Limits: TenantLimits{MaxStreams: 1},
	}}
	_, addr, shutdown := startServer(t, cfg)
	defer shutdown()

	conn, err := client.Dial(addr, &client.Config{Seed: 5, Token: "tok-narrow"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	long, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate long: %v", err)
	}
	if !long.Next() {
		t.Fatalf("long stream produced nothing: %v", long.Err())
	}
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate second: %v", err)
	}
	for st.Next() {
		t.Fatal("over-cap stream delivered a row")
	}
	var se *client.ServerError
	if err := st.Err(); !errors.As(err, &se) || se.Code != wire.CodeQuotaExceeded {
		t.Fatalf("over-cap stream ended with %v, want quota_exceeded", err)
	}
	if !se.Retryable() {
		t.Fatal("quota_exceeded should be retryable")
	}
	// The long stream is unharmed by its sibling's refusal.
	if !long.Next() {
		t.Fatalf("long stream died after sibling refusal: %v", long.Err())
	}
}

// TestAttemptBudgetCutsStream: a stream that exhausts the tenant's
// per-window episode budget ends with quota_exceeded mid-flight, with a
// retry-after pointing at the window rollover.
func TestAttemptBudgetCutsStream(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = []TenantConfig{{
		Name: "budgeted", Token: "tok-budgeted",
		Limits: TenantLimits{AttemptBudget: 30, AttemptWindow: time.Hour},
	}}
	_, addr, shutdown := startServer(t, cfg)
	defer shutdown()

	conn, err := client.Dial(addr, &client.Config{Seed: 5, Token: "tok-budgeted"})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for st.Next() {
	}
	var se *client.ServerError
	if err := st.Err(); !errors.As(err, &se) || se.Code != wire.CodeQuotaExceeded {
		t.Fatalf("stream ended with %v, want quota_exceeded", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("budget refusal carried no retry-after hint: %+v", se)
	}
}

// TestMaxSessionsSheds: the server-wide session cap refuses the excess
// handshake with a retryable overloaded error, and capacity returns when
// a session leaves.
func TestMaxSessionsSheds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 1
	_, addr, shutdown := startServer(t, cfg)
	defer shutdown()

	first, err := client.Dial(addr, &client.Config{Seed: 1})
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	_, err = client.Dial(addr, &client.Config{Seed: 2})
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeOverloaded {
		t.Fatalf("second dial: %v, want ServerError{overloaded}", err)
	}
	if !se.Retryable() || se.RetryAfter <= 0 {
		t.Fatalf("overloaded refusal should be retryable with a hint: %+v", se)
	}
	first.Close()
	// Capacity frees once the first session is reaped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := client.Dial(addr, &client.Config{Seed: 3})
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial still refused after capacity freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaxStreamsShedsRequests: the server-wide in-flight stream cap
// refuses the excess request with overloaded while the session and its
// existing stream survive.
func TestMaxStreamsShedsRequests(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStreams = 1
	_, addr, shutdown := startServer(t, cfg)
	defer shutdown()

	conn, err := client.Dial(addr, &client.Config{Seed: 4})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	long, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate long: %v", err)
	}
	if !long.Next() {
		t.Fatalf("long stream produced nothing: %v", long.Err())
	}
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate second: %v", err)
	}
	for st.Next() {
	}
	var se *client.ServerError
	if err := st.Err(); !errors.As(err, &se) || se.Code != wire.CodeOverloaded {
		t.Fatalf("shed stream ended with %v, want overloaded", err)
	}
	if !long.Next() {
		t.Fatalf("long stream died after shedding its sibling: %v", long.Err())
	}
}

// TestRequestDeadline: a request whose deadline expires mid-stream ends
// with CodeDeadlineExceeded — not Done, not a hung stream — and the
// session survives to serve the next request.
func TestRequestDeadline(t *testing.T) {
	_, addr, shutdown := startServer(t, testConfig())
	defer shutdown()

	conn, err := client.Dial(addr, &client.Config{Seed: 9})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000,
		N: 1 << 30, MaxAttempts: 1 << 30,
		Deadline: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	start := time.Now()
	for st.Next() {
	}
	var se *client.ServerError
	if err := st.Err(); !errors.As(err, &se) || se.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("stream ended with %v, want deadline_exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline enforcement took %v for a 200ms deadline", elapsed)
	}
	// The session is intact: the next request streams normally.
	st2, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatalf("generate after deadline: %v", err)
	}
	if rows := collect(t, st2); len(rows) != 1 {
		t.Fatalf("post-deadline stream returned %d rows, want 1", len(rows))
	}
}

// TestServerMaxRequestTimeout: the server-side cap bounds requests that
// declared no deadline of their own.
func TestServerMaxRequestTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRequestTimeout = 200 * time.Millisecond
	_, addr, shutdown := startServer(t, cfg)
	defer shutdown()

	conn, err := client.Dial(addr, &client.Config{Seed: 10})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	st, err := conn.Generate(context.Background(), client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000, N: 1 << 30, MaxAttempts: 1 << 30,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for st.Next() {
	}
	var se *client.ServerError
	if err := st.Err(); !errors.As(err, &se) || se.Code != wire.CodeDeadlineExceeded {
		t.Fatalf("uncapped request ended with %v, want server-imposed deadline_exceeded", err)
	}
}
