package service

import (
	"testing"
	"time"

	"learnedsqlgen/internal/wire"
)

// fakeClock is an injectable tenant clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time             { return f.t }
func (f *fakeClock) advance(d time.Duration)    { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock                  { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(t *tenant, c *fakeClock) *tenant { t.now = c.now; return t }

// TestResolveLimits pins the inherit/override semantics: zero inherits
// the default, negative means explicitly unlimited, and the derived
// fields get their floors.
func TestResolveLimits(t *testing.T) {
	def := TenantLimits{RatePerSec: 10, Burst: 5, MaxStreams: 3, AttemptBudget: 100, AttemptWindow: time.Second}
	got := resolveLimits(TenantLimits{}, def)
	if got != def {
		t.Fatalf("zero limits should inherit defaults wholesale: %+v", got)
	}
	got = resolveLimits(TenantLimits{RatePerSec: -1, MaxStreams: -1, AttemptBudget: -1}, def)
	if got.RatePerSec != 0 || got.MaxStreams != 0 || got.AttemptBudget != 0 {
		t.Fatalf("negative limits should normalize to unlimited: %+v", got)
	}
	got = resolveLimits(TenantLimits{RatePerSec: 2}, TenantLimits{})
	if got.Burst != 1 {
		t.Fatalf("rated tenant without burst should get burst 1, got %d", got.Burst)
	}
	if got.AttemptWindow != time.Minute {
		t.Fatalf("default attempt window should be 1m, got %v", got.AttemptWindow)
	}
}

// TestTokenBucket drives the admission bucket through burst, depletion,
// refill, and the retry-after arithmetic on a fake clock.
func TestTokenBucket(t *testing.T) {
	clk := newFakeClock()
	tn := withClock(newTenant("a", resolveLimits(TenantLimits{RatePerSec: 2, Burst: 2}, TenantLimits{})), clk)

	for i := 0; i < 2; i++ {
		if code, _ := tn.admitStream(); code != "" {
			t.Fatalf("burst admit %d refused with %q", i, code)
		}
	}
	code, after := tn.admitStream()
	if code != wire.CodeQuotaExceeded {
		t.Fatalf("empty bucket admitted (code %q)", code)
	}
	// 2/s refill and an empty bucket: one token is 500ms away.
	if after <= 0 || after > 500*time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 500ms]", after)
	}
	clk.advance(time.Second) // refills 2 tokens, capped at burst
	if code, _ := tn.admitStream(); code != "" {
		t.Fatalf("refilled bucket refused with %q", code)
	}
	st := tn.stats()
	if st.Streams != 3 || st.RateRefusals != 1 {
		t.Fatalf("counters %+v, want 3 admits / 1 rate refusal", st.TenantCounters)
	}
}

// TestAdmitStreamCap: the concurrent-stream cap refuses independently of
// the rate bucket and releases restore capacity.
func TestAdmitStreamCap(t *testing.T) {
	tn := newTenant("b", resolveLimits(TenantLimits{MaxStreams: 2}, TenantLimits{}))
	for i := 0; i < 2; i++ {
		if code, _ := tn.admitStream(); code != "" {
			t.Fatalf("admit %d refused with %q", i, code)
		}
	}
	if code, _ := tn.admitStream(); code != wire.CodeQuotaExceeded {
		t.Fatalf("over-cap admit got code %q, want quota_exceeded", code)
	}
	tn.releaseStream()
	if code, _ := tn.admitStream(); code != "" {
		t.Fatalf("admit after release refused with %q", code)
	}
	if st := tn.stats(); st.ActiveStreams != 2 || st.StreamRefusals != 1 {
		t.Fatalf("stats %+v, want 2 active / 1 stream refusal", st)
	}
}

// TestAttemptBudgetWindow: the episode budget rolls with its window and
// reports time-to-rollover on exhaustion.
func TestAttemptBudgetWindow(t *testing.T) {
	clk := newFakeClock()
	tn := withClock(newTenant("c", resolveLimits(TenantLimits{AttemptBudget: 10, AttemptWindow: time.Second}, TenantLimits{})), clk)

	if ok, _ := tn.consumeAttempts(10); !ok {
		t.Fatal("within-budget consume refused")
	}
	ok, after := tn.consumeAttempts(1)
	if ok {
		t.Fatal("over-budget consume allowed")
	}
	if after <= 0 || after > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s]", after)
	}
	clk.advance(time.Second) // window rolls
	if ok, _ := tn.consumeAttempts(10); !ok {
		t.Fatal("consume refused after window rollover")
	}
	st := tn.stats()
	if st.Attempts != 21 || st.BudgetStops != 1 {
		t.Fatalf("counters %+v: want all 21 attempts metered, 1 budget stop", st.TenantCounters)
	}
}

// TestUnlimitedTenant: the zero-limit tenant never refuses.
func TestUnlimitedTenant(t *testing.T) {
	tn := newTenant("free", resolveLimits(TenantLimits{}, TenantLimits{}))
	for i := 0; i < 100; i++ {
		if code, _ := tn.admitStream(); code != "" {
			t.Fatalf("unlimited tenant refused at %d with %q", i, code)
		}
		if ok, _ := tn.consumeAttempts(1000); !ok {
			t.Fatalf("unlimited tenant budget refused at %d", i)
		}
	}
}
