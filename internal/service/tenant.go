package service

import (
	"sort"
	"sync"
	"time"

	"learnedsqlgen/internal/wire"
)

// TenantLimits bounds one tenant's resource draw. The zero value of a
// field means "fall back to the server's DefaultLimits field"; a
// negative value means explicitly unlimited, overriding the default.
type TenantLimits struct {
	// RatePerSec refills the tenant's Generate admission token bucket.
	RatePerSec float64
	// Burst is the bucket capacity — how many Generates may arrive
	// back-to-back before the rate gates them (default 1 when rated).
	Burst int
	// MaxStreams caps the tenant's concurrent in-flight streams.
	MaxStreams int
	// AttemptBudget caps sampling episodes per AttemptWindow, enforced at
	// batch boundaries inside the sampler's progress callback — a stream
	// that exhausts the window's budget ends with CodeQuotaExceeded.
	AttemptBudget int
	// AttemptWindow is the budget window (default 1 minute).
	AttemptWindow time.Duration
}

// TenantConfig declares one tenant of the static token→tenant map.
type TenantConfig struct {
	// Name identifies the tenant in stats and logs.
	Name string
	// Token is the Hello credential; must be unique across tenants.
	Token string
	// Limits bounds the tenant; zero fields inherit Config.DefaultLimits.
	Limits TenantLimits
}

// TenantCounters is one tenant's cumulative accounting.
type TenantCounters struct {
	// Sessions counts handshakes authenticated as this tenant.
	Sessions int64
	// Streams counts Generate requests admitted.
	Streams int64
	// Rows counts satisfied queries streamed.
	Rows int64
	// Attempts counts sampling episodes consumed.
	Attempts int64
	// RateRefusals / StreamRefusals count Generates refused by the token
	// bucket and the concurrent-stream cap; BudgetStops counts streams
	// cut mid-flight by the attempts budget.
	RateRefusals   int64
	StreamRefusals int64
	BudgetStops    int64
}

// TenantStats is one tenant's snapshot in ServerStats.
type TenantStats struct {
	Name          string
	ActiveStreams int
	TenantCounters
}

// tenant is a tenant's runtime state: limits, a token bucket, the
// concurrent-stream count, and the rolling attempts window. One instance
// is shared by every session authenticated with the tenant's token.
type tenant struct {
	name   string
	limits TenantLimits
	now    func() time.Time // injectable clock (tests)

	mu          sync.Mutex
	tokens      float64   // admission bucket level
	last        time.Time // last bucket refill
	streams     int       // concurrent in-flight streams
	windowStart time.Time
	windowUsed  int
	c           TenantCounters
}

// resolveLimits folds per-tenant limits over the server defaults:
// zero fields inherit, negative fields mean unlimited.
func resolveLimits(l, def TenantLimits) TenantLimits {
	if l.RatePerSec == 0 {
		l.RatePerSec = def.RatePerSec
	}
	if l.Burst == 0 {
		l.Burst = def.Burst
	}
	if l.MaxStreams == 0 {
		l.MaxStreams = def.MaxStreams
	}
	if l.AttemptBudget == 0 {
		l.AttemptBudget = def.AttemptBudget
	}
	if l.AttemptWindow == 0 {
		l.AttemptWindow = def.AttemptWindow
	}
	// Negative = explicitly unlimited; normalize for the checks below.
	if l.RatePerSec < 0 {
		l.RatePerSec = 0
	}
	if l.MaxStreams < 0 {
		l.MaxStreams = 0
	}
	if l.AttemptBudget < 0 {
		l.AttemptBudget = 0
	}
	if l.Burst <= 0 {
		l.Burst = 1
	}
	if l.AttemptWindow <= 0 {
		l.AttemptWindow = time.Minute
	}
	return l
}

func newTenant(name string, limits TenantLimits) *tenant {
	t := &tenant{name: name, limits: limits, now: time.Now}
	t.tokens = float64(limits.Burst) // buckets start full
	return t
}

func (t *tenant) noteSession() {
	t.mu.Lock()
	t.c.Sessions++
	t.mu.Unlock()
}

func (t *tenant) noteRow() {
	t.mu.Lock()
	t.c.Rows++
	t.mu.Unlock()
}

// refillLocked tops the token bucket up for the time elapsed since the
// last refill. Call with t.mu held and RatePerSec > 0.
func (t *tenant) refillLocked(now time.Time) {
	if t.last.IsZero() {
		t.last = now
		return
	}
	t.tokens += now.Sub(t.last).Seconds() * t.limits.RatePerSec
	if max := float64(t.limits.Burst); t.tokens > max {
		t.tokens = max
	}
	t.last = now
}

// admitStream gates one Generate. On refusal it returns the wire error
// code and a retry-after hint; code "" means admitted (the caller must
// pair it with releaseStream exactly once).
func (t *tenant) admitStream() (code string, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limits.MaxStreams > 0 && t.streams >= t.limits.MaxStreams {
		t.c.StreamRefusals++
		return wire.CodeQuotaExceeded, time.Second
	}
	if t.limits.RatePerSec > 0 {
		now := t.now()
		t.refillLocked(now)
		if t.tokens < 1 {
			t.c.RateRefusals++
			wait := time.Duration((1 - t.tokens) / t.limits.RatePerSec * float64(time.Second))
			return wire.CodeQuotaExceeded, wait
		}
		t.tokens--
	}
	t.streams++
	t.c.Streams++
	return "", 0
}

func (t *tenant) releaseStream() {
	t.mu.Lock()
	t.streams--
	t.mu.Unlock()
}

// consumeAttempts charges n sampling episodes against the tenant's
// window budget. ok false means the budget is exhausted; retryAfter is
// the time until the window rolls over.
func (t *tenant) consumeAttempts(n int) (ok bool, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.c.Attempts += int64(n)
	if t.limits.AttemptBudget <= 0 {
		return true, 0
	}
	now := t.now()
	if t.windowStart.IsZero() || now.Sub(t.windowStart) >= t.limits.AttemptWindow {
		t.windowStart = now
		t.windowUsed = 0
	}
	t.windowUsed += n
	if t.windowUsed > t.limits.AttemptBudget {
		t.c.BudgetStops++
		return false, t.windowStart.Add(t.limits.AttemptWindow).Sub(now)
	}
	return true, 0
}

func (t *tenant) stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TenantStats{Name: t.name, ActiveStreams: t.streams, TenantCounters: t.c}
}

// sortTenantStats orders snapshots by tenant name for stable output.
func sortTenantStats(ts []TenantStats) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
}
