package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/wire"
)

// DatasetSpec names one benchmark the server opens at startup.
type DatasetSpec struct {
	Name  string
	Scale float64
}

// Config tunes a Server. The zero value of most fields selects a
// sensible default, documented per field.
type Config struct {
	// Datasets are opened (generated + vocabulary + environment) before
	// the server accepts connections. At least one is required.
	Datasets []DatasetSpec
	// Seed drives dataset generation and fans out registry pre-training
	// seeds; session streams are keyed by the client's Hello seed, not
	// this one.
	Seed int64
	// SampleValues is the vocabulary's k (default 100).
	SampleValues int
	// Workers is each request sampler's rollout concurrency (default 1;
	// streams are byte-identical for every value).
	Workers int
	// PrefixCacheSize / QuantizedInference configure request samplers
	// exactly as the facade Options of the same names.
	PrefixCacheSize    int
	QuantizedInference bool
	// K, WarmRounds, WarmEpisodes and MemoryBudget configure the model
	// registry (see RegistryConfig).
	K            int
	WarmRounds   int
	WarmEpisodes int
	MemoryBudget int64
	// Shards > 1 pre-trains cold registry entries on a data-parallel
	// replica fleet (see RegistryConfig.Shards).
	Shards int
	// CheckpointDir persists registry entries and the warm-start
	// manifest; empty disables persistence. CheckpointKeep is the
	// rotation depth.
	CheckpointDir  string
	CheckpointKeep int
	// DrainTimeout bounds how long Shutdown waits for in-flight streams
	// to finish before cancelling them (default 5s).
	DrainTimeout time.Duration
	// ProgressEvery is the attempt interval between Progress frames
	// (default 64).
	ProgressEvery int
	// DefaultMaxAttempts caps a request's episodes when the client sends
	// MaxAttempts 0 (default 1000).
	DefaultMaxAttempts int
	// MaxFrame bounds inbound frame payloads (default wire.DefaultMaxFrame).
	MaxFrame int

	// Tenants, when non-empty, turns on per-session auth: every Hello
	// must carry a Token matching one tenant, or the handshake is refused
	// with CodeUnauthenticated. Each tenant's limits gate its sessions.
	Tenants []TenantConfig
	// DefaultLimits fills zero-valued fields of every tenant's limits and
	// bounds the anonymous tenant that all sessions share when Tenants is
	// empty. The zero value imposes no limits.
	DefaultLimits TenantLimits
	// MaxSessions caps concurrently-open sessions; excess handshakes are
	// shed with CodeOverloaded plus a retry-after hint (0 = unlimited).
	MaxSessions int
	// MaxStreams caps total in-flight Generate streams server-wide;
	// excess requests are shed with CodeOverloaded (0 = unlimited).
	MaxStreams int
	// IdleTimeout reaps sessions with no inbound frames and nothing in
	// flight (default 2 minutes; negative disables). Sessions with live
	// streams are exempt — TCP backpressure plus WriteTimeout covers dead
	// peers there.
	IdleTimeout time.Duration
	// WriteTimeout bounds any single frame write (default 30s). A stalled
	// peer that never drains its rows trips it and loses only its own
	// session — the write mutex is per-session, so no other tenant waits.
	WriteTimeout time.Duration
	// MaxRequestTimeout caps every request's wall clock: a client
	// DeadlineMillis is clamped to it, and requests without a deadline
	// get it outright (0 = requests are bounded only by MaxAttempts).
	MaxRequestTimeout time.Duration
	// RetryAfterHint is the backoff hint attached to CodeOverloaded
	// refusals (default 1s).
	RetryAfterHint time.Duration

	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// ErrServerClosed is returned by Serve after Shutdown begins.
var ErrServerClosed = errors.New("service: server closed")

// Server is the generation service: an accept loop handing connections
// to sessions, a warm model registry behind them, and a graceful drain.
type Server struct {
	cfg      Config
	datasets map[string]*Dataset
	reg      *Registry

	// baseCtx parents every session context; cancelAll is the drain
	// deadline's hammer — it stops every in-flight stream at its next
	// episode-batch boundary.
	baseCtx   context.Context
	cancelAll context.CancelFunc

	// tenants maps Hello tokens to tenant state; anon is the shared
	// tenant of every session when auth is not configured.
	tenants map[string]*tenant
	anon    *tenant

	inFlight atomic.Int64 // total admitted streams across sessions

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*session
	nextID   uint64
	draining bool
	wg       sync.WaitGroup // one count per live session

	// admission counters (under mu)
	acceptedSessions int64
	shedSessions     int64
	shedStreams      int64
	unauthenticated  int64
	idleReaped       int64
}

// New opens cfg's datasets, builds the registry, and warm-starts it from
// a previous run's manifest when CheckpointDir holds one.
func New(cfg Config) (*Server, error) {
	if len(cfg.Datasets) == 0 {
		return nil, errors.New("service: Config.Datasets must name at least one dataset")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 64
	}
	if cfg.DefaultMaxAttempts <= 0 {
		cfg.DefaultMaxAttempts = 1000
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = time.Second
	}
	s := &Server{cfg: cfg, datasets: map[string]*Dataset{}, sessions: map[uint64]*session{}}
	s.tenants = make(map[string]*tenant, len(cfg.Tenants))
	for _, tc := range cfg.Tenants {
		if tc.Token == "" {
			return nil, fmt.Errorf("service: tenant %q has an empty token", tc.Name)
		}
		if _, dup := s.tenants[tc.Token]; dup {
			return nil, fmt.Errorf("service: duplicate tenant token (tenant %q)", tc.Name)
		}
		name := tc.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%d", len(s.tenants)+1)
		}
		s.tenants[tc.Token] = newTenant(name, resolveLimits(tc.Limits, cfg.DefaultLimits))
	}
	s.anon = newTenant("default", resolveLimits(TenantLimits{}, cfg.DefaultLimits))
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	for _, spec := range cfg.Datasets {
		ds, err := OpenDataset(spec.Name, spec.Scale, cfg.SampleValues, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("service: open dataset %s: %w", spec.Name, err)
		}
		s.datasets[spec.Name] = ds
		s.logf("service: dataset %s open (scale %g, vocab %d)", spec.Name, spec.Scale, ds.Env.Vocab.Size())
	}
	base := rl.FastConfig()
	base.Workers = cfg.Workers
	base.PrefixCacheSize = cfg.PrefixCacheSize
	base.QuantizedInference = cfg.QuantizedInference
	s.reg = NewRegistry(RegistryConfig{
		Budget: cfg.MemoryBudget,
		Dir:    cfg.CheckpointDir,
		Keep:   cfg.CheckpointKeep,
		Seed:   cfg.Seed,
		K:      cfg.K, WarmRounds: cfg.WarmRounds, WarmEpisodes: cfg.WarmEpisodes,
		Shards: cfg.Shards,
		Base:   base,
		Logf:   cfg.Logf,
	})
	if cfg.CheckpointDir != "" {
		warmed, err := s.reg.WarmStart(s.baseCtx, s.datasets)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First run: nothing to warm.
		case err != nil:
			return nil, fmt.Errorf("service: warm start: %w", err)
		case warmed > 0:
			s.logf("service: warm-started %d registry entries", warmed)
		}
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// authenticate maps a Hello token to its tenant. With no tenants
// configured every session shares the anonymous tenant (token ignored);
// with tenants configured a missing or unknown token is refused with
// CodeUnauthenticated.
func (s *Server) authenticate(token string) (*tenant, string) {
	if len(s.tenants) == 0 {
		return s.anon, ""
	}
	if t := s.tenants[token]; t != nil {
		return t, ""
	}
	s.mu.Lock()
	s.unauthenticated++
	s.mu.Unlock()
	return nil, wire.CodeUnauthenticated
}

// ServerStats is a point-in-time snapshot of the server's admission and
// per-tenant accounting.
type ServerStats struct {
	// Sessions counts handshake-accepted sessions since start;
	// ActiveSessions is the current count (pre-handshake included).
	Sessions       int64
	ActiveSessions int
	// ActiveStreams is the current total of in-flight Generate streams.
	ActiveStreams int64
	// ShedSessions / ShedStreams count CodeOverloaded refusals at the two
	// admission points; Unauthenticated counts refused handshakes;
	// IdleReaped counts sessions closed by the idle timeout.
	ShedSessions    int64
	ShedStreams     int64
	Unauthenticated int64
	IdleReaped      int64
	// Tenants holds per-tenant snapshots, sorted by name. The "default"
	// tenant appears only when auth is not configured.
	Tenants []TenantStats
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Sessions:        s.acceptedSessions,
		ActiveSessions:  len(s.sessions),
		ShedSessions:    s.shedSessions,
		ShedStreams:     s.shedStreams,
		Unauthenticated: s.unauthenticated,
		IdleReaped:      s.idleReaped,
	}
	s.mu.Unlock()
	st.ActiveStreams = s.inFlight.Load()
	if len(s.tenants) == 0 {
		st.Tenants = []TenantStats{s.anon.stats()}
	} else {
		st.Tenants = make([]TenantStats, 0, len(s.tenants))
		for _, t := range s.tenants {
			st.Tenants = append(st.Tenants, t.stats())
		}
		sortTenantStats(st.Tenants)
	}
	return st
}

// String renders the snapshot as the one-line form `sqlgen serve` logs.
func (st ServerStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions %d (active %d) streams active %d shed %d/%d unauth %d idle-reaped %d",
		st.Sessions, st.ActiveSessions, st.ActiveStreams,
		st.ShedSessions, st.ShedStreams, st.Unauthenticated, st.IdleReaped)
	for _, t := range st.Tenants {
		fmt.Fprintf(&b, " | %s: sessions %d streams %d (active %d) rows %d attempts %d refused rate %d/streams %d/budget %d",
			t.Name, t.Sessions, t.Streams, t.ActiveStreams, t.Rows, t.Attempts,
			t.RateRefusals, t.StreamRefusals, t.BudgetStops)
	}
	return b.String()
}

// Registry exposes the warm model registry (stats, tests).
func (s *Server) Registry() *Registry { return s.reg }

// Dataset returns an open dataset by name (tests).
func (s *Server) Dataset(name string) *Dataset { return s.datasets[name] }

// datasetNames lists open datasets in stable order for Welcome frames.
func (s *Server) datasetNames() []string {
	names := make([]string, 0, len(s.datasets))
	for _, spec := range s.cfg.Datasets {
		if _, ok := s.datasets[spec.Name]; ok && !contains(names, spec.Name) {
			names = append(names, spec.Name)
		}
	}
	return names
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// ListenAndServe listens on addr ("host:port") and runs Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. Each
// connection becomes a session goroutine; Serve itself returns nil on a
// drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("service: serving on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

// Addr reports the listener address once Serve has one (tests dial it).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) startSession(conn net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.nextID++
	sess := newSession(s, s.nextID, conn)
	s.sessions[sess.id] = sess
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		sess.run()
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
	}()
}

// Shutdown drains the server: stop accepting, let in-flight streams
// finish for up to DrainTimeout (bounded further by ctx), then cancel
// whatever remains, join every session, and checkpoint the registry's
// warm-start manifest. Idle sessions close immediately; busy ones close
// the moment their last stream sends Done. Safe to call once; later
// calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, sess := range sessions {
		sess.drain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	forced := false
	select {
	case <-done:
	case <-timer.C:
		forced = true
	case <-ctx.Done():
		forced = true
	}
	if forced {
		s.logf("service: drain deadline hit, cancelling in-flight streams")
		s.cancelAll()
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.conn.Close() // unblocks read loops mid-frame
		}
		s.mu.Unlock()
		<-done
	}
	s.cancelAll() // release the base context either way
	if err := s.reg.SaveState(); err != nil {
		return fmt.Errorf("service: checkpoint registry state: %w", err)
	}
	s.logf("service: drained (%d sessions at drain start)", len(sessions))
	s.logf("service: stats: %s", s.Stats())
	return nil
}

// readJSON loads a JSON file into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// parseMetric maps a wire metric name to rl.Metric.
func parseMetric(name string) (rl.Metric, error) {
	switch strings.ToLower(name) {
	case "cardinality", "card":
		return rl.Cardinality, nil
	case "cost":
		return rl.Cost, nil
	}
	return 0, fmt.Errorf("unknown metric %q (want cardinality or cost)", name)
}
