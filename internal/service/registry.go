package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"

	"learnedsqlgen/internal/durable"
	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

// Key identifies one warm registry entry: a dataset's exact
// schema/vocabulary geometry plus the decade-bucketed constraint domain
// the entry's policies were pre-trained over. Two requests with
// different constraints that fall in the same bucket share one entry.
type Key struct {
	Fingerprint string
	Domain      string
}

// DomainFor buckets a constraint into the covering decade-aligned
// domain: [10^floor(log10(lo)), 10^ceil(log10(hi))], clamped below at 1,
// divided into k meta-learning tasks. Bucketing is what makes the
// registry warm — every constraint inside [2, 800] maps to the
// [1, 1000] domain, so the second such request (any session) reuses the
// first one's pre-trained policies instead of training its own.
func DomainFor(c rl.Constraint, k int) meta.Domain {
	lo, hi := c.Lo, c.Hi
	if !c.IsRange {
		lo, hi = c.Point, c.Point
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	dlo := math.Pow(10, math.Floor(math.Log10(lo)))
	dhi := math.Pow(10, math.Ceil(math.Log10(hi)))
	if dhi <= dlo {
		dhi = dlo * 10
	}
	if k <= 0 {
		k = DefaultDomainTasks
	}
	return meta.Domain{Metric: c.Metric, Lo: dlo, Hi: dhi, K: k}
}

// DomainKey renders a domain as a stable registry key half.
func DomainKey(d meta.Domain) string {
	return fmt.Sprintf("%s[%g,%g]k%d", d.Metric, d.Lo, d.Hi, d.K)
}

// DefaultDomainTasks is the per-domain task count when RegistryConfig.K
// is zero.
const DefaultDomainTasks = 4

// Entry is one warm model: a domain's pre-trained MetaTrainer (K task
// actors + shared meta-critic), frozen after build. Sessions acquire it,
// read ActorFor's nearest-task policy, and release it; the weights are
// never trained after the ready channel closes, so any number of
// concurrent readers is safe.
type Entry struct {
	Key    Key
	Domain meta.Domain

	ready chan struct{} // closed when model/err is settled
	model *meta.MetaTrainer
	err   error

	weights int // scalar count, priced at 8 bytes each against the budget
	refs    int // guarded by Registry.mu
	lastUse uint64
	loaded  bool // came from a checkpoint rather than fresh pre-training
}

// ActorFor returns the frozen pre-trained policy nearest the constraint
// — §6 adaptation without retraining, shared read-only across sessions.
func (e *Entry) ActorFor(c rl.Constraint) *nn.SeqNet { return e.model.ActorFor(c) }

// Checksum fingerprints the entry's weight bytes (actors + meta-critic).
func (e *Entry) Checksum() uint32 { return nn.ChecksumParams(e.model.Params()) }

// Bytes is the entry's budget charge.
func (e *Entry) Bytes() int64 { return int64(e.weights) * 8 }

// RegistryConfig tunes the warm model registry.
type RegistryConfig struct {
	// Budget bounds resident entry weight bytes; entries past it are
	// LRU-evicted once unreferenced. 0 selects DefaultMemoryBudget.
	Budget int64
	// Dir persists entries as rotated rl.Store checkpoints (one
	// subdirectory per key) plus a registry.json warm-start manifest.
	// Empty disables persistence: evicted entries re-train on next use.
	Dir string
	// Keep is the checkpoint rotation depth per entry (rl.Store
	// semantics).
	Keep int
	// Seed fans out per-entry pre-training seeds (FanSeed over the key
	// hash), so a registry's entries are reproducible individually.
	Seed int64
	// K is the task count per domain; WarmRounds × WarmEpisodes is the
	// pre-training budget of a cold entry.
	K            int
	WarmRounds   int
	WarmEpisodes int
	// Shards > 1 pre-trains cold entries on a fleet of data-parallel
	// replicas (meta.MetaTrainer.PretrainShardedContext): each replica
	// runs WarmEpisodes per task per round on its own cloned Env and the
	// weights are averaged at every round barrier. 0 or 1 keeps the
	// single-process pre-train.
	Shards int
	// Base is the rl configuration entries pre-train and sessions sample
	// under (Seed and OnEpoch are overridden per entry/request).
	Base rl.Config
	// Logf, when non-nil, receives one line per slow registry event
	// (train, load, evict).
	Logf func(format string, args ...any)
}

// DefaultMemoryBudget is the registry's resident-weights budget when
// RegistryConfig.Budget is zero: 256 MiB.
const DefaultMemoryBudget = 256 << 20

// StateFileName is the registry's warm-start manifest inside Dir.
const StateFileName = "registry.json"

// Registry is the warm model store: ref-counted, LRU-evicted entries of
// pre-trained domain policies, checkpointed through rl.Store so a
// restarted server warm-loads instead of re-training.
type Registry struct {
	cfg RegistryConfig

	mu      sync.Mutex
	entries map[Key]*Entry
	clock   uint64
	bytes   int64 // resident entry bytes (settled entries only)

	hits, trains, loads, evictions uint64
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultMemoryBudget
	}
	if cfg.K <= 0 {
		cfg.K = DefaultDomainTasks
	}
	if cfg.WarmRounds <= 0 {
		cfg.WarmRounds = 3
	}
	if cfg.WarmEpisodes <= 0 {
		cfg.WarmEpisodes = 24
	}
	return &Registry{cfg: cfg, entries: map[Key]*Entry{}}
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Acquire returns the settled entry covering c's domain on ds,
// ref-counted for the caller. The first acquirer of a key builds the
// entry — loading its newest checkpoint when Dir holds one, otherwise
// pre-training from scratch and checkpointing the result — while later
// acquirers block on the same build (or ctx). Release every non-error
// return.
func (r *Registry) Acquire(ctx context.Context, ds *Dataset, c rl.Constraint) (*Entry, error) {
	return r.acquireDomain(ctx, ds, DomainFor(c, r.cfg.K))
}

func (r *Registry) acquireDomain(ctx context.Context, ds *Dataset, d meta.Domain) (*Entry, error) {
	key := Key{Fingerprint: ds.Fingerprint, Domain: DomainKey(d)}
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		e.refs++
		r.clock++
		e.lastUse = r.clock
		r.hits++
		r.mu.Unlock()
		return r.await(ctx, e)
	}
	e := &Entry{Key: key, Domain: d, ready: make(chan struct{}), refs: 1}
	r.entries[key] = e
	r.clock++
	e.lastUse = r.clock
	r.mu.Unlock()

	model, loaded, err := r.build(ctx, ds, d, key)
	r.mu.Lock()
	if err != nil {
		e.err = err
		delete(r.entries, key) // a later Acquire retries the build
	} else {
		e.model = model
		e.loaded = loaded
		e.weights = nn.ParamsSize(model.Params())
		r.bytes += e.Bytes()
		if loaded {
			r.loads++
		} else {
			r.trains++
		}
		r.evictLocked()
	}
	close(e.ready)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return e, nil
}

// await blocks until e settles or ctx cancels. The caller already holds
// a reference; error paths drop it.
func (r *Registry) await(ctx context.Context, e *Entry) (*Entry, error) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		r.Release(e)
		return nil, context.Cause(ctx)
	}
	if e.err != nil {
		// Failed entries never enter the resident set; just drop the ref.
		r.mu.Lock()
		e.refs--
		r.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// Release returns a reference taken by Acquire; unreferenced entries
// become eviction candidates when the registry is over budget.
func (r *Registry) Release(e *Entry) {
	if e == nil {
		return
	}
	r.mu.Lock()
	e.refs--
	r.evictLocked()
	r.mu.Unlock()
}

// evictLocked drops least-recently-used, unreferenced, settled entries
// until the resident bytes fit the budget. Entries persist as
// checkpoints (written at build time), so eviction costs a reload, not a
// re-train, when Dir is set.
func (r *Registry) evictLocked() {
	for r.bytes > r.cfg.Budget {
		var victim *Entry
		for _, e := range r.entries {
			if e.refs > 0 || e.model == nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(r.entries, victim.Key)
		r.bytes -= victim.Bytes()
		r.evictions++
		r.logf("service: registry evicted %s/%s (%d KiB resident)",
			victim.Key.Fingerprint, victim.Key.Domain, r.bytes/1024)
	}
}

// entryDir is the per-key checkpoint subdirectory name.
func entryDir(key Key) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", key.Fingerprint, key.Domain)
	return fmt.Sprintf("entry-%016x", h.Sum64())
}

// entrySeed fans a deterministic pre-training seed out of the registry
// seed and the key, so each entry's policies are individually
// reproducible no matter the order entries are built in.
func (r *Registry) entrySeed(key Key) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s", key.Fingerprint, key.Domain)
	return rl.FanSeed(r.cfg.Seed, h.Sum64())
}

// build produces the entry's model: checkpoint-load when possible,
// otherwise pre-train and checkpoint. Runs outside the registry lock.
func (r *Registry) build(ctx context.Context, ds *Dataset, d meta.Domain, key Key) (*meta.MetaTrainer, bool, error) {
	cfg := r.cfg.Base
	cfg.Seed = r.entrySeed(key)
	cfg.OnEpoch = nil
	mt := meta.NewMetaTrainer(ds.Env, d, cfg)
	var store *rl.Store
	if r.cfg.Dir != "" {
		st, err := rl.NewStore(filepath.Join(r.cfg.Dir, entryDir(key)), r.cfg.Keep)
		if err != nil {
			return nil, false, err
		}
		store = st
		if path, err := store.Load(mt); err == nil {
			r.logf("service: registry loaded %s from %s", key.Domain, path)
			return mt, true, nil
		} else if !errors.Is(err, rl.ErrNoCheckpoint) {
			return nil, false, err
		}
	}
	if _, err := mt.PretrainShardedContext(ctx, r.cfg.Shards, r.cfg.WarmRounds, r.cfg.WarmEpisodes); err != nil {
		return nil, false, err
	}
	if store != nil {
		if _, err := store.Save(mt); err != nil {
			return nil, false, err
		}
	}
	r.logf("service: registry pre-trained %s (%d rounds × %d episodes/task, %d shard(s))",
		key.Domain, r.cfg.WarmRounds, r.cfg.WarmEpisodes, max(1, r.cfg.Shards))
	return mt, false, nil
}

// RegistryStats snapshots the registry's counters.
type RegistryStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Trains    uint64 `json:"trains"`
	Loads     uint64 `json:"loads"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the registry.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Entries: len(r.entries), Bytes: r.bytes,
		Hits: r.hits, Trains: r.trains, Loads: r.loads, Evictions: r.evictions,
	}
}

// registryState is the durable warm-start manifest: which (dataset,
// domain) entries were resident at drain time, with weight checksums for
// post-restore verification.
type registryState struct {
	Version int          `json:"version"`
	Entries []stateEntry `json:"entries"`
}

type stateEntry struct {
	Fingerprint string      `json:"fingerprint"`
	Domain      meta.Domain `json:"domain"`
	Checksum    uint32      `json:"checksum"`
	Weights     int         `json:"weights"`
}

// SaveState durably writes the warm-start manifest into Dir. No-op
// without persistence.
func (r *Registry) SaveState() error {
	if r.cfg.Dir == "" {
		return nil
	}
	st := registryState{Version: 1}
	r.mu.Lock()
	for _, e := range r.entries {
		if e.model == nil {
			continue
		}
		st.Entries = append(st.Entries, stateEntry{
			Fingerprint: e.Key.Fingerprint,
			Domain:      e.Domain,
			Checksum:    e.Checksum(),
			Weights:     e.weights,
		})
	}
	r.mu.Unlock()
	// Entry builds create Dir via their rl.Store, but a server can shut
	// down before any entry was ever built — the manifest write must not
	// depend on that.
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return err
	}
	return durable.WriteJSON(filepath.Join(r.cfg.Dir, StateFileName), st)
}

// WarmStart replays the manifest written by SaveState: every recorded
// entry whose dataset is open again is checkpoint-loaded before the
// first request needs it. Entries for unknown fingerprints (different
// scale, seed or schema) are skipped — their checkpoints stay on disk
// but cannot be safely served. Returns how many entries were warmed.
func (r *Registry) WarmStart(ctx context.Context, datasets map[string]*Dataset) (int, error) {
	if r.cfg.Dir == "" {
		return 0, nil
	}
	var st registryState
	if err := readJSON(filepath.Join(r.cfg.Dir, StateFileName), &st); err != nil {
		return 0, err // includes fs.ErrNotExist; caller decides
	}
	byFP := map[string]*Dataset{}
	for _, ds := range datasets {
		byFP[ds.Fingerprint] = ds
	}
	warmed := 0
	for _, se := range st.Entries {
		ds, ok := byFP[se.Fingerprint]
		if !ok {
			r.logf("service: registry skipping %s/%s (dataset not open)", se.Fingerprint, DomainKey(se.Domain))
			continue
		}
		e, err := r.acquireDomain(ctx, ds, se.Domain)
		if err != nil {
			return warmed, err
		}
		if got := e.Checksum(); got != se.Checksum {
			// A degraded rotation (newest checkpoint corrupt, older one
			// loaded) or a re-train — serveable either way, just note it.
			r.logf("service: registry %s checksum changed across restart (%08x → %08x)",
				DomainKey(se.Domain), se.Checksum, got)
		}
		r.Release(e)
		warmed++
	}
	return warmed, nil
}
