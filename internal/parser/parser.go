package parser

import (
	"fmt"
	"strconv"
	"strings"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// Parse parses one SQL statement written in the native dialect.
func Parse(input string) (sqlast.Statement, error) {
	return ParseWithOptions(input, Options{})
}

// ParseWithOptions parses one SQL statement under the given lexical
// conventions — the re-parse half of per-dialect round-trip checks
// (internal/engine renders a statement in an engine's dialect; parsing it
// back with that dialect's Options must rebuild the same AST).
func ParseWithOptions(input string, o Options) (sqlast.Statement, error) {
	toks, err := lex(input, o)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return st, nil
}

// ParseSelect parses a SELECT statement specifically.
func ParseSelect(input string) (*sqlast.Select, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlast.Select)
	if !ok {
		return nil, fmt.Errorf("parser: expected SELECT, got %T", st)
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind, text string) bool {
	t := p.peek()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.peek().String())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) statement() (sqlast.Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(tokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(tokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(tokKeyword, "DELETE"):
		return p.deleteStmt()
	default:
		return nil, p.errf("expected SELECT/INSERT/UPDATE/DELETE, found %q", p.peek().String())
	}
}

func (p *parser) selectStmt() (*sqlast.Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &sqlast.Select{}
	for {
		it, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, it)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.Tables = append(q.Tables, t)
	for p.accept(tokKeyword, "JOIN") {
		t, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Tables = append(q.Tables, t)
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		left, err := p.qualifiedColumn()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		right, err := p.qualifiedColumn()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, sqlast.JoinCond{Left: left, Right: right})
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.qualifiedColumn()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.having()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.qualifiedColumn()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	return q, nil
}

func (p *parser) selectItem() (sqlast.SelectItem, error) {
	if agg, ok := p.aggKeyword(); ok {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return sqlast.SelectItem{}, err
		}
		c, err := p.qualifiedColumn()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return sqlast.SelectItem{}, err
		}
		return sqlast.SelectItem{Agg: agg, Col: c}, nil
	}
	c, err := p.qualifiedColumn()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	return sqlast.SelectItem{Col: c}, nil
}

func (p *parser) aggKeyword() (sqlast.AggFunc, bool) {
	t := p.peek()
	if t.kind != tokKeyword {
		return sqlast.AggNone, false
	}
	var agg sqlast.AggFunc
	switch t.text {
	case "MAX":
		agg = sqlast.AggMax
	case "MIN":
		agg = sqlast.AggMin
	case "SUM":
		agg = sqlast.AggSum
	case "AVG":
		agg = sqlast.AggAvg
	case "COUNT":
		agg = sqlast.AggCount
	default:
		return sqlast.AggNone, false
	}
	p.pos++
	return agg, true
}

func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %q", p.peek().String())
}

func (p *parser) qualifiedColumn() (schema.QualifiedColumn, error) {
	t, err := p.ident()
	if err != nil {
		return schema.QualifiedColumn{}, err
	}
	if _, err := p.expect(tokSymbol, "."); err != nil {
		return schema.QualifiedColumn{}, err
	}
	c, err := p.ident()
	if err != nil {
		return schema.QualifiedColumn{}, err
	}
	return schema.QualifiedColumn{Table: t, Column: c}, nil
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (sqlast.Predicate, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Or{Left: left, Right: right}
	}
	return left, nil
}

// andExpr := unary (AND unary)*
func (p *parser) andExpr() (sqlast.Predicate, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &sqlast.And{Left: left, Right: right}
	}
	return left, nil
}

// unary := NOT unary | ( orExpr ) | atom
func (p *parser) unary() (sqlast.Predicate, error) {
	if p.at(tokKeyword, "NOT") {
		// Distinguish NOT EXISTS from plain negation.
		if p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "EXISTS" {
			return p.atom()
		}
		p.pos++
		inner, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Not{Inner: inner}, nil
	}
	if p.at(tokSymbol, "(") {
		p.pos++
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.atom()
}

// atom := qc op (value | ( select )) | qc [NOT] IN ( select ) | [NOT] EXISTS ( select )
func (p *parser) atom() (sqlast.Predicate, error) {
	negate := false
	if p.at(tokKeyword, "NOT") && p.toks[p.pos+1].text == "EXISTS" {
		negate = true
		p.pos++
	}
	if p.accept(tokKeyword, "EXISTS") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &sqlast.Exists{Sub: sub, Negate: negate}, nil
	}

	colRef, err := p.qualifiedColumn()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "LIKE") {
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errf("expected pattern string after LIKE, found %q", t.String())
		}
		p.pos++
		return &sqlast.Like{Col: colRef, Pattern: t.text}, nil
	}
	if p.at(tokKeyword, "NOT") || p.at(tokKeyword, "IN") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "IN"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &sqlast.In{Col: colRef, Sub: sub, Negate: neg}, nil
	}

	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	if p.at(tokSymbol, "(") {
		p.pos++
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &sqlast.CompareSub{Col: colRef, Op: op, Sub: sub}, nil
	}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	return &sqlast.Compare{Col: colRef, Op: op, Value: v}, nil
}

func (p *parser) cmpOp() (sqlast.CmpOp, error) {
	t := p.peek()
	if t.kind != tokSymbol {
		return sqlast.OpInvalid, p.errf("expected comparison operator, found %q", t.String())
	}
	var op sqlast.CmpOp
	switch t.text {
	case "<":
		op = sqlast.OpLt
	case ">":
		op = sqlast.OpGt
	case "<=":
		op = sqlast.OpLe
	case ">=":
		op = sqlast.OpGe
	case "=":
		op = sqlast.OpEq
	case "<>":
		op = sqlast.OpNe
	default:
		return sqlast.OpInvalid, p.errf("expected comparison operator, found %q", t.text)
	}
	p.pos++
	return op, nil
}

func (p *parser) value() (sqltypes.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return sqltypes.Null, p.errf("bad float literal %q", t.text)
			}
			return sqltypes.NewFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return sqltypes.Null, p.errf("bad int literal %q", t.text)
		}
		return sqltypes.NewInt(i), nil
	case tokString:
		p.pos++
		return sqltypes.NewString(t.text), nil
	default:
		return sqltypes.Null, p.errf("expected literal, found %q", t.String())
	}
}

func (p *parser) having() (*sqlast.Having, error) {
	agg, ok := p.aggKeyword()
	if !ok {
		return nil, p.errf("expected aggregate function in HAVING, found %q", p.peek().String())
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	c, err := p.qualifiedColumn()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	op, err := p.cmpOp()
	if err != nil {
		return nil, err
	}
	if p.at(tokSymbol, "(") {
		p.pos++
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &sqlast.Having{Agg: agg, Col: c, Op: op, Sub: sub}, nil
	}
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	return &sqlast.Having{Agg: agg, Col: c, Op: op, Value: v}, nil
}

func (p *parser) insertStmt() (*sqlast.Insert, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &sqlast.Insert{Table: t}
	if p.accept(tokKeyword, "VALUES") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			st.Values = append(st.Values, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return st, nil
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	sub, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	st.Sub = sub
	return st, nil
}

func (p *parser) updateStmt() (*sqlast.Update, error) {
	if _, err := p.expect(tokKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	t, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &sqlast.Update{Table: t}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, sqlast.SetClause{Col: c, Value: v})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) deleteStmt() (*sqlast.Delete, error) {
	if _, err := p.expect(tokKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &sqlast.Delete{Table: t}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}
