package parser

import (
	"testing"
)

// FuzzParse feeds arbitrary text to the parser. Rejections are fine — the
// conformance property is on acceptance: whatever parses must re-render to
// text that parses again, and that rendering must be a fixed point (the
// canonical token stream the FSM, parser, and renderer all agree on).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT Score.ID FROM Score WHERE Score.Grade < 95",
		"SELECT COUNT(*) FROM Score, Student WHERE Score.ID = Student.ID AND Score.Grade >= 60 GROUP BY Score.CourseID HAVING COUNT(*) > 2 ORDER BY Score.CourseID DESC",
		"SELECT Student.Name FROM Student WHERE Student.Name LIKE 'A%' OR NOT (Student.Age <> 21)",
		"SELECT Student.ID FROM Student WHERE Student.ID IN (SELECT Score.ID FROM Score WHERE Score.Grade > 90)",
		"SELECT Student.ID FROM Student WHERE EXISTS (SELECT Score.ID FROM Score)",
		"INSERT INTO Student VALUES (1, 'Bob', 20)",
		"UPDATE Score SET Score.Grade = 100 WHERE Score.ID = 7",
		"DELETE FROM Score WHERE Score.Grade < 0",
		"SELECT t.x FROM t WHERE t.x = -1.5e-7",
		"SELECT t.x FROM t WHERE t.s = 'it''s'",
		"SELECT t.x FROM t WHERE t.x >= 9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return // rejection is not a conformance question
		}
		out := st.SQL()
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("rendering of accepted input does not re-parse:\n input: %q\nrender: %q\n   err: %v", input, out, err)
		}
		if got := again.SQL(); got != out {
			t.Fatalf("rendering is not a fixed point:\n input: %q\n first: %q\nsecond: %q", input, out, got)
		}
	})
}
