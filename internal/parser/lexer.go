// Package parser implements a lexer and recursive-descent parser for the
// SQL subset of the paper's grammar. It round-trips with sqlast's SQL()
// renderers and is used by the Template baseline (to load query templates),
// the CLI, and tests.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"learnedsqlgen/internal/sqltypes"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , . = < > <= >= <>
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true, "LIKE": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"MAX": true, "MIN": true, "SUM": true, "AVG": true, "COUNT": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents/numbers/strings verbatim
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return t.text
}

// Options selects the lexical conventions of the SQL dialect being read.
// The zero value is the native/ANSI convention every renderer in this
// repo round-trips with. Quoted identifiers ("ident" and `ident`) are
// always accepted — they are unambiguous in every supported dialect.
type Options struct {
	// BackslashEscapes treats backslash as an escape character inside
	// string literals (MySQL's default), so `\\` reads as one backslash
	// and `\'` as a quote. Off, backslash is an ordinary character
	// (ANSI / postgres standard_conforming_strings / sqlite).
	BackslashEscapes bool
}

// lex splits input into tokens. Errors report byte offsets.
func lex(input string, o Options) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if o.BackslashEscapes && input[i] == '\\' && i+1 < n {
					sb.WriteByte(input[i+1])
					i += 2
					continue
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("parser: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c == '"' || c == '`':
			// Quoted identifier: "ident" (ANSI/postgres/sqlite) or
			// `ident` (mysql). The closing quote doubles to escape itself;
			// keywords lose their special meaning inside quotes.
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == c {
					if i+1 < n && input[i+1] == c { // escaped quote
						sb.WriteByte(c)
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("parser: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, token{tokIdent, sb.String(), start})
		case c >= '0' && c <= '9' ||
			(c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i+1 < n {
					nxt := input[i+1]
					if nxt == '+' || nxt == '-' || (nxt >= '0' && nxt <= '9') {
						seenExp = true
						i += 2
						continue
					}
				}
				break
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		default:
			start := i
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					toks = append(toks, token{tokSymbol, input[i : i+2], start})
					i += 2
				} else {
					toks = append(toks, token{tokSymbol, "<", start})
					i++
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{tokSymbol, ">=", start})
					i += 2
				} else {
					toks = append(toks, token{tokSymbol, ">", start})
					i++
				}
			case '=', '(', ')', ',', '.', '*':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// startsValue reports whether a '-' at the current position can begin a
// negative number literal (i.e. the previous token is an operator, comma,
// opening paren or a keyword, not an identifier/number that would make '-'
// binary). The grammar has no arithmetic, so this is only a guard.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	t := toks[len(toks)-1]
	switch t.kind {
	case tokSymbol:
		return t.text != ")" // after ')' a '-' would be arithmetic (unsupported)
	case tokKeyword:
		return true
	default:
		return false
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// LexValue lexes input as exactly one literal token (number or quoted
// string) followed by end of input, and converts it the way the parser
// converts predicate constants. It is the conformance contract for value
// rendering: any sqltypes.Value the vocabulary samples must satisfy
// LexValue(v.SQL()) — a single literal of the matching kind — or the FSM
// would emit queries whose constants the parser reads back differently.
func LexValue(input string) (sqltypes.Value, error) {
	toks, err := lex(input, Options{})
	if err != nil {
		return sqltypes.Null, err
	}
	if len(toks) != 2 || toks[1].kind != tokEOF {
		return sqltypes.Null, fmt.Errorf("parser: %q is not a single literal token (%d tokens)", input, len(toks)-1)
	}
	p := &parser{toks: toks}
	v, err := p.value()
	if err != nil {
		return sqltypes.Null, err
	}
	return v, nil
}
