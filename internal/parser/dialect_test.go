package parser

import (
	"testing"

	"learnedsqlgen/internal/sqlast"
)

// TestQuotedIdentifiers covers the quoted-identifier path the dialect
// refactor opened: ANSI "..." and mysql `...` quoting both lex to plain
// identifiers, keywords lose their meaning inside quotes, and rendering
// re-quotes exactly the identifiers that need it.
func TestQuotedIdentifiers(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical native rendering (fixed point)
	}{
		{`SELECT "t"."a" FROM "t"`, "SELECT t.a FROM t"},
		{"SELECT `t`.`a` FROM `t`", "SELECT t.a FROM t"},
		{`SELECT "select"."from" FROM "select"`, `SELECT "select"."from" FROM "select"`},
		{`SELECT t."weird col" FROM t WHERE t."weird col" = 1`,
			`SELECT t."weird col" FROM t WHERE t."weird col" = 1`},
		{`SELECT "a""b".c FROM "a""b"`, `SELECT "a""b".c FROM "a""b"`},
		{"SELECT `a``b`.c FROM `a``b`", `SELECT "a` + "`" + `b".c FROM "a` + "`" + `b"`},
	}
	for _, c := range cases {
		st, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		got := st.SQL()
		if got != c.want {
			t.Errorf("Parse(%q).SQL() = %q, want %q", c.in, got, c.want)
		}
		// The canonical rendering must be a fixed point.
		again, err := Parse(got)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", got, err)
		}
		if got2 := again.SQL(); got2 != got {
			t.Errorf("render not a fixed point: %q -> %q", got, got2)
		}
	}
}

func TestUnterminatedQuotedIdent(t *testing.T) {
	for _, in := range []string{`SELECT "t.a FROM t`, "SELECT `t.a FROM t"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted an unterminated quoted identifier", in)
		}
	}
}

// TestBackslashEscapes exercises the mysql string convention behind
// Options.BackslashEscapes: with it on, backslash escapes the next
// character; with it off (native/ANSI), backslash is an ordinary byte.
func TestBackslashEscapes(t *testing.T) {
	in := `SELECT t.a FROM t WHERE t.s = 'a\'b'`
	st, err := ParseWithOptions(in, Options{BackslashEscapes: true})
	if err != nil {
		t.Fatalf("ParseWithOptions: %v", err)
	}
	sel := st.(*sqlast.Select)
	cmp := sel.Where.(*sqlast.Compare)
	if got := cmp.Value.Str(); got != "a'b" {
		t.Errorf("backslash-escaped string = %q, want %q", got, "a'b")
	}

	// Same text under native rules: '...' ends at the first ', leaving
	// `b'` as trailing garbage — a parse error, not silent acceptance.
	if _, err := Parse(in); err == nil {
		t.Errorf("native parse of backslash-escaped string should fail")
	}

	// Double-backslash reads as one backslash under mysql rules and two
	// under native rules.
	bs := `SELECT t.a FROM t WHERE t.s = '\\'`
	st, err = ParseWithOptions(bs, Options{BackslashEscapes: true})
	if err != nil {
		t.Fatalf("ParseWithOptions: %v", err)
	}
	if got := st.(*sqlast.Select).Where.(*sqlast.Compare).Value.Str(); got != `\` {
		t.Errorf("mysql double backslash = %q, want single backslash", got)
	}
	st, err = Parse(bs)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := st.(*sqlast.Select).Where.(*sqlast.Compare).Value.Str(); got != `\\` {
		t.Errorf("native double backslash = %q, want two backslashes", got)
	}
}

// TestReservedWordsInSync pins the duplicated keyword tables together:
// every lexer keyword must be reserved in sqlast (or the renderer would
// emit it bare and the lexer would read a keyword back), and vice versa.
func TestReservedWordsInSync(t *testing.T) {
	for kw := range keywords {
		if !sqlast.ReservedWord(kw) {
			t.Errorf("lexer keyword %q is not sqlast.ReservedWord", kw)
		}
	}
	count := 0
	for kw := range keywords {
		_ = kw
		count++
	}
	// sqlast has no exported iteration; probe equality by size via a
	// spot-check list of every word sqlast reserves.
	for _, kw := range []string{
		"SELECT", "FROM", "WHERE", "JOIN", "ON", "GROUP", "BY", "HAVING",
		"ORDER", "AND", "OR", "NOT", "IN", "EXISTS", "LIKE", "INSERT",
		"INTO", "VALUES", "UPDATE", "SET", "DELETE", "MAX", "MIN", "SUM",
		"AVG", "COUNT",
	} {
		if !keywords[kw] {
			t.Errorf("sqlast reserves %q but the lexer does not", kw)
		}
	}
}

// TestFloatLiteralRoundTrip documents the float edge cases surfaced by
// the dialect refactor: integral floats canonicalize to integer literals
// at the text level (still a fixed point), exponent forms survive, and
// negative zero normalizes to zero.
func TestFloatLiteralRoundTrip(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT t.a FROM t WHERE t.b = 1.0", "SELECT t.a FROM t WHERE t.b = 1"},
		{"SELECT t.a FROM t WHERE t.b = -0.0", "SELECT t.a FROM t WHERE t.b = 0"},
		{"SELECT t.a FROM t WHERE t.b = 1e300", "SELECT t.a FROM t WHERE t.b = 1e+300"},
		{"SELECT t.a FROM t WHERE t.b = 2.5", "SELECT t.a FROM t WHERE t.b = 2.5"},
	}
	for _, c := range cases {
		st, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		got := st.SQL()
		if got != c.want {
			t.Errorf("Parse(%q).SQL() = %q, want %q", c.in, got, c.want)
		}
		again, err := Parse(got)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", got, err)
		}
		if got2 := again.SQL(); got2 != got {
			t.Errorf("render not a fixed point: %q -> %q", got, got2)
		}
	}
}
