package parser

import (
	"math/rand"
	"testing"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// astGen builds random-but-valid ASTs directly (independent of the FSM),
// to property-test that every renderable statement reparses to an
// identical rendering.
type astGen struct {
	rng   *rand.Rand
	depth int
}

func (g *astGen) qc() schema.QualifiedColumn {
	tables := []string{"t1", "t2", "t3"}
	cols := []string{"a", "b", "c", "d"}
	return schema.QualifiedColumn{
		Table:  tables[g.rng.Intn(len(tables))],
		Column: cols[g.rng.Intn(len(cols))],
	}
}

func (g *astGen) value() sqltypes.Value {
	switch g.rng.Intn(3) {
	case 0:
		return sqltypes.NewInt(g.rng.Int63n(2001) - 1000)
	case 1:
		return sqltypes.NewFloat(float64(g.rng.Int63n(10000)) / 16)
	default:
		letters := "abc'xy z%"
		n := g.rng.Intn(6)
		s := make([]byte, n)
		for i := range s {
			s[i] = letters[g.rng.Intn(len(letters))]
		}
		return sqltypes.NewString(string(s))
	}
}

func (g *astGen) op() sqlast.CmpOp {
	return []sqlast.CmpOp{sqlast.OpLt, sqlast.OpGt, sqlast.OpLe,
		sqlast.OpGe, sqlast.OpEq, sqlast.OpNe}[g.rng.Intn(6)]
}

func (g *astGen) agg() sqlast.AggFunc {
	return []sqlast.AggFunc{sqlast.AggCount, sqlast.AggSum, sqlast.AggAvg,
		sqlast.AggMax, sqlast.AggMin}[g.rng.Intn(5)]
}

func (g *astGen) predicate() sqlast.Predicate {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 3 {
		return &sqlast.Compare{Col: g.qc(), Op: g.op(), Value: g.value()}
	}
	switch g.rng.Intn(9) {
	case 0:
		return &sqlast.And{Left: g.predicate(), Right: g.predicate()}
	case 1:
		return &sqlast.Or{Left: g.predicate(), Right: g.predicate()}
	case 2:
		return &sqlast.Not{Inner: g.predicate()}
	case 3:
		return &sqlast.In{Col: g.qc(), Sub: g.selectStmt(), Negate: g.rng.Intn(2) == 0}
	case 4:
		return &sqlast.Exists{Sub: g.selectStmt(), Negate: g.rng.Intn(2) == 0}
	case 5:
		return &sqlast.CompareSub{Col: g.qc(), Op: g.op(), Sub: g.selectStmt()}
	case 6:
		return &sqlast.Like{Col: g.qc(), Pattern: "%" + g.value().String() + "%"}
	default:
		return &sqlast.Compare{Col: g.qc(), Op: g.op(), Value: g.value()}
	}
}

func (g *astGen) selectStmt() *sqlast.Select {
	g.depth++
	defer func() { g.depth-- }()
	s := &sqlast.Select{Tables: []string{"t1"}}
	for i := 0; i < 1+g.rng.Intn(2) && g.depth <= 2; i++ {
		s.Tables = append(s.Tables, "t"+string(rune('2'+i)))
		s.Joins = append(s.Joins, sqlast.JoinCond{Left: g.qc(), Right: g.qc()})
	}
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		it := sqlast.SelectItem{Col: g.qc()}
		if g.rng.Intn(3) == 0 {
			it.Agg = g.agg()
		}
		s.Items = append(s.Items, it)
	}
	if g.rng.Intn(2) == 0 && g.depth <= 3 {
		s.Where = g.predicate()
	}
	if g.rng.Intn(4) == 0 {
		s.GroupBy = append(s.GroupBy, g.qc())
		if g.rng.Intn(2) == 0 {
			s.Having = &sqlast.Having{Agg: g.agg(), Col: g.qc(), Op: g.op(), Value: g.value()}
		}
	}
	if g.rng.Intn(4) == 0 {
		s.OrderBy = append(s.OrderBy, g.qc())
	}
	return s
}

func (g *astGen) statement() sqlast.Statement {
	switch g.rng.Intn(5) {
	case 0:
		if g.rng.Intn(2) == 0 {
			return &sqlast.Insert{Table: "t1", Values: []sqltypes.Value{g.value(), g.value()}}
		}
		return &sqlast.Insert{Table: "t1", Sub: g.selectStmt()}
	case 1:
		up := &sqlast.Update{Table: "t1", Sets: []sqlast.SetClause{{Col: "a", Value: g.value()}}}
		if g.rng.Intn(2) == 0 {
			up.Where = g.predicate()
		}
		return up
	case 2:
		del := &sqlast.Delete{Table: "t1"}
		if g.rng.Intn(2) == 0 {
			del.Where = g.predicate()
		}
		return del
	default:
		return g.selectStmt()
	}
}

// TestRandomASTRoundTripProperty renders thousands of random statements
// and verifies Parse(SQL(ast)).SQL() == SQL(ast): the renderer emits only
// parseable SQL and the parser preserves it exactly.
func TestRandomASTRoundTripProperty(t *testing.T) {
	g := &astGen{rng: rand.New(rand.NewSource(17))}
	for i := 0; i < 3000; i++ {
		st := g.statement()
		sql := st.SQL()
		back, err := Parse(sql)
		if err != nil {
			t.Fatalf("iteration %d: %q does not parse: %v", i, sql, err)
		}
		if back.SQL() != sql {
			t.Fatalf("iteration %d: round trip changed:\n  before: %s\n  after:  %s",
				i, sql, back.SQL())
		}
	}
}
