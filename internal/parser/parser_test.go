package parser

import (
	"strings"
	"testing"

	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

func roundTrip(t *testing.T, sql string) sqlast.Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	again, err := Parse(st.SQL())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", st.SQL(), err)
	}
	if again.SQL() != st.SQL() {
		t.Fatalf("round trip unstable:\n first: %s\nsecond: %s", st.SQL(), again.SQL())
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := roundTrip(t, "SELECT Score.ID FROM Score WHERE Score.Grade < 95")
	sel := st.(*sqlast.Select)
	if len(sel.Tables) != 1 || sel.Tables[0] != "Score" {
		t.Errorf("tables = %v", sel.Tables)
	}
	cmp, ok := sel.Where.(*sqlast.Compare)
	if !ok || cmp.Op != sqlast.OpLt || cmp.Value.Int() != 95 {
		t.Errorf("where = %#v", sel.Where)
	}
}

func TestParseJoinChain(t *testing.T) {
	st := roundTrip(t, "SELECT A.x FROM A JOIN B ON A.id = B.id JOIN C ON B.cid = C.id")
	sel := st.(*sqlast.Select)
	if len(sel.Tables) != 3 || len(sel.Joins) != 2 {
		t.Fatalf("tables=%v joins=%v", sel.Tables, sel.Joins)
	}
	if sel.Joins[1].Left.String() != "B.cid" || sel.Joins[1].Right.String() != "C.id" {
		t.Errorf("second join = %+v", sel.Joins[1])
	}
}

func TestParseAggregatesGroupHavingOrder(t *testing.T) {
	sql := "SELECT Score.Course, AVG(Score.Grade) FROM Score GROUP BY Score.Course " +
		"HAVING COUNT(Score.ID) >= 3 ORDER BY Score.Course"
	st := roundTrip(t, sql)
	sel := st.(*sqlast.Select)
	if sel.Items[1].Agg != sqlast.AggAvg {
		t.Errorf("agg = %v", sel.Items[1].Agg)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil || sel.Having.Agg != sqlast.AggCount {
		t.Errorf("groupby/having = %v / %+v", sel.GroupBy, sel.Having)
	}
	if len(sel.OrderBy) != 1 {
		t.Errorf("orderby = %v", sel.OrderBy)
	}
}

func TestParsePredicatePrecedence(t *testing.T) {
	// a AND b OR c parses as (a AND b) OR c.
	st := roundTrip(t, "SELECT A.x FROM A WHERE A.x = 1 AND A.y = 2 OR A.z = 3")
	sel := st.(*sqlast.Select)
	or, ok := sel.Where.(*sqlast.Or)
	if !ok {
		t.Fatalf("top must be OR, got %T", sel.Where)
	}
	if _, ok := or.Left.(*sqlast.And); !ok {
		t.Errorf("left of OR must be AND, got %T", or.Left)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	st := roundTrip(t, "SELECT A.x FROM A WHERE A.x = 1 AND (A.y = 2 OR A.z = 3)")
	sel := st.(*sqlast.Select)
	and, ok := sel.Where.(*sqlast.And)
	if !ok {
		t.Fatalf("top must be AND, got %T", sel.Where)
	}
	if _, ok := and.Right.(*sqlast.Or); !ok {
		t.Errorf("right of AND must be OR, got %T", and.Right)
	}
}

func TestParseNot(t *testing.T) {
	st := roundTrip(t, "SELECT A.x FROM A WHERE NOT (A.x = 1)")
	sel := st.(*sqlast.Select)
	if _, ok := sel.Where.(*sqlast.Not); !ok {
		t.Errorf("want NOT, got %T", sel.Where)
	}
}

func TestParseSubqueries(t *testing.T) {
	st := roundTrip(t, "SELECT A.x FROM A WHERE A.id IN (SELECT B.id FROM B)")
	if p := st.(*sqlast.Select).Where.(*sqlast.In); p.Negate {
		t.Error("IN must not negate")
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE A.id NOT IN (SELECT B.id FROM B WHERE B.v > 3)")
	if p := st.(*sqlast.Select).Where.(*sqlast.In); !p.Negate {
		t.Error("NOT IN must negate")
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE EXISTS (SELECT B.id FROM B)")
	if _, ok := st.(*sqlast.Select).Where.(*sqlast.Exists); !ok {
		t.Error("EXISTS not parsed")
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE NOT EXISTS (SELECT B.id FROM B)")
	if p := st.(*sqlast.Select).Where.(*sqlast.Exists); !p.Negate {
		t.Error("NOT EXISTS must negate")
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE A.v > (SELECT AVG(B.v) FROM B)")
	if _, ok := st.(*sqlast.Select).Where.(*sqlast.CompareSub); !ok {
		t.Error("scalar subquery not parsed")
	}
}

func TestParseHavingSubquery(t *testing.T) {
	sql := "SELECT A.g FROM A GROUP BY A.g HAVING MAX(A.v) > (SELECT AVG(B.v) FROM B)"
	st := roundTrip(t, sql)
	h := st.(*sqlast.Select).Having
	if h == nil || h.Sub == nil {
		t.Fatalf("having = %+v", h)
	}
}

func TestParseLiterals(t *testing.T) {
	st := roundTrip(t, "SELECT A.x FROM A WHERE A.v = -12")
	if v := st.(*sqlast.Select).Where.(*sqlast.Compare).Value; v.Kind() != sqltypes.KindInt || v.Int() != -12 {
		t.Errorf("neg int literal = %v", v)
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE A.v = 2.5")
	if v := st.(*sqlast.Select).Where.(*sqlast.Compare).Value; v.Kind() != sqltypes.KindFloat || v.Float() != 2.5 {
		t.Errorf("float literal = %v", v)
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE A.s = 'it''s'")
	if v := st.(*sqlast.Select).Where.(*sqlast.Compare).Value; v.Str() != "it's" {
		t.Errorf("escaped string = %q", v.Str())
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE A.v = 1.5e3")
	if v := st.(*sqlast.Select).Where.(*sqlast.Compare).Value; v.Float() != 1500 {
		t.Errorf("exponent literal = %v", v)
	}
}

func TestParseAllOperators(t *testing.T) {
	ops := map[string]sqlast.CmpOp{
		"<": sqlast.OpLt, ">": sqlast.OpGt, "<=": sqlast.OpLe,
		">=": sqlast.OpGe, "=": sqlast.OpEq, "<>": sqlast.OpNe,
	}
	for s, want := range ops {
		st := roundTrip(t, "SELECT A.x FROM A WHERE A.v "+s+" 1")
		if got := st.(*sqlast.Select).Where.(*sqlast.Compare).Op; got != want {
			t.Errorf("op %q parsed as %v", s, got)
		}
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	st := roundTrip(t, "INSERT INTO Student VALUES (1, 'Bob')")
	ins := st.(*sqlast.Insert)
	if ins.Table != "Student" || len(ins.Values) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	st = roundTrip(t, "INSERT INTO Student (SELECT S.ID, S.Name FROM S)")
	if st.(*sqlast.Insert).Sub == nil {
		t.Error("insert-select sub missing")
	}
	st = roundTrip(t, "UPDATE Student SET Name = 'X', Age = 3 WHERE Student.ID = 7")
	up := st.(*sqlast.Update)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	st = roundTrip(t, "DELETE FROM Student WHERE Student.ID > 10")
	if st.(*sqlast.Delete).Where == nil {
		t.Error("delete where missing")
	}
	st = roundTrip(t, "DELETE FROM Student")
	if st.(*sqlast.Delete).Where != nil {
		t.Error("delete without where must have nil predicate")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse("select A.x from A where A.v > 1 and not exists (select B.y from B)")
	if err != nil {
		t.Fatalf("lower-case parse: %v", err)
	}
	if _, ok := st.(*sqlast.Select); !ok {
		t.Error("not a select")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC A.x FROM A",
		"SELECT FROM A",
		"SELECT A.x",
		"SELECT A.x FROM A WHERE",
		"SELECT A.x FROM A WHERE A.v >",
		"SELECT A.x FROM A WHERE A.v > 'unterminated",
		"SELECT A.x FROM A JOIN B",
		"SELECT A.x FROM A JOIN B ON A.id",
		"SELECT A.x FROM A GROUP A.x",
		"SELECT A.x FROM A HAVING A.x > 1", // HAVING without GROUP keyword path still requires agg
		"SELECT A.x FROM A trailing garbage",
		"INSERT Student VALUES (1)",
		"UPDATE Student Name = 'X'",
		"DELETE Student",
		"SELECT A.x FROM A WHERE A.v @ 1",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) must fail", sql)
		}
	}
}

func TestParseSelectHelper(t *testing.T) {
	if _, err := ParseSelect("SELECT A.x FROM A"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSelect("DELETE FROM A"); err == nil {
		t.Error("ParseSelect on DELETE must fail")
	}
}

func TestRenderedOrIsReparseable(t *testing.T) {
	// sqlast renders Or with parentheses; make sure deep nests survive.
	sql := "SELECT A.x FROM A WHERE ((A.a = 1 OR A.b = 2) OR (A.c = 3 OR A.d = 4)) AND A.e = 5"
	st := roundTrip(t, sql)
	if !strings.Contains(st.SQL(), "OR") {
		t.Error("OR lost in round trip")
	}
}

func TestParseLike(t *testing.T) {
	st := roundTrip(t, "SELECT A.x FROM A WHERE A.name LIKE '%ab%'")
	like, ok := st.(*sqlast.Select).Where.(*sqlast.Like)
	if !ok || like.Pattern != "%ab%" {
		t.Fatalf("like = %#v", st.(*sqlast.Select).Where)
	}
	st = roundTrip(t, "SELECT A.x FROM A WHERE NOT A.name LIKE 'ab%' AND A.y > 1")
	if _, err := Parse("SELECT A.x FROM A WHERE A.name LIKE 42"); err == nil {
		t.Error("LIKE with non-string pattern must fail")
	}
	_ = st
}
