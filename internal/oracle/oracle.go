// Package oracle is the conformance harness that cross-checks the four
// pillars of the generation stack against each other: the FSM's §5
// guarantee (masked generation emits only valid SQL), the parser/renderer
// round-trip, the estimator-vs-executor cardinality agreement the §4.2
// reward loop relies on, and metamorphic properties of the executor
// itself (predicate-tightening monotonicity, constraint sanity,
// determinism under a fixed seed).
//
// Any query producer — the RL generator, the SQLSmith-style Random
// baseline, the Template baseline, or a raw uniform FSM walk — plugs in
// through the Producer/Source interfaces; Run pushes every emitted query
// through every applicable check and returns a typed violation report.
// The harness is the regression net behind `sqlgen -selftest`, the
// FuzzOracle fuzz target, and the conformance tests: after any
// optimization of the rollout, cache, or workspace layers, a clean sweep
// certifies the observable behaviour did not drift.
package oracle

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"learnedsqlgen/internal/rl"
)

// Kind classifies a conformance violation by the oracle that caught it.
type Kind uint8

// The oracles.
const (
	// KindParse: the emitted SQL failed to parse, or re-rendering the
	// parsed AST did not reproduce the same text (token stream).
	KindParse Kind = iota
	// KindFSM: replaying the query's token trace through a fresh FSM hit
	// a masked transition, ended early/late, or rebuilt a different
	// statement.
	KindFSM
	// KindDifferential: executor ground truth and estimator disagree in
	// an impossible way — the estimator refused an executable statement,
	// returned a negative/NaN/Inf cardinality or cost, or the executor
	// rejected an FSM-produced statement.
	KindDifferential
	// KindMetamorphic: a metamorphic property failed — tightening a WHERE
	// clause with an extra AND conjunct raised the true cardinality, a
	// range constraint had l > r, or a producer's reported measurement or
	// satisfied flag contradicts a fresh measurement.
	KindMetamorphic
	// KindDeterminism: re-running a producer from a fresh equally-seeded
	// source did not reproduce a byte-identical query trace.
	KindDeterminism
	// KindProducer: the producer itself failed (an FSM dead end inside a
	// walk, an episode error) — not a query-level check, but still a
	// conformance failure of the stack under test.
	KindProducer
	// KindCrossEngine: a configured external engine disagreed with the
	// in-tree stack — the dialect rendering did not read back as the same
	// statement, the engine rejected a statement our executor runs, or
	// (on shared data) returned a different cardinality.
	KindCrossEngine
)

// String names the oracle.
func (k Kind) String() string {
	switch k {
	case KindParse:
		return "parse"
	case KindFSM:
		return "fsm"
	case KindDifferential:
		return "differential"
	case KindMetamorphic:
		return "metamorphic"
	case KindDeterminism:
		return "determinism"
	case KindProducer:
		return "producer"
	case KindCrossEngine:
		return "cross-engine"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}

// Violation is one typed conformance failure.
type Violation struct {
	Kind     Kind
	Producer string
	SQL      string // the offending query, when one exists
	Detail   string
}

// String renders the violation for reports and test failures.
func (v Violation) String() string {
	if v.SQL == "" {
		return fmt.Sprintf("[%s] %s: %s", v.Kind, v.Producer, v.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s\n  query: %s", v.Kind, v.Producer, v.Detail, v.SQL)
}

// Config parameterizes one conformance sweep.
type Config struct {
	// Env supplies the FSM grammar, vocabulary, estimator, and the
	// database executed against. Required.
	Env *rl.Env
	// Producers are the query sources under test. Required, non-empty.
	Producers []Producer
	// PerProducer is the number of queries pulled from each producer;
	// 0 selects 100.
	PerProducer int
	// Constraint, when non-nil, enables the constraint-sanity metamorphic
	// check: producer-reported measurements must match a fresh environment
	// measurement, Satisfied flags must agree with Constraint.Satisfied,
	// and a range constraint must have Lo ≤ Hi.
	Constraint *rl.Constraint
	// DeterminismPrefix is the number of leading queries replayed from a
	// freshly opened source to certify byte-identical traces; 0 selects
	// min(32, PerProducer), negative disables the check.
	DeterminismPrefix int
	// MaxViolations stops the sweep early once this many violations have
	// accumulated (0 selects 100) — a broken invariant repeats on nearly
	// every query, and thousands of copies of one report help nobody.
	MaxViolations int
	// Seed drives the metamorphic conjunct sampling. The default 0 is a
	// valid seed.
	Seed int64
	// Engines, when non-empty, enables the cross-engine differential
	// oracle: every query is additionally rendered in each engine's
	// dialect (and must read back as the same statement), executed and
	// estimated on the engine, and compared against the in-tree results.
	// Transient engine failures skip the query rather than convict it —
	// the resilience layer, not the oracle, owns infrastructure faults.
	Engines []EngineUnderTest
}

func (c *Config) perProducer() int {
	if c.PerProducer <= 0 {
		return 100
	}
	return c.PerProducer
}

func (c *Config) determinismPrefix() int {
	if c.DeterminismPrefix < 0 {
		return 0
	}
	if c.DeterminismPrefix == 0 {
		n := 32
		if pp := c.perProducer(); pp < n {
			n = pp
		}
		return n
	}
	return c.DeterminismPrefix
}

func (c *Config) maxViolations() int {
	if c.MaxViolations <= 0 {
		return 100
	}
	return c.MaxViolations
}

// QErrorStats accumulates the q-error distribution of the differential
// cardinality oracle: q = max((t+1)/(e+1), (e+1)/(t+1)) over true
// cardinality t and estimate e. Estimator inaccuracy is expected — only
// impossible results are violations — but the distribution is reported so
// estimator regressions show up as drift.
type QErrorStats struct {
	Count int
	Sum   float64
	Max   float64
	// sample retains the first qErrorSampleCap observations so the
	// distribution (not just mean/max) can be reported; conformance
	// sweeps rarely exceed the cap, and an approximate tail quantile is
	// all drift detection needs.
	sample []float64
}

// qErrorSampleCap bounds the retained q-error sample.
const qErrorSampleCap = 4096

func (q *QErrorStats) add(v float64) {
	q.Count++
	q.Sum += v
	if v > q.Max {
		q.Max = v
	}
	if len(q.sample) < qErrorSampleCap {
		q.sample = append(q.sample, v)
	}
}

// Mean returns the average q-error (0 before any sample).
func (q QErrorStats) Mean() float64 {
	if q.Count == 0 {
		return 0
	}
	return q.Sum / float64(q.Count)
}

// Quantile returns the p-quantile (p in [0, 1]) of the retained sample,
// or 0 before any observation.
func (q QErrorStats) Quantile(p float64) float64 {
	if len(q.sample) == 0 {
		return 0
	}
	s := append([]float64(nil), q.sample...)
	sort.Float64s(s)
	idx := int(p*float64(len(s)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// ProducerReport summarizes one producer's sweep.
type ProducerReport struct {
	Name        string
	Queries     int // queries pulled
	Parsed      int // queries through the parse oracle
	Replayed    int // queries with a token trace replayed through the FSM
	Executed    int // queries the executor ran
	Estimated   int // queries the estimator priced
	Metamorphic int // predicate-tightening pairs executed
	Violations  int
	QError      QErrorStats
	// Engines holds the per-engine cross-check tallies and q-error
	// distributions, index-aligned with Config.Engines.
	Engines []EngineQError
}

// Report is the outcome of one Run.
type Report struct {
	Producers  []ProducerReport
	Violations []Violation
	// Truncated reports that MaxViolations stopped the sweep early.
	Truncated bool
}

// Ok reports a clean sweep.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders a human-readable summary (the `sqlgen -selftest` output).
func (r *Report) String() string {
	var b strings.Builder
	for _, p := range r.Producers {
		fmt.Fprintf(&b, "%-16s %5d queries: parse %d, fsm-replay %d, exec %d, est %d, metamorphic %d",
			p.Name, p.Queries, p.Parsed, p.Replayed, p.Executed, p.Estimated, p.Metamorphic)
		if p.QError.Count > 0 {
			fmt.Fprintf(&b, ", q-error mean %.2f p50 %.2f p95 %.2f max %.2f",
				p.QError.Mean(), p.QError.Quantile(0.5), p.QError.Quantile(0.95), p.QError.Max)
		}
		fmt.Fprintf(&b, ", violations %d\n", p.Violations)
		for _, e := range p.Engines {
			fmt.Fprintf(&b, "  engine %-12s rendered %d, exec %d, est %d, skipped %d",
				e.Engine, e.Rendered, e.Executed, e.Estimated, e.Skipped)
			if e.TruthQ.Count > 0 {
				fmt.Fprintf(&b, ", truth-q mean %.2f max %.2f", e.TruthQ.Mean(), e.TruthQ.Max)
			}
			if e.EstQ.Count > 0 {
				fmt.Fprintf(&b, ", est-q mean %.2f p50 %.2f p95 %.2f max %.2f",
					e.EstQ.Mean(), e.EstQ.Quantile(0.5), e.EstQ.Quantile(0.95), e.EstQ.Max)
			}
			b.WriteString("\n")
		}
	}
	if len(r.Violations) == 0 {
		b.WriteString("conformance: OK\n")
		return b.String()
	}
	fmt.Fprintf(&b, "conformance: %d violation(s)", len(r.Violations))
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	b.WriteString("\n")
	for _, v := range r.Violations {
		b.WriteString("  " + v.String() + "\n")
	}
	return b.String()
}

// Run sweeps every producer through the four oracles and returns the
// report. The error is non-nil only for harness-level failures (a nil
// Env, a cancelled ctx); check failures are reported as Violations, never
// as errors, so callers can always inspect the partial report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("oracle: Config.Env is required")
	}
	if len(cfg.Producers) == 0 {
		return nil, fmt.Errorf("oracle: Config.Producers is empty")
	}
	report := &Report{}
	if c := cfg.Constraint; c != nil && c.IsRange && c.Lo > c.Hi {
		report.Violations = append(report.Violations, Violation{
			Kind:   KindMetamorphic,
			Detail: fmt.Sprintf("range constraint has l > r: [%g, %g]", c.Lo, c.Hi),
		})
	}
	for _, p := range cfg.Producers {
		pr, err := runProducer(ctx, &cfg, p, report)
		report.Producers = append(report.Producers, pr)
		if err != nil {
			return report, err
		}
		if len(report.Violations) >= cfg.maxViolations() {
			report.Truncated = true
			break
		}
	}
	return report, nil
}

// runProducer sweeps one producer; violations append to report and count
// into the returned ProducerReport.
func runProducer(ctx context.Context, cfg *Config, p Producer, report *Report) (pr ProducerReport, err error) {
	pr.Name = p.Name
	before := len(report.Violations)
	defer func() { pr.Violations = len(report.Violations) - before }()

	src, err := p.Open()
	if err != nil {
		report.Violations = append(report.Violations, Violation{
			Kind: KindProducer, Producer: p.Name,
			Detail: fmt.Sprintf("open: %v", err),
		})
		return pr, nil
	}
	ck := newChecker(cfg, p.Name)
	for _, e := range cfg.Engines {
		pr.Engines = append(pr.Engines, EngineQError{Engine: e.Name})
	}
	var trace []string
	detPrefix := cfg.determinismPrefix()
	for i := 0; i < cfg.perProducer(); i++ {
		if err := ctx.Err(); err != nil {
			return pr, err
		}
		item, err := src.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return pr, ctx.Err()
			}
			report.Violations = append(report.Violations, Violation{
				Kind: KindProducer, Producer: p.Name,
				Detail: fmt.Sprintf("query %d: %v", i, err),
			})
			return pr, nil
		}
		pr.Queries++
		if i < detPrefix {
			trace = append(trace, item.SQL)
		}
		report.Violations = append(report.Violations, ck.check(ctx, item, &pr)...)
		if len(report.Violations) >= cfg.maxViolations() {
			return pr, nil
		}
	}

	// Determinism oracle: a fresh source from the same Open (or the
	// producer's alternate configuration) must reproduce the leading
	// queries byte for byte.
	if detPrefix > 0 && len(trace) > 0 {
		reopen := p.Open
		if p.Alt != nil {
			reopen = p.Alt
		}
		if v := checkDeterminism(ctx, p.Name, reopen, trace); v != nil {
			report.Violations = append(report.Violations, *v)
		}
	}
	return pr, nil
}

// checkDeterminism replays len(trace) queries from a fresh source and
// compares the SQL sequence.
func checkDeterminism(ctx context.Context, name string, open func() (Source, error), trace []string) *Violation {
	src, err := open()
	if err != nil {
		return &Violation{Kind: KindDeterminism, Producer: name,
			Detail: fmt.Sprintf("reopen: %v", err)}
	}
	for i, want := range trace {
		item, err := src.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil // cancelled, not a verdict
			}
			return &Violation{Kind: KindDeterminism, Producer: name,
				Detail: fmt.Sprintf("replay query %d: %v", i, err)}
		}
		if item.SQL != want {
			return &Violation{Kind: KindDeterminism, Producer: name, SQL: item.SQL,
				Detail: fmt.Sprintf("replay diverged at query %d: first run produced %q", i, want)}
		}
	}
	return nil
}

// finiteNonNegative reports whether a cardinality/cost output is possible.
func finiteNonNegative(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}
