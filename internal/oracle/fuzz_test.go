package oracle

import (
	"context"
	"sync"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/token"
)

// fuzzWorld shares one environment across fuzz iterations; the harness
// only reads it (DML sweeps clone inside the checker).
var fuzzWorld struct {
	once sync.Once
	env  *rl.Env
	err  error
}

func fuzzEnv(t *testing.T) *rl.Env {
	fuzzWorld.once.Do(func() {
		db, err := datagen.Generate(datagen.NameXueTang, 0.05, 1)
		if err != nil {
			fuzzWorld.err = err
			return
		}
		cfg := fsm.DefaultConfig()
		cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
		fuzzWorld.env = rl.NewEnv(db, token.Build(db, 20, 7), cfg)
	})
	if fuzzWorld.err != nil {
		t.Fatal(fuzzWorld.err)
	}
	return fuzzWorld.env
}

// FuzzOracle runs a miniature conformance sweep per input: fuzzer-chosen
// walk and check seeds, constraint bounds, and batch size. Whatever the
// fuzzer picks, a sweep over real producers must come back clean — any
// violation is a cross-layer disagreement, not a property of the seeds.
func FuzzOracle(f *testing.F) {
	f.Add(int64(1), int64(2), uint16(1), uint16(1000), uint8(4))
	f.Add(int64(-5), int64(77), uint16(0), uint16(0), uint8(1))
	f.Add(int64(1<<40), int64(-1), uint16(500), uint16(200), uint8(9))
	f.Fuzz(func(t *testing.T, walkSeed, checkSeed int64, lo, hi uint16, per uint8) {
		env := fuzzEnv(t)
		if hi < lo {
			lo, hi = hi, lo // a reversed range is a (tested) violation, not a fuzz finding
		}
		c := rl.RangeConstraint(rl.Cardinality, float64(lo), float64(hi))
		rep, err := Run(context.Background(), Config{
			Env: env,
			Producers: []Producer{
				FSMWalk(env, walkSeed),
				RandomProducer(env, c, walkSeed+1),
			},
			PerProducer: 1 + int(per)%8,
			Constraint:  &c,
			Seed:        checkSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("conformance violations:\n%s", rep)
		}
	})
}
