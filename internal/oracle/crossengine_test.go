package oracle

import (
	"context"
	"strings"
	"testing"

	"learnedsqlgen/internal/engine"
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/sqlast"
)

// crossEngines wires the two in-tree drivers over the environment's own
// database — the configuration `sqlgen -cross-check` uses — plus a
// render-only entry for a dialect with no engine behind it.
func crossEngines(t *testing.T, env *rl.Env) []EngineUnderTest {
	t.Helper()
	ref := engine.NewReference(env.DB)

	engine.RegisterTestDatabase("oracle-cross", env.DB)
	inproc, err := engine.Open("inprocess", "handle=oracle-cross")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inproc.Close() })

	nat, _ := engine.DialectByName("native")
	pg, _ := engine.DialectByName("postgres")
	my, _ := engine.DialectByName("mysql")
	return []EngineUnderTest{
		{Name: "reference", Est: ref, Exec: ref, ExactCardinality: true},
		{Name: "inprocess", Dialect: nat.Render, Reparse: nat.Reparse,
			Est: inproc, Exec: inproc, ExactCardinality: true},
		{Name: "postgres-dialect", Dialect: pg.Render, Reparse: pg.Reparse},
		{Name: "mysql-dialect", Dialect: my.Render, Reparse: my.Reparse},
	}
}

// TestCrossEngineConformance is the acceptance sweep for the engine
// layer: every producer's queries rendered per dialect, executed and
// estimated on both in-tree drivers over shared data — zero hard
// violations, exact cardinality agreement, full coverage.
func TestCrossEngineConformance(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 30
	}
	env := testEnv(t, fsm.DefaultConfig())
	c := testConstraint()
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   allProducers(env, c),
		PerProducer: n,
		Constraint:  &c,
		Seed:        3,
		Engines:     crossEngines(t, env),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("cross-engine violations:\n%s", rep)
	}
	for _, pr := range rep.Producers {
		if len(pr.Engines) != 4 {
			t.Fatalf("%s: %d engine reports, want 4", pr.Name, len(pr.Engines))
		}
		for _, e := range pr.Engines {
			if e.Engine == "reference" {
				if e.Rendered != 0 {
					t.Errorf("%s/%s: dialect-less engine rendered %d", pr.Name, e.Engine, e.Rendered)
				}
			} else if e.Rendered != pr.Queries {
				t.Errorf("%s/%s: dialect round trip covered %d/%d", pr.Name, e.Engine, e.Rendered, pr.Queries)
			}
			if e.Engine == "reference" || e.Engine == "inprocess" {
				if e.Executed == 0 || e.Estimated == 0 {
					t.Errorf("%s/%s: coverage hole: %+v", pr.Name, e.Engine, e)
				}
				// Shared data: the truth q-error must be identically 1.
				if e.TruthQ.Count == 0 || e.TruthQ.Max != 1 {
					t.Errorf("%s/%s: truth q-error %+v, want exactly 1.0", pr.Name, e.Engine, e.TruthQ)
				}
				if e.EstQ.Count == 0 {
					t.Errorf("%s/%s: no estimate q-error distribution", pr.Name, e.Engine)
				}
				if e.Skipped != 0 {
					t.Errorf("%s/%s: %d calls skipped without fault injection", pr.Name, e.Engine, e.Skipped)
				}
			}
		}
	}
	out := rep.String()
	if !strings.Contains(out, "engine reference") || !strings.Contains(out, "est-q mean") {
		t.Errorf("report does not surface engine distributions:\n%s", out)
	}
}

// skewExec wraps a backend and corrupts every cardinality by one — the
// cross-engine oracle must convict it on shared data.
type skewExec struct{ inner executor.Backend }

func (s skewExec) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	res, err := s.inner.ExecuteContext(ctx, st)
	if err != nil {
		return nil, err
	}
	out := *res
	out.Cardinality++
	return &out, nil
}

func TestCrossEngineDetectsDisagreement(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	ref := engine.NewReference(env.DB)
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   []Producer{FSMWalk(env, 3)},
		PerProducer: 5,
		Engines: []EngineUnderTest{
			{Name: "skewed", Exec: skewExec{ref}, ExactCardinality: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("oracle missed a cardinality disagreement on shared data")
	}
	for _, v := range rep.Violations {
		if v.Kind != KindCrossEngine {
			t.Fatalf("unexpected violation kind %s: %s", v.Kind, v)
		}
	}
	if rep.Producers[0].Engines[0].TruthQ.Max <= 1 {
		t.Fatal("skewed cardinalities did not widen the truth q-error")
	}
}

type transientStubErr struct{}

func (transientStubErr) Error() string   { return "stub: transient" }
func (transientStubErr) Transient() bool { return true }

// alwaysTransientEst is an estimator.Backend that only ever fails
// transiently; the oracle must skip, not convict.
type alwaysTransientEst struct{}

func (alwaysTransientEst) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	return estimator.Estimate{}, transientStubErr{}
}

func TestCrossEngineSkipsTransientFaults(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   []Producer{FSMWalk(env, 3)},
		PerProducer: 5,
		Engines: []EngineUnderTest{
			{Name: "flaky", Est: alwaysTransientEst{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("transient engine faults were convicted:\n%s", rep)
	}
	e := rep.Producers[0].Engines[0]
	if e.Skipped != 5 || e.Estimated != 0 {
		t.Fatalf("skip accounting wrong: %+v", e)
	}
}
