package oracle

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/token"
)

// testEnv builds the seeded demo environment the conformance sweeps run
// against.
func testEnv(t testing.TB, cfg fsm.Config) *rl.Env {
	t.Helper()
	db, err := datagen.Generate(datagen.NameXueTang, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rl.NewEnv(db, token.Build(db, 20, 7), cfg)
}

func testConstraint() rl.Constraint {
	return rl.RangeConstraint(rl.Cardinality, 1, 1000)
}

// trainerOpeners returns matched open/alt constructors: identical seeds
// and weights, alt with the actor prefix cache disabled — so the
// determinism oracle certifies the cache never changes output.
func trainerOpeners(env *rl.Env, c rl.Constraint) (open, alt func() (*rl.Trainer, error)) {
	mk := func(prefixCache int) func() (*rl.Trainer, error) {
		return func() (*rl.Trainer, error) {
			cfg := rl.FastConfig()
			cfg.Seed = 5
			cfg.Workers = 2
			cfg.PrefixCacheSize = prefixCache
			return rl.NewTrainer(env, c, cfg), nil
		}
	}
	return mk(0), mk(-1)
}

func allProducers(env *rl.Env, c rl.Constraint) []Producer {
	open, alt := trainerOpeners(env, c)
	return []Producer{
		FSMWalk(env, 3),
		RandomProducer(env, c, 4),
		TemplateProducer(env, c, 4, 5),
		TrainerProducer("rl", open, alt),
	}
}

// TestConformanceSweep is the acceptance sweep: ≥1000 queries per
// producer (RL, SQLSmith-style random, template, raw FSM walk) through
// all four oracles on the seeded demo schema, zero violations.
func TestConformanceSweep(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 50
	}
	env := testEnv(t, fsm.DefaultConfig())
	c := testConstraint()
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   allProducers(env, c),
		PerProducer: n,
		Constraint:  &c,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("conformance violations:\n%s", rep)
	}
	if len(rep.Producers) != 4 {
		t.Fatalf("expected 4 producer reports, got %d", len(rep.Producers))
	}
	for _, pr := range rep.Producers {
		if pr.Queries != n {
			t.Errorf("%s: pulled %d queries, want %d", pr.Name, pr.Queries, n)
		}
		if pr.Parsed != pr.Queries {
			t.Errorf("%s: parse oracle covered %d/%d", pr.Name, pr.Parsed, pr.Queries)
		}
		if pr.Name != "template" && pr.Replayed != pr.Queries {
			t.Errorf("%s: FSM replay covered %d/%d", pr.Name, pr.Replayed, pr.Queries)
		}
		if pr.Executed == 0 || pr.Estimated == 0 || pr.Metamorphic == 0 {
			t.Errorf("%s: oracle coverage hole: %+v", pr.Name, pr)
		}
		if pr.QError.Count == 0 || pr.QError.Max < 1 {
			t.Errorf("%s: no q-error distribution recorded: %+v", pr.Name, pr.QError)
		}
	}
	if !strings.Contains(rep.String(), "conformance: OK") {
		t.Errorf("report rendering: %q", rep.String())
	}
}

// TestConformanceSweepDML covers the write statements: with
// INSERT/UPDATE/DELETE enabled every FSM walk must still clear all four
// oracles (executor clones, Update/Delete monotonicity).
func TestConformanceSweepDML(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 40
	}
	cfg := fsm.DefaultConfig()
	cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = true, true, true
	env := testEnv(t, cfg)
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   []Producer{FSMWalk(env, 9)},
		PerProducer: n,
		Seed:        13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("conformance violations:\n%s", rep)
	}
}

// fixedSource replays a fixed item list.
type fixedSource struct {
	items []Item
	i     int
}

func (s *fixedSource) Next(ctx context.Context) (Item, error) {
	if s.i >= len(s.items) {
		return Item{}, fmt.Errorf("source exhausted after %d items", s.i)
	}
	it := s.items[s.i]
	s.i++
	return it, nil
}

func fixedProducer(name string, items []Item) Producer {
	return Producer{Name: name, Open: func() (Source, error) {
		return &fixedSource{items: items}, nil
	}}
}

// sampleItems pulls n genuine items off an FSM walk for mutation.
func sampleItems(t *testing.T, env *rl.Env, n int) []Item {
	t.Helper()
	src, err := FSMWalk(env, 21).Open()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Item, n)
	for i := range out {
		it, err := src.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = it
	}
	return out
}

func kinds(vs []Violation) map[Kind]int {
	m := map[Kind]int{}
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

// TestOracleCatchesCorruption plants one corruption per oracle and
// demands the matching violation kind — the net actually catches fish.
func TestOracleCatchesCorruption(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	items := sampleItems(t, env, 6)

	unparseable := items[0]
	unparseable.SQL = "SELEC oops FROM nowhere"
	unparseable.Tokens = nil

	drifted := items[1]
	drifted.SQL = strings.Replace(drifted.SQL, "SELECT ", "SELECT  ", 1) // parses, renders differently
	drifted.Tokens = nil

	truncated := items[2]
	truncated.Tokens = truncated.Tokens[:len(truncated.Tokens)-1]

	badMeasure := items[3]
	badMeasure.HasMeasure = true
	badMeasure.Measured = -12345 // fresh measurement cannot agree

	c := testConstraint()
	rep, err := Run(context.Background(), Config{
		Env:               env,
		Producers:         []Producer{fixedProducer("corrupt", []Item{unparseable, drifted, truncated, badMeasure})},
		PerProducer:       4,
		Constraint:        &c,
		DeterminismPrefix: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(rep.Violations)
	if got[KindParse] != 2 {
		t.Errorf("parse oracle caught %d, want 2 (unparseable + round-trip drift)\n%s", got[KindParse], rep)
	}
	if got[KindFSM] != 1 {
		t.Errorf("fsm oracle caught %d, want 1 (truncated trace)\n%s", got[KindFSM], rep)
	}
	if got[KindMetamorphic] == 0 {
		t.Errorf("metamorphic oracle missed the corrupted measurement\n%s", rep)
	}
	if rep.Producers[0].Violations != len(rep.Violations) {
		t.Errorf("producer violation count %d != total %d", rep.Producers[0].Violations, len(rep.Violations))
	}
}

// TestDeterminismOracle verifies the replay check: a producer whose
// reopened source continues a shared stream (instead of restarting it)
// diverges and must be convicted.
func TestDeterminismOracle(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	items := sampleItems(t, env, 8)
	shared := &fixedSource{items: items}
	leaky := Producer{Name: "leaky", Open: func() (Source, error) { return shared, nil }}

	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   []Producer{leaky},
		PerProducer: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := kinds(rep.Violations); got[KindDeterminism] == 0 {
		t.Fatalf("determinism oracle missed the diverging replay\n%s", rep)
	}
}

// TestProducerFaults: Open and Next failures surface as KindProducer
// violations, not harness errors.
func TestProducerFaults(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	broken := Producer{Name: "broken", Open: func() (Source, error) {
		return nil, fmt.Errorf("no source today")
	}}
	empty := fixedProducer("empty", nil) // Next errors immediately
	rep, err := Run(context.Background(), Config{
		Env:       env,
		Producers: []Producer{broken, empty},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := kinds(rep.Violations); got[KindProducer] != 2 {
		t.Fatalf("want 2 producer violations, got %v\n%s", got, rep)
	}
}

// TestRunValidation: harness-level misconfiguration is an error, and a
// reversed range constraint is a metamorphic violation.
func TestRunValidation(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("nil Env accepted")
	}
	if _, err := Run(context.Background(), Config{Env: env}); err == nil {
		t.Error("empty producer list accepted")
	}
	bad := rl.RangeConstraint(rl.Cardinality, 1000, 1)
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   []Producer{FSMWalk(env, 2)},
		PerProducer: 1,
		Constraint:  &bad,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := kinds(rep.Violations); got[KindMetamorphic] == 0 {
		t.Fatalf("l > r range constraint not flagged\n%s", rep)
	}
}

// TestMaxViolationsTruncates: a producer that violates on every query
// stops the sweep at the cap instead of drowning the report.
func TestMaxViolationsTruncates(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	items := sampleItems(t, env, 8)
	for i := range items {
		items[i].SQL = "NOT SQL AT ALL"
		items[i].Tokens = nil
	}
	rep, err := Run(context.Background(), Config{
		Env:           env,
		Producers:     []Producer{fixedProducer("bad", items)},
		PerProducer:   8,
		MaxViolations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("report not marked truncated")
	}
	if len(rep.Violations) != 3 {
		t.Errorf("got %d violations, want cap 3", len(rep.Violations))
	}
}

// TestRunCancellation: a cancelled ctx is a harness error with a partial
// report, never a violation verdict.
func TestRunCancellation(t *testing.T) {
	env := testEnv(t, fsm.DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{
		Env:         env,
		Producers:   []Producer{FSMWalk(env, 2)},
		PerProducer: 10,
	})
	if err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
	if rep == nil {
		t.Fatal("cancelled Run returned nil report")
	}
	if len(rep.Violations) != 0 {
		t.Errorf("cancellation produced violations: %v", rep.Violations)
	}
}
