package oracle

import (
	"context"
	"errors"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqlast"
)

// EngineUnderTest configures one external engine for the cross-engine
// differential oracle. The oracle depends only on the backend seams and
// the dialect interfaces, not on internal/engine, so any estimator or
// executor implementation can stand in; the facade wires engine.Driver
// instances through this struct.
type EngineUnderTest struct {
	// Name labels the engine in reports.
	Name string
	// Dialect renders each statement for the engine; nil skips the
	// render↔reparse check (the engine speaks the native dialect).
	Dialect sqlast.Dialect
	// Reparse is the lexical convention that reads Dialect's output back.
	Reparse parser.Options
	// Est, when non-nil, is estimated against and compared to the ground
	// truth cardinality.
	Est estimator.Backend
	// Exec, when non-nil, executes every statement our executor runs.
	Exec executor.Backend
	// ExactCardinality asserts the engine holds the same data as the
	// environment: any cardinality difference is a hard violation instead
	// of a distribution entry.
	ExactCardinality bool
}

// EngineQError tallies one engine's cross-check coverage and q-error
// distributions for one producer.
type EngineQError struct {
	Engine string
	// Rendered counts statements whose dialect rendering read back as the
	// same statement.
	Rendered int
	// Executed / Estimated count engine calls that returned a result.
	Executed  int
	Estimated int
	// Skipped counts transient engine failures — infrastructure, not
	// conformance, so the query is skipped rather than convicted.
	Skipped int
	// TruthQ is the q-error between the engine's executed cardinality and
	// the in-tree executor's (1.0 everywhere on shared data).
	TruthQ QErrorStats
	// EstQ is the q-error between the engine's estimate and the in-tree
	// executor's true cardinality.
	EstQ QErrorStats
}

// transientErr mirrors the resilience layer's structural classification.
func transientErr(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

func qerror(truth, estimate float64) float64 {
	q := (truth + 1) / (estimate + 1)
	if q < 1 {
		q = 1 / q
	}
	return q
}

// checkCrossEngine pushes one item through every configured engine:
// dialect round trip, execution against ground truth, and estimate
// quality. ours is the in-tree executor result (nil when it refused);
// ourEstOK reports whether the in-tree estimator priced the statement.
func (c *checker) checkCrossEngine(ctx context.Context, item Item, ours *executor.Result, ourEstOK bool, pr *ProducerReport) []Violation {
	var out []Violation
	for i := range c.cfg.Engines {
		e := &c.cfg.Engines[i]
		ec := &pr.Engines[i]

		if e.Dialect != nil {
			text := sqlast.Render(item.Statement, e.Dialect)
			back, err := parser.ParseWithOptions(text, e.Reparse)
			switch {
			case err != nil:
				out = append(out, c.violation(KindCrossEngine, item.SQL,
					"engine %s: dialect rendering %q does not parse back: %v", e.Name, text, err))
			case back.SQL() != item.Statement.SQL():
				out = append(out, c.violation(KindCrossEngine, item.SQL,
					"engine %s: dialect round trip changed the statement: %q reads back as %q",
					e.Name, text, back.SQL()))
			default:
				ec.Rendered++
			}
		}

		if e.Exec != nil && ours != nil {
			res, err := e.Exec.ExecuteContext(ctx, item.Statement)
			switch {
			case err != nil && ctx.Err() != nil:
				return out
			case err != nil && transientErr(err):
				ec.Skipped++
			case err != nil:
				out = append(out, c.violation(KindCrossEngine, item.SQL,
					"engine %s rejected a statement our executor runs: %v", e.Name, err))
			default:
				ec.Executed++
				if res.Cardinality < 0 {
					out = append(out, c.violation(KindCrossEngine, item.SQL,
						"engine %s returned impossible cardinality %d", e.Name, res.Cardinality))
					break
				}
				ec.TruthQ.add(qerror(float64(ours.Cardinality), float64(res.Cardinality)))
				if e.ExactCardinality && res.Cardinality != ours.Cardinality {
					out = append(out, c.violation(KindCrossEngine, item.SQL,
						"engine %s cardinality %d != reference %d on shared data",
						e.Name, res.Cardinality, ours.Cardinality))
				}
			}
		}

		if e.Est != nil {
			est, err := e.Est.EstimateContext(ctx, item.Statement)
			switch {
			case err != nil && ctx.Err() != nil:
				return out
			case err != nil && transientErr(err):
				ec.Skipped++
			case err != nil && ourEstOK:
				out = append(out, c.violation(KindCrossEngine, item.SQL,
					"engine %s refused to estimate a statement our estimator prices: %v", e.Name, err))
			case err == nil:
				ec.Estimated++
				if !finiteNonNegative(est.Card) || !finiteNonNegative(est.Cost) {
					out = append(out, c.violation(KindCrossEngine, item.SQL,
						"engine %s returned impossible estimate card=%v cost=%v", e.Name, est.Card, est.Cost))
					break
				}
				if ours != nil {
					ec.EstQ.add(qerror(float64(ours.Cardinality), est.Card))
				}
			}
		}
	}
	return out
}
