package oracle

import (
	"context"
	"fmt"
	"math/rand"

	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/token"
)

// checker holds the per-producer check state: a shared read-only executor
// for SELECTs (DML runs against throwaway clones), and the RNG driving
// metamorphic conjunct sampling.
type checker struct {
	cfg  *Config
	name string
	exec *executor.Executor
	rng  *rand.Rand
}

func newChecker(cfg *Config, name string) *checker {
	seed := cfg.Seed
	for _, b := range []byte(name) {
		seed = seed*131 + int64(b)
	}
	return &checker{
		cfg:  cfg,
		name: name,
		exec: executor.New(cfg.Env.DB),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func (c *checker) violation(k Kind, sql, format string, args ...any) Violation {
	return Violation{Kind: k, Producer: c.name, SQL: sql, Detail: fmt.Sprintf(format, args...)}
}

// check pushes one item through every applicable oracle.
func (c *checker) check(ctx context.Context, item Item, pr *ProducerReport) []Violation {
	var out []Violation
	if v := c.checkParse(item); v != nil {
		out = append(out, *v)
	} else {
		pr.Parsed++
	}
	if item.Tokens != nil {
		if v := c.checkFSMReplay(item); v != nil {
			out = append(out, *v)
		} else {
			pr.Replayed++
		}
	}
	res, estOK, vs := c.checkDifferential(ctx, item, pr)
	out = append(out, vs...)
	if res != nil {
		if v := c.checkMonotonic(ctx, item, res, pr); v != nil {
			out = append(out, *v)
		}
	}
	out = append(out, c.checkConstraint(ctx, item)...)
	if len(c.cfg.Engines) > 0 {
		out = append(out, c.checkCrossEngine(ctx, item, res, estOK, pr)...)
	}
	return out
}

// checkParse is the parse oracle: the emitted SQL must parse, and
// re-rendering the parsed AST must reproduce the exact text — the
// renderer and the lexer/parser agree on one canonical token stream.
func (c *checker) checkParse(item Item) *Violation {
	st, err := parser.Parse(item.SQL)
	if err != nil {
		v := c.violation(KindParse, item.SQL, "emitted SQL does not parse: %v", err)
		return &v
	}
	if got := st.SQL(); got != item.SQL {
		v := c.violation(KindParse, item.SQL, "parse/render round-trip drifted: re-rendered as %q", got)
		return &v
	}
	return nil
}

// checkFSMReplay is the FSM oracle: replaying the emitted token trace
// through a fresh builder must never hit a masked transition, must end
// exactly at completion, and must rebuild the same statement.
func (c *checker) checkFSMReplay(item Item) *Violation {
	b := c.cfg.Env.NewBuilder()
	for i, id := range item.Tokens {
		if b.Done() {
			v := c.violation(KindFSM, item.SQL, "token trace continues %d token(s) past completion", len(item.Tokens)-i)
			return &v
		}
		if err := b.Apply(id); err != nil {
			v := c.violation(KindFSM, item.SQL, "replay hit a masked transition at step %d (%s): %v",
				i, c.cfg.Env.Vocab.Token(id), err)
			return &v
		}
	}
	if !b.Done() {
		v := c.violation(KindFSM, item.SQL, "token trace ended before completion (after %d tokens)", len(item.Tokens))
		return &v
	}
	st, err := b.Statement()
	if err != nil {
		v := c.violation(KindFSM, item.SQL, "replayed builder has no statement: %v", err)
		return &v
	}
	if got := st.SQL(); got != item.SQL {
		v := c.violation(KindFSM, item.SQL, "replayed statement differs: %q", got)
		return &v
	}
	return nil
}

// execute runs a statement: SELECTs share the pristine database (they
// never mutate), DML runs against a throwaway clone.
func (c *checker) execute(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	if _, ok := st.(*sqlast.Select); ok {
		return c.exec.ExecuteContext(ctx, st)
	}
	return executor.New(c.cfg.Env.DB.Clone()).ExecuteContext(ctx, st)
}

// checkDifferential is the differential cardinality oracle: the executor
// supplies ground truth, the (uncached) estimator prices the same
// statement, and the q-error is recorded. Estimator inaccuracy is
// expected; hard failures are only the impossible outcomes — estimator
// refusal of an executable statement, non-finite or negative estimates,
// or the executor rejecting an FSM-produced statement. The executor
// result is returned for the metamorphic stage (nil when unavailable),
// along with whether the in-tree estimator priced the statement (the
// cross-engine oracle convicts engine refusals only for statements our
// own estimator handles).
func (c *checker) checkDifferential(ctx context.Context, item Item, pr *ProducerReport) (*executor.Result, bool, []Violation) {
	var out []Violation
	res, execErr := c.execute(ctx, item.Statement)
	if execErr != nil {
		if ctx.Err() != nil {
			return nil, false, nil
		}
		if item.Tokens != nil {
			// §5: every completed FSM walk must execute.
			out = append(out, c.violation(KindDifferential, item.SQL,
				"executor rejected an FSM-generated statement: %v", execErr))
		}
		res = nil
	} else {
		pr.Executed++
	}

	est, estErr := c.cfg.Env.Est.EstimateContext(ctx, item.Statement)
	switch {
	case estErr != nil && ctx.Err() != nil:
		return res, false, out
	case estErr != nil && execErr == nil:
		out = append(out, c.violation(KindDifferential, item.SQL,
			"estimator refused an executable statement: %v", estErr))
	case estErr == nil:
		pr.Estimated++
		if !finiteNonNegative(est.Card) {
			out = append(out, c.violation(KindDifferential, item.SQL,
				"impossible estimated cardinality %v", est.Card))
		}
		if !finiteNonNegative(est.Cost) {
			out = append(out, c.violation(KindDifferential, item.SQL,
				"impossible estimated cost %v", est.Cost))
		}
		if execErr == nil {
			truth := float64(res.Cardinality)
			q := (truth + 1) / (est.Card + 1)
			if q < 1 {
				q = 1 / q
			}
			pr.QError.add(q)
		}
	}
	return res, estErr == nil, out
}

// checkMonotonic is the predicate-tightening metamorphic check: appending
// an AND conjunct to the WHERE clause can only shrink the true result.
// HAVING breaks the property (filtering rows changes group aggregates, so
// groups can start passing), so aggregate-filtered queries are skipped.
func (c *checker) checkMonotonic(ctx context.Context, item Item, base *executor.Result, pr *ProducerReport) *Violation {
	tight, ok := c.tighten(item.Statement)
	if !ok {
		return nil
	}
	res, err := c.execute(ctx, tight)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		v := c.violation(KindMetamorphic, item.SQL,
			"tightened statement %q failed to execute: %v", tight.SQL(), err)
		return &v
	}
	pr.Metamorphic++
	if res.Cardinality > base.Cardinality {
		v := c.violation(KindMetamorphic, item.SQL,
			"adding AND conjunct raised cardinality %d → %d (tightened: %s)",
			base.Cardinality, res.Cardinality, tight.SQL())
		return &v
	}
	return nil
}

// tighten clones the statement with one extra AND conjunct sampled from
// the vocabulary's cell values over the statement's table scope. ok is
// false when the statement kind is out of scope for the check or no
// sampled value exists for any in-scope column.
func (c *checker) tighten(st sqlast.Statement) (sqlast.Statement, bool) {
	var tables []string
	switch t := st.(type) {
	case *sqlast.Select:
		if t.Having != nil {
			return nil, false
		}
		tables = t.Tables
	case *sqlast.Update:
		tables = []string{t.Table}
	case *sqlast.Delete:
		tables = []string{t.Table}
	default:
		return nil, false // INSERT has no WHERE to tighten
	}
	conj, ok := c.sampleConjunct(tables)
	if !ok {
		return nil, false
	}
	and := func(w sqlast.Predicate) sqlast.Predicate {
		if w == nil {
			return conj
		}
		return &sqlast.And{Left: w, Right: conj}
	}
	cp := sqlast.CloneStatement(st)
	switch t := cp.(type) {
	case *sqlast.Select:
		t.Where = and(t.Where)
	case *sqlast.Update:
		t.Where = and(t.Where)
	case *sqlast.Delete:
		t.Where = and(t.Where)
	}
	return cp, true
}

// sampleConjunct draws `col op value` over the given tables from the
// vocabulary's sampled cell values, respecting the FSM's operator typing
// (strings compare only with =, <, >).
func (c *checker) sampleConjunct(tables []string) (sqlast.Predicate, bool) {
	sch := c.cfg.Env.DB.Schema
	vocab := c.cfg.Env.Vocab
	type cand struct {
		qc  schema.QualifiedColumn
		ids []int
	}
	var cands []cand
	for _, tn := range tables {
		t := sch.TableByName(tn)
		if t == nil {
			continue
		}
		for i := range t.Columns {
			qc := schema.QualifiedColumn{Table: tn, Column: t.Columns[i].Name}
			if ids := vocab.ValueTokens(qc); len(ids) > 0 {
				cands = append(cands, cand{qc: qc, ids: ids})
			}
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	pick := cands[c.rng.Intn(len(cands))]
	val := vocab.Token(pick.ids[c.rng.Intn(len(pick.ids))]).Value
	var ops []sqlast.CmpOp
	if val.Kind() == sqltypes.KindString {
		ops = []sqlast.CmpOp{sqlast.OpEq, sqlast.OpGt, sqlast.OpLt}
	} else {
		ops = token.Operators()
	}
	return &sqlast.Compare{
		Col:   pick.qc,
		Op:    ops[c.rng.Intn(len(ops))],
		Value: val,
	}, true
}

// checkConstraint is the constraint-sanity metamorphic check: a
// producer-reported measurement must equal a fresh environment
// measurement (catching stale estimator-cache entries), and the Satisfied
// flag must agree with Constraint.Satisfied.
func (c *checker) checkConstraint(ctx context.Context, item Item) []Violation {
	cons := c.cfg.Constraint
	if cons == nil || !item.HasMeasure {
		return nil
	}
	var out []Violation
	m, err := c.cfg.Env.MeasureContext(ctx, item.Statement, cons.Metric)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		out = append(out, c.violation(KindMetamorphic, item.SQL,
			"environment refused to re-measure a measured statement: %v", err))
		return out
	}
	if m != item.Measured {
		out = append(out, c.violation(KindMetamorphic, item.SQL,
			"reported measurement %v != fresh measurement %v (stale cache?)", item.Measured, m))
	}
	if want := cons.Satisfied(item.Measured); want != item.Satisfied {
		out = append(out, c.violation(KindMetamorphic, item.SQL,
			"satisfied flag %v contradicts constraint %s over measured %v",
			item.Satisfied, cons, item.Measured))
	}
	return out
}
