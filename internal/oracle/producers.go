package oracle

import (
	"context"
	"fmt"
	"math/rand"

	"learnedsqlgen/internal/baselines"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/sqlast"
)

// Item is one query emitted by a producer, carrying whatever evidence the
// producer has about it so the oracles can cross-check every claim.
type Item struct {
	Statement sqlast.Statement
	// SQL is the producer's rendering of Statement — the text under test
	// for the parse round-trip.
	SQL string
	// Tokens is the FSM action trace that built the statement, when the
	// producer walked the FSM (nil for template instantiation). A non-nil
	// trace enables the FSM replay oracle and promotes executor failure to
	// a violation (§5: every completed walk is executable).
	Tokens []int
	// Measured/Satisfied mirror rl.Generated; HasMeasure reports whether
	// the environment actually produced the measurement (enabling the
	// constraint-sanity check against a fresh measurement).
	Measured   float64
	HasMeasure bool
	Satisfied  bool
}

// Source yields one Item per Next call. Sources are single-goroutine.
type Source interface {
	Next(ctx context.Context) (Item, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context) (Item, error)

// Next implements Source.
func (f SourceFunc) Next(ctx context.Context) (Item, error) { return f(ctx) }

// Producer names a query source and knows how to open it from scratch.
type Producer struct {
	Name string
	// Open starts a fresh, deterministically seeded source. The
	// determinism oracle calls it a second time and requires the replay to
	// reproduce the first run's SQL byte for byte.
	Open func() (Source, error)
	// Alt, when non-nil, replaces Open for the determinism replay: a
	// differently-configured but behaviourally identical source (e.g. the
	// RL sampler with its prefix cache disabled, or the environment's
	// estimator cache off). Any divergence convicts the configuration
	// difference of changing observable behaviour.
	Alt func() (Source, error)
}

// measuredItem assembles an Item from a generated statement, re-measuring
// through the environment to learn whether the metric is obtainable at
// all (rl.Generated cannot distinguish "measured 0" from "unmeasurable").
// The re-measurement is a cache hit whenever the producer measured.
func measuredItem(ctx context.Context, env *rl.Env, metric rl.Metric, g rl.Generated, toks []int) (Item, error) {
	it := Item{
		Statement: g.Statement,
		SQL:       g.SQL,
		Tokens:    toks,
		Measured:  g.Measured,
		Satisfied: g.Satisfied,
	}
	if _, err := env.MeasureContext(ctx, g.Statement, metric); err == nil {
		it.HasMeasure = true
	} else if ctx.Err() != nil {
		return Item{}, err
	}
	return it, nil
}

// FSMWalk is the raw-grammar producer: uniform random walks over the
// FSM's unmasked action set, no policy, no measurement. It tests the §5
// guarantee in its purest form — every completed walk must parse,
// replay, and execute.
func FSMWalk(env *rl.Env, seed int64) Producer {
	open := func() (Source, error) {
		rng := rand.New(rand.NewSource(seed))
		return SourceFunc(func(ctx context.Context) (Item, error) {
			if err := ctx.Err(); err != nil {
				return Item{}, err
			}
			b := env.NewBuilder()
			for !b.Done() {
				valid := b.Valid()
				id := valid[rng.Intn(len(valid))]
				if err := b.Apply(id); err != nil {
					return Item{}, fmt.Errorf("fsm rejected its own unmasked action %d at step %d: %w",
						id, b.Steps(), err)
				}
			}
			st, err := b.Statement()
			if err != nil {
				return Item{}, fmt.Errorf("completed walk has no statement: %w", err)
			}
			toks := append([]int(nil), b.Tokens()...)
			return Item{Statement: st, SQL: st.SQL(), Tokens: toks}, nil
		}), nil
	}
	return Producer{Name: "fsm-walk", Open: open}
}

// RandomProducer adapts the SQLSmith-style baseline (uniform walks with
// constraint measurement).
func RandomProducer(env *rl.Env, c rl.Constraint, seed int64) Producer {
	open := func() (Source, error) {
		r := baselines.NewRandom(env, c, seed)
		return SourceFunc(func(ctx context.Context) (Item, error) {
			g, toks, err := r.Next(ctx)
			if err != nil {
				return Item{}, err
			}
			return measuredItem(ctx, env, c.Metric, g, toks)
		}), nil
	}
	return Producer{Name: "random", Open: open}
}

// TemplateProducer adapts the template baseline: skeletons are
// re-synthesized from the seed on every Open (determinism replays rebuild
// them identically), and each Next is one hill-climbing run. Template
// statements carry no FSM trace — the climb mutates predicate constants
// outside the FSM — so the replay oracle is skipped for them.
func TemplateProducer(env *rl.Env, c rl.Constraint, numTemplates int, seed int64) Producer {
	open := func() (Source, error) {
		g := baselines.NewTemplateGen(env, c, numTemplates, seed)
		if len(g.Templates) == 0 {
			return nil, fmt.Errorf("template synthesis produced no usable skeletons")
		}
		return SourceFunc(func(ctx context.Context) (Item, error) {
			// A climb can fail to measure its random restart; retry across
			// the round-robin rather than reporting a producer fault.
			for attempt := 0; attempt < 2*len(g.Templates)+1; attempt++ {
				gen, ok, err := g.Next(ctx)
				if err != nil {
					return Item{}, err
				}
				if ok {
					return measuredItem(ctx, env, c.Metric, gen, nil)
				}
			}
			return Item{}, fmt.Errorf("no template produced a measurable statement")
		}), nil
	}
	return Producer{Name: "template", Open: open}
}

// TrainerProducer adapts an RL policy sampler. open must build a freshly
// seeded trainer — identical weights on every call, since the determinism
// oracle reopens it and demands a byte-identical query trace. alt, when
// non-nil, builds a differently-configured but behaviourally identical
// trainer (canonically: prefix cache disabled) for the replay, turning
// the rollout engine's byte-identity guarantee into a checked invariant.
// Queries are drawn as inference batches of Cfg.BatchSize.
func TrainerProducer(name string, open func() (*rl.Trainer, error), alt func() (*rl.Trainer, error)) Producer {
	wrap := func(mk func() (*rl.Trainer, error)) func() (Source, error) {
		return func() (Source, error) {
			t, err := mk()
			if err != nil {
				return nil, err
			}
			return &trainerSource{t: t}, nil
		}
	}
	p := Producer{Name: name, Open: wrap(open)}
	if alt != nil {
		p.Alt = wrap(alt)
	}
	return p
}

// trainerSource pulls inference trajectories batch by batch.
type trainerSource struct {
	t   *rl.Trainer
	buf []*rl.Trajectory
}

// Next implements Source.
func (s *trainerSource) Next(ctx context.Context) (Item, error) {
	if len(s.buf) == 0 {
		n := s.t.Cfg.BatchSize
		if n <= 0 {
			n = 1
		}
		batch, err := s.t.SampleBatchContext(ctx, s.t.Actor(), s.t.Actor().BOS(), n, false, false)
		if err != nil {
			return Item{}, err
		}
		s.buf = batch
	}
	traj := s.buf[0]
	s.buf = s.buf[1:]
	toks := make([]int, len(traj.Steps))
	for i := range traj.Steps {
		toks[i] = traj.Steps[i].Action
	}
	g := rl.Generated{
		Statement: traj.Final,
		SQL:       traj.Final.SQL(),
		Measured:  traj.Measured,
		Satisfied: traj.Satisfied,
	}
	return measuredItem(ctx, s.t.Env, s.t.Constraint.Metric, g, toks)
}
