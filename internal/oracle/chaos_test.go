package oracle

import (
	"context"
	"testing"
	"time"

	"learnedsqlgen/internal/faultinject"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/resilience"
)

// TestConformanceUnderFaultInjection runs the full conformance sweep with
// ~5% injected transient errors and latency spikes on the estimation
// backend, healed by the resilience layer. The oracles must stay clean:
// retried faults may never change a measurement, leak into the cache, or
// break producer determinism. Only error and latency faults are injected
// here — NaN poisoning would legitimately fail the measurement-equality
// metamorphic check (that path is covered by the rl chaos suite's
// watchdog tests), and panics would shift episode indices and trip the
// determinism oracle by design.
func TestConformanceUnderFaultInjection(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	env := testEnv(t, fsm.DefaultConfig())
	inj := faultinject.New(faultinject.Config{
		Seed:        17,
		ErrorRate:   0.05,
		LatencyRate: 0.05,
		Latency:     50 * time.Microsecond,
	})
	met := &resilience.Metrics{}
	env.Res = met
	// Production layering: cache → resilience → faultinject → raw. A high
	// attempt budget makes post-retry failure astronomically unlikely, so
	// the sweep sees only healed calls.
	env.SetBackend(resilience.NewEstimator(
		faultinject.NewEstimator(env.Est, inj),
		resilience.Policy{
			MaxAttempts: 8,
			BaseDelay:   10 * time.Microsecond,
			MaxDelay:    200 * time.Microsecond,
		}, met))

	c := testConstraint()
	rep, err := Run(context.Background(), Config{
		Env:         env,
		Producers:   allProducers(env, c),
		PerProducer: n,
		Constraint:  &c,
		Seed:        19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("fault injection leaked into oracle results:\n%s", rep)
	}
	if inj.Calls() == 0 {
		t.Fatal("injector saw no backend calls — faults were not wired in")
	}
	if met.Retries.Load() == 0 {
		t.Error("no retries recorded despite a 5% transient error rate")
	}
	if met.Exhausted.Load() != 0 {
		t.Errorf("%d operations exhausted retries; the sweep should see only healed calls",
			met.Exhausted.Load())
	}
}
