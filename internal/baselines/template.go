package baselines

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// Template is one query skeleton: a SELECT whose structure is fixed and
// whose numeric predicate constants ("the x in R.a < x", Bruno et al.) are
// the only degrees of freedom.
type Template struct {
	Stmt *sqlast.Select
	// Slots are the tweakable comparison leaves of Stmt's WHERE clause.
	Slots []*sqlast.Compare
	// Candidates[i] lists the sorted candidate values for slot i.
	Candidates [][]sqltypes.Value
}

// TemplateGen is the template-based baseline. Skeletons are synthesized
// once (the stand-in for the expert-crafted templates of [10], built by
// "reassembling the predicates" like §7.1 describes) and reused for every
// constraint; generation hill-climbs each skeleton's constants toward the
// target, with random restarts as the Mishra-style search-space pruning.
type TemplateGen struct {
	Env        *rl.Env
	Constraint rl.Constraint
	Templates  []*Template
	// MaxClimbSteps bounds estimator calls per hill-climbing run.
	MaxClimbSteps int
	rng           *rand.Rand
	next          int // round-robin cursor for Next
}

// NewTemplateGen synthesizes numTemplates SPJ skeletons via seeded random
// FSM walks (aggregates/nesting/DML disabled — the template shapes of
// [10]) and prepares their value candidate lists.
func NewTemplateGen(env *rl.Env, constraint rl.Constraint, numTemplates int, seed int64) *TemplateGen {
	g := &TemplateGen{
		Env:           env,
		Constraint:    constraint,
		MaxClimbSteps: 40,
		rng:           rand.New(rand.NewSource(seed)),
	}
	cfg := env.Cfg
	cfg.AllowAggregates = false
	cfg.AllowOrderBy = false
	cfg.AllowInsert, cfg.AllowUpdate, cfg.AllowDelete = false, false, false
	cfg.MaxNestDepth = 0

	tplEnv := &rl.Env{DB: env.DB, Vocab: env.Vocab, Est: env.Est, Cfg: cfg}
	for tries := 0; tries < numTemplates*50 && len(g.Templates) < numTemplates; tries++ {
		b := tplEnv.NewBuilder()
		for !b.Done() {
			valid := b.Valid()
			if err := b.Apply(valid[g.rng.Intn(len(valid))]); err != nil {
				// Invariant: the action came from Valid() (see Random).
				panic("baselines: FSM rejected an unmasked action: " + err.Error())
			}
		}
		st, _ := b.Statement()
		sel := st.(*sqlast.Select)
		tpl := g.buildTemplate(sel)
		if tpl != nil {
			g.Templates = append(g.Templates, tpl)
		}
	}
	return g
}

// buildTemplate extracts tweakable slots; templates without at least one
// numeric slot with ≥3 candidates are rejected.
func (g *TemplateGen) buildTemplate(sel *sqlast.Select) *Template {
	tpl := &Template{Stmt: sel}
	sqlast.WalkPredicates(sel.Where, func(p sqlast.Predicate) {
		cmp, ok := p.(*sqlast.Compare)
		if !ok {
			return
		}
		cands := g.candidateValues(cmp.Col)
		if len(cands) < 3 {
			return
		}
		tpl.Slots = append(tpl.Slots, cmp)
		tpl.Candidates = append(tpl.Candidates, cands)
	})
	if len(tpl.Slots) == 0 {
		return nil
	}
	return tpl
}

// candidateValues lists the vocabulary's sampled values for a column.
func (g *TemplateGen) candidateValues(qc schema.QualifiedColumn) []sqltypes.Value {
	ids := g.Env.Vocab.ValueTokens(qc)
	vals := make([]sqltypes.Value, 0, len(ids))
	for _, id := range ids {
		vals = append(vals, g.Env.Vocab.Token(id).Value)
	}
	return vals
}

// distance measures how far a measured value is from the constraint in
// log space (0 when satisfied).
func (g *TemplateGen) distance(measured float64) float64 {
	c := g.Constraint
	logDist := func(a, b float64) float64 {
		return math.Abs(math.Log(a+1) - math.Log(b+1))
	}
	if c.IsRange {
		if measured >= c.Lo && measured <= c.Hi {
			return 0
		}
		return math.Min(logDist(measured, c.Lo), logDist(measured, c.Hi))
	}
	return logDist(measured, c.Point)
}

// measure estimates the template's current metric value.
func (g *TemplateGen) measure(ctx context.Context, tpl *Template) (float64, bool) {
	m, err := g.Env.MeasureContext(ctx, tpl.Stmt, g.Constraint.Metric)
	if err != nil {
		return 0, false
	}
	return m, true
}

// climb performs one hill-climbing run from a random restart: each round
// tries coarse and fine moves on every slot and keeps the best
// improvement, stopping at a local optimum, a satisfied query, or the
// step budget.
func (g *TemplateGen) climb(ctx context.Context, tpl *Template) (rl.Generated, bool) {
	// Random restart (the top-k restart sampling of [38] degenerates to
	// random restarts at k=1 per attempt).
	idx := make([]int, len(tpl.Slots))
	for i := range tpl.Slots {
		idx[i] = g.rng.Intn(len(tpl.Candidates[i]))
		tpl.Slots[i].Value = tpl.Candidates[i][idx[i]]
	}
	m, ok := g.measure(ctx, tpl)
	if !ok {
		return rl.Generated{}, false
	}
	best := g.distance(m)
	bestM := m
	steps := 1

	for steps < g.MaxClimbSteps && best > 0 && ctx.Err() == nil {
		improved := false
		for i := range tpl.Slots {
			n := len(tpl.Candidates[i])
			coarse := n / 8
			if coarse < 1 {
				coarse = 1
			}
			for _, delta := range []int{-coarse, -1, 1, coarse} {
				j := idx[i] + delta
				if j < 0 || j >= n || j == idx[i] {
					continue
				}
				old := idx[i]
				idx[i] = j
				tpl.Slots[i].Value = tpl.Candidates[i][j]
				m, ok := g.measure(ctx, tpl)
				steps++
				if ok {
					if d := g.distance(m); d < best {
						best, bestM = d, m
						improved = true
						continue // keep the move, try further from here
					}
				}
				idx[i] = old
				tpl.Slots[i].Value = tpl.Candidates[i][old]
				if steps >= g.MaxClimbSteps {
					break
				}
			}
			if steps >= g.MaxClimbSteps {
				break
			}
		}
		if !improved {
			break
		}
	}

	gen := rl.Generated{
		Statement: sqlast.CloneStatement(tpl.Stmt),
		Measured:  bestM,
		Satisfied: g.Constraint.Satisfied(bestM),
	}
	gen.SQL = gen.Statement.SQL()
	return gen, true
}

// Next runs one hill-climbing attempt on the next template in round-robin
// order. ok is false when the attempt could not measure its restart (no
// statement produced); err is non-nil only for a done ctx or a generator
// with no templates.
func (g *TemplateGen) Next(ctx context.Context) (rl.Generated, bool, error) {
	if err := ctx.Err(); err != nil {
		return rl.Generated{}, false, err
	}
	if len(g.Templates) == 0 {
		return rl.Generated{}, false, errors.New("baselines: template generator has no templates")
	}
	tpl := g.Templates[g.next%len(g.Templates)]
	g.next++
	gen, ok := g.climb(ctx, tpl)
	return gen, ok, nil
}

// Generate produces n statements, one hill-climbing run each (templates
// round-robin); unsatisfied outcomes are included, as in the paper's
// accuracy accounting.
func (g *TemplateGen) Generate(n int) []rl.Generated {
	out, _ := g.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation: a done ctx stops between
// (and inside) hill-climbing runs and returns what was produced so far
// with ctx's error.
func (g *TemplateGen) GenerateContext(ctx context.Context, n int) ([]rl.Generated, error) {
	out := make([]rl.Generated, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		tpl := g.Templates[i%len(g.Templates)]
		if gen, ok := g.climb(ctx, tpl); ok {
			out = append(out, gen)
		}
	}
	return out, nil
}

// GenerateSatisfied runs hill-climbing attempts until n satisfied
// statements are found or maxAttempts runs finish.
func (g *TemplateGen) GenerateSatisfied(n, maxAttempts int) ([]rl.Generated, int) {
	out, attempts, _ := g.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation.
func (g *TemplateGen) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]rl.Generated, int, error) {
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		if err := ctx.Err(); err != nil {
			return out, attempts, err
		}
		tpl := g.Templates[attempts%len(g.Templates)]
		attempts++
		if gen, ok := g.climb(ctx, tpl); ok && gen.Satisfied {
			out = append(out, gen)
		}
	}
	return out, attempts, nil
}

// newSeededRand centralizes seeding for template generators.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
