package baselines

import (
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/token"
)

func testEnv(t testing.TB) *rl.Env {
	t.Helper()
	db, err := datagen.Generate(datagen.NameTPCH, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	vocab := token.Build(db, 20, 7)
	return rl.NewEnv(db, vocab, fsm.DefaultConfig())
}

func TestRandomGenerates(t *testing.T) {
	env := testEnv(t)
	r := NewRandom(env, rl.RangeConstraint(rl.Cardinality, 1, 1e6), 3)
	gen := r.Generate(50)
	if len(gen) != 50 {
		t.Fatalf("generated %d", len(gen))
	}
	sat := 0
	for _, g := range gen {
		if g.Statement == nil || g.SQL == "" {
			t.Fatal("missing statement")
		}
		if _, err := executor.New(env.DB.Clone()).Execute(g.Statement); err != nil {
			t.Fatalf("invalid statement %q: %v", g.SQL, err)
		}
		if g.Satisfied {
			sat++
		}
	}
	if sat == 0 {
		t.Error("broad constraint should be satisfied sometimes")
	}
}

func TestRandomGenerateSatisfiedCaps(t *testing.T) {
	env := testEnv(t)
	impossible := rl.RangeConstraint(rl.Cardinality, 1e17, 1e18)
	r := NewRandom(env, impossible, 3)
	got, attempts := r.GenerateSatisfied(5, 40)
	if len(got) != 0 || attempts != 40 {
		t.Errorf("impossible: %d found, %d attempts", len(got), attempts)
	}

	easy := rl.RangeConstraint(rl.Cardinality, 0, 1e12)
	r2 := NewRandom(env, easy, 3)
	got2, attempts2 := r2.GenerateSatisfied(5, 500)
	if len(got2) != 5 {
		t.Errorf("easy constraint found only %d in %d attempts", len(got2), attempts2)
	}
	for _, g := range got2 {
		if !g.Satisfied {
			t.Error("unsatisfied result returned")
		}
	}
}

func TestTemplateSynthesis(t *testing.T) {
	env := testEnv(t)
	g := NewTemplateGen(env, rl.PointConstraint(rl.Cardinality, 100), 8, 5)
	if len(g.Templates) == 0 {
		t.Fatal("no templates synthesized")
	}
	for _, tpl := range g.Templates {
		if len(tpl.Slots) == 0 {
			t.Error("template without slots")
		}
		if len(tpl.Slots) != len(tpl.Candidates) {
			t.Error("slot/candidate mismatch")
		}
		// Templates are plain SPJ: no aggregates, no subqueries.
		if tpl.Stmt.HasAggregate() || len(sqlast.Subqueries(tpl.Stmt)) > 0 {
			t.Errorf("template not SPJ: %s", tpl.Stmt.SQL())
		}
	}
}

func TestTemplateClimbImprovesDistance(t *testing.T) {
	env := testEnv(t)
	target := rl.PointConstraint(rl.Cardinality, 50)
	g := NewTemplateGen(env, target, 8, 5)

	// Hill-climbed outcomes should be closer to the target than pure
	// random generation on average.
	tplGen := g.Generate(40)
	rnd := NewRandom(env, target, 6).Generate(40)
	avgDist := func(gen []rl.Generated) float64 {
		s := 0.0
		for _, x := range gen {
			s += g.distance(x.Measured)
		}
		return s / float64(len(gen))
	}
	dTpl, dRnd := avgDist(tplGen), avgDist(rnd)
	if dTpl >= dRnd {
		t.Errorf("template distance %.3f should beat random %.3f", dTpl, dRnd)
	}
}

func TestTemplateGenerateSatisfied(t *testing.T) {
	env := testEnv(t)
	target := rl.RangeConstraint(rl.Cardinality, 10, 1000)
	g := NewTemplateGen(env, target, 8, 5)
	got, attempts := g.GenerateSatisfied(5, 100)
	if attempts > 100 {
		t.Error("attempt cap breached")
	}
	for _, x := range got {
		if !x.Satisfied {
			t.Error("unsatisfied result returned")
		}
		if _, err := executor.New(env.DB.Clone()).Execute(x.Statement); err != nil {
			t.Fatalf("invalid statement %q: %v", x.SQL, err)
		}
	}
	if len(got) == 0 {
		t.Error("no satisfied queries for a broad range")
	}
}

func TestTemplateEmittedStatementsDoNotAlias(t *testing.T) {
	env := testEnv(t)
	target := rl.RangeConstraint(rl.Cardinality, 1, 1e9)
	g := NewTemplateGen(env, target, 4, 5)
	out := g.Generate(8)
	if len(out) < 2 {
		t.Skip("not enough outputs")
	}
	sqlBefore := make([]string, len(out))
	for i, x := range out {
		sqlBefore[i] = x.Statement.SQL()
	}
	// More generation mutates template slots in place; emitted statements
	// must not change.
	g.Generate(8)
	for i, x := range out {
		if x.Statement.SQL() != sqlBefore[i] {
			t.Fatal("emitted statement aliased template storage")
		}
	}
}

func TestClonePredCoversAllForms(t *testing.T) {
	inner := &sqlast.Select{Tables: []string{"region"},
		Items: []sqlast.SelectItem{{Col: qc("region", "r_regionkey")}}}
	p := &sqlast.And{
		Left: &sqlast.Or{
			Left:  &sqlast.Not{Inner: &sqlast.Compare{Col: qc("nation", "n_nationkey"), Op: sqlast.OpEq}},
			Right: &sqlast.In{Col: qc("nation", "n_regionkey"), Sub: inner},
		},
		Right: &sqlast.And{
			Left:  &sqlast.Exists{Sub: inner},
			Right: &sqlast.CompareSub{Col: qc("nation", "n_nationkey"), Op: sqlast.OpGt, Sub: inner},
		},
	}
	cp := sqlast.ClonePredicate(p)
	if cp.SQL() != p.SQL() {
		t.Error("clone must render identically")
	}
	// Mutating the original leaf must not affect the clone.
	p.Left.(*sqlast.Or).Left.(*sqlast.Not).Inner.(*sqlast.Compare).Op = sqlast.OpNe
	if cp.SQL() == p.SQL() {
		t.Error("clone aliases original")
	}
	if sqlast.ClonePredicate(nil) != nil {
		t.Error("nil clone must be nil")
	}
}

func qc(t, c string) schema.QualifiedColumn {
	return schema.QualifiedColumn{Table: t, Column: c}
}

func TestDatasetTemplatesParseOnTheirDatasets(t *testing.T) {
	for _, name := range []string{"tpch", "job", "xuetang"} {
		db, err := datagen.Generate(name, 0.05, 1)
		if err != nil {
			t.Fatal(err)
		}
		env := rl.NewEnv(db, token.Build(db, 20, 7), fsm.DefaultConfig())
		sqls := DatasetTemplates(name)
		if len(sqls) < 8 {
			t.Fatalf("%s: only %d templates", name, len(sqls))
		}
		g, err := NewTemplateGenFromSQL(env, rl.PointConstraint(rl.Cardinality, 50), sqls, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(g.Templates) != len(sqls) {
			t.Errorf("%s: %d of %d templates usable", name, len(g.Templates), len(sqls))
		}
		// Every template must execute on the real data.
		for _, tpl := range g.Templates {
			if _, err := executor.New(env.DB.Clone()).Select(tpl.Stmt); err != nil {
				t.Errorf("%s: template %q does not execute: %v", name, tpl.Stmt.SQL(), err)
			}
		}
	}
	if DatasetTemplates("nope") != nil {
		t.Error("unknown dataset must return nil templates")
	}
}

func TestNewTemplateGenFromSQLErrors(t *testing.T) {
	env := testEnv(t)
	c := rl.PointConstraint(rl.Cardinality, 50)
	if _, err := NewTemplateGenFromSQL(env, c, []string{"SELEC nope"}, 1); err == nil {
		t.Error("unparseable template must fail")
	}
	if _, err := NewTemplateGenFromSQL(env, c, []string{"SELECT t.x FROM t"}, 1); err == nil {
		t.Error("template on unknown table must fail")
	}
	if _, err := NewTemplateGenFromSQL(env, c, nil, 1); err == nil {
		t.Error("empty template list must fail")
	}
}
