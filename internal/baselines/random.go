// Package baselines implements the two comparison methods of §7.1:
//
//   - Random: SQLSmith-style generation [Seltenreich] — uniform random
//     walks over the grammar (our FSM), keeping whatever satisfies the
//     constraint by luck;
//   - Template: the template-based method of Bruno et al. [10] with the
//     Mishra–Koudas-style restart pruning [38] — fixed query skeletons
//     whose predicate constants are hill-climbed towards the cardinality
//     or cost target.
//
// Both consume the same environment (FSM validity masking + estimator
// feedback) as LearnedSQLGen, so comparisons isolate the generation
// strategy.
package baselines

import (
	"context"
	"math/rand"

	"learnedsqlgen/internal/rl"
)

// Random is the SQLSmith-style baseline: every token is drawn uniformly
// from the FSM's unmasked set, with no learning.
type Random struct {
	Env        *rl.Env
	Constraint rl.Constraint
	rng        *rand.Rand
}

// NewRandom builds the baseline.
func NewRandom(env *rl.Env, constraint rl.Constraint, seed int64) *Random {
	return &Random{Env: env, Constraint: constraint, rng: rand.New(rand.NewSource(seed))}
}

// generateOne runs one uniform walk and measures it, returning the
// statement with the FSM action trace that built it.
func (r *Random) generateOne(ctx context.Context) (rl.Generated, []int) {
	b := r.Env.NewBuilder()
	for !b.Done() {
		valid := b.Valid()
		if err := b.Apply(valid[r.rng.Intn(len(valid))]); err != nil {
			// Invariant, not an input error: the action was drawn from the
			// FSM's own Valid() mask, so a rejection means the FSM's mask
			// and transition function disagree — a bug, not a bad query.
			panic("baselines: FSM rejected an unmasked action: " + err.Error())
		}
	}
	st, _ := b.Statement()
	g := rl.Generated{Statement: st, SQL: st.SQL()}
	if m, err := r.Env.MeasureContext(ctx, st, r.Constraint.Metric); err == nil {
		g.Measured = m
		g.Satisfied = r.Constraint.Satisfied(m)
	}
	return g, append([]int(nil), b.Tokens()...)
}

// Next produces one statement together with its FSM token trace — the
// conformance oracle replays the trace to certify the walk never left the
// masked action set. A done ctx returns before walking.
func (r *Random) Next(ctx context.Context) (rl.Generated, []int, error) {
	if err := ctx.Err(); err != nil {
		return rl.Generated{}, nil, err
	}
	g, toks := r.generateOne(ctx)
	return g, toks, nil
}

// Generate produces n random statements (satisfied or not); accuracy is
// the satisfied fraction.
func (r *Random) Generate(n int) []rl.Generated {
	out, _ := r.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation: a done ctx stops between
// walks and returns the statements produced so far with ctx's error.
func (r *Random) GenerateContext(ctx context.Context, n int) ([]rl.Generated, error) {
	out := make([]rl.Generated, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		g, _ := r.generateOne(ctx)
		out = append(out, g)
	}
	return out, nil
}

// GenerateSatisfied keeps sampling until n satisfied statements are found
// or maxAttempts walks have run.
func (r *Random) GenerateSatisfied(n, maxAttempts int) ([]rl.Generated, int) {
	out, attempts, _ := r.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation.
func (r *Random) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]rl.Generated, int, error) {
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		if err := ctx.Err(); err != nil {
			return out, attempts, err
		}
		g, _ := r.generateOne(ctx)
		attempts++
		if g.Satisfied {
			out = append(out, g)
		}
	}
	return out, attempts, nil
}
