// Package baselines implements the two comparison methods of §7.1:
//
//   - Random: SQLSmith-style generation [Seltenreich] — uniform random
//     walks over the grammar (our FSM), keeping whatever satisfies the
//     constraint by luck;
//   - Template: the template-based method of Bruno et al. [10] with the
//     Mishra–Koudas-style restart pruning [38] — fixed query skeletons
//     whose predicate constants are hill-climbed towards the cardinality
//     or cost target.
//
// Both consume the same environment (FSM validity masking + estimator
// feedback) as LearnedSQLGen, so comparisons isolate the generation
// strategy.
package baselines

import (
	"math/rand"

	"learnedsqlgen/internal/rl"
)

// Random is the SQLSmith-style baseline: every token is drawn uniformly
// from the FSM's unmasked set, with no learning.
type Random struct {
	Env        *rl.Env
	Constraint rl.Constraint
	rng        *rand.Rand
}

// NewRandom builds the baseline.
func NewRandom(env *rl.Env, constraint rl.Constraint, seed int64) *Random {
	return &Random{Env: env, Constraint: constraint, rng: rand.New(rand.NewSource(seed))}
}

// generateOne runs one uniform walk and measures it.
func (r *Random) generateOne() rl.Generated {
	b := r.Env.NewBuilder()
	for !b.Done() {
		valid := b.Valid()
		if err := b.Apply(valid[r.rng.Intn(len(valid))]); err != nil {
			panic("baselines: FSM rejected an unmasked action: " + err.Error())
		}
	}
	st, _ := b.Statement()
	g := rl.Generated{Statement: st, SQL: st.SQL()}
	if m, err := r.Env.Measure(st, r.Constraint.Metric); err == nil {
		g.Measured = m
		g.Satisfied = r.Constraint.Satisfied(m)
	}
	return g
}

// Generate produces n random statements (satisfied or not); accuracy is
// the satisfied fraction.
func (r *Random) Generate(n int) []rl.Generated {
	out := make([]rl.Generated, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.generateOne())
	}
	return out
}

// GenerateSatisfied keeps sampling until n satisfied statements are found
// or maxAttempts walks have run.
func (r *Random) GenerateSatisfied(n, maxAttempts int) ([]rl.Generated, int) {
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		g := r.generateOne()
		attempts++
		if g.Satisfied {
			out = append(out, g)
		}
	}
	return out, attempts
}
