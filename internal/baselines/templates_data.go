package baselines

import (
	"fmt"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/rl"
)

// DatasetTemplates returns the fixed benchmark-derived template set for a
// dataset, mirroring §7.1: "the query templates are constructed from the
// provided templates of the three benchmarks". Shapes follow the
// benchmarks' canonical queries restricted to the supported grammar; the
// literal constants are the tweakable slots. An empty slice means no
// curated set exists for the name.
func DatasetTemplates(dataset string) []string {
	switch dataset {
	case "tpch":
		return tpchTemplates
	case "job":
		return jobTemplates
	case "xuetang":
		return xuetangTemplates
	default:
		return nil
	}
}

// tpchTemplates echo TPC-H Q1/Q3/Q5/Q6/Q10-style selection shapes.
var tpchTemplates = []string{
	"SELECT lineitem.l_orderkey FROM lineitem WHERE lineitem.l_shipdate < 9000 AND lineitem.l_discount > 0.05",
	"SELECT orders.o_orderkey FROM orders JOIN customer ON orders.o_custkey = customer.c_custkey WHERE customer.c_acctbal > 0 AND orders.o_totalprice < 100000",
	"SELECT lineitem.l_linekey FROM lineitem JOIN orders ON lineitem.l_orderkey = orders.o_orderkey WHERE orders.o_orderdate < 9500 AND lineitem.l_quantity > 25",
	"SELECT part.p_partkey FROM part WHERE part.p_size < 25 AND part.p_retailprice > 1500",
	"SELECT supplier.s_suppkey FROM supplier WHERE supplier.s_acctbal > 5000",
	"SELECT customer.c_custkey FROM customer WHERE customer.c_acctbal < 3000 AND customer.c_mktsegment = 'BUILDING'",
	"SELECT partsupp.ps_key FROM partsupp JOIN part ON partsupp.ps_partkey = part.p_partkey WHERE partsupp.ps_supplycost < 500 AND part.p_size > 10",
	"SELECT lineitem.l_linekey FROM lineitem WHERE lineitem.l_extendedprice > 50000 AND lineitem.l_tax < 0.04",
	"SELECT orders.o_orderkey FROM orders WHERE orders.o_totalprice > 200000",
	"SELECT nation.n_nationkey FROM nation JOIN region ON nation.n_regionkey = region.r_regionkey WHERE nation.n_regionkey > 2",
}

// jobTemplates echo the Join Order Benchmark's SPJ shapes.
var jobTemplates = []string{
	"SELECT title.id FROM title WHERE title.production_year > 2000 AND title.imdb_id < 5000",
	"SELECT cast_info.id FROM cast_info JOIN title ON cast_info.movie_id = title.id WHERE title.production_year < 1990 AND cast_info.nr_order < 10",
	"SELECT movie_info.id FROM movie_info JOIN title ON movie_info.movie_id = title.id WHERE title.production_year > 1980",
	"SELECT movie_keyword.id FROM movie_keyword JOIN keyword ON movie_keyword.keyword_id = keyword.id WHERE movie_keyword.movie_id < 1000",
	"SELECT name.id FROM name WHERE name.imdb_id < 2000 AND name.gender = 'f'",
	"SELECT movie_companies.id FROM movie_companies JOIN company_name ON movie_companies.company_id = company_name.id WHERE movie_companies.company_type_id < 2",
	"SELECT movie_info_idx.id FROM movie_info_idx WHERE movie_info_idx.info > 5.0",
	"SELECT cast_info.id FROM cast_info WHERE cast_info.role_id < 4 AND cast_info.nr_order > 50",
	"SELECT aka_title.id FROM aka_title WHERE aka_title.production_year > 2000",
	"SELECT person_info.id FROM person_info JOIN name ON person_info.person_id = name.id WHERE name.imdb_id > 5000",
}

// xuetangTemplates echo the OLTP workload of the XueTang benchmark.
var xuetangTemplates = []string{
	"SELECT enrollment.id FROM enrollment WHERE enrollment.progress > 0.5 AND enrollment.enroll_date < 18600",
	"SELECT video_watch.id FROM video_watch JOIN video ON video_watch.video_id = video.id WHERE video.duration > 1800 AND video_watch.seconds < 600",
	"SELECT submission.id FROM submission WHERE submission.score < 5 AND submission.attempt > 2",
	"SELECT user.id FROM user WHERE user.age < 25",
	"SELECT course.id FROM course JOIN teacher ON course.teacher_id = teacher.id WHERE course.weeks > 10",
	"SELECT forum_post.id FROM forum_post WHERE forum_post.length > 1000",
	"SELECT certificate.id FROM certificate JOIN course ON certificate.course_id = course.id WHERE course.weeks < 8",
	"SELECT rating.id FROM rating WHERE rating.stars > 3",
	"SELECT enrollment.id FROM enrollment JOIN user ON enrollment.user_id = user.id WHERE user.age > 30 AND enrollment.progress < 0.3",
	"SELECT exercise.id FROM exercise WHERE exercise.points > 5.0",
}

// NewTemplateGenFromSQL builds the Template baseline from SQL template
// texts (the faithful, fixed-template variant of [10]; NewTemplateGen's
// FSM-synthesized skeletons are the stronger "Template+" ablation).
func NewTemplateGenFromSQL(env *rl.Env, constraint rl.Constraint, sqls []string, seed int64) (*TemplateGen, error) {
	g := &TemplateGen{
		Env:           env,
		Constraint:    constraint,
		MaxClimbSteps: 40,
		rng:           newSeededRand(seed),
	}
	for _, text := range sqls {
		sel, err := parser.ParseSelect(text)
		if err != nil {
			return nil, fmt.Errorf("baselines: template %q: %w", text, err)
		}
		// Validate against the environment before accepting.
		if _, err := env.Est.EstimateSelect(sel); err != nil {
			return nil, fmt.Errorf("baselines: template %q: %w", text, err)
		}
		tpl := g.buildTemplate(sel)
		if tpl == nil {
			return nil, fmt.Errorf("baselines: template %q has no tweakable slots", text)
		}
		g.Templates = append(g.Templates, tpl)
	}
	if len(g.Templates) == 0 {
		return nil, fmt.Errorf("baselines: no usable templates")
	}
	return g, nil
}
