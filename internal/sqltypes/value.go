// Package sqltypes defines the value model shared by the storage engine,
// executor, estimator and SQL generator: typed scalar values, NULL handling,
// ordering and hashing.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the column datatypes supported by the engine. The paper
// (§4.1) distinguishes numerical, categorical and string data; categorical
// columns are string-valued with a small domain and are tagged so the token
// vocabulary can enumerate them exhaustively instead of sampling.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return "INVALID"
	}
}

// Numeric reports whether the kind supports arithmetic aggregation
// (SUM/AVG) and range histograms.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a scalar SQL value. The zero Value is NULL.
//
// Value is a small immutable struct passed by value throughout the engine;
// it deliberately avoids interface{} so that scans do not allocate.
type Value struct {
	kind Kind // KindInvalid means NULL
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value. Negative zero is normalized to zero:
// SQL has no -0, and the IEEE sign bit would otherwise leak into SQL()
// as "-0", which the lexer reads back as the integer 0 — breaking the
// render/parse fixed point the conformance oracle checks.
func NewFloat(v float64) Value {
	if v == 0 {
		v = 0
	}
	return Value{kind: KindFloat, f: v}
}

// NewString returns a STRING value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindInvalid }

// Kind returns the datatype of v (KindInvalid for NULL).
func (v Value) Kind() Kind { return v.kind }

// Int returns the int64 payload; valid only when Kind()==KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the float64 payload; valid only when Kind()==KindFloat.
func (v Value) Float() float64 { return v.f }

// Str returns the string payload; valid only when Kind()==KindString.
func (v Value) Str() string { return v.s }

// AsFloat coerces a numeric value to float64. NULL and strings return 0,
// false.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Compare orders two values. NULL sorts before everything; ints and floats
// compare numerically with each other; strings compare lexicographically.
// Comparing a string against a number returns an undefined but stable order
// (kind order) so sorting mixed columns never panics; the FSM's type checks
// keep such comparisons out of generated queries.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s)
	}
	// Mixed string/number: order by kind for stability.
	switch {
	case a.kind < b.kind:
		return -1
	case a.kind > b.kind:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL is not equal to anything, including NULL).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a 64-bit hash usable for hash joins and group-by. Numeric
// values that compare equal hash equal (1 and 1.0 share a hash).
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.kind {
	case KindInvalid:
		mix(0)
	case KindInt, KindFloat:
		f, _ := v.AsFloat()
		// Normalize -0 to +0 so they hash identically.
		if f == 0 {
			f = 0
		}
		bits := math.Float64bits(f)
		for s := 0; s < 64; s += 8 {
			mix(byte(bits >> s))
		}
	case KindString:
		mix(1)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	}
	return h
}

// String renders v for debugging ("NULL", "42", "3.5", `abc`).
func (v Value) String() string {
	switch v.kind {
	case KindInvalid:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// SQL renders v as a SQL literal (strings quoted and escaped).
func (v Value) SQL() string {
	switch v.kind {
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.String()
	}
}
