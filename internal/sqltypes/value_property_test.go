// Property tests for the Value ⇄ SQL-literal contract. They live in an
// external test package because the referee is the parser's lexer, and
// parser imports sqltypes.
package sqltypes_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqltypes"
)

// roundTrips asserts v.SQL() lexes as one literal, keeps its type class,
// and compares equal to v.
func roundTrips(t *testing.T, v sqltypes.Value) {
	t.Helper()
	got, err := parser.LexValue(v.SQL())
	if err != nil {
		t.Errorf("%#v renders as %q which does not lex as a literal: %v", v, v.SQL(), err)
		return
	}
	wantString := v.Kind() == sqltypes.KindString
	if gotString := got.Kind() == sqltypes.KindString; gotString != wantString {
		t.Errorf("%#v -> %q -> %#v: type class flipped", v, v.SQL(), got)
		return
	}
	if sqltypes.Compare(got, v) != 0 {
		t.Errorf("%#v -> %q -> %#v: values unequal", v, v.SQL(), got)
	}
}

func TestIntLiteralsRoundTrip(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 42, -95, math.MaxInt64, math.MinInt64} {
		roundTrips(t, sqltypes.NewInt(i))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		roundTrips(t, sqltypes.NewInt(int64(rng.Uint64())))
	}
}

// TestFloatLiteralsRoundTrip covers finite floats only: the datasets never
// contain NaN/Inf, and their renderings ("NaN", "+Inf") are not literals —
// the lexer rejecting them is the desired behaviour.
func TestFloatLiteralsRoundTrip(t *testing.T) {
	// math.Copysign(0, -1) is IEEE negative zero — the constant -0.0 folds
	// to +0 in Go. It regressed once: -0.0 rendered as "-0", which lexes
	// back as the integer 0 and broke the render fixed point.
	for _, f := range []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -2.25, 95.0, 1e21, -1e21, 1e-7,
		6.02214076e23, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	} {
		roundTrips(t, sqltypes.NewFloat(f))
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		roundTrips(t, sqltypes.NewFloat(f))
	}
	// A float that renders without '.', 'e' or 'E' lexes back as an int;
	// numeric comparison must still see them as equal.
	roundTrips(t, sqltypes.NewFloat(5))
}

func TestStringLiteralsRoundTrip(t *testing.T) {
	for _, s := range []string{
		"", "a", "it's", "''", "'", "A%b_c", "line\nbreak", "tab\t",
		"ünïcödé – 日本語", "trailing space ", " leading", "back\\slash",
		"95", "-1.5e-7", "SELECT", "quote''quote''",
	} {
		roundTrips(t, sqltypes.NewString(s))
	}
	rng := rand.New(rand.NewSource(3))
	alphabet := []rune("abz019'%_ .,()<>=\\\n\tπ日")
	for i := 0; i < 5000; i++ {
		var sb strings.Builder
		for n := rng.Intn(24); n > 0; n-- {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		roundTrips(t, sqltypes.NewString(sb.String()))
	}
}

// TestNonLiteralsRejected pins LexValue's gate: multi-token or non-literal
// input must not pass for a value.
func TestNonLiteralsRejected(t *testing.T) {
	for _, s := range []string{"", "1 2", "ident", "'open", "NaN", "+Inf", "(1)", "1,2"} {
		if v, err := parser.LexValue(s); err == nil {
			t.Errorf("LexValue(%q) accepted as %#v, want error", s, v)
		}
	}
}
