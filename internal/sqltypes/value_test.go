package sqltypes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt:     "INT",
		KindFloat:   "FLOAT",
		KindString:  "STRING",
		KindInvalid: "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNumericKinds(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("INT and FLOAT must be numeric")
	}
	if KindString.Numeric() || KindInvalid.Numeric() {
		t.Error("STRING and INVALID must not be numeric")
	}
}

func TestNullSemantics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if Equal(Null, Null) {
		t.Error("NULL = NULL must be false (SQL three-valued logic)")
	}
	if Equal(Null, NewInt(0)) || Equal(NewInt(0), Null) {
		t.Error("NULL must not equal 0")
	}
	if Compare(Null, NewInt(-1_000_000)) != -1 {
		t.Error("NULL must sort before any value")
	}
	if Compare(NewString(""), Null) != 1 {
		t.Error("values must sort after NULL")
	}
	if Compare(Null, Null) != 0 {
		t.Error("NULL must compare equal to NULL for sort stability")
	}
}

func TestCompareNumericCross(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Error("2 and 2.0 must compare equal")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if Compare(NewFloat(3.1), NewInt(3)) != 1 {
		t.Error("3.1 > 3")
	}
}

func TestCompareStrings(t *testing.T) {
	if Compare(NewString("abc"), NewString("abd")) != -1 {
		t.Error(`"abc" < "abd"`)
	}
	if Compare(NewString("b"), NewString("b")) != 0 {
		t.Error(`"b" == "b"`)
	}
	if Compare(NewString("b"), NewString("a")) != 1 {
		t.Error(`"b" > "a"`)
	}
}

func TestCompareMixedStable(t *testing.T) {
	a, b := NewInt(1), NewString("1")
	if Compare(a, b)+Compare(b, a) != 0 {
		t.Error("mixed-kind compare must be antisymmetric")
	}
}

func TestHashEqualValuesEqualHashes(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("7 and 7.0 must hash equal (join keys across INT/FLOAT)")
	}
	if NewString("x").Hash() == NewString("y").Hash() {
		t.Error("distinct short strings should not collide in this test")
	}
	if NewInt(0).Hash() != NewFloat(0).Hash() {
		t.Error("0 and 0.0 must hash equal")
	}
}

func TestStringAndSQLRendering(t *testing.T) {
	cases := []struct {
		v        Value
		str, sql string
	}{
		{Null, "NULL", "NULL"},
		{NewInt(42), "42", "42"},
		{NewFloat(3.5), "3.5", "3.5"},
		{NewString("ab'c"), "ab'c", "'ab''c'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if got := c.v.SQL(); got != c.sql {
			t.Errorf("SQL() = %q, want %q", got, c.sql)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := NewInt(5).AsFloat(); !ok || f != 5 {
		t.Error("int AsFloat")
	}
	if f, ok := NewFloat(2.25).AsFloat(); !ok || f != 2.25 {
		t.Error("float AsFloat")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("string AsFloat must fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("NULL AsFloat must fail")
	}
}

// randValue generates an arbitrary non-null value for property tests.
func randValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return NewInt(r.Int63n(2000) - 1000)
	case 1:
		return NewFloat(float64(r.Int63n(2000)-1000) / 4)
	default:
		b := make([]byte, r.Intn(8))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return NewString(string(b))
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randValue(r), randValue(r)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randValue(r), randValue(r), randValue(r)
		// If a<=b and b<=c then a<=c.
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randValue(r)
		b := a
		return a.Hash() == b.Hash() && (!Equal(a, b) || a.Hash() == b.Hash())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
