package bench

import (
	"context"
	"testing"

	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/rl"
)

func quickSetup(t testing.TB) *Setup {
	t.Helper()
	s, err := NewSetup("tpch", 0.1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tinyBudget() Budget {
	return Budget{
		NQueries:         20,
		NSatisfied:       3,
		MaxAttempts:      120,
		TrainEpochs:      4,
		EpisodesPerEpoch: 10,
		Templates:        6,
	}
}

func TestNewSetupErrors(t *testing.T) {
	if _, err := NewSetup("nope", 1, 10, 1); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestGridHelpers(t *testing.T) {
	grid := CardinalityGrid()
	cs := GridConstraints(rl.Cardinality, grid)
	if len(cs) != len(grid.Points)+len(grid.Ranges) {
		t.Fatalf("constraints = %d", len(cs))
	}
	for i, c := range cs {
		if c.Metric != rl.Cardinality {
			t.Errorf("constraint %d wrong metric", i)
		}
	}
	if Label(rl.PointConstraint(rl.Cost, 100)) != "100" {
		t.Error("point label")
	}
	if Label(rl.RangeConstraint(rl.Cost, 1, 2)) != "[1,2]" {
		t.Error("range label")
	}
}

func TestExtrapolate(t *testing.T) {
	if extrapolate(10, 5, 5) != 10 {
		t.Error("complete runs must not scale")
	}
	if extrapolate(10, 1, 5) != 50 {
		t.Error("partial runs scale linearly")
	}
	if extrapolate(2, 0, 5) != 10 {
		t.Error("empty runs scale by the target")
	}
}

func TestRunAccuracyShape(t *testing.T) {
	s := quickSetup(t)
	grid := ConstraintGrid{Points: []float64{50}, Ranges: [][2]float64{{10, 200}}}
	rows, err := RunAccuracy(context.Background(), s, rl.Cardinality, grid, tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, m := range []string{MethodSQLSmith, MethodTemplate, MethodLearned} {
			acc, ok := r.Acc[m]
			if !ok {
				t.Fatalf("missing method %s", m)
			}
			if acc < 0 || acc > 1 {
				t.Errorf("%s acc %v out of range", m, acc)
			}
		}
	}
}

func TestRunEfficiencyShape(t *testing.T) {
	s := quickSetup(t)
	grid := ConstraintGrid{Ranges: [][2]float64{{1, 500}}}
	rows, err := RunEfficiency(context.Background(), s, rl.Cardinality, grid, tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, m := range []string{MethodSQLSmith, MethodTemplate, MethodLearned} {
		if rows[0].Seconds[m] <= 0 {
			t.Errorf("%s time must be positive", m)
		}
	}
}

func TestRunRLCompareShape(t *testing.T) {
	s := quickSetup(t)
	grid := ConstraintGrid{Ranges: [][2]float64{{1, 500}, {1, 800}}}
	res, err := RunRLCompare(context.Background(), s, grid, tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Times) != 2 {
		t.Fatalf("rows/times = %d/%d", len(res.Rows), len(res.Times))
	}
	if len(res.TraceAC) == 0 || len(res.TraceREINFORCE) == 0 {
		t.Error("missing training traces")
	}
	for _, r := range res.Rows {
		if _, ok := r.Acc["REINFORCE"]; !ok {
			t.Error("missing REINFORCE accuracy")
		}
		if _, ok := r.Acc["LearnedSQLGen"]; !ok {
			t.Error("missing LearnedSQLGen accuracy")
		}
	}
}

func TestRunMetaCompareShape(t *testing.T) {
	s := quickSetup(t)
	domain := meta.Domain{Metric: rl.Cardinality, Lo: 0, Hi: 400, K: 2}
	newTasks := []rl.Constraint{rl.RangeConstraint(rl.Cardinality, 50, 150)}
	res, err := RunMetaCompare(context.Background(), s, domain, newTasks, tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Times) != 1 {
		t.Fatal("row shape")
	}
	for _, m := range []string{"Scratch", "AC-extend", "MetaCritic"} {
		if _, ok := res.Rows[0].Acc[m]; !ok {
			t.Errorf("missing %s", m)
		}
		if res.Times[0].Seconds[m] <= 0 {
			t.Errorf("%s time must be positive", m)
		}
	}
	if len(res.TraceScratch) == 0 || len(res.TraceACExtend) == 0 || len(res.TraceMeta) == 0 {
		t.Error("missing adaptation traces")
	}
}

func TestRunDistributionShape(t *testing.T) {
	s := quickSetup(t)
	dist, err := RunDistribution(context.Background(), s, rl.RangeConstraint(rl.Cost, 1, 1e9), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if dist.Total != tinyBudget().NQueries {
		t.Fatalf("total = %d", dist.Total)
	}
	// ByType combines the SELECT-structure sample with the per-family DML
	// samples, so it can exceed Total (the structural sample size).
	if dist.ByType["select"] != dist.Total {
		t.Errorf("select count = %d, want %d", dist.ByType["select"], dist.Total)
	}
	if dist.NestedFraction < 0 || dist.NestedFraction > 1 ||
		dist.AggregateFraction < 0 || dist.AggregateFraction > 1 {
		t.Error("percentages out of range")
	}
	if dist.DistinctSkeletons < 1 || dist.DistinctSkeletons > dist.Total {
		t.Errorf("skeletons = %d", dist.DistinctSkeletons)
	}
	lengths := 0
	for _, n := range dist.TokenLength {
		lengths += n
	}
	if lengths != dist.Total {
		t.Error("token-length histogram incomplete")
	}
}

func TestRunComplexShape(t *testing.T) {
	s := quickSetup(t)
	rows, err := RunComplex(context.Background(), s, rl.RangeConstraint(rl.Cost, 1, 1e9), []int{2, 4}, tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 kinds × 2 targets
		t.Fatalf("rows = %d", len(rows))
	}
	kinds := map[string]int{}
	for _, r := range rows {
		kinds[r.Kind]++
		if r.Seconds <= 0 {
			t.Errorf("%s/%d time must be positive", r.Kind, r.M)
		}
	}
	for _, k := range []string{"nested", "insert", "delete"} {
		if kinds[k] != 2 {
			t.Errorf("kind %s rows = %d", k, kinds[k])
		}
	}
}

func TestRunSampleSizeShape(t *testing.T) {
	rows, err := RunSampleSize(context.Background(), "tpch", 0.1, 1, []int{3, 10}, rl.RangeConstraint(rl.Cardinality, 1, 500), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 || r.Accuracy < 0 || r.Accuracy > 1 {
			t.Errorf("bad row %+v", r)
		}
	}
	if _, err := RunSampleSize(context.Background(), "nope", 1, 1, []int{3}, rl.PointConstraint(rl.Cardinality, 5), tinyBudget()); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestRunRewardAblationShape(t *testing.T) {
	s := quickSetup(t)
	rows, err := RunRewardAblation(context.Background(), s, rl.RangeConstraint(rl.Cardinality, 1, 500), tinyBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		if r.Accuracy < 0 || r.Accuracy > 1 || r.Seconds <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	for _, v := range []string{"shaped", "dense", "terminal", "no-entropy"} {
		if !names[v] {
			t.Errorf("missing variant %s", v)
		}
	}
}
