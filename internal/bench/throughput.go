package bench

import (
	"context"

	"learnedsqlgen/internal/rl"
)

// ThroughputRow is one (workers, estimator cache, prefix cache)
// configuration of the rollout-engine measurement: train a fixed episode
// budget, then generate NQueries statements, and report the sustained
// episode rate plus how much work the two caches absorbed.
type ThroughputRow struct {
	Workers        int
	CacheEnabled   bool // estimator memoization
	PrefixEnabled  bool // actor prefix-state cache (inference rollouts)
	Episodes       uint64
	Seconds        float64
	EpisodesPerSec float64
	// Speedup is EpisodesPerSec relative to the first workersList entry
	// with the same cache settings (pass workers ascending, starting at 1,
	// for the conventional reading).
	Speedup        float64
	CacheHitRate   float64
	EstimatorCalls uint64
	PrefixHitRate  float64
}

// RunThroughput measures rollout throughput for every (workers, estimator
// cache, prefix cache) combination on one constraint. Each row trains a
// fresh trainer on a fresh environment (so cache contents and counters
// never leak between rows) for episodes = b.TrainEpochs ×
// b.EpisodesPerEpoch, then generates b.NQueries statements — the phase the
// prefix-state cache accelerates. Because rollouts are deterministic in
// the episode index, every row performs identical episode work and emits
// identical queries — the rows differ only in wall-clock and cache
// traffic.
func RunThroughput(ctx context.Context, s *Setup, c rl.Constraint, b Budget, workersList []int) ([]ThroughputRow, error) {
	var out []ThroughputRow
	for _, cache := range []bool{false, true} {
		for _, prefix := range []bool{false, true} {
			var baseline float64
			for _, w := range workersList {
				env := rl.NewEnv(s.Env.DB, s.Env.Vocab, s.Env.Cfg)
				if !cache {
					env.DisableCache()
				}
				cfg := s.rlConfig()
				cfg.Workers = w
				if prefix {
					cfg.PrefixCacheSize = 0 // default-sized trie
				} else {
					cfg.PrefixCacheSize = -1
				}
				tr := rl.NewTrainer(env, c, cfg)
				if _, err := tr.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
					return out, ctxErr(ctx)
				}
				if _, err := tr.GenerateContext(ctx, b.NQueries); err != nil {
					return out, ctxErr(ctx)
				}
				st := tr.Stats()
				row := ThroughputRow{
					Workers:        w,
					CacheEnabled:   cache,
					PrefixEnabled:  prefix,
					Episodes:       st.Episodes,
					Seconds:        st.RolloutSeconds,
					EpisodesPerSec: st.EpisodesPerSec,
					CacheHitRate:   st.CacheHitRate,
					EstimatorCalls: st.EstimatorCalls,
					PrefixHitRate:  st.PrefixHitRate,
				}
				if baseline == 0 {
					baseline = st.EpisodesPerSec
				}
				if baseline > 0 {
					row.Speedup = st.EpisodesPerSec / baseline
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}
