package bench

import (
	"learnedsqlgen/internal/rl"
)

// ThroughputRow is one (workers, cache) configuration of the rollout
// -engine measurement: train a fixed episode budget and report the
// sustained episode rate plus the estimator cache's absorption.
type ThroughputRow struct {
	Workers        int
	CacheEnabled   bool
	Episodes       uint64
	Seconds        float64
	EpisodesPerSec float64
	// Speedup is EpisodesPerSec relative to the first workersList entry
	// with the same cache setting (pass workers ascending, starting at 1,
	// for the conventional reading).
	Speedup        float64
	CacheHitRate   float64
	EstimatorCalls uint64
}

// RunThroughput measures training throughput for every (workers, cache)
// combination on one constraint. Each row trains a fresh trainer on a
// fresh environment (so cache contents and counters never leak between
// rows) for episodes = b.TrainEpochs × b.EpisodesPerEpoch. Because
// rollouts are deterministic in the episode index, every row performs
// identical work — the rows differ only in wall-clock and cache traffic.
func RunThroughput(s *Setup, c rl.Constraint, b Budget, workersList []int) []ThroughputRow {
	var out []ThroughputRow
	for _, cache := range []bool{false, true} {
		var baseline float64
		for _, w := range workersList {
			env := rl.NewEnv(s.Env.DB, s.Env.Vocab, s.Env.Cfg)
			if !cache {
				env.DisableCache()
			}
			cfg := s.rlConfig()
			cfg.Workers = w
			tr := rl.NewTrainer(env, c, cfg)
			tr.Train(b.TrainEpochs, b.EpisodesPerEpoch)
			st := tr.Stats()
			row := ThroughputRow{
				Workers:        w,
				CacheEnabled:   cache,
				Episodes:       st.Episodes,
				Seconds:        st.RolloutSeconds,
				EpisodesPerSec: st.EpisodesPerSec,
				CacheHitRate:   st.CacheHitRate,
				EstimatorCalls: st.EstimatorCalls,
			}
			if baseline == 0 {
				baseline = st.EpisodesPerSec
			}
			if baseline > 0 {
				row.Speedup = st.EpisodesPerSec / baseline
			}
			out = append(out, row)
		}
	}
	return out
}
