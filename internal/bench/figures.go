package bench

import (
	"context"

	"learnedsqlgen/internal/baselines"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/workload"
)

// AccuracyRow is one x-axis position of Figures 4 and 5.
type AccuracyRow struct {
	Constraint string
	Acc        map[string]float64 // method → accuracy ∈ [0,1]
}

// RunAccuracy regenerates Figure 4 (metric = Cardinality) or Figure 5
// (metric = Cost) for one dataset: for every constraint in the grid it
// generates b.NQueries with each method and reports the satisfied
// fraction. A done ctx stops the sweep at the next method boundary and
// returns the completed rows with the cancellation cause.
func RunAccuracy(ctx context.Context, s *Setup, metric rl.Metric, grid ConstraintGrid, b Budget) ([]AccuracyRow, error) {
	var rows []AccuracyRow
	for _, c := range GridConstraints(metric, grid) {
		row := AccuracyRow{Constraint: Label(c), Acc: map[string]float64{}}

		rnd := baselines.NewRandom(s.Env, c, s.Seed)
		gen, err := rnd.GenerateContext(ctx, b.NQueries)
		if err != nil {
			return rows, ctxErr(ctx)
		}
		row.Acc[MethodSQLSmith] = accuracy(gen)

		tpl := s.templateBaseline(c, b)
		gen, err = tpl.GenerateContext(ctx, b.NQueries)
		if err != nil {
			return rows, ctxErr(ctx)
		}
		row.Acc[MethodTemplate] = accuracy(gen)

		tr, err := s.trainLearned(ctx, c, b)
		if err != nil {
			return rows, ctxErr(ctx)
		}
		gen, err = tr.GenerateContext(ctx, b.NQueries)
		if err != nil {
			return rows, ctxErr(ctx)
		}
		row.Acc[MethodLearned] = accuracy(gen)

		rows = append(rows, row)
	}
	return rows, nil
}

// randomBaseline builds the SQLSmith-style baseline for a constraint.
func (s *Setup) randomBaseline(c rl.Constraint) *baselines.Random {
	return baselines.NewRandom(s.Env, c, s.Seed)
}

// templateBaseline prefers the dataset's fixed benchmark-derived template
// set (the paper's setup); datasets without one fall back to synthesized
// skeletons.
func (s *Setup) templateBaseline(c rl.Constraint, b Budget) *baselines.TemplateGen {
	if sqls := baselines.DatasetTemplates(s.Dataset); len(sqls) > 0 {
		if g, err := baselines.NewTemplateGenFromSQL(s.Env, c, sqls, s.Seed); err == nil {
			return g
		}
	}
	return baselines.NewTemplateGen(s.Env, c, b.Templates, s.Seed)
}

// TimeRow is one x-axis position of Figures 6 and 7.
type TimeRow struct {
	Constraint string
	Seconds    map[string]float64 // method → seconds to NSatisfied queries
	Found      map[string]int     // satisfied queries actually found
}

// RunEfficiency regenerates Figure 6 (Cardinality) or Figure 7 (Cost):
// wall-clock time to produce b.NSatisfied satisfied queries, including
// LearnedSQLGen's training phase (the paper's generation-time metric).
// Capped baseline runs are extrapolated linearly. A done ctx stops the
// sweep and returns the completed rows with the cancellation cause.
func RunEfficiency(ctx context.Context, s *Setup, metric rl.Metric, grid ConstraintGrid, b Budget) ([]TimeRow, error) {
	var rows []TimeRow
	for _, c := range GridConstraints(metric, grid) {
		row := TimeRow{Constraint: Label(c),
			Seconds: map[string]float64{}, Found: map[string]int{}}

		var found []rl.Generated
		elapsed := timeIt(func() {
			rnd := baselines.NewRandom(s.Env, c, s.Seed)
			found, _, _ = rnd.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts)
		})
		row.Seconds[MethodSQLSmith] = extrapolate(elapsed, len(found), b.NSatisfied)
		row.Found[MethodSQLSmith] = len(found)
		if err := ctxErr(ctx); err != nil {
			return rows, err
		}

		elapsed = timeIt(func() {
			tpl := s.templateBaseline(c, b)
			found, _, _ = tpl.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts/4)
		})
		row.Seconds[MethodTemplate] = extrapolate(elapsed, len(found), b.NSatisfied)
		row.Found[MethodTemplate] = len(found)
		if err := ctxErr(ctx); err != nil {
			return rows, err
		}

		elapsed = timeIt(func() {
			if tr, err := s.trainLearned(ctx, c, b); err == nil {
				found, _, _ = tr.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts)
			} else {
				found = nil
			}
		})
		row.Seconds[MethodLearned] = extrapolate(elapsed, len(found), b.NSatisfied)
		row.Found[MethodLearned] = len(found)
		if err := ctxErr(ctx); err != nil {
			return rows, err
		}

		rows = append(rows, row)
	}
	return rows, nil
}

// RLCompareResult holds Figure 8: accuracy and time per range constraint
// for the actor–critic and REINFORCE agents, plus average-reward training
// traces.
type RLCompareResult struct {
	Rows           []AccuracyRow   // accuracy per constraint (Fig 8a)
	Times          []TimeRow       // time to NSatisfied (Fig 8b)
	TraceAC        []rl.EpochStats // Fig 8c
	TraceREINFORCE []rl.EpochStats
}

// RunRLCompare regenerates Figure 8 on one dataset with the range
// cardinality grid. Both agents train under the paper's dense reward
// scheme: Figure 8's claim is that the critic's baseline tames the high
// variance of summed per-prefix rewards (§4.3), which only manifests
// under that scheme — with this reproduction's default potential-shaped
// rewards, returns are already low-variance and REINFORCE largely catches
// up (noted in EXPERIMENTS.md).
func RunRLCompare(ctx context.Context, s *Setup, grid ConstraintGrid, b Budget) (RLCompareResult, error) {
	res := RLCompareResult{}
	cfg := s.rlConfig()
	cfg.Mode = rl.RewardDense
	cfg.EntropyWeight = 0.01 // the paper's λ, tuned for dense returns
	for _, r := range grid.Ranges {
		c := rl.RangeConstraint(rl.Cardinality, r[0], r[1])
		arow := AccuracyRow{Constraint: Label(c), Acc: map[string]float64{}}
		trow := TimeRow{Constraint: Label(c),
			Seconds: map[string]float64{}, Found: map[string]int{}}

		var found []rl.Generated
		elapsed := timeIt(func() {
			ac := rl.NewTrainer(s.Env, c, cfg)
			if _, err := ac.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
				return
			}
			gen, err := ac.GenerateContext(ctx, b.NQueries)
			if err != nil {
				return
			}
			arow.Acc["LearnedSQLGen"] = accuracy(gen)
			found, _, _ = ac.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["LearnedSQLGen"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["LearnedSQLGen"] = len(found)
		if err := ctxErr(ctx); err != nil {
			return res, err
		}

		found = nil
		elapsed = timeIt(func() {
			rf := rl.NewReinforce(s.Env, c, cfg)
			if _, err := rf.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
				return
			}
			gen, err := rf.GenerateContext(ctx, b.NQueries)
			if err != nil {
				return
			}
			arow.Acc["REINFORCE"] = accuracy(gen)
			found, _, _ = rf.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["REINFORCE"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["REINFORCE"] = len(found)
		if err := ctxErr(ctx); err != nil {
			return res, err
		}

		res.Rows = append(res.Rows, arow)
		res.Times = append(res.Times, trow)
	}

	// Training traces (Fig 8c) on the second range, as in the paper's
	// [1k,4k] pick.
	traceRange := grid.Ranges[1]
	c := rl.RangeConstraint(rl.Cardinality, traceRange[0], traceRange[1])
	ac := rl.NewTrainer(s.Env, c, cfg)
	var err error
	if res.TraceAC, err = ac.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
		return res, ctxErr(ctx)
	}
	rf := rl.NewReinforce(s.Env, c, cfg)
	if res.TraceREINFORCE, err = rf.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
		return res, ctxErr(ctx)
	}
	return res, nil
}

// MetaResult holds Figure 9: per-new-constraint accuracy and adaptation
// time for Scratch, AC-extend and MetaCritic, plus adaptation traces.
type MetaResult struct {
	Rows          []AccuracyRow
	Times         []TimeRow
	TraceScratch  []rl.EpochStats // Fig 9c
	TraceACExtend []rl.EpochStats
	TraceMeta     []rl.EpochStats
}

// RunMetaCompare regenerates Figure 9: pre-train on a domain split into K
// tasks, then adapt to unseen sub-ranges. Reported time covers adaptation
// training plus generation (pre-training is the shared, amortized cost the
// paper also excludes from the per-task comparison).
func RunMetaCompare(ctx context.Context, s *Setup, domain meta.Domain, newTasks []rl.Constraint, b Budget) (MetaResult, error) {
	res := MetaResult{}
	cfg := s.rlConfig()

	mt := meta.NewMetaTrainer(s.Env, domain, cfg)
	if _, err := mt.PretrainContext(ctx, b.TrainEpochs/3, b.EpisodesPerEpoch); err != nil {
		return res, ctxErr(ctx)
	}
	acx := meta.NewACExtend(s.Env, domain, cfg)
	if _, err := acx.PretrainContext(ctx, b.TrainEpochs/3, b.EpisodesPerEpoch); err != nil {
		return res, ctxErr(ctx)
	}

	// Adaptation epochs: the meta strategies get a reduced budget — the
	// point of §6 is that they need fewer new-task episodes.
	adaptEpochs := b.TrainEpochs / 2

	for _, c := range newTasks {
		arow := AccuracyRow{Constraint: Label(c), Acc: map[string]float64{}}
		trow := TimeRow{Constraint: Label(c),
			Seconds: map[string]float64{}, Found: map[string]int{}}

		var found []rl.Generated
		elapsed := timeIt(func() {
			sc := rl.NewTrainer(s.Env, c, cfg)
			if _, err := sc.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
				return
			}
			gen, err := sc.GenerateContext(ctx, b.NQueries)
			if err != nil {
				return
			}
			arow.Acc["Scratch"] = accuracy(gen)
			found, _, _ = sc.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["Scratch"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["Scratch"] = len(found)
		if err := ctxErr(ctx); err != nil {
			return res, err
		}

		found = nil
		elapsed = timeIt(func() {
			if _, err := acx.AdaptEpochContext(ctx, c, adaptEpochs*b.EpisodesPerEpoch); err != nil {
				return
			}
			gen, err := acx.GenerateContext(ctx, c, b.NQueries)
			if err != nil {
				return
			}
			arow.Acc["AC-extend"] = accuracy(gen)
			found, _, _ = acx.GenerateSatisfiedContext(ctx, c, b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["AC-extend"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["AC-extend"] = len(found)
		if err := ctxErr(ctx); err != nil {
			return res, err
		}

		found = nil
		elapsed = timeIt(func() {
			ad := mt.Adapt(c)
			if _, err := ad.TrainContext(ctx, adaptEpochs, b.EpisodesPerEpoch); err != nil {
				return
			}
			gen, err := ad.GenerateContext(ctx, b.NQueries)
			if err != nil {
				return
			}
			arow.Acc["MetaCritic"] = accuracy(gen)
			found, _, _ = ad.GenerateSatisfiedContext(ctx, b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["MetaCritic"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["MetaCritic"] = len(found)
		if err := ctxErr(ctx); err != nil {
			return res, err
		}

		res.Rows = append(res.Rows, arow)
		res.Times = append(res.Times, trow)
	}

	// Adaptation traces (Fig 9c) on the first new task.
	c := newTasks[0]
	sc := rl.NewTrainer(s.Env, c, cfg)
	var err error
	if res.TraceScratch, err = sc.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
		return res, ctxErr(ctx)
	}
	for i := 0; i < b.TrainEpochs; i++ {
		st, err := acx.AdaptEpochContext(ctx, c, b.EpisodesPerEpoch)
		if err != nil {
			return res, ctxErr(ctx)
		}
		res.TraceACExtend = append(res.TraceACExtend, st)
	}
	ad := mt.Adapt(c)
	if res.TraceMeta, err = ad.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
		return res, ctxErr(ctx)
	}
	return res, nil
}

// Distribution is the Figure 10 profile (see workload.Profile).
type Distribution = workload.Profile

// RunDistribution regenerates Figure 10: train under one constraint with
// the full grammar (nested + DML) enabled and profile b.NQueries outputs.
// A done ctx aborts with a nil profile and the cancellation cause.
func RunDistribution(ctx context.Context, s *Setup, c rl.Constraint, b Budget) (*Distribution, error) {
	// Subfigures (a)–(d),(f) profile SELECT structure (joins, nesting,
	// aggregation, predicates, lengths) over the SELECT grammar. At micro
	// scale a single DML-enabled policy collapses onto DELETE statements
	// for cost targets (DML reaches any cost band with almost no
	// structure), so the statement-type mix of subfigure (e) is produced
	// separately by per-family generators, the Figure 11 methodology.
	cfg := s.rlConfig()
	cfg.EntropyWeight = 0.01 // the paper's λ: diversity matters here
	tr := rl.NewTrainer(s.Env, c, cfg)
	if _, err := tr.TrainUntilContext(ctx, 0.5, 2, b.TrainEpochs, b.EpisodesPerEpoch); err != nil {
		return nil, ctxErr(ctx)
	}
	gen, err := tr.GenerateContext(ctx, b.NQueries)
	if err != nil {
		return nil, ctxErr(ctx)
	}
	profile := workload.Analyze(gen)

	// Statement-type mix from per-family DML generators (small budget).
	perFamily := b.NQueries / 8
	for _, fam := range []struct {
		kind string
		mod  func(*fsm.Config)
	}{
		{"insert", func(f *fsm.Config) { f.AllowInsert = true; f.DisableSelect = true }},
		{"update", func(f *fsm.Config) { f.AllowUpdate = true; f.DisableSelect = true }},
		{"delete", func(f *fsm.Config) { f.AllowDelete = true; f.DisableSelect = true }},
	} {
		fcfg := s.Env.Cfg
		fam.mod(&fcfg)
		env := rl.NewEnv(s.Env.DB, s.Env.Vocab, fcfg)
		ftr := rl.NewTrainer(env, c, cfg)
		if _, err := ftr.TrainUntilContext(ctx, 0.5, 2, b.TrainEpochs/4, b.EpisodesPerEpoch); err != nil {
			return profile, ctxErr(ctx)
		}
		sat, _, err := ftr.GenerateSatisfiedContext(ctx, perFamily, b.MaxAttempts/4)
		if err != nil {
			return profile, ctxErr(ctx)
		}
		profile.ByType[fam.kind] += len(sat)
	}
	return profile, nil
}

// ComplexRow is one point of Figure 11: seconds to generate m satisfied
// queries of one complex type.
type ComplexRow struct {
	Kind    string // "nested", "insert", "delete"
	M       int
	Seconds float64
	Found   int
}

// RunComplex regenerates Figure 11: for each complex statement kind and
// each target count m, the time to produce m satisfied queries of that
// kind under the cost constraint. A done ctx stops the sweep and returns
// the completed rows with the cancellation cause.
func RunComplex(ctx context.Context, s *Setup, c rl.Constraint, ms []int, b Budget) ([]ComplexRow, error) {
	kinds := []struct {
		name   string
		cfg    func(fsm.Config) fsm.Config
		filter func(sqlast.Statement) bool
	}{
		{"nested",
			func(f fsm.Config) fsm.Config { f.MaxNestDepth = 1; return f },
			func(st sqlast.Statement) bool { return len(sqlast.Subqueries(st)) > 0 }},
		{"insert",
			func(f fsm.Config) fsm.Config { f.AllowInsert = true; f.DisableSelect = true; return f },
			func(st sqlast.Statement) bool { _, ok := st.(*sqlast.Insert); return ok }},
		{"delete",
			func(f fsm.Config) fsm.Config { f.AllowDelete = true; f.DisableSelect = true; return f },
			func(st sqlast.Statement) bool { _, ok := st.(*sqlast.Delete); return ok }},
	}
	var rows []ComplexRow
	for _, k := range kinds {
		env := rl.NewEnv(s.Env.DB, s.Env.Vocab, k.cfg(s.Env.Cfg))
		// One trained model per kind; m sweeps reuse it like the paper's
		// x-axis sweeps a single trained generator. λ = 0.01 with early
		// stopping keeps the trained policy from collapsing onto a single
		// statement shape, so the kind filter keeps matching.
		cfg := s.rlConfig()
		cfg.EntropyWeight = 0.01
		var tr *rl.Trainer
		trainTime := timeIt(func() {
			tr = rl.NewTrainer(env, c, cfg)
			_, _ = tr.TrainUntilContext(ctx, 0.5, 2, b.TrainEpochs, b.EpisodesPerEpoch)
		})
		if err := ctxErr(ctx); err != nil {
			return rows, err
		}
		for _, m := range ms {
			found := 0
			elapsed := timeIt(func() {
				attempts := 0
				for attempts < b.MaxAttempts && found < m {
					gen, err := tr.GenerateContext(ctx, 1)
					if err != nil {
						return
					}
					attempts++
					if gen[0].Satisfied && k.filter(gen[0].Statement) {
						found++
					}
				}
			})
			total := trainTime + elapsed
			rows = append(rows, ComplexRow{
				Kind: k.name, M: m,
				Seconds: extrapolate(total, found, m), Found: found,
			})
			if err := ctxErr(ctx); err != nil {
				return rows, err
			}
		}
	}
	return rows, nil
}

// SampleSizeRow is one point of Figure 12.
type SampleSizeRow struct {
	SampleK  int
	Accuracy float64
	Seconds  float64
}

// RunSampleSize regenerates Figure 12: sweep the per-column value-sample
// size k (the paper's sample ratio η), measuring accuracy and total
// generation time (training + inference). A done ctx stops the sweep and
// returns the completed rows with the cancellation cause.
func RunSampleSize(ctx context.Context, dataset string, scale float64, seed int64, ks []int, c rl.Constraint, b Budget) ([]SampleSizeRow, error) {
	var rows []SampleSizeRow
	for _, k := range ks {
		s, err := NewSetup(dataset, scale, k, seed)
		if err != nil {
			return rows, err
		}
		var acc float64
		elapsed := timeIt(func() {
			tr, err := s.trainLearned(ctx, c, b)
			if err != nil {
				return
			}
			gen, err := tr.GenerateContext(ctx, b.NQueries)
			if err != nil {
				return
			}
			acc = accuracy(gen)
		})
		if err := ctxErr(ctx); err != nil {
			return rows, err
		}
		rows = append(rows, SampleSizeRow{SampleK: k, Accuracy: acc, Seconds: elapsed})
	}
	return rows, nil
}
