package bench

import (
	"learnedsqlgen/internal/baselines"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/meta"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/workload"
)

// AccuracyRow is one x-axis position of Figures 4 and 5.
type AccuracyRow struct {
	Constraint string
	Acc        map[string]float64 // method → accuracy ∈ [0,1]
}

// RunAccuracy regenerates Figure 4 (metric = Cardinality) or Figure 5
// (metric = Cost) for one dataset: for every constraint in the grid it
// generates b.NQueries with each method and reports the satisfied
// fraction.
func RunAccuracy(s *Setup, metric rl.Metric, grid ConstraintGrid, b Budget) []AccuracyRow {
	var rows []AccuracyRow
	for _, c := range GridConstraints(metric, grid) {
		row := AccuracyRow{Constraint: Label(c), Acc: map[string]float64{}}

		rnd := baselines.NewRandom(s.Env, c, s.Seed)
		row.Acc[MethodSQLSmith] = accuracy(rnd.Generate(b.NQueries))

		tpl := s.templateBaseline(c, b)
		row.Acc[MethodTemplate] = accuracy(tpl.Generate(b.NQueries))

		tr := s.trainLearned(c, b)
		row.Acc[MethodLearned] = accuracy(tr.Generate(b.NQueries))

		rows = append(rows, row)
	}
	return rows
}

// randomBaseline builds the SQLSmith-style baseline for a constraint.
func (s *Setup) randomBaseline(c rl.Constraint) *baselines.Random {
	return baselines.NewRandom(s.Env, c, s.Seed)
}

// templateBaseline prefers the dataset's fixed benchmark-derived template
// set (the paper's setup); datasets without one fall back to synthesized
// skeletons.
func (s *Setup) templateBaseline(c rl.Constraint, b Budget) *baselines.TemplateGen {
	if sqls := baselines.DatasetTemplates(s.Dataset); len(sqls) > 0 {
		if g, err := baselines.NewTemplateGenFromSQL(s.Env, c, sqls, s.Seed); err == nil {
			return g
		}
	}
	return baselines.NewTemplateGen(s.Env, c, b.Templates, s.Seed)
}

// TimeRow is one x-axis position of Figures 6 and 7.
type TimeRow struct {
	Constraint string
	Seconds    map[string]float64 // method → seconds to NSatisfied queries
	Found      map[string]int     // satisfied queries actually found
}

// RunEfficiency regenerates Figure 6 (Cardinality) or Figure 7 (Cost):
// wall-clock time to produce b.NSatisfied satisfied queries, including
// LearnedSQLGen's training phase (the paper's generation-time metric).
// Capped baseline runs are extrapolated linearly.
func RunEfficiency(s *Setup, metric rl.Metric, grid ConstraintGrid, b Budget) []TimeRow {
	var rows []TimeRow
	for _, c := range GridConstraints(metric, grid) {
		row := TimeRow{Constraint: Label(c),
			Seconds: map[string]float64{}, Found: map[string]int{}}

		var found []rl.Generated
		elapsed := timeIt(func() {
			rnd := baselines.NewRandom(s.Env, c, s.Seed)
			found, _ = rnd.GenerateSatisfied(b.NSatisfied, b.MaxAttempts)
		})
		row.Seconds[MethodSQLSmith] = extrapolate(elapsed, len(found), b.NSatisfied)
		row.Found[MethodSQLSmith] = len(found)

		elapsed = timeIt(func() {
			tpl := s.templateBaseline(c, b)
			found, _ = tpl.GenerateSatisfied(b.NSatisfied, b.MaxAttempts/4)
		})
		row.Seconds[MethodTemplate] = extrapolate(elapsed, len(found), b.NSatisfied)
		row.Found[MethodTemplate] = len(found)

		elapsed = timeIt(func() {
			tr := s.trainLearned(c, b)
			found, _ = tr.GenerateSatisfied(b.NSatisfied, b.MaxAttempts)
		})
		row.Seconds[MethodLearned] = extrapolate(elapsed, len(found), b.NSatisfied)
		row.Found[MethodLearned] = len(found)

		rows = append(rows, row)
	}
	return rows
}

// RLCompareResult holds Figure 8: accuracy and time per range constraint
// for the actor–critic and REINFORCE agents, plus average-reward training
// traces.
type RLCompareResult struct {
	Rows           []AccuracyRow   // accuracy per constraint (Fig 8a)
	Times          []TimeRow       // time to NSatisfied (Fig 8b)
	TraceAC        []rl.EpochStats // Fig 8c
	TraceREINFORCE []rl.EpochStats
}

// RunRLCompare regenerates Figure 8 on one dataset with the range
// cardinality grid. Both agents train under the paper's dense reward
// scheme: Figure 8's claim is that the critic's baseline tames the high
// variance of summed per-prefix rewards (§4.3), which only manifests
// under that scheme — with this reproduction's default potential-shaped
// rewards, returns are already low-variance and REINFORCE largely catches
// up (noted in EXPERIMENTS.md).
func RunRLCompare(s *Setup, grid ConstraintGrid, b Budget) RLCompareResult {
	res := RLCompareResult{}
	cfg := s.rlConfig()
	cfg.Mode = rl.RewardDense
	cfg.EntropyWeight = 0.01 // the paper's λ, tuned for dense returns
	for _, r := range grid.Ranges {
		c := rl.RangeConstraint(rl.Cardinality, r[0], r[1])
		arow := AccuracyRow{Constraint: Label(c), Acc: map[string]float64{}}
		trow := TimeRow{Constraint: Label(c),
			Seconds: map[string]float64{}, Found: map[string]int{}}

		var found []rl.Generated
		elapsed := timeIt(func() {
			ac := rl.NewTrainer(s.Env, c, cfg)
			ac.Train(b.TrainEpochs, b.EpisodesPerEpoch)
			arow.Acc["LearnedSQLGen"] = accuracy(ac.Generate(b.NQueries))
			found, _ = ac.GenerateSatisfied(b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["LearnedSQLGen"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["LearnedSQLGen"] = len(found)

		elapsed = timeIt(func() {
			rf := rl.NewReinforce(s.Env, c, cfg)
			rf.Train(b.TrainEpochs, b.EpisodesPerEpoch)
			arow.Acc["REINFORCE"] = accuracy(rf.Generate(b.NQueries))
			found, _ = rf.GenerateSatisfied(b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["REINFORCE"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["REINFORCE"] = len(found)

		res.Rows = append(res.Rows, arow)
		res.Times = append(res.Times, trow)
	}

	// Training traces (Fig 8c) on the second range, as in the paper's
	// [1k,4k] pick.
	traceRange := grid.Ranges[1]
	c := rl.RangeConstraint(rl.Cardinality, traceRange[0], traceRange[1])
	ac := rl.NewTrainer(s.Env, c, cfg)
	res.TraceAC = ac.Train(b.TrainEpochs, b.EpisodesPerEpoch)
	rf := rl.NewReinforce(s.Env, c, cfg)
	res.TraceREINFORCE = rf.Train(b.TrainEpochs, b.EpisodesPerEpoch)
	return res
}

// MetaResult holds Figure 9: per-new-constraint accuracy and adaptation
// time for Scratch, AC-extend and MetaCritic, plus adaptation traces.
type MetaResult struct {
	Rows          []AccuracyRow
	Times         []TimeRow
	TraceScratch  []rl.EpochStats // Fig 9c
	TraceACExtend []rl.EpochStats
	TraceMeta     []rl.EpochStats
}

// RunMetaCompare regenerates Figure 9: pre-train on a domain split into K
// tasks, then adapt to unseen sub-ranges. Reported time covers adaptation
// training plus generation (pre-training is the shared, amortized cost the
// paper also excludes from the per-task comparison).
func RunMetaCompare(s *Setup, domain meta.Domain, newTasks []rl.Constraint, b Budget) MetaResult {
	res := MetaResult{}
	cfg := s.rlConfig()

	mt := meta.NewMetaTrainer(s.Env, domain, cfg)
	mt.Pretrain(b.TrainEpochs/3, b.EpisodesPerEpoch)
	acx := meta.NewACExtend(s.Env, domain, cfg)
	acx.Pretrain(b.TrainEpochs/3, b.EpisodesPerEpoch)

	// Adaptation epochs: the meta strategies get a reduced budget — the
	// point of §6 is that they need fewer new-task episodes.
	adaptEpochs := b.TrainEpochs / 2

	for _, c := range newTasks {
		arow := AccuracyRow{Constraint: Label(c), Acc: map[string]float64{}}
		trow := TimeRow{Constraint: Label(c),
			Seconds: map[string]float64{}, Found: map[string]int{}}

		var found []rl.Generated
		elapsed := timeIt(func() {
			sc := rl.NewTrainer(s.Env, c, cfg)
			sc.Train(b.TrainEpochs, b.EpisodesPerEpoch)
			arow.Acc["Scratch"] = accuracy(sc.Generate(b.NQueries))
			found, _ = sc.GenerateSatisfied(b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["Scratch"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["Scratch"] = len(found)

		elapsed = timeIt(func() {
			acx.AdaptEpoch(c, adaptEpochs*b.EpisodesPerEpoch)
			arow.Acc["AC-extend"] = accuracy(acx.Generate(c, b.NQueries))
			found, _ = acx.GenerateSatisfied(c, b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["AC-extend"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["AC-extend"] = len(found)

		elapsed = timeIt(func() {
			ad := mt.Adapt(c)
			ad.Train(adaptEpochs, b.EpisodesPerEpoch)
			arow.Acc["MetaCritic"] = accuracy(ad.Generate(b.NQueries))
			found, _ = ad.GenerateSatisfied(b.NSatisfied, b.MaxAttempts)
		})
		trow.Seconds["MetaCritic"] = extrapolate(elapsed, len(found), b.NSatisfied)
		trow.Found["MetaCritic"] = len(found)

		res.Rows = append(res.Rows, arow)
		res.Times = append(res.Times, trow)
	}

	// Adaptation traces (Fig 9c) on the first new task.
	c := newTasks[0]
	sc := rl.NewTrainer(s.Env, c, cfg)
	res.TraceScratch = sc.Train(b.TrainEpochs, b.EpisodesPerEpoch)
	for i := 0; i < b.TrainEpochs; i++ {
		res.TraceACExtend = append(res.TraceACExtend, acx.AdaptEpoch(c, b.EpisodesPerEpoch))
	}
	ad := mt.Adapt(c)
	res.TraceMeta = ad.Train(b.TrainEpochs, b.EpisodesPerEpoch)
	return res
}

// Distribution is the Figure 10 profile (see workload.Profile).
type Distribution = workload.Profile

// RunDistribution regenerates Figure 10: train under one constraint with
// the full grammar (nested + DML) enabled and profile b.NQueries outputs.
func RunDistribution(s *Setup, c rl.Constraint, b Budget) *Distribution {
	// Subfigures (a)–(d),(f) profile SELECT structure (joins, nesting,
	// aggregation, predicates, lengths) over the SELECT grammar. At micro
	// scale a single DML-enabled policy collapses onto DELETE statements
	// for cost targets (DML reaches any cost band with almost no
	// structure), so the statement-type mix of subfigure (e) is produced
	// separately by per-family generators, the Figure 11 methodology.
	cfg := s.rlConfig()
	cfg.EntropyWeight = 0.01 // the paper's λ: diversity matters here
	tr := rl.NewTrainer(s.Env, c, cfg)
	tr.TrainUntil(0.5, 2, b.TrainEpochs, b.EpisodesPerEpoch)
	profile := workload.Analyze(tr.Generate(b.NQueries))

	// Statement-type mix from per-family DML generators (small budget).
	perFamily := b.NQueries / 8
	for _, fam := range []struct {
		kind string
		mod  func(*fsm.Config)
	}{
		{"insert", func(f *fsm.Config) { f.AllowInsert = true; f.DisableSelect = true }},
		{"update", func(f *fsm.Config) { f.AllowUpdate = true; f.DisableSelect = true }},
		{"delete", func(f *fsm.Config) { f.AllowDelete = true; f.DisableSelect = true }},
	} {
		fcfg := s.Env.Cfg
		fam.mod(&fcfg)
		env := rl.NewEnv(s.Env.DB, s.Env.Vocab, fcfg)
		ftr := rl.NewTrainer(env, c, cfg)
		ftr.TrainUntil(0.5, 2, b.TrainEpochs/4, b.EpisodesPerEpoch)
		sat, _ := ftr.GenerateSatisfied(perFamily, b.MaxAttempts/4)
		profile.ByType[fam.kind] += len(sat)
	}
	return profile
}

// ComplexRow is one point of Figure 11: seconds to generate m satisfied
// queries of one complex type.
type ComplexRow struct {
	Kind    string // "nested", "insert", "delete"
	M       int
	Seconds float64
	Found   int
}

// RunComplex regenerates Figure 11: for each complex statement kind and
// each target count m, the time to produce m satisfied queries of that
// kind under the cost constraint.
func RunComplex(s *Setup, c rl.Constraint, ms []int, b Budget) []ComplexRow {
	kinds := []struct {
		name   string
		cfg    func(fsm.Config) fsm.Config
		filter func(sqlast.Statement) bool
	}{
		{"nested",
			func(f fsm.Config) fsm.Config { f.MaxNestDepth = 1; return f },
			func(st sqlast.Statement) bool { return len(sqlast.Subqueries(st)) > 0 }},
		{"insert",
			func(f fsm.Config) fsm.Config { f.AllowInsert = true; f.DisableSelect = true; return f },
			func(st sqlast.Statement) bool { _, ok := st.(*sqlast.Insert); return ok }},
		{"delete",
			func(f fsm.Config) fsm.Config { f.AllowDelete = true; f.DisableSelect = true; return f },
			func(st sqlast.Statement) bool { _, ok := st.(*sqlast.Delete); return ok }},
	}
	var rows []ComplexRow
	for _, k := range kinds {
		env := rl.NewEnv(s.Env.DB, s.Env.Vocab, k.cfg(s.Env.Cfg))
		// One trained model per kind; m sweeps reuse it like the paper's
		// x-axis sweeps a single trained generator. λ = 0.01 with early
		// stopping keeps the trained policy from collapsing onto a single
		// statement shape, so the kind filter keeps matching.
		cfg := s.rlConfig()
		cfg.EntropyWeight = 0.01
		var tr *rl.Trainer
		trainTime := timeIt(func() {
			tr = rl.NewTrainer(env, c, cfg)
			tr.TrainUntil(0.5, 2, b.TrainEpochs, b.EpisodesPerEpoch)
		})
		for _, m := range ms {
			found := 0
			elapsed := timeIt(func() {
				attempts := 0
				for attempts < b.MaxAttempts && found < m {
					gen := tr.Generate(1)[0]
					attempts++
					if gen.Satisfied && k.filter(gen.Statement) {
						found++
					}
				}
			})
			total := trainTime + elapsed
			rows = append(rows, ComplexRow{
				Kind: k.name, M: m,
				Seconds: extrapolate(total, found, m), Found: found,
			})
		}
	}
	return rows
}

// SampleSizeRow is one point of Figure 12.
type SampleSizeRow struct {
	SampleK  int
	Accuracy float64
	Seconds  float64
}

// RunSampleSize regenerates Figure 12: sweep the per-column value-sample
// size k (the paper's sample ratio η), measuring accuracy and total
// generation time (training + inference).
func RunSampleSize(dataset string, scale float64, seed int64, ks []int, c rl.Constraint, b Budget) ([]SampleSizeRow, error) {
	var rows []SampleSizeRow
	for _, k := range ks {
		s, err := NewSetup(dataset, scale, k, seed)
		if err != nil {
			return nil, err
		}
		var acc float64
		elapsed := timeIt(func() {
			tr := s.trainLearned(c, b)
			acc = accuracy(tr.Generate(b.NQueries))
		})
		rows = append(rows, SampleSizeRow{SampleK: k, Accuracy: acc, Seconds: elapsed})
	}
	return rows, nil
}
