package bench

import (
	"context"

	"learnedsqlgen/internal/rl"
)

// AblationRow is one trainer variant's outcome on a fixed constraint and
// training budget.
type AblationRow struct {
	Variant  string
	Accuracy float64
	// AvgRewardTail is the mean per-episode reward over the last three
	// epochs (convergence level).
	AvgRewardTail float64
	Seconds       float64
}

// RunRewardAblation isolates the design choices DESIGN.md calls out around
// the §4.2 Remark: how executable-prefix feedback becomes step rewards,
// and whether the entropy bonus matters. All variants share the
// architecture, budget and seed; only the listed knob changes.
//
//   - shaped: potential-based shaping of prefix feedback (this repo's
//     default — the per-episode reward sum telescopes to the final
//     query's reward);
//   - dense: the paper-literal scheme (full reward at every executable
//     prefix, here down-weighted by IntermediateWeight);
//   - terminal: the sparse ablation the Remark argues against;
//   - no-entropy: shaped with λ = 0 (diversity bonus off).
func RunRewardAblation(ctx context.Context, s *Setup, c rl.Constraint, b Budget) ([]AblationRow, error) {
	variants := []struct {
		name string
		mod  func(*rl.Config)
	}{
		{"shaped", func(*rl.Config) {}},
		{"dense", func(cfg *rl.Config) { cfg.Mode = rl.RewardDense }},
		{"terminal", func(cfg *rl.Config) { cfg.Mode = rl.RewardTerminal }},
		{"no-entropy", func(cfg *rl.Config) { cfg.EntropyWeight = 0 }},
	}
	var rows []AblationRow
	for _, v := range variants {
		cfg := s.rlConfig()
		v.mod(&cfg)
		var tr *rl.Trainer
		var trace []rl.EpochStats
		elapsed := timeIt(func() {
			tr = rl.NewTrainer(s.Env, c, cfg)
			trace, _ = tr.TrainContext(ctx, b.TrainEpochs, b.EpisodesPerEpoch)
		})
		if err := ctxErr(ctx); err != nil {
			return rows, err
		}
		tail := 0.0
		n := len(trace)
		for i := n - 3; i < n; i++ {
			if i >= 0 {
				tail += trace[i].AvgReward / 3
			}
		}
		gen, err := tr.GenerateContext(ctx, b.NQueries)
		if err != nil {
			return rows, ctxErr(ctx)
		}
		rows = append(rows, AblationRow{
			Variant:       v.name,
			Accuracy:      accuracy(gen),
			AvgRewardTail: tail,
			Seconds:       elapsed,
		})
	}
	return rows, nil
}
