// Perf snapshots: the committed BENCH_<area>.json files that record the
// repo's performance trajectory. Each file holds one PerfHistory — an
// append-only sequence of PerfSnapshot runs, each stamped with the commit,
// machine and benchtime it was measured under — so EXPERIMENTS.md tables
// regenerate from measured numbers instead of hand-typed ones, and
// `benchfig -compare` can flag regressions between any two runs.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"learnedsqlgen/internal/durable"
)

// PerfSchema is the BENCH_*.json schema version. Bump it when a field
// changes meaning; Validate rejects files written by a different version.
const PerfSchema = 1

// PerfResult is one benchmark's measurement inside a snapshot. The three
// core metrics are lower-is-better; every Extra metric (throughputs, hit
// rates, speedups) is higher-is-better by convention — ComparePerf relies
// on that orientation.
type PerfResult struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// PerfSnapshot is one `make bench` run: the environment it measured under
// plus one PerfResult per benchmark in the area's suite.
type PerfSnapshot struct {
	GitSHA    string       `json:"git_sha"`
	Time      string       `json:"time"` // RFC 3339, UTC
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Benchtime string       `json:"benchtime"` // time.Duration string
	Results   []PerfResult `json:"results"`
}

// Result returns the named benchmark's measurement, or nil.
func (s *PerfSnapshot) Result(name string) *PerfResult {
	for i := range s.Results {
		if s.Results[i].Name == name {
			return &s.Results[i]
		}
	}
	return nil
}

// PerfHistory is the content of one BENCH_<area>.json file.
type PerfHistory struct {
	Schema int            `json:"schema"`
	Area   string         `json:"area"`
	Runs   []PerfSnapshot `json:"runs"`
}

// NewPerfHistory returns an empty history for an area ("nn", "rl", …).
func NewPerfHistory(area string) *PerfHistory {
	return &PerfHistory{Schema: PerfSchema, Area: area}
}

// Append adds a run to the history.
func (h *PerfHistory) Append(s PerfSnapshot) { h.Runs = append(h.Runs, s) }

// Latest returns the most recent run, or nil for an empty history.
func (h *PerfHistory) Latest() *PerfSnapshot {
	if len(h.Runs) == 0 {
		return nil
	}
	return &h.Runs[len(h.Runs)-1]
}

// LoadPerfHistory reads and validates a BENCH_*.json file.
func LoadPerfHistory(path string) (*PerfHistory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h PerfHistory
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &h, nil
}

// LoadOrCreatePerfHistory loads path, or returns a fresh empty history
// for the area when the file does not exist yet.
func LoadOrCreatePerfHistory(path, area string) (*PerfHistory, error) {
	h, err := LoadPerfHistory(path)
	if os.IsNotExist(err) {
		return NewPerfHistory(area), nil
	}
	if err != nil {
		return nil, err
	}
	if h.Area != area {
		return nil, fmt.Errorf("%s: holds area %q, want %q", path, h.Area, area)
	}
	return h, nil
}

// Save validates the history and writes it atomically (durable.WriteFile,
// so a crash mid-save never truncates the committed trajectory).
func (h *PerfHistory) Save(path string) error {
	if err := h.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	return durable.WriteFileBytes(path, append(data, '\n'))
}

var perfAreaRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Validate checks the history against the schema documented in
// ARCHITECTURE.md: version match, a well-formed area, and at least one
// run whose stamp parses and whose results are finite and uniquely named.
func (h *PerfHistory) Validate() error {
	if h == nil {
		return fmt.Errorf("perf history: nil")
	}
	if h.Schema != PerfSchema {
		return fmt.Errorf("perf history: schema %d, this tool reads %d", h.Schema, PerfSchema)
	}
	if !perfAreaRe.MatchString(h.Area) {
		return fmt.Errorf("perf history: bad area %q", h.Area)
	}
	if len(h.Runs) == 0 {
		return fmt.Errorf("perf history %s: no runs", h.Area)
	}
	for i := range h.Runs {
		if err := h.Runs[i].validate(); err != nil {
			return fmt.Errorf("perf history %s: run %d: %w", h.Area, i, err)
		}
	}
	return nil
}

func (s *PerfSnapshot) validate() error {
	if s.GitSHA == "" {
		return fmt.Errorf("empty git_sha")
	}
	if _, err := time.Parse(time.RFC3339, s.Time); err != nil {
		return fmt.Errorf("bad time %q: %w", s.Time, err)
	}
	if s.GoVersion == "" || s.GOOS == "" || s.GOARCH == "" {
		return fmt.Errorf("incomplete toolchain stamp %q/%q/%q", s.GoVersion, s.GOOS, s.GOARCH)
	}
	if s.NumCPU < 1 {
		return fmt.Errorf("num_cpu %d", s.NumCPU)
	}
	if _, err := time.ParseDuration(s.Benchtime); err != nil {
		return fmt.Errorf("bad benchtime %q: %w", s.Benchtime, err)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("no results")
	}
	seen := make(map[string]bool, len(s.Results))
	for _, r := range s.Results {
		if r.Name == "" {
			return fmt.Errorf("unnamed result")
		}
		if seen[r.Name] {
			return fmt.Errorf("duplicate result %q", r.Name)
		}
		seen[r.Name] = true
		if !(r.NsPerOp > 0) || math.IsInf(r.NsPerOp, 0) {
			return fmt.Errorf("%s: ns_per_op %v", r.Name, r.NsPerOp)
		}
		if r.AllocsPerOp < 0 || r.BytesPerOp < 0 ||
			math.IsNaN(r.AllocsPerOp) || math.IsNaN(r.BytesPerOp) ||
			math.IsInf(r.AllocsPerOp, 0) || math.IsInf(r.BytesPerOp, 0) {
			return fmt.Errorf("%s: bad alloc metrics %v/%v", r.Name, r.AllocsPerOp, r.BytesPerOp)
		}
		for k, v := range r.Extra {
			if k == "" {
				return fmt.Errorf("%s: unnamed extra", r.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%s: extra %s = %v", r.Name, k, v)
			}
		}
	}
	return nil
}

// PerfRegression is one metric that moved in the bad direction between
// two snapshots by more than the compare threshold.
type PerfRegression struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
	// Change is the relative move in the bad direction: 0.25 means 25%
	// worse (slower, more allocation, or lower throughput). +Inf marks a
	// metric that left zero — e.g. a benchmark that was allocation-free
	// and no longer is.
	Change float64
}

func (r PerfRegression) String() string {
	change := fmt.Sprintf("%+.1f%%", 100*r.Change)
	if math.IsInf(r.Change, 1) {
		change = "from zero"
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%s)", r.Bench, r.Metric, r.Old, r.New, change)
}

// ComparePerf diffs two snapshots and returns every metric that regressed
// beyond threshold (relative; 0.10 flags >10% worse). Core metrics are
// lower-is-better; Extra metrics are higher-is-better (the schema
// convention). Benchmarks or extras present in only one snapshot are
// skipped — compare flags regressions, not coverage changes.
func ComparePerf(old, new *PerfSnapshot, threshold float64) []PerfRegression {
	var regs []PerfRegression
	lowerBetter := func(bench, metric string, o, n float64) {
		switch {
		case o == 0 && n > 0:
			regs = append(regs, PerfRegression{bench, metric, o, n, math.Inf(1)})
		case o > 0 && (n-o)/o > threshold:
			regs = append(regs, PerfRegression{bench, metric, o, n, (n - o) / o})
		}
	}
	for _, nr := range new.Results {
		or := old.Result(nr.Name)
		if or == nil {
			continue
		}
		lowerBetter(nr.Name, "ns_per_op", or.NsPerOp, nr.NsPerOp)
		lowerBetter(nr.Name, "allocs_per_op", or.AllocsPerOp, nr.AllocsPerOp)
		lowerBetter(nr.Name, "bytes_per_op", or.BytesPerOp, nr.BytesPerOp)
		for k, nv := range nr.Extra {
			ov, ok := or.Extra[k]
			if !ok || ov <= 0 {
				continue
			}
			if (ov-nv)/ov > threshold {
				regs = append(regs, PerfRegression{nr.Name, k, ov, nv, (ov - nv) / ov})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Bench != regs[j].Bench {
			return regs[i].Bench < regs[j].Bench
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// Markers bracketing the generated perf section of EXPERIMENTS.md.
// `make experiments` replaces everything between them.
const (
	PerfBeginMarker = "<!-- BENCH:BEGIN — generated by `make experiments` from BENCH_*.json; do not edit by hand -->"
	PerfEndMarker   = "<!-- BENCH:END -->"
)

// RenderPerfMarkdown renders each history's latest snapshot as a table
// (with its machine stamp) plus a ns/op trajectory across all committed
// runs — the content `make experiments` places between the BENCH markers.
func RenderPerfMarkdown(hs []*PerfHistory) string {
	var b strings.Builder
	for _, h := range hs {
		s := h.Latest()
		if s == nil {
			continue
		}
		fmt.Fprintf(&b, "### `BENCH_%s.json` — latest snapshot\n\n", h.Area)
		fmt.Fprintf(&b, "Measured at commit `%s` (%s) on %s %s/%s, %d CPUs, benchtime %s.\n\n",
			shortSHA(s.GitSHA), s.Time, s.GoVersion, s.GOOS, s.GOARCH, s.NumCPU, s.Benchtime)
		b.WriteString("| benchmark | ns/op | B/op | allocs/op | extras |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, r := range s.Results {
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n",
				r.Name, perfNum(r.NsPerOp), perfNum(r.BytesPerOp), perfNum(r.AllocsPerOp), renderExtras(r.Extra))
		}
		if len(h.Runs) > 1 {
			fmt.Fprintf(&b, "\nTrajectory (ns/op per committed run):\n\n")
			b.WriteString("| commit | date |")
			names := make([]string, 0, len(s.Results))
			for _, r := range s.Results {
				names = append(names, r.Name)
				fmt.Fprintf(&b, " `%s` |", r.Name)
			}
			b.WriteString("\n|---|---|")
			b.WriteString(strings.Repeat("---|", len(names)))
			b.WriteString("\n")
			for i := range h.Runs {
				run := &h.Runs[i]
				fmt.Fprintf(&b, "| `%s` | %s |", shortSHA(run.GitSHA), run.Time[:10])
				for _, name := range names {
					if r := run.Result(name); r != nil {
						fmt.Fprintf(&b, " %s |", perfNum(r.NsPerOp))
					} else {
						b.WriteString(" — |")
					}
				}
				b.WriteString("\n")
			}
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

// UpdatePerfSection replaces the text between the BENCH markers of a
// document with rendered, keeping the markers. It errors when the markers
// are missing or out of order, so a truncated document is never written.
func UpdatePerfSection(doc []byte, rendered string) ([]byte, error) {
	text := string(doc)
	begin := strings.Index(text, PerfBeginMarker)
	end := strings.Index(text, PerfEndMarker)
	if begin < 0 || end < 0 {
		return nil, fmt.Errorf("perf markers not found (%q … %q)", PerfBeginMarker, PerfEndMarker)
	}
	if end < begin {
		return nil, fmt.Errorf("perf markers out of order")
	}
	var b strings.Builder
	b.WriteString(text[:begin+len(PerfBeginMarker)])
	b.WriteString("\n\n")
	b.WriteString(rendered)
	b.WriteString("\n")
	b.WriteString(text[end:])
	return []byte(b.String()), nil
}

func shortSHA(sha string) string {
	sha, dirty := strings.CutSuffix(sha, "-dirty")
	if len(sha) > 8 {
		sha = sha[:8]
	}
	if dirty {
		sha += "-dirty"
	}
	return sha
}

// perfNum renders a metric with thin-space thousand grouping so the
// generated tables stay readable at µs scale.
func perfNum(v float64) string {
	if v != math.Trunc(v) {
		return fmt.Sprintf("%.2f", v)
	}
	s := fmt.Sprintf("%.0f", v)
	if len(s) <= 4 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ' ')
		}
		out = append(out, c)
	}
	return string(out)
}

func renderExtras(extra map[string]float64) string {
	if len(extra) == 0 {
		return "—"
	}
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s = %.4g", k, extra[k]))
	}
	return strings.Join(parts, ", ")
}
