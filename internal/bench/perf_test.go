package bench

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testSnapshot(nsScale float64) PerfSnapshot {
	return PerfSnapshot{
		GitSHA:    "0123456789abcdef0123456789abcdef01234567",
		Time:      "2026-08-08T12:00:00Z",
		GoVersion: "go1.22",
		GOOS:      "linux",
		GOARCH:    "amd64",
		NumCPU:    4,
		Benchtime: "1s",
		Results: []PerfResult{
			{Name: "ActorStepInference", NsPerOp: 10000 * nsScale, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "ActorStepInferenceQuantized", NsPerOp: 7200 * nsScale, AllocsPerOp: 0, BytesPerOp: 0,
				Extra: map[string]float64{"speedup_vs_float64": 1.39}},
			{Name: "Generate32", NsPerOp: 2.1e6 * nsScale, AllocsPerOp: 2500, BytesPerOp: 700000,
				Extra: map[string]float64{"queries_per_sec": 15000 / nsScale, "prefix_hit_rate": 0.22}},
		},
	}
}

func TestPerfHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_nn.json")
	h := NewPerfHistory("nn")
	h.Append(testSnapshot(1))
	h.Append(testSnapshot(0.9))
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPerfHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", h, got)
	}
	if got.Latest().Result("Generate32") == nil {
		t.Fatal("Latest().Result lost a benchmark")
	}

	// Appending through LoadOrCreate preserves prior runs (the trajectory
	// is append-only).
	again, err := LoadOrCreatePerfHistory(path, "nn")
	if err != nil {
		t.Fatal(err)
	}
	again.Append(testSnapshot(0.8))
	if len(again.Runs) != 3 {
		t.Fatalf("append after reload: %d runs, want 3", len(again.Runs))
	}
	if _, err := LoadOrCreatePerfHistory(path, "rl"); err == nil {
		t.Fatal("area mismatch must fail")
	}
	fresh, err := LoadOrCreatePerfHistory(filepath.Join(t.TempDir(), "none.json"), "rl")
	if err != nil || fresh.Area != "rl" || len(fresh.Runs) != 0 {
		t.Fatalf("missing file must create empty history, got %+v, %v", fresh, err)
	}
}

func TestPerfValidateRejects(t *testing.T) {
	cases := map[string]func(h *PerfHistory){
		"wrong schema":  func(h *PerfHistory) { h.Schema = 99 },
		"bad area":      func(h *PerfHistory) { h.Area = "NN json" },
		"no runs":       func(h *PerfHistory) { h.Runs = nil },
		"empty sha":     func(h *PerfHistory) { h.Runs[0].GitSHA = "" },
		"bad time":      func(h *PerfHistory) { h.Runs[0].Time = "yesterday" },
		"bad benchtime": func(h *PerfHistory) { h.Runs[0].Benchtime = "fast" },
		"no results":    func(h *PerfHistory) { h.Runs[0].Results = nil },
		"zero ns":       func(h *PerfHistory) { h.Runs[0].Results[0].NsPerOp = 0 },
		"nan extra": func(h *PerfHistory) {
			h.Runs[0].Results[1].Extra["speedup_vs_float64"] = math.NaN()
		},
		"dup name": func(h *PerfHistory) {
			h.Runs[0].Results[1].Name = h.Runs[0].Results[0].Name
		},
	}
	for name, breakIt := range cases {
		h := NewPerfHistory("nn")
		h.Append(testSnapshot(1))
		if err := h.Validate(); err != nil {
			t.Fatalf("%s: baseline invalid: %v", name, err)
		}
		breakIt(h)
		if err := h.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken history", name)
		}
	}
}

func TestComparePerfDetectsInjectedRegression(t *testing.T) {
	old := testSnapshot(1)
	// Clean run: within threshold both ways.
	clean := testSnapshot(1.05)
	if regs := ComparePerf(&old, &clean, 0.10); len(regs) != 0 {
		t.Fatalf("5%% drift flagged at 10%% threshold: %v", regs)
	}

	// Injected regressions: a 2x slowdown, an alloc-free benchmark that
	// allocates again, and a collapsed higher-is-better extra.
	bad := testSnapshot(1)
	bad.Results[0].NsPerOp *= 2
	bad.Results[1].AllocsPerOp = 3
	bad.Results[2].Extra["queries_per_sec"] = 100
	regs := ComparePerf(&old, &bad, 0.10)
	want := map[string]bool{
		"ActorStepInference/ns_per_op":              false,
		"ActorStepInferenceQuantized/allocs_per_op": false,
		"Generate32/queries_per_sec":                false,
	}
	for _, r := range regs {
		key := r.Bench + "/" + r.Metric
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected regression %v", r)
			continue
		}
		want[key] = true
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("missed injected regression %s (got %v)", key, regs)
		}
	}
	// The from-zero alloc regression reports +Inf change.
	for _, r := range regs {
		if r.Metric == "allocs_per_op" && !math.IsInf(r.Change, 1) {
			t.Errorf("alloc regression from zero: Change = %v, want +Inf", r.Change)
		}
	}

	// An improvement is never flagged.
	better := testSnapshot(0.5)
	if regs := ComparePerf(&old, &better, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestRenderPerfMarkdownAndSectionUpdate(t *testing.T) {
	h := NewPerfHistory("nn")
	h.Append(testSnapshot(1))
	h.Append(testSnapshot(0.9))
	md := RenderPerfMarkdown([]*PerfHistory{h})
	for _, want := range []string{
		"### `BENCH_nn.json`", "`01234567`", "go1.22 linux/amd64",
		"`ActorStepInferenceQuantized`", "speedup_vs_float64 = 1.39",
		"Trajectory",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	doc := []byte("# Title\n\nprose\n\n" + PerfBeginMarker + "\nstale tables\n" + PerfEndMarker + "\n\ntail\n")
	updated, err := UpdatePerfSection(doc, md)
	if err != nil {
		t.Fatal(err)
	}
	text := string(updated)
	if strings.Contains(text, "stale tables") {
		t.Error("stale content survived the update")
	}
	for _, want := range []string{"# Title", "tail", PerfBeginMarker, PerfEndMarker, "### `BENCH_nn.json`"} {
		if !strings.Contains(text, want) {
			t.Errorf("updated doc missing %q", want)
		}
	}
	// Idempotent: updating again with the same rendering changes nothing.
	twice, err := UpdatePerfSection(updated, md)
	if err != nil {
		t.Fatal(err)
	}
	if string(twice) != text {
		t.Error("section update is not idempotent")
	}
	if _, err := UpdatePerfSection([]byte("no markers here"), md); err == nil {
		t.Error("missing markers must fail, not truncate the document")
	}
}

// TestRunPerfSuiteNN smoke-runs the programmatic nn suite at a tiny
// benchtime and checks the snapshot validates against the schema — the
// same path `make bench` takes to produce BENCH_nn.json.
func TestRunPerfSuiteNN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	s, err := RunPerfSuite("nn", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	h := NewPerfHistory("nn")
	h.Append(s)
	if err := h.Validate(); err != nil {
		t.Fatalf("nn suite snapshot invalid: %v", err)
	}
	q := s.Result("ActorStepInferenceQuantized")
	if q == nil || q.Extra["speedup_vs_float64"] <= 0 {
		t.Fatalf("quantized result missing speedup extra: %+v", q)
	}
	path := filepath.Join(t.TempDir(), "BENCH_nn.json")
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPerfSuite("nope", 10*time.Millisecond); err == nil {
		t.Fatal("unknown area must fail")
	}
}
