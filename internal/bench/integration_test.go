package bench

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/sqlast"
)

// TestEstimatorFidelityOnGeneratedWorkloads cross-validates the RL reward
// signal end to end: for FSM-generated SELECT workloads on all three
// datasets, the estimated cardinality must track the executor's true
// cardinality with bounded q-error, and the estimated cost must correlate
// positively with the executor's measured work. If this drifts, training
// optimizes the wrong objective.
func TestEstimatorFidelityOnGeneratedWorkloads(t *testing.T) {
	for _, dataset := range []string{"tpch", "job", "xuetang"} {
		t.Run(dataset, func(t *testing.T) {
			s, err := NewSetup(dataset, 0.1, 15, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			var qerrs []float64
			var pairs []costWorkPair
			for i := 0; i < 120; i++ {
				b := s.Env.NewBuilder()
				for !b.Done() {
					valid := b.Valid()
					if err := b.Apply(valid[rng.Intn(len(valid))]); err != nil {
						t.Fatal(err)
					}
				}
				st, _ := b.Statement()
				sel, ok := st.(*sqlast.Select)
				if !ok {
					continue
				}
				est, err := s.Env.Est.EstimateSelect(sel)
				if err != nil {
					t.Fatalf("estimate %q: %v", sel.SQL(), err)
				}
				res, err := executor.New(s.Env.DB.Clone()).Select(sel)
				if err != nil {
					t.Fatalf("execute %q: %v", sel.SQL(), err)
				}
				a, bb := est.Card+1, float64(res.Cardinality)+1
				q := a / bb
				if q < 1 {
					q = 1 / q
				}
				qerrs = append(qerrs, q)
				pairs = append(pairs, costWorkPair{est.Cost, res.Work})
			}
			if len(qerrs) < 50 {
				t.Fatalf("only %d SELECTs generated", len(qerrs))
			}
			sort.Float64s(qerrs)
			median := qerrs[len(qerrs)/2]
			p90 := qerrs[int(0.9*float64(len(qerrs)-1))]
			if median > 3 {
				t.Errorf("%s: median q-error %.2f too high", dataset, median)
			}
			if p90 > 50 {
				t.Errorf("%s: p90 q-error %.2f too high", dataset, p90)
			}

			// Cost-work rank correlation (Spearman) must be clearly
			// positive: higher estimated cost ⇒ more executor work.
			if rho := spearman(pairs); rho < 0.4 {
				t.Errorf("%s: cost/work rank correlation %.2f too weak", dataset, rho)
			}
		})
	}
}

// costWorkPair couples one query's estimated cost with its executor work.
type costWorkPair struct{ estCost, trueWork float64 }

// spearman computes the rank correlation of estCost vs trueWork.
func spearman(pairs []costWorkPair) float64 {
	n := len(pairs)
	rankOf := func(key func(int) float64) []float64 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return key(idx[a]) < key(idx[b]) })
		ranks := make([]float64, n)
		for r, i := range idx {
			ranks[i] = float64(r)
		}
		return ranks
	}
	ra := rankOf(func(i int) float64 { return pairs[i].estCost })
	rb := rankOf(func(i int) float64 { return pairs[i].trueWork })
	var d2 float64
	for i := 0; i < n; i++ {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(float64(n)*(float64(n)*float64(n)-1))
}

// TestTrainedPolicyBeatsRandomAcrossDatasets is the headline claim at
// smoke scale: on every dataset, a briefly trained LearnedSQLGen beats the
// SQLSmith-style random baseline on the same range constraint.
func TestTrainedPolicyBeatsRandomAcrossDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	for _, dataset := range []string{"tpch", "job", "xuetang"} {
		t.Run(dataset, func(t *testing.T) {
			s, err := NewSetup(dataset, 0.3, 20, 1)
			if err != nil {
				t.Fatal(err)
			}
			c := rl.RangeConstraint(rl.Cardinality, 20, 120)
			budget := Budget{
				NQueries: 100, NSatisfied: 5, MaxAttempts: 300,
				TrainEpochs: 120, EpisodesPerEpoch: 25, Templates: 6,
			}
			tr, err := s.trainLearned(context.Background(), c, budget)
			if err != nil {
				t.Fatal(err)
			}
			learned := accuracy(tr.Generate(budget.NQueries))
			random := accuracy(s.randomBaseline(c).Generate(budget.NQueries))
			if learned <= random {
				t.Errorf("%s: learned %.2f did not beat random %.2f", dataset, learned, random)
			}
		})
	}
}
