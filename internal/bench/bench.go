// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§7). Each Run* function corresponds to
// one figure, takes the micro-scale constraint grids documented in
// EXPERIMENTS.md, and returns rows shaped like the paper's plots; the
// benchfig binary and bench_test.go print them.
package bench

import (
	"context"
	"fmt"
	"time"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/token"
)

// Method names match the paper's legends.
const (
	MethodSQLSmith = "SQLSmith"
	MethodTemplate = "Template"
	MethodLearned  = "LearnedSQLGen"
)

// Setup fixes one evaluation environment: dataset, scale, value-sample
// size k (the η knob of Figure 12), seed and rollout worker count.
type Setup struct {
	Dataset string
	Scale   float64
	SampleK int
	Seed    int64
	// Workers is the rollout concurrency every trainer built from this
	// setup uses (0/1 = serial). Results are worker-count-independent.
	Workers int
	Env     *rl.Env
}

// NewSetup generates the dataset and builds the shared environment.
func NewSetup(dataset string, scale float64, sampleK int, seed int64) (*Setup, error) {
	db, err := datagen.Generate(dataset, scale, seed)
	if err != nil {
		return nil, err
	}
	vocab := token.Build(db, sampleK, seed)
	return &Setup{
		Dataset: dataset,
		Scale:   scale,
		SampleK: sampleK,
		Seed:    seed,
		Env:     rl.NewEnv(db, vocab, fsm.DefaultConfig()),
	}, nil
}

// Budget sizes an experiment run. The paper uses N = 1000 queries and
// hours of wall-clock; the micro-scale defaults keep every figure's full
// grid under a few minutes on one core while preserving the comparisons.
type Budget struct {
	// NQueries is the number of generated queries for accuracy figures.
	NQueries int
	// NSatisfied is the satisfied-query count targeted by time figures.
	NSatisfied int
	// MaxAttempts caps generation attempts per method and constraint.
	MaxAttempts int
	// TrainEpochs × EpisodesPerEpoch is the RL training budget per
	// constraint.
	TrainEpochs      int
	EpisodesPerEpoch int
	// Templates is the skeleton count for the Template baseline.
	Templates int
}

// DefaultBudget returns the budget used by the checked-in benchmarks.
func DefaultBudget() Budget {
	return Budget{
		NQueries:         200,
		NSatisfied:       25,
		MaxAttempts:      4000,
		TrainEpochs:      800, // early stopping usually ends far sooner
		EpisodesPerEpoch: 25,
		Templates:        12,
	}
}

// QuickBudget is a reduced budget for smoke tests.
func QuickBudget() Budget {
	return Budget{
		NQueries:         40,
		NSatisfied:       5,
		MaxAttempts:      400,
		TrainEpochs:      6,
		EpisodesPerEpoch: 15,
		Templates:        8,
	}
}

// rlConfig returns the trainer configuration used across figures.
func (s *Setup) rlConfig() rl.Config {
	cfg := rl.FastConfig()
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	return cfg
}

// accuracy is the §7.1 metric: satisfied / generated.
func accuracy(gen []rl.Generated) float64 {
	if len(gen) == 0 {
		return 0
	}
	sat := 0
	for _, g := range gen {
		if g.Satisfied {
			sat++
		}
	}
	return float64(sat) / float64(len(gen))
}

// ConstraintGrid is the micro-scale rescaling of the paper's constraint
// axes (EXPERIMENTS.md records the mapping). Point constraints follow the
// paper's decade grid; ranges mirror [1k,2k]…[1k,8k] at 1/10 scale.
type ConstraintGrid struct {
	Points []float64
	Ranges [][2]float64
}

// CardinalityGrid returns the micro-scale cardinality constraints.
func CardinalityGrid() ConstraintGrid {
	return ConstraintGrid{
		Points: []float64{10, 100, 1000, 10000},
		Ranges: [][2]float64{{100, 200}, {100, 400}, {100, 600}, {100, 800}},
	}
}

// CostGrid returns the micro-scale cost constraints, sized to the cost
// model's output range on the micro datasets.
func CostGrid() ConstraintGrid {
	return ConstraintGrid{
		Points: []float64{100, 1000, 10000, 100000},
		Ranges: [][2]float64{{1000, 2000}, {1000, 4000}, {1000, 6000}, {1000, 8000}},
	}
}

// GridConstraints expands a grid into labelled constraints.
func GridConstraints(metric rl.Metric, grid ConstraintGrid) []rl.Constraint {
	var out []rl.Constraint
	for _, p := range grid.Points {
		out = append(out, rl.PointConstraint(metric, p))
	}
	for _, r := range grid.Ranges {
		out = append(out, rl.RangeConstraint(metric, r[0], r[1]))
	}
	return out
}

// trainLearned builds and trains a LearnedSQLGen trainer for a constraint:
// early stopping once half of an epoch's episodes satisfy it, with up to
// two restarts under fresh seeds when a run fails to take off (policy
// -gradient exploration has high seed variance on narrow point targets;
// restarts are charged to the reported generation time). A done ctx stops
// mid-run; the best trainer so far (possibly nil) is returned with the
// cancellation cause.
func (s *Setup) trainLearned(ctx context.Context, c rl.Constraint, b Budget) (*rl.Trainer, error) {
	var best *rl.Trainer
	bestRate := -1.0
	for attempt := 0; attempt < 3; attempt++ {
		cfg := s.rlConfig()
		cfg.Seed = s.Seed + int64(attempt*101)
		tr := rl.NewTrainer(s.Env, c, cfg)
		trace, err := tr.TrainUntilContext(ctx, 0.75, 2, b.TrainEpochs, b.EpisodesPerEpoch)
		rate := -1.0
		if len(trace) > 0 {
			rate = trace[len(trace)-1].SatisfiedRate
		}
		if rate > bestRate || best == nil {
			best, bestRate = tr, rate
		}
		if err != nil {
			return best, err
		}
		if bestRate >= 0.75 {
			break
		}
	}
	return best, nil
}

// ctxErr resolves a done context to its most informative error (the
// cancellation cause when one was installed) and returns nil while ctx is
// live. Run* functions call it at grid boundaries so a cancelled benchmark
// returns its completed rows plus the reason it stopped.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return err
	}
	return nil
}

// timeIt runs f and returns elapsed seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// extrapolate scales elapsed time to the full target when a capped run
// found only part of it (mirrors how the paper reports hours for slow
// baselines without running them to completion at every point). Runs that
// found nothing report the elapsed time scaled by the full target.
func extrapolate(elapsed float64, found, target int) float64 {
	if found >= target {
		return elapsed
	}
	if found == 0 {
		return elapsed * float64(target)
	}
	return elapsed * float64(target) / float64(found)
}

// Label renders a constraint the way the paper's x-axes do.
func Label(c rl.Constraint) string {
	if c.IsRange {
		return fmt.Sprintf("[%g,%g]", c.Lo, c.Hi)
	}
	return fmt.Sprintf("%g", c.Point)
}
