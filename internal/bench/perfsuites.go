// Perf suites: the programmatic benchmark runs behind `make bench`'s
// BENCH_<area>.json snapshots. Each suite mirrors the hot-path benchmarks
// of its package's bench_test.go but runs through testing.Benchmark, so
// one binary (cmd/benchfig -bench) can measure, stamp and append a
// PerfSnapshot without the go-test harness.
package bench

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"learnedsqlgen/client"
	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/engine"
	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/service"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/wire"
)

// PerfAreas lists the areas `make bench` snapshots, in emission order.
func PerfAreas() []string { return []string{"nn", "rl", "engine", "serve", "fleet"} }

// RunPerfSuite measures one area's suite at the given per-benchmark time
// budget and returns a stamped snapshot. Areas: "nn" (actor step kernels,
// float64 vs quantized, BPTT), "rl" (rollout batches, train epoch,
// generation throughput), "engine" (driver-backed estimate/execute
// paths and dialect rendering), "serve" (end-to-end request and
// first-row latency through the generation service) and "fleet"
// (time-to-N-satisfied for sharded data-parallel training at
// shards∈{1,2,4,8}).
func RunPerfSuite(area string, benchtime time.Duration) (PerfSnapshot, error) {
	restore, err := setBenchtime(benchtime)
	if err != nil {
		return PerfSnapshot{}, err
	}
	defer restore()
	var results []PerfResult
	switch area {
	case "nn":
		results = perfSuiteNN()
	case "rl":
		results, err = perfSuiteRL()
		if err != nil {
			return PerfSnapshot{}, err
		}
	case "engine":
		results, err = perfSuiteEngine()
		if err != nil {
			return PerfSnapshot{}, err
		}
	case "serve":
		results, err = perfSuiteServe()
		if err != nil {
			return PerfSnapshot{}, err
		}
	case "fleet":
		results, err = perfSuiteFleet(benchtime)
		if err != nil {
			return PerfSnapshot{}, err
		}
	default:
		return PerfSnapshot{}, fmt.Errorf("unknown perf area %q (have %v)", area, PerfAreas())
	}
	return PerfSnapshot{
		GitSHA:    gitSHA(),
		Time:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Benchtime: benchtime.String(),
		Results:   results,
	}, nil
}

// setBenchtime points testing.Benchmark at the suite's time budget and
// returns a restore function. testing.Init is idempotent, so this works
// both inside a test binary and inside cmd/benchfig.
var testingInitOnce sync.Once

func setBenchtime(d time.Duration) (func(), error) {
	testingInitOnce.Do(testing.Init)
	f := flag.Lookup("test.benchtime")
	if f == nil {
		return nil, fmt.Errorf("test.benchtime flag not registered")
	}
	prev := f.Value.String()
	if err := flag.Set("test.benchtime", d.String()); err != nil {
		return nil, err
	}
	return func() { flag.Set("test.benchtime", prev) }, nil
}

// measure runs a benchmark twice back-to-back and keeps the faster run:
// shared machines jitter by ~10%, and the committed trajectory should
// track the code, not the neighbors.
func measure(name string, f func(b *testing.B)) PerfResult {
	r := testing.Benchmark(f)
	if again := testing.Benchmark(f); again.NsPerOp() < r.NsPerOp() {
		r = again
	}
	return PerfResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
}

// speedup annotates `quant` with its ratio against a float64 baseline —
// the committed record of what the int8 kernels buy.
func speedup(quant *PerfResult, baseline PerfResult) {
	if quant.NsPerOp > 0 {
		quant.Extra = map[string]float64{
			"speedup_vs_float64": baseline.NsPerOp / quant.NsPerOp,
		}
	}
}

// perfSuiteNN mirrors internal/nn/bench_test.go: one masked policy step
// under training, the inference step on the float64 and the quantized
// kernels (same net, same valid set), and full BPTT over a 32-step
// episode. Dimensions match the micro-benchmark actor.
func perfSuiteNN() []PerfResult {
	newNet := func() *nn.SeqNet {
		rng := rand.New(rand.NewSource(1))
		return nn.NewSeqNet("bench", 300, 32, 30, 300, 0.3, rng)
	}
	valid := []int{3, 17, 42, 99, 120, 200, 250}

	step := measure("ActorStep", func(b *testing.B) {
		net := newNet()
		rng := rand.New(rand.NewSource(2))
		ws := nn.NewWorkspace(nil)
		st := ws.Pool().GetState(net.Hidden)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if st.Len() >= 64 {
				ws.Recycle(st)
				st = ws.Pool().GetState(net.Hidden)
			}
			net.StepMaskedInto(ws, st, i%300, valid, true, rng)
		}
	})
	inferStep := func(quantized bool) func(b *testing.B) {
		return func(b *testing.B) {
			net := newNet()
			ws := nn.NewWorkspace(nil)
			if quantized {
				ws.SetQuantized(nn.QuantizeSeqNet(net))
			}
			st := ws.Pool().GetState(net.Hidden)
			steps := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if steps >= 64 {
					ws.Recycle(st)
					st = ws.Pool().GetState(net.Hidden)
					steps = 0
				}
				net.StepMaskedInto(ws, st, i%300, valid, false, nil)
				steps++
			}
		}
	}
	infer := measure("ActorStepInference", inferStep(false))
	quant := measure("ActorStepInferenceQuantized", inferStep(true))
	speedup(&quant, infer)

	backward := measure("SeqNetBackward", func(b *testing.B) {
		net := newNet()
		rng := rand.New(rand.NewSource(3))
		const T = 32
		d := make([]float64, 300)
		for i := range d {
			d[i] = rng.NormFloat64() * 0.01
		}
		dHead := make([][]float64, T)
		for t := range dHead {
			dHead[t] = d
		}
		ws := nn.NewWorkspace(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := ws.Pool().GetState(net.Hidden)
			for t := 0; t < T; t++ {
				net.StepInto(ws, st, t%300, true, rng)
			}
			net.BackwardInto(ws, st, dHead)
			ws.Recycle(st)
		}
	})
	return []PerfResult{step, infer, quant, backward}
}

// perfSuiteRL mirrors internal/rl/bench_test.go on a shared micro TPC-H
// environment: training and inference batches (the quantized inference
// batch includes its per-batch snapshot cost), a full train epoch, and a
// Generate run on a briefly trained policy that records queries/sec and
// the prefix-cache hit rate as extras.
func perfSuiteRL() ([]PerfResult, error) {
	setup, err := NewSetup("tpch", 0.05, 25, 1)
	if err != nil {
		return nil, err
	}
	constraint := rl.RangeConstraint(rl.Cardinality, 10, 500)
	newTrainer := func(quantized bool) *rl.Trainer {
		cfg := rl.FastConfig()
		cfg.Seed = 1
		cfg.Workers = 1
		cfg.QuantizedInference = quantized
		return rl.NewTrainer(setup.Env, constraint, cfg)
	}

	train := measure("SampleBatch", func(b *testing.B) {
		tr := newTrainer(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.ReleaseBatch(tr.SampleBatch(tr.Actor(), tr.Actor().BOS(), 8, true, true))
		}
	})
	// Inference batches run at generation size (64 episodes, the
	// Generate-path shape) rather than the training batch size: the int8
	// snapshot is rebuilt per batch for correctness, and that fixed cost —
	// dominated by the vocabulary-sized px table refill — only amortizes
	// across a real generation batch.
	inferBatch := func(quantized bool) func(b *testing.B) {
		return func(b *testing.B) {
			tr := newTrainer(quantized)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.SampleBatch(tr.Actor(), tr.Actor().BOS(), 64, false, false)
			}
		}
	}
	infer := measure("SampleBatchInference64", inferBatch(false))
	quant := measure("SampleBatchInferenceQuantized64", inferBatch(true))
	speedup(&quant, infer)

	epoch := measure("TrainEpoch", func(b *testing.B) {
		tr := newTrainer(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.TrainEpoch(8)
		}
	})

	// Generation throughput on a briefly trained policy: one op = a
	// 32-query Generate through the prefix trie.
	const genN = 32
	gen := newTrainer(false)
	gen.Train(2, 16)
	generate := measure("Generate32", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gen.Generate(genN)
		}
	})
	generate.Extra = map[string]float64{
		"queries_per_sec": float64(genN) * 1e9 / generate.NsPerOp,
		"prefix_hit_rate": gen.Stats().PrefixHitRate,
	}
	return []PerfResult{train, infer, quant, epoch, generate}, nil
}

// perfSuiteEngine measures the engine driver layer on the micro TPC-H
// dataset: the reference driver's direct estimate (the Options.Engine
// "reference" reward path), the in-process database/sql adapter's
// EXPLAIN-based estimate and row-returning execution (SQL text out, plan
// text and driver rows back — the full external-engine code path), one
// dialect rendering, and the combined per-query cost of a cross-engine
// check (render + reparse + execute + estimate).
func perfSuiteEngine() ([]PerfResult, error) {
	db, err := datagen.Generate("tpch", 0.05, 1)
	if err != nil {
		return nil, err
	}
	ref := engine.NewReference(db)
	engine.RegisterTestDatabase("bench-engine", db)
	inproc, err := engine.Open("inprocess", "handle=bench-engine")
	if err != nil {
		return nil, err
	}
	defer inproc.Close()

	sel, err := parser.Parse("SELECT customer.c_custkey FROM customer WHERE customer.c_acctbal > 1000")
	if err != nil {
		return nil, err
	}
	join, err := parser.Parse("SELECT orders.o_orderkey FROM orders JOIN customer ON orders.o_custkey = customer.c_custkey WHERE customer.c_acctbal > 0")
	if err != nil {
		return nil, err
	}
	nat, _ := engine.DialectByName("native")
	pg, _ := engine.DialectByName("postgres")
	ctx := context.Background()

	refEst := measure("ReferenceEstimate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ref.EstimateContext(ctx, join); err != nil {
				b.Fatal(err)
			}
		}
	})
	adapterEst := measure("AdapterEstimateExplain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inproc.EstimateContext(ctx, join); err != nil {
				b.Fatal(err)
			}
		}
	})
	if refEst.NsPerOp > 0 {
		// The committed record of what the SQL-text round trip costs over
		// calling the estimator directly.
		adapterEst.Extra = map[string]float64{
			"overhead_vs_reference": adapterEst.NsPerOp / refEst.NsPerOp,
		}
	}
	adapterExec := measure("AdapterExecute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := inproc.ExecuteContext(ctx, sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	render := measure("DialectRenderPostgres", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sqlast.Render(join, pg.Render) == "" {
				b.Fatal("empty rendering")
			}
		}
	})
	cross := measure("CrossCheckQuery", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			text := sqlast.Render(join, nat.Render)
			if _, err := parser.ParseWithOptions(text, nat.Reparse); err != nil {
				b.Fatal(err)
			}
			if _, err := inproc.ExecuteContext(ctx, join); err != nil {
				b.Fatal(err)
			}
			if _, err := inproc.EstimateContext(ctx, join); err != nil {
				b.Fatal(err)
			}
		}
	})
	return []PerfResult{refEst, adapterEst, adapterExec, render, cross}, nil
}

// perfSuiteServe measures the generation service end to end on the
// micro xuetang dataset: a loopback server with a pre-warmed registry
// entry, one persistent client session, and per-op full request streams.
// ServeRequest8 is one 8-query request consumed to Done (with
// requests/sec and rows/sec extras); the first-row results record the
// p50/p95 latency from sending Generate to receiving the first Row —
// the interactive time-to-first-query a service client experiences.
func perfSuiteServe() ([]PerfResult, error) {
	srv, err := service.New(service.Config{
		Datasets:     []service.DatasetSpec{{Name: "xuetang", Scale: 0.05}},
		Seed:         1,
		SampleValues: 10,
		Workers:      1,
		K:            2,
		WarmRounds:   1,
		WarmEpisodes: 4,
		DrainTimeout: 2 * time.Second,
		Logf:         func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	conn, err := client.Dial(ln.Addr().String(), &client.Config{Seed: 42, Name: "bench"})
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	const reqN = 8
	req := client.Request{
		Metric: "cardinality", IsRange: true, Lo: 1, Hi: 100000,
		N: reqN, MaxAttempts: 4000,
	}
	// First request pre-trains the registry entry; everything measured
	// below serves from the warm model.
	if err := drainStream(conn, req); err != nil {
		return nil, err
	}

	// The admission twin: identical server plus the full protection layer
	// (authenticated tenant, rate bucket, stream caps, deadline cap,
	// attempt budget — all sized to never refuse the benchmark), so the
	// delta is the pure bookkeeping cost of protection. The two servers'
	// measurements are interleaved A/B/A/B and each keeps its fastest
	// round: machine drift between rounds hits both sides equally instead
	// of biasing whichever ran last. The committed admission_overhead_pct
	// is the contract that protection stays <5%.
	admitConn, admitCleanup, err := dialAdmissionTwin(req)
	if err != nil {
		return nil, err
	}
	defer admitCleanup()

	bench := func(name string, c *client.Conn) PerfResult {
		return measure(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := drainStream(c, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	var serveReq, admitReq PerfResult
	for round := 0; round < 3; round++ {
		plain := bench("ServeRequest8", conn)
		admit := bench("ServeRequest8Admission", admitConn)
		if round == 0 || plain.NsPerOp < serveReq.NsPerOp {
			serveReq = plain
		}
		if round == 0 || admit.NsPerOp < admitReq.NsPerOp {
			admitReq = admit
		}
	}
	serveReq.Extra = map[string]float64{
		"requests_per_sec": 1e9 / serveReq.NsPerOp,
		"rows_per_sec":     float64(reqN) * 1e9 / serveReq.NsPerOp,
	}
	admitReq.Extra = map[string]float64{
		"requests_per_sec":       1e9 / admitReq.NsPerOp,
		"admission_overhead_pct": (admitReq.NsPerOp - serveReq.NsPerOp) / serveReq.NsPerOp * 100,
	}

	// Time-to-first-row over dedicated single-row requests: wall clock
	// from Generate to the first Row frame.
	const samples = 30
	one := req
	one.N = 1
	lats := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		start := time.Now()
		st, err := conn.Generate(context.Background(), one)
		if err != nil {
			return nil, err
		}
		first := false
		for st.Next() {
			if !first {
				lats = append(lats, float64(time.Since(start).Nanoseconds()))
				first = true
			}
		}
		if err := st.Err(); err != nil {
			return nil, err
		}
		if !first {
			return nil, fmt.Errorf("bench: no satisfied row within %d attempts", one.MaxAttempts)
		}
	}
	sort.Float64s(lats)
	p50 := PerfResult{Name: "ServeFirstRowP50", NsPerOp: lats[len(lats)/2]}
	p95 := PerfResult{Name: "ServeFirstRowP95", NsPerOp: lats[len(lats)*95/100]}

	results := []PerfResult{serveReq, admitReq, p50, p95}
	results = append(results, perfWireReader()...)
	return results, nil
}

// dialAdmissionTwin builds the protection-enabled twin of the serve
// benchmark server (token check, bucket math, stream caps, deadline
// context, attempt metering — every quota configured, none binding),
// pre-trains its registry entry with one request, and returns an
// authenticated connection plus a cleanup that tears both down.
func dialAdmissionTwin(req client.Request) (*client.Conn, func(), error) {
	srv, err := service.New(service.Config{
		Datasets:     []service.DatasetSpec{{Name: "xuetang", Scale: 0.05}},
		Seed:         1,
		SampleValues: 10,
		Workers:      1,
		K:            2,
		WarmRounds:   1,
		WarmEpisodes: 4,
		DrainTimeout: 2 * time.Second,
		Tenants: []service.TenantConfig{{
			Name: "bench", Token: "bench-token",
			Limits: service.TenantLimits{
				RatePerSec: 1e6, Burst: 1 << 20, MaxStreams: 1 << 20,
				AttemptBudget: 1 << 40, AttemptWindow: time.Hour,
			},
		}},
		MaxSessions:       1 << 20,
		MaxStreams:        1 << 20,
		MaxRequestTimeout: time.Hour,
		Logf:              func(string, ...any) {},
	})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(ln)

	conn, err := client.Dial(ln.Addr().String(), &client.Config{Seed: 42, Name: "bench", Token: "bench-token"})
	if err != nil {
		srv.Shutdown(context.Background())
		return nil, nil, err
	}
	cleanup := func() {
		conn.Close()
		srv.Shutdown(context.Background())
	}
	if err := drainStream(conn, req); err != nil { // pre-train the twin's entry
		cleanup()
		return nil, nil, err
	}
	return conn, cleanup, nil
}

// perfWireReader measures per-frame decode cost of the two wire readers
// on a representative Row frame: ReadMessage allocates a fresh payload
// buffer per frame; Reader amortizes one grow-only buffer across frames
// — the allocation the session read loop and the client demux loop no
// longer pay per row.
func perfWireReader() []PerfResult {
	var frame bytes.Buffer
	wire.WriteMessage(&frame, &wire.Row{
		ID: 7, SQL: "SELECT s.id FROM student s WHERE s.age > 21 AND s.score < 95", Measured: 1234, Satisfied: true,
	})
	raw := frame.Bytes()

	fresh := measure("WireReadMessage", func(b *testing.B) {
		b.ReportAllocs()
		r := bytes.NewReader(raw)
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			if _, err := wire.ReadMessage(r, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	reused := measure("WireReaderReuse", func(b *testing.B) {
		b.ReportAllocs()
		r := bytes.NewReader(raw)
		rd := wire.NewReader(r, 0)
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			if _, err := rd.ReadMessage(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if reused.AllocsPerOp > 0 || fresh.AllocsPerOp > 0 {
		reused.Extra = map[string]float64{
			"allocs_saved_per_frame": fresh.AllocsPerOp - reused.AllocsPerOp,
		}
	}
	return []PerfResult{fresh, reused}
}

// fleetShardCounts are the fleet sizes the fleet suite sweeps.
var fleetShardCounts = []int{1, 2, 4, 8}

// perfSuiteFleet measures time-to-N-satisfied for sharded data-parallel
// training: for each fleet size it trains a fresh ShardedTrainer to a
// 70% per-epoch satisfied rate (weak scaling — the per-epoch episode
// budget grows with the fleet, 64 episodes per shard) and then generates
// 50 satisfied queries, reporting the critical-path time: the wall-clock
// the fleet takes with one core per shard, which is what the replica-Env
// shard topology deploys onto. The shards timeshare this machine's
// cores, so per-shard busy time is measured as train_wall/shards (the
// equal episode quotas keep the shards balanced) plus the generation
// wall-clock on shard 0. The fleet's fewer-epochs-to-target convergence
// (averaged diverse exploration + linear LR scaling) is what the
// speedup_vs_1shard extras record. The total single-core compute GROWS
// with the fleet (weak scaling); the win is elapsed time on fleet
// hardware, never total CPU — EXPERIMENTS.md spells this out.
//
// Convergence benches need a fixed workload, so benchtime selects the
// seed-replication count rather than an op budget: short CI smokes run
// one seed, the committed snapshots average three.
func perfSuiteFleet(benchtime time.Duration) ([]PerfResult, error) {
	seeds := []int64{1, 2, 3}
	if benchtime < time.Second {
		seeds = seeds[:1]
	}
	const (
		target    = 0.7
		patience  = 2
		maxEpochs = 40
		perShard  = 64
		wantN     = 50
		attempts  = 4000
	)
	constraint := rl.RangeConstraint(rl.Cardinality, 10, 500)
	results := make([]PerfResult, 0, len(fleetShardCounts))
	var baseline float64
	for _, shards := range fleetShardCounts {
		var modeledSum float64
		for _, seed := range seeds {
			setup, err := NewSetup("tpch", 0.05, 25, 1)
			if err != nil {
				return nil, err
			}
			cfg := rl.FastConfig()
			cfg.Seed = seed
			cfg.Workers = 1
			s := rl.NewShardedTrainer(setup.Env, constraint, cfg, shards)
			start := time.Now()
			_, err = s.TrainUntilContext(context.Background(), target, patience, maxEpochs, perShard*shards)
			if err != nil {
				return nil, fmt.Errorf("fleet bench shards=%d seed=%d: %w", shards, seed, err)
			}
			trainWall := time.Since(start)
			genStart := time.Now()
			gen, _, err := s.GenerateSatisfiedContext(context.Background(), wantN, attempts)
			if err != nil {
				return nil, fmt.Errorf("fleet bench shards=%d seed=%d: %w", shards, seed, err)
			}
			genWall := time.Since(genStart)
			if len(gen) < wantN {
				return nil, fmt.Errorf("fleet bench shards=%d seed=%d: only %d/%d satisfied within %d attempts",
					shards, seed, len(gen), wantN, attempts)
			}
			modeledSum += float64(trainWall)/float64(shards) + float64(genWall)
		}
		r := PerfResult{
			Name:    fmt.Sprintf("FleetTimeToSatisfied50_shards%d", shards),
			NsPerOp: modeledSum / float64(len(seeds)),
		}
		if shards == 1 {
			baseline = r.NsPerOp
		} else if r.NsPerOp > 0 {
			r.Extra = map[string]float64{"speedup_vs_1shard": baseline / r.NsPerOp}
		}
		results = append(results, r)
	}
	return results, nil
}

// drainStream runs one request and consumes its stream to Done.
func drainStream(conn *client.Conn, req client.Request) error {
	st, err := conn.Generate(context.Background(), req)
	if err != nil {
		return err
	}
	for st.Next() {
	}
	return st.Err()
}

// gitSHA stamps snapshots with the commit they measured, suffixed
// "-dirty" when the working tree has uncommitted changes (so a snapshot
// never claims to be a clean commit it isn't). Outside a git checkout
// (or without the git binary) it degrades to "unknown" rather than
// failing the run.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if sha == "" {
		return "unknown"
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		sha += "-dirty"
	}
	return sha
}
