package meta

import (
	"math"
	"math/rand"
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/fsm"
	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
	"learnedsqlgen/internal/token"
)

func testEnv(t testing.TB) *rl.Env {
	t.Helper()
	db, err := datagen.Generate(datagen.NameTPCH, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	vocab := token.Build(db, 8, 7)
	return rl.NewEnv(db, vocab, fsm.DefaultConfig())
}

func fastCfg() rl.Config {
	cfg := rl.FastConfig()
	cfg.Hidden = 20
	cfg.EmbedDim = 20
	return cfg
}

func TestDomainTasks(t *testing.T) {
	d := Domain{Metric: rl.Cardinality, Lo: 0, Hi: 10000, K: 5}
	tasks := d.Tasks()
	if len(tasks) != 5 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].Lo != 0 || tasks[0].Hi != 2000 {
		t.Errorf("task0 = %v", tasks[0])
	}
	if tasks[4].Lo != 8000 || tasks[4].Hi != 10000 {
		t.Errorf("task4 = %v", tasks[4])
	}
	for _, c := range tasks {
		if !c.IsRange || c.Metric != rl.Cardinality {
			t.Errorf("bad task %v", c)
		}
	}
}

func TestCenter(t *testing.T) {
	if center(rl.RangeConstraint(rl.Cost, 10, 30)) != 20 {
		t.Error("range center")
	}
	if center(rl.PointConstraint(rl.Cost, 7)) != 7 {
		t.Error("point center")
	}
}

// valueNetLoss computes Σ_t w_t·V_t for gradient checking.
func valueNetLoss(v *ValueNet, inputs, actions []int, rewards, w []float64) float64 {
	tape := v.Forward(inputs, actions, rewards)
	s := 0.0
	for t, val := range tape.Values() {
		s += w[t] * val
	}
	return s
}

func checkValueNetGrads(t *testing.T, v *ValueNet, params []*nn.Param, inputs, actions []int, rewards []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	w := make([]float64, len(inputs))
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for _, p := range v.Params() {
		p.ZeroGrad()
	}
	tape := v.Forward(inputs, actions, rewards)
	v.Backward(tape, w)

	const eps, tol = 1e-5, 1e-4
	for _, p := range params {
		n := len(p.Val.Data)
		samples := n
		if samples > 12 {
			samples = 12
		}
		for s := 0; s < samples; s++ {
			idx := s
			if n > samples {
				idx = rng.Intn(n)
			}
			orig := p.Val.Data[idx]
			p.Val.Data[idx] = orig + eps
			up := valueNetLoss(v, inputs, actions, rewards, w)
			p.Val.Data[idx] = orig - eps
			down := valueNetLoss(v, inputs, actions, rewards, w)
			p.Val.Data[idx] = orig
			want := (up - down) / (2 * eps)
			got := p.Grad.Data[idx]
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g", p.Name, idx, got, want)
			}
		}
	}
}

func TestValueNetGradCheckStatePath(t *testing.T) {
	// Window=0 removes the stop-gradient triple path, so the state LSTM
	// and value MLP gradients must match finite differences exactly.
	rng := rand.New(rand.NewSource(1))
	v := NewValueNet(10, 6, 5, rng)
	v.Window = 0
	inputs := []int{v.BOS(), 2, 5, 7}
	actions := []int{2, 5, 7, 9}
	rewards := []float64{0, 0.5, 0, 1}
	params := append(v.state.Params(), v.val.Params()...)
	checkValueNetGrads(t, v, params, inputs, actions, rewards)
}

func TestValueNetGradCheckEncoderPath(t *testing.T) {
	// With an active window, encoder and action-embedding gradients flow
	// through the triples; the state features inside triples are detached
	// by design, so only enc/actEmb/val are checked here.
	rng := rand.New(rand.NewSource(2))
	v := NewValueNet(10, 6, 5, rng)
	v.Window = 3
	inputs := []int{v.BOS(), 1, 4, 8, 3}
	actions := []int{1, 4, 8, 3, 6}
	rewards := []float64{0.2, 0, 0.9, 0.1, 1}
	params := append(append(v.enc.Params(), v.actEmb.Params()...), v.val.Params()...)
	checkValueNetGrads(t, v, params, inputs, actions, rewards)
}

func TestValueNetForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := NewValueNet(12, 6, 5, rng)
	inputs := []int{v.BOS(), 3, 7}
	actions := []int{3, 7, 2}
	rewards := []float64{0, 1, 0.5}
	tape := v.Forward(inputs, actions, rewards)
	if len(tape.Values()) != 3 {
		t.Fatalf("V length = %d", len(tape.Values()))
	}
	for _, val := range tape.Values() {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			t.Fatal("non-finite V")
		}
	}
	// z at step 0 must come from an empty window.
	if len(tape.windows[0]) != 0 {
		t.Error("step 0 must have an empty triple window")
	}
	if len(tape.windows[2]) != 2 {
		t.Errorf("step 2 window = %d triples, want 2", len(tape.windows[2]))
	}
}

func TestMetaPretrainAndAdapt(t *testing.T) {
	env := testEnv(t)
	domain := Domain{Metric: rl.Cardinality, Lo: 0, Hi: 2000, K: 4}
	cfg := fastCfg()
	m := NewMetaTrainer(env, domain, cfg)

	stats := m.Pretrain(3, 10)
	if len(stats) != 3 {
		t.Fatalf("pretrain stats = %d", len(stats))
	}
	for _, s := range stats {
		if s.Episodes != 4*10 {
			t.Errorf("episodes per round = %d, want 40", s.Episodes)
		}
	}

	// Adapt to an unseen sub-range.
	a := m.Adapt(rl.RangeConstraint(rl.Cardinality, 300, 700))
	tr := a.Train(2, 10)
	if len(tr) != 2 {
		t.Fatal("adapt trace size")
	}
	gen := a.Generate(5)
	if len(gen) != 5 {
		t.Fatal("adapted generation failed")
	}
	for _, g := range gen {
		if g.Statement == nil {
			t.Fatal("nil statement")
		}
	}
	if _, attempts := a.GenerateSatisfied(2, 30); attempts > 30 {
		t.Error("attempt cap breached")
	}
}

func TestAdaptWarmStartsFromNearestTask(t *testing.T) {
	env := testEnv(t)
	domain := Domain{Metric: rl.Cardinality, Lo: 0, Hi: 1000, K: 2}
	m := NewMetaTrainer(env, domain, fastCfg())
	// Mark task-1 actor weights so we can recognize them after Adapt.
	m.actors[1].Head.B.Val.Data[0] = 42
	a := m.Adapt(rl.RangeConstraint(rl.Cardinality, 800, 900)) // nearest = task 1
	if a.actor.Head.B.Val.Data[0] != 42 {
		t.Error("Adapt did not clone the nearest task's actor")
	}
	b := m.Adapt(rl.RangeConstraint(rl.Cardinality, 0, 100)) // nearest = task 0
	if b.actor.Head.B.Val.Data[0] == 42 {
		t.Error("Adapt cloned the wrong actor")
	}
}

func TestACExtend(t *testing.T) {
	env := testEnv(t)
	domain := Domain{Metric: rl.Cardinality, Lo: 0, Hi: 2000, K: 4}
	cfg := fastCfg()
	x := NewACExtend(env, domain, cfg)

	stats := x.Pretrain(2, 8)
	if len(stats) != 2 {
		t.Fatal("pretrain trace size")
	}

	// Domain [0,2000] in 4 tasks has centers {250, 750, 1250, 1750}.
	c := rl.RangeConstraint(rl.Cardinality, 600, 800) // center 700 → task 1
	if row := x.taskRow(c); row != env.Vocab.Size()+1 {
		t.Errorf("taskRow = %d, want vocab+1 (second task)", row)
	}
	s := x.AdaptEpoch(c, 8)
	if s.Episodes != 8 {
		t.Errorf("adapt episodes = %d", s.Episodes)
	}
	gen := x.Generate(c, 5)
	if len(gen) != 5 {
		t.Fatal("generation failed")
	}
	if _, attempts := x.GenerateSatisfied(c, 2, 20); attempts > 20 {
		t.Error("attempt cap breached")
	}
}

func TestMetaTrainingImproves(t *testing.T) {
	env := testEnv(t)
	// A single easy-to-learn task isolates learning from task switching.
	domain := Domain{Metric: rl.Cardinality, Lo: 1, Hi: 40, K: 1}
	cfg := fastCfg()
	cfg.Seed = 4
	m := NewMetaTrainer(env, domain, cfg)
	stats := m.Pretrain(16, 25)
	head := (stats[0].AvgReward + stats[1].AvgReward + stats[2].AvgReward) / 3
	n := len(stats)
	tail := (stats[n-1].AvgReward + stats[n-2].AvgReward + stats[n-3].AvgReward) / 3
	if tail <= head {
		t.Errorf("meta-critic training did not improve: head %.3f tail %.3f", head, tail)
	}
}
