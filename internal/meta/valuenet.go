// Package meta implements §6 of the paper: pre-training a single
// meta-critic over K sub-range constraint tasks of a domain so that a new
// constraint inside the domain trains quickly, plus the two §7.4
// comparison strategies — Scratch (retrain per constraint) and AC-extend
// (constraint encoded into the state of a single actor–critic).
package meta

import (
	"math/rand"

	"learnedsqlgen/internal/nn"
)

// ValueNet is the meta-critic: a state LSTM shared with no task, a
// constraint encoder over a sliding window of (state, action, reward)
// triples producing a task embedding z, and a meta-value MLP V(s, z).
//
// The constraint encoder sees the reward stream, which "directly
// determines the task given the query and selected token" (§6) — that is
// how the network identifies which constraint it is criticizing without
// being told explicitly.
type ValueNet struct {
	StateDim int
	ActDim   int
	ZDim     int
	Window   int

	state  *nn.SeqNet    // token sequence → per-step state feature
	actEmb *nn.Embedding // action id → ActDim
	enc    *nn.MLP       // mean triple feature → z
	val    *nn.MLP       // [state feature, z] → V
	ws     *nn.Workspace // scratch + tape pool for the state LSTM
}

// NewValueNet builds the meta-critic for a vocabulary of the given size.
func NewValueNet(vocab, embedDim, hidden int, rng *rand.Rand) *ValueNet {
	v := &ValueNet{StateDim: 16, ActDim: 8, ZDim: 8, Window: 8}
	v.ws = nn.NewWorkspace(nil)
	v.state = nn.NewSeqNet("meta.state", vocab, embedDim, hidden, v.StateDim, 0, rng)
	v.actEmb = nn.NewEmbedding("meta.act", vocab+1, v.ActDim, rng)
	tripleDim := v.StateDim + v.ActDim + 1
	v.enc = nn.NewMLP("meta.enc", []int{tripleDim, 16, v.ZDim}, rng)
	v.val = nn.NewMLP("meta.val", []int{v.StateDim + v.ZDim, 24, 1}, rng)
	return v
}

// Params lists every trainable parameter.
func (v *ValueNet) Params() []*nn.Param {
	ps := v.state.Params()
	ps = append(ps, v.actEmb.Params()...)
	ps = append(ps, v.enc.Params()...)
	ps = append(ps, v.val.Params()...)
	return ps
}

// BOS is the state network's begin-of-sequence id.
func (v *ValueNet) BOS() int { return v.state.BOS() }

// Tape holds one episode's forward activations for Backward.
type Tape struct {
	seq     *nn.SeqState
	sfeat   [][]float64 // per-step state feature
	actions []int
	means   [][]float64    // per-step mean triple feature (encoder input)
	encCc   []*nn.MLPCache // encoder caches
	zs      [][]float64
	valCc   []*nn.MLPCache
	V       []float64
	// windows[t] lists the triple indices contributing to z_t.
	windows [][]int
}

// Values returns the per-step V estimates.
func (t *Tape) Values() []float64 { return t.V }

// Forward runs the meta-critic over one episode. inputs[t] is the token
// fed at step t (BOS then the chosen actions); actions[t]/rewards[t] are
// the transition at step t. z_t is computed from the triples strictly
// before t, so V(s_t, z_t) only conditions on observed feedback.
func (v *ValueNet) Forward(inputs, actions []int, rewards []float64) *Tape {
	T := len(inputs)
	tape := &Tape{seq: v.ws.Pool().GetState(v.state.Hidden), actions: actions}
	// Triple features become available as steps complete.
	var triples [][]float64
	for t := 0; t < T; t++ {
		// training=true records the BPTT tape (the net has no dropout, so a
		// nil rng changes nothing); the returned slice is workspace scratch
		// and must be copied to survive the next step.
		sf := append([]float64(nil), v.state.StepInto(v.ws, tape.seq, inputs[t], true, nil)...)
		tape.sfeat = append(tape.sfeat, sf)

		// Window over the most recent completed triples.
		lo := len(triples) - v.Window
		if lo < 0 {
			lo = 0
		}
		var window []int
		mean := make([]float64, v.StateDim+v.ActDim+1)
		for i := lo; i < len(triples); i++ {
			window = append(window, i)
			for j, f := range triples[i] {
				mean[j] += f
			}
		}
		if len(window) > 0 {
			inv := 1.0 / float64(len(window))
			for j := range mean {
				mean[j] *= inv
			}
		}
		z, encCache := v.enc.Forward(mean)
		tape.means = append(tape.means, mean)
		tape.encCc = append(tape.encCc, encCache)
		tape.zs = append(tape.zs, z)
		tape.windows = append(tape.windows, window)

		in := make([]float64, 0, v.StateDim+v.ZDim)
		in = append(in, sf...)
		in = append(in, z...)
		val, valCache := v.val.Forward(in)
		tape.valCc = append(tape.valCc, valCache)
		tape.V = append(tape.V, val[0])

		// Complete this step's triple for future windows. The state
		// feature enters detached (stop-gradient): encoder gradients do
		// not flow back into the state LSTM through the triples, the
		// usual stabilization for meta-critics.
		feat := make([]float64, 0, v.StateDim+v.ActDim+1)
		feat = append(feat, sf...)
		feat = append(feat, v.actEmb.Row(actions[t])...)
		feat = append(feat, rewards[t])
		triples = append(triples, feat)
	}
	return tape
}

// Backward propagates per-step value gradients dV through the value MLP,
// the encoder (into the action embeddings) and the state LSTM.
func (v *ValueNet) Backward(tape *Tape, dV []float64) {
	T := len(tape.V)
	dsfeat := make([][]float64, T)
	for t := 0; t < T; t++ {
		if dV[t] == 0 {
			continue
		}
		din := v.val.Backward(tape.valCc[t], []float64{dV[t]})
		if dsfeat[t] == nil {
			dsfeat[t] = make([]float64, v.StateDim)
		}
		for j := 0; j < v.StateDim; j++ {
			dsfeat[t][j] += din[j]
		}
		dz := din[v.StateDim:]
		dmean := v.enc.Backward(tape.encCc[t], dz)
		n := len(tape.windows[t])
		if n == 0 {
			continue
		}
		inv := 1.0 / float64(n)
		for _, i := range tape.windows[t] {
			// Triple i = [sfeat_i (stop-grad), actEmb(a_i), r_i].
			start := v.StateDim
			dact := make([]float64, v.ActDim)
			for j := 0; j < v.ActDim; j++ {
				dact[j] = dmean[start+j] * inv
			}
			v.actEmb.Accumulate(tape.actions[i], dact)
		}
	}
	v.state.BackwardInto(v.ws, tape.seq, dsfeat)
	v.ws.Recycle(tape.seq)
	tape.seq = nil
}
