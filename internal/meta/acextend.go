package meta

import (
	"context"
	"math"
	"math/rand"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

// ACExtend is the §7.4 comparison strategy that "directly encoded multiple
// constraints to the state without using the meta-critic": one shared
// actor–critic pair whose input sequence is prefixed with a
// constraint-identifying embedding row (one per pre-training task; a new
// constraint maps to its nearest task row). The paper's finding — that
// this coarse task conditioning generalizes worse than the meta-critic's
// (state, action, reward) encoder — is reproduced in Figure 9.
type ACExtend struct {
	Env    *rl.Env
	Cfg    rl.Config
	Domain Domain
	Tasks  []rl.Constraint

	actor     *nn.SeqNet
	critic    *nn.SeqNet
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	sampler   *rl.Trainer
}

// NewACExtend builds the shared conditioned networks: the embedding table
// holds |A| action rows, K task rows and the BOS row.
func NewACExtend(env *rl.Env, domain Domain, cfg rl.Config) *ACExtend {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := env.Vocab.Size()
	rows := vocab + domain.K // + implicit BOS row from SeqNet
	return &ACExtend{
		Env: env, Cfg: cfg, Domain: domain, Tasks: domain.Tasks(),
		actor:     nn.NewSeqNet("acx.actor", rows, cfg.EmbedDim, cfg.Hidden, vocab, cfg.Dropout, rng),
		critic:    nn.NewSeqNet("acx.critic", rows, cfg.EmbedDim, cfg.Hidden, 1, cfg.Dropout, rng),
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
		sampler:   rl.NewSampler(env, domain.Tasks()[0], cfg),
	}
}

// taskRow returns the embedding row identifying the task nearest to c.
func (x *ACExtend) taskRow(c rl.Constraint) int {
	best, bestDist := 0, math.Inf(1)
	for i, task := range x.Tasks {
		if d := math.Abs(center(task) - center(c)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return x.Env.Vocab.Size() + best
}

// trainConstraint runs episodes under one constraint, updating the shared
// networks. Batches roll out concurrently (every episode of a batch
// shares the constraint's task-row start token). A done ctx stops at the
// next batch boundary without applying a partial update.
func (x *ACExtend) trainConstraint(ctx context.Context, c rl.Constraint, episodes int) (rl.EpochStats, error) {
	x.sampler.SetConstraint(c)
	start := x.taskRow(c)
	stats := rl.EpochStats{}
	var trainErr error
	for done := 0; done < episodes; {
		n := x.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch, err := x.sampler.SampleBatchContext(ctx, x.actor, start, n, false, true)
		if err != nil {
			trainErr = err
			break
		}
		starts := make([]int, n)
		for i, traj := range batch {
			starts[i] = start
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		x.update(batch, starts)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats, trainErr
}

// update applies one batched actor–critic step; the critic re-processes
// each trajectory's input sequence (with the task prefix) to produce V.
func (x *ACExtend) update(batch []*rl.Trajectory, starts []int) {
	scale := 1.0 / float64(len(batch))
	vocab := x.Env.Vocab.Size()
	ws := x.sampler.Workspace()
	pool := ws.Pool()
	for bi, traj := range batch {
		T := len(traj.Steps)
		criticState := pool.GetState(x.critic.Hidden)
		V := make([]float64, T)
		in := starts[bi]
		for i, s := range traj.Steps {
			V[i] = x.critic.StepInto(ws, criticState, in, true, nil)[0]
			in = s.Action
		}
		dActor := make([][]float64, T)
		dCritic := make([][]float64, T)
		for i, s := range traj.Steps {
			vNext := 0.0
			if i+1 < T {
				vNext = V[i+1]
			}
			delta := s.Reward + x.Cfg.Gamma*vNext - V[i]
			d := pool.GetVec(vocab)
			nn.PolicyGradLogits(s.Probs, s.Valid, s.Action, delta*scale, x.Cfg.EntropyWeight*scale, d)
			dActor[i] = d
			dc := pool.GetVec(1)
			dc[0] = -2 * delta * scale
			dCritic[i] = dc
		}
		x.actor.BackwardInto(ws, traj.ActorState, dActor)
		x.critic.BackwardInto(ws, criticState, dCritic)
		ws.Recycle(criticState)
		for i := range dActor {
			pool.PutVec(dActor[i])
			pool.PutVec(dCritic[i])
		}
	}
	x.sampler.ReleaseBatch(batch)
	x.actorOpt.Step(x.actor.Params())
	x.criticOpt.Step(x.critic.Params())
}

// Pretrain cycles the K tasks for rounds, like MetaTrainer.Pretrain.
func (x *ACExtend) Pretrain(rounds, episodesPerTask int) []rl.EpochStats {
	out, _ := x.PretrainContext(context.Background(), rounds, episodesPerTask)
	return out
}

// PretrainContext is Pretrain under ctx, rl.Config.TrainBudget, and
// rl.Config.OnEpoch (per completed round), mirroring
// MetaTrainer.PretrainContext.
func (x *ACExtend) PretrainContext(ctx context.Context, rounds, episodesPerTask int) ([]rl.EpochStats, error) {
	tctx, cancel := trainCtx(ctx, x.Cfg)
	defer cancel()
	var out []rl.EpochStats
	for r := 0; r < rounds; r++ {
		agg := rl.EpochStats{}
		for _, c := range x.Tasks {
			s, err := x.trainConstraint(tctx, c, episodesPerTask)
			if err != nil {
				return out, stopErr(len(out), tctx)
			}
			agg.Episodes += s.Episodes
			agg.AvgReward += s.AvgReward
			agg.SatisfiedRate += s.SatisfiedRate
		}
		agg.AvgReward /= float64(len(x.Tasks))
		agg.SatisfiedRate /= float64(len(x.Tasks))
		out = append(out, agg)
		if err := onEpoch(x.Cfg, len(out), agg); err != nil {
			return out, err
		}
	}
	return out, nil
}

// AdaptEpoch continues training the shared networks on a new constraint
// and returns the epoch stats.
func (x *ACExtend) AdaptEpoch(c rl.Constraint, episodes int) rl.EpochStats {
	s, _ := x.AdaptEpochContext(context.Background(), c, episodes)
	return s
}

// AdaptEpochContext is AdaptEpoch with cancellation.
func (x *ACExtend) AdaptEpochContext(ctx context.Context, c rl.Constraint, episodes int) (rl.EpochStats, error) {
	return x.trainConstraint(ctx, c, episodes)
}

// Generate samples n statements for constraint c.
func (x *ACExtend) Generate(c rl.Constraint, n int) []rl.Generated {
	out, _ := x.GenerateContext(context.Background(), c, n)
	return out
}

// GenerateContext is Generate with cancellation.
func (x *ACExtend) GenerateContext(ctx context.Context, c rl.Constraint, n int) ([]rl.Generated, error) {
	x.sampler.SetConstraint(c)
	start := x.taskRow(c)
	batch, err := x.sampler.SampleBatchContext(ctx, x.actor, start, n, false, false)
	if err != nil {
		return nil, err
	}
	out := make([]rl.Generated, 0, n)
	for _, traj := range batch {
		out = append(out, rl.Generated{
			Statement: traj.Final, SQL: traj.Final.SQL(),
			Measured: traj.Measured, Satisfied: traj.Satisfied,
		})
	}
	return out, nil
}

// GenerateSatisfied samples until n satisfied statements or maxAttempts.
func (x *ACExtend) GenerateSatisfied(c rl.Constraint, n, maxAttempts int) ([]rl.Generated, int) {
	out, attempts, _ := x.GenerateSatisfiedContext(context.Background(), c, n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation.
func (x *ACExtend) GenerateSatisfiedContext(ctx context.Context, c rl.Constraint, n, maxAttempts int) ([]rl.Generated, int, error) {
	x.sampler.SetConstraint(c)
	start := x.taskRow(c)
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		batch, err := x.sampler.SampleBatchContext(ctx, x.actor, start, 1, false, false)
		if err != nil {
			return out, attempts, err
		}
		traj := batch[0]
		attempts++
		if traj.Satisfied {
			out = append(out, rl.Generated{
				Statement: traj.Final, SQL: traj.Final.SQL(),
				Measured: traj.Measured, Satisfied: true,
			})
		}
	}
	return out, attempts, nil
}
