package meta

import (
	"math"
	"math/rand"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

// ACExtend is the §7.4 comparison strategy that "directly encoded multiple
// constraints to the state without using the meta-critic": one shared
// actor–critic pair whose input sequence is prefixed with a
// constraint-identifying embedding row (one per pre-training task; a new
// constraint maps to its nearest task row). The paper's finding — that
// this coarse task conditioning generalizes worse than the meta-critic's
// (state, action, reward) encoder — is reproduced in Figure 9.
type ACExtend struct {
	Env    *rl.Env
	Cfg    rl.Config
	Domain Domain
	Tasks  []rl.Constraint

	actor     *nn.SeqNet
	critic    *nn.SeqNet
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	sampler   *rl.Trainer
}

// NewACExtend builds the shared conditioned networks: the embedding table
// holds |A| action rows, K task rows and the BOS row.
func NewACExtend(env *rl.Env, domain Domain, cfg rl.Config) *ACExtend {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := env.Vocab.Size()
	rows := vocab + domain.K // + implicit BOS row from SeqNet
	return &ACExtend{
		Env: env, Cfg: cfg, Domain: domain, Tasks: domain.Tasks(),
		actor:     nn.NewSeqNet("acx.actor", rows, cfg.EmbedDim, cfg.Hidden, vocab, cfg.Dropout, rng),
		critic:    nn.NewSeqNet("acx.critic", rows, cfg.EmbedDim, cfg.Hidden, 1, cfg.Dropout, rng),
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
		sampler:   rl.NewSampler(env, domain.Tasks()[0], cfg),
	}
}

// taskRow returns the embedding row identifying the task nearest to c.
func (x *ACExtend) taskRow(c rl.Constraint) int {
	best, bestDist := 0, math.Inf(1)
	for i, task := range x.Tasks {
		if d := math.Abs(center(task) - center(c)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return x.Env.Vocab.Size() + best
}

// trainConstraint runs episodes under one constraint, updating the shared
// networks. Batches roll out concurrently (every episode of a batch
// shares the constraint's task-row start token).
func (x *ACExtend) trainConstraint(c rl.Constraint, episodes int) rl.EpochStats {
	x.sampler.SetConstraint(c)
	start := x.taskRow(c)
	stats := rl.EpochStats{}
	for done := 0; done < episodes; {
		n := x.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch := x.sampler.SampleBatch(x.actor, start, n, false, true)
		starts := make([]int, n)
		for i, traj := range batch {
			starts[i] = start
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		x.update(batch, starts)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats
}

// update applies one batched actor–critic step; the critic re-processes
// each trajectory's input sequence (with the task prefix) to produce V.
func (x *ACExtend) update(batch []*rl.Trajectory, starts []int) {
	scale := 1.0 / float64(len(batch))
	vocab := x.Env.Vocab.Size()
	ws := x.sampler.Workspace()
	pool := ws.Pool()
	for bi, traj := range batch {
		T := len(traj.Steps)
		criticState := pool.GetState(x.critic.Hidden)
		V := make([]float64, T)
		in := starts[bi]
		for i, s := range traj.Steps {
			V[i] = x.critic.StepInto(ws, criticState, in, true, nil)[0]
			in = s.Action
		}
		dActor := make([][]float64, T)
		dCritic := make([][]float64, T)
		for i, s := range traj.Steps {
			vNext := 0.0
			if i+1 < T {
				vNext = V[i+1]
			}
			delta := s.Reward + x.Cfg.Gamma*vNext - V[i]
			d := pool.GetVec(vocab)
			nn.PolicyGradLogits(s.Probs, s.Valid, s.Action, delta*scale, x.Cfg.EntropyWeight*scale, d)
			dActor[i] = d
			dc := pool.GetVec(1)
			dc[0] = -2 * delta * scale
			dCritic[i] = dc
		}
		x.actor.BackwardInto(ws, traj.ActorState, dActor)
		x.critic.BackwardInto(ws, criticState, dCritic)
		ws.Recycle(criticState)
		for i := range dActor {
			pool.PutVec(dActor[i])
			pool.PutVec(dCritic[i])
		}
	}
	x.sampler.ReleaseBatch(batch)
	x.actorOpt.Step(x.actor.Params())
	x.criticOpt.Step(x.critic.Params())
}

// Pretrain cycles the K tasks for rounds, like MetaTrainer.Pretrain.
func (x *ACExtend) Pretrain(rounds, episodesPerTask int) []rl.EpochStats {
	var out []rl.EpochStats
	for r := 0; r < rounds; r++ {
		agg := rl.EpochStats{}
		for _, c := range x.Tasks {
			s := x.trainConstraint(c, episodesPerTask)
			agg.Episodes += s.Episodes
			agg.AvgReward += s.AvgReward
			agg.SatisfiedRate += s.SatisfiedRate
		}
		agg.AvgReward /= float64(len(x.Tasks))
		agg.SatisfiedRate /= float64(len(x.Tasks))
		out = append(out, agg)
	}
	return out
}

// AdaptEpoch continues training the shared networks on a new constraint
// and returns the epoch stats.
func (x *ACExtend) AdaptEpoch(c rl.Constraint, episodes int) rl.EpochStats {
	return x.trainConstraint(c, episodes)
}

// Generate samples n statements for constraint c.
func (x *ACExtend) Generate(c rl.Constraint, n int) []rl.Generated {
	x.sampler.SetConstraint(c)
	start := x.taskRow(c)
	out := make([]rl.Generated, 0, n)
	for _, traj := range x.sampler.SampleBatch(x.actor, start, n, false, false) {
		out = append(out, rl.Generated{
			Statement: traj.Final, SQL: traj.Final.SQL(),
			Measured: traj.Measured, Satisfied: traj.Satisfied,
		})
	}
	return out
}

// GenerateSatisfied samples until n satisfied statements or maxAttempts.
func (x *ACExtend) GenerateSatisfied(c rl.Constraint, n, maxAttempts int) ([]rl.Generated, int) {
	x.sampler.SetConstraint(c)
	start := x.taskRow(c)
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		traj := x.sampler.SampleEpisodeFrom(x.actor, start, false, false)
		attempts++
		if traj.Satisfied {
			out = append(out, rl.Generated{
				Statement: traj.Final, SQL: traj.Final.SQL(),
				Measured: traj.Measured, Satisfied: true,
			})
		}
	}
	return out, attempts
}
