package meta

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

// Domain is the cardinality/cost span the meta-critic is pre-trained on,
// uniformly divided into K sub-range tasks (§6: e.g. [0, 10K] into
// {[0,2K], [2K,4K], ...}).
type Domain struct {
	Metric rl.Metric
	Lo, Hi float64
	K      int
}

// Tasks returns the K sub-range constraints.
func (d Domain) Tasks() []rl.Constraint {
	width := (d.Hi - d.Lo) / float64(d.K)
	out := make([]rl.Constraint, 0, d.K)
	for i := 0; i < d.K; i++ {
		lo := d.Lo + float64(i)*width
		out = append(out, rl.RangeConstraint(d.Metric, lo, lo+width))
	}
	return out
}

// center of a constraint for nearest-task lookup.
func center(c rl.Constraint) float64 {
	if c.IsRange {
		return (c.Lo + c.Hi) / 2
	}
	return c.Point
}

// MetaTrainer pre-trains one actor per task plus the shared meta-critic
// (Figure 3: multiple actors, one meta-value network with a constraint
// encoder).
type MetaTrainer struct {
	Env    *rl.Env
	Cfg    rl.Config
	Domain Domain
	Tasks  []rl.Constraint

	actors    []*nn.SeqNet
	actorOpts []*nn.Adam
	valueNet  *ValueNet
	valOpt    *nn.Adam
	sampler   *rl.Trainer
	rng       *rand.Rand
}

// NewMetaTrainer builds the multi-task setup.
func NewMetaTrainer(env *rl.Env, domain Domain, cfg rl.Config) *MetaTrainer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := env.Vocab.Size()
	m := &MetaTrainer{
		Env: env, Cfg: cfg, Domain: domain, Tasks: domain.Tasks(),
		valueNet: NewValueNet(vocab, cfg.EmbedDim, cfg.Hidden, rng),
		valOpt:   nn.NewAdam(cfg.CriticLR),
		sampler:  rl.NewSampler(env, domain.Tasks()[0], cfg),
		rng:      rng,
	}
	// Each task actor gets a distinct name: checkpoint serialization
	// (Save/Load) matches parameters by name, so K same-named actors
	// would collide in one file.
	for i := range m.Tasks {
		m.actors = append(m.actors,
			nn.NewSeqNet(fmt.Sprintf("task%02d", i), vocab, cfg.EmbedDim, cfg.Hidden, vocab, cfg.Dropout, rng))
		m.actorOpts = append(m.actorOpts, nn.NewAdam(cfg.ActorLR))
	}
	return m
}

// ValueNet exposes the shared meta-critic.
func (m *MetaTrainer) ValueNet() *ValueNet { return m.valueNet }

// Stats snapshots the rollout-throughput counters of the pre-training
// sampler (every Pretrain episode flows through it; adapted trainers
// report their own, see Adapted.Stats).
func (m *MetaTrainer) Stats() rl.TrainStats { return m.sampler.Stats() }

// trainBatch applies one batched update to an actor and the meta-critic
// from trajectories sampled under one constraint.
func (m *MetaTrainer) trainBatch(actor *nn.SeqNet, opt *nn.Adam, batch []*rl.Trajectory) {
	scale := 1.0 / float64(len(batch))
	vocab := m.Env.Vocab.Size()
	ws := m.sampler.Workspace()
	pool := ws.Pool()
	for _, traj := range batch {
		T := len(traj.Steps)
		inputs := make([]int, T)
		actions := make([]int, T)
		rewards := make([]float64, T)
		inputs[0] = m.valueNet.BOS()
		for i, s := range traj.Steps {
			if i > 0 {
				inputs[i] = traj.Steps[i-1].Action
			}
			actions[i] = s.Action
			rewards[i] = s.Reward
		}
		tape := m.valueNet.Forward(inputs, actions, rewards)
		V := tape.Values()

		dActor := make([][]float64, T)
		dV := make([]float64, T)
		for i, s := range traj.Steps {
			vNext := 0.0
			if i+1 < T {
				vNext = V[i+1]
			}
			delta := s.Reward + m.Cfg.Gamma*vNext - V[i]
			d := pool.GetVec(vocab)
			nn.PolicyGradLogits(s.Probs, s.Valid, s.Action, delta*scale, m.Cfg.EntropyWeight*scale, d)
			dActor[i] = d
			dV[i] = -2 * delta * scale
		}
		actor.BackwardInto(ws, traj.ActorState, dActor)
		for _, d := range dActor {
			pool.PutVec(d)
		}
		m.valueNet.Backward(tape, dV)
	}
	m.sampler.ReleaseBatch(batch)
	opt.Step(actor.Params())
	m.valOpt.Step(m.valueNet.Params())
}

// trainActor runs episodes for one (actor, constraint) pair, returning the
// epoch stats. Batches roll out concurrently on Cfg.Workers goroutines
// via the shared sampler; the meta-critic and actor update at the batch
// barrier. A done ctx stops at the next batch boundary without applying a
// partial update; the error is non-nil iff the run was cut short.
func (m *MetaTrainer) trainActor(ctx context.Context, actor *nn.SeqNet, opt *nn.Adam, c rl.Constraint, episodes int) (rl.EpochStats, error) {
	m.sampler.SetConstraint(c)
	stats := rl.EpochStats{}
	var trainErr error
	for done := 0; done < episodes; {
		n := m.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch, err := m.sampler.SampleBatchContext(ctx, actor, actor.BOS(), n, false, true)
		if err != nil {
			trainErr = err
			break
		}
		for _, traj := range batch {
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		m.trainBatch(actor, opt, batch)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats, trainErr
}

// Pretrain cycles the K tasks for the given number of rounds (each task
// runs episodesPerTask episodes per round) and returns per-round stats
// averaged over tasks.
func (m *MetaTrainer) Pretrain(rounds, episodesPerTask int) []rl.EpochStats {
	out, _ := m.PretrainContext(context.Background(), rounds, episodesPerTask)
	return out
}

// PretrainContext is Pretrain under ctx, rl.Config.TrainBudget, and
// rl.Config.OnEpoch (invoked once per completed round with the
// task-averaged stats). The returned trace holds every completed round;
// an interrupted round's partial stats are discarded. Weights reflect
// whole-batch updates only, so a cancelled pre-train remains usable for
// Adapt.
func (m *MetaTrainer) PretrainContext(ctx context.Context, rounds, episodesPerTask int) ([]rl.EpochStats, error) {
	tctx, cancel := trainCtx(ctx, m.Cfg)
	defer cancel()
	var out []rl.EpochStats
	for r := 0; r < rounds; r++ {
		agg, err := m.pretrainRound(tctx, episodesPerTask)
		if err != nil {
			return out, stopErr(len(out), tctx)
		}
		out = append(out, agg)
		if err := onEpoch(m.Cfg, len(out), agg); err != nil {
			return out, err
		}
	}
	return out, nil
}

// pretrainRound runs one full cycle over the K tasks and returns the
// task-averaged stats — the unit both the single-process and the sharded
// pre-training loops are built from.
func (m *MetaTrainer) pretrainRound(ctx context.Context, episodesPerTask int) (rl.EpochStats, error) {
	agg := rl.EpochStats{}
	for i, c := range m.Tasks {
		s, err := m.trainActor(ctx, m.actors[i], m.actorOpts[i], c, episodesPerTask)
		if err != nil {
			return agg, err
		}
		agg.Episodes += s.Episodes
		agg.AvgReward += s.AvgReward
		agg.SatisfiedRate += s.SatisfiedRate
	}
	agg.AvgReward /= float64(len(m.Tasks))
	agg.SatisfiedRate /= float64(len(m.Tasks))
	return agg, nil
}

// Adapted is a new-constraint trainer backed by the pre-trained
// meta-critic: its actor starts from the nearest task's actor, and the
// shared meta-critic both guides it and keeps learning (§6: "it
// accumulates transferable knowledge and never gets 'out of date'").
type Adapted struct {
	meta       *MetaTrainer
	Constraint rl.Constraint
	actor      *nn.SeqNet
	opt        *nn.Adam
	sampler    *rl.Trainer
}

// ActorFor returns the pre-trained actor of the task nearest to c — the
// §6 warm-start policy for a new constraint inside the domain, served
// without any retraining. The returned network is shared, read-only
// state: callers sample from it (or CopyWeightsFrom it) but never train
// it. Once Pretrain has returned, concurrent readers are safe — the
// generation service hands one warm MetaTrainer's actors to many
// sessions at once this way.
func (m *MetaTrainer) ActorFor(c rl.Constraint) *nn.SeqNet {
	best, bestDist := 0, math.Inf(1)
	for i, task := range m.Tasks {
		if d := math.Abs(center(task) - center(c)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return m.actors[best]
}

// Params lists every trainable parameter of the multi-task setup — the
// K task actors followed by the shared meta-critic — in a stable order,
// so checkpoints round-trip through nn.SaveParams/LoadParams.
func (m *MetaTrainer) Params() []*nn.Param {
	var ps []*nn.Param
	for _, a := range m.actors {
		ps = append(ps, a.Params()...)
	}
	ps = append(ps, m.valueNet.Params()...)
	return ps
}

// Save writes the pre-trained task actors and meta-critic weights to w.
// Together with Load it makes a MetaTrainer rl.Store-checkpointable: a
// server restart warm-loads the domain's policies instead of
// re-pretraining them.
func (m *MetaTrainer) Save(w io.Writer) error { return nn.SaveParams(w, m.Params()) }

// Load restores weights written by Save. The MetaTrainer must have been
// built over the same vocabulary, configuration and domain (K decides
// the actor count).
func (m *MetaTrainer) Load(r io.Reader) error { return nn.LoadParams(r, m.Params()) }

// Adapt prepares training for a new constraint inside the domain.
func (m *MetaTrainer) Adapt(c rl.Constraint) *Adapted {
	vocab := m.Env.Vocab.Size()
	actor := nn.NewSeqNet("adapted", vocab, m.Cfg.EmbedDim, m.Cfg.Hidden, vocab, m.Cfg.Dropout, m.rng)
	actor.CopyWeightsFrom(m.ActorFor(c))
	return &Adapted{
		meta:       m,
		Constraint: c,
		actor:      actor,
		opt:        nn.NewAdam(m.Cfg.ActorLR),
		sampler:    rl.NewSampler(m.Env, c, m.Cfg),
	}
}

// TrainEpoch trains the adapted actor with meta-critic guidance.
func (a *Adapted) TrainEpoch(episodes int) rl.EpochStats {
	s, _ := a.TrainEpochContext(context.Background(), episodes)
	return s
}

// TrainEpochContext is TrainEpoch with cancellation; partial batches never
// update the actor or the meta-critic.
func (a *Adapted) TrainEpochContext(ctx context.Context, episodes int) (rl.EpochStats, error) {
	stats := rl.EpochStats{}
	var trainErr error
	for done := 0; done < episodes; {
		n := a.meta.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch, err := a.sampler.SampleBatchContext(ctx, a.actor, a.actor.BOS(), n, false, true)
		if err != nil {
			trainErr = err
			break
		}
		for _, traj := range batch {
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		a.meta.trainBatch(a.actor, a.opt, batch)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats, trainErr
}

// Stats snapshots the adapted trainer's rollout-throughput counters.
func (a *Adapted) Stats() rl.TrainStats { return a.sampler.Stats() }

// Train runs epochs and returns stats traces (the Figure 9(c) curves).
func (a *Adapted) Train(epochs, episodesPerEpoch int) []rl.EpochStats {
	out, _ := a.TrainContext(context.Background(), epochs, episodesPerEpoch)
	return out
}

// TrainContext runs epochs under ctx, rl.Config.TrainBudget, and
// rl.Config.OnEpoch, with the same trace and error semantics as
// rl.Trainer.TrainContext.
func (a *Adapted) TrainContext(ctx context.Context, epochs, episodesPerEpoch int) ([]rl.EpochStats, error) {
	tctx, cancel := trainCtx(ctx, a.meta.Cfg)
	defer cancel()
	out := make([]rl.EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		s, err := a.TrainEpochContext(tctx, episodesPerEpoch)
		if err != nil {
			return out, stopErr(len(out), tctx)
		}
		out = append(out, s)
		if err := onEpoch(a.meta.Cfg, len(out), s); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Generate samples n statements from the adapted policy.
func (a *Adapted) Generate(n int) []rl.Generated {
	out, _ := a.GenerateContext(context.Background(), n)
	return out
}

// GenerateContext is Generate with cancellation.
func (a *Adapted) GenerateContext(ctx context.Context, n int) ([]rl.Generated, error) {
	batch, err := a.sampler.SampleBatchContext(ctx, a.actor, a.actor.BOS(), n, false, false)
	if err != nil {
		return nil, err
	}
	out := make([]rl.Generated, 0, n)
	for _, traj := range batch {
		out = append(out, rl.Generated{
			Statement: traj.Final, SQL: traj.Final.SQL(),
			Measured: traj.Measured, Satisfied: traj.Satisfied,
		})
	}
	return out, nil
}

// GenerateSatisfied mirrors rl.Trainer.GenerateSatisfied.
func (a *Adapted) GenerateSatisfied(n, maxAttempts int) ([]rl.Generated, int) {
	out, attempts, _ := a.GenerateSatisfiedContext(context.Background(), n, maxAttempts)
	return out, attempts
}

// GenerateSatisfiedContext is GenerateSatisfied with cancellation.
func (a *Adapted) GenerateSatisfiedContext(ctx context.Context, n, maxAttempts int) ([]rl.Generated, int, error) {
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		batch, err := a.sampler.SampleBatchContext(ctx, a.actor, a.actor.BOS(), 1, false, false)
		if err != nil {
			return out, attempts, err
		}
		traj := batch[0]
		attempts++
		if traj.Satisfied {
			out = append(out, rl.Generated{
				Statement: traj.Final, SQL: traj.Final.SQL(),
				Measured: traj.Measured, Satisfied: true,
			})
		}
	}
	return out, attempts, nil
}
