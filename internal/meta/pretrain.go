package meta

import (
	"math"
	"math/rand"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

// Domain is the cardinality/cost span the meta-critic is pre-trained on,
// uniformly divided into K sub-range tasks (§6: e.g. [0, 10K] into
// {[0,2K], [2K,4K], ...}).
type Domain struct {
	Metric rl.Metric
	Lo, Hi float64
	K      int
}

// Tasks returns the K sub-range constraints.
func (d Domain) Tasks() []rl.Constraint {
	width := (d.Hi - d.Lo) / float64(d.K)
	out := make([]rl.Constraint, 0, d.K)
	for i := 0; i < d.K; i++ {
		lo := d.Lo + float64(i)*width
		out = append(out, rl.RangeConstraint(d.Metric, lo, lo+width))
	}
	return out
}

// center of a constraint for nearest-task lookup.
func center(c rl.Constraint) float64 {
	if c.IsRange {
		return (c.Lo + c.Hi) / 2
	}
	return c.Point
}

// MetaTrainer pre-trains one actor per task plus the shared meta-critic
// (Figure 3: multiple actors, one meta-value network with a constraint
// encoder).
type MetaTrainer struct {
	Env    *rl.Env
	Cfg    rl.Config
	Domain Domain
	Tasks  []rl.Constraint

	actors    []*nn.SeqNet
	actorOpts []*nn.Adam
	valueNet  *ValueNet
	valOpt    *nn.Adam
	sampler   *rl.Trainer
	rng       *rand.Rand
}

// NewMetaTrainer builds the multi-task setup.
func NewMetaTrainer(env *rl.Env, domain Domain, cfg rl.Config) *MetaTrainer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := env.Vocab.Size()
	m := &MetaTrainer{
		Env: env, Cfg: cfg, Domain: domain, Tasks: domain.Tasks(),
		valueNet: NewValueNet(vocab, cfg.EmbedDim, cfg.Hidden, rng),
		valOpt:   nn.NewAdam(cfg.CriticLR),
		sampler:  rl.NewSampler(env, domain.Tasks()[0], cfg),
		rng:      rng,
	}
	for range m.Tasks {
		m.actors = append(m.actors,
			nn.NewSeqNet("actor", vocab, cfg.EmbedDim, cfg.Hidden, vocab, cfg.Dropout, rng))
		m.actorOpts = append(m.actorOpts, nn.NewAdam(cfg.ActorLR))
	}
	return m
}

// ValueNet exposes the shared meta-critic.
func (m *MetaTrainer) ValueNet() *ValueNet { return m.valueNet }

// Stats snapshots the rollout-throughput counters of the pre-training
// sampler (every Pretrain episode flows through it; adapted trainers
// report their own, see Adapted.Stats).
func (m *MetaTrainer) Stats() rl.TrainStats { return m.sampler.Stats() }

// trainBatch applies one batched update to an actor and the meta-critic
// from trajectories sampled under one constraint.
func (m *MetaTrainer) trainBatch(actor *nn.SeqNet, opt *nn.Adam, batch []*rl.Trajectory) {
	scale := 1.0 / float64(len(batch))
	vocab := m.Env.Vocab.Size()
	ws := m.sampler.Workspace()
	pool := ws.Pool()
	for _, traj := range batch {
		T := len(traj.Steps)
		inputs := make([]int, T)
		actions := make([]int, T)
		rewards := make([]float64, T)
		inputs[0] = m.valueNet.BOS()
		for i, s := range traj.Steps {
			if i > 0 {
				inputs[i] = traj.Steps[i-1].Action
			}
			actions[i] = s.Action
			rewards[i] = s.Reward
		}
		tape := m.valueNet.Forward(inputs, actions, rewards)
		V := tape.Values()

		dActor := make([][]float64, T)
		dV := make([]float64, T)
		for i, s := range traj.Steps {
			vNext := 0.0
			if i+1 < T {
				vNext = V[i+1]
			}
			delta := s.Reward + m.Cfg.Gamma*vNext - V[i]
			d := pool.GetVec(vocab)
			nn.PolicyGradLogits(s.Probs, s.Valid, s.Action, delta*scale, m.Cfg.EntropyWeight*scale, d)
			dActor[i] = d
			dV[i] = -2 * delta * scale
		}
		actor.BackwardInto(ws, traj.ActorState, dActor)
		for _, d := range dActor {
			pool.PutVec(d)
		}
		m.valueNet.Backward(tape, dV)
	}
	m.sampler.ReleaseBatch(batch)
	opt.Step(actor.Params())
	m.valOpt.Step(m.valueNet.Params())
}

// trainActor runs episodes for one (actor, constraint) pair, returning the
// epoch stats. Batches roll out concurrently on Cfg.Workers goroutines
// via the shared sampler; the meta-critic and actor update at the batch
// barrier.
func (m *MetaTrainer) trainActor(actor *nn.SeqNet, opt *nn.Adam, c rl.Constraint, episodes int) rl.EpochStats {
	m.sampler.SetConstraint(c)
	stats := rl.EpochStats{}
	for done := 0; done < episodes; {
		n := m.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch := m.sampler.SampleBatch(actor, actor.BOS(), n, false, true)
		for _, traj := range batch {
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		m.trainBatch(actor, opt, batch)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats
}

// Pretrain cycles the K tasks for the given number of rounds (each task
// runs episodesPerTask episodes per round) and returns per-round stats
// averaged over tasks.
func (m *MetaTrainer) Pretrain(rounds, episodesPerTask int) []rl.EpochStats {
	var out []rl.EpochStats
	for r := 0; r < rounds; r++ {
		agg := rl.EpochStats{}
		for i, c := range m.Tasks {
			s := m.trainActor(m.actors[i], m.actorOpts[i], c, episodesPerTask)
			agg.Episodes += s.Episodes
			agg.AvgReward += s.AvgReward
			agg.SatisfiedRate += s.SatisfiedRate
		}
		agg.AvgReward /= float64(len(m.Tasks))
		agg.SatisfiedRate /= float64(len(m.Tasks))
		out = append(out, agg)
	}
	return out
}

// Adapted is a new-constraint trainer backed by the pre-trained
// meta-critic: its actor starts from the nearest task's actor, and the
// shared meta-critic both guides it and keeps learning (§6: "it
// accumulates transferable knowledge and never gets 'out of date'").
type Adapted struct {
	meta       *MetaTrainer
	Constraint rl.Constraint
	actor      *nn.SeqNet
	opt        *nn.Adam
	sampler    *rl.Trainer
}

// Adapt prepares training for a new constraint inside the domain.
func (m *MetaTrainer) Adapt(c rl.Constraint) *Adapted {
	// Warm-start from the nearest pre-trained task.
	best, bestDist := 0, math.Inf(1)
	for i, task := range m.Tasks {
		if d := math.Abs(center(task) - center(c)); d < bestDist {
			best, bestDist = i, d
		}
	}
	vocab := m.Env.Vocab.Size()
	actor := nn.NewSeqNet("adapted", vocab, m.Cfg.EmbedDim, m.Cfg.Hidden, vocab, m.Cfg.Dropout, m.rng)
	actor.CopyWeightsFrom(m.actors[best])
	return &Adapted{
		meta:       m,
		Constraint: c,
		actor:      actor,
		opt:        nn.NewAdam(m.Cfg.ActorLR),
		sampler:    rl.NewSampler(m.Env, c, m.Cfg),
	}
}

// TrainEpoch trains the adapted actor with meta-critic guidance.
func (a *Adapted) TrainEpoch(episodes int) rl.EpochStats {
	stats := rl.EpochStats{}
	for done := 0; done < episodes; {
		n := a.meta.Cfg.BatchSize
		if rest := episodes - done; n > rest {
			n = rest
		}
		batch := a.sampler.SampleBatch(a.actor, a.actor.BOS(), n, false, true)
		for _, traj := range batch {
			stats.Episodes++
			stats.AvgReward += traj.TotalReward
			if traj.Satisfied {
				stats.SatisfiedRate++
			}
		}
		a.meta.trainBatch(a.actor, a.opt, batch)
		done += n
	}
	if stats.Episodes > 0 {
		stats.AvgReward /= float64(stats.Episodes)
		stats.SatisfiedRate /= float64(stats.Episodes)
	}
	return stats
}

// Stats snapshots the adapted trainer's rollout-throughput counters.
func (a *Adapted) Stats() rl.TrainStats { return a.sampler.Stats() }

// Train runs epochs and returns stats traces (the Figure 9(c) curves).
func (a *Adapted) Train(epochs, episodesPerEpoch int) []rl.EpochStats {
	out := make([]rl.EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		out = append(out, a.TrainEpoch(episodesPerEpoch))
	}
	return out
}

// Generate samples n statements from the adapted policy.
func (a *Adapted) Generate(n int) []rl.Generated {
	out := make([]rl.Generated, 0, n)
	for _, traj := range a.sampler.SampleBatch(a.actor, a.actor.BOS(), n, false, false) {
		out = append(out, rl.Generated{
			Statement: traj.Final, SQL: traj.Final.SQL(),
			Measured: traj.Measured, Satisfied: traj.Satisfied,
		})
	}
	return out
}

// GenerateSatisfied mirrors rl.Trainer.GenerateSatisfied.
func (a *Adapted) GenerateSatisfied(n, maxAttempts int) ([]rl.Generated, int) {
	var out []rl.Generated
	attempts := 0
	for attempts < maxAttempts && len(out) < n {
		traj := a.sampler.SampleEpisode(a.actor, false, false)
		attempts++
		if traj.Satisfied {
			out = append(out, rl.Generated{
				Statement: traj.Final, SQL: traj.Final.SQL(),
				Measured: traj.Measured, Satisfied: true,
			})
		}
	}
	return out, attempts
}
