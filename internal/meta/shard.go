package meta

import (
	"context"
	"errors"
	"sync"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

// PretrainShardedContext is PretrainContext over a fleet of data-parallel
// replicas, mirroring rl.ShardedTrainer for the service registry's warm
// path: each replica owns a cloned Env and its own copies of the K task
// actors plus the shared meta-critic, runs a full round (episodesPerTask
// per task) against its own rl.FanSeed-derived episode stream, and at the
// round barrier every parameter — actors and meta-critic alike — is
// averaged across replicas in replica-index order and broadcast back.
//
// shards <= 1 delegates to PretrainContext verbatim, so the sharded entry
// point is byte-identical to the single-process one there. shards > 1
// weak-scales: the fleet consumes shards× the episodes per round, and each
// replica's Adam learning rates are linearly scaled to match the shards×
// effective batch per consensus step, trading extra aggregate compute for
// fewer rounds to a warm registry. After the final round (or an abort) the
// last synchronized consensus is copied back into m with optimizer moments
// reset, so an interrupted pre-train still leaves m serving whole-round
// weights.
func (m *MetaTrainer) PretrainShardedContext(ctx context.Context, shards, rounds, episodesPerTask int) ([]rl.EpochStats, error) {
	if shards <= 1 {
		return m.PretrainContext(ctx, rounds, episodesPerTask)
	}
	tctx, cancel := trainCtx(ctx, m.Cfg)
	defer cancel()

	src := nn.SnapshotParams(nil, m.Params())
	reps := make([]*MetaTrainer, shards)
	for i := range reps {
		env := m.Env
		if i > 0 {
			env = m.Env.Clone()
		}
		r := NewMetaTrainer(env, m.Domain, m.Cfg)
		nn.RestoreParams(r.Params(), src)
		r.Cfg.TrainBudget = 0 // the fleet-level tctx already enforces it
		r.Cfg.OnEpoch = nil   // rounds report through the fleet, not per replica
		r.sampler.Cfg.Seed = rl.FanSeed(m.Cfg.Seed, uint64(i))
		for _, opt := range r.actorOpts {
			opt.LR *= float64(shards)
		}
		r.valOpt.LR *= float64(shards)
		reps[i] = r
	}

	// consensus holds the last round-barrier average; it is what lands
	// back in m on every exit path below.
	var consensus [][]float64
	adopt := func() {
		if consensus == nil {
			return
		}
		nn.RestoreParams(m.Params(), consensus)
		nn.ResetMoments(m.Params())
		for _, opt := range m.actorOpts {
			opt.Reset()
		}
		m.valOpt.Reset()
	}

	var out []rl.EpochStats
	for r := 0; r < rounds; r++ {
		stats := make([]rl.EpochStats, shards)
		errs := make([]error, shards)
		var wg sync.WaitGroup
		for i, rep := range reps {
			wg.Add(1)
			go func(i int, rep *MetaTrainer) {
				defer wg.Done()
				stats[i], errs[i] = rep.pretrainRound(tctx, episodesPerTask)
			}(i, rep)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			adopt()
			return out, stopErr(len(out), tctx)
		}

		consensus = averageReplicaParams(consensus, reps)
		for _, rep := range reps {
			nn.RestoreParams(rep.Params(), consensus)
		}

		agg := rl.EpochStats{}
		for _, s := range stats {
			agg.Episodes += s.Episodes
			agg.AvgReward += s.AvgReward
			agg.SatisfiedRate += s.SatisfiedRate
		}
		agg.AvgReward /= float64(shards)
		agg.SatisfiedRate /= float64(shards)
		out = append(out, agg)
		if err := onEpoch(m.Cfg, len(out), agg); err != nil {
			adopt()
			return out, err
		}
	}
	adopt()
	return out, nil
}

// averageReplicaParams element-averages every replica's full parameter
// list (task actors then meta-critic, the Params order) into dst,
// accumulating in replica-index order so the result is replayable.
func averageReplicaParams(dst [][]float64, reps []*MetaTrainer) [][]float64 {
	dst = nn.SnapshotParams(dst, reps[0].Params())
	for _, rep := range reps[1:] {
		for pi, p := range rep.Params() {
			d := dst[pi]
			for j, v := range p.Val.Data {
				d[j] += v
			}
		}
	}
	inv := 1.0 / float64(len(reps))
	for _, d := range dst {
		for j := range d {
			d[j] *= inv
		}
	}
	return dst
}
