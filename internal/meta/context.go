package meta

import (
	"context"
	"fmt"

	"learnedsqlgen/internal/rl"
)

// trainCtx derives the pre-training/adaptation context from
// rl.Config.TrainBudget, mirroring the rl package: budget expiry cancels
// with cause rl.ErrBudgetExceeded so callers can errors.Is against it.
func trainCtx(ctx context.Context, cfg rl.Config) (context.Context, context.CancelFunc) {
	if cfg.TrainBudget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, cfg.TrainBudget, rl.ErrBudgetExceeded)
}

// stopErr wraps the cause a training loop stopped with the number of
// completed epochs (rounds for pre-training).
func stopErr(epochs int, ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	return fmt.Errorf("meta: training stopped after %d epochs: %w", epochs, cause)
}

// onEpoch invokes the rl.Config.OnEpoch progress callback with the same
// abort semantics as the rl train drivers.
func onEpoch(cfg rl.Config, epochs int, s rl.EpochStats) error {
	if cfg.OnEpoch == nil {
		return nil
	}
	if err := cfg.OnEpoch(s); err != nil {
		return &rl.EpochAbortError{Epoch: epochs, Err: err}
	}
	return nil
}
