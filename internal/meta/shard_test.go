package meta

import (
	"context"
	"math"
	"testing"

	"learnedsqlgen/internal/nn"
	"learnedsqlgen/internal/rl"
)

func metaChecksum(m *MetaTrainer) uint32 { return nn.ChecksumParams(m.Params()) }

// PretrainShardedContext with shards=1 must delegate to PretrainContext —
// identical trace and identical weights for the same seed.
func TestMetaShardsOneDelegates(t *testing.T) {
	env1, env2 := testEnv(t), testEnv(t)
	d := Domain{Metric: rl.Cardinality, Lo: 0, Hi: 2000, K: 2}
	cfg := fastCfg()

	a := NewMetaTrainer(env1, d, cfg)
	traceA, errA := a.PretrainContext(context.Background(), 2, 8)

	b := NewMetaTrainer(env2, d, cfg)
	traceB, errB := b.PretrainShardedContext(context.Background(), 1, 2, 8)

	if errA != nil || errB != nil {
		t.Fatalf("errs: %v %v", errA, errB)
	}
	if len(traceA) != len(traceB) {
		t.Fatalf("trace lens %d vs %d", len(traceA), len(traceB))
	}
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Errorf("round %d: %+v vs %+v", i, traceA[i], traceB[i])
		}
	}
	if metaChecksum(a) != metaChecksum(b) {
		t.Error("weights diverged between PretrainContext and shards=1 PretrainShardedContext")
	}
}

// A sharded pre-train must replay byte-identically for the same seed and
// actually move the weights to a finite consensus.
func TestMetaShardedReplayIdentity(t *testing.T) {
	run := func() ([]rl.EpochStats, uint32) {
		m := NewMetaTrainer(testEnv(t), Domain{Metric: rl.Cardinality, Lo: 0, Hi: 2000, K: 2}, fastCfg())
		trace, err := m.PretrainShardedContext(context.Background(), 2, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		return trace, metaChecksum(m)
	}
	traceA, sumA := run()
	traceB, sumB := run()
	if sumA != sumB {
		t.Errorf("replay checksums differ: %d vs %d", sumA, sumB)
	}
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Errorf("round %d replay mismatch: %+v vs %+v", i, traceA[i], traceB[i])
		}
	}
	// Weak scaling: 2 shards × 2 tasks × 8 episodes per round.
	if traceA[0].Episodes != 2*2*8 {
		t.Errorf("round episodes = %d, want 32", traceA[0].Episodes)
	}
	m := NewMetaTrainer(testEnv(t), Domain{Metric: rl.Cardinality, Lo: 0, Hi: 2000, K: 2}, fastCfg())
	before := metaChecksum(m)
	if _, err := m.PretrainShardedContext(context.Background(), 2, 1, 8); err != nil {
		t.Fatal(err)
	}
	if metaChecksum(m) == before {
		t.Error("sharded pre-train left weights untouched")
	}
	for _, p := range m.Params() {
		for _, v := range p.Val.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite consensus weight")
			}
		}
	}
}
