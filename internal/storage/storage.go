// Package storage implements the in-memory relation store used as the
// execution substrate. Tables are row-oriented slices of immutable values;
// Database.Clone is a cheap copy-on-write snapshot so INSERT/UPDATE/DELETE
// queries can be executed without mutating the benchmark data.
package storage

import (
	"fmt"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
)

// Row is one tuple. Rows are treated as immutable once stored: mutation
// paths (UPDATE) replace the whole row slice, which is what makes Clone a
// shallow, O(rows) pointer copy.
type Row []sqltypes.Value

// Table holds the rows of one relation.
type Table struct {
	Meta *schema.Table
	rows []Row
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th row. Callers must not mutate it.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Rows returns the backing row slice. Callers must not mutate it or the
// rows; use Append/Delete/Replace for mutation.
func (t *Table) Rows() []Row { return t.rows }

// Append adds a row. The row length must match the column count.
func (t *Table) Append(r Row) error {
	if len(r) != len(t.Meta.Columns) {
		return fmt.Errorf("storage: row width %d != %d columns of %s",
			len(r), len(t.Meta.Columns), t.Meta.Name)
	}
	t.rows = append(t.rows, r)
	return nil
}

// Delete removes every row for which keep returns false and reports how
// many rows were removed.
func (t *Table) Delete(drop func(Row) bool) int {
	out := t.rows[:0:0]
	removed := 0
	for _, r := range t.rows {
		if drop(r) {
			removed++
			continue
		}
		out = append(out, r)
	}
	t.rows = out
	return removed
}

// Update rewrites rows matched by match using apply, which must return a
// fresh row (the original must not be mutated in place). Returns the number
// of updated rows.
func (t *Table) Update(match func(Row) bool, apply func(Row) Row) int {
	updated := 0
	for i, r := range t.rows {
		if match(r) {
			t.rows[i] = apply(r)
			updated++
		}
	}
	return updated
}

// Database binds a schema to table contents.
type Database struct {
	Schema *schema.Schema
	tables []*Table
}

// NewDatabase creates an empty database for the schema.
func NewDatabase(s *schema.Schema) *Database {
	db := &Database{Schema: s}
	db.tables = make([]*Table, len(s.Tables))
	for i, tm := range s.Tables {
		db.tables[i] = &Table{Meta: tm}
	}
	return db
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table {
	i := db.Schema.TableIndex(name)
	if i < 0 {
		return nil
	}
	return db.tables[i]
}

// Tables returns all tables in schema order.
func (db *Database) Tables() []*Table { return db.tables }

// TotalRows returns the sum of row counts over all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += len(t.rows)
	}
	return n
}

// Clone returns a snapshot sharing row storage with the receiver. Because
// rows are immutable, mutations on the clone (or the original) never leak
// into the other side.
func (db *Database) Clone() *Database {
	c := &Database{Schema: db.Schema, tables: make([]*Table, len(db.tables))}
	for i, t := range db.tables {
		rows := make([]Row, len(t.rows))
		copy(rows, t.rows)
		c.tables[i] = &Table{Meta: t.Meta, rows: rows}
	}
	return c
}
