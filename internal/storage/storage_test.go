package storage

import (
	"testing"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqltypes"
)

func testDB(t *testing.T) *Database {
	t.Helper()
	s, err := schema.NewBuilder("t").
		Table("Score", "T1",
			schema.Column{Name: "ID", Kind: sqltypes.KindInt},
			schema.Column{Name: "Score", Kind: sqltypes.KindFloat},
		).
		Table("Student", "T2",
			schema.Column{Name: "ID", Kind: sqltypes.KindInt, PrimaryKey: true},
			schema.Column{Name: "Name", Kind: sqltypes.KindString},
		).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	tab := db.Table("Score")
	for i := 0; i < 10; i++ {
		if err := tab.Append(Row{sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i) * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAppendAndScan(t *testing.T) {
	db := testDB(t)
	tab := db.Table("Score")
	if tab.NumRows() != 10 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if got := tab.Row(3)[1].Float(); got != 30 {
		t.Errorf("Row(3).Score = %v", got)
	}
	if len(tab.Rows()) != 10 {
		t.Error("Rows() length mismatch")
	}
	if db.TotalRows() != 10 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
}

func TestAppendWidthMismatch(t *testing.T) {
	db := testDB(t)
	if err := db.Table("Score").Append(Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("short row must be rejected")
	}
}

func TestUnknownTable(t *testing.T) {
	db := testDB(t)
	if db.Table("Nope") != nil {
		t.Error("unknown table must be nil")
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	tab := db.Table("Score")
	removed := tab.Delete(func(r Row) bool { return r[0].Int()%2 == 0 })
	if removed != 5 {
		t.Errorf("removed = %d", removed)
	}
	if tab.NumRows() != 5 {
		t.Errorf("NumRows after delete = %d", tab.NumRows())
	}
	for _, r := range tab.Rows() {
		if r[0].Int()%2 == 0 {
			t.Errorf("even row %v survived delete", r)
		}
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	tab := db.Table("Score")
	n := tab.Update(
		func(r Row) bool { return r[0].Int() < 3 },
		func(r Row) Row {
			nr := make(Row, len(r))
			copy(nr, r)
			nr[1] = sqltypes.NewFloat(99)
			return nr
		})
	if n != 3 {
		t.Errorf("updated = %d", n)
	}
	if tab.Row(0)[1].Float() != 99 || tab.Row(5)[1].Float() != 50 {
		t.Error("update applied to wrong rows")
	}
}

func TestCloneIsolation(t *testing.T) {
	db := testDB(t)
	clone := db.Clone()

	// Mutate the clone: delete, update, insert.
	ct := clone.Table("Score")
	ct.Delete(func(r Row) bool { return r[0].Int() == 0 })
	ct.Update(func(r Row) bool { return r[0].Int() == 1 },
		func(r Row) Row {
			nr := make(Row, len(r))
			copy(nr, r)
			nr[1] = sqltypes.NewFloat(-1)
			return nr
		})
	if err := ct.Append(Row{sqltypes.NewInt(100), sqltypes.NewFloat(0)}); err != nil {
		t.Fatal(err)
	}

	orig := db.Table("Score")
	if orig.NumRows() != 10 {
		t.Errorf("original rows changed: %d", orig.NumRows())
	}
	if orig.Row(1)[1].Float() != 10 {
		t.Error("original row mutated through clone")
	}
	if ct.NumRows() != 10 { // 10 - 1 + 1
		t.Errorf("clone rows = %d", ct.NumRows())
	}

	// Mutating the original must not affect the clone either.
	orig.Delete(func(Row) bool { return true })
	if ct.NumRows() != 10 {
		t.Error("clone affected by original mutation")
	}
}
