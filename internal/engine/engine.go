// Package engine is the pluggable driver layer behind the PR 5 backend
// seams: anything that can estimate or execute the generated SQL subset
// can register here and become the RL environment's reward source and the
// conformance oracle's comparison target.
//
// A Driver is one open engine connection. It satisfies both
// estimator.Backend and executor.Backend, so the whole existing stack —
// the memoizing estimator cache, the retry/breaker resilience layer, the
// fault injector, the rollout quarantine — composes around a driver
// exactly as it composes around the in-tree estimator and executor.
//
// Three drivers ship in-tree:
//
//   - "reference": the in-process storage/estimator/executor stack,
//     exposed through the driver interface. It is the conformance
//     baseline the cross-engine oracle trusts, and the test double every
//     adapter feature is exercised against.
//   - "inprocess": the reference data behind a real database/sql driver,
//     driven through the generic SQLAdapter — the full external-engine
//     code path (dialect rendering, EXPLAIN parsing, row scanning) with
//     no external dependency.
//   - "sql": the generic database/sql adapter for any driver linked into
//     the binary (postgres, mysql, sqlite, ...), with the dialect chosen
//     by name.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
)

// Capabilities describes what an open driver can do; the wiring layer
// consults it to decide which backend seams the driver fills.
type Capabilities struct {
	// Engine is the driver's registry name.
	Engine string
	// Dialect names the SQL dialect the engine speaks (see Dialects).
	Dialect string
	// Estimate reports that EstimateContext yields optimizer-style
	// estimates (native estimator or EXPLAIN-based).
	Estimate bool
	// Execute reports that ExecuteContext yields real execution results.
	Execute bool
	// SharedData reports that the driver executes against the very same
	// in-process data the environment owns, so a cross-engine cardinality
	// comparison must agree exactly, not just distributionally.
	SharedData bool
}

// Driver is one open engine connection. EstimateContext and
// ExecuteContext implement the estimator.Backend and executor.Backend
// seams; decorators (resilience, fault injection, the estimator cache)
// wrap a Driver the same way they wrap the raw in-tree backends.
//
// Drivers must be safe for concurrent use: the parallel rollout engine
// calls them from many worker goroutines at once.
type Driver interface {
	estimator.Backend
	executor.Backend
	Capabilities() Capabilities
	Close() error
}

// Pinger is the optional driver interface for a reachability probe.
// Drivers backed by a network connection implement it so the facade can
// fail fast at open time — one clean error instead of a training loop
// discovering a dead engine at its first reward. In-memory drivers may
// omit it; the probe is skipped.
type Pinger interface {
	Ping(ctx context.Context) error
}

// Counters are cumulative per-driver call counters, for tests and stats
// surfaces that need to prove rewards were driver-sourced.
type Counters struct {
	Estimates uint64
	Executes  uint64
}

// Counting is the optional driver interface exposing call counters.
type Counting interface {
	Counters() Counters
}

// Factory opens a driver from a DSN. The DSN syntax is driver-specific;
// the in-tree drivers use space-separated key=value pairs
// ("dataset=tpch scale=0.05 seed=1").
type Factory func(dsn string) (Driver, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// Register makes a driver available to Open under name. Registering a
// duplicate name panics — like database/sql, registration is an
// init-time, program-wiring act where a clash is a bug.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if f == nil {
		panic("engine: Register with nil factory")
	}
	if _, dup := factories[name]; dup {
		panic("engine: Register called twice for driver " + name)
	}
	factories[name] = f
}

// Drivers lists the registered driver names, sorted.
func Drivers() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open opens a driver by registry name.
func Open(name, dsn string) (Driver, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown driver %q (registered: %s)",
			name, strings.Join(Drivers(), ", "))
	}
	d, err := f(dsn)
	if err != nil {
		return nil, fmt.Errorf("engine: open %s: %w", name, err)
	}
	return d, nil
}

// Error is an engine-layer failure talking to an external engine —
// connection loss, driver errors, malformed responses. It is transient:
// the resilience layer retries it, and the estimator cache refuses to
// memoize it. Definitive refusals (unparseable statements, unsupported
// features) are returned as plain errors instead and never retried.
type Error struct {
	Engine string
	Op     string // "estimate", "execute", "explain"
	Err    error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("engine %s: %s: %v", e.Engine, e.Op, e.Err)
}

// Unwrap yields the underlying driver error.
func (e *Error) Unwrap() error { return e.Err }

// Transient marks the error retryable for the resilience layer.
func (e *Error) Transient() bool { return true }

// DSN is a parsed space-separated key=value connection string.
type DSN map[string]string

// ParseDSN splits "k1=v1 k2=v2" into a map. Empty input is an empty map;
// a field without '=' is an error.
func ParseDSN(dsn string) (DSN, error) {
	out := DSN{}
	for _, field := range strings.Fields(dsn) {
		k, v, ok := strings.Cut(field, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("engine: malformed DSN field %q (want key=value)", field)
		}
		out[k] = v
	}
	return out, nil
}

// Str returns the value for key, or def when absent.
func (d DSN) Str(key, def string) string {
	if v, ok := d[key]; ok {
		return v
	}
	return def
}

// Float returns the float value for key, or def when absent.
func (d DSN) Float(key string, def float64) (float64, error) {
	v, ok := d[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("engine: DSN key %s: %w", key, err)
	}
	return f, nil
}

// Int returns the int64 value for key, or def when absent.
func (d DSN) Int(key string, def int64) (int64, error) {
	v, ok := d[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("engine: DSN key %s: %w", key, err)
	}
	return i, nil
}
