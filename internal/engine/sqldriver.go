package engine

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// This file implements a real database/sql driver over the in-process
// engine. It exists so the generic SQLAdapter — the code path every
// external engine takes — can be exercised end to end with zero external
// dependencies: SQL arrives as text, is parsed, planned and executed, and
// rows travel back through driver.Rows value conversion exactly as they
// would from postgres or mysql.
//
// The driver understands three query shapes:
//
//	EXPLAIN <select>                        -> one "plan" column, one row per operator line
//	SELECT COUNT(*) FROM (<select>) AS q    -> the adapter's cardinality fallback
//	any statement of the generated grammar  -> parsed and executed (DML on a snapshot)

// SQLDriverName is the name the in-process driver registers with
// database/sql.
const SQLDriverName = "learnedsqlgen"

func init() {
	sql.Register(SQLDriverName, memDriver{})

	Register("inprocess", func(dsn string) (Driver, error) {
		db, err := sql.Open(SQLDriverName, dsn)
		if err != nil {
			return nil, err
		}
		// Fail fast on a bad DSN instead of at the first estimate.
		if err := db.Ping(); err != nil {
			db.Close()
			return nil, err
		}
		d, _ := DialectByName("native")
		a := NewSQLAdapter(db, "inprocess", d)
		a.ownsDB = true
		return a, nil
	})
}

// RegisterTestDatabase makes db reachable through DSN "handle=<name>",
// letting tests and the facade hand a live in-memory database to the
// database/sql layer. Re-registering a handle replaces it.
func RegisterTestDatabase(name string, db *storage.Database) {
	handleMu.Lock()
	defer handleMu.Unlock()
	handles[name] = NewReference(db)
}

var (
	handleMu sync.Mutex
	handles  = map[string]*Reference{}

	datasetMu sync.Mutex
	// datasets caches generated datasets per DSN so each sql.Conn of a
	// pool shares one database instead of regenerating per connection.
	datasets = map[string]*Reference{}
)

func resolveDSN(dsn string) (*Reference, error) {
	kv, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	if h := kv.Str("handle", ""); h != "" {
		handleMu.Lock()
		defer handleMu.Unlock()
		ref, ok := handles[h]
		if !ok {
			return nil, fmt.Errorf("engine: unknown database handle %q", h)
		}
		return ref, nil
	}
	datasetMu.Lock()
	defer datasetMu.Unlock()
	if ref, ok := datasets[dsn]; ok {
		return ref, nil
	}
	db, err := openDataset(dsn)
	if err != nil {
		return nil, err
	}
	ref := NewReference(db)
	datasets[dsn] = ref
	return ref, nil
}

// memDriver implements driver.Driver.
type memDriver struct{}

func (memDriver) Open(dsn string) (driver.Conn, error) {
	ref, err := resolveDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &memConn{ref: ref}, nil
}

// memConn is one connection; all connections of a DSN share the same
// underlying database (reads are concurrent-safe, DML runs on clones).
type memConn struct {
	ref *Reference
}

var (
	_ driver.QueryerContext = (*memConn)(nil)
	_ driver.ExecerContext  = (*memConn)(nil)
)

func (c *memConn) Prepare(query string) (driver.Stmt, error) {
	return &memStmt{conn: c, query: query}, nil
}

func (c *memConn) Close() error { return nil }

func (c *memConn) Begin() (driver.Tx, error) {
	return nil, errors.New("engine: transactions not supported")
}

func (c *memConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) != 0 {
		return nil, errors.New("engine: bind parameters not supported")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if inner, ok := strings.CutPrefix(query, "EXPLAIN "); ok {
		st, err := parser.Parse(inner)
		if err != nil {
			return nil, err
		}
		plan, err := c.ref.Explain(st)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(strings.TrimRight(plan.String(), "\n"), "\n")
		rows := make([][]driver.Value, len(lines))
		for i, l := range lines {
			rows[i] = []driver.Value{l}
		}
		return &memRows{cols: []string{"plan"}, rows: rows}, nil
	}

	if inner, ok := cutCountWrap(query); ok {
		st, err := parser.Parse(inner)
		if err != nil {
			return nil, err
		}
		res, err := c.ref.ExecuteContext(ctx, st)
		if err != nil {
			return nil, err
		}
		return &memRows{
			cols: []string{"count"},
			rows: [][]driver.Value{{int64(res.Cardinality)}},
		}, nil
	}

	st, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	res, err := c.ref.ExecuteContext(ctx, st)
	if err != nil {
		return nil, err
	}
	rows := make([][]driver.Value, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = rowToDriver(r)
	}
	return &memRows{cols: res.Columns, rows: rows}, nil
}

func (c *memConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) != 0 {
		return nil, errors.New("engine: bind parameters not supported")
	}
	st, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	res, err := c.ref.ExecuteContext(ctx, st)
	if err != nil {
		return nil, err
	}
	return memResult{affected: int64(res.Cardinality)}, nil
}

// cutCountWrap recognizes the adapter's COUNT(*) wrapper and returns the
// inner SELECT.
func cutCountWrap(query string) (string, bool) {
	inner, ok := strings.CutPrefix(query, "SELECT COUNT(*) FROM (")
	if !ok {
		return "", false
	}
	inner, ok = strings.CutSuffix(inner, ") AS q")
	if !ok {
		return "", false
	}
	return inner, true
}

func rowToDriver(r storage.Row) []driver.Value {
	out := make([]driver.Value, len(r))
	for i, v := range r {
		switch v.Kind() {
		case sqltypes.KindInt:
			out[i] = v.Int()
		case sqltypes.KindFloat:
			out[i] = v.Float()
		case sqltypes.KindString:
			out[i] = v.Str()
		default:
			out[i] = nil
		}
	}
	return out
}

// memStmt backs Prepare for callers that don't use the Context fast
// paths.
type memStmt struct {
	conn  *memConn
	query string
}

func (s *memStmt) Close() error  { return nil }
func (s *memStmt) NumInput() int { return 0 }

func (s *memStmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.conn.ExecContext(context.Background(), s.query, nil)
}

func (s *memStmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.conn.QueryContext(context.Background(), s.query, nil)
}

type memResult struct{ affected int64 }

func (r memResult) LastInsertId() (int64, error) {
	return 0, errors.New("engine: LastInsertId not supported")
}
func (r memResult) RowsAffected() (int64, error) { return r.affected, nil }

type memRows struct {
	cols []string
	rows [][]driver.Value
	pos  int
}

func (r *memRows) Columns() []string { return r.cols }
func (r *memRows) Close() error      { return nil }

func (r *memRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.pos])
	r.pos++
	return nil
}

var _ executor.Backend = (*Reference)(nil)
