package engine

import (
	"context"
	"database/sql"
	"fmt"
	"sync/atomic"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// SQLAdapter drives any database/sql connection pool as an engine
// Driver. Statements render through the engine's dialect; cardinality
// estimates come from EXPLAIN where the dialect can parse one, falling
// back to an exact COUNT(*) probe; execution returns real rows converted
// back into the in-tree value model.
//
// Infrastructure failures surface as *Error (transient — retried by the
// resilience layer, never memoized by the estimator cache); statements
// the engine definitively cannot handle surface as permanent errors.
type SQLAdapter struct {
	db      *sql.DB
	name    string
	dialect Dialect
	// ownsDB: Close also closes the pool (set when the adapter opened it).
	ownsDB bool

	estimates atomic.Uint64
	executes  atomic.Uint64
}

// NewSQLAdapter wraps an open pool. The caller keeps ownership of db
// unless the adapter was produced by a registered factory.
func NewSQLAdapter(db *sql.DB, name string, dialect Dialect) *SQLAdapter {
	return &SQLAdapter{db: db, name: name, dialect: dialect}
}

func init() {
	// The "sql" driver drives whatever third-party database/sql driver is
	// linked into the binary: "sql" with DSN "driver=postgres dialect=postgres
	// dsn=postgres://...". Nothing beyond the stdlib ships in-tree, so
	// opening it only works in binaries that import a driver; the in-tree
	// test double is the "inprocess" engine.
	Register("sql", func(dsn string) (Driver, error) {
		kv, err := ParseDSN(dsn)
		if err != nil {
			return nil, err
		}
		drv := kv.Str("driver", "")
		if drv == "" {
			return nil, fmt.Errorf("engine: sql driver requires driver= in DSN")
		}
		dname := kv.Str("dialect", "ansi")
		d, ok := DialectByName(dname)
		if !ok {
			return nil, fmt.Errorf("engine: unknown dialect %q (have %v)", dname, Dialects())
		}
		pool, err := sql.Open(drv, kv.Str("dsn", ""))
		if err != nil {
			return nil, err
		}
		a := NewSQLAdapter(pool, drv, d)
		a.ownsDB = true
		return a, nil
	})
}

// Dialect returns the dialect the adapter renders with.
func (a *SQLAdapter) Dialect() Dialect { return a.dialect }

// Ping implements Pinger: it verifies the pool can actually reach the
// engine, so a bad address or a down server fails at open time rather
// than at the first reward measurement.
func (a *SQLAdapter) Ping(ctx context.Context) error {
	if err := a.db.PingContext(ctx); err != nil {
		return &Error{Engine: a.name, Op: "ping", Err: err}
	}
	return nil
}

// Capabilities implements Driver.
func (a *SQLAdapter) Capabilities() Capabilities {
	return Capabilities{
		Engine:   a.name,
		Dialect:  a.dialect.Name(),
		Estimate: a.dialect.Explain != nil || a.dialect.CountWrap != nil,
		Execute:  true,
		// COUNT(*)-only estimation scans the true data, so when the pool
		// points at the same dataset the estimates are exact; but the
		// adapter cannot know what the DSN points at.
		SharedData: false,
	}
}

// Counters implements Counting.
func (a *SQLAdapter) Counters() Counters {
	return Counters{Estimates: a.estimates.Load(), Executes: a.executes.Load()}
}

// Close implements Driver.
func (a *SQLAdapter) Close() error {
	if a.ownsDB {
		return a.db.Close()
	}
	return nil
}

// EstimateContext implements estimator.Backend: EXPLAIN when the dialect
// parses one, COUNT(*) otherwise.
func (a *SQLAdapter) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	a.estimates.Add(1)
	text := sqlast.Render(st, a.dialect.Render)

	if a.dialect.Explain != nil {
		est, err := a.explain(ctx, text)
		if err == nil {
			return est, nil
		}
		if _, fallback := err.(errUnparsedExplain); !fallback {
			return estimator.Estimate{}, err
		}
		// EXPLAIN ran but yielded nothing the dialect recognizes — fall
		// through to the exact probe when one exists.
	}

	if _, isSelect := st.(*sqlast.Select); isSelect && a.dialect.CountWrap != nil {
		var n int64
		row := a.db.QueryRowContext(ctx, a.dialect.CountWrap(text))
		if err := row.Scan(&n); err != nil {
			return estimator.Estimate{}, a.fail("estimate", err)
		}
		// An exact probe has no separate cost model; the cardinality
		// doubles as the cost signal.
		return estimator.Estimate{Card: float64(n), Cost: float64(n)}, nil
	}

	return estimator.Estimate{}, fmt.Errorf("%w: engine %s has no estimate path for %s",
		estimator.ErrUnestimable, a.name, text)
}

// errUnparsedExplain marks "EXPLAIN succeeded but output was
// unrecognizable" internally so EstimateContext can fall back.
type errUnparsedExplain struct{ error }

func (a *SQLAdapter) explain(ctx context.Context, text string) (estimator.Estimate, error) {
	rows, err := a.db.QueryContext(ctx, a.dialect.Explain(text))
	if err != nil {
		return estimator.Estimate{}, a.fail("explain", err)
	}
	defer rows.Close()
	cols, grid, err := scanGrid(rows)
	if err != nil {
		return estimator.Estimate{}, a.fail("explain", err)
	}
	strGrid := make([][]string, len(grid))
	for i, r := range grid {
		strGrid[i] = make([]string, len(r))
		for j, v := range r {
			strGrid[i][j] = fmt.Sprint(valueOf(v))
		}
	}
	card, cost, ok := a.dialect.ParseExplain(cols, strGrid)
	if !ok {
		return estimator.Estimate{}, errUnparsedExplain{
			fmt.Errorf("engine %s: unparseable EXPLAIN output (%d rows)", a.name, len(grid))}
	}
	return estimator.Estimate{Card: card, Cost: cost}, nil
}

// ExecuteContext implements executor.Backend.
func (a *SQLAdapter) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	a.executes.Add(1)
	text := sqlast.Render(st, a.dialect.Render)

	if _, isSelect := st.(*sqlast.Select); !isSelect {
		res, err := a.db.ExecContext(ctx, text)
		if err != nil {
			return nil, a.fail("execute", err)
		}
		n, err := res.RowsAffected()
		if err != nil {
			return nil, a.fail("execute", err)
		}
		return &executor.Result{Cardinality: int(n), Work: float64(n)}, nil
	}

	rows, err := a.db.QueryContext(ctx, text)
	if err != nil {
		return nil, a.fail("execute", err)
	}
	defer rows.Close()
	cols, grid, err := scanGrid(rows)
	if err != nil {
		return nil, a.fail("execute", err)
	}
	out := &executor.Result{Columns: cols, Cardinality: len(grid)}
	out.Rows = make([]storage.Row, len(grid))
	for i, r := range grid {
		row := make(storage.Row, len(r))
		for j, v := range r {
			row[j] = toValue(v)
		}
		out.Rows[i] = row
	}
	// External engines expose no operator-work counter; the row count is
	// the closest observable effort proxy.
	out.Work = float64(len(grid))
	return out, nil
}

// fail wraps an infrastructure error as transient. Context cancellation
// stays visible through Unwrap, so resilience still classifies it as an
// abort rather than retrying.
func (a *SQLAdapter) fail(op string, err error) error {
	return &Error{Engine: a.name, Op: op, Err: err}
}

// scanGrid drains a result set into generic cells.
func scanGrid(rows *sql.Rows) ([]string, [][]any, error) {
	cols, err := rows.Columns()
	if err != nil {
		return nil, nil, err
	}
	var grid [][]any
	for rows.Next() {
		cells := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range cells {
			ptrs[i] = &cells[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, nil, err
		}
		grid = append(grid, cells)
	}
	return cols, grid, rows.Err()
}

// valueOf unboxes driver cells for textual EXPLAIN parsing.
func valueOf(v any) any {
	if b, ok := v.([]byte); ok {
		return string(b)
	}
	return v
}

// toValue converts a database/sql cell into the in-tree value model.
func toValue(v any) sqltypes.Value {
	switch t := v.(type) {
	case nil:
		return sqltypes.Null
	case int64:
		return sqltypes.NewInt(t)
	case float64:
		return sqltypes.NewFloat(t)
	case bool:
		if t {
			return sqltypes.NewInt(1)
		}
		return sqltypes.NewInt(0)
	case []byte:
		return sqltypes.NewString(string(t))
	case string:
		return sqltypes.NewString(t)
	default:
		return sqltypes.NewString(fmt.Sprint(t))
	}
}

var _ Driver = (*SQLAdapter)(nil)
var _ Driver = (*Reference)(nil)
