package engine

import (
	"strings"
	"testing"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqlast"
)

// renderCorpus spans the generated grammar plus the dialect edge cases:
// quoted/reserved/uppercase identifiers, strings containing quotes and
// backslashes, float literals that canonicalize, every statement kind.
var renderCorpus = []string{
	"SELECT Student.ID FROM Student",
	"SELECT Student.Name, Score.Grade FROM Student JOIN Score ON Student.ID = Score.ID WHERE Score.Grade > 60.5",
	"SELECT Score.Course, AVG(Score.Grade) FROM Score GROUP BY Score.Course HAVING AVG(Score.Grade) > 50",
	"SELECT COUNT(Score.ID) FROM Score",
	"SELECT Student.ID FROM Student ORDER BY Student.ID",
	"SELECT Student.Name FROM Student WHERE Student.ID IN (SELECT Score.ID FROM Score WHERE Score.Grade > 80)",
	"SELECT Student.ID FROM Student WHERE (Student.ID = 1 OR Student.ID = 2) AND NOT EXISTS (SELECT Score.ID FROM Score)",
	"SELECT Student.ID FROM Student WHERE Student.Name LIKE 'A%'",
	"SELECT Student.ID FROM Student WHERE Student.Name = 'O''Hara'",
	`SELECT Student.ID FROM Student WHERE Student.Name = 'a\b'`,
	"SELECT t.a FROM t WHERE t.b = 1.0",
	"SELECT t.a FROM t WHERE t.b = 1e300",
	`SELECT "select"."from" FROM "select"`,
	`SELECT t."weird col" FROM t WHERE t."weird col" = 1`,
	"INSERT INTO Student VALUES (9, 'Zed')",
	"UPDATE Student SET Name = 'Q' WHERE Student.ID = 1",
	"DELETE FROM Score WHERE Score.Grade < 50",
}

// TestDialectRenderReparse is the per-dialect round-trip property: render
// a statement in any registered dialect, read the text back under that
// dialect's lexical conventions, and the parsed statement must be the
// same statement (identical canonical rendering).
func TestDialectRenderReparse(t *testing.T) {
	for _, name := range Dialects() {
		d, _ := DialectByName(name)
		t.Run(name, func(t *testing.T) {
			for _, src := range renderCorpus {
				st, err := parser.Parse(src)
				if err != nil {
					t.Fatalf("corpus statement %q does not parse: %v", src, err)
				}
				want := st.SQL()
				text := sqlast.Render(st, d.Render)
				back, err := parser.ParseWithOptions(text, d.Reparse)
				if err != nil {
					t.Errorf("dialect %s rendering %q is unparseable: %q: %v", name, src, text, err)
					continue
				}
				if got := back.SQL(); got != want {
					t.Errorf("dialect %s round trip changed the statement:\n  src    %q\n  dialect %q\n  back   %q\n  want   %q",
						name, src, text, got, want)
				}
			}
		})
	}
}

// TestDialectRendering pins a few concrete cross-dialect renderings so a
// quoting or escaping regression reads as a diff, not just a property
// failure.
func TestDialectRendering(t *testing.T) {
	cases := []struct {
		dialect string
		src     string
		want    string
	}{
		{"mysql", `SELECT "select".a FROM "select"`, "SELECT `select`.a FROM `select`"},
		{"mysql", `SELECT t.a FROM t WHERE t.s = 'a\b'`, `SELECT t.a FROM t WHERE t.s = 'a\\b'`},
		{"postgres", "SELECT Student.ID FROM Student", `SELECT "Student"."ID" FROM "Student"`},
		{"postgres", "SELECT t.a FROM t WHERE t.b = 1.0", "SELECT t.a FROM t WHERE t.b = 1.0"},
		{"ansi", "SELECT t.a FROM t WHERE t.b = 1.0", "SELECT t.a FROM t WHERE t.b = 1.0"},
		{"sqlite", `SELECT t."weird col" FROM t`, `SELECT t."weird col" FROM t`},
		{"native", "SELECT t.a FROM t WHERE t.b = 1.0", "SELECT t.a FROM t WHERE t.b = 1"},
	}
	for _, c := range cases {
		d, ok := DialectByName(c.dialect)
		if !ok {
			t.Fatalf("dialect %q not registered", c.dialect)
		}
		st, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		if got := sqlast.Render(st, d.Render); got != c.want {
			t.Errorf("%s rendering of %q = %q, want %q", c.dialect, c.src, got, c.want)
		}
	}
}

func TestFloatLiteral(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1.0"},
		{2.5, "2.5"},
		{-3, "-3.0"},
		{1e300, "1e+300"},
		{0, "0.0"},
	}
	for _, c := range cases {
		if got := FloatLiteral(c.in); got != c.want {
			t.Errorf("FloatLiteral(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParsePostgresExplain(t *testing.T) {
	rows := [][]string{
		{"Seq Scan on t  (cost=0.00..17.50 rows=750 width=36)"},
		{"  Filter: (a > 1)"},
	}
	card, cost, ok := parsePostgresExplain([]string{"QUERY PLAN"}, rows)
	if !ok || card != 750 || cost != 17.50 {
		t.Fatalf("parsePostgresExplain = (%v, %v, %v), want (750, 17.5, true)", card, cost, ok)
	}
	if _, _, ok := parsePostgresExplain([]string{"QUERY PLAN"}, [][]string{{"garbage"}}); ok {
		t.Fatal("parsePostgresExplain accepted garbage")
	}
}

func TestParseMySQLExplain(t *testing.T) {
	cols := []string{"id", "select_type", "table", "rows", "Extra"}
	rows := [][]string{
		{"1", "SIMPLE", "t", "100", ""},
		{"1", "SIMPLE", "u", "10", "Using where"},
	}
	card, cost, ok := parseMySQLExplain(cols, rows)
	if !ok || card != 1000 || cost != 1000 {
		t.Fatalf("parseMySQLExplain = (%v, %v, %v), want (1000, 1000, true)", card, cost, ok)
	}
	if _, _, ok := parseMySQLExplain([]string{"id"}, rows); ok {
		t.Fatal("parseMySQLExplain accepted a grid without a rows column")
	}
}

func TestParseNativeExplain(t *testing.T) {
	rows := [][]string{
		{"output  (rows=12.5 cost=340.0)"},
		{"  scan t  (rows=100.0 cost=100.0)"},
	}
	card, cost, ok := parseNativeExplain([]string{"plan"}, rows)
	if !ok || card != 12.5 || cost != 340.0 {
		t.Fatalf("parseNativeExplain = (%v, %v, %v), want (12.5, 340, true)", card, cost, ok)
	}
}

func TestDialectRegistry(t *testing.T) {
	names := Dialects()
	for _, want := range []string{"native", "ansi", "postgres", "mysql", "sqlite"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("dialect %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		d, ok := DialectByName(n)
		if !ok || d.Name() != n {
			t.Errorf("DialectByName(%q) inconsistent: ok=%v name=%q", n, ok, d.Name())
		}
		if (d.Explain == nil) != (d.ParseExplain == nil) {
			t.Errorf("dialect %q has mismatched Explain/ParseExplain", n)
		}
		if d.Explain == nil && d.CountWrap == nil {
			t.Errorf("dialect %q has no estimate path at all", n)
		}
	}
}

func TestCountWrap(t *testing.T) {
	got := countWrapAliased("SELECT t.a FROM t")
	want := "SELECT COUNT(*) FROM (SELECT t.a FROM t) AS q"
	if got != want {
		t.Fatalf("countWrapAliased = %q, want %q", got, want)
	}
	inner, ok := cutCountWrap(got)
	if !ok || inner != "SELECT t.a FROM t" {
		t.Fatalf("cutCountWrap(%q) = (%q, %v)", got, inner, ok)
	}
	if _, ok := cutCountWrap("SELECT t.a FROM t"); ok {
		t.Fatal("cutCountWrap matched a plain SELECT")
	}
	if !strings.HasPrefix(got, "SELECT COUNT(*)") {
		t.Fatal("count wrapper must be a COUNT query")
	}
}
