package engine

import (
	"context"
	"fmt"
	"sync/atomic"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/executor"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
)

// Reference is the in-process reference driver: the in-tree estimator and
// executor behind the Driver interface. It is the baseline the
// cross-engine oracle compares other engines against, and the default
// engine when the facade is asked for driver-backed rewards without an
// external DSN.
//
// Execution is snapshot-isolated: every ExecuteContext call runs against
// a fresh copy-on-write clone, so DML never mutates the benchmark data —
// the same contract the RL environment's default execution backend keeps.
type Reference struct {
	db  *storage.Database
	est *estimator.Estimator

	estimates atomic.Uint64
	executes  atomic.Uint64
}

// NewReference wraps an existing database (typically the environment's
// own) as a driver. Estimates come from freshly collected statistics.
func NewReference(db *storage.Database) *Reference {
	return &Reference{db: db, est: estimator.New(db.Schema, stats.Collect(db))}
}

// EstimateContext implements estimator.Backend.
func (r *Reference) EstimateContext(ctx context.Context, st sqlast.Statement) (estimator.Estimate, error) {
	r.estimates.Add(1)
	return r.est.EstimateContext(ctx, st)
}

// ExecuteContext implements executor.Backend.
func (r *Reference) ExecuteContext(ctx context.Context, st sqlast.Statement) (*executor.Result, error) {
	r.executes.Add(1)
	return executor.New(r.db.Clone()).ExecuteContext(ctx, st)
}

// Explain exposes the operator-level estimate breakdown; the in-process
// database/sql driver serves EXPLAIN queries through it.
func (r *Reference) Explain(st sqlast.Statement) (*estimator.PlanNode, error) {
	return r.est.Explain(st)
}

// Database returns the wrapped database (shared, not a clone).
func (r *Reference) Database() *storage.Database { return r.db }

// Capabilities implements Driver.
func (r *Reference) Capabilities() Capabilities {
	return Capabilities{
		Engine:     "reference",
		Dialect:    "native",
		Estimate:   true,
		Execute:    true,
		SharedData: true,
	}
}

// Counters implements Counting.
func (r *Reference) Counters() Counters {
	return Counters{Estimates: r.estimates.Load(), Executes: r.executes.Load()}
}

// Close implements Driver; the reference driver holds no resources.
func (r *Reference) Close() error { return nil }

func init() {
	Register("reference", func(dsn string) (Driver, error) {
		db, err := openDataset(dsn)
		if err != nil {
			return nil, err
		}
		return NewReference(db), nil
	})
}

// openDataset materializes the benchmark dataset a key=value DSN names:
// "dataset=tpch scale=0.05 seed=1". Generation is deterministic, so two
// drivers opened with the same DSN hold bit-identical data.
func openDataset(dsn string) (*storage.Database, error) {
	kv, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	scale, err := kv.Float("scale", 0.01)
	if err != nil {
		return nil, err
	}
	seed, err := kv.Int("seed", 1)
	if err != nil {
		return nil, err
	}
	name := kv.Str("dataset", "tpch")
	db, err := datagen.Generate(name, scale, seed)
	if err != nil {
		return nil, fmt.Errorf("generate dataset %q: %w", name, err)
	}
	return db, nil
}
