package engine

import (
	"context"
	"database/sql"
	"errors"
	"math"
	"sync"
	"testing"

	"learnedsqlgen/internal/estimator"
	"learnedsqlgen/internal/faultinject"
	"learnedsqlgen/internal/resilience"
	"learnedsqlgen/internal/sqlast"
)

// openInprocess registers db under a test handle and opens the full
// database/sql path over it.
func openInprocess(t *testing.T, handle string) Driver {
	t.Helper()
	RegisterTestDatabase(handle, exampleDB(t))
	d, err := Open("inprocess", "handle="+handle)
	if err != nil {
		t.Fatalf("Open(inprocess): %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestInprocessExplainEstimate drives the EXPLAIN estimate path end to
// end: SQL text out, plan text back, estimate parsed — and the result
// must equal the raw estimator's answer for the same statement.
func TestInprocessExplainEstimate(t *testing.T) {
	d := openInprocess(t, "explain-test")
	ref := NewReference(exampleDB(t))
	ctx := context.Background()

	for _, src := range []string{
		"SELECT Score.Grade FROM Score WHERE Score.Grade > 60",
		"SELECT Student.Name, Score.Grade FROM Student JOIN Score ON Student.ID = Score.ID",
		"SELECT Score.Course, AVG(Score.Grade) FROM Score GROUP BY Score.Course HAVING AVG(Score.Grade) > 50",
	} {
		st := mustParse(t, src)
		got, err := d.EstimateContext(ctx, st)
		if err != nil {
			t.Fatalf("adapter estimate of %q: %v", src, err)
		}
		want, err := ref.EstimateContext(ctx, st)
		if err != nil {
			t.Fatalf("reference estimate of %q: %v", src, err)
		}
		// The plan text prints one decimal, so agree to 0.05 absolute.
		if math.Abs(got.Card-want.Card) > 0.06 || math.Abs(got.Cost-want.Cost) > 0.06 {
			t.Errorf("estimate of %q through EXPLAIN = %+v, reference %+v", src, got, want)
		}
	}
}

// TestCountFallback forces the no-EXPLAIN path: the ansi dialect has no
// Explain hook, so the adapter must probe with COUNT(*) and return the
// exact cardinality.
func TestCountFallback(t *testing.T) {
	db := exampleDB(t)
	RegisterTestDatabase("count-test", db)
	pool, err := sql.Open(SQLDriverName, "handle=count-test")
	if err != nil {
		t.Fatal(err)
	}
	ansi, _ := DialectByName("ansi")
	a := NewSQLAdapter(pool, "inprocess-ansi", ansi)
	a.ownsDB = true
	defer a.Close()

	ctx := context.Background()
	st := mustParse(t, "SELECT Score.Grade FROM Score WHERE Score.Grade > 60")
	est, err := a.EstimateContext(ctx, st)
	if err != nil {
		t.Fatalf("EstimateContext: %v", err)
	}
	if est.Card != 4 {
		t.Fatalf("COUNT(*) fallback card = %v, want exactly 4", est.Card)
	}

	// DML has no COUNT fallback and ansi has no EXPLAIN: permanent error.
	_, err = a.EstimateContext(ctx, mustParse(t, "DELETE FROM Score WHERE Score.Grade < 50"))
	if err == nil {
		t.Fatal("estimating DML without any path should fail")
	}
	if !errors.Is(err, estimator.ErrUnestimable) {
		t.Fatalf("want ErrUnestimable, got %v", err)
	}
	if resilience.Classify(err) != resilience.ClassPermanent {
		t.Fatalf("a missing estimate path must be permanent, got class %v", resilience.Classify(err))
	}
}

// TestAdapterExecute compares adapter execution (rows through
// database/sql value conversion) against the reference executor.
func TestAdapterExecute(t *testing.T) {
	d := openInprocess(t, "exec-test")
	ref := NewReference(exampleDB(t))
	ctx := context.Background()

	st := mustParse(t, "SELECT Student.Name, Score.Grade FROM Student JOIN Score ON Student.ID = Score.ID WHERE Score.Grade > 60")
	got, err := d.ExecuteContext(ctx, st)
	if err != nil {
		t.Fatalf("ExecuteContext: %v", err)
	}
	want, err := ref.ExecuteContext(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality != want.Cardinality || len(got.Rows) != len(want.Rows) {
		t.Fatalf("cardinality %d, want %d", got.Cardinality, want.Cardinality)
	}
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("columns %v, want %v", got.Columns, want.Columns)
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j].SQL() != want.Rows[i][j].SQL() {
				t.Fatalf("row %d col %d: %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}

	// DML goes through ExecContext and reports affected rows; the shared
	// data stays untouched (snapshot semantics of the in-process engine).
	del, err := d.ExecuteContext(ctx, mustParse(t, "DELETE FROM Score WHERE Score.Grade < 90"))
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if del.Cardinality != 6 {
		t.Fatalf("delete affected %d rows, want 6", del.Cardinality)
	}
	again, err := d.ExecuteContext(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cardinality != want.Cardinality {
		t.Fatalf("DML leaked: select now returns %d rows, want %d", again.Cardinality, want.Cardinality)
	}

	if c, ok := d.(Counting); ok {
		if n := c.Counters(); n.Executes != 3 {
			t.Fatalf("Executes = %d, want 3", n.Executes)
		}
	} else {
		t.Fatal("inprocess driver does not expose counters")
	}
}

// TestDriverConcurrentUnderFaults is the -race check for the full
// driver-backed stack: resilience → faultinject → adapter → database/sql
// → in-process engine, hammered from many goroutines. Every call must
// end in success, a transient exhaustion, or a breaker rejection — never
// a permanent error, a lost retry accounting, or a data race.
func TestDriverConcurrentUnderFaults(t *testing.T) {
	d := openInprocess(t, "race-test")

	inj := faultinject.New(faultinject.Config{Seed: 7, ErrorRate: 0.15})
	met := &resilience.Metrics{}
	pol := resilience.Policy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 100, Jitter: -1}
	est := resilience.NewEstimator(faultinject.NewEstimator(d, inj), pol, met)
	exec := resilience.NewExecutor(faultinject.NewExecutor(d, inj), pol, met)

	stmts := []string{
		"SELECT Score.Grade FROM Score WHERE Score.Grade > 60",
		"SELECT Student.ID FROM Student",
		"SELECT Score.Course, AVG(Score.Grade) FROM Score GROUP BY Score.Course",
		"DELETE FROM Score WHERE Score.Grade < 50",
	}
	type workItem struct {
		st  sqlast.Statement
		dml bool
	}
	parsed := make([]workItem, len(stmts))
	for i, s := range stmts {
		parsed[i] = workItem{st: mustParse(t, s), dml: i == len(stmts)-1}
	}

	const workers = 8
	const iters = 40
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, workers*iters*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := parsed[(w+i)%len(parsed)]
				if !p.dml {
					if _, err := est.EstimateContext(ctx, p.st); err != nil {
						errCh <- err
					}
				}
				if _, err := exec.ExecuteContext(ctx, p.st); err != nil {
					errCh <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)

	for err := range errCh {
		// Exhausted retries and breaker rejections are legal under
		// injected faults; anything permanent is a real bug.
		if resilience.Classify(err) != resilience.ClassTransient {
			t.Fatalf("non-transient error escaped the resilient driver stack: %v", err)
		}
	}
	if met.Retries.Load() == 0 {
		t.Fatal("fault injection never triggered a retry — the test exercised nothing")
	}
	if c, ok := d.(Counting); ok {
		n := c.Counters()
		if n.Estimates == 0 || n.Executes == 0 {
			t.Fatalf("driver counters did not advance: %+v", n)
		}
	}
}
