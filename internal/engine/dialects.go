package engine

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
)

// Dialect bundles everything engine-specific about talking SQL to one
// engine family: how statements render (sqlast.Dialect), how the text
// reads back (parser.Options — the render→reparse property each dialect
// must keep), and the cardinality-probe syntax the database/sql adapter
// uses (EXPLAIN where the engine exposes estimates, a COUNT(*) wrapper
// where it does not).
type Dialect struct {
	// Render formats identifiers, literals, placeholders and LIMIT.
	Render sqlast.Dialect
	// Reparse is the lexical convention that reads this dialect's output
	// back; Render followed by parsing under Reparse must reproduce the
	// statement.
	Reparse parser.Options
	// Explain wraps a rendered SELECT in the engine's EXPLAIN form, or is
	// nil when the engine exposes no optimizer estimates (then the adapter
	// falls back to CountWrap).
	Explain func(sql string) string
	// ParseExplain extracts (card, cost) from the EXPLAIN result grid.
	// Engines without a cost column report the row estimate as the cost.
	ParseExplain func(cols []string, rows [][]string) (card, cost float64, ok bool)
	// CountWrap wraps a rendered SELECT so it returns one row holding the
	// exact result cardinality, or is nil when unsupported.
	CountWrap func(sql string) string
}

// Name is the dialect's registry name (that of its renderer).
func (d Dialect) Name() string { return d.Render.Name() }

var dialects = map[string]Dialect{
	"native": {
		Render:       sqlast.Native,
		Explain:      func(sql string) string { return "EXPLAIN " + sql },
		ParseExplain: parseNativeExplain,
	},
	"ansi": {
		Render:    genericDialect{name: "ansi", quote: '"'},
		CountWrap: countWrapAliased,
	},
	"postgres": {
		Render:       genericDialect{name: "postgres", quote: '"', foldsCase: true, dollar: true},
		Explain:      func(sql string) string { return "EXPLAIN " + sql },
		ParseExplain: parsePostgresExplain,
		CountWrap:    countWrapAliased,
	},
	"mysql": {
		Render:       genericDialect{name: "mysql", quote: '`', backslash: true},
		Reparse:      parser.Options{BackslashEscapes: true},
		Explain:      func(sql string) string { return "EXPLAIN " + sql },
		ParseExplain: parseMySQLExplain,
		CountWrap:    countWrapAliased,
	},
	"sqlite": {
		// EXPLAIN QUERY PLAN carries no row estimates, so sqlite always
		// takes the COUNT(*) fallback.
		Render:    genericDialect{name: "sqlite", quote: '"'},
		CountWrap: countWrapAliased,
	},
}

// DialectByName looks a dialect up by name.
func DialectByName(name string) (Dialect, bool) {
	d, ok := dialects[name]
	return d, ok
}

// Dialects lists the registered dialect names, sorted.
func Dialects() []string {
	out := make([]string, 0, len(dialects))
	for name := range dialects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func countWrapAliased(sql string) string {
	// The derived-table alias is mandatory in mysql and harmless
	// everywhere else.
	return "SELECT COUNT(*) FROM (" + sql + ") AS q"
}

// genericDialect renders for external engines. It differs from the
// native dialect in exactly the ways that would break on a real engine:
// floats always carry a decimal point or exponent (a bare "1" would be
// read back as an integer and change the column type the engine infers),
// string literals escape backslashes when the engine treats them as
// escapes, and identifier quoting follows the engine's quote character
// and case-folding rules.
type genericDialect struct {
	name      string
	quote     byte // '"' (ANSI) or '`' (mysql)
	foldsCase bool // engine folds unquoted identifiers (postgres): quote any ident with upper case
	dollar    bool // $1-style placeholders (postgres)
	backslash bool // backslash is an escape inside string literals (mysql)
}

func (d genericDialect) Name() string { return d.name }

func (d genericDialect) QuoteIdent(ident string) string {
	if sqlast.IdentNeedsQuoting(ident) || (d.foldsCase && hasUpper(ident)) {
		q := string(d.quote)
		return q + strings.ReplaceAll(ident, q, q+q) + q
	}
	return ident
}

func (d genericDialect) Literal(v sqltypes.Value) string {
	switch v.Kind() {
	case sqltypes.KindString:
		s := v.Str()
		if d.backslash {
			s = strings.ReplaceAll(s, `\`, `\\`)
		}
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	case sqltypes.KindFloat:
		return FloatLiteral(v.Float())
	default:
		return v.SQL()
	}
}

func (d genericDialect) Placeholder(n int) string {
	if d.dollar {
		return "$" + strconv.Itoa(n)
	}
	return "?"
}

func (d genericDialect) Limit(sql string, n int) string {
	return sql + " LIMIT " + strconv.Itoa(n)
}

func hasUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			return true
		}
	}
	return false
}

// FloatLiteral renders f so it reads back as a float on any engine: the
// shortest round-trippable decimal form, with ".0" appended when that
// form has neither a decimal point nor an exponent. (The native dialect
// deliberately lets 1.0 canonicalize to "1" — its parser types constants
// by comparison context — but an external engine would infer an integer.)
func FloatLiteral(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

var (
	// e.g. "Seq Scan on t  (cost=0.00..17.50 rows=750 width=36)"
	pgExplainRE = regexp.MustCompile(`\(cost=[0-9.]+\.\.([0-9.]+) rows=([0-9]+)`)
	// our own PlanNode lines: "output  (rows=12.0 cost=340.5)"
	nativeExplainRE = regexp.MustCompile(`\(rows=([0-9.eE+-]+) cost=([0-9.eE+-]+)\)`)
)

// parsePostgresExplain reads the first plan line of textual EXPLAIN
// output; the root node carries the query's total cost and row estimate.
func parsePostgresExplain(cols []string, rows [][]string) (float64, float64, bool) {
	for _, row := range rows {
		for _, cell := range row {
			if m := pgExplainRE.FindStringSubmatch(cell); m != nil {
				cost, err1 := strconv.ParseFloat(m[1], 64)
				card, err2 := strconv.ParseFloat(m[2], 64)
				if err1 == nil && err2 == nil {
					return card, cost, true
				}
			}
		}
	}
	return 0, 0, false
}

// parseMySQLExplain reads classic tabular EXPLAIN: the per-table "rows"
// column multiplies into the join size estimate. Classic EXPLAIN exposes
// no cost, so the estimate doubles as the cost.
func parseMySQLExplain(cols []string, rows [][]string) (float64, float64, bool) {
	idx := -1
	for i, c := range cols {
		if strings.EqualFold(c, "rows") {
			idx = i
			break
		}
	}
	if idx < 0 || len(rows) == 0 {
		return 0, 0, false
	}
	card := 1.0
	for _, row := range rows {
		if idx >= len(row) {
			return 0, 0, false
		}
		n, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			return 0, 0, false
		}
		card *= n
	}
	return card, card, true
}

// parseNativeExplain reads the in-process engine's PlanNode rendering;
// the first line is the root operator with the final estimate.
func parseNativeExplain(cols []string, rows [][]string) (float64, float64, bool) {
	for _, row := range rows {
		for _, cell := range row {
			if m := nativeExplainRE.FindStringSubmatch(cell); m != nil {
				card, err1 := strconv.ParseFloat(m[1], 64)
				cost, err2 := strconv.ParseFloat(m[2], 64)
				if err1 == nil && err2 == nil {
					return card, cost, true
				}
			}
		}
	}
	return 0, 0, false
}
