package engine

import (
	"context"
	"errors"
	"testing"

	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/resilience"
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/storage"
)

// exampleDB builds the paper's running example: Score(ID, Course, Grade)
// referencing Student(ID, Name).
func exampleDB(t testing.TB) *storage.Database {
	t.Helper()
	s, err := schema.NewBuilder("example").
		Table("Student", "T2",
			schema.Column{Name: "ID", Kind: sqltypes.KindInt, PrimaryKey: true},
			schema.Column{Name: "Name", Kind: sqltypes.KindString},
		).
		Table("Score", "T1",
			schema.Column{Name: "ID", Kind: sqltypes.KindInt},
			schema.Column{Name: "Course", Kind: sqltypes.KindString, Categorical: true},
			schema.Column{Name: "Grade", Kind: sqltypes.KindFloat},
		).
		ForeignKey("Score", "ID", "Student", "ID").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	for _, st := range []struct {
		id   int64
		name string
	}{{1, "Ann"}, {2, "Bob"}, {3, "Cyd"}, {4, "Dee"}} {
		if err := db.Table("Student").Append(storage.Row{
			sqltypes.NewInt(st.id), sqltypes.NewString(st.name)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, sc := range []struct {
		id     int64
		course string
		grade  float64
	}{
		{1, "math", 95}, {1, "cs", 80}, {2, "math", 60}, {2, "cs", 70},
		{3, "math", 88}, {4, "cs", 52}, {4, "math", 45},
	} {
		if err := db.Table("Score").Append(storage.Row{
			sqltypes.NewInt(sc.id), sqltypes.NewString(sc.course),
			sqltypes.NewFloat(sc.grade)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustParse(t testing.TB, src string) sqlast.Statement {
	t.Helper()
	st, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestRegistry(t *testing.T) {
	names := Drivers()
	for _, want := range []string{"reference", "inprocess", "sql"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("driver %q not registered (have %v)", want, names)
		}
	}
	if _, err := Open("no-such-engine", ""); err == nil {
		t.Fatal("Open of an unknown driver succeeded")
	}
}

func TestParseDSN(t *testing.T) {
	kv, err := ParseDSN("dataset=tpch scale=0.05 seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if kv.Str("dataset", "") != "tpch" {
		t.Errorf("dataset = %q", kv.Str("dataset", ""))
	}
	if f, _ := kv.Float("scale", 0); f != 0.05 {
		t.Errorf("scale = %v", f)
	}
	if i, _ := kv.Int("seed", 0); i != 7 {
		t.Errorf("seed = %v", i)
	}
	if i, _ := kv.Int("missing", 42); i != 42 {
		t.Errorf("missing default = %v", i)
	}
	if _, err := ParseDSN("garbage-without-equals"); err == nil {
		t.Fatal("malformed DSN accepted")
	}
	if _, err := kv.Float("dataset", 0); err == nil {
		t.Fatal("non-numeric Float accepted")
	}
}

func TestReferenceDriver(t *testing.T) {
	db := exampleDB(t)
	ref := NewReference(db)
	defer ref.Close()

	caps := ref.Capabilities()
	if !caps.Estimate || !caps.Execute || !caps.SharedData {
		t.Fatalf("unexpected capabilities: %+v", caps)
	}

	ctx := context.Background()
	sel := mustParse(t, "SELECT Score.Grade FROM Score WHERE Score.Grade > 60")
	est, err := ref.EstimateContext(ctx, sel)
	if err != nil {
		t.Fatalf("EstimateContext: %v", err)
	}
	if est.Card <= 0 || est.Cost <= 0 {
		t.Fatalf("degenerate estimate: %+v", est)
	}
	res, err := ref.ExecuteContext(ctx, sel)
	if err != nil {
		t.Fatalf("ExecuteContext: %v", err)
	}
	if res.Cardinality != 4 {
		t.Fatalf("Cardinality = %d, want 4", res.Cardinality)
	}

	// DML runs on a snapshot: the shared database must not change.
	before := db.Table("Score").NumRows()
	del, err := ref.ExecuteContext(ctx, mustParse(t, "DELETE FROM Score WHERE Score.Grade < 90"))
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if del.Cardinality == 0 {
		t.Fatal("delete affected no rows")
	}
	if after := db.Table("Score").NumRows(); after != before {
		t.Fatalf("DML leaked into the shared database: %d -> %d rows", before, after)
	}

	c := ref.Counters()
	if c.Estimates != 1 || c.Executes != 2 {
		t.Fatalf("counters = %+v, want 1 estimate / 2 executes", c)
	}
}

func TestReferenceFactory(t *testing.T) {
	d, err := Open("reference", "dataset=tpch scale=0.01 seed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	est, err := d.EstimateContext(context.Background(),
		mustParse(t, "SELECT customer.c_custkey FROM customer"))
	if err != nil {
		t.Fatalf("EstimateContext: %v", err)
	}
	if est.Card <= 0 {
		t.Fatalf("estimate over generated dataset is degenerate: %+v", est)
	}
	if _, err := Open("reference", "scale=bogus"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// TestErrorClassification pins the contract with the resilience layer:
// engine errors are transient (retried), but a wrapped context
// cancellation still aborts.
func TestErrorClassification(t *testing.T) {
	e := &Error{Engine: "x", Op: "estimate", Err: errors.New("connection reset")}
	if resilience.Classify(e) != resilience.ClassTransient {
		t.Fatal("engine.Error must classify as transient")
	}
	cancelled := &Error{Engine: "x", Op: "execute", Err: context.Canceled}
	if resilience.Classify(cancelled) != resilience.ClassAbort {
		t.Fatal("wrapped context.Canceled must classify as abort")
	}
	if !errors.Is(cancelled, context.Canceled) {
		t.Fatal("Unwrap chain broken")
	}
}
