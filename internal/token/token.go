// Package token defines the action space A of LearnedSQLGen (§4.1): the
// fixed vocabulary of tokens an agent can emit. Five token classes exist —
// reserved words of the SQL grammar, schema metadata (tables and columns),
// cell values sampled per column, comparison operators, and EOF. Each token
// has a stable integer id; the id is the one-hot dimension used by the
// neural networks, so vocabulary construction is deterministic under a
// fixed (database, k, seed).
package token

import (
	"fmt"
	"math/rand"
	"sort"

	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
	"learnedsqlgen/internal/sqltypes"
	"learnedsqlgen/internal/stats"
	"learnedsqlgen/internal/storage"
)

// Type is the token class.
type Type uint8

// Token classes (§4.1 lists exactly these five).
const (
	TypeReserved Type = iota
	TypeTable
	TypeColumn
	TypeValue
	TypeOperator
	TypeEOF
	// TypePattern is a LIKE pattern sampled from a string column's values
	// (the §5 future-work extension implemented by this reproduction).
	TypePattern
)

// Reserved enumerates the reserved words of the supported grammar.
type Reserved uint8

// Reserved words. Aggregate functions are reserved words per the paper's
// token list ("MAX/MIN, Sum, AVG, Count").
const (
	RInvalid Reserved = iota
	RSelect
	RFrom
	RWhere
	RJoin
	RGroupBy
	ROrderBy
	RHaving
	RAnd
	ROr
	RNot
	RIn
	RExists
	RInsert
	RUpdate
	RDelete
	RSet
	RValues
	RMax
	RMin
	RSum
	RAvg
	RCount
	RLike
)

var reservedNames = map[Reserved]string{
	RSelect: "SELECT", RFrom: "FROM", RWhere: "WHERE", RJoin: "JOIN",
	RGroupBy: "GROUP BY", ROrderBy: "ORDER BY", RHaving: "HAVING",
	RAnd: "AND", ROr: "OR", RNot: "NOT", RIn: "IN", RExists: "EXISTS",
	RInsert: "INSERT INTO", RUpdate: "UPDATE", RDelete: "DELETE FROM",
	RSet: "SET", RValues: "VALUES",
	RMax: "MAX", RMin: "MIN", RSum: "SUM", RAvg: "AVG", RCount: "COUNT",
	RLike: "LIKE",
}

// allReserved lists reserved words in vocabulary order.
var allReserved = []Reserved{
	RSelect, RFrom, RWhere, RJoin, RGroupBy, ROrderBy, RHaving,
	RAnd, ROr, RNot, RIn, RExists,
	RInsert, RUpdate, RDelete, RSet, RValues,
	RMax, RMin, RSum, RAvg, RCount, RLike,
}

// String returns the SQL spelling of the reserved word.
func (r Reserved) String() string {
	if s, ok := reservedNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Reserved(%d)", r)
}

// Agg maps aggregate reserved words to the AST aggregate, or AggNone.
func (r Reserved) Agg() sqlast.AggFunc {
	switch r {
	case RMax:
		return sqlast.AggMax
	case RMin:
		return sqlast.AggMin
	case RSum:
		return sqlast.AggSum
	case RAvg:
		return sqlast.AggAvg
	case RCount:
		return sqlast.AggCount
	default:
		return sqlast.AggNone
	}
}

// Token is one action in A.
type Token struct {
	ID   int
	Type Type
	// Reserved is set for TypeReserved.
	Reserved Reserved
	// Table is set for TypeTable, TypeColumn and TypeValue tokens.
	Table string
	// Column is set for TypeColumn and TypeValue tokens.
	Column string
	// Value is set for TypeValue.
	Value sqltypes.Value
	// Pattern is set for TypePattern.
	Pattern string
	// Op is set for TypeOperator.
	Op sqlast.CmpOp
}

// QC returns the token's qualified column (TypeColumn and TypeValue).
func (t Token) QC() schema.QualifiedColumn {
	return schema.QualifiedColumn{Table: t.Table, Column: t.Column}
}

// String renders the token's SQL spelling.
func (t Token) String() string {
	switch t.Type {
	case TypeReserved:
		return t.Reserved.String()
	case TypeTable:
		return t.Table
	case TypeColumn:
		return t.Table + "." + t.Column
	case TypeValue:
		return t.Value.SQL()
	case TypePattern:
		return sqltypes.NewString(t.Pattern).SQL()
	case TypeOperator:
		return t.Op.String()
	case TypeEOF:
		return "EOF"
	default:
		return fmt.Sprintf("Token(%d)", t.ID)
	}
}

// Vocab is the complete, immutable action space for one database.
type Vocab struct {
	tokens []Token

	reservedIdx map[Reserved]int
	tableIdx    map[string]int
	columnIdx   map[schema.QualifiedColumn]int
	opIdx       map[sqlast.CmpOp]int
	valueIdx    map[schema.QualifiedColumn][]int
	patternIdx  map[schema.QualifiedColumn][]int
	eofID       int
}

// operators supported by the generator (§4.1 lists {>, =, <, >=, <=}; the
// grammar table adds <>).
var operators = []sqlast.CmpOp{
	sqlast.OpLt, sqlast.OpGt, sqlast.OpLe, sqlast.OpGe, sqlast.OpEq, sqlast.OpNe,
}

// Build constructs the vocabulary for db, sampling up to k cell values per
// non-categorical column (categorical columns contribute their full
// domain). The same (db, k, seed) always yields the same ids.
func Build(db *storage.Database, k int, seed int64) *Vocab {
	v := &Vocab{
		reservedIdx: map[Reserved]int{},
		tableIdx:    map[string]int{},
		columnIdx:   map[schema.QualifiedColumn]int{},
		opIdx:       map[sqlast.CmpOp]int{},
		valueIdx:    map[schema.QualifiedColumn][]int{},
		patternIdx:  map[schema.QualifiedColumn][]int{},
	}
	add := func(t Token) int {
		t.ID = len(v.tokens)
		v.tokens = append(v.tokens, t)
		return t.ID
	}

	for _, r := range allReserved {
		v.reservedIdx[r] = add(Token{Type: TypeReserved, Reserved: r})
	}
	for _, op := range operators {
		v.opIdx[op] = add(Token{Type: TypeOperator, Op: op})
	}
	v.eofID = add(Token{Type: TypeEOF})

	rng := rand.New(rand.NewSource(seed))
	for _, tab := range db.Tables() {
		v.tableIdx[tab.Meta.Name] = add(Token{Type: TypeTable, Table: tab.Meta.Name})
		for ci, col := range tab.Meta.Columns {
			qc := schema.QualifiedColumn{Table: tab.Meta.Name, Column: col.Name}
			v.columnIdx[qc] = add(Token{Type: TypeColumn, Table: tab.Meta.Name, Column: col.Name})
			vals := stats.SampleValues(tab, ci, k, col.Categorical, rng)
			ids := make([]int, 0, len(vals))
			for _, val := range vals {
				ids = append(ids, add(Token{
					Type: TypeValue, Table: tab.Meta.Name, Column: col.Name, Value: val,
				}))
			}
			v.valueIdx[qc] = ids
			if col.Kind == sqltypes.KindString && !col.Categorical {
				pats := samplePatterns(vals, k/4+1, rng)
				pids := make([]int, 0, len(pats))
				for _, pat := range pats {
					pids = append(pids, add(Token{
						Type: TypePattern, Table: tab.Meta.Name, Column: col.Name, Pattern: pat,
					}))
				}
				v.patternIdx[qc] = pids
			}
		}
	}
	return v
}

// Size is |A|, the one-hot dimension.
func (v *Vocab) Size() int { return len(v.tokens) }

// Token returns the token with the given id.
func (v *Vocab) Token(id int) Token { return v.tokens[id] }

// Reserved returns the id of a reserved word.
func (v *Vocab) Reserved(r Reserved) int { return v.reservedIdx[r] }

// TableToken returns the id of a table token, or -1.
func (v *Vocab) TableToken(name string) int {
	if id, ok := v.tableIdx[name]; ok {
		return id
	}
	return -1
}

// ColumnToken returns the id of a column token, or -1.
func (v *Vocab) ColumnToken(qc schema.QualifiedColumn) int {
	if id, ok := v.columnIdx[qc]; ok {
		return id
	}
	return -1
}

// OperatorToken returns the id of an operator token, or -1.
func (v *Vocab) OperatorToken(op sqlast.CmpOp) int {
	if id, ok := v.opIdx[op]; ok {
		return id
	}
	return -1
}

// ValueTokens returns the ids of the sampled values for a column. Callers
// must not mutate the result.
func (v *Vocab) ValueTokens(qc schema.QualifiedColumn) []int { return v.valueIdx[qc] }

// PatternTokens returns the ids of the sampled LIKE patterns for a string
// column. Callers must not mutate the result.
func (v *Vocab) PatternTokens(qc schema.QualifiedColumn) []int { return v.patternIdx[qc] }

// EOF returns the id of the EOF token.
func (v *Vocab) EOF() int { return v.eofID }

// samplePatterns derives up to n `%substring%` LIKE patterns from sampled
// column values (§5's sketch: "sampling substrings from the values of a
// column"), deduplicated and sorted for vocabulary stability.
func samplePatterns(vals []sqltypes.Value, n int, rng *rand.Rand) []string {
	seen := map[string]bool{}
	var out []string
	for tries := 0; tries < 4*n && len(out) < n && len(vals) > 0; tries++ {
		s := vals[rng.Intn(len(vals))].Str()
		if len(s) < 2 {
			continue
		}
		width := 2 + rng.Intn(3)
		if width > len(s) {
			width = len(s)
		}
		start := rng.Intn(len(s) - width + 1)
		pat := "%" + s[start:start+width] + "%"
		if !seen[pat] {
			seen[pat] = true
			out = append(out, pat)
		}
	}
	sort.Strings(out)
	return out
}

// Operators returns the supported comparison operators in vocabulary
// order. Callers must not mutate the result.
func Operators() []sqlast.CmpOp { return operators }
