package token

import (
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/schema"
	"learnedsqlgen/internal/sqlast"
)

func buildVocab(t testing.TB, k int) *Vocab {
	t.Helper()
	db, err := datagen.Generate(datagen.NameTPCH, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Build(db, k, 7)
}

func TestVocabCoversAllClasses(t *testing.T) {
	v := buildVocab(t, 10)
	counts := map[Type]int{}
	for i := 0; i < v.Size(); i++ {
		counts[v.Token(i).Type]++
	}
	if counts[TypeReserved] != len(allReserved) {
		t.Errorf("reserved tokens = %d, want %d", counts[TypeReserved], len(allReserved))
	}
	if counts[TypeTable] != 8 {
		t.Errorf("table tokens = %d, want 8", counts[TypeTable])
	}
	if counts[TypeColumn] == 0 || counts[TypeValue] == 0 {
		t.Error("missing column or value tokens")
	}
	if counts[TypeOperator] != 6 {
		t.Errorf("operator tokens = %d, want 6", counts[TypeOperator])
	}
	if counts[TypeEOF] != 1 {
		t.Errorf("EOF tokens = %d, want 1", counts[TypeEOF])
	}
}

func TestIDsAreDense(t *testing.T) {
	v := buildVocab(t, 5)
	for i := 0; i < v.Size(); i++ {
		if v.Token(i).ID != i {
			t.Fatalf("token %d has id %d", i, v.Token(i).ID)
		}
	}
}

func TestLookupsRoundTrip(t *testing.T) {
	v := buildVocab(t, 10)
	for _, r := range allReserved {
		id := v.Reserved(r)
		tok := v.Token(id)
		if tok.Type != TypeReserved || tok.Reserved != r {
			t.Errorf("Reserved(%v) lookup broken: %+v", r, tok)
		}
	}
	id := v.TableToken("orders")
	if id < 0 || v.Token(id).Table != "orders" {
		t.Error("table lookup broken")
	}
	if v.TableToken("nope") != -1 {
		t.Error("unknown table must be -1")
	}
	qc := schema.QualifiedColumn{Table: "orders", Column: "o_totalprice"}
	id = v.ColumnToken(qc)
	if id < 0 || v.Token(id).QC() != qc {
		t.Error("column lookup broken")
	}
	if v.ColumnToken(schema.QualifiedColumn{Table: "x", Column: "y"}) != -1 {
		t.Error("unknown column must be -1")
	}
	for _, op := range Operators() {
		id := v.OperatorToken(op)
		if id < 0 || v.Token(id).Op != op {
			t.Errorf("operator %v lookup broken", op)
		}
	}
	if v.OperatorToken(sqlast.OpInvalid) != -1 {
		t.Error("invalid operator must be -1")
	}
	if v.Token(v.EOF()).Type != TypeEOF {
		t.Error("EOF lookup broken")
	}
}

func TestValueTokensRespectK(t *testing.T) {
	v := buildVocab(t, 7)
	qc := schema.QualifiedColumn{Table: "lineitem", Column: "l_extendedprice"}
	ids := v.ValueTokens(qc)
	if len(ids) != 7 {
		t.Errorf("numeric column sampled %d values, want 7", len(ids))
	}
	for _, id := range ids {
		tok := v.Token(id)
		if tok.Type != TypeValue || tok.QC() != qc {
			t.Errorf("value token %d misbound: %+v", id, tok)
		}
		if tok.Value.IsNull() {
			t.Error("sampled value must not be NULL")
		}
	}
}

func TestCategoricalFullDomain(t *testing.T) {
	v := buildVocab(t, 2)
	qc := schema.QualifiedColumn{Table: "orders", Column: "o_orderstatus"}
	ids := v.ValueTokens(qc)
	// Full domain {F, O, P} even though k=2.
	if len(ids) != 3 {
		t.Errorf("categorical domain = %d values, want 3", len(ids))
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	db, err := datagen.Generate(datagen.NameTPCH, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := Build(db, 20, 5)
	b := Build(db, 20, 5)
	if a.Size() != b.Size() {
		t.Fatal("sizes differ under same seed")
	}
	for i := 0; i < a.Size(); i++ {
		if a.Token(i).String() != b.Token(i).String() {
			t.Fatalf("token %d differs: %s vs %s", i, a.Token(i), b.Token(i))
		}
	}
}

func TestTokenStrings(t *testing.T) {
	v := buildVocab(t, 5)
	if got := v.Token(v.Reserved(RGroupBy)).String(); got != "GROUP BY" {
		t.Errorf("GROUP BY spelling = %q", got)
	}
	if got := v.Token(v.EOF()).String(); got != "EOF" {
		t.Errorf("EOF spelling = %q", got)
	}
	if got := v.Token(v.OperatorToken(sqlast.OpNe)).String(); got != "<>" {
		t.Errorf("<> spelling = %q", got)
	}
	qc := schema.QualifiedColumn{Table: "orders", Column: "o_custkey"}
	if got := v.Token(v.ColumnToken(qc)).String(); got != "orders.o_custkey" {
		t.Errorf("column spelling = %q", got)
	}
}

func TestReservedAggMapping(t *testing.T) {
	cases := map[Reserved]sqlast.AggFunc{
		RMax: sqlast.AggMax, RMin: sqlast.AggMin, RSum: sqlast.AggSum,
		RAvg: sqlast.AggAvg, RCount: sqlast.AggCount,
		RSelect: sqlast.AggNone, RWhere: sqlast.AggNone,
	}
	for r, want := range cases {
		if got := r.Agg(); got != want {
			t.Errorf("%v.Agg() = %v, want %v", r, got, want)
		}
	}
}

func TestVocabSizeScalesWithK(t *testing.T) {
	small := buildVocab(t, 5)
	large := buildVocab(t, 50)
	if large.Size() <= small.Size() {
		t.Errorf("vocab size must grow with k: %d vs %d", small.Size(), large.Size())
	}
}

func TestPatternTokens(t *testing.T) {
	v := buildVocab(t, 20)
	// Plain string column gets patterns.
	qc := schema.QualifiedColumn{Table: "customer", Column: "c_name"}
	pats := v.PatternTokens(qc)
	if len(pats) == 0 {
		t.Fatal("string column must have pattern tokens")
	}
	for _, id := range pats {
		tok := v.Token(id)
		if tok.Type != TypePattern || tok.QC() != qc {
			t.Errorf("pattern token misbound: %+v", tok)
		}
		if len(tok.Pattern) < 4 || tok.Pattern[0] != '%' || tok.Pattern[len(tok.Pattern)-1] != '%' {
			t.Errorf("malformed pattern %q", tok.Pattern)
		}
		if tok.String() != "'"+tok.Pattern+"'" {
			t.Errorf("pattern spelling = %q", tok.String())
		}
	}
	// Numeric and categorical columns get none.
	if len(v.PatternTokens(schema.QualifiedColumn{Table: "orders", Column: "o_totalprice"})) != 0 {
		t.Error("numeric column must have no patterns")
	}
	if len(v.PatternTokens(schema.QualifiedColumn{Table: "orders", Column: "o_orderstatus"})) != 0 {
		t.Error("categorical column must have no patterns")
	}
}
