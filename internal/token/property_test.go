package token

import (
	"testing"

	"learnedsqlgen/internal/datagen"
	"learnedsqlgen/internal/parser"
	"learnedsqlgen/internal/sqltypes"
)

// TestVocabValueTokensLexAsLiterals is the vocabulary/lexer conformance
// property: every sampled cell value in every dataset's vocabulary must
// render to SQL that lexes back as a single literal token of the same
// type class and the same value — otherwise the FSM could emit queries
// whose constants the parser reads back differently than the executor
// stored them.
func TestVocabValueTokensLexAsLiterals(t *testing.T) {
	for _, dataset := range []string{datagen.NameTPCH, datagen.NameJOB, datagen.NameXueTang} {
		t.Run(dataset, func(t *testing.T) {
			db, err := datagen.Generate(dataset, 0.05, 1)
			if err != nil {
				t.Fatal(err)
			}
			vocab := Build(db, 20, 7)
			values, patterns := 0, 0
			for id := 0; id < vocab.Size(); id++ {
				tok := vocab.Token(id)
				switch tok.Type {
				case TypeValue:
					values++
					got, err := parser.LexValue(tok.Value.SQL())
					if err != nil {
						t.Errorf("value token %d (%s) does not lex as a literal: %v", id, tok, err)
						continue
					}
					wantString := tok.Value.Kind() == sqltypes.KindString
					if gotString := got.Kind() == sqltypes.KindString; gotString != wantString {
						t.Errorf("value token %d: type class flipped: %v -> %v", id, tok.Value, got)
						continue
					}
					if sqltypes.Compare(got, tok.Value) != 0 {
						t.Errorf("value token %d: lexed back unequal: %v -> %v", id, tok.Value, got)
					}
				case TypePattern:
					patterns++
					got, err := parser.LexValue(tok.String())
					if err != nil {
						t.Errorf("pattern token %d (%s) does not lex as a literal: %v", id, tok, err)
						continue
					}
					if got.Kind() != sqltypes.KindString {
						t.Errorf("pattern token %d lexed as %v, want a string", id, got)
					}
				}
			}
			if values == 0 {
				t.Fatal("vocabulary has no value tokens — property vacuous")
			}
			if patterns == 0 {
				t.Fatal("vocabulary has no pattern tokens — property vacuous")
			}
		})
	}
}
