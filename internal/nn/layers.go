package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Embedding maps token ids to dense vectors (mathematically, the one-hot
// state encoding of §4.1 multiplied into the first weight matrix).
type Embedding struct {
	Dim int
	P   *Param // rows = vocab (+ BOS row), cols = Dim
}

// NewEmbedding allocates a vocab×dim table.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Dim: dim, P: NewParam(name, vocab, dim, rng)}
}

// Params lists trainable parameters.
func (e *Embedding) Params() []*Param { return []*Param{e.P} }

// Row returns a read-only view of the embedding row for id. Callers must
// not mutate or retain it across weight updates.
func (e *Embedding) Row(id int) []float64 { return e.P.Val.Row(id) }

// LookupInto copies the embedding row for id into dst (length Dim).
func (e *Embedding) LookupInto(id int, dst []float64) {
	copy(dst, e.P.Val.Row(id))
}

// Accumulate adds dx into the gradient row for id.
func (e *Embedding) Accumulate(id int, dx []float64) {
	row := e.P.Grad.Row(id)
	for j, d := range dx {
		row[j] += d
	}
}

// Linear is a fully connected layer y = W·x + b.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear allocates the layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		In: in, Out: out,
		W: NewParam(name+".W", out, in, rng),
		B: NewZeroParam(name+".B", out, 1),
	}
}

// Params lists trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ForwardInto computes the output into the caller-owned y (length Out).
func (l *Linear) ForwardInto(x, y []float64) {
	l.W.Val.MulVec(x, y)
	for i := range y {
		y[i] += l.B.Val.Data[i]
	}
}

// ForwardSparse computes only the output rows listed in ids, writing them
// into y (length Out, other entries untouched). Combined with masked
// softmax this avoids touching the full |A|-sized head on every step.
func (l *Linear) ForwardSparse(x []float64, ids []int, y []float64) {
	for _, id := range ids {
		row := l.W.Val.Row(id)
		s := l.B.Val.Data[id]
		for j, xv := range x {
			s += row[j] * xv
		}
		y[id] = s
	}
}

// BackwardInto accumulates parameter gradients for dy at input x and
// writes the input gradient into the caller-owned dx (length In,
// overwritten).
func (l *Linear) BackwardInto(x, dy, dx []float64) {
	l.W.Grad.AddOuter(dy, x)
	for i, d := range dy {
		l.B.Grad.Data[i] += d
	}
	zero(dx)
	l.W.Val.MulVecT(dy, dx)
}

// MaskedSoftmax computes softmax over logits restricted to the valid ids;
// masked entries get probability 0. The returned slice has len(logits).
// Hot paths use MaskedSoftmaxInto with a pooled buffer instead.
func MaskedSoftmax(logits []float64, valid []int) []float64 {
	probs := make([]float64, len(logits))
	MaskedSoftmaxInto(logits, valid, probs)
	return probs
}

// MaskedSoftmaxInto is MaskedSoftmax writing into the caller-owned probs
// (length = len(logits)); every masked entry is cleared to 0.
func MaskedSoftmaxInto(logits []float64, valid []int, probs []float64) {
	zero(probs)
	if len(valid) == 0 {
		return
	}
	max := math.Inf(-1)
	for _, id := range valid {
		if logits[id] > max {
			max = logits[id]
		}
	}
	var sum float64
	for _, id := range valid {
		e := math.Exp(logits[id] - max)
		probs[id] = e
		sum += e
	}
	for _, id := range valid {
		probs[id] /= sum
	}
}

// Entropy returns the Shannon entropy of a masked distribution.
func Entropy(probs []float64, valid []int) float64 {
	h := 0.0
	for _, id := range valid {
		p := probs[id]
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// PolicyGradLogits fills dLogits (length = len(probs)) with the gradient of
// the scalar loss
//
//	L = −A·log p[action] − λ·H(p)
//
// with respect to the masked logits. The well-known identities used:
// ∂(−log p_a)/∂z_j = p_j − 1{j=a} and ∂(−H)/∂z_j = p_j·(log p_j + H),
// both restricted to valid ids (masked logits receive zero gradient).
func PolicyGradLogits(probs []float64, valid []int, action int, advantage, entropyW float64, dLogits []float64) {
	for i := range dLogits {
		dLogits[i] = 0
	}
	h := 0.0
	if entropyW != 0 {
		h = Entropy(probs, valid)
	}
	for _, id := range valid {
		p := probs[id]
		g := advantage * p
		if id == action {
			g -= advantage
		}
		if entropyW != 0 && p > 0 {
			g += entropyW * p * (math.Log(p) + h)
		}
		dLogits[id] = g
	}
}

// Dropout applies inverted dropout in place, returning the keep mask used.
// With rate 0 (or nil rng) it is the identity and returns nil.
func Dropout(x []float64, rate float64, rng *rand.Rand) []bool {
	if rate <= 0 || rng == nil {
		return nil
	}
	mask := make([]bool, len(x))
	dropoutMasked(x, rate, rng, mask)
	return mask
}

// dropoutMasked is Dropout writing into a caller-owned (pooled) mask.
// Every mask entry is overwritten. The rng consumption — one Float64 per
// element — is identical to Dropout's, which the deterministic-rollout
// contract depends on.
func dropoutMasked(x []float64, rate float64, rng *rand.Rand, mask []bool) {
	keepScale := 1 / (1 - rate)
	for i := range x {
		if rng.Float64() < rate {
			x[i] = 0
			mask[i] = false
		} else {
			mask[i] = true
			x[i] *= keepScale
		}
	}
}

// DropoutBackward applies the stored mask to the gradient in place.
func DropoutBackward(dx []float64, mask []bool, rate float64) {
	if mask == nil {
		return
	}
	keepScale := 1 / (1 - rate)
	for i := range dx {
		if mask[i] {
			dx[i] *= keepScale
		} else {
			dx[i] = 0
		}
	}
}

// MLP is a stack of Linear layers with tanh activations between them.
// It backs the meta-critic's encoder and value heads, which run once per
// episode rather than once per token, so it keeps the convenient
// allocate-per-call interface on top of the Linear kernels.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer sizes (len ≥ 2).
func NewMLP(name string, sizes []int, rng *rand.Rand) *MLP {
	m := &MLP{}
	// Layers carry indexed names: checkpoint serialization matches
	// parameters by name, so same-named layers would collide in one file.
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], rng))
	}
	return m
}

// Params lists trainable parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// MLPCache stores per-layer activations for backward.
type MLPCache struct {
	xs  [][]float64 // input of each layer
	pre [][]float64 // pre-activation outputs
}

// Forward runs the network; hidden layers use tanh, the final layer is
// linear.
func (m *MLP) Forward(x []float64) ([]float64, *MLPCache) {
	cache := &MLPCache{}
	cur := x
	for li, l := range m.Layers {
		cache.xs = append(cache.xs, append([]float64(nil), cur...))
		y := make([]float64, l.Out)
		l.ForwardInto(cur, y)
		cache.pre = append(cache.pre, append([]float64(nil), y...))
		if li < len(m.Layers)-1 {
			for i := range y {
				y[i] = math.Tanh(y[i])
			}
		}
		cur = y
	}
	return cur, cache
}

// Backward propagates dy, accumulating parameter gradients and returning
// the gradient with respect to the input.
func (m *MLP) Backward(cache *MLPCache, dy []float64) []float64 {
	grad := append([]float64(nil), dy...)
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			pre := cache.pre[li]
			for i := range grad {
				t := math.Tanh(pre[i])
				grad[i] *= 1 - t*t
			}
		}
		dx := make([]float64, m.Layers[li].In)
		m.Layers[li].BackwardInto(cache.xs[li], grad, dx)
		grad = dx
	}
	return grad
}
