package nn

import (
	"math"
	"math/rand"
	"testing"
)

const (
	eps     = 1e-5
	gradTol = 1e-4
)

// numGrad computes the centered finite difference of loss() with respect
// to one weight entry.
func numGrad(p *Param, idx int, loss func() float64) float64 {
	orig := p.Val.Data[idx]
	p.Val.Data[idx] = orig + eps
	up := loss()
	p.Val.Data[idx] = orig - eps
	down := loss()
	p.Val.Data[idx] = orig
	return (up - down) / (2 * eps)
}

func checkParamGrads(t *testing.T, params []*Param, loss func() float64, rng *rand.Rand) {
	t.Helper()
	for _, p := range params {
		n := len(p.Val.Data)
		// Sample entries to keep the test fast on big matrices.
		samples := n
		if samples > 20 {
			samples = 20
		}
		for s := 0; s < samples; s++ {
			idx := s
			if n > samples {
				idx = rng.Intn(n)
			}
			want := numGrad(p, idx, loss)
			got := p.Grad.Data[idx]
			if math.Abs(want-got) > gradTol*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g", p.Name, idx, got, want)
			}
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("lin", 4, 3, rng)
	x := []float64{0.3, -0.2, 0.9, 0.1}
	w := []float64{0.5, -1.0, 0.25}

	loss := func() float64 {
		y := make([]float64, l.Out)
		l.ForwardInto(x, y)
		s := 0.0
		for i := range y {
			s += w[i] * y[i]
		}
		return s
	}
	// Analytic pass.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	dx := make([]float64, l.In)
	l.BackwardInto(x, w, dx)
	checkParamGrads(t, l.Params(), loss, rng)

	// Input gradient too.
	for j := range x {
		orig := x[j]
		x[j] = orig + eps
		up := loss()
		x[j] = orig - eps
		down := loss()
		x[j] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-dx[j]) > gradTol {
			t.Errorf("dx[%d]: analytic %.6g vs numeric %.6g", j, dx[j], want)
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM("lstm", 3, 4, rng)
	ws := NewWorkspace(nil)
	x := []float64{0.5, -0.3, 0.8}
	h0 := []float64{0.1, -0.1, 0.2, 0.05}
	c0 := []float64{0.2, 0.1, -0.2, 0.3}
	wH := []float64{1, -0.5, 0.25, 0.75}

	loss := func() float64 {
		h := append([]float64(nil), h0...)
		c := append([]float64(nil), c0...)
		l.StepInto(ws, x, h, c, nil)
		s := 0.0
		for i := range h {
			s += wH[i] * h[i]
		}
		return s
	}
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	h := append([]float64(nil), h0...)
	c := append([]float64(nil), c0...)
	cache := &LSTMCache{}
	l.StepInto(ws, x, h, c, cache)
	dH := append([]float64(nil), wH...)
	dC := make([]float64, 4)
	dx := make([]float64, 3)
	dhPrev := make([]float64, 4)
	dcPrev := make([]float64, 4)
	l.BackwardInto(ws, cache, dH, dC, dx, dhPrev, dcPrev)
	checkParamGrads(t, l.Params(), loss, rng)

	// The cache must have captured the pre-step inputs, not the updated
	// state (StepInto mutates h and c in place).
	for j := range h0 {
		if cache.HPrev[j] != h0[j] || cache.CPrev[j] != c0[j] {
			t.Fatal("cache captured post-step state")
		}
	}
}

func TestLSTMBackwardAliasedRunningGrads(t *testing.T) {
	// BackwardInto documents that dhPrev/dcPrev may alias dH/dC (the BPTT
	// running-gradient update). The aliased call must agree with the
	// non-aliased one.
	rng := rand.New(rand.NewSource(12))
	l := NewLSTM("lstm", 3, 4, rng)
	ws := NewWorkspace(nil)
	x := []float64{0.5, -0.3, 0.8}
	h := []float64{0.1, -0.1, 0.2, 0.05}
	c := []float64{0.2, 0.1, -0.2, 0.3}
	cache := &LSTMCache{}
	l.StepInto(ws, x, h, c, cache)

	dH := []float64{1, -0.5, 0.25, 0.75}
	dC := []float64{0.3, 0.1, -0.2, 0.4}
	dx := make([]float64, 3)
	dhPrev := make([]float64, 4)
	dcPrev := make([]float64, 4)
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	l.BackwardInto(ws, cache, append([]float64(nil), dH...), append([]float64(nil), dC...), dx, dhPrev, dcPrev)

	adH := append([]float64(nil), dH...)
	adC := append([]float64(nil), dC...)
	adx := make([]float64, 3)
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	l.BackwardInto(ws, cache, adH, adC, adx, adH, adC)
	for j := range dhPrev {
		if adH[j] != dhPrev[j] || adC[j] != dcPrev[j] {
			t.Fatalf("aliased backward diverged at %d: (%v,%v) vs (%v,%v)",
				j, adH[j], adC[j], dhPrev[j], dcPrev[j])
		}
	}
}

func TestSeqNetGradCheckMultiStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSeqNet("net", 6, 5, 4, 3, 0, rng)
	ws := NewWorkspace(nil)
	inputs := []int{net.BOS(), 2, 4, 1}
	// Fixed loss weights per step and output.
	lws := make([][]float64, len(inputs))
	for t2 := range lws {
		lws[t2] = make([]float64, 3)
		for i := range lws[t2] {
			lws[t2][i] = rng.NormFloat64()
		}
	}
	loss := func() float64 {
		st := net.NewState()
		s := 0.0
		for t2, in := range inputs {
			out := net.StepInto(ws, st, in, false, nil)
			for i := range out {
				s += lws[t2][i] * out[i]
			}
		}
		return s
	}
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	st := net.NewState()
	dHead := make([][]float64, len(inputs))
	for t2, in := range inputs {
		net.StepInto(ws, st, in, true, nil)
		dHead[t2] = lws[t2]
	}
	net.BackwardInto(ws, st, dHead)
	checkParamGrads(t, net.Params(), loss, rng)
}

func TestSeqNetSparseLossGrads(t *testing.T) {
	// Only some steps contribute loss (like RL rewards): nil dHead entries.
	rng := rand.New(rand.NewSource(4))
	net := NewSeqNet("net", 5, 4, 3, 2, 0, rng)
	ws := NewWorkspace(nil)
	inputs := []int{net.BOS(), 1, 3}
	w := []float64{0.7, -1.2}
	loss := func() float64 {
		st := net.NewState()
		var s float64
		for _, in := range inputs {
			out := net.StepInto(ws, st, in, false, nil)
			s = w[0]*out[0] + w[1]*out[1]
		}
		return s
	}
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	st := net.NewState()
	for _, in := range inputs {
		net.StepInto(ws, st, in, true, nil)
	}
	dHead := make([][]float64, len(inputs))
	dHead[len(inputs)-1] = w
	net.BackwardInto(ws, st, dHead)
	checkParamGrads(t, net.Params(), loss, rng)
}

func TestSeqNetGradCheckPooledCaches(t *testing.T) {
	// The pooled-tape path: run a full forward/backward on a pooled state,
	// recycle everything, and re-run — the recycled caches and masks must
	// reproduce exact gradients (no stale contents leaking through the
	// pool).
	rng := rand.New(rand.NewSource(13))
	net := NewSeqNet("net", 6, 5, 4, 3, 0.4, rng)
	ws := NewWorkspace(nil)
	inputs := []int{net.BOS(), 2, 4, 1}
	w := []float64{0.8, -0.3, 0.5}

	run := func(seed int64) []float64 {
		drng := rand.New(rand.NewSource(seed))
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		st := ws.Pool().GetState(net.Hidden)
		for _, in := range inputs {
			net.StepInto(ws, st, in, true, drng)
		}
		dHead := make([][]float64, len(inputs))
		dHead[len(inputs)-1] = w
		net.BackwardInto(ws, st, dHead)
		ws.Recycle(st)
		grads := make([]float64, 0, 64)
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Data...)
		}
		return grads
	}
	// Warm the pool with one episode, then compare two identical runs that
	// both draw recycled objects.
	run(7)
	a := run(7)
	b := run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pooled-cache gradients diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}

	// And the recycled-tape gradients must still pass the finite-difference
	// check (dropout fixed by re-seeding inside loss is impossible, so
	// check with dropout off on the same pooled machinery).
	net2 := NewSeqNet("net2", 6, 5, 4, 3, 0, rng)
	loss := func() float64 {
		st := ws.Pool().GetState(net2.Hidden)
		var s float64
		for _, in := range inputs {
			out := net2.StepInto(ws, st, in, false, nil)
			s = w[0]*out[0] + w[1]*out[1] + w[2]*out[2]
		}
		ws.Recycle(st)
		return s
	}
	for _, p := range net2.Params() {
		p.ZeroGrad()
	}
	st := ws.Pool().GetState(net2.Hidden)
	for _, in := range inputs {
		net2.StepInto(ws, st, in, true, nil)
	}
	dHead := make([][]float64, len(inputs))
	dHead[len(inputs)-1] = w
	net2.BackwardInto(ws, st, dHead)
	ws.Recycle(st)
	checkParamGrads(t, net2.Params(), loss, rng)
}

func TestInferenceMatchesTrainingWithoutDropout(t *testing.T) {
	// With dropout off, an inference step (no tape) and a training step
	// (pooled tape) must produce bit-identical logits and recurrent state.
	rng := rand.New(rand.NewSource(14))
	a := NewSeqNet("a", 6, 4, 3, 5, 0, rng)
	b := NewSeqNet("b", 6, 4, 3, 5, 0, rng)
	b.CopyWeightsFrom(a)
	wsA, wsB := NewWorkspace(nil), NewWorkspace(nil)
	stA, stB := a.NewState(), b.NewState()
	for _, in := range []int{a.BOS(), 2, 5, 1} {
		oi := a.StepInto(wsA, stA, in, false, nil)
		ot := b.StepInto(wsB, stB, in, true, nil)
		for i := range oi {
			if oi[i] != ot[i] {
				t.Fatalf("inference logit %d = %v, training = %v", i, oi[i], ot[i])
			}
		}
	}
	if stA.Len() != 0 {
		t.Error("inference steps must not record a tape")
	}
	if stB.Len() != 4 {
		t.Errorf("training tape length = %d, want 4", stB.Len())
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("mlp", []int{4, 6, 3}, rng)
	x := []float64{0.2, -0.5, 0.7, 0.1}
	w := []float64{1, -1, 0.5}
	loss := func() float64 {
		y, _ := m.Forward(x)
		return w[0]*y[0] + w[1]*y[1] + w[2]*y[2]
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	_, cache := m.Forward(x)
	dx := m.Backward(cache, w)
	checkParamGrads(t, m.Params(), loss, rng)
	for j := range x {
		orig := x[j]
		x[j] = orig + eps
		up := loss()
		x[j] = orig - eps
		down := loss()
		x[j] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-dx[j]) > gradTol {
			t.Errorf("mlp dx[%d]: analytic %.6g vs numeric %.6g", j, dx[j], want)
		}
	}
}

func TestMaskedSoftmaxProperties(t *testing.T) {
	logits := []float64{2, -1, 0.5, 3, -2}
	valid := []int{0, 2, 3}
	p := MaskedSoftmax(logits, valid)
	sum := 0.0
	for _, id := range valid {
		if p[id] <= 0 {
			t.Errorf("valid prob %d must be positive", id)
		}
		sum += p[id]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if p[1] != 0 || p[4] != 0 {
		t.Error("masked entries must be zero")
	}
	if p[3] <= p[2] {
		t.Error("higher logit must get higher probability")
	}
	if got := MaskedSoftmax(logits, nil); got[0] != 0 {
		t.Error("empty mask must produce zeros")
	}

	// The into-variant must clear stale buffer contents for masked ids.
	buf := []float64{9, 9, 9, 9, 9}
	MaskedSoftmaxInto(logits, valid, buf)
	for i := range buf {
		if buf[i] != p[i] {
			t.Errorf("MaskedSoftmaxInto[%d] = %v, want %v", i, buf[i], p[i])
		}
	}
}

func TestMaskedSoftmaxNumericStability(t *testing.T) {
	logits := []float64{1e4, 1e4 - 1}
	p := MaskedSoftmax(logits, []int{0, 1})
	if math.IsNaN(p[0]) || math.IsInf(p[0], 0) {
		t.Error("softmax must be stable for huge logits")
	}
}

func TestEntropyUniformIsMax(t *testing.T) {
	valid := []int{0, 1, 2, 3}
	uniform := MaskedSoftmax([]float64{1, 1, 1, 1}, valid)
	peaked := MaskedSoftmax([]float64{10, 0, 0, 0}, valid)
	hu, hp := Entropy(uniform, valid), Entropy(peaked, valid)
	if hu <= hp {
		t.Errorf("uniform entropy %v must exceed peaked %v", hu, hp)
	}
	if math.Abs(hu-math.Log(4)) > 1e-9 {
		t.Errorf("uniform entropy = %v, want ln 4", hu)
	}
}

func TestPolicyGradLogitsNumeric(t *testing.T) {
	logits := []float64{0.4, -0.3, 1.2, 0.1, -0.9}
	valid := []int{0, 2, 3}
	action := 2
	adv := 0.8
	lambda := 0.05

	lossOf := func(z []float64) float64 {
		p := MaskedSoftmax(z, valid)
		return -adv*math.Log(p[action]) - lambda*Entropy(p, valid)
	}
	probs := MaskedSoftmax(logits, valid)
	got := make([]float64, len(logits))
	PolicyGradLogits(probs, valid, action, adv, lambda, got)
	for j := range logits {
		z := append([]float64(nil), logits...)
		z[j] += eps
		up := lossOf(z)
		z[j] -= 2 * eps
		down := lossOf(z)
		want := (up - down) / (2 * eps)
		if math.Abs(want-got[j]) > gradTol {
			t.Errorf("dz[%d]: analytic %.6g vs numeric %.6g", j, got[j], want)
		}
	}
	// Masked entries get zero gradient.
	if got[1] != 0 || got[4] != 0 {
		t.Error("masked logits must receive zero gradient")
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	p := NewZeroParam("x", 2, 1)
	p.Val.Data[0], p.Val.Data[1] = 5, -3
	opt := NewAdam(0.1)
	target := []float64{1, 2}
	for i := 0; i < 500; i++ {
		for j := range target {
			p.Grad.Data[j] = 2 * (p.Val.Data[j] - target[j])
		}
		opt.Step([]*Param{p})
	}
	for j := range target {
		if math.Abs(p.Val.Data[j]-target[j]) > 0.05 {
			t.Errorf("x[%d] = %v, want %v", j, p.Val.Data[j], target[j])
		}
	}
}

func TestAdamClipsGradients(t *testing.T) {
	p := NewZeroParam("x", 1, 1)
	opt := NewAdam(0.001)
	opt.Clip = 1
	p.Grad.Data[0] = 1e9
	opt.Step([]*Param{p})
	if math.Abs(p.Val.Data[0]) > 0.01 {
		t.Errorf("clipped step moved too far: %v", p.Val.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Error("Step must zero gradients")
	}
}

func TestDropout(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if mask := Dropout(x, 0, nil); mask != nil {
		t.Error("zero-rate dropout must be identity")
	}
	rng := rand.New(rand.NewSource(6))
	vals := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	mask := Dropout(vals, 0.5, rng)
	kept, dropped := 0, 0
	for i, v := range vals {
		if mask[i] {
			kept++
			if v != 2 { // inverted scaling by 1/(1-0.5)
				t.Errorf("kept value scaled to %v, want 2", v)
			}
		} else {
			dropped++
			if v != 0 {
				t.Errorf("dropped value = %v, want 0", v)
			}
		}
	}
	if kept == 0 || dropped == 0 {
		t.Skip("degenerate dropout sample")
	}
	grads := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	DropoutBackward(grads, mask, 0.5)
	for i := range grads {
		want := 0.0
		if mask[i] {
			want = 2
		}
		if grads[i] != want {
			t.Errorf("grad[%d] = %v, want %v", i, grads[i], want)
		}
	}
}

func TestSeqNetCopyWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewSeqNet("a", 5, 4, 3, 2, 0, rng)
	b := NewSeqNet("b", 5, 4, 3, 2, 0, rng)
	b.CopyWeightsFrom(a)
	wsA, wsB := NewWorkspace(nil), NewWorkspace(nil)
	st1, st2 := a.NewState(), b.NewState()
	o1 := a.StepInto(wsA, st1, 1, false, nil)
	o2 := b.StepInto(wsB, st2, 1, false, nil)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("copied networks must agree")
		}
	}
}

func TestMatOps(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 {
		t.Error("At/Set broken")
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 3 || y[1] != 3 {
		t.Errorf("MulVec = %v", y)
	}
	xt := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, xt)
	if xt[0] != 1 || xt[1] != 3 || xt[2] != 2 {
		t.Errorf("MulVecT = %v", xt)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must not alias")
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	m.MulVec([]float64{1}, y)
}

func TestSeqStateAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSeqNet("n", 4, 3, 2, 2, 0, rng)
	ws := NewWorkspace(nil)
	st := net.NewState()
	if st.Len() != 0 {
		t.Error("fresh state must have zero length")
	}
	for _, h := range st.LastHidden() {
		if h != 0 {
			t.Error("fresh hidden state must be zero")
		}
	}
	net.StepInto(ws, st, net.BOS(), true, nil)
	if st.Len() != 1 {
		t.Error("Len must track training steps")
	}
}

func TestSeqStateRecurrentSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewSeqNet("n", 6, 4, 3, 6, 0, rng)
	ws := NewWorkspace(nil)
	st := net.NewState()
	net.StepInto(ws, st, net.BOS(), false, nil)
	net.StepInto(ws, st, 2, false, nil)

	H := net.Hidden
	h1, c1 := make([]float64, H), make([]float64, H)
	h2, c2 := make([]float64, H), make([]float64, H)
	st.CopyRecurrentTo(h1, c1, h2, c2)
	next := append([]float64(nil), net.StepInto(ws, st, 4, false, nil)...)

	// Restoring the snapshot into a fresh state and replaying the step
	// must reproduce the logits exactly.
	st2 := net.NewState()
	st2.SetRecurrent(h1, c1, h2, c2)
	replay := net.StepInto(ws, st2, 4, false, nil)
	for i := range next {
		if next[i] != replay[i] {
			t.Fatalf("restored state diverged at %d: %v vs %v", i, next[i], replay[i])
		}
	}
}

func TestStepMaskedMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewSeqNet("a", 6, 4, 3, 8, 0, rng)
	b := NewSeqNet("b", 6, 4, 3, 8, 0, rng)
	b.CopyWeightsFrom(a)
	wsA, wsB := NewWorkspace(nil), NewWorkspace(nil)
	stA, stB := a.NewState(), b.NewState()
	valid := []int{1, 4, 6}
	for _, in := range []int{a.BOS(), 2, 5} {
		full := a.StepInto(wsA, stA, in, false, nil)
		sparse := b.StepMaskedInto(wsB, stB, in, valid, false, nil)
		for _, id := range valid {
			if math.Abs(full[id]-sparse[id]) > 1e-12 {
				t.Fatalf("masked logit %d = %v, full = %v", id, sparse[id], full[id])
			}
		}
	}
}
