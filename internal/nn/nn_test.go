package nn

import (
	"math"
	"math/rand"
	"testing"
)

const (
	eps     = 1e-5
	gradTol = 1e-4
)

// numGrad computes the centered finite difference of loss() with respect
// to one weight entry.
func numGrad(p *Param, idx int, loss func() float64) float64 {
	orig := p.Val.Data[idx]
	p.Val.Data[idx] = orig + eps
	up := loss()
	p.Val.Data[idx] = orig - eps
	down := loss()
	p.Val.Data[idx] = orig
	return (up - down) / (2 * eps)
}

func checkParamGrads(t *testing.T, params []*Param, loss func() float64, rng *rand.Rand) {
	t.Helper()
	for _, p := range params {
		n := len(p.Val.Data)
		// Sample entries to keep the test fast on big matrices.
		samples := n
		if samples > 20 {
			samples = 20
		}
		for s := 0; s < samples; s++ {
			idx := s
			if n > samples {
				idx = rng.Intn(n)
			}
			want := numGrad(p, idx, loss)
			got := p.Grad.Data[idx]
			if math.Abs(want-got) > gradTol*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: analytic %.6g vs numeric %.6g", p.Name, idx, got, want)
			}
		}
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("lin", 4, 3, rng)
	x := []float64{0.3, -0.2, 0.9, 0.1}
	w := []float64{0.5, -1.0, 0.25}

	loss := func() float64 {
		y := l.Forward(x)
		s := 0.0
		for i := range y {
			s += w[i] * y[i]
		}
		return s
	}
	// Analytic pass.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	l.Backward(x, w)
	checkParamGrads(t, l.Params(), loss, rng)

	// Input gradient too.
	dx := l.Backward(x, w)
	_ = dx
	for j := range x {
		orig := x[j]
		x[j] = orig + eps
		up := loss()
		x[j] = orig - eps
		down := loss()
		x[j] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-dx[j]) > gradTol {
			t.Errorf("dx[%d]: analytic %.6g vs numeric %.6g", j, dx[j], want)
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM("lstm", 3, 4, rng)
	x := []float64{0.5, -0.3, 0.8}
	h0 := []float64{0.1, -0.1, 0.2, 0.05}
	c0 := []float64{0.2, 0.1, -0.2, 0.3}
	wH := []float64{1, -0.5, 0.25, 0.75}

	loss := func() float64 {
		h, _, _ := l.Step(x, h0, c0)
		s := 0.0
		for i := range h {
			s += wH[i] * h[i]
		}
		return s
	}
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	_, _, cache := l.Step(x, h0, c0)
	dC := make([]float64, 4)
	l.Backward(cache, wH, dC)
	checkParamGrads(t, l.Params(), loss, rng)
}

func TestSeqNetGradCheckMultiStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewSeqNet("net", 6, 5, 4, 3, 0, rng)
	inputs := []int{net.BOS(), 2, 4, 1}
	// Fixed loss weights per step and output.
	ws := make([][]float64, len(inputs))
	for t2 := range ws {
		ws[t2] = make([]float64, 3)
		for i := range ws[t2] {
			ws[t2][i] = rng.NormFloat64()
		}
	}
	loss := func() float64 {
		st := net.NewState()
		s := 0.0
		for t2, in := range inputs {
			out := net.Step(st, in, false, nil)
			for i := range out {
				s += ws[t2][i] * out[i]
			}
		}
		return s
	}
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	st := net.NewState()
	dHead := make([][]float64, len(inputs))
	for t2, in := range inputs {
		net.Step(st, in, false, nil)
		dHead[t2] = ws[t2]
	}
	net.Backward(st, dHead)
	checkParamGrads(t, net.Params(), loss, rng)
}

func TestSeqNetSparseLossGrads(t *testing.T) {
	// Only some steps contribute loss (like RL rewards): nil dHead entries.
	rng := rand.New(rand.NewSource(4))
	net := NewSeqNet("net", 5, 4, 3, 2, 0, rng)
	inputs := []int{net.BOS(), 1, 3}
	w := []float64{0.7, -1.2}
	loss := func() float64 {
		st := net.NewState()
		var last []float64
		for _, in := range inputs {
			last = net.Step(st, in, false, nil)
		}
		return w[0]*last[0] + w[1]*last[1]
	}
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	st := net.NewState()
	for _, in := range inputs {
		net.Step(st, in, false, nil)
	}
	dHead := make([][]float64, len(inputs))
	dHead[len(inputs)-1] = w
	net.Backward(st, dHead)
	checkParamGrads(t, net.Params(), loss, rng)
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("mlp", []int{4, 6, 3}, rng)
	x := []float64{0.2, -0.5, 0.7, 0.1}
	w := []float64{1, -1, 0.5}
	loss := func() float64 {
		y, _ := m.Forward(x)
		return w[0]*y[0] + w[1]*y[1] + w[2]*y[2]
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	_, cache := m.Forward(x)
	dx := m.Backward(cache, w)
	checkParamGrads(t, m.Params(), loss, rng)
	for j := range x {
		orig := x[j]
		x[j] = orig + eps
		up := loss()
		x[j] = orig - eps
		down := loss()
		x[j] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-dx[j]) > gradTol {
			t.Errorf("mlp dx[%d]: analytic %.6g vs numeric %.6g", j, dx[j], want)
		}
	}
}

func TestMaskedSoftmaxProperties(t *testing.T) {
	logits := []float64{2, -1, 0.5, 3, -2}
	valid := []int{0, 2, 3}
	p := MaskedSoftmax(logits, valid)
	sum := 0.0
	for _, id := range valid {
		if p[id] <= 0 {
			t.Errorf("valid prob %d must be positive", id)
		}
		sum += p[id]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if p[1] != 0 || p[4] != 0 {
		t.Error("masked entries must be zero")
	}
	if p[3] <= p[2] {
		t.Error("higher logit must get higher probability")
	}
	if got := MaskedSoftmax(logits, nil); got[0] != 0 {
		t.Error("empty mask must produce zeros")
	}
}

func TestMaskedSoftmaxNumericStability(t *testing.T) {
	logits := []float64{1e4, 1e4 - 1}
	p := MaskedSoftmax(logits, []int{0, 1})
	if math.IsNaN(p[0]) || math.IsInf(p[0], 0) {
		t.Error("softmax must be stable for huge logits")
	}
}

func TestEntropyUniformIsMax(t *testing.T) {
	valid := []int{0, 1, 2, 3}
	uniform := MaskedSoftmax([]float64{1, 1, 1, 1}, valid)
	peaked := MaskedSoftmax([]float64{10, 0, 0, 0}, valid)
	hu, hp := Entropy(uniform, valid), Entropy(peaked, valid)
	if hu <= hp {
		t.Errorf("uniform entropy %v must exceed peaked %v", hu, hp)
	}
	if math.Abs(hu-math.Log(4)) > 1e-9 {
		t.Errorf("uniform entropy = %v, want ln 4", hu)
	}
}

func TestPolicyGradLogitsNumeric(t *testing.T) {
	logits := []float64{0.4, -0.3, 1.2, 0.1, -0.9}
	valid := []int{0, 2, 3}
	action := 2
	adv := 0.8
	lambda := 0.05

	lossOf := func(z []float64) float64 {
		p := MaskedSoftmax(z, valid)
		return -adv*math.Log(p[action]) - lambda*Entropy(p, valid)
	}
	probs := MaskedSoftmax(logits, valid)
	got := make([]float64, len(logits))
	PolicyGradLogits(probs, valid, action, adv, lambda, got)
	for j := range logits {
		z := append([]float64(nil), logits...)
		z[j] += eps
		up := lossOf(z)
		z[j] -= 2 * eps
		down := lossOf(z)
		want := (up - down) / (2 * eps)
		if math.Abs(want-got[j]) > gradTol {
			t.Errorf("dz[%d]: analytic %.6g vs numeric %.6g", j, got[j], want)
		}
	}
	// Masked entries get zero gradient.
	if got[1] != 0 || got[4] != 0 {
		t.Error("masked logits must receive zero gradient")
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	p := NewZeroParam("x", 2, 1)
	p.Val.Data[0], p.Val.Data[1] = 5, -3
	opt := NewAdam(0.1)
	target := []float64{1, 2}
	for i := 0; i < 500; i++ {
		for j := range target {
			p.Grad.Data[j] = 2 * (p.Val.Data[j] - target[j])
		}
		opt.Step([]*Param{p})
	}
	for j := range target {
		if math.Abs(p.Val.Data[j]-target[j]) > 0.05 {
			t.Errorf("x[%d] = %v, want %v", j, p.Val.Data[j], target[j])
		}
	}
}

func TestAdamClipsGradients(t *testing.T) {
	p := NewZeroParam("x", 1, 1)
	opt := NewAdam(0.001)
	opt.Clip = 1
	p.Grad.Data[0] = 1e9
	opt.Step([]*Param{p})
	if math.Abs(p.Val.Data[0]) > 0.01 {
		t.Errorf("clipped step moved too far: %v", p.Val.Data[0])
	}
	if p.Grad.Data[0] != 0 {
		t.Error("Step must zero gradients")
	}
}

func TestDropout(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if mask := Dropout(x, 0, nil); mask != nil {
		t.Error("zero-rate dropout must be identity")
	}
	rng := rand.New(rand.NewSource(6))
	vals := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	mask := Dropout(vals, 0.5, rng)
	kept, dropped := 0, 0
	for i, v := range vals {
		if mask[i] {
			kept++
			if v != 2 { // inverted scaling by 1/(1-0.5)
				t.Errorf("kept value scaled to %v, want 2", v)
			}
		} else {
			dropped++
			if v != 0 {
				t.Errorf("dropped value = %v, want 0", v)
			}
		}
	}
	if kept == 0 || dropped == 0 {
		t.Skip("degenerate dropout sample")
	}
	grads := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	DropoutBackward(grads, mask, 0.5)
	for i := range grads {
		want := 0.0
		if mask[i] {
			want = 2
		}
		if grads[i] != want {
			t.Errorf("grad[%d] = %v, want %v", i, grads[i], want)
		}
	}
}

func TestSeqNetCopyWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewSeqNet("a", 5, 4, 3, 2, 0, rng)
	b := NewSeqNet("b", 5, 4, 3, 2, 0, rng)
	b.CopyWeightsFrom(a)
	st1, st2 := a.NewState(), b.NewState()
	o1 := a.Step(st1, 1, false, nil)
	o2 := b.Step(st2, 1, false, nil)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("copied networks must agree")
		}
	}
}

func TestMatOps(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 3)
	if m.At(0, 2) != 2 {
		t.Error("At/Set broken")
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 3 || y[1] != 3 {
		t.Errorf("MulVec = %v", y)
	}
	xt := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, xt)
	if xt[0] != 1 || xt[1] != 3 || xt[2] != 2 {
		t.Errorf("MulVecT = %v", xt)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must not alias")
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	m.MulVec([]float64{1}, y)
}

func TestSeqStateAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewSeqNet("n", 4, 3, 2, 2, 0, rng)
	st := net.NewState()
	if st.Len() != 0 {
		t.Error("fresh state must have zero length")
	}
	for _, h := range st.LastHidden() {
		if h != 0 {
			t.Error("fresh hidden state must be zero")
		}
	}
	net.Step(st, net.BOS(), false, nil)
	if st.Len() != 1 {
		t.Error("Len must track steps")
	}
}

func TestStepMaskedMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewSeqNet("a", 6, 4, 3, 8, 0, rng)
	b := NewSeqNet("b", 6, 4, 3, 8, 0, rng)
	b.CopyWeightsFrom(a)
	stA, stB := a.NewState(), b.NewState()
	valid := []int{1, 4, 6}
	for _, in := range []int{a.BOS(), 2, 5} {
		full := a.Step(stA, in, false, nil)
		sparse := b.StepMasked(stB, in, valid, false, nil)
		for _, id := range valid {
			if math.Abs(full[id]-sparse[id]) > 1e-12 {
				t.Fatalf("masked logit %d = %v, full = %v", id, sparse[id], full[id])
			}
		}
	}
}
