package nn

import (
	"math"
	"math/rand"
	"testing"
)

// quantTestNet mirrors the actor dimensions of the benchmark harness.
func quantTestNet(seed int64) *SeqNet {
	rng := rand.New(rand.NewSource(seed))
	return NewSeqNet("q", 300, 32, 30, 300, 0.3, rng)
}

// quantValidSets returns pseudo-random masked action sets like an FSM
// walk produces (sizes 3..40, ids in [0, vocab)).
func quantValidSets(vocab, steps int, rng *rand.Rand) [][]int {
	sets := make([][]int, steps)
	for t := range sets {
		n := 3 + rng.Intn(38)
		seen := map[int]bool{}
		var ids []int
		for len(ids) < n {
			id := rng.Intn(vocab)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sets[t] = ids
	}
	return sets
}

func argmaxMasked(logits []float64, ids []int) int {
	best, bestV := ids[0], math.Inf(-1)
	for _, id := range ids {
		if logits[id] > bestV {
			best, bestV = id, logits[id]
		}
	}
	return best
}

// TestQuantizedObservationalEquivalence is the tolerance contract:
// teacher-forced over long episodes, the int8 path's logits stay within
// QuantMaxLogitError of the float64 path's on every masked id, and the
// masked argmax agrees on at least QuantMinTopKAgreement of steps.
// Both paths run their own recurrent state, so the measured error
// includes the compounding state drift of a full episode.
func TestQuantizedObservationalEquivalence(t *testing.T) {
	const episodes, steps = 20, 64
	net := quantTestNet(1)
	q := QuantizeSeqNet(net)
	wsF := NewWorkspace(nil)
	wsQ := NewWorkspace(nil)
	wsQ.SetQuantized(q)

	rng := rand.New(rand.NewSource(7))
	var agree, total int
	maxErr := 0.0
	for e := 0; e < episodes; e++ {
		stF := wsF.Pool().GetState(net.Hidden)
		stQ := wsQ.Pool().GetState(net.Hidden)
		sets := quantValidSets(net.VocabSize, steps, rng)
		in := net.BOS()
		for _, ids := range sets {
			lf := net.StepMaskedInto(wsF, stF, in, ids, false, nil)
			lq := net.StepMaskedInto(wsQ, stQ, in, ids, false, nil)
			for _, id := range ids {
				if d := math.Abs(lf[id] - lq[id]); d > maxErr {
					maxErr = d
				}
			}
			if argmaxMasked(lf, ids) == argmaxMasked(lq, ids) {
				agree++
			}
			total++
			in = ids[rng.Intn(len(ids))] // teacher-forced: same token both paths
		}
		wsF.Recycle(stF)
		wsQ.Recycle(stQ)
	}
	if maxErr > QuantMaxLogitError {
		t.Errorf("max |quantized - float64| logit error %.4f exceeds documented bound %.2f",
			maxErr, QuantMaxLogitError)
	}
	rate := float64(agree) / float64(total)
	if rate < QuantMinTopKAgreement {
		t.Errorf("masked argmax agreement %.4f below documented bound %.2f (%d/%d steps)",
			rate, QuantMinTopKAgreement, agree, total)
	}
	t.Logf("teacher-forced over %d steps: max logit error %.4f (bound %.2f), argmax agreement %.4f (bound %.2f)",
		total, maxErr, QuantMaxLogitError, rate, QuantMinTopKAgreement)
}

// TestQuantizedDeterministic: two snapshots of the same weights produce
// bit-identical logits — quantization is a pure function of the weights.
func TestQuantizedDeterministic(t *testing.T) {
	net := quantTestNet(2)
	ws1, ws2 := NewWorkspace(nil), NewWorkspace(nil)
	ws1.SetQuantized(QuantizeSeqNet(net))
	ws2.SetQuantized(QuantizeSeqNet(net))
	st1 := ws1.Pool().GetState(net.Hidden)
	st2 := ws2.Pool().GetState(net.Hidden)
	ids := []int{3, 17, 42, 99, 120, 200, 250}
	in := net.BOS()
	for step := 0; step < 40; step++ {
		l1 := net.StepMaskedInto(ws1, st1, in, ids, false, nil)
		l2 := net.StepMaskedInto(ws2, st2, in, ids, false, nil)
		for _, id := range ids {
			if l1[id] != l2[id] {
				t.Fatalf("step %d id %d: %v != %v", step, id, l1[id], l2[id])
			}
		}
		in = ids[step%len(ids)]
	}
}

// TestQuantizedTrainingStaysFloat64: a workspace in quantized inference
// mode must leave training steps byte-identical to a plain workspace —
// training never sees int8.
func TestQuantizedTrainingStaysFloat64(t *testing.T) {
	net := quantTestNet(3)
	wsPlain := NewWorkspace(nil)
	wsQuant := NewWorkspace(nil)
	wsQuant.SetQuantized(QuantizeSeqNet(net))
	stP := wsPlain.Pool().GetState(net.Hidden)
	stQ := wsQuant.Pool().GetState(net.Hidden)
	rngP := rand.New(rand.NewSource(11))
	rngQ := rand.New(rand.NewSource(11))
	ids := []int{1, 5, 9, 33, 77}
	in := net.BOS()
	for step := 0; step < 20; step++ {
		lp := net.StepMaskedInto(wsPlain, stP, in, ids, true, rngP)
		lq := net.StepMaskedInto(wsQuant, stQ, in, ids, true, rngQ)
		for _, id := range ids {
			if lp[id] != lq[id] {
				t.Fatalf("training step %d diverged with quantized workspace: %v != %v", step, lp[id], lq[id])
			}
		}
		in = ids[step%len(ids)]
	}
	if stQ.Len() != stP.Len() {
		t.Fatalf("tape lengths differ: %d vs %d", stQ.Len(), stP.Len())
	}
	wsPlain.Recycle(stP)
	wsQuant.Recycle(stQ)
}

// TestQuantizedOtherNetworkUnaffected: the fast path only fires for the
// snapshot's source network; stepping a different net through the same
// workspace stays float64-exact.
func TestQuantizedOtherNetworkUnaffected(t *testing.T) {
	netA, netB := quantTestNet(4), quantTestNet(5)
	wsQ := NewWorkspace(nil)
	wsQ.SetQuantized(QuantizeSeqNet(netA))
	wsF := NewWorkspace(nil)
	stQ := wsQ.Pool().GetState(netB.Hidden)
	stF := wsF.Pool().GetState(netB.Hidden)
	ids := []int{2, 8, 20, 111}
	in := netB.BOS()
	for step := 0; step < 10; step++ {
		lq := netB.StepMaskedInto(wsQ, stQ, in, ids, false, nil)
		lf := netB.StepMaskedInto(wsF, stF, in, ids, false, nil)
		for _, id := range ids {
			if lq[id] != lf[id] {
				t.Fatalf("step %d: netB took the quantized path of netA's snapshot", step)
			}
		}
		in = ids[step%len(ids)]
	}
}

// TestQuantizeMatRoundTrip bounds the per-element weight error by half a
// quantization step: |w − scale·q| ≤ scale/2 with scale = maxAbs/127.
func TestQuantizeMatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMat(64, 48)
	m.XavierInit(rng)
	var q qmat
	quantizeMatInto(&q, m)
	for i := 0; i < m.Rows; i++ {
		scale := float64(q.scale[i])
		for j := 0; j < m.Cols; j++ {
			got := scale * float64(q.w[i*m.Cols+j])
			if d := math.Abs(got - m.At(i, j)); d > scale/2+1e-12 {
				t.Fatalf("(%d,%d): |%.6f - %.6f| = %.6g > scale/2 = %.6g",
					i, j, got, m.At(i, j), d, scale/2)
			}
		}
	}
	// All-zero rows round-trip to zero under the sentinel scale.
	z := NewMat(2, 8)
	quantizeMatInto(&q, z)
	for _, w := range q.w {
		if w != 0 {
			t.Fatalf("zero row quantized to %d", w)
		}
	}
}
